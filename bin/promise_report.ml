(* promise-report: regenerate the paper's tables and figures as text
   (the same sections the bench harness prints).

   Usage: promise_report [--quick] [--jobs N] [SECTION ...] *)

module P = Promise
open Cmdliner

let run quick jobs sections =
  if jobs < 1 || jobs > 64 then
    `Error (false, "--jobs must be in 1..64")
  else begin
    let ppf = Format.std_formatter in
    P.Pool.with_pool ~jobs (fun pool ->
        match (quick, sections) with
        | true, _ -> P.Report.quick ~pool ppf
        | false, [] -> P.Report.all ~pool ppf
        | false, names ->
            let fns =
              List.filter_map
                (fun name ->
                  match
                    List.find_opt (fun (n, _, _) -> n = name) P.Report.sections
                  with
                  | Some (_, _, f) -> Some f
                  | None ->
                      Format.fprintf ppf
                        "unknown section %S; available: %s@." name
                        (String.concat ", "
                           (List.map (fun (n, _, _) -> n) P.Report.sections));
                      None)
                names
            in
            P.Report.print_sections ~pool ppf fns);
    `Ok ()
  end

let quick_arg =
  Arg.(
    value & flag
    & info [ "quick" ] ~doc:"Skip the slow sections (fig12, table2, soa_dnn).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Render sections and fan simulations out across $(docv) domains. \
           Output is bit-identical at any job count.")

let sections_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"SECTION"
         ~doc:"Sections to print (default: all).")

let () =
  let info =
    Cmd.info "promise-report" ~version:P.version
      ~doc:"regenerate the paper's evaluation tables and figures"
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(ret (const run $ quick_arg $ jobs_arg $ sections_arg))))
