(* promise-report: regenerate the paper's tables and figures as text
   (the same sections the bench harness prints), supervised.

   Sections render as supervised work items: progress survives SIGINT
   / SIGTERM via --checkpoint/--resume, a section that blows its
   --timeout-ms deadline or keeps failing is quarantined (its slot in
   the report says so) instead of killing the whole regeneration, and
   --incidents records the JSONL audit trail.

   Usage: promise_report [--quick] [--jobs N] [--checkpoint FILE]
                         [--resume] [--incidents FILE] [--timeout-ms T]
                         [--max-retries R] [--seed S] [SECTION ...] *)

module P = Promise

(* exceptions escaping supervised items carry their backtrace into the
   typed error context; recording must be on for it to be non-empty *)
let () = Printexc.record_backtrace true
open Cmdliner

let validated_int ~what ~min ~max =
  Arg.conv
    ( (fun s ->
        match P.Validate.int_in_range ~what ~min ~max s with
        | Ok v -> Ok v
        | Error e -> Error (`Msg (P.Error.to_string e))),
      Format.pp_print_int )

let validated_float_ms ~what =
  Arg.conv
    ( (fun s ->
        match P.Validate.non_negative_float ~what s with
        | Ok v -> Ok v
        | Error e -> Error (`Msg (P.Error.to_string e))),
      (fun ppf v -> Format.fprintf ppf "%g" v) )

let exit_code_of_signal stop =
  match P.Supervisor.stop_signal stop with
  | Some s when s = Sys.sigterm -> 143
  | Some s when s = Sys.sigint -> 130
  | _ -> 130

let run quick jobs seed timeout_ms max_retries checkpoint resume
    incidents_path sections =
  match P.check_env () with
  | Error e -> `Error (false, P.Error.to_string e)
  | Ok () when resume && checkpoint = None ->
      `Error (false, "--resume needs --checkpoint FILE to resume from")
  | Ok () -> (
      let ppf = Format.std_formatter in
      (* resolve the section list up front, warning on unknown names
         exactly like the unsupervised CLI did *)
      let names =
        match (quick, sections) with
        | true, _ -> P.Report.quick_names ()
        | false, [] -> P.Report.all_names ()
        | false, names ->
            List.filter
              (fun name ->
                let known =
                  List.exists (fun (n, _, _) -> n = name) P.Report.sections
                in
                if not known then
                  Format.fprintf ppf "unknown section %S; available: %s@."
                    name
                    (String.concat ", "
                       (List.map (fun (n, _, _) -> n) P.Report.sections));
                known)
              names
      in
      let incidents_r =
        match incidents_path with
        | None -> Ok P.Incident.null
        | Some path -> P.Incident.to_file path
      in
      let retry_r = P.Retry.policy ~max_attempts:(max_retries + 1) ~seed () in
      match (incidents_r, retry_r) with
      | Error e, _ | _, Error e -> `Error (false, P.Error.to_string e)
      | Ok incidents, Ok retry ->
          let stop = P.Supervisor.install_stop_signals () in
          let sup = P.Supervisor.config ?timeout_ms ~retry ~incidents () in
          let session =
            P.Supervisor.session ~sup ?checkpoint ~resume ~stop ()
          in
          let on_checkpoint ~completed ~total =
            Format.eprintf "checkpoint: %d/%d sections -> %s@." completed
              total
              (Option.value checkpoint ~default:"-")
          in
          let outcome =
            P.Pool.with_pool ~jobs (fun pool ->
                P.Report.run_sections_supervised ~pool ~on_checkpoint session
                  ppf names)
          in
          Format.pp_print_flush ppf ();
          P.Incident.close incidents;
          (match outcome with
          | P.Report.Sections_interrupted { completed; total } ->
              Format.eprintf
                "interrupted at %d/%d sections; resume with: promise-report \
                 --checkpoint %s --resume@."
                completed total
                (Option.value checkpoint ~default:"FILE");
              Stdlib.exit (exit_code_of_signal stop)
          | P.Report.Sections_rejected e ->
              `Error (false, P.Error.to_string e)
          | P.Report.Sections_done { quarantined } ->
              if quarantined > 0 then
                `Error
                  ( false,
                    Printf.sprintf "%d sections were quarantined" quarantined
                  )
              else `Ok ()))

let quick_arg =
  Arg.(
    value & flag
    & info [ "quick" ] ~doc:"Skip the slow sections (fig12, table2, soa_dnn).")

let jobs_arg =
  Arg.(
    value
    & opt (validated_int ~what:"--jobs" ~min:1 ~max:64) 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Render sections and fan simulations out across $(docv) domains. \
           Output is bit-identical at any job count.")

let seed_arg =
  Arg.(
    value
    & opt (validated_int ~what:"--seed" ~min:0 ~max:max_int) 0
    & info [ "seed" ] ~docv:"S" ~doc:"Retry-backoff jitter seed.")

let timeout_arg =
  Arg.(
    value
    & opt (some (validated_float_ms ~what:"--timeout-ms")) None
    & info [ "timeout-ms" ] ~docv:"T"
        ~doc:
          "Per-section deadline in milliseconds; overdue sections are \
           retried and finally quarantined.")

let max_retries_arg =
  Arg.(
    value
    & opt (validated_int ~what:"--max-retries" ~min:0 ~max:16) 0
    & info [ "max-retries" ] ~docv:"R"
        ~doc:"Retries per section after its first failure.")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:"Atomically persist rendered sections to $(docv).")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ] ~doc:"Resume from --checkpoint FILE.")

let incidents_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "incidents" ] ~docv:"FILE"
        ~doc:"Append the JSONL incident log to $(docv).")

let sections_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"SECTION"
         ~doc:"Sections to print (default: all).")

let () =
  let info =
    Cmd.info "promise-report" ~version:P.version
      ~doc:
        "regenerate the paper's evaluation tables and figures — supervised, \
         checkpointed, resumable"
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            ret
              (const run $ quick_arg $ jobs_arg $ seed_arg $ timeout_arg
             $ max_retries_arg $ checkpoint_arg $ resume_arg $ incidents_arg
             $ sections_arg))))
