(* promise-compile: compile an S-expression kernel file to PROMISE
   assembly or binary (the textual path through the language-neutral
   IR; see lib/ir/sexp_frontend.mli for the grammar).

   Usage:
     promise_compile kernel.sexp                 # assembly to stdout
     promise_compile kernel.sexp --binary out.bin
     promise_compile kernel.sexp --ir            # dump the IR graph
     promise_compile kernel.sexp --swing 3       # force a swing code *)

module P = Promise

let die msg =
  prerr_endline ("promise-compile: " ^ msg);
  exit 1

let die_err e = die (P.Error.to_string e)

let run path binary show_ir swing =
  let kernel =
    match P.Ir.Sexp_frontend.parse_file path with
    | Ok k -> k
    | Error msg -> die msg
  in
  let graph =
    match P.compile kernel with Ok g -> g | Error e -> die_err e
  in
  let graph =
    match swing with
    | None -> graph
    | Some s ->
        P.Ir.Graph.map_tasks graph (fun _ t ->
            P.Ir.Abstract_task.with_swing t s)
  in
  if show_ir then Format.printf "%a@." P.Ir.Graph.pp graph;
  let program =
    match P.Compiler.Pipeline.codegen graph with
    | Ok p -> p
    | Error e -> die_err e
  in
  (match binary with
  | Some out ->
      let oc = open_out_bin out in
      output_bytes oc (P.Isa.Program.to_binary program);
      close_out oc;
      Printf.printf "wrote %d task(s), %d bytes to %s\n"
        (P.Isa.Program.length program)
        (Bytes.length (P.Isa.Program.to_binary program))
        out
  | None -> print_string (P.Isa.Program.to_asm program));
  `Ok ()

open Cmdliner

let path_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"KERNEL" ~doc:"S-expression kernel file.")

let binary_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "binary" ] ~docv:"OUT" ~doc:"Write binary Tasks to $(docv).")

let ir_arg =
  Arg.(value & flag & info [ "ir" ] ~doc:"Dump the AbstractTask IR graph.")

let swing_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "swing" ] ~docv:"N" ~doc:"Force SWING code 0-7 on every task.")

let () =
  let info =
    Cmd.info "promise-compile" ~version:Promise.version
      ~doc:"compile an S-expression kernel to the PROMISE ISA"
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(ret (const run $ path_arg $ binary_arg $ ir_arg $ swing_arg))))
