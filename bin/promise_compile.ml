(* promise-compile: compile an S-expression kernel file to PROMISE
   assembly or binary (the textual path through the language-neutral
   IR; see lib/ir/sexp_frontend.mli for the grammar).

   Usage:
     promise_compile kernel.sexp                 # assembly to stdout
     promise_compile kernel.sexp --binary out.bin
     promise_compile kernel.sexp --ir            # dump the IR graph
     promise_compile kernel.sexp --swing 3       # force a swing code *)

module P = Promise

let die msg =
  prerr_endline ("promise-compile: " ^ msg);
  exit 1

let die_err e = die (P.Error.to_string e)

(* --lint: overflow interval analysis on the IR graph plus the
   whole-program ISA verifier on the emitted Tasks.  (SSA validation
   always runs inside [P.compile]; it fails closed even without
   --lint.)  The report goes to stderr so stdout stays the program. *)
let lint_program ~format ~target graph program =
  let _, ovf = P.Analysis.Interval.analyze graph in
  let isa = P.Analysis.Isa_check.check_program program.P.Isa.Program.tasks in
  let report = P.Analysis.Lint.make ~target (ovf @ isa) in
  (match format with
  | "json" -> prerr_endline (P.Analysis.Lint.render_json [ report ])
  | _ ->
      prerr_string (P.Analysis.Lint.render_text report);
      prerr_endline (P.Analysis.Lint.summary [ report ]));
  if P.Analysis.Lint.exit_code [ report ] <> 0 then
    die "lint reported errors (see diagnostics above)"

let run path binary show_ir swing lint no_lint lint_format =
  let kernel =
    match P.Ir.Sexp_frontend.parse_file path with
    | Ok k -> k
    | Error msg -> die msg
  in
  let graph =
    match P.compile kernel with Ok g -> g | Error e -> die_err e
  in
  let graph =
    match swing with
    | None -> graph
    | Some s ->
        P.Ir.Graph.map_tasks graph (fun _ t ->
            P.Ir.Abstract_task.with_swing t s)
  in
  if show_ir then Format.printf "%a@." P.Ir.Graph.pp graph;
  let program =
    match P.Compiler.Pipeline.codegen graph with
    | Ok p -> p
    | Error e -> die_err e
  in
  if lint && not no_lint then
    lint_program ~format:lint_format ~target:path graph program;
  (match binary with
  | Some out ->
      let oc = open_out_bin out in
      output_bytes oc (P.Isa.Program.to_binary program);
      close_out oc;
      Printf.printf "wrote %d task(s), %d bytes to %s\n"
        (P.Isa.Program.length program)
        (Bytes.length (P.Isa.Program.to_binary program))
        out
  | None -> print_string (P.Isa.Program.to_asm program));
  `Ok ()

open Cmdliner

let path_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"KERNEL" ~doc:"S-expression kernel file.")

let binary_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "binary" ] ~docv:"OUT" ~doc:"Write binary Tasks to $(docv).")

let ir_arg =
  Arg.(value & flag & info [ "ir" ] ~doc:"Dump the AbstractTask IR graph.")

let swing_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "swing" ] ~docv:"N" ~doc:"Force SWING code 0-7 on every task.")

let lint_arg =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Run the promise-lint analyses (interval overflow, Task-ISA \
           verifier) on the compiled program; the report goes to stderr.")

let no_lint_arg =
  Arg.(
    value & flag
    & info [ "no-lint" ] ~doc:"Disable linting (overrides $(b,--lint)).")

let lint_format_conv =
  Arg.conv
    ( (fun s ->
        match
          P.Validate.enum ~what:"--lint-format" ~values:[ "text"; "json" ] s
        with
        | Ok v -> Ok v
        | Error e -> Error (`Msg (P.Error.to_string e))),
      Format.pp_print_string )

let lint_format_arg =
  Arg.(
    value
    & opt lint_format_conv "text"
    & info [ "lint-format" ] ~docv:"FMT"
        ~doc:"Lint report format: $(b,text) or $(b,json).")

let () =
  let info =
    Cmd.info "promise-compile" ~version:Promise.version
      ~doc:"compile an S-expression kernel to the PROMISE ISA"
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            ret
              (const run $ path_arg $ binary_arg $ ir_arg $ swing_arg
             $ lint_arg $ no_lint_arg $ lint_format_arg))))
