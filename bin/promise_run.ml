(* promise-run: run one of the Table-2 benchmarks end to end and report
   accuracy, energy and throughput against the CONV baselines.

   Usage: promise_run BENCHMARK [--swing N] [--pm P] [--optimize] [--jobs N]
                      [--kernel-mode fused|reference] *)

module P = Promise
module B = P.Benchmarks
module Model = P.Energy.Model
module Conv = P.Energy.Conv

let benchmarks =
  [
    ("matched-filter", fun () -> B.matched_filter ());
    ("template-l1", fun () -> B.template_l1 ());
    ("template-l2", fun () -> B.template_l2 ());
    ("svm", fun () -> B.svm ());
    ("knn-l1", fun () -> B.knn_l1 ());
    ("knn-l2", fun () -> B.knn_l2 ());
    ("pca", fun () -> B.pca ());
    ("linreg", fun () -> B.linreg ());
    ("dnn-1", fun () -> B.dnn B.D1);
    ("dnn-2", fun () -> B.dnn B.D2);
    ("dnn-3", fun () -> B.dnn B.D3);
  ]

(* --lint checks the compiled benchmark before simulating it: the
   whole-program Task-ISA verifier on the per-decision Task stream and
   interval overflow analysis on the IR graph.  The report goes to
   stderr; error diagnostics abort the run. *)
let lint_benchmark ~format (b : B.t) =
  let isa =
    P.Analysis.Isa_check.check_program b.B.per_decision_program.P.Isa.Program.tasks
  in
  let _, ovf = P.Analysis.Interval.analyze b.B.graph in
  let report =
    P.Analysis.Lint.make ~target:("benchmark:" ^ b.B.name) (isa @ ovf)
  in
  (match format with
  | "json" -> prerr_endline (P.Analysis.Lint.render_json [ report ])
  | _ ->
      prerr_string (P.Analysis.Lint.render_text report);
      prerr_endline (P.Analysis.Lint.summary [ report ]));
  P.Analysis.Lint.exit_code [ report ] = 0

let run name swing pm optimize jobs kernel_mode batch lint no_lint lint_format
    =
  match (P.check_env (), List.assoc_opt name benchmarks) with
  | Error e, _ -> `Error (false, P.Error.to_string e)
  | Ok (), None ->
      `Error
        ( false,
          Printf.sprintf "unknown benchmark %S; try one of: %s" name
            (String.concat ", " (List.map fst benchmarks)) )
  | Ok (), Some build when lint && (not no_lint)
                           && not (lint_benchmark ~format:lint_format (build ()))
    ->
      `Error (false, "lint reported errors (see diagnostics above)")
  | Ok (), Some build ->
      P.Pool.with_pool ~jobs @@ fun pool ->
      let b = build () in
      Printf.printf "benchmark: %s\n" b.B.name;
      Printf.printf "abstract tasks: %d, banks: %d, reference accuracy: %.3f\n"
        b.B.abstract_tasks b.B.banks b.B.reference_accuracy;
      let swings, label =
        if optimize then
          match B.optimize ~pool b ~pm with
          | Ok (swings, _) ->
              ( swings,
                Printf.sprintf "optimized at p_m = %.1f%%" (pm *. 100.0) )
          | Error msg ->
              prerr_endline ("optimization failed: " ^ msg);
              (B.max_swings b, "maximum (optimization failed)")
        else
          (List.init b.B.abstract_tasks (fun _ -> swing),
           Printf.sprintf "fixed %d" swing)
      in
      Printf.printf "swings: (%s) [%s]\n"
        (String.concat "," (List.map string_of_int swings))
        label;
      if batch > 1 then
        Printf.printf "batch: %d decisions per query (batched engine)\n" batch;
      let e = b.B.evaluate ~pool ~kernel_mode ~batch ~swings () in
      Printf.printf "PROMISE accuracy: %.3f (mismatch %.3f)\n"
        e.B.promise_accuracy e.B.mismatch;
      let energy = Model.total (B.promise_energy b ~swings) in
      let delay =
        float_of_int (Model.program_steady_cycles b.B.per_decision_program)
      in
      Printf.printf "energy/decision: %.1f pJ, steady delay: %.0f ns\n" energy
        delay;
      let conv8 = Model.total (Conv.energy Conv.Conv_8b b.B.conv_workload) in
      let conv8d = Conv.delay_ns Conv.Conv_8b b.B.conv_workload in
      Printf.printf
        "CONV-8b: %.1f pJ, %.0f ns  (energy ratio %.2fx, speed-up %.2fx)\n"
        conv8 conv8d (conv8 /. energy) (conv8d /. delay);
      `Ok ()

open Cmdliner

let name_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"BENCHMARK" ~doc:"Benchmark name (e.g. template-l1).")

let swing_arg =
  Arg.(value & opt int 7 & info [ "swing" ] ~docv:"N" ~doc:"SWING code 0-7.")

let pm_arg =
  Arg.(
    value & opt float 0.01
    & info [ "pm" ] ~docv:"P" ~doc:"Mismatch-probability budget.")

let optimize_arg =
  Arg.(
    value & flag
    & info [ "optimize" ] ~doc:"Run the compiler swing optimization.")

let jobs_conv =
  Arg.conv
    ( (fun s ->
        match P.Validate.int_in_range ~what:"--jobs" ~min:1 ~max:64 s with
        | Ok v -> Ok v
        | Error e -> Error (`Msg (P.Error.to_string e))),
      Format.pp_print_int )

let jobs_arg =
  Arg.(
    value & opt jobs_conv 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Fan the per-bank simulation and swing search out across $(docv) \
           domains. Results are bit-identical at any job count.")

let kernel_mode_arg =
  let modes =
    [ ("fused", P.Arch.Machine.Fused); ("reference", P.Arch.Machine.Reference) ]
  in
  Arg.(
    value
    & opt (enum modes) (P.Arch.Machine.default_kernel_mode ())
    & info [ "kernel-mode" ] ~docv:"MODE"
        ~doc:
          "Analog datapath implementation: $(b,fused) (compiled per-task \
           iteration kernels, the default) or $(b,reference) (the scalar \
           path). The two are bit-identical; reference exists as the \
           differential oracle.")

let batch_conv =
  Arg.conv
    ( (fun s ->
        match P.Validate.int_in_range ~what:"--batch" ~min:1 ~max:4096 s with
        | Ok v -> Ok v
        | Error e -> Error (`Msg (P.Error.to_string e))),
      Format.pp_print_int )

let batch_arg =
  Arg.(
    value
    & opt batch_conv (P.Arch.Machine.default_batch ())
    & info [ "batch" ] ~docv:"N"
        ~doc:
          "Evaluate $(docv) batched noise realizations of every query \
           through the batch-dimension engine (default \
           $(b,PROMISE_BATCH) or 1). Batch 1 is bit-identical to the \
           unbatched evaluation.")

let lint_arg =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Lint the compiled benchmark (Task-ISA verifier + interval \
           overflow analysis) before running it; the report goes to stderr.")

let no_lint_arg =
  Arg.(
    value & flag
    & info [ "no-lint" ] ~doc:"Disable linting (overrides $(b,--lint)).")

let lint_format_conv =
  Arg.conv
    ( (fun s ->
        match
          P.Validate.enum ~what:"--lint-format" ~values:[ "text"; "json" ] s
        with
        | Ok v -> Ok v
        | Error e -> Error (`Msg (P.Error.to_string e))),
      Format.pp_print_string )

let lint_format_arg =
  Arg.(
    value
    & opt lint_format_conv "text"
    & info [ "lint-format" ] ~docv:"FMT"
        ~doc:"Lint report format: $(b,text) or $(b,json).")

let () =
  let info =
    Cmd.info "promise-run" ~version:Promise.version
      ~doc:"run a PROMISE benchmark end to end"
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            ret
              (const run $ name_arg $ swing_arg $ pm_arg $ optimize_arg
             $ jobs_arg $ kernel_mode_arg $ batch_arg $ lint_arg $ no_lint_arg
             $ lint_format_arg))))
