(* promise-fleet: the campaign / report workloads across a fleet of
   forked, crash-isolated worker processes.

   The fleet layer (Promise.Fleet) shards the workload, supervises the
   workers (heartbeat liveness, per-shard deadlines, restart with
   backoff after any death — including kill -9 — and quarantine when a
   shard keeps dying), and checkpoints every completed shard on its
   own, so a killed or preempted fleet resumes only the shards it was
   missing. Stdout carries exactly the table the single-process paths
   print — bit-identical through crashes and resume cycles — while
   progress, fleet statistics and resume hints go to stderr, and every
   supervision event can be logged as JSONL (--incidents).

   --chaos kill-one is the built-in self-test: SIGKILL one busy worker
   mid-run and let supervision prove the output does not change.

   Usage: promise_fleet (campaign|report [SECTION...])
            [--quick] [--shards N] [--workers M] [--batch N]
            [--checkpoint-dir DIR] [--resume] [--incidents FILE]
            [--timeout-ms T] [--liveness-ms L] [--heartbeat-ms H]
            [--max-restarts R] [--seed S] [--chaos kill-one]
            [--bench FILE] *)

module P = Promise
open Cmdliner

let () = Printexc.record_backtrace true

let validated_int ~what ~min ~max =
  Arg.conv
    ( (fun s ->
        match P.Validate.int_in_range ~what ~min ~max s with
        | Ok v -> Ok v
        | Error e -> Error (`Msg (P.Error.to_string e))),
      Format.pp_print_int )

let validated_float_ms ~what =
  Arg.conv
    ( (fun s ->
        match P.Validate.non_negative_float ~what s with
        | Ok v -> Ok v
        | Error e -> Error (`Msg (P.Error.to_string e))),
      (fun ppf v -> Format.fprintf ppf "%g" v) )

let chaos_conv =
  Arg.conv
    ( (fun s ->
        match s with
        | "kill-one" -> Ok P.Fleet.Kill_one
        | _ -> Error (`Msg "--chaos accepts only: kill-one")),
      fun ppf c ->
        Format.pp_print_string ppf
          (match c with P.Fleet.Kill_one -> "kill-one" | P.Fleet.No_chaos -> "none")
    )

let exit_code_of_signal stop =
  match P.Supervisor.stop_signal stop with
  | Some s when s = Sys.sigterm -> 143
  | Some s when s = Sys.sigint -> 130
  | _ -> 130

(* BENCH_fleet.json: the multi-process sibling of BENCH_parallel.json —
   aggregate wall time plus the per-shard detail the summary carries. *)
let write_bench path ~workload ~quick (s : P.Fleet.summary) =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"fleet\",\n\
    \  \"workload\": \"%s\",\n\
    \  \"quick\": %b,\n\
    \  \"host_cores\": %d,\n\
    \  \"shards\": %d,\n\
    \  \"workers\": %d,\n\
    \  \"restarts\": %d,\n\
    \  \"resumed\": %d,\n\
    \  \"quarantined\": %d,\n\
    \  \"aggregate_ms\": %.1f,\n\
    \  \"per_shard\": [\n"
    workload quick
    (Domain.recommended_domain_count ())
    s.P.Fleet.shards s.P.Fleet.workers s.P.Fleet.restarts s.P.Fleet.resumed
    s.P.Fleet.quarantined s.P.Fleet.total_ms;
  Array.iteri
    (fun i (t : P.Fleet.shard_timing) ->
      Printf.fprintf oc
        "    {\"shard\": %d, \"ms\": %.1f, \"attempts\": %d, \"resumed\": %b}%s\n"
        t.P.Fleet.t_shard t.P.Fleet.t_ms t.P.Fleet.t_attempts
        t.P.Fleet.t_resumed
        (if i < Array.length s.P.Fleet.timings - 1 then "," else ""))
    s.P.Fleet.timings;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let eprint_summary workload (s : P.Fleet.summary) =
  Format.eprintf
    "fleet: %s done — %d shards / %d workers, %d restarts, %d resumed, %d \
     quarantined, %.0f ms@."
    workload s.P.Fleet.shards s.P.Fleet.workers s.P.Fleet.restarts
    s.P.Fleet.resumed s.P.Fleet.quarantined s.P.Fleet.total_ms

let resume_hint ~workload ~quick ~checkpoint_dir =
  Format.eprintf
    "interrupted; resume with: promise-fleet %s%s --checkpoint-dir %s \
     --resume@."
    workload
    (if quick then " --quick" else "")
    (Option.value checkpoint_dir ~default:"DIR")

let run workload_args quick shards workers batch seed timeout_ms liveness_ms
    heartbeat_ms max_restarts checkpoint_dir resume incidents_path chaos
    bench_path =
  match P.check_env () with
  | Error e -> `Error (false, P.Error.to_string e)
  | Ok () when resume && checkpoint_dir = None ->
      `Error (false, "--resume needs --checkpoint-dir DIR to resume from")
  | Ok () -> (
      let workload, section_names =
        match workload_args with
        | [] -> ("campaign", [])
        | w :: rest -> (w, rest)
      in
      if workload <> "campaign" && workload <> "report" then
        `Error
          ( false,
            Printf.sprintf "unknown workload %S (expected campaign or report)"
              workload )
      else if workload = "campaign" && section_names <> [] then
        `Error (false, "the campaign workload takes no section arguments")
      else begin
        let incidents_r =
          match incidents_path with
          | None -> Ok P.Incident.null
          | Some path -> P.Incident.to_file path
        in
        let backoff_r =
          P.Retry.policy ~max_attempts:16 ~base_delay_ms:50.0
            ~max_delay_ms:1000.0 ~seed ()
        in
        match (incidents_r, backoff_r) with
        | Error e, _ | _, Error e -> `Error (false, P.Error.to_string e)
        | Ok incidents, Ok restart_backoff -> (
            let stop = P.Supervisor.install_stop_signals () in
            let cfg_r =
              P.Fleet.config ~workers ?shard_timeout_ms:timeout_ms
                ?liveness_timeout_ms:liveness_ms ~heartbeat_ms ~max_restarts
                ~restart_backoff ~incidents ?checkpoint_dir ~resume ~chaos
                ~stop ()
            in
            match cfg_r with
            | Error e ->
                P.Incident.close incidents;
                `Error (false, P.Error.to_string e)
            | Ok cfg ->
                let on_shard_done ~shard ~completed ~total =
                  Format.eprintf "fleet: shard %d done (%d/%d)@." shard
                    completed total
                in
                let ppf = Format.std_formatter in
                let status =
                  if workload = "campaign" then begin
                    match
                      P.Campaign.report_fleet ~quick ~on_shard_done ~batch cfg
                        ~shards ppf
                    with
                    | P.Campaign.Fleet_interrupted _ ->
                        resume_hint ~workload ~quick ~checkpoint_dir;
                        `Interrupted
                    | P.Campaign.Fleet_rejected e ->
                        `Failed (P.Error.to_string e)
                    | P.Campaign.Fleet_completed (results, summary) ->
                        eprint_summary workload summary;
                        Option.iter
                          (fun p ->
                            write_bench p ~workload ~quick summary)
                          bench_path;
                        let s = P.Campaign.summarize_results results in
                        if s.P.Campaign.quarantined > 0 then
                          `Failed
                            (Printf.sprintf "%d cells quarantined"
                               s.P.Campaign.quarantined)
                        else if s.P.Campaign.undetected > 0 then
                          `Failed
                            (Printf.sprintf "campaign missed faults in %d cells"
                               s.P.Campaign.undetected)
                        else `Ok
                  end
                  else begin
                    let names =
                      match section_names with
                      | [] -> P.Report.quick_names ()
                      | names -> names
                    in
                    let known = P.Report.all_names () in
                    let unknown =
                      List.filter (fun n -> not (List.mem n known)) names
                    in
                    if unknown <> [] then
                      `Failed
                        ("unknown sections: " ^ String.concat ", " unknown)
                    else begin
                      match
                        P.Report.run_sections_fleet ~on_shard_done cfg ~shards
                          ppf names
                      with
                      | P.Report.Sections_fleet_interrupted _ ->
                          resume_hint ~workload ~quick ~checkpoint_dir;
                          `Interrupted
                      | P.Report.Sections_fleet_rejected e ->
                          `Failed (P.Error.to_string e)
                      | P.Report.Sections_fleet_done { quarantined; summary }
                        ->
                          eprint_summary workload summary;
                          Option.iter
                            (fun p ->
                              write_bench p ~workload ~quick summary)
                            bench_path;
                          if quarantined > 0 then
                            `Failed
                              (Printf.sprintf "%d sections quarantined"
                                 quarantined)
                          else `Ok
                    end
                  end
                in
                Format.pp_print_flush ppf ();
                P.Incident.close incidents;
                (match status with
                | `Interrupted -> Stdlib.exit (exit_code_of_signal stop)
                | `Failed msg -> `Error (false, msg)
                | `Ok -> `Ok ()))
      end)

let workload_arg =
  Arg.(
    value & pos_all string [ "campaign" ]
    & info [] ~docv:"WORKLOAD"
        ~doc:
          "$(b,campaign), or $(b,report) followed by section names (default: \
           the quick sections).")

let quick_arg =
  Arg.(
    value & flag
    & info [ "quick" ]
        ~doc:
          "Campaign: the five hard-fault scenarios only. Report: ignored \
           (select sections by name instead).")

let shards_arg =
  Arg.(
    value
    & opt (validated_int ~what:"--shards" ~min:1 ~max:4096) 4
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Split the workload into at most $(docv) independent shards — the \
           unit of checkpointing, restart and quarantine.")

let workers_arg =
  Arg.(
    value
    & opt (validated_int ~what:"--workers" ~min:1 ~max:64) 2
    & info [ "workers"; "j" ] ~docv:"M"
        ~doc:
          "Forked worker processes. The output is bit-identical at any \
           worker count.")

let batch_arg =
  Arg.(
    value
    & opt (validated_int ~what:"--batch" ~min:1 ~max:4096)
        (P.Arch.Machine.default_batch ())
    & info [ "batch" ] ~docv:"N"
        ~doc:
          "Campaign: score $(docv) batched noise realizations per query \
           through the batch engine (default $(b,PROMISE_BATCH) or 1). The \
           batch width is part of every shard checkpoint digest, so a \
           resume at a different width is rejected, never mixed. Report: \
           ignored.")

let seed_arg =
  Arg.(
    value
    & opt (validated_int ~what:"--seed" ~min:0 ~max:max_int) 0
    & info [ "seed" ] ~docv:"S"
        ~doc:
          "Seed of the restart-backoff jitter stream: reruns replay the \
           exact same waits.")

let timeout_arg =
  Arg.(
    value
    & opt (some (validated_float_ms ~what:"--timeout-ms")) None
    & info [ "timeout-ms" ] ~docv:"T"
        ~doc:
          "Per-shard deadline in milliseconds: an overdue shard's worker is \
           SIGKILLed, the shard re-queued with backoff, and finally \
           quarantined. Off by default.")

let liveness_arg =
  Arg.(
    value
    & opt (some (validated_float_ms ~what:"--liveness-ms")) None
    & info [ "liveness-ms" ] ~docv:"L"
        ~doc:
          "Max heartbeat silence before a worker is presumed wedged and \
           SIGKILLed. Off by default.")

let heartbeat_arg =
  Arg.(
    value
    & opt (validated_float_ms ~what:"--heartbeat-ms") 100.0
    & info [ "heartbeat-ms" ] ~docv:"H"
        ~doc:"Worker heartbeat period in milliseconds.")

let max_restarts_arg =
  Arg.(
    value
    & opt (validated_int ~what:"--max-restarts" ~min:0 ~max:16) 2
    & info [ "max-restarts" ] ~docv:"R"
        ~doc:
          "Worker deaths a single shard may consume before it is \
           quarantined as a typed error (its siblings finish).")

let checkpoint_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint-dir" ] ~docv:"DIR"
        ~doc:
          "Persist every completed shard as its own checkpoint in $(docv); \
           a fully-successful run removes them.")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Load completed shards from --checkpoint-dir DIR and run only the \
           missing ones. Checkpoints from a different configuration are \
           rejected, not silently resumed.")

let incidents_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "incidents" ] ~docv:"FILE"
        ~doc:
          "Append a JSONL incident log (worker spawns/deaths, shard \
           completions, timeouts, retries, quarantines, checkpoint writes, \
           chaos kills) to $(docv).")

let chaos_arg =
  Arg.(
    value
    & opt chaos_conv P.Fleet.No_chaos
    & info [ "chaos" ] ~docv:"MODE"
        ~doc:
          "Self-test: $(b,kill-one) SIGKILLs one busy worker mid-run; \
           supervision must deliver the identical output anyway.")

let bench_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "bench" ] ~docv:"FILE"
        ~doc:
          "Write per-shard and aggregate fleet timings as JSON to $(docv) \
           (the BENCH_fleet.json artifact).")

let () =
  let info =
    Cmd.info "promise-fleet" ~version:P.version
      ~doc:
        "campaign / report workloads across forked crash-isolated workers: \
         supervised, restarted, quarantined, checkpointed, resumable"
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            ret
              (const run $ workload_arg $ quick_arg $ shards_arg $ workers_arg
             $ batch_arg $ seed_arg $ timeout_arg $ liveness_arg
             $ heartbeat_arg $ max_restarts_arg $ checkpoint_dir_arg
             $ resume_arg $ incidents_arg $ chaos_arg $ bench_arg))))
