(* promise-lint: static analysis for PROMISE programs.

   Lints .pasm assembly files (whole-program Task-ISA verification),
   .sexp DSL kernels (SSA validation + interval overflow analysis +
   ISA verification of the compiled Tasks) and the compiled Table-2
   benchmarks.

   Exit codes: 0 = clean (warnings allowed), 1 = error diagnostics,
   2 = usage or I/O failure. *)

module P = Promise
module Diag = P.Diag
module Lint = P.Analysis.Lint
module Ssa_check = P.Analysis.Ssa_check
module Isa_check = P.Analysis.Isa_check
module Interval = P.Analysis.Interval
module B = P.Benchmarks

exception Io_failure of string

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error msg -> raise (Io_failure msg)

(* .sexp kernels run the full frontend + backend under the linter:
   SSA validation on the lowered function, interval analysis on the
   matched graph, then whole-program ISA verification of the compiled
   Tasks. A frontend/backend failure is itself a diagnostic. *)
let lint_kernel ~target src =
  match P.Ir.Sexp_frontend.parse src with
  | Error msg ->
      Lint.make ~target [ Diag.errorf ~code:"P-ASM-001" "parse error: %s" msg ]
  | Ok kernel -> (
      match P.Ir.Dsl.lower kernel with
      | exception Invalid_argument msg ->
          Lint.make ~target [ Diag.errorf ~code:"P-SSA-005" "%s" msg ]
      | ssa -> (
          let ssa_diags = Ssa_check.validate ssa in
          if Diag.count_errors ssa_diags > 0 then Lint.make ~target ssa_diags
          else
            match P.Ir.Pattern.match_function ssa with
            | Error msg ->
                Lint.make ~target
                  (ssa_diags
                  @ [
                      Diag.errorf ~code:"P-OVF-004"
                        "kernel does not match the Figure-7 pattern: %s" msg;
                    ])
            | Ok graph -> (
                let _, ovf_diags = Interval.analyze graph in
                match P.Compiler.Lower.program_of_graph graph with
                | Error e ->
                    Lint.make ~target
                      (ssa_diags @ ovf_diags
                      @ [
                          Diag.errorf ~code:"P-OVF-004" "lowering failed: %s"
                            (P.Error.to_string e);
                        ])
                | Ok program ->
                    Lint.make ~target
                      (ssa_diags @ ovf_diags
                      @ Isa_check.check_program
                          program.P.Isa.Program.tasks))))

let lint_file path =
  let src = read_file path in
  if Filename.check_suffix path ".pasm" then Lint.lint_pasm ~target:path src
  else if Filename.check_suffix path ".sexp" then lint_kernel ~target:path src
  else
    raise
      (Io_failure
         (Printf.sprintf "%s: unknown input kind (expected .pasm or .sexp)"
            path))

(* The nine Table-2 benchmarks: the Figure-10 suite plus DNN-1. *)
let benchmark_suite () = B.fig10_suite () @ [ B.dnn B.D1 ]

let lint_benchmark ?pm (b : B.t) =
  let isa = Isa_check.check_program b.B.per_decision_program.P.Isa.Program.tasks in
  let _, ovf = Interval.analyze b.B.graph in
  let stats =
    match (pm, b.B.stats) with
    | Some pm, Some s ->
        Interval.check_stats ~ea:s.P.Compiler.Precision.ea
          ~ew:s.P.Compiler.Precision.ew ~pm
    | _ -> []
  in
  Lint.make ~target:("benchmark:" ^ b.B.name) (isa @ ovf @ stats)

let run files benchmarks pm format =
  match P.check_env () with
  | Error e ->
      prerr_endline (P.Error.to_string e);
      2
  | Ok () -> (
      if files = [] && not benchmarks then begin
        prerr_endline
          "promise-lint: nothing to lint (give FILES or --benchmarks)";
        2
      end
      else
        try
          let reports =
            List.map lint_file files
            @
            if benchmarks then List.map (lint_benchmark ?pm) (benchmark_suite ())
            else []
          in
          (match format with
          | "json" -> print_string (Lint.render_json reports ^ "\n")
          | _ ->
              List.iter (fun r -> print_string (Lint.render_text r)) reports;
              print_endline (Lint.summary reports));
          Lint.exit_code reports
        with Io_failure msg ->
          prerr_endline ("promise-lint: " ^ msg);
          2)

open Cmdliner

let files_arg =
  Arg.(
    value & pos_all file []
    & info [] ~docv:"FILES" ~doc:"Inputs: $(b,.pasm) assembly or $(b,.sexp) DSL kernels.")

let benchmarks_arg =
  Arg.(
    value & flag
    & info [ "benchmarks" ]
        ~doc:"Lint the nine compiled Table-2 benchmark programs and graphs.")

let pm_conv =
  Arg.conv
    ( (fun s ->
        match P.Validate.non_negative_float ~what:"--pm" s with
        | Ok v when v > 0.0 -> Ok v
        | Ok _ -> Error (`Msg "--pm must be > 0")
        | Error e -> Error (`Msg (P.Error.to_string e))),
      Format.pp_print_float )

let pm_arg =
  Arg.(
    value
    & opt (some pm_conv) None
    & info [ "pm" ] ~docv:"P"
        ~doc:
          "Also check Sakr precision feasibility (P-OVF-003) of benchmark \
           statistics against mismatch budget $(docv).")

let format_conv =
  Arg.conv
    ( (fun s ->
        match
          P.Validate.enum ~what:"--format" ~values:[ "text"; "json" ] s
        with
        | Ok v -> Ok v
        | Error e -> Error (`Msg (P.Error.to_string e))),
      Format.pp_print_string )

let format_arg =
  Arg.(
    value & opt format_conv "text"
    & info [ "format" ] ~docv:"FMT"
        ~doc:"Report format: $(b,text) or $(b,json) (the CI artifact).")

let () =
  let info =
    Cmd.info "promise-lint" ~version:P.version
      ~doc:"static analysis for PROMISE programs"
  in
  exit
    (Cmd.eval'
       (Cmd.v info
          Term.(const run $ files_arg $ benchmarks_arg $ pm_arg $ format_arg)))
