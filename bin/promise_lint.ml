(* promise-lint: static analysis for PROMISE programs.

   Lints .pasm assembly files (whole-program Task-ISA verification +
   the Task-level dataflow passes), .sexp DSL kernels (SSA validation,
   liveness/dead-code, X-REG pressure, interval overflow analysis, and
   ISA + timing verification of the compiled Tasks) and the compiled
   Table-2 benchmarks.

   Policy layer: --deny PREFIX promotes matching warnings to errors,
   --max-warnings N bounds the warning count, --baseline FILE
   suppresses exactly the fingerprinted diagnostics recorded there
   (--write-baseline seeds such a file), --format sarif emits the CI
   code-scanning artifact.

   Exit codes: 0 = clean (unsuppressed warnings allowed, within
   --max-warnings), 1 = error diagnostics or warning budget exceeded,
   2 = usage or I/O failure. *)

module P = Promise
module Diag = P.Diag
module Lint = P.Analysis.Lint
module Ssa_check = P.Analysis.Ssa_check
module Isa_check = P.Analysis.Isa_check
module Interval = P.Analysis.Interval
module Liveness = P.Analysis.Liveness
module Regpressure = P.Analysis.Regpressure
module Timing_check = P.Analysis.Timing_check
module B = P.Benchmarks

exception Io_failure of string

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error msg -> raise (Io_failure msg)

let write_file path data =
  try
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc data)
  with Sys_error msg -> raise (Io_failure msg)

(* Task-level dataflow passes shared by every path that reaches a
   compiled Task stream. *)
let task_passes ?adc_units tasks =
  Liveness.check_program tasks @ Timing_check.check_program ?adc_units tasks

(* .sexp kernels run the full frontend + backend under the linter:
   SSA validation, liveness and X-REG pressure on the lowered
   function, interval analysis on the matched graph, then whole-
   program ISA verification and the timing pass on the compiled
   Tasks. A frontend/backend failure is itself a diagnostic. *)
let lint_kernel ?adc_units ~target src =
  match P.Ir.Sexp_frontend.parse src with
  | Error msg ->
      Lint.make ~target [ Diag.errorf ~code:"P-ASM-001" "parse error: %s" msg ]
  | Ok kernel -> (
      match P.Ir.Dsl.lower kernel with
      | exception Invalid_argument msg ->
          Lint.make ~target [ Diag.errorf ~code:"P-SSA-005" "%s" msg ]
      | ssa -> (
          let ssa_diags =
            Ssa_check.validate ssa @ Liveness.check ssa
            @ Regpressure.check_function ssa
          in
          if Diag.count_errors ssa_diags > 0 then Lint.make ~target ssa_diags
          else
            match P.Ir.Pattern.match_function ssa with
            | Error msg ->
                Lint.make ~target
                  (ssa_diags
                  @ [
                      Diag.errorf ~code:"P-OVF-004"
                        "kernel does not match the Figure-7 pattern: %s" msg;
                    ])
            | Ok graph -> (
                let _, ovf_diags = Interval.analyze graph in
                match P.Compiler.Lower.program_of_graph graph with
                | Error e ->
                    Lint.make ~target
                      (ssa_diags @ ovf_diags
                      @ [
                          Diag.errorf ~code:"P-OVF-004" "lowering failed: %s"
                            (P.Error.to_string e);
                        ])
                | Ok program ->
                    let tasks = program.P.Isa.Program.tasks in
                    Lint.make ~target
                      (ssa_diags @ ovf_diags @ Isa_check.check_program tasks
                      @ task_passes ?adc_units tasks))))

(* .pasm files: the located ISA verifier plus the Task-level dataflow
   passes, with Task-index spans relocated onto source lines. *)
let lint_pasm ?adc_units ~target src =
  match P.Isa.Asm.parse_program_located src with
  | Error d -> Lint.make ~target [ d ]
  | Ok located ->
      let tasks = List.map snd located in
      let lines = Array.of_list (List.map fst located) in
      let relocate d =
        match Diag.span d with
        | Diag.Task i when i >= 0 && i < Array.length lines ->
            Diag.with_span d (Diag.Line lines.(i))
        | _ -> d
      in
      Lint.make ~target
        (Isa_check.check_program_located located
        @ List.map relocate (task_passes ?adc_units tasks))

let lint_file ?adc_units path =
  let src = read_file path in
  if Filename.check_suffix path ".pasm" then lint_pasm ?adc_units ~target:path src
  else if Filename.check_suffix path ".sexp" then
    lint_kernel ?adc_units ~target:path src
  else
    raise
      (Io_failure
         (Printf.sprintf "%s: unknown input kind (expected .pasm or .sexp)"
            path))

(* The nine Table-2 benchmarks: the Figure-10 suite plus DNN-1. *)
let benchmark_suite () = B.fig10_suite () @ [ B.dnn B.D1 ]

let lint_benchmark ?pm ?adc_units (b : B.t) =
  let tasks = b.B.per_decision_program.P.Isa.Program.tasks in
  let isa = Isa_check.check_program tasks in
  let _, ovf = Interval.analyze b.B.graph in
  let stats =
    match (pm, b.B.stats) with
    | Some pm, Some s ->
        Interval.check_stats ~ea:s.P.Compiler.Precision.ea
          ~ew:s.P.Compiler.Precision.ew ~pm
    | _ -> []
  in
  Lint.make
    ~target:("benchmark:" ^ b.B.name)
    (isa @ ovf @ stats @ task_passes ?adc_units tasks)

let run files benchmarks pm format baseline write_baseline max_warnings deny
    adc_units =
  match P.check_env () with
  | Error e ->
      prerr_endline (P.Error.to_string e);
      2
  | Ok () -> (
      if files = [] && not benchmarks then begin
        prerr_endline
          "promise-lint: nothing to lint (give FILES or --benchmarks)";
        2
      end
      else
        try
          (* env-var defaults behind the flags (flags win) *)
          let baseline =
            match baseline with
            | Some _ -> baseline
            | None -> (
                match Sys.getenv_opt "PROMISE_LINT_BASELINE" with
                | Some "" | None -> None
                | p -> p)
          in
          let deny =
            deny
            @ (match Sys.getenv_opt "PROMISE_LINT_DENY" with
              | Some spec when String.trim spec <> "" ->
                  String.split_on_char ',' (String.trim spec)
              | _ -> [])
          in
          let reports =
            List.map (lint_file ?adc_units) files
            @
            if benchmarks then
              List.map (lint_benchmark ?pm ?adc_units) (benchmark_suite ())
            else []
          in
          let reports = Lint.apply_deny ~deny reports in
          match write_baseline with
          | Some path ->
              write_file path (Lint.baseline_of_reports reports ^ "\n");
              Printf.printf "wrote baseline (%d diagnostic(s)) to %s\n"
                (Lint.total_errors reports + Lint.total_warnings reports)
                path;
              0
          | None ->
              let reports, suppressed =
                match baseline with
                | None -> (reports, 0)
                | Some path -> (
                    match Lint.parse_baseline (read_file path) with
                    | Error msg -> raise (Io_failure (path ^ ": " ^ msg))
                    | Ok fps -> Lint.apply_baseline ~baseline:fps reports)
              in
              (match format with
              | "json" -> print_string (Lint.render_json reports ^ "\n")
              | "sarif" ->
                  print_string
                    (Lint.render_sarif ~tool_version:P.version reports ^ "\n")
              | _ ->
                  List.iter
                    (fun r -> print_string (Lint.render_text r))
                    reports;
                  let s = Lint.summary reports in
                  print_endline
                    (if suppressed = 0 then s
                     else
                       Printf.sprintf "%s (%d suppressed by baseline)" s
                         suppressed));
              Lint.exit_code ?max_warnings reports
        with Io_failure msg ->
          prerr_endline ("promise-lint: " ^ msg);
          2)

open Cmdliner

let files_arg =
  Arg.(
    value & pos_all file []
    & info [] ~docv:"FILES" ~doc:"Inputs: $(b,.pasm) assembly or $(b,.sexp) DSL kernels.")

let benchmarks_arg =
  Arg.(
    value & flag
    & info [ "benchmarks" ]
        ~doc:"Lint the nine compiled Table-2 benchmark programs and graphs.")

let pm_conv =
  Arg.conv
    ( (fun s ->
        match P.Validate.non_negative_float ~what:"--pm" s with
        | Ok v when v > 0.0 -> Ok v
        | Ok _ -> Error (`Msg "--pm must be > 0")
        | Error e -> Error (`Msg (P.Error.to_string e))),
      Format.pp_print_float )

let pm_arg =
  Arg.(
    value
    & opt (some pm_conv) None
    & info [ "pm" ] ~docv:"P"
        ~doc:
          "Also check Sakr precision feasibility (P-OVF-003) of benchmark \
           statistics against mismatch budget $(docv).")

let format_conv =
  Arg.conv
    ( (fun s ->
        match
          P.Validate.enum ~what:"--format" ~values:[ "text"; "json"; "sarif" ] s
        with
        | Ok v -> Ok v
        | Error e -> Error (`Msg (P.Error.to_string e))),
      Format.pp_print_string )

let format_arg =
  Arg.(
    value & opt format_conv "text"
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Report format: $(b,text), $(b,json) (the CI artifact) or \
           $(b,sarif) (SARIF 2.1.0 for code scanning).")

let baseline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:
          "Suppress every diagnostic whose fingerprint is recorded in \
           $(docv) (see $(b,--write-baseline)). Defaults to \
           $(b,PROMISE_LINT_BASELINE) when set.")

let write_baseline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "write-baseline" ] ~docv:"FILE"
        ~doc:
          "Write the fingerprints of every current diagnostic to $(docv) \
           and exit 0 — the seed for $(b,--baseline) gating.")

let max_warnings_conv =
  Arg.conv
    ( (fun s ->
        match P.Validate.int_in_range ~what:"--max-warnings" ~min:0
                ~max:1_000_000 s with
        | Ok v -> Ok v
        | Error e -> Error (`Msg (P.Error.to_string e))),
      Format.pp_print_int )

let max_warnings_arg =
  Arg.(
    value
    & opt (some max_warnings_conv) None
    & info [ "max-warnings" ] ~docv:"N"
        ~doc:
          "Exit 1 when more than $(docv) warnings remain after baseline \
           suppression (0 = warnings are fatal).")

let deny_arg =
  Arg.(
    value & opt_all string []
    & info [ "deny" ] ~docv:"CODE-PREFIX"
        ~doc:
          "Promote warnings whose code starts with $(docv) (e.g. \
           $(b,P-TIM)) to errors; repeatable. Merged with \
           $(b,PROMISE_LINT_DENY) (comma-separated).")

let adc_units_conv =
  Arg.conv
    ( (fun s ->
        match
          P.Validate.int_in_range ~what:"--adc-units" ~min:1
            ~max:P.Analog.Adc.units_per_bank s
        with
        | Ok v -> Ok v
        | Error e -> Error (`Msg (P.Error.to_string e))),
      Format.pp_print_int )

let adc_units_arg =
  Arg.(
    value
    & opt (some adc_units_conv) None
    & info [ "adc-units" ] ~docv:"N"
        ~doc:
          "Lint the timing pass against a degraded bank with only $(docv) \
           live ADC units (default: the full complement of 8) — P-TIM-001 \
           dwell includes conversion stalls and P-TIM-003 flags conversion \
           backlog.")

let () =
  let info =
    Cmd.info "promise-lint" ~version:P.version
      ~doc:"static analysis for PROMISE programs"
  in
  exit
    (Cmd.eval'
       (Cmd.v info
          Term.(
            const run $ files_arg $ benchmarks_arg $ pm_arg $ format_arg
            $ baseline_arg $ write_baseline_arg $ max_warnings_arg $ deny_arg
            $ adc_units_arg)))
