(* promise-faultsim: the fault-injection campaign, run supervised.

   Injects hard-fault scenarios (stuck/dead lanes, dead banks, dead
   ADC units, ADC offset, X-REG transients, swing drift, excess
   leakage) into the simulated machine, runs the built-in self-test
   against the injection ground truth, re-runs the fast benchmarks
   under the BIST-derived recovery, and prints the detection /
   recovery / residual-accuracy table.

   The campaign is a first-class long-running job: progress is
   checkpointed atomically (--checkpoint, resume with --resume),
   SIGINT/SIGTERM flush a final checkpoint instead of losing the run,
   per-cell deadlines (--timeout-ms) retry with seeded backoff
   (--max-retries, --seed) and quarantine exhausted cells without
   aborting their siblings, and every supervision event lands in a
   JSONL incident log (--incidents).

   Usage: promise_faultsim [--quick] [--jobs N] [--checkpoint FILE]
                           [--resume] [--incidents FILE] [--timeout-ms T]
                           [--max-retries R] [--seed S] [--max-residual K] *)

module P = Promise

(* exceptions escaping supervised items carry their backtrace into the
   typed error context; recording must be on for it to be non-empty *)
let () = Printexc.record_backtrace true
open Cmdliner

(* A cmdliner conv over the typed validator: junk reports the same
   structured Error.t a PROMISE_* env-var failure does. *)
let validated_int ~what ~min ~max =
  Arg.conv
    ( (fun s ->
        match P.Validate.int_in_range ~what ~min ~max s with
        | Ok v -> Ok v
        | Error e -> Error (`Msg (P.Error.to_string e))),
      Format.pp_print_int )

let validated_float_ms ~what =
  Arg.conv
    ( (fun s ->
        match P.Validate.non_negative_float ~what s with
        | Ok v -> Ok v
        | Error e -> Error (`Msg (P.Error.to_string e))),
      (fun ppf v -> Format.fprintf ppf "%g" v) )

let exit_code_of_signal stop =
  match P.Supervisor.stop_signal stop with
  | Some s when s = Sys.sigterm -> 143
  | Some s when s = Sys.sigint -> 130
  | _ -> 130

let run quick jobs seed timeout_ms max_retries max_residual checkpoint resume
    incidents_path =
  match P.check_env () with
  | Error e -> `Error (false, P.Error.to_string e)
  | Ok () when resume && checkpoint = None ->
      `Error (false, "--resume needs --checkpoint FILE to resume from")
  | Ok () -> (
      let incidents_r =
        match incidents_path with
        | None -> Ok P.Incident.null
        | Some path -> P.Incident.to_file path
      in
      let retry_r = P.Retry.policy ~max_attempts:(max_retries + 1) ~seed () in
      match (incidents_r, retry_r) with
      | Error e, _ | _, Error e -> `Error (false, P.Error.to_string e)
      | Ok incidents, Ok retry ->
          let stop = P.Supervisor.install_stop_signals () in
          let sup = P.Supervisor.config ?timeout_ms ~retry ~incidents () in
          let session =
            P.Supervisor.session ~sup ?checkpoint ~resume ~stop ()
          in
          let on_checkpoint ~completed ~total =
            (* stderr: the stdout table must stay diffable *)
            Format.eprintf "checkpoint: %d/%d cells -> %s@." completed total
              (Option.value checkpoint ~default:"-")
          in
          let ppf = Format.std_formatter in
          let outcome =
            P.Pool.with_pool ~jobs (fun pool ->
                P.Campaign.report_supervised ~quick ~pool ~on_checkpoint
                  session ppf)
          in
          Format.pp_print_flush ppf ();
          P.Incident.close incidents;
          (match outcome with
          | P.Campaign.Interrupted { completed; total } ->
              Format.eprintf
                "interrupted at %d/%d cells; resume with: promise-faultsim%s \
                 --checkpoint %s --resume@."
                completed total
                (if quick then " --quick" else "")
                (Option.value checkpoint ~default:"FILE");
              Stdlib.exit (exit_code_of_signal stop)
          | P.Campaign.Rejected e -> `Error (false, P.Error.to_string e)
          | P.Campaign.Completed results ->
              let s = P.Campaign.summarize_results results in
              if s.P.Campaign.undetected > 0 then
                `Error
                  ( false,
                    Printf.sprintf "campaign missed faults in %d cells"
                      s.P.Campaign.undetected )
              else if s.P.Campaign.residual_errors > max_residual then
                `Error
                  ( false,
                    Printf.sprintf
                      "%d residual (unrecovered or quarantined) errors \
                       exceed --max-residual %d"
                      s.P.Campaign.residual_errors max_residual )
              else `Ok ()))

let quick_arg =
  Arg.(
    value & flag
    & info [ "quick" ]
        ~doc:
          "Run the five hard-fault scenarios only (skip transients, drift \
           and leakage).")

let jobs_arg =
  Arg.(
    value
    & opt (validated_int ~what:"--jobs" ~min:1 ~max:64) 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Fan the campaign cells out across $(docv) domains. The table is \
           bit-identical at any job count.")

let seed_arg =
  Arg.(
    value
    & opt (validated_int ~what:"--seed" ~min:0 ~max:max_int) 0
    & info [ "seed" ] ~docv:"S"
        ~doc:
          "Seed of the retry-backoff jitter stream: reruns replay the exact \
           same waits.")

let timeout_arg =
  Arg.(
    value
    & opt (some (validated_float_ms ~what:"--timeout-ms")) None
    & info [ "timeout-ms" ] ~docv:"T"
        ~doc:
          "Per-cell deadline in milliseconds. An overdue cell is logged by \
           the watchdog, retried with backoff, and finally quarantined — \
           sibling cells are unaffected. Off by default (deadlines make \
           results depend on machine speed).")

let max_retries_arg =
  Arg.(
    value
    & opt (validated_int ~what:"--max-retries" ~min:0 ~max:16) 0
    & info [ "max-retries" ] ~docv:"R"
        ~doc:
          "Retries per cell after its first failure (exponential backoff \
           with deterministic jitter).")

let max_residual_arg =
  Arg.(
    value
    & opt (validated_int ~what:"--max-residual" ~min:0 ~max:max_int) 0
    & info [ "max-residual" ] ~docv:"K"
        ~doc:
          "Exit nonzero when more than $(docv) cells end unrecovered or \
           quarantined — the CI gate.")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Atomically persist campaign progress to $(docv) after every \
           chunk; a completed run removes the file.")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Resume from --checkpoint FILE. A checkpoint written by a \
           different configuration is rejected, not silently resumed.")

let incidents_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "incidents" ] ~docv:"FILE"
        ~doc:
          "Append a JSONL incident log (timeouts, retries, quarantines, \
           checkpoint writes, signal flushes) to $(docv).")

let () =
  let info =
    Cmd.info "promise-faultsim" ~version:P.version
      ~doc:
        "fault-injection campaign: detection, recovery, residual accuracy — \
         supervised, checkpointed, resumable"
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            ret
              (const run $ quick_arg $ jobs_arg $ seed_arg $ timeout_arg
             $ max_retries_arg $ max_residual_arg $ checkpoint_arg
             $ resume_arg $ incidents_arg))))
