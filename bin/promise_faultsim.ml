(* promise-faultsim: the fault-injection campaign.

   Injects hard-fault scenarios (stuck/dead lanes, dead banks, dead
   ADC units, ADC offset, X-REG transients, swing drift, excess
   leakage) into the simulated machine, runs the built-in self-test
   against the injection ground truth, re-runs the fast benchmarks
   under the BIST-derived recovery, and prints the detection /
   recovery / residual-accuracy table.

   Usage: promise_faultsim [--quick] [--jobs N] *)

module P = Promise
open Cmdliner

let run quick jobs =
  if jobs < 1 || jobs > 64 then `Error (false, "--jobs must be in 1..64")
  else
    let ppf = Format.std_formatter in
    let ok =
      P.Pool.with_pool ~jobs (fun pool -> P.Campaign.report ~quick ~pool ppf)
    in
    if ok then `Ok ()
    else `Error (false, "campaign detected unrecovered faults")

let quick_arg =
  Arg.(
    value & flag
    & info [ "quick" ]
        ~doc:
          "Run the five hard-fault scenarios only (skip transients, drift \
           and leakage).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Fan the campaign cells out across $(docv) domains. The table is \
           bit-identical at any job count.")

let () =
  let info =
    Cmd.info "promise-faultsim" ~version:P.version
      ~doc:"fault-injection campaign: detection, recovery, residual accuracy"
  in
  exit (Cmd.eval (Cmd.v info Term.(ret (const run $ quick_arg $ jobs_arg))))
