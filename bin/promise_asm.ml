(* promise-asm: assemble PROMISE assembly to binary Task words and
   disassemble them back (paper Fig. 5 encoding).

   Usage:
     promise_asm assemble  [FILE]   # asm -> hex words on stdout
     promise_asm disassemble [FILE] # hex words -> asm on stdout
     promise_asm validate  [FILE]   # parse + validate, report task count *)

module P = Promise

let read_input = function
  | None ->
      let buf = Buffer.create 4096 in
      (try
         while true do
           Buffer.add_channel buf stdin 1
         done
       with End_of_file -> ());
      Buffer.contents buf
  | Some path ->
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s

let die msg =
  prerr_endline ("promise-asm: " ^ msg);
  exit 1

let target_of = function None -> "<stdin>" | Some path -> path

(* --lint re-runs the source through the line-located whole-program
   ISA verifier; the report goes to stderr so stdout stays the
   assembled/validated output. *)
let lint_report ~format report =
  (match format with
  | "json" -> prerr_endline (P.Analysis.Lint.render_json [ report ])
  | _ ->
      prerr_string (P.Analysis.Lint.render_text report);
      prerr_endline (P.Analysis.Lint.summary [ report ]));
  if P.Analysis.Lint.exit_code [ report ] <> 0 then
    die "lint reported errors (see diagnostics above)"

let lint_source ~lint ~format ~file src =
  if lint then
    lint_report ~format (P.Analysis.Lint.lint_pasm ~target:(target_of file) src)

let assemble file lint no_lint fmt =
  let src = read_input file in
  match P.Isa.Asm.parse_program src with
  | Error msg -> die msg
  | Ok tasks ->
      lint_source ~lint:(lint && not no_lint) ~format:fmt ~file src;
      List.iter (fun t -> print_endline (P.Isa.Encode.hex_of_task t)) tasks;
      `Ok ()

let disassemble file lint no_lint fmt =
  let lines =
    read_input file |> String.split_on_char '\n'
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let tasks =
    List.mapi
      (fun i line ->
        match P.Isa.Encode.task_of_hex line with
        | Ok t -> t
        | Error msg -> die (Printf.sprintf "word %d: %s" (i + 1) msg))
      lines
  in
  if lint && not no_lint then
    lint_report ~format:fmt
      (P.Analysis.Lint.make ~target:(target_of file)
         (P.Analysis.Isa_check.check_program tasks));
  print_string (P.Isa.Asm.print_program tasks);
  `Ok ()

let validate file lint no_lint fmt =
  let src = read_input file in
  match P.Isa.Asm.parse_program src with
  | Error msg -> die msg
  | Ok tasks ->
      lint_source ~lint:(lint && not no_lint) ~format:fmt ~file src;
      Printf.printf "%d task(s) valid; program uses up to %d bank(s)\n"
        (List.length tasks)
        (List.fold_left (fun a t -> max a (P.Isa.Task.banks t)) 1 tasks);
      `Ok ()

open Cmdliner

let file_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE"
         ~doc:"Input file; standard input when omitted.")

let lint_arg =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Run the whole-program Task-ISA verifier on the input; the report \
           goes to stderr.")

let no_lint_arg =
  Arg.(
    value & flag
    & info [ "no-lint" ] ~doc:"Disable linting (overrides $(b,--lint)).")

let lint_format_conv =
  Arg.conv
    ( (fun s ->
        match
          P.Validate.enum ~what:"--lint-format" ~values:[ "text"; "json" ] s
        with
        | Ok v -> Ok v
        | Error e -> Error (`Msg (P.Error.to_string e))),
      Format.pp_print_string )

let lint_format_arg =
  Arg.(
    value
    & opt lint_format_conv "text"
    & info [ "lint-format" ] ~docv:"FMT"
        ~doc:"Lint report format: $(b,text) or $(b,json).")

let cmd name doc f =
  Cmd.v (Cmd.info name ~doc)
    Term.(
      ret (const f $ file_arg $ lint_arg $ no_lint_arg $ lint_format_arg))

let () =
  let info =
    Cmd.info "promise-asm" ~version:P.version
      ~doc:"PROMISE Task assembler / disassembler"
  in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            cmd "assemble" "assemble PROMISE assembly into hex Task words"
              assemble;
            cmd "disassemble" "disassemble hex Task words into assembly"
              disassemble;
            cmd "validate" "parse and validate a PROMISE assembly program"
              validate;
          ]))
