(* promise-serve: the batched inference daemon and its self-test load
   generator.

   Three mutually-exclusive entry points:

   --listen PATH     serve Ipc-framed requests on a Unix socket through
                     the admission-controlled coalescing engine
                     (Promise.Serve): bounded queue, flush at
                     --batch-max or --flush-us, per-request --deadline-ms
                     watchdog, per-bank pool affinity via --jobs.
   --probe PATH      client smoke: pipeline --requests requests for
                     --model on one connection and account the answers.
   --selftest-load   drive the engine in-process in Batched and Single
                     mode over bit-for-bit twin models, verify the
                     response streams are identical, and measure
                     requests/sec, p50/p95/p99 latency, queue depth and
                     the batch-size histogram (--bench BENCH_serve.json).
   --chaos           seeded chaos soak: drive the engine on a virtual
                     clock under a scheduled failure storm (failpoints
                     on IPC/checkpoint/incident/admission/flush, a bank
                     death mid-service, a dispatcher stall, a machine
                     blackout that trips the circuit breaker) and gate
                     on the soak invariants: exactly one outcome per
                     admitted request, no crash, survivors bit-identical
                     to a fault-free twin run (--bench BENCH_chaos.json,
                     --events canonical transcript for replay diffing).

   Usage: promise_serve (--listen P | --probe P | --selftest-load | --chaos)
            [--models A,B] [--model M] [--requests N] [--max-requests N]
            [--queue N] [--batch-max N] [--flush-us U] [--deadline-ms T]
            [--jobs J] [--mode batched|single] [--load closed:N|open:R]
            [--seed S] [--noise SEED] [--cache-capacity N]
            [--failpoints SITE:POLICY,..] [--breaker-threshold N]
            [--dwell-budget-us U] [--events FILE]
            [--connect-timeout-ms T] [--incidents FILE] [--bench FILE] *)

module P = Promise
open Cmdliner

let () = Printexc.record_backtrace true

let validated_int ~what ~min ~max =
  Arg.conv
    ( (fun s ->
        match P.Validate.int_in_range ~what ~min ~max s with
        | Ok v -> Ok v
        | Error e -> Error (`Msg (P.Error.to_string e))),
      Format.pp_print_int )

let validated_float_ms ~what =
  Arg.conv
    ( (fun s ->
        match P.Validate.non_negative_float ~what s with
        | Ok v -> Ok v
        | Error e -> Error (`Msg (P.Error.to_string e))),
      (fun ppf v -> Format.fprintf ppf "%g" v) )

(* ------------------------------------------------------------------ *)
(* Model registry                                                       *)
(* ------------------------------------------------------------------ *)

let known_models =
  [
    ("matched_filter", P.Benchmarks.matched_filter);
    ("template_l1", P.Benchmarks.template_l1);
    ("template_l2", P.Benchmarks.template_l2);
    ("svm", P.Benchmarks.svm);
    ("knn_l1", P.Benchmarks.knn_l1);
    ("knn_l2", P.Benchmarks.knn_l2);
    ("pca", P.Benchmarks.pca);
    ("linreg", P.Benchmarks.linreg);
  ]

let model_names = String.concat ", " (List.map fst known_models)

let benchmark_of_name name =
  match List.assoc_opt name known_models with
  | Some mk -> Ok (mk ())
  | None ->
      Error
        (Printf.sprintf "unknown model %S (expected one of: %s)" name
           model_names)

let models_of_names ~noise_seed names =
  List.fold_left
    (fun acc name ->
      match acc with
      | Error _ as e -> e
      | Ok ms -> (
          match benchmark_of_name name with
          | Error _ as e -> e
          | Ok b -> Ok (P.Serve.model_of_benchmark ~name ~noise_seed b :: ms)))
    (Ok []) names
  |> Result.map List.rev

let mode_conv =
  Arg.conv
    ( (fun s ->
        match s with
        | "batched" -> Ok P.Serve.Batched
        | "single" -> Ok P.Serve.Single
        | _ -> Error (`Msg "--mode accepts: batched, single")),
      fun ppf m ->
        Format.pp_print_string ppf
          (match m with P.Serve.Batched -> "batched" | P.Serve.Single -> "single")
    )

let load_conv =
  Arg.conv
    ( (fun s ->
        match String.split_on_char ':' s with
        | [ "closed"; n ] -> (
            match P.Validate.int_in_range ~what:"--load closed" ~min:1
                    ~max:4096 n
            with
            | Ok v -> Ok (P.Serve.Closed_loop v)
            | Error e -> Error (`Msg (P.Error.to_string e)))
        | [ "open"; r ] -> (
            match float_of_string_opt r with
            | Some v when v > 0.0 -> Ok (P.Serve.Open_loop v)
            | _ -> Error (`Msg "--load open:RATE needs a positive rate"))
        | _ -> Error (`Msg "--load accepts: closed:CONCURRENCY or open:RATE")),
      fun ppf l ->
        match l with
        | P.Serve.Closed_loop n -> Format.fprintf ppf "closed:%d" n
        | P.Serve.Open_loop r -> Format.fprintf ppf "open:%g" r )

let exit_code_of_signal stop =
  match P.Supervisor.stop_signal stop with
  | Some s when s = Sys.sigterm -> 143
  | Some s when s = Sys.sigint -> 130
  | _ -> 130

(* ------------------------------------------------------------------ *)
(* BENCH_serve.json                                                     *)
(* ------------------------------------------------------------------ *)

let report_json oc tag (r : P.Serve.load_report) =
  Printf.fprintf oc
    "  \"%s\": {\n\
    \    \"served\": %d,\n\
    \    \"rejected\": %d,\n\
    \    \"timeouts\": %d,\n\
    \    \"failures\": %d,\n\
    \    \"seconds\": %.6f,\n\
    \    \"requests_per_sec\": %.1f,\n\
    \    \"p50_ms\": %.3f,\n\
    \    \"p95_ms\": %.3f,\n\
    \    \"p99_ms\": %.3f,\n\
    \    \"mean_batch\": %.2f,\n\
    \    \"max_batch\": %.0f,\n\
    \    \"max_queue_depth\": %d,\n\
    \    \"batch_hist\": [%s],\n\
    \    \"digest\": \"%s\"\n\
    \  }"
    tag r.P.Serve.l_served r.P.Serve.l_rejected r.P.Serve.l_timeouts
    r.P.Serve.l_failures r.P.Serve.l_seconds r.P.Serve.l_rps r.P.Serve.l_p50_ms
    r.P.Serve.l_p95_ms r.P.Serve.l_p99_ms r.P.Serve.l_mean_batch
    r.P.Serve.l_max_batch
    r.P.Serve.l_max_queue_depth
    (String.concat ", "
       (List.map
          (fun (size, count) -> Printf.sprintf "[%.0f, %d]" size count)
          r.P.Serve.l_batch_hist))
    r.P.Serve.l_digest

let write_bench path ~model ~requests ~queue ~batch_max ~flush_us ~load
    ~noiseless ~identical (batched : P.Serve.load_report)
    (single : P.Serve.load_report) =
  let oc = open_out path in
  let speedup =
    if single.P.Serve.l_rps > 0.0 then
      batched.P.Serve.l_rps /. single.P.Serve.l_rps
    else 0.0
  in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"serve\",\n\
    \  \"model\": \"%s\",\n\
    \  \"requests\": %d,\n\
    \  \"queue\": %d,\n\
    \  \"batch_max\": %d,\n\
    \  \"flush_us\": %d,\n\
    \  \"load\": \"%s\",\n\
    \  \"noiseless\": %b,\n\
    \  \"identical_output\": %b,\n\
    \  \"speedup\": %.2f,\n\
    \  \"note\": \"noiseless serving models by default; noisy Monte-Carlo \
     batches amortize less (see BENCH_batch.json)\",\n"
    model requests queue batch_max flush_us load noiseless identical speedup;
  report_json oc "batched" batched;
  Printf.fprintf oc ",\n";
  report_json oc "single" single;
  Printf.fprintf oc "\n}\n";
  close_out oc

(* ------------------------------------------------------------------ *)
(* Entry points                                                         *)
(* ------------------------------------------------------------------ *)

let with_incidents path f =
  match path with
  | None -> f P.Incident.null
  | Some p -> (
      match P.Incident.to_file p with
      | Error e -> `Error (false, P.Error.to_string e)
      | Ok incidents ->
          let r = f incidents in
          P.Incident.close incidents;
          r)

let run_daemon ~listen ~models ~noise ~max_requests ~queue ~batch_max
    ~flush_us ~deadline_ms ~jobs ~mode ~breaker_threshold ~dwell_budget_us
    ~incidents_path =
  with_incidents incidents_path (fun incidents ->
      match models_of_names ~noise_seed:noise models with
      | Error msg -> `Error (false, msg)
      | Ok ms -> (
          let stop = P.Supervisor.install_stop_signals () in
          Format.eprintf "serve: listening on %s (models: %s)@." listen
            (String.concat ", " (List.map P.Serve.model_name ms));
          let go pool =
            P.Serve.daemon ~max_requests ~incidents ?pool ?deadline_ms ~mode
              ?breaker_threshold ?dwell_budget_us ~queue ~batch_max ~flush_us
              ~listen ~stop ms
          in
          let result =
            if jobs > 1 then
              P.Pool.with_pool ~jobs (fun pool -> go (Some pool))
            else go None
          in
          match result with
          | Error e -> `Error (false, P.Error.to_string e)
          | Ok summary ->
              Format.eprintf "serve: done — %d responses, %d batches@."
                summary.P.Serve.d_completed
                summary.P.Serve.d_stats.P.Serve.batches;
              if P.Supervisor.stop_requested stop then
                Stdlib.exit (exit_code_of_signal stop);
              `Ok ()))

let run_probe ~path ~model ~requests ~connect_timeout_ms =
  match
    P.Serve.probe ~connect_timeout_ms ~requests ~path ~model ()
  with
  | Error e -> `Error (false, P.Error.to_string e)
  | Ok s ->
      Printf.printf "probe: sent=%d ok=%d rejected=%d\n" s.P.Serve.p_sent
        s.P.Serve.p_ok s.P.Serve.p_rejected;
      Format.eprintf "probe: max coalesced batch %d@." s.P.Serve.p_max_batch;
      if s.P.Serve.p_ok = 0 then `Error (false, "no request succeeded")
      else `Ok ()

let run_selftest ~model ~noise ~requests ~repeats ~queue ~batch_max ~flush_us
    ~deadline_ms ~jobs ~load ~seed ~incidents_path ~bench_path =
  with_incidents incidents_path (fun incidents ->
      match benchmark_of_name model with
      | Error msg -> `Error (false, msg)
      | Ok b -> (
          let thunk () =
            P.Serve.model_of_benchmark ~name:model ~noise_seed:noise b
          in
          let run_once mode =
            P.Serve.load_run ~seed ~jobs ~incidents ?deadline_ms ~mode ~queue
              ~batch_max ~flush_us ~requests ~load ~model:thunk ()
          in
          (* best-of-N per mode: throughput is compared at each mode's
             least-noisy repetition, and every repetition must produce
             the same digest — the identity contract has no variance *)
          let run mode =
            let rec go best k =
              if k = 0 then best
              else
                match (run_once mode, best) with
                | (Error _ as e), _ -> e
                | Ok r, Ok prev ->
                    if not (String.equal r.P.Serve.l_digest prev.P.Serve.l_digest)
                    then
                      P.Error.fail ~layer:"serve"
                        "two repetitions of the same load disagree — the \
                         digest must not depend on timing"
                    else
                      go
                        (Ok
                           (if r.P.Serve.l_rps > prev.P.Serve.l_rps then r
                            else prev))
                        (k - 1)
                | Ok r, Error _ -> go (Ok r) (k - 1)
            in
            match run_once mode with
            | Error _ as e -> e
            | Ok first -> go (Ok first) (repeats - 1)
          in
          let load_str =
            Format.asprintf "%a" (Arg.conv_printer load_conv) load
          in
          Printf.printf "serve selftest: model=%s requests=%d load=%s\n" model
            requests load_str;
          match run P.Serve.Batched with
          | Error e -> `Error (false, P.Error.to_string e)
          | Ok batched -> (
              match run P.Serve.Single with
              | Error e -> `Error (false, P.Error.to_string e)
              | Ok single ->
                  let print tag (r : P.Serve.load_report) =
                    Printf.printf
                      "%s: served=%d rejected=%d timeouts=%d failures=%d\n"
                      tag r.P.Serve.l_served r.P.Serve.l_rejected
                      r.P.Serve.l_timeouts r.P.Serve.l_failures;
                    Format.eprintf
                      "%s: %.1f req/s, p50 %.3f ms, p95 %.3f ms, p99 %.3f \
                       ms, mean batch %.2f, max queue depth %d@."
                      tag r.P.Serve.l_rps r.P.Serve.l_p50_ms
                      r.P.Serve.l_p95_ms r.P.Serve.l_p99_ms
                      r.P.Serve.l_mean_batch r.P.Serve.l_max_queue_depth
                  in
                  print "batched" batched;
                  print "single" single;
                  let identical =
                    String.equal batched.P.Serve.l_digest
                      single.P.Serve.l_digest
                  in
                  Printf.printf "identical_output=%b\n" identical;
                  if single.P.Serve.l_rps > 0.0 then
                    Format.eprintf "coalescing speedup: %.2fx@."
                      (batched.P.Serve.l_rps /. single.P.Serve.l_rps);
                  Option.iter
                    (fun p ->
                      write_bench p ~model ~requests ~queue ~batch_max
                        ~flush_us ~load:load_str
                        ~noiseless:(noise = None) ~identical batched single)
                    bench_path;
                  if not identical then
                    `Error
                      ( false,
                        "batched and single response streams differ — the \
                         bit-identity contract is broken" )
                  else `Ok ())))

(* ------------------------------------------------------------------ *)
(* Chaos soak                                                           *)
(* ------------------------------------------------------------------ *)

(* The clean-vs-fault comparison load: the fault leg arms a mild
   failpoint schedule (dispatch faults absorbed by the heal ladder,
   admission faults surfacing as typed rejections) so BENCH_chaos.json
   shows what self-healing costs in throughput and tail latency. *)
let bench_fault_spec = "serve.flush:fail_prob=0.05,queue.admit:fail_prob=0.01"

let write_bench_chaos path ~model ~seed (r : P.Serve.chaos_report)
    (clean : P.Serve.load_report) (fault : P.Serve.load_report) =
  let oc = open_out path in
  let slowdown =
    if fault.P.Serve.l_rps > 0.0 then
      clean.P.Serve.l_rps /. fault.P.Serve.l_rps
    else 0.0
  in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"chaos\",\n\
    \  \"model\": \"%s\",\n\
    \  \"seed\": %d,\n\
    \  \"soak\": {\n\
    \    \"requests\": %d,\n\
    \    \"admitted\": %d,\n\
    \    \"served\": %d,\n\
    \    \"timeouts\": %d,\n\
    \    \"failed\": %d,\n\
    \    \"shed\": %d,\n\
    \    \"rejected\": %d,\n\
    \    \"lost\": %d,\n\
    \    \"multi\": %d,\n\
    \    \"healed\": %d,\n\
    \    \"fallback_batches\": %d,\n\
    \    \"breaker_opens\": %d,\n\
    \    \"survivors_checked\": %d,\n\
    \    \"survivor_mismatches\": %d,\n\
    \    \"ipc_faults\": %d,\n\
    \    \"checkpoint_failures\": %d,\n\
    \    \"sink_degraded\": %d\n\
    \  },\n\
    \  \"fault_spec\": \"%s\",\n\
    \  \"clean_over_fault_speedup\": %.2f,\n"
    model seed r.P.Serve.c_requests r.P.Serve.c_admitted r.P.Serve.c_served
    r.P.Serve.c_timeouts r.P.Serve.c_failed r.P.Serve.c_shed
    r.P.Serve.c_rejected r.P.Serve.c_lost r.P.Serve.c_multi
    r.P.Serve.c_healed r.P.Serve.c_fallback_batches
    r.P.Serve.c_breaker_opens r.P.Serve.c_survivors_checked
    r.P.Serve.c_survivor_mismatches r.P.Serve.c_ipc_faults
    r.P.Serve.c_checkpoint_failures r.P.Serve.c_sink_degraded
    bench_fault_spec slowdown;
  report_json oc "clean" clean;
  Printf.fprintf oc ",\n";
  report_json oc "fault" fault;
  Printf.fprintf oc "\n}\n";
  close_out oc

let run_chaos ~model ~noise ~requests ~seed ~incidents_path ~events_path
    ~bench_path =
  match benchmark_of_name model with
  | Error msg -> `Error (false, msg)
  | Ok b -> (
      let thunk () =
        P.Serve.model_of_benchmark ~name:model ~noise_seed:noise b
      in
      let incident_path =
        Option.value incidents_path ~default:"chaos_incidents.jsonl"
      in
      let checkpoint_path = incident_path ^ ".ckpt" in
      let requests = if requests = 0 then 240 else requests in
      Printf.printf "chaos: model=%s seed=%d requests=%d\n%!" model seed
        requests;
      match
        P.Serve.chaos_run ~seed ~requests ~incident_path ~checkpoint_path
          ~model:thunk ()
      with
      | Error e -> `Error (false, P.Error.to_string e)
      | Ok r -> (
          (try Sys.remove checkpoint_path with Sys_error _ -> ());
          Printf.printf
            "chaos: admitted=%d served=%d timeouts=%d failed=%d shed=%d \
             rejected=%d\n"
            r.P.Serve.c_admitted r.P.Serve.c_served r.P.Serve.c_timeouts
            r.P.Serve.c_failed r.P.Serve.c_shed r.P.Serve.c_rejected;
          Printf.printf
            "chaos: healed=%d fallback_batches=%d breaker_opens=%d \
             sink_degraded=%d\n"
            r.P.Serve.c_healed r.P.Serve.c_fallback_batches
            r.P.Serve.c_breaker_opens r.P.Serve.c_sink_degraded;
          Printf.printf
            "chaos: lost=%d multi=%d survivors=%d mismatches=%d\n"
            r.P.Serve.c_lost r.P.Serve.c_multi r.P.Serve.c_survivors_checked
            r.P.Serve.c_survivor_mismatches;
          Format.eprintf
            "chaos: %d ipc faults (typed), %d injected checkpoint failures@."
            r.P.Serve.c_ipc_faults r.P.Serve.c_checkpoint_failures;
          Option.iter
            (fun p ->
              let oc = open_out p in
              output_string oc r.P.Serve.c_events;
              close_out oc)
            events_path;
          let bench =
            match bench_path with
            | None -> Ok ()
            | Some p -> (
                let run_load () =
                  P.Serve.load_run ~seed ~mode:P.Serve.Batched ~queue:256
                    ~batch_max:64 ~flush_us:2000 ~requests:256
                    ~load:(P.Serve.Closed_loop 32) ~model:thunk ()
                in
                match run_load () with
                | Error _ as e -> Result.map ignore e
                | Ok clean -> (
                    match P.Failpoint.configure_spec ~seed bench_fault_spec with
                    | Error _ as e -> e
                    | Ok () ->
                        let fault = run_load () in
                        P.Failpoint.reset ();
                        Result.map
                          (fun fault ->
                            write_bench_chaos p ~model ~seed r clean fault)
                          fault))
          in
          match bench with
          | Error e -> `Error (false, P.Error.to_string e)
          | Ok () ->
              let violated =
                (if r.P.Serve.c_lost > 0 then [ "lost outcomes" ] else [])
                @ (if r.P.Serve.c_multi > 0 then [ "duplicate outcomes" ]
                   else [])
                @
                if r.P.Serve.c_survivor_mismatches > 0 then
                  [ "survivor bit-identity" ]
                else []
              in
              if violated <> [] then
                `Error
                  ( false,
                    "chaos invariants violated: "
                    ^ String.concat ", " violated )
              else begin
                Printf.printf "chaos: invariants hold\n";
                `Ok ()
              end))

let run listen probe selftest chaos models model noise max_requests requests
    repeats queue batch_max flush_us deadline_ms jobs mode load seed
    breaker_threshold dwell_budget_us failpoints cache_capacity
    connect_timeout_ms incidents_path events_path bench_path =
  match P.check_env () with
  | Error e -> `Error (false, P.Error.to_string e)
  | Ok () -> (
      let armed =
        match failpoints with
        | Some spec -> P.Failpoint.configure_spec ~seed spec
        | None -> P.Failpoint.from_env ~seed ()
      in
      match armed with
      | Error e -> `Error (false, P.Error.to_string e)
      | Ok () -> (
          Option.iter
            (fun n -> P.Compiler.Pipeline.Cache.set_capacity (Some n))
            cache_capacity;
          match (listen, probe, selftest, chaos) with
          | Some listen, None, false, false ->
              run_daemon ~listen ~models ~noise ~max_requests ~queue
                ~batch_max ~flush_us ~deadline_ms ~jobs ~mode
                ~breaker_threshold ~dwell_budget_us ~incidents_path
          | None, Some path, false, false ->
              let requests = if requests = 0 then 8 else requests in
              run_probe ~path ~model ~requests ~connect_timeout_ms
          | None, None, true, false ->
              let requests = if requests = 0 then 512 else requests in
              run_selftest ~model ~noise ~requests ~repeats ~queue ~batch_max
                ~flush_us ~deadline_ms ~jobs ~load ~seed ~incidents_path
                ~bench_path
          | None, None, false, true ->
              run_chaos ~model ~noise ~requests ~seed ~incidents_path
                ~events_path ~bench_path
          | _ ->
              `Error
                ( false,
                  "pick exactly one of --listen PATH, --probe PATH, \
                   --selftest-load, --chaos" )))

(* ------------------------------------------------------------------ *)
(* Arguments                                                            *)
(* ------------------------------------------------------------------ *)

let listen_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "listen" ] ~docv:"PATH"
        ~doc:"Serve requests on the Unix-domain socket $(docv).")

let probe_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "probe" ] ~docv:"PATH"
        ~doc:
          "Connect to a daemon at $(docv) (retrying until \
           --connect-timeout-ms) and pipeline --requests requests.")

let selftest_arg =
  Arg.(
    value & flag
    & info [ "selftest-load" ]
        ~doc:
          "Drive the engine in-process in batched and single mode over twin \
           models, verify bit-identical response streams, and measure \
           throughput and latency percentiles.")

let models_arg =
  Arg.(
    value
    & opt (list string) [ "matched_filter" ]
    & info [ "models" ] ~docv:"NAMES"
        ~doc:
          (Printf.sprintf
             "Comma-separated models the daemon serves (known: %s)."
             model_names))

let model_arg =
  Arg.(
    value
    & opt string "matched_filter"
    & info [ "model" ] ~docv:"NAME"
        ~doc:"The model --probe and --selftest-load request.")

let noise_arg =
  Arg.(
    value
    & opt (some (validated_int ~what:"--noise" ~min:0 ~max:max_int)) None
    & info [ "noise" ] ~docv:"SEED"
        ~doc:
          "Seed the analog noise streams (Monte-Carlo serving). Default: \
           noiseless, deterministic models.")

let max_requests_arg =
  Arg.(
    value
    & opt (validated_int ~what:"--max-requests" ~min:0 ~max:max_int) 0
    & info [ "max-requests" ] ~docv:"N"
        ~doc:
          "Daemon: exit after $(docv) responses (0 = serve until \
           SIGINT/SIGTERM). The drain still flushes pending batches.")

let requests_arg =
  Arg.(
    value
    & opt (validated_int ~what:"--requests" ~min:0 ~max:10_000_000) 0
    & info [ "requests" ] ~docv:"N"
        ~doc:
          "Requests to issue (default: 8 for --probe, 512 for \
           --selftest-load).")

let repeats_arg =
  Arg.(
    value
    & opt (validated_int ~what:"--repeats" ~min:1 ~max:100) 1
    & info [ "repeats" ] ~docv:"K"
        ~doc:
          "Selftest: run each mode $(docv) times and score its best \
           repetition — machine noise (GC pauses, frequency scaling) hits \
           at most one of them. Every repetition must produce the same \
           digest.")

let queue_arg =
  Arg.(
    value
    & opt
        (validated_int ~what:"--queue" ~min:1 ~max:1_048_576)
        (P.Serve.default_queue ())
    & info [ "queue" ] ~docv:"N"
        ~doc:
          "Admission-queue capacity; a full queue rejects with a typed \
           Capacity error (default $(b,PROMISE_SERVE_QUEUE) or 256).")

let batch_max_arg =
  Arg.(
    value
    & opt
        (validated_int ~what:"--batch-max" ~min:1 ~max:4096)
        (P.Serve.default_batch_max ())
    & info [ "batch-max" ] ~docv:"N"
        ~doc:
          "Flush a model's pending set at $(docv) coalesced decisions \
           (default $(b,PROMISE_SERVE_BATCH) or 64).")

let flush_us_arg =
  Arg.(
    value
    & opt
        (validated_int ~what:"--flush-us" ~min:1 ~max:10_000_000)
        (P.Serve.default_flush_us ())
    & info [ "flush-us" ] ~docv:"U"
        ~doc:
          "Flush a pending set once its oldest request has waited $(docv) \
           microseconds (default $(b,PROMISE_SERVE_FLUSH_US) or 2000).")

let deadline_arg =
  Arg.(
    value
    & opt (some (validated_float_ms ~what:"--deadline-ms")) None
    & info [ "deadline-ms" ] ~docv:"T"
        ~doc:
          "Per-request watchdog: a request undispatched $(docv) ms after \
           admission is answered with a typed Timeout. Off by default.")

let jobs_arg =
  Arg.(
    value
    & opt (validated_int ~what:"--jobs" ~min:1 ~max:64) 1
    & info [ "jobs"; "j" ] ~docv:"J"
        ~doc:
          "Domain pool fanning multi-bank groups out bank-major \
           (bit-identical at any job count).")

let mode_arg =
  Arg.(
    value
    & opt mode_conv P.Serve.Batched
    & info [ "mode" ] ~docv:"MODE"
        ~doc:
          "Daemon dispatch mode: $(b,batched) (coalesced) or $(b,single) \
           (one decision per dispatch; the comparison baseline).")

let load_arg =
  Arg.(
    value
    & opt load_conv (P.Serve.Closed_loop 64)
    & info [ "load" ] ~docv:"SPEC"
        ~doc:
          "Selftest arrival process: $(b,closed:N) keeps N requests \
           outstanding; $(b,open:R) draws seeded Poisson arrivals at R \
           requests/sec (overload exercises admission rejection).")

let seed_arg =
  Arg.(
    value
    & opt (validated_int ~what:"--seed" ~min:0 ~max:max_int) 0
    & info [ "seed" ] ~docv:"S"
        ~doc:"Seed of the open-loop inter-arrival stream.")

let cache_capacity_arg =
  Arg.(
    value
    & opt (some (validated_int ~what:"--cache-capacity" ~min:1 ~max:max_int))
        None
    & info [ "cache-capacity" ] ~docv:"N"
        ~doc:
          "Bound each compilation-cache table to $(docv) entries with LRU \
           eviction (a long-lived daemon should set this; evicted models \
           recompile on their next request). Default: unbounded.")

let connect_timeout_arg =
  Arg.(
    value
    & opt (validated_float_ms ~what:"--connect-timeout-ms") 10_000.0
    & info [ "connect-timeout-ms" ] ~docv:"T"
        ~doc:"--probe: keep retrying the connect for $(docv) ms.")

let chaos_arg =
  Arg.(
    value & flag
    & info [ "chaos" ]
        ~doc:
          "Seeded chaos soak: drive the engine on a virtual clock under a \
           scheduled failure storm and gate on exactly-one-outcome, \
           no-crash and survivor bit-identity. Same --seed, same incident \
           transcript, byte for byte.")

let failpoints_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "failpoints" ] ~docv:"SPEC"
        ~doc:
          "Arm the fault-injection registry: comma-separated \
           $(i,site:policy) pairs, policies $(b,off), $(b,fail_once), \
           $(b,fail_prob=P), $(b,delay_ns=N), $(b,eintr). Overrides \
           $(b,PROMISE_FAILPOINTS). Draws are seeded by --seed.")

let breaker_threshold_arg =
  Arg.(
    value
    & opt
        (some (validated_int ~what:"--breaker-threshold" ~min:1 ~max:10_000))
        None
    & info [ "breaker-threshold" ] ~docv:"N"
        ~doc:
          "Daemon: open a model's circuit breaker after $(docv) consecutive \
           batch failures (default $(b,PROMISE_SERVE_BREAKER_THRESHOLD) or \
           8).")

let dwell_budget_arg =
  Arg.(
    value
    & opt
        (some (validated_int ~what:"--dwell-budget-us" ~min:1 ~max:10_000_000))
        None
    & info [ "dwell-budget-us" ] ~docv:"U"
        ~doc:
          "Daemon: shed new submissions with a typed Overloaded error while \
           the queue head has waited more than $(docv) microseconds \
           (default $(b,PROMISE_SERVE_DWELL_BUDGET_US), off when unset).")

let events_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "events" ] ~docv:"FILE"
        ~doc:
          "Chaos: write the canonical incident transcript (wall-clock \
           stripped) to $(docv); two soaks with the same seed must produce \
           byte-identical files.")

let incidents_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "incidents" ] ~docv:"FILE"
        ~doc:
          "Append a JSONL incident log (admission rejections, watchdog \
           timeouts, dispatch failures) to $(docv).")

let bench_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "bench" ] ~docv:"FILE"
        ~doc:
          "Selftest: write throughput/latency/batch-histogram JSON to \
           $(docv) (the BENCH_serve.json artifact).")

let () =
  let info =
    Cmd.info "promise-serve" ~version:P.version
      ~doc:
        "batched inference serving: admission control, request coalescing, \
         deadline flush, per-request watchdogs, and a measuring self-test \
         load generator"
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            ret
              (const run $ listen_arg $ probe_arg $ selftest_arg $ chaos_arg
             $ models_arg
             $ model_arg $ noise_arg $ max_requests_arg $ requests_arg
             $ repeats_arg $ queue_arg $ batch_max_arg $ flush_us_arg
             $ deadline_arg
             $ jobs_arg $ mode_arg $ load_arg $ seed_arg
             $ breaker_threshold_arg $ dwell_budget_arg $ failpoints_arg
             $ cache_capacity_arg
             $ connect_timeout_arg $ incidents_arg $ events_arg $ bench_arg))))
