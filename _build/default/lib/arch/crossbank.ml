let combine partials = Array.fold_left ( +. ) 0.0 partials

let transfers_per_iteration ~banks =
  if banks < 1 then invalid_arg "Crossbank: banks must be >= 1";
  banks - 1
