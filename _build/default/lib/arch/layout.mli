(** Mapping workloads onto banks and word rows (paper §3.3, "Extension to
    Large Scale Applications").

    A vector of length [vector_len] is cut into [banks × segments] slices
    of [lanes_per_bank ≤ 128] elements: element [e] lives in bank
    [e / (segments·lanes_per_bank)], segment
    [(e mod segments·lanes_per_bank) / lanes_per_bank]. Consecutive
    segments of one W row occupy consecutive word rows, so a Task covers
    a whole row in [segments] iterations with [X_PRD = segments - 1] and
    [RPT_NUM = segments·rows - 1]. *)

type plan = {
  vector_len : int;
  rows : int;  (** number of weight vectors W_j (N_o) *)
  banks : int;  (** 2^multi_bank banks per task *)
  multi_bank : int;
  segments : int;  (** word rows per vector per bank; [x_prd = segments-1] *)
  lanes_per_bank : int;
  word_rows_per_task : int;  (** per bank: [segments * rows_per_task] *)
  rows_per_task : int;  (** ≤ 128/segments and ≤ 128 (RPT_NUM limit) *)
  tasks : int;  (** row chunks = ceil (rows / rows_per_task) *)
}

(** [plan ~vector_len ~rows] — a placement, or [Error] when the vector
    cannot fit (needs more than 8 banks × 4 segments). *)
val plan : vector_len:int -> rows:int -> (plan, string) result

(** [plan_exn ~vector_len ~rows]. *)
val plan_exn : vector_len:int -> rows:int -> plan

(** [x_prd p] — [segments - 1]. *)
val x_prd : plan -> int

(** [total_banks p] — banks needed to hold every row chunk resident
    simultaneously: [banks × tasks]. *)
val total_banks : plan -> int

(** [chunk_rows p k] — rows covered by row-chunk [k] (the last chunk may
    be short). *)
val chunk_rows : plan -> int -> int

(** [slice_of_vector p v ~bank ~segment] — the [lanes_per_bank] codes of
    [v] that bank [bank], segment [segment] holds (zero-padded). *)
val slice_of_vector : plan -> int array -> bank:int -> segment:int -> int array
