type t = { stuck : (int * int) list; adc_offset : float }

let none = { stuck = []; adc_offset = 0.0 }
let is_none t = t.stuck = [] && t.adc_offset = 0.0

let with_stuck_lane t ~lane ~code =
  if lane < 0 || lane >= Params.lanes then
    invalid_arg "Faults.with_stuck_lane: lane out of range";
  if code < -128 || code > 127 then
    invalid_arg "Faults.with_stuck_lane: code not 8-bit";
  { t with stuck = (lane, code) :: List.remove_assoc lane t.stuck }

let with_adc_offset t offset = { t with adc_offset = offset }
let stuck_lanes t = t.stuck
let adc_offset t = t.adc_offset

let apply_stuck t values =
  if t.stuck = [] then values
  else begin
    let out = Array.copy values in
    List.iter
      (fun (lane, code) ->
        if lane < Array.length out then
          out.(lane) <- float_of_int code /. 128.0)
      t.stuck;
    out
  end

let pp ppf t =
  Format.fprintf ppf "faults: %d stuck lane(s), ADC offset %.4f"
    (List.length t.stuck) t.adc_offset
