(** CTRL: control-signal generation (paper §3.1 — "CTRL is a controller
    to generate enable signals for the aforementioned components based
    on a given instruction").

    Given a decoded Task, CTRL emits the per-cycle enable schedule of
    one pipeline iteration: bit-line precharge, the PWM word-line
    burst, the aSD/aVD enables, the ADC start strobe and the TH strobe.
    This is the behavioural counterpart of the synthesized Verilog CTRL
    the paper validates ("generating the correct control signals at the
    right time"); tests assert orderings and durations against the
    {!Timing} model. *)

type signal =
  | Precharge  (** bit-line precharge ahead of the access *)
  | Wl_pwm of { bits : int }  (** the B_w word lines, PWM-coded *)
  | X_drive  (** X-REG drives the fused Class-1 operand *)
  | Sd_enable of Promise_isa.Opcode.asd
  | Avd_share  (** charge-share across the aSD outputs *)
  | Adc_start
  | Th_strobe of Promise_isa.Opcode.class4
  | Write_enable  (** digital write path *)
  | Read_enable  (** digital read path (sense amps) *)

val pp_signal : Format.formatter -> signal -> unit
val equal_signal : signal -> signal -> bool

(** One scheduled assertion: [cycle] is relative to iteration issue;
    the signal stays asserted for [duration] cycles. *)
type step = { cycle : int; duration : int; signal : signal }

(** [iteration_schedule task] — the enable schedule of one iteration,
    in assertion order. Durations sum per stage to the Table-3 stage
    delays. *)
val iteration_schedule : Promise_isa.Task.t -> step list

(** [last_cycle steps] — the cycle after the final deassertion. *)
val last_cycle : step list -> int

(** [signal_counts task] — how many times each signal asserts over the
    whole task (iterations included): the activity factors the energy
    model's per-op costs summarize. *)
val signal_counts : Promise_isa.Task.t -> (signal * int) list
