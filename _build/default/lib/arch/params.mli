(** Architectural constants of a PROMISE bank and the multi-bank fabric
    (paper §3.1, Fig. 2). *)

val n_row : int
(** 512 SRAM rows per bank. *)

val n_col : int
(** 256 SRAM columns per bank. *)

val word_bits : int
(** B_w = 8: each stored word is 8 bits (1 sign + 7 magnitude). *)

val rows_per_word_row : int
(** 4: an 8-bit word spans 4 consecutive rows (sub-ranged 4b MSB / 4b LSB
    across two neighboring columns). *)

val cols_per_word : int
(** 2: the MSB/LSB column pair of the sub-ranged read. *)

val lanes : int
(** 128 = [n_col / cols_per_word]: elements produced by one aREAD. *)

val word_rows : int
(** 128 = [n_row / rows_per_word_row]: addressable word rows per bank. *)

val xreg_depth : int
(** 8 X-REG vectors of [lanes] elements. *)

val banks_per_page : int
(** 4. *)

val max_pages : int
(** 8. *)

val max_banks : int
(** 32 = [banks_per_page * max_pages]. *)

val cycle_ns : float
(** 1 cycle = 1 ns (Table 3). *)

val bank_bytes : int
(** Storage capacity of one bank in bytes (16 KB). *)
