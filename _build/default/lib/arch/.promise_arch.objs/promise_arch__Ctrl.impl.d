lib/arch/ctrl.pp.ml: Format List Opcode Params Promise_isa Task Timing
