lib/arch/machine.pp.ml: Array Bank Bitcell_array Crossbank Float Layout List Op_param Opcode Option Params Printf Program Promise_analog Promise_isa Task Th_unit Timing Trace Xreg
