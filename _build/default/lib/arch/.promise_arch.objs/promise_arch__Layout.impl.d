lib/arch/layout.pp.ml: Array Params Printf
