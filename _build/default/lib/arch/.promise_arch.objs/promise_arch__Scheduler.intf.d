lib/arch/scheduler.pp.mli: Promise_isa
