lib/arch/crossbank.pp.ml: Array
