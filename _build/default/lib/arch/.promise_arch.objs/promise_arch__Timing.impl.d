lib/arch/timing.pp.ml: List Opcode Params Program Promise_analog Promise_isa Task
