lib/arch/bank.pp.ml: Array Bitcell_array Faults Float List Op_param Opcode Params Promise_analog Promise_isa Task Timing Xreg
