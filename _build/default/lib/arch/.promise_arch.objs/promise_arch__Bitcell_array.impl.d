lib/arch/bitcell_array.pp.ml: Array Float Params Printf Promise_analog
