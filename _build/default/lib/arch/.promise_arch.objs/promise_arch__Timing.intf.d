lib/arch/timing.pp.mli: Promise_isa
