lib/arch/scheduler.pp.ml: Array Float List Promise_analog Promise_isa Task Timing
