lib/arch/faults.pp.ml: Array Format List Params
