lib/arch/trace.pp.ml: Buffer Format List Params Printf Promise_isa
