lib/arch/params.pp.ml:
