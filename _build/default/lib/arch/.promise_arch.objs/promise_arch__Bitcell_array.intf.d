lib/arch/bitcell_array.pp.mli: Promise_analog
