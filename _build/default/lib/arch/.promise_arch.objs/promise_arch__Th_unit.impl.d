lib/arch/th_unit.pp.ml: Float Opcode Promise_isa
