lib/arch/trace.pp.mli: Format Promise_isa
