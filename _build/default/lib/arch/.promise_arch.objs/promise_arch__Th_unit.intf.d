lib/arch/th_unit.pp.mli: Promise_isa
