lib/arch/layout.pp.mli:
