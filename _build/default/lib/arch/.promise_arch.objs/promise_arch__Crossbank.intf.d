lib/arch/crossbank.pp.mli:
