lib/arch/machine.pp.mli: Bank Layout Promise_isa Th_unit Trace
