lib/arch/bank.pp.mli: Bitcell_array Faults Promise_analog Promise_isa Xreg
