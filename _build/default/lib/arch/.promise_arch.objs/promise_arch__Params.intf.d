lib/arch/params.pp.mli:
