lib/arch/xreg.pp.ml: Array Params Printf
