lib/arch/xreg.pp.mli:
