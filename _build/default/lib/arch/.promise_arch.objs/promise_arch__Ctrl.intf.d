lib/arch/ctrl.pp.mli: Format Promise_isa
