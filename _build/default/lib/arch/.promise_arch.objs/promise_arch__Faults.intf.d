lib/arch/faults.pp.mli: Format
