(** The cross-bank rail (paper §3.1, Fig. 2(b)).

    When a Task runs on [2^MULTI_BANK] banks, each non-zero bank's 8-bit
    ADC output is moved to bank 0 every iteration and summed there before
    the TH stage. Transfers are digital, hence reliable; each 8-bit word
    costs ~0.5 pJ (post-layout, activity factor 0.5) — accounted in the
    energy model, negligible (<1%) next to aREAD. *)

(** [combine partials] — digital sum of the per-bank partial samples. *)
val combine : float array -> float

(** [transfers_per_iteration ~banks] — 8-bit words moved on the rail per
    Task iteration ([banks - 1]). *)
val transfers_per_iteration : banks:int -> int
