open Promise_isa

let class1_delay = function
  | Opcode.C1_none -> 0
  | Opcode.C1_write -> 2
  | Opcode.C1_read -> 2
  | Opcode.C1_aread -> 5
  | Opcode.C1_asubt -> 7
  | Opcode.C1_aadd -> 7

let asd_delay = function
  | Opcode.Asd_none -> 0
  | Opcode.Asd_compare -> 6
  | Opcode.Asd_absolute -> 6
  | Opcode.Asd_square -> 8
  | Opcode.Asd_sign_mult -> 14
  | Opcode.Asd_unsign_mult -> 14

let class2_delay (c2 : Opcode.class2) = asd_delay c2.asd

let class3_latency = function
  | Opcode.C3_none -> 0
  | Opcode.C3_adc -> Promise_analog.Adc.conversion_delay_cycles

let class4_delay = function
  | Opcode.C4_accumulate -> 4
  | Opcode.C4_mean -> 3
  | Opcode.C4_threshold -> 2
  | Opcode.C4_max -> 4
  | Opcode.C4_min -> 4
  | Opcode.C4_sigmoid -> 3
  | Opcode.C4_relu -> 3

let task_tp (t : Task.t) =
  max 1
    (max (class1_delay t.class1)
       (max (class2_delay t.class2) (class4_delay t.class4)))

let program_tp (p : Program.t) =
  List.fold_left (fun acc t -> max acc (task_tp t)) 1 p.Program.tasks

let worst_case_tp () =
  let c1 = List.fold_left (fun a c -> max a (class1_delay c)) 0 Opcode.all_class1 in
  let c2 = List.fold_left (fun a c -> max a (class2_delay c)) 0 Opcode.all_class2 in
  let c4 = List.fold_left (fun a c -> max a (class4_delay c)) 0 Opcode.all_class4 in
  max c1 (max c2 c4)

let fill_cycles (t : Task.t) =
  class1_delay t.class1 + class2_delay t.class2 + class3_latency t.class3
  + class4_delay t.class4

let task_cycles_at ~tp (t : Task.t) =
  fill_cycles t + ((Task.iterations t - 1) * tp)

let task_cycles t = task_cycles_at ~tp:(task_tp t) t
let task_steady_cycles t = Task.iterations t * task_tp t

let unpipelined_iteration_cycles (t : Task.t) = max 1 (fill_cycles t)

let throughput_ops_per_ns t =
  float_of_int Params.lanes /. (float_of_int (task_tp t) *. Params.cycle_ns)
