(** Hardware fault models for failure-injection testing.

    The paper's error analysis covers process-variation noise (random)
    and transfer-curve non-idealities (deterministic, re-trainable).
    This module adds the *hard* failure modes a deployed part can
    develop, so error paths and graceful-degradation behaviour are
    testable: stuck bit-cell columns (a lane always reads a fixed code)
    and a systematic ADC offset. *)

type t

(** No faults. *)
val none : t

val is_none : t -> bool

(** [with_stuck_lane t ~lane ~code] — lane [lane] of every word row
    reads as [code] (8-bit, -128..127) on the analog path. *)
val with_stuck_lane : t -> lane:int -> code:int -> t

(** [with_adc_offset t offset] — every ADC conversion is shifted by
    [offset] (in normalized analog units) before quantization. *)
val with_adc_offset : t -> float -> t

val stuck_lanes : t -> (int * int) list
val adc_offset : t -> float

(** [apply_stuck t values] — overwrite stuck lanes with their stuck
    (normalized) values; returns [values] itself when no lane faults. *)
val apply_stuck : t -> float array -> float array

val pp : Format.formatter -> t -> unit
