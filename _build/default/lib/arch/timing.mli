(** Per-operation stage delays (Table 3) and the analog pipeline clock.

    All four pipeline stages share one clock period TP which must
    accommodate the worst-case delay of the operations a program actually
    uses: TP = max(T_S1, T_S2, T_S4) over those operations (paper §3.2,
    Fig. 4). The Class-3 ADC does not bound TP: its 138-cycle latency is
    hidden by the eight pipelined ADC units, contributing to pipeline fill
    only (DESIGN.md, "Modeling decisions"). *)

val class1_delay : Promise_isa.Opcode.class1 -> int
val class2_delay : Promise_isa.Opcode.class2 -> int

val class3_latency : Promise_isa.Opcode.class3 -> int
(** 138 cycles for ADC, 0 for none. *)

val class4_delay : Promise_isa.Opcode.class4 -> int

(** [task_tp task] — the pipeline clock period (cycles) the task needs:
    max over the Class-1/2/4 delays of its operations. At least 1. *)
val task_tp : Promise_isa.Task.t -> int

(** [program_tp program] — per-program TP: max {!task_tp} over the tasks.
    This is the clock a PROMISE configured for exactly this program runs
    at. *)
val program_tp : Promise_isa.Program.t -> int

(** [worst_case_tp ()] — TP when the pipeline must accommodate {e every}
    ISA operation (the §3.2 "operational diversity" cost; the ablation
    bench compares this to per-program TP). *)
val worst_case_tp : unit -> int

(** [fill_cycles task] — cycles for the first result to emerge: the sum
    of the stage latencies the task uses (including ADC latency). *)
val fill_cycles : Promise_isa.Task.t -> int

(** [task_cycles task] — total cycles for a task:
    [fill_cycles + (iterations - 1) * task_tp]. *)
val task_cycles : Promise_isa.Task.t -> int

(** [task_cycles_at ~tp task] — same, with an externally imposed clock
    (used by the worst-case-TP ablation and by the CM baseline). *)
val task_cycles_at : tp:int -> Promise_isa.Task.t -> int

(** [task_steady_cycles task] — steady-state duration with the pipeline
    fill amortized across back-to-back decisions:
    [iterations * task_tp]. The paper's throughput model (f = 128/TP)
    is steady-state. *)
val task_steady_cycles : Promise_isa.Task.t -> int

(** [unpipelined_iteration_cycles task] — latency of one iteration with
    no pipelining: the sum of stage delays. The original compute-memory
    (CM) baseline runs at this rate. *)
val unpipelined_iteration_cycles : Promise_isa.Task.t -> int

(** [throughput_ops_per_ns task] — steady-state element operations per ns
    per bank: [lanes / (task_tp * cycle_ns)] (paper: f = 128 / TP). *)
val throughput_ops_per_ns : Promise_isa.Task.t -> float
