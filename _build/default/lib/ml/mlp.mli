(** Multilayer perceptron: the DNN benchmark of Table 2 and the model
    whose back-propagation statistics (E_A, E_W) feed the Sakr precision
    analysis (paper §4.4).

    Layers are bias-free weight matrices followed by an activation, so a
    trained network maps 1:1 onto a pipeline of PROMISE AbstractTasks
    (vecOp = multiply, redOp = sum, digitalOp = sigmoid / ReLU). *)

type activation = Sigmoid | Relu

type layer = {
  weights : Linalg.mat;  (** fan_out × fan_in *)
  activation : activation;
}

type t = { layers : layer array }

(** [create rng ~sizes ~hidden_activation] — e.g.
    [~sizes:[784; 512; 256; 128; 10]]; He/Xavier-style random init. The
    output layer always uses [Sigmoid] (monotone, so argmax matches the
    softmax decision). *)
val create :
  Promise_analog.Rng.t -> sizes:int list -> hidden_activation:activation -> t

val n_layers : t -> int
val layer_sizes : t -> int list

(** [forward t x] — activations of every layer, input first
    (length [n_layers + 1]); the last entry is the output. *)
val forward : t -> Linalg.vec -> Linalg.vec array

(** [logits t x] — final pre-activation values. *)
val logits : t -> Linalg.vec -> Linalg.vec

val predict : t -> Linalg.vec -> int

(** [train t rng ~data ~epochs ~lr] — in-place SGD with softmax
    cross-entropy on the logits; data order shuffled each epoch. *)
val train :
  t ->
  Promise_analog.Rng.t ->
  data:Dataset.labeled array ->
  epochs:int ->
  lr:float ->
  unit

val accuracy : t -> Dataset.labeled array -> float

(** Sakr-style quantization-noise gains of the trained model, estimated
    over [data] (paper Eq. (4); see DESIGN.md):
    p_m ≤ Δ_A²·E_A + Δ_W²·E_W, where the expectations are of the
    squared gradient of the top-2 logit margin wrt activations (E_A)
    and weights (E_W), normalized by 12·margin². *)
val sakr_stats : t -> Dataset.labeled array -> float * float

(** [per_layer_fanin t] — vector length N of each layer's AbstractTask. *)
val per_layer_fanin : t -> int list
