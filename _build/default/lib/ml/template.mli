(** Template matching (Table 2: face recognition against candidate
    identities; paper §3.4's running example). *)

type metric = L1 | L2

(** [nearest ~metric ~candidates x] — (index, distance) of the closest
    candidate (the paper's j_opt = argmin_j Σ |x - w_j|). *)
val nearest : metric:metric -> candidates:Linalg.mat -> Linalg.vec -> int * float

(** [all_distances ~metric ~candidates x]. *)
val all_distances : metric:metric -> candidates:Linalg.mat -> Linalg.vec -> float array

(** [recognition_accuracy ~metric ~candidates queries] — fraction of
    (query, true identity) pairs resolved to the right candidate. *)
val recognition_accuracy :
  metric:metric ->
  candidates:Linalg.mat ->
  (Linalg.vec * int) array ->
  float
