module Rng = Promise_analog.Rng

type t = { centroids : Linalg.mat }

let assign t x =
  let best = ref 0 and best_d = ref infinity in
  Array.iteri
    (fun i c ->
      let d = Linalg.l2_distance c x in
      if d < !best_d then begin
        best := i;
        best_d := d
      end)
    t.centroids;
  !best

let assignments t data = Array.map (assign t) data

let update ~k ~data ~assignments =
  if Array.length data = 0 then invalid_arg "Kmeans.update: empty data";
  let dim = Array.length data.(0) in
  let sums = Array.init k (fun _ -> Array.make dim 0.0) in
  let counts = Array.make k 0 in
  Array.iteri
    (fun i x ->
      let c = assignments.(i) in
      if c < 0 || c >= k then invalid_arg "Kmeans.update: assignment out of range";
      counts.(c) <- counts.(c) + 1;
      Array.iteri (fun j v -> sums.(c).(j) <- sums.(c).(j) +. v) x)
    data;
  let empty = ref [] in
  let centroids =
    Array.mapi
      (fun c sum ->
        if counts.(c) = 0 then begin
          empty := c :: !empty;
          sum
        end
        else Linalg.scale (1.0 /. float_of_int counts.(c)) sum)
      sums
  in
  (centroids, List.rev !empty)

let farthest_point t data =
  let best = ref 0 and best_d = ref neg_infinity in
  Array.iteri
    (fun i x ->
      let d = Linalg.l2_distance t.centroids.(assign t x) x in
      if d > !best_d then begin
        best := i;
        best_d := d
      end)
    data;
  !best

let fit rng ~data ~k ~iterations =
  let n = Array.length data in
  if n = 0 then invalid_arg "Kmeans.fit: empty data";
  if k < 1 || k > n then invalid_arg "Kmeans.fit: bad k";
  (* farthest-point seeding from a random start *)
  let first = Rng.int rng n in
  let seeds = ref [ Array.copy data.(first) ] in
  for _ = 2 to k do
    let t = { centroids = Array.of_list (List.rev !seeds) } in
    let far = farthest_point t data in
    seeds := Array.copy data.(far) :: !seeds
  done;
  let model = ref { centroids = Array.of_list (List.rev !seeds) } in
  for _ = 1 to iterations do
    let a = assignments !model data in
    let centroids, empty = update ~k ~data ~assignments:a in
    List.iter
      (fun c -> centroids.(c) <- Array.copy data.(farthest_point !model data))
      empty;
    model := { centroids }
  done;
  !model

let inertia t data =
  Array.fold_left
    (fun acc x -> acc +. Linalg.l2_distance t.centroids.(assign t x) x)
    0.0 data
