(** 8-bit fixed-point quantization to [-1, 1) — the data format of the
    PROMISE bit-cell array (B_w = 8, one sign bit; paper §4.4 uses
    B_W = 7 magnitude bits). *)

val bits : int
(** 8. *)

val scale : float
(** 128: value = code / 128. *)

(** [quantize v] — nearest code in [-128, 127], clamping. *)
val quantize : float -> int

(** [dequantize code]. *)
val dequantize : int -> float

(** [quantize_vec v] / [dequantize_vec codes]. *)
val quantize_vec : float array -> int array

val dequantize_vec : int array -> float array

(** [quantize_mat m] — row-wise. *)
val quantize_mat : float array array -> int array array

(** [normalize_mat m] — scale a float matrix so its max |entry| becomes
    [headroom] (default 0.99), returning the scaled matrix and the
    factor [k] such that original = k × scaled. Zero matrices return
    k = 1. Quantizing the scaled matrix loses at most 1/256 per entry. *)
val normalize_mat :
  ?headroom:float -> float array array -> float array array * float

(** [normalize_vec v] — same for a vector. *)
val normalize_vec : ?headroom:float -> float array -> float array * float

(** [quantization_step ~bits] — Δ = 2^-(bits-1), as in the Sakr bound. *)
val quantization_step : bits:int -> float

(** [quantize_to_bits v ~bits] — round [v ∈ [-1,1)] to a [bits]-bit
    fixed-point grid (used by the precision-analysis tests). *)
val quantize_to_bits : float -> bits:int -> float
