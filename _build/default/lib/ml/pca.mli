(** Principal component analysis by power iteration with deflation
    (Table 2: four-feature extraction for face detection).

    On PROMISE, projecting a sample onto the principal components is a
    matrix-vector product: one AbstractTask with the component matrix as
    W (vecOp = multiply, redOp = sum). *)

type t = {
  components : Linalg.mat;  (** n_components × dim, orthonormal rows *)
  mean : Linalg.vec;
}

(** [fit rng ~data ~n_components ~iterations] — covariance implicit
    (X'X products on the fly). *)
val fit :
  Promise_analog.Rng.t ->
  data:Linalg.vec array ->
  n_components:int ->
  iterations:int ->
  t

(** [project t x] — the [n_components] features of (x − mean). *)
val project : t -> Linalg.vec -> Linalg.vec

(** [explained_ratio t ~data] — fraction of total variance captured. *)
val explained_ratio : t -> data:Linalg.vec array -> float
