type vec = float array
type mat = float array array

let vec_create n = Array.make n 0.0
let mat_create ~rows ~cols = Array.make_matrix rows cols 0.0

let check_lengths a b =
  if Array.length a <> Array.length b then
    invalid_arg "Linalg: vector length mismatch"

let dot a b =
  check_lengths a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let l1_distance a b =
  check_lengths a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. Float.abs (a.(i) -. b.(i))
  done;
  !acc

let l2_distance a b =
  check_lengths a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let hamming a b =
  check_lengths a b;
  let acc = ref 0 in
  for i = 0 to Array.length a - 1 do
    if (a.(i) >= 0.0) <> (b.(i) >= 0.0) then incr acc
  done;
  float_of_int !acc

let add a b =
  check_lengths a b;
  Array.mapi (fun i v -> v +. b.(i)) a

let sub a b =
  check_lengths a b;
  Array.mapi (fun i v -> v -. b.(i)) a

let scale k a = Array.map (fun v -> k *. v) a
let norm2 a = sqrt (dot a a)

let mean a =
  if Array.length a = 0 then invalid_arg "Linalg.mean: empty vector";
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  let m = mean a in
  Array.fold_left (fun acc v -> acc +. ((v -. m) ** 2.0)) 0.0 a
  /. float_of_int (Array.length a)

let arg_extremum better a =
  if Array.length a = 0 then invalid_arg "Linalg: empty vector";
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if better a.(i) a.(!best) then best := i
  done;
  !best

let argmin a = arg_extremum ( < ) a
let argmax a = arg_extremum ( > ) a

let mat_vec m x = Array.map (fun row -> dot row x) m

let mat_rows m = Array.length m
let mat_cols m = if Array.length m = 0 then 0 else Array.length m.(0)

let mat_transpose m =
  let rows = mat_rows m and cols = mat_cols m in
  Array.init cols (fun c -> Array.init rows (fun r -> m.(r).(c)))

let map = Array.map

let max_abs a = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 a

let mat_max_abs m = Array.fold_left (fun acc row -> Float.max acc (max_abs row)) 0.0 m

let outer_accumulate acc x y k =
  if mat_rows acc <> Array.length x || mat_cols acc <> Array.length y then
    invalid_arg "Linalg.outer_accumulate: shape mismatch";
  Array.iteri
    (fun r xr ->
      let row = acc.(r) in
      Array.iteri (fun c yc -> row.(c) <- row.(c) +. (k *. xr *. yc)) y)
    x
