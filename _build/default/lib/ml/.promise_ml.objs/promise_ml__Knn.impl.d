lib/ml/knn.ml: Array Dataset Hashtbl Linalg Option
