lib/ml/random_forest.mli: Dataset Linalg Promise_analog
