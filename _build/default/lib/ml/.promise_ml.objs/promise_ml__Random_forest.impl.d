lib/ml/random_forest.ml: Array Dataset Hashtbl List Option Promise_analog
