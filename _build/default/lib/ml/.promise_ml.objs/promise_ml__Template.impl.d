lib/ml/template.ml: Array Linalg
