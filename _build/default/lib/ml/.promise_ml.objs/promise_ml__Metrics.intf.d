lib/ml/metrics.mli:
