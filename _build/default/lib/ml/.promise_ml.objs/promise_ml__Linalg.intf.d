lib/ml/linalg.mli:
