lib/ml/knn.mli: Dataset Linalg
