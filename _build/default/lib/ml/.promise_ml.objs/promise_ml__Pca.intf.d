lib/ml/pca.mli: Linalg Promise_analog
