lib/ml/linreg.mli: Linalg
