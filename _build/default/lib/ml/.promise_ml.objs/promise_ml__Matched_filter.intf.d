lib/ml/matched_filter.mli: Dataset Linalg
