lib/ml/svm.ml: Array Dataset Linalg Promise_analog
