lib/ml/fixed_point.ml: Array Float Linalg
