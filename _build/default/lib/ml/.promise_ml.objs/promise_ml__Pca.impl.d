lib/ml/pca.ml: Array Linalg Promise_analog
