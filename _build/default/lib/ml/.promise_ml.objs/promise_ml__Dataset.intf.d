lib/ml/dataset.mli: Promise_analog
