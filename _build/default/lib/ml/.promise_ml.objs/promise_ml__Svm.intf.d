lib/ml/svm.mli: Dataset Linalg Promise_analog
