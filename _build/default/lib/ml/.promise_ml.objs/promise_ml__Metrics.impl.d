lib/ml/metrics.ml: Array Float List
