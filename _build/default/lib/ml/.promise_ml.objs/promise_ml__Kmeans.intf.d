lib/ml/kmeans.mli: Linalg Promise_analog
