lib/ml/dataset.ml: Array Float Linalg List Promise_analog
