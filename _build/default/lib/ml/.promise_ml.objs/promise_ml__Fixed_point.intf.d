lib/ml/fixed_point.mli:
