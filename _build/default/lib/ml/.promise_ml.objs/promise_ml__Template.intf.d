lib/ml/template.mli: Linalg
