lib/ml/linreg.ml: Array Float Linalg
