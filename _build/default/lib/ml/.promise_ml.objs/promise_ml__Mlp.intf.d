lib/ml/mlp.mli: Dataset Linalg Promise_analog
