lib/ml/kmeans.ml: Array Linalg List Promise_analog
