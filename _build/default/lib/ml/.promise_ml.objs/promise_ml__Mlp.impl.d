lib/ml/mlp.ml: Array Dataset Float Linalg List Promise_analog
