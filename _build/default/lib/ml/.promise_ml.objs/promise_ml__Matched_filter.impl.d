lib/ml/matched_filter.ml: Array Dataset Linalg
