type t = { weights : Linalg.vec; threshold : float }

let make ~template ~threshold = { weights = Array.copy template; threshold }
let correlate t x = Linalg.dot t.weights x
let detect t x = if correlate t x > t.threshold then 1 else 0

let calibrate_threshold ~template data =
  let pos = ref 0.0 and npos = ref 0 and neg = ref 0.0 and nneg = ref 0 in
  Array.iter
    (fun s ->
      let c = Linalg.dot template s.Dataset.features in
      if s.Dataset.label = 1 then begin
        pos := !pos +. c;
        incr npos
      end
      else begin
        neg := !neg +. c;
        incr nneg
      end)
    data;
  if !npos = 0 || !nneg = 0 then 0.0
  else
    let mp = !pos /. float_of_int !npos and mn = !neg /. float_of_int !nneg in
    (mp +. mn) /. 2.0

let accuracy t data =
  let correct =
    Array.fold_left
      (fun acc s ->
        if detect t s.Dataset.features = s.Dataset.label then acc + 1 else acc)
      0 data
  in
  float_of_int correct /. float_of_int (Array.length data)
