type metric = L1 | L2

let distance = function L1 -> Linalg.l1_distance | L2 -> Linalg.l2_distance

let distances ~metric ~train x =
  Array.map (fun s -> distance metric s.Dataset.features x) train

let classify_from_distances ~k ~train dists =
  if k < 1 then invalid_arg "Knn: k must be >= 1";
  if Array.length dists <> Array.length train then
    invalid_arg "Knn: distance/train length mismatch";
  let order = Array.init (Array.length dists) (fun i -> i) in
  Array.sort (fun a b -> compare dists.(a) dists.(b)) order;
  let k = min k (Array.length order) in
  let votes = Hashtbl.create 8 in
  for rank = 0 to k - 1 do
    let label = train.(order.(rank)).Dataset.label in
    (* nearer neighbors carry an infinitesimally larger vote: tie-break *)
    let weight = 1.0 +. (1e-6 /. float_of_int (rank + 1)) in
    let current = Option.value (Hashtbl.find_opt votes label) ~default:0.0 in
    Hashtbl.replace votes label (current +. weight)
  done;
  Hashtbl.fold
    (fun label v (best_label, best_v) ->
      if v > best_v then (label, v) else (best_label, best_v))
    votes (-1, neg_infinity)
  |> fst

let classify ~metric ~k ~train x =
  classify_from_distances ~k ~train (distances ~metric ~train x)

let accuracy ~metric ~k ~train test =
  let correct =
    Array.fold_left
      (fun acc s ->
        if classify ~metric ~k ~train s.Dataset.features = s.Dataset.label then
          acc + 1
        else acc)
      0 test
  in
  float_of_int correct /. float_of_int (Array.length test)
