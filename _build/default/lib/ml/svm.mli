(** Linear SVM (Table 2: face detection, MIT-CBCL-like data).

    Trained with the Pegasos stochastic sub-gradient method; inference
    is a single dot product plus sign — exactly the PROMISE SVM kernel
    (vecOp = multiply, redOp = sum, f() = sign/threshold). *)

type t = { weights : Linalg.vec; bias : float }

(** [train rng ~data ~epochs ~lambda] — labels must be 0/1. *)
val train :
  Promise_analog.Rng.t ->
  data:Dataset.labeled array ->
  epochs:int ->
  lambda:float ->
  t

(** [decision t x] — w·x + b. *)
val decision : t -> Linalg.vec -> float

(** [predict t x] — 1 when the decision is positive. *)
val predict : t -> Linalg.vec -> int

val accuracy : t -> Dataset.labeled array -> float

(** [augmented_weights t] — weights with the bias appended, for running
    on PROMISE with a constant-1 last input element. *)
val augmented_weights : t -> Linalg.vec
