(** 2-D linear regression via the four reduction statistics of Table 2:
    slope = (E[uv] − E[u]E[v]) / (E[u²] − E[u]²),
    intercept = E[v] − slope·E[u].
    Each statistic is one PROMISE AbstractTask (mean, mean, mean-square,
    mean-product). *)

type fit = { slope : float; intercept : float }

(** [of_statistics ~mean_u ~mean_v ~mean_u2 ~mean_uv] — closed form from
    the four reductions; raises [Invalid_argument] on zero variance. *)
val of_statistics :
  mean_u:float -> mean_v:float -> mean_u2:float -> mean_uv:float -> fit

(** [fit u v] — reference float implementation. *)
val fit : Linalg.vec -> Linalg.vec -> fit

(** [predict f u]. *)
val predict : fit -> float -> float

(** [mse f u v]. *)
val mse : fit -> Linalg.vec -> Linalg.vec -> float
