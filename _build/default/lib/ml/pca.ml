module Rng = Promise_analog.Rng

type t = { components : Linalg.mat; mean : Linalg.vec }

let fit rng ~data ~n_components ~iterations =
  let n = Array.length data in
  if n = 0 then invalid_arg "Pca.fit: empty data";
  let dim = Array.length data.(0) in
  if n_components < 1 || n_components > dim then
    invalid_arg "Pca.fit: bad n_components";
  let mean =
    let m = Array.make dim 0.0 in
    Array.iter (fun x -> Array.iteri (fun i v -> m.(i) <- m.(i) +. v) x) data;
    Array.map (fun v -> v /. float_of_int n) m
  in
  let centered = Array.map (fun x -> Linalg.sub x mean) data in
  (* Covariance-vector product without materializing the covariance. *)
  let cov_mul v =
    let acc = Array.make dim 0.0 in
    Array.iter
      (fun x ->
        let c = Linalg.dot x v in
        Array.iteri (fun i xi -> acc.(i) <- acc.(i) +. (c *. xi)) x)
      centered;
    Array.map (fun a -> a /. float_of_int n) acc
  in
  let components = Array.make n_components [||] in
  for k = 0 to n_components - 1 do
    let v = ref (Array.init dim (fun _ -> Rng.gaussian rng)) in
    for _ = 1 to iterations do
      let w = cov_mul !v in
      (* deflate against previously found components *)
      for j = 0 to k - 1 do
        let c = Linalg.dot w components.(j) in
        Array.iteri
          (fun i wi -> w.(i) <- wi -. (c *. components.(j).(i)))
          (Array.copy w)
      done;
      let nrm = Linalg.norm2 w in
      if nrm > 1e-12 then v := Linalg.scale (1.0 /. nrm) w
    done;
    components.(k) <- !v
  done;
  { components; mean }

let project t x = Linalg.mat_vec t.components (Linalg.sub x t.mean)

let explained_ratio t ~data =
  let total = ref 0.0 and captured = ref 0.0 in
  Array.iter
    (fun x ->
      let c = Linalg.sub x t.mean in
      total := !total +. Linalg.dot c c;
      let p = Linalg.mat_vec t.components c in
      captured := !captured +. Linalg.dot p p)
    data;
  if !total <= 0.0 then 0.0 else !captured /. !total
