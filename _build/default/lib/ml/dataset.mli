(** Deterministic synthetic datasets standing in for MNIST, MIT-CBCL
    faces, and the gunshot recordings of Table 2 (see DESIGN.md,
    "Substitutions"). All generators are pure functions of the supplied
    {!Promise_analog.Rng.t}, and produce features in [-1, 1) suitable for
    8-bit quantization. *)

type labeled = { features : float array; label : int }

(** Hand-written-digit-like data: each class is a fixed smooth prototype
    pattern (a sum of Gaussian bumps drawn from a class-seeded stream);
    samples perturb it by translation and pixel noise. *)
module Digits : sig
  val n_classes : int
  (** 10. *)

  (** [prototype ~cls ~width ~height] — the class template. *)
  val prototype : cls:int -> width:int -> height:int -> float array

  (** [generate rng ~width ~height ~n] — [n] labeled samples, classes
      round-robin. *)
  val generate :
    Promise_analog.Rng.t -> width:int -> height:int -> n:int -> labeled array
end

(** Face-like data for recognition (identities) and detection
    (face / non-face). *)
module Faces : sig
  (** [identities rng ~width ~height ~n] — [n] identity templates: a
      shared face structure (eyes/mouth bumps) plus per-identity
      variation. *)
  val identities :
    Promise_analog.Rng.t -> width:int -> height:int -> n:int -> float array array

  (** [query rng ~width ~height templates ~identity] — a perturbed view
      of one identity (the template-matching / k-NN query). *)
  val query :
    Promise_analog.Rng.t ->
    width:int ->
    height:int ->
    float array array ->
    identity:int ->
    float array

  (** [detection rng ~width ~height ~n] — face (label 1) vs non-face
      (label 0) samples for SVM / PCA detection. *)
  val detection :
    Promise_analog.Rng.t -> width:int -> height:int -> n:int -> labeled array
end

(** Gunshot-like audio bursts for matched filtering. *)
module Gunshot : sig
  (** [template rng ~len] — the canonical impulse: an exponentially
      decaying oscillation, unit peak. *)
  val template : Promise_analog.Rng.t -> len:int -> float array

  (** [windows rng ~template ~n ~snr] — [n] windows, label 1 when the
      (scaled) template is embedded in background noise at [snr]
      amplitude ratio, label 0 for noise-only (including low-frequency
      rumble decoys). *)
  val windows :
    Promise_analog.Rng.t ->
    template:float array ->
    n:int ->
    snr:float ->
    labeled array
end

(** 2-D synthetic data for linear regression. *)
module Linreg2d : sig
  (** [generate rng ~n ~slope ~intercept ~noise] — (u, v) with
      v = slope·u + intercept + N(0, noise²), u uniform in [-0.9, 0.9]. *)
  val generate :
    Promise_analog.Rng.t ->
    n:int ->
    slope:float ->
    intercept:float ->
    noise:float ->
    float array * float array
end

(** [train_test_split arr ~test_fraction] — deterministic prefix split
    (generators already interleave classes). *)
val train_test_split :
  labeled array -> test_fraction:float -> labeled array * labeled array
