module Rng = Promise_analog.Rng

type labeled = { features : float array; label : int }

let clamp v = Float.max (-0.99) (Float.min 0.99 v)

(* A smooth pattern: [bumps] Gaussian bumps with random centers, widths
   and signs. Patterns are the shared vocabulary of all image-like
   generators. *)
let bump_pattern rng ~width ~height ~bumps =
  let fw = float_of_int width and fh = float_of_int height in
  let centers =
    Array.init bumps (fun _ ->
        let cx = Rng.uniform rng ~lo:(0.15 *. fw) ~hi:(0.85 *. fw) in
        let cy = Rng.uniform rng ~lo:(0.15 *. fh) ~hi:(0.85 *. fh) in
        let sigma = Rng.uniform rng ~lo:(0.08 *. fw) ~hi:(0.25 *. fw) in
        let amp = if Rng.float rng < 0.5 then -1.0 else 1.0 in
        (cx, cy, sigma, amp))
  in
  Array.init (width * height) (fun i ->
      let x = float_of_int (i mod width) and y = float_of_int (i / width) in
      let v =
        Array.fold_left
          (fun acc (cx, cy, sigma, amp) ->
            let d2 = ((x -. cx) ** 2.0) +. ((y -. cy) ** 2.0) in
            acc +. (amp *. exp (-.d2 /. (2.0 *. sigma *. sigma))))
          0.0 centers
      in
      clamp v)

let translate ~width ~height ~dx ~dy img =
  Array.init (width * height) (fun i ->
      let x = (i mod width) - dx and y = (i / width) - dy in
      if x < 0 || x >= width || y < 0 || y >= height then 0.0
      else img.((y * width) + x))

let add_noise rng ~sigma img =
  Array.map (fun v -> clamp (v +. Rng.gaussian_scaled rng ~mu:0.0 ~sigma)) img

module Digits = struct
  let n_classes = 10

  let prototype ~cls ~width ~height =
    if cls < 0 || cls >= n_classes then
      invalid_arg "Dataset.Digits.prototype: class out of range";
    (* Class-seeded stream: the prototype is a pure function of the
       class and geometry. *)
    let rng = Rng.create ((cls * 7919) + (width * 104729) + height) in
    bump_pattern rng ~width ~height ~bumps:6

  let generate rng ~width ~height ~n =
    let protos =
      Array.init n_classes (fun cls -> prototype ~cls ~width ~height)
    in
    Array.init n (fun i ->
        let label = i mod n_classes in
        let dx = Rng.int rng 3 - 1 and dy = Rng.int rng 3 - 1 in
        let img = translate ~width ~height ~dx ~dy protos.(label) in
        { features = add_noise rng ~sigma:0.25 img; label })
end

module Faces = struct
  (* The shared face structure: two eye bumps and a mouth bar. *)
  let face_base ~width ~height =
    let fw = float_of_int width and fh = float_of_int height in
    let features =
      [
        (0.3 *. fw, 0.35 *. fh, 0.10 *. fw, 0.9);
        (0.7 *. fw, 0.35 *. fh, 0.10 *. fw, 0.9);
        (0.5 *. fw, 0.72 *. fh, 0.16 *. fw, -0.8);
        (0.5 *. fw, 0.15 *. fh, 0.3 *. fw, 0.35);
      ]
    in
    Array.init (width * height) (fun i ->
        let x = float_of_int (i mod width) and y = float_of_int (i / width) in
        let v =
          List.fold_left
            (fun acc (cx, cy, sigma, amp) ->
              let d2 = ((x -. cx) ** 2.0) +. ((y -. cy) ** 2.0) in
              acc +. (amp *. exp (-.d2 /. (2.0 *. sigma *. sigma))))
            0.0 features
        in
        clamp v)

  let identities rng ~width ~height ~n =
    let base = face_base ~width ~height in
    Array.init n (fun _ ->
        let variation = bump_pattern rng ~width ~height ~bumps:6 in
        Array.map2 (fun b v -> clamp (b +. (0.8 *. v))) base variation)

  let query rng ~width ~height templates ~identity =
    if identity < 0 || identity >= Array.length templates then
      invalid_arg "Dataset.Faces.query: identity out of range";
    ignore (width, height);
    add_noise rng ~sigma:0.12 templates.(identity)

  let detection rng ~width ~height ~n =
    let base = face_base ~width ~height in
    Array.init n (fun i ->
        let label = i mod 2 in
        let features =
          if label = 1 then
            let variation = bump_pattern rng ~width ~height ~bumps:4 in
            let img = Array.map2 (fun b v -> clamp (b +. (0.4 *. v))) base variation in
            add_noise rng ~sigma:0.17 img
          else
            let img = bump_pattern rng ~width ~height ~bumps:5 in
            add_noise rng ~sigma:0.17 img
        in
        { features; label })
end

module Gunshot = struct
  let template rng ~len =
    let omega = Rng.uniform rng ~lo:0.5 ~hi:0.9 in
    let tau = float_of_int len /. 4.0 in
    let raw =
      Array.init len (fun i ->
          let t = float_of_int i in
          exp (-.t /. tau) *. sin (omega *. t))
    in
    let peak = Linalg.max_abs raw in
    Array.map (fun v -> clamp (v /. peak *. 0.9)) raw

  let rumble rng ~len =
    let omega = Rng.uniform rng ~lo:0.02 ~hi:0.08 in
    let phase = Rng.uniform rng ~lo:0.0 ~hi:6.28 in
    Array.init len (fun i ->
        0.4 *. sin ((omega *. float_of_int i) +. phase))

  let windows rng ~template ~n ~snr =
    let len = Array.length template in
    Array.init n (fun i ->
        let label = i mod 2 in
        let noise =
          Array.init len (fun _ -> Rng.gaussian_scaled rng ~mu:0.0 ~sigma:0.2)
        in
        let features =
          if label = 1 then
            Array.mapi (fun j v -> clamp ((snr *. template.(j)) +. v)) noise
          else
            let decoy = if Rng.float rng < 0.5 then rumble rng ~len else
                Array.make len 0.0
            in
            Array.mapi (fun j v -> clamp (decoy.(j) +. v)) noise
        in
        { features; label })
end

module Linreg2d = struct
  let generate rng ~n ~slope ~intercept ~noise =
    let u = Array.init n (fun _ -> Rng.uniform rng ~lo:(-0.9) ~hi:0.9) in
    let v =
      Array.map
        (fun ui ->
          clamp ((slope *. ui) +. intercept
                 +. Rng.gaussian_scaled rng ~mu:0.0 ~sigma:noise))
        u
    in
    (u, v)
end

let train_test_split arr ~test_fraction =
  if test_fraction < 0.0 || test_fraction > 1.0 then
    invalid_arg "Dataset.train_test_split: fraction out of [0, 1]";
  let n = Array.length arr in
  let n_test = int_of_float (Float.round (float_of_int n *. test_fraction)) in
  let n_train = n - n_test in
  (Array.sub arr 0 n_train, Array.sub arr n_train n_test)
