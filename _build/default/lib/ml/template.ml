type metric = L1 | L2

let distance = function L1 -> Linalg.l1_distance | L2 -> Linalg.l2_distance

let all_distances ~metric ~candidates x =
  Array.map (fun w -> distance metric w x) candidates

let nearest ~metric ~candidates x =
  let dists = all_distances ~metric ~candidates x in
  let i = Linalg.argmin dists in
  (i, dists.(i))

let recognition_accuracy ~metric ~candidates queries =
  let correct =
    Array.fold_left
      (fun acc (q, identity) ->
        let i, _ = nearest ~metric ~candidates q in
        if i = identity then acc + 1 else acc)
      0 queries
  in
  float_of_int correct /. float_of_int (Array.length queries)
