type fit = { slope : float; intercept : float }

let of_statistics ~mean_u ~mean_v ~mean_u2 ~mean_uv =
  let var = mean_u2 -. (mean_u *. mean_u) in
  if Float.abs var < 1e-12 then
    invalid_arg "Linreg.of_statistics: zero variance in u";
  let slope = (mean_uv -. (mean_u *. mean_v)) /. var in
  { slope; intercept = mean_v -. (slope *. mean_u) }

let fit u v =
  if Array.length u <> Array.length v then
    invalid_arg "Linreg.fit: length mismatch";
  let mean_u = Linalg.mean u and mean_v = Linalg.mean v in
  let mean_u2 = Linalg.mean (Array.map (fun x -> x *. x) u) in
  let mean_uv = Linalg.mean (Array.map2 ( *. ) u v) in
  of_statistics ~mean_u ~mean_v ~mean_u2 ~mean_uv

let predict f u = (f.slope *. u) +. f.intercept

let mse f u v =
  let n = Array.length u in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let e = predict f u.(i) -. v.(i) in
    acc := !acc +. (e *. e)
  done;
  !acc /. float_of_int n
