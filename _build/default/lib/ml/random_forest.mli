(** A small random forest (bagged, depth-limited CART trees with
    axis-aligned threshold splits).

    The second algorithm the paper's ISA discussion (§3.3) calls out:
    tree traversal needs the shuffle-and-compare operation [10, 31]
    the PROMISE ISA omits, so forests fall back to the host. This
    reference implementation anchors the extension-ablation analysis
    and rounds out the ML substrate. *)

type t

(** [train rng ~data ~n_trees ~max_depth ~feature_fraction] — bootstrap
    sample per tree; at each node, the best (feature, threshold) split
    by Gini impurity over a random feature subset. *)
val train :
  Promise_analog.Rng.t ->
  data:Dataset.labeled array ->
  n_trees:int ->
  max_depth:int ->
  feature_fraction:float ->
  t

(** [predict t x] — majority vote over the trees. *)
val predict : t -> Linalg.vec -> int

val accuracy : t -> Dataset.labeled array -> float

val n_trees : t -> int

(** [node_count t] — total decision nodes (the shuffle/compare ops a
    hardware traversal would need per inference, worst case). *)
val node_count : t -> int
