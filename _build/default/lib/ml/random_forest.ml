module Rng = Promise_analog.Rng

type tree =
  | Leaf of int
  | Node of { feature : int; threshold : float; low : tree; high : tree }

type t = { trees : tree list }

let majority labels idxs =
  let votes = Hashtbl.create 8 in
  List.iter
    (fun i ->
      let l = labels.(i) in
      Hashtbl.replace votes l (1 + Option.value (Hashtbl.find_opt votes l) ~default:0))
    idxs;
  Hashtbl.fold
    (fun l c (bl, bc) -> if c > bc then (l, c) else (bl, bc))
    votes (0, -1)
  |> fst

let gini labels idxs =
  let n = List.length idxs in
  if n = 0 then 0.0
  else begin
    let counts = Hashtbl.create 8 in
    List.iter
      (fun i ->
        let l = labels.(i) in
        Hashtbl.replace counts l
          (1 + Option.value (Hashtbl.find_opt counts l) ~default:0))
      idxs;
    let fn = float_of_int n in
    Hashtbl.fold
      (fun _ c acc ->
        let p = float_of_int c /. fn in
        acc -. (p *. p))
      counts 1.0
  end

let pure labels = function
  | [] -> true
  | i :: rest -> List.for_all (fun j -> labels.(j) = labels.(i)) rest

let best_split rng features labels ~idxs ~feature_fraction =
  let dim = Array.length features.(0) in
  let n_try = max 1 (int_of_float (feature_fraction *. float_of_int dim)) in
  let candidates = Array.init dim (fun i -> i) in
  Rng.shuffle rng candidates;
  let best = ref None in
  for k = 0 to n_try - 1 do
    let f = candidates.(k) in
    (* candidate thresholds: midpoints of a few random pairs *)
    List.iter
      (fun threshold ->
        let low, high =
          List.partition (fun i -> features.(i).(f) <= threshold) idxs
        in
        if low <> [] && high <> [] then begin
          let nl = float_of_int (List.length low) in
          let nh = float_of_int (List.length high) in
          let score =
            ((nl *. gini labels low) +. (nh *. gini labels high)) /. (nl +. nh)
          in
          match !best with
          | Some (s, _, _) when s <= score -> ()
          | _ -> best := Some (score, f, threshold)
        end)
      (List.filteri (fun i _ -> i < 6)
         (List.map (fun i -> features.(i).(f)) idxs))
  done;
  !best

let rec grow rng features labels ~idxs ~depth ~max_depth ~feature_fraction =
  if depth >= max_depth || pure labels idxs || List.length idxs < 4 then
    Leaf (majority labels idxs)
  else
    match best_split rng features labels ~idxs ~feature_fraction with
    | None -> Leaf (majority labels idxs)
    | Some (_, feature, threshold) ->
        let low_idx, high_idx =
          List.partition (fun i -> features.(i).(feature) <= threshold) idxs
        in
        if low_idx = [] || high_idx = [] then Leaf (majority labels idxs)
        else
          Node
            {
              feature;
              threshold;
              low =
                grow rng features labels ~idxs:low_idx ~depth:(depth + 1)
                  ~max_depth ~feature_fraction;
              high =
                grow rng features labels ~idxs:high_idx ~depth:(depth + 1)
                  ~max_depth ~feature_fraction;
            }

let train rng ~data ~n_trees ~max_depth ~feature_fraction =
  if Array.length data = 0 then invalid_arg "Random_forest.train: empty data";
  if n_trees < 1 then invalid_arg "Random_forest.train: n_trees < 1";
  let n = Array.length data in
  let features = Array.map (fun s -> s.Dataset.features) data in
  let labels = Array.map (fun s -> s.Dataset.label) data in
  let trees =
    List.init n_trees (fun _ ->
        (* bootstrap sample *)
        let idxs = List.init n (fun _ -> Rng.int rng n) in
        grow rng features labels ~idxs ~depth:0 ~max_depth ~feature_fraction)
  in
  { trees }

let rec classify tree x =
  match tree with
  | Leaf l -> l
  | Node { feature; threshold; low; high } ->
      if x.(feature) <= threshold then classify low x else classify high x

let predict t x =
  let votes = Hashtbl.create 8 in
  List.iter
    (fun tree ->
      let l = classify tree x in
      Hashtbl.replace votes l
        (1 + Option.value (Hashtbl.find_opt votes l) ~default:0))
    t.trees;
  Hashtbl.fold
    (fun l c (bl, bc) -> if c > bc then (l, c) else (bl, bc))
    votes (0, -1)
  |> fst

let accuracy t data =
  let correct =
    Array.fold_left
      (fun acc s ->
        if predict t s.Dataset.features = s.Dataset.label then acc + 1 else acc)
      0 data
  in
  float_of_int correct /. float_of_int (Array.length data)

let n_trees t = List.length t.trees

let node_count t =
  let rec count = function
    | Leaf _ -> 0
    | Node { low; high; _ } -> 1 + count low + count high
  in
  List.fold_left (fun acc tree -> acc + count tree) 0 t.trees
