(** k-nearest-neighbor reference implementation (Table 2: hand-written
    character recognition, L1 and L2 distance kernels; sorting and
    majority vote run on the host, as the paper notes). *)

type metric = L1 | L2

(** [distances ~metric ~train x] — distance from [x] to every training
    sample, in training order (exactly what the PROMISE Task computes). *)
val distances :
  metric:metric -> train:Dataset.labeled array -> Linalg.vec -> float array

(** [classify ~metric ~k ~train x] — majority vote over the [k] nearest
    (ties broken toward the nearer neighbor). *)
val classify :
  metric:metric -> k:int -> train:Dataset.labeled array -> Linalg.vec -> int

(** [classify_from_distances ~k ~train dists] — host-side sorting +
    majority vote on externally computed distances (the PROMISE path). *)
val classify_from_distances :
  k:int -> train:Dataset.labeled array -> float array -> int

val accuracy :
  metric:metric ->
  k:int ->
  train:Dataset.labeled array ->
  Dataset.labeled array ->
  float
