let check_lengths a b =
  if Array.length a <> Array.length b then
    invalid_arg "Metrics: array length mismatch";
  if Array.length a = 0 then invalid_arg "Metrics: empty arrays"

let accuracy ~truth ~predicted =
  check_lengths truth predicted;
  let correct = ref 0 in
  Array.iteri (fun i t -> if t = predicted.(i) then incr correct) truth;
  float_of_int !correct /. float_of_int (Array.length truth)

let mismatch_probability ~reference ~promise =
  check_lengths reference promise;
  let changed = ref 0 in
  Array.iteri (fun i r -> if r <> promise.(i) then incr changed) reference;
  float_of_int !changed /. float_of_int (Array.length reference)

let accuracy_drop ~reference_acc ~promise_acc =
  Float.max 0.0 (reference_acc -. promise_acc)

let confusion ~n_classes ~truth ~predicted =
  check_lengths truth predicted;
  let m = Array.make_matrix n_classes n_classes 0 in
  Array.iteri
    (fun i t ->
      let p = predicted.(i) in
      if t < 0 || t >= n_classes || p < 0 || p >= n_classes then
        invalid_arg "Metrics.confusion: label out of range";
      m.(t).(p) <- m.(t).(p) + 1)
    truth;
  m

let geometric_mean xs =
  match xs with
  | [] -> invalid_arg "Metrics.geometric_mean: empty list"
  | _ ->
      let log_sum =
        List.fold_left
          (fun acc x ->
            if x <= 0.0 then
              invalid_arg "Metrics.geometric_mean: non-positive value"
            else acc +. log x)
          0.0 xs
      in
      exp (log_sum /. float_of_int (List.length xs))
