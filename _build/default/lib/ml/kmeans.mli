(** k-means clustering (Lloyd's algorithm).

    The paper notes (§3.3) that k-means runs inefficiently on PROMISE
    because the ISA omits element-wise write-back: the {e assignment}
    step is a perfect fit (L2 distances to k centroids + argmin), but
    the {e update} step must round-trip through the host each
    iteration. This module provides the float reference; the benchmark
    harness's extension-ablation section prices the PROMISE-assisted
    variant. *)

type t = { centroids : Linalg.mat }

(** [fit rng ~data ~k ~iterations] — Lloyd's algorithm with k-means++ -
    style farthest-point seeding; empty clusters re-seed from the
    farthest point. *)
val fit :
  Promise_analog.Rng.t ->
  data:Linalg.vec array ->
  k:int ->
  iterations:int ->
  t

(** [assign t x] — index of the nearest centroid (L2). *)
val assign : t -> Linalg.vec -> int

(** [assignments t data]. *)
val assignments : t -> Linalg.vec array -> int array

(** [update ~k ~data ~assignments] — the host-side centroid update:
    mean of each cluster's members (empty clusters keep a zero
    vector and are reported). *)
val update :
  k:int -> data:Linalg.vec array -> assignments:int array ->
  Linalg.mat * int list

(** [inertia t data] — Σ squared distance to the assigned centroid. *)
val inertia : t -> Linalg.vec array -> float
