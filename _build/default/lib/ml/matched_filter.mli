(** Matched filtering (Table 2: gunshot detection). The filter weights
    are the (time-reversed) signal template; detection thresholds the
    correlation — on PROMISE a multiply/sum Task with a Class-4
    threshold. *)

type t = { weights : Linalg.vec; threshold : float }

(** [make ~template ~threshold] — filter for a known template. *)
val make : template:Linalg.vec -> threshold:float -> t

(** [correlate t x] — w · x. *)
val correlate : t -> Linalg.vec -> float

(** [detect t x] — 1 when the correlation exceeds the threshold. *)
val detect : t -> Linalg.vec -> int

(** [calibrate_threshold ~template data] — midpoint between mean
    positive and mean negative correlation over labeled windows. *)
val calibrate_threshold : template:Linalg.vec -> Dataset.labeled array -> float

val accuracy : t -> Dataset.labeled array -> float
