(** Classification metrics, including the paper's mismatch probability
    p_m (Eq. (2)): the accuracy an algorithm loses when it runs on
    PROMISE instead of the exact model. *)

(** [accuracy ~truth ~predicted] — fraction equal. *)
val accuracy : truth:int array -> predicted:int array -> float

(** [mismatch_probability ~reference ~promise] — fraction of samples
    whose decision changed between the exact model and the PROMISE run
    (an upper bound witness for p_model − p_PROMISE ≤ p_m). *)
val mismatch_probability : reference:int array -> promise:int array -> float

(** [accuracy_drop ~reference_acc ~promise_acc] — max 0. *)
val accuracy_drop : reference_acc:float -> promise_acc:float -> float

(** [confusion ~n_classes ~truth ~predicted] — counts[t][p]. *)
val confusion : n_classes:int -> truth:int array -> predicted:int array -> int array array

(** [geometric_mean xs] — of positive values. *)
val geometric_mean : float list -> float
