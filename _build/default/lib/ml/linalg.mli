(** Dense float vectors and matrices (row-major) — the reference
    numeric substrate for the ML algorithms of Table 1/2. *)

type vec = float array
type mat = float array array  (** rows of equal length *)

val vec_create : int -> vec
val mat_create : rows:int -> cols:int -> mat

val dot : vec -> vec -> float
val l1_distance : vec -> vec -> float
val l2_distance : vec -> vec -> float
(** Squared Euclidean distance (the paper's L2 kernel: Σ (w-x)²). *)

val hamming : vec -> vec -> float
(** Count of sign mismatches. *)

val add : vec -> vec -> vec
val sub : vec -> vec -> vec
val scale : float -> vec -> vec
val norm2 : vec -> float
val mean : vec -> float
val variance : vec -> float
val argmin : vec -> int
val argmax : vec -> int

val mat_vec : mat -> vec -> vec
(** [mat_vec m x] — m · x (rows of m dotted with x). *)

val mat_transpose : mat -> mat
val mat_rows : mat -> int
val mat_cols : mat -> int

val map : (float -> float) -> vec -> vec
val max_abs : vec -> float
val mat_max_abs : mat -> float

(** [outer_accumulate acc x y k] — acc += k · x yᵀ, in place. *)
val outer_accumulate : mat -> vec -> vec -> float -> unit
