module Rng = Promise_analog.Rng

type t = { weights : Linalg.vec; bias : float }

let train rng ~data ~epochs ~lambda =
  if Array.length data = 0 then invalid_arg "Svm.train: empty data";
  let dim = Array.length data.(0).Dataset.features in
  let w = Array.make dim 0.0 in
  let b = ref 0.0 in
  let t = ref 0 in
  let order = Array.init (Array.length data) (fun i -> i) in
  for _epoch = 1 to epochs do
    Rng.shuffle rng order;
    Array.iter
      (fun idx ->
        incr t;
        let sample = data.(idx) in
        let y = if sample.Dataset.label = 1 then 1.0 else -1.0 in
        let eta = 1.0 /. (lambda *. float_of_int !t) in
        let margin = y *. (Linalg.dot w sample.Dataset.features +. !b) in
        (* w <- (1 - eta*lambda) w [+ eta*y*x when margin < 1] *)
        let shrink = 1.0 -. (eta *. lambda) in
        Array.iteri (fun i wi -> w.(i) <- shrink *. wi) w;
        if margin < 1.0 then begin
          Array.iteri
            (fun i xi -> w.(i) <- w.(i) +. (eta *. y *. xi))
            sample.Dataset.features;
          b := !b +. (eta *. y)
        end)
      order
  done;
  { weights = w; bias = !b }

let decision t x = Linalg.dot t.weights x +. t.bias
let predict t x = if decision t x > 0.0 then 1 else 0

let accuracy t data =
  let correct =
    Array.fold_left
      (fun acc s ->
        if predict t s.Dataset.features = s.Dataset.label then acc + 1 else acc)
      0 data
  in
  float_of_int correct /. float_of_int (Array.length data)

let augmented_weights t = Array.append t.weights [| t.bias |]
