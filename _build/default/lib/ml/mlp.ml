module Rng = Promise_analog.Rng

type activation = Sigmoid | Relu

type layer = { weights : Linalg.mat; activation : activation }
type t = { layers : layer array }

let apply_activation act v =
  match act with
  | Sigmoid -> Array.map (fun z -> 1.0 /. (1.0 +. exp (-.z))) v
  | Relu -> Array.map (fun z -> Float.max 0.0 z) v

(* Derivative in terms of the activation output a. *)
let activation_deriv act a =
  match act with
  | Sigmoid -> a *. (1.0 -. a)
  | Relu -> if a > 0.0 then 1.0 else 0.0

let create rng ~sizes ~hidden_activation =
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | [ _ ] | [] -> []
  in
  let dims = pairs sizes in
  if dims = [] then invalid_arg "Mlp.create: need at least two layer sizes";
  let n = List.length dims in
  let layers =
    List.mapi
      (fun i (fan_in, fan_out) ->
        let sigma = sqrt (2.0 /. float_of_int fan_in) in
        let weights =
          Array.init fan_out (fun _ ->
              Array.init fan_in (fun _ ->
                  Rng.gaussian_scaled rng ~mu:0.0 ~sigma))
        in
        let activation = if i = n - 1 then Sigmoid else hidden_activation in
        { weights; activation })
      dims
  in
  { layers = Array.of_list layers }

let n_layers t = Array.length t.layers

let layer_sizes t =
  let fan_in = Linalg.mat_cols t.layers.(0).weights in
  fan_in :: (Array.to_list t.layers |> List.map (fun l -> Linalg.mat_rows l.weights))

let forward t x =
  let acts = Array.make (n_layers t + 1) x in
  Array.iteri
    (fun i layer ->
      let z = Linalg.mat_vec layer.weights acts.(i) in
      acts.(i + 1) <- apply_activation layer.activation z)
    t.layers;
  acts

let logits t x =
  let n = n_layers t in
  let a = ref x in
  Array.iteri
    (fun i layer ->
      let z = Linalg.mat_vec layer.weights !a in
      a := if i = n - 1 then z else apply_activation layer.activation z)
    t.layers;
  !a

let predict t x = Linalg.argmax (logits t x)

let softmax z =
  let m = Array.fold_left Float.max neg_infinity z in
  let e = Array.map (fun v -> exp (v -. m)) z in
  let s = Array.fold_left ( +. ) 0.0 e in
  Array.map (fun v -> v /. s) e

(* Backprop one sample; returns per-layer weight gradients and, when
   [want_input_grads], the gradient wrt every activation (input included)
   for the Sakr estimator. The output-layer seed is [seed] applied to the
   logits (cross-entropy: p - onehot; margin: e_i1 - e_i2). *)
let backprop t acts seed =
  let n = n_layers t in
  let weight_grads = Array.make n [||] in
  let act_grads = Array.make (n + 1) [||] in
  let delta = ref seed in
  for i = n - 1 downto 0 do
    let layer = t.layers.(i) in
    let input = acts.(i) in
    (* dW = delta ⊗ input *)
    weight_grads.(i) <-
      Array.map (fun d -> Linalg.scale d input) !delta;
    (* gradient wrt the layer input (an activation of layer i) *)
    let gin =
      Array.init (Array.length input) (fun j ->
          let acc = ref 0.0 in
          Array.iteri
            (fun r d -> acc := !acc +. (d *. layer.weights.(r).(j)))
            !delta;
          !acc)
    in
    act_grads.(i) <- gin;
    if i > 0 then
      delta :=
        Array.mapi
          (fun j g ->
            g *. activation_deriv t.layers.(i - 1).activation input.(j))
          gin
  done;
  (weight_grads, act_grads)

let train t rng ~data ~epochs ~lr =
  let n = n_layers t in
  let order = Array.init (Array.length data) (fun i -> i) in
  for _epoch = 1 to epochs do
    Rng.shuffle rng order;
    Array.iter
      (fun idx ->
        let sample = data.(idx) in
        (* forward keeping logits for the last layer *)
        let acts = Array.make (n + 1) sample.Dataset.features in
        for i = 0 to n - 1 do
          let z = Linalg.mat_vec t.layers.(i).weights acts.(i) in
          acts.(i + 1) <-
            (if i = n - 1 then z
             else apply_activation t.layers.(i).activation z)
        done;
        let p = softmax acts.(n) in
        let seed =
          Array.mapi
            (fun k pk -> pk -. if k = sample.Dataset.label then 1.0 else 0.0)
            p
        in
        let weight_grads, _ = backprop t acts seed in
        Array.iteri
          (fun i grads ->
            let w = t.layers.(i).weights in
            Array.iteri
              (fun r grow ->
                let wr = w.(r) in
                Array.iteri
                  (fun c g -> wr.(c) <- wr.(c) -. (lr *. g))
                  grow)
              grads)
          weight_grads)
      order
  done

let accuracy t data =
  let correct =
    Array.fold_left
      (fun acc s ->
        if predict t s.Dataset.features = s.Dataset.label then acc + 1 else acc)
      0 data
  in
  float_of_int correct /. float_of_int (Array.length data)

let sakr_stats t data =
  let n = n_layers t in
  let sum_ea = ref 0.0 and sum_ew = ref 0.0 and count = ref 0 in
  Array.iter
    (fun sample ->
      (* forward with logits at the top *)
      let acts = Array.make (n + 1) sample.Dataset.features in
      for i = 0 to n - 1 do
        let z = Linalg.mat_vec t.layers.(i).weights acts.(i) in
        acts.(i + 1) <-
          (if i = n - 1 then z else apply_activation t.layers.(i).activation z)
      done;
      let z = acts.(n) in
      let i1 = Linalg.argmax z in
      (* runner-up *)
      let i2 =
        let best = ref (if i1 = 0 then 1 else 0) in
        Array.iteri
          (fun k v -> if k <> i1 && v > z.(!best) then best := k)
          z;
        !best
      in
      let margin = z.(i1) -. z.(i2) in
      if margin > 1e-9 then begin
        let seed =
          Array.init (Array.length z) (fun k ->
              if k = i1 then 1.0 else if k = i2 then -1.0 else 0.0)
        in
        let weight_grads, act_grads = backprop t acts seed in
        let sq acc v = acc +. (v *. v) in
        let gw =
          Array.fold_left
            (fun acc grads ->
              Array.fold_left
                (fun acc row -> Array.fold_left sq acc row)
                acc grads)
            0.0 weight_grads
        in
        let ga =
          Array.fold_left
            (fun acc grads -> Array.fold_left sq acc grads)
            0.0 act_grads
        in
        let denom = 12.0 *. margin *. margin in
        sum_ea := !sum_ea +. (ga /. denom);
        sum_ew := !sum_ew +. (gw /. denom);
        incr count
      end)
    data;
  if !count = 0 then (0.0, 0.0)
  else
    let c = float_of_int !count in
    (!sum_ea /. c, !sum_ew /. c)

let per_layer_fanin t =
  Array.to_list t.layers |> List.map (fun l -> Linalg.mat_cols l.weights)
