open Promise_isa

let class1_energy_pj = function
  | Opcode.C1_none -> 0.0
  | Opcode.C1_write -> 73.0
  | Opcode.C1_read -> 33.0
  | Opcode.C1_aread -> 61.0
  | Opcode.C1_asubt -> 103.0
  | Opcode.C1_aadd -> 103.0

let asd_energy_pj = function
  | Opcode.Asd_none -> 0.0
  | Opcode.Asd_compare -> 5.0
  | Opcode.Asd_absolute -> 12.0
  | Opcode.Asd_square -> 38.0
  | Opcode.Asd_sign_mult -> 16.0
  | Opcode.Asd_unsign_mult -> 16.0

let class2_energy_pj (c2 : Opcode.class2) = asd_energy_pj c2.asd

let class3_energy_pj = function Opcode.C3_none -> 0.0 | Opcode.C3_adc -> 6.0

let class4_energy_pj = function
  | Opcode.C4_accumulate | Opcode.C4_mean | Opcode.C4_threshold
  | Opcode.C4_max | Opcode.C4_min | Opcode.C4_sigmoid | Opcode.C4_relu ->
      0.05

let leakage_pj_per_cycle_per_bank = 0.6
let ctrl_pj_per_cycle = 5.4
let crossbank_transfer_pj = 0.5

let class1_energy_at_swing op ~swing =
  let base = class1_energy_pj op in
  if Opcode.class1_is_analog op then
    base *. Promise_analog.Swing.read_energy_scale swing
  else base

let table3 () =
  let open Promise_arch in
  let c1 =
    List.filter_map
      (fun op ->
        if Opcode.equal_class1 op Opcode.C1_none then None
        else
          Some
            ( 1,
              Opcode.class1_name op,
              Timing.class1_delay op,
              class1_energy_pj op ))
      Opcode.all_class1
  in
  let c2 =
    List.filter_map
      (fun asd ->
        if Opcode.equal_asd asd Opcode.Asd_none then None
        else
          let c2 = { Opcode.asd; avd = true } in
          Some
            (2, Opcode.asd_name asd, Timing.class2_delay c2, class2_energy_pj c2))
      Opcode.all_asd
  in
  let c3 =
    [
      ( 3,
        "ADC",
        Timing.class3_latency Opcode.C3_adc,
        class3_energy_pj Opcode.C3_adc );
    ]
  in
  let c4 =
    List.map
      (fun op ->
        (4, Opcode.class4_name op, Timing.class4_delay op, class4_energy_pj op))
      Opcode.all_class4
  in
  c1 @ c2 @ c3 @ c4
