type published = {
  name : string;
  node : Scaling.node;
  energy_per_decision_j : float;
  decisions_per_s : float;
  note : string;
}

let knn_l1_14nm =
  {
    name = "k-NN accelerator [7], L1";
    node = Scaling.n14_finfet;
    energy_per_decision_j = 3.37e-9;
    decisions_per_s = 21.5e6;
    note = "8-bit 128-dim X against 128 W_j, reconfigurable k-NN";
  }

let knn_l2_14nm =
  {
    knn_l1_14nm with
    name = "k-NN accelerator [7], L2";
    energy_per_decision_j = 3.84e-9;
    decisions_per_s = 20.3e6;
  }

let dnn_28nm =
  {
    name = "sparse DNN engine [6]";
    node = Scaling.n28_planar;
    energy_per_decision_j = 0.57e-6;
    decisions_per_s = 28e3;
    note =
      "784-256-256-256-10, zero-skipping + RAZOR; PROMISE network ~69% \
       larger";
  }

type comparison = {
  published : published;
  scaled_energy_j : float;
  scaled_decisions_per_s : float;
  ours_energy_j : float;
  ours_decisions_per_s : float;
  energy_ratio : float;
  throughput_ratio : float;
  edp_ratio : float;
}

let compare ?(scale_to_65nm = true) published ~ours_energy_j
    ~ours_decisions_per_s =
  let e_scale, d_scale =
    if scale_to_65nm then
      ( Scaling.energy_scale ~from_:published.node ~to_:Scaling.n65_planar,
        Scaling.delay_scale ~from_:published.node ~to_:Scaling.n65_planar )
    else (1.0, 1.0)
  in
  let scaled_energy_j = published.energy_per_decision_j *. e_scale in
  let scaled_decisions_per_s = published.decisions_per_s /. d_scale in
  let energy_ratio = scaled_energy_j /. ours_energy_j in
  let throughput_ratio = ours_decisions_per_s /. scaled_decisions_per_s in
  let edp pub_e pub_r our_e our_r = pub_e /. pub_r /. (our_e /. our_r) in
  {
    published;
    scaled_energy_j;
    scaled_decisions_per_s;
    ours_energy_j;
    ours_decisions_per_s;
    energy_ratio;
    throughput_ratio;
    edp_ratio =
      edp scaled_energy_j scaled_decisions_per_s ours_energy_j
        ours_decisions_per_s;
  }

let pp_comparison ppf c =
  Format.fprintf ppf
    "@[<v>%s (%s)@,\
     published: %.3g J/decision, %.3g decisions/s@,\
     scaled to 65 nm: %.3g J, %.3g /s@,\
     PROMISE: %.3g J/decision, %.3g decisions/s@,\
     energy ratio %.2fx, throughput ratio %.2fx, EDP ratio %.2fx@]"
    c.published.name c.published.note c.published.energy_per_decision_j
    c.published.decisions_per_s c.scaled_energy_j c.scaled_decisions_per_s
    c.ours_energy_j c.ours_decisions_per_s c.energy_ratio c.throughput_ratio
    c.edp_ratio
