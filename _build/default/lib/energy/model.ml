open Promise_isa
open Promise_arch

type breakdown = {
  read : float;
  compute : float;
  leak : float;
  ctrl : float;
}

let total b = b.read +. b.compute +. b.leak +. b.ctrl
let zero = { read = 0.0; compute = 0.0; leak = 0.0; ctrl = 0.0 }

let add a b =
  {
    read = a.read +. b.read;
    compute = a.compute +. b.compute;
    leak = a.leak +. b.leak;
    ctrl = a.ctrl +. b.ctrl;
  }

let scale k b =
  {
    read = k *. b.read;
    compute = k *. b.compute;
    leak = k *. b.leak;
    ctrl = k *. b.ctrl;
  }

let pp_breakdown ppf b =
  Format.fprintf ppf
    "read %.1f pJ + compute %.1f pJ + leak %.1f pJ + ctrl %.1f pJ = %.1f pJ"
    b.read b.compute b.leak b.ctrl (total b)

let record_energy ~task ~iterations ~banks ~cycles ~adc_conversions
    ~crossbank_transfers ~th_ops =
  let p = task.Task.op_param in
  let fb = float_of_int banks in
  let fi = float_of_int iterations in
  let read =
    Tables.class1_energy_at_swing task.Task.class1 ~swing:p.Op_param.swing
    *. fi *. fb
  in
  let compute =
    (Tables.class2_energy_pj task.Task.class2 *. fi *. fb)
    +. (Tables.class3_energy_pj task.Task.class3
       *. float_of_int adc_conversions *. fb)
    +. (Tables.class4_energy_pj task.Task.class4 *. float_of_int th_ops)
    +. (Tables.crossbank_transfer_pj *. float_of_int crossbank_transfers)
  in
  let leak =
    Tables.leakage_pj_per_cycle_per_bank *. float_of_int cycles *. fb
  in
  let ctrl = Tables.ctrl_pj_per_cycle *. float_of_int cycles in
  { read; compute; leak; ctrl }

let task_record_energy (r : Trace.task_record) =
  record_energy ~task:r.Trace.task ~iterations:r.Trace.iterations
    ~banks:r.Trace.banks ~cycles:r.Trace.cycles
    ~adc_conversions:r.Trace.adc_conversions
    ~crossbank_transfers:r.Trace.crossbank_transfers ~th_ops:r.Trace.th_ops

let trace_energy tr =
  List.fold_left
    (fun acc r -> add acc (task_record_energy r))
    zero
    (Trace.records_in_order tr)

let task_energy_with ~cycles_of (task : Task.t) =
  let iterations = Task.iterations task in
  let banks = Task.banks task in
  let adc_conversions = if Task.uses_adc task then iterations else 0 in
  let crossbank_transfers =
    Crossbank.transfers_per_iteration ~banks * iterations
  in
  (* One TH group per X_PRD period. *)
  let group = task.Task.op_param.Op_param.acc_num + 1 in
  let th_ops = if adc_conversions > 0 then iterations / group else 0 in
  record_energy ~task ~iterations ~banks ~cycles:(cycles_of task)
    ~adc_conversions ~crossbank_transfers ~th_ops

let task_energy = task_energy_with ~cycles_of:Timing.task_cycles
let task_energy_steady = task_energy_with ~cycles_of:Timing.task_steady_cycles

let program_energy (p : Program.t) =
  List.fold_left (fun acc t -> add acc (task_energy t)) zero p.Program.tasks

let program_cycles (p : Program.t) =
  List.fold_left (fun acc t -> acc + Timing.task_cycles t) 0 p.Program.tasks

let program_steady_cycles (p : Program.t) =
  List.fold_left (fun acc t -> acc + Timing.task_steady_cycles t) 0
    p.Program.tasks

let program_energy_steady (p : Program.t) =
  List.fold_left (fun acc t -> add acc (task_energy_steady t)) zero
    p.Program.tasks

let program_steady_cycles_at_worst_case_tp (p : Program.t) =
  let tp = Timing.worst_case_tp () in
  List.fold_left
    (fun acc t -> acc + (Promise_isa.Task.iterations t * tp))
    0 p.Program.tasks

let program_cycles_at_worst_case_tp (p : Program.t) =
  let tp = Timing.worst_case_tp () in
  List.fold_left (fun acc t -> acc + Timing.task_cycles_at ~tp t) 0
    p.Program.tasks

let element_ops (p : Program.t) =
  List.fold_left
    (fun acc t -> acc + (Task.iterations t * Params.lanes * Task.banks t))
    0 p.Program.tasks

let throughput_ops_per_s p =
  let cycles = program_cycles p in
  if cycles = 0 then 0.0
  else
    float_of_int (element_ops p)
    /. (float_of_int cycles *. Params.cycle_ns *. 1e-9)

let energy_delay_product b ~cycles =
  total b *. float_of_int cycles *. Params.cycle_ns
