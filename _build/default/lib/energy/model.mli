(** The PROMISE energy / throughput model — paper Eq. (6):
    E_PROMISE = Σ_i E_Class,i + E_LEAK + E_CTRL.

    Evaluated over execution traces (what the machine actually did) or
    analytically over a program (what it will do). All energies in pJ. *)

(** Energy decomposition; [read] is the Class-1 (memory access) share —
    the Figure-11 "READ" bar — [compute] covers Class-2/3/4 and the
    cross-bank rail, [leak] and [ctrl] the per-cycle terms. *)
type breakdown = {
  read : float;
  compute : float;
  leak : float;
  ctrl : float;
}

val total : breakdown -> float
val zero : breakdown
val add : breakdown -> breakdown -> breakdown
val scale : float -> breakdown -> breakdown
val pp_breakdown : Format.formatter -> breakdown -> unit

(** [task_record_energy r] — energy of one executed task. Class-1 energy
    honors the task's SWING code. *)
val task_record_energy : Promise_arch.Trace.task_record -> breakdown

(** [trace_energy tr] — Eq. (6) over a whole trace. *)
val trace_energy : Promise_arch.Trace.t -> breakdown

(** [task_energy task] — analytic energy of a task from its static
    fields (iterations × per-op costs), assuming one ADC conversion per
    iteration per bank when the task digitizes. Matches
    {!task_record_energy} on aggregating tasks. *)
val task_energy : Promise_isa.Task.t -> breakdown

(** [program_energy p] — analytic Eq. (6) over a program. *)
val program_energy : Promise_isa.Program.t -> breakdown

(** [program_cycles p] — Σ task cycles at per-task TP. *)
val program_cycles : Promise_isa.Program.t -> int

(** [program_steady_cycles p] — Σ steady-state task cycles (pipeline
    fill amortized across back-to-back decisions, the paper's
    throughput model). *)
val program_steady_cycles : Promise_isa.Program.t -> int

(** [task_energy_steady t] / [program_energy_steady p] — Eq. (6) with
    leakage/CTRL charged over the steady-state cycles. *)
val task_energy_steady : Promise_isa.Task.t -> breakdown

val program_energy_steady : Promise_isa.Program.t -> breakdown

(** [program_steady_cycles_at_worst_case_tp p] — steady cycles when the
    clock accommodates every ISA op (§3.2 ablation). *)
val program_steady_cycles_at_worst_case_tp : Promise_isa.Program.t -> int

(** [program_cycles_at_worst_case_tp p] — Σ task cycles when the pipeline
    clock must accommodate every ISA operation (§3.2 ablation). *)
val program_cycles_at_worst_case_tp : Promise_isa.Program.t -> int

(** [element_ops p] — total scalar (lane) operations the program
    performs: Σ iterations × 128 × banks. *)
val element_ops : Promise_isa.Program.t -> int

(** [throughput_ops_per_s p] — element ops / (program_cycles × 1 ns). *)
val throughput_ops_per_s : Promise_isa.Program.t -> float

(** [energy_delay_product b ~cycles] — EDP in pJ·ns. *)
val energy_delay_product : breakdown -> cycles:int -> float
