type node = { nm : float; vdd : float; finfet : bool }

let n14_finfet = { nm = 14.0; vdd = 0.8; finfet = true }
let n28_planar = { nm = 28.0; vdd = 0.9; finfet = false }
let n65_planar = { nm = 65.0; vdd = 1.2; finfet = false }

let finfet_to_planar_energy_factor = 2.1

let energy_scale ~from_ ~to_ =
  let cap = to_.nm /. from_.nm in
  let v = (to_.vdd /. from_.vdd) ** 2.0 in
  let drive =
    if from_.finfet && not to_.finfet then finfet_to_planar_energy_factor
    else 1.0
  in
  cap *. v *. drive

let delay_scale ~from_ ~to_ = to_.nm /. from_.nm *. (to_.vdd /. from_.vdd)
