(** Energy and delay per operation (paper Table 3), TSMC 65 nm GP,
    1 cycle = 1 ns. Energies are pJ per bank per operation at maximum
    swing (SWING = 111). *)

val class1_energy_pj : Promise_isa.Opcode.class1 -> float
val class2_energy_pj : Promise_isa.Opcode.class2 -> float
val class3_energy_pj : Promise_isa.Opcode.class3 -> float

val class4_energy_pj : Promise_isa.Opcode.class4 -> float
(** ≈ 0 in Table 3; we use 0.05 pJ so TH activity is visible in traces. *)

val leakage_pj_per_cycle_per_bank : float
(** 0.6 pJ / ns / bank. *)

val ctrl_pj_per_cycle : float
(** 5.4 pJ / ns (the CTRL block; one per machine — see DESIGN.md). *)

val crossbank_transfer_pj : float
(** 0.5 pJ per 8-bit word on the cross-bank rail (§3.1). *)

(** [class1_energy_at_swing op ~swing] — Class-1 analog energies scale
    with the bit-line swing: half fixed, half ∝ ΔV_BL
    ({!Promise_analog.Swing.read_energy_scale}); digital read/write are
    swing-independent. *)
val class1_energy_at_swing : Promise_isa.Opcode.class1 -> swing:int -> float

(** All rows of Table 3 as (class, name, delay cycles, energy pJ), for
    printing the table reproduction. *)
val table3 : unit -> (int * string * int * float) list
