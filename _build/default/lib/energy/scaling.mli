(** ITRS-style process scaling (paper §6.2).

    The paper scales the published 14 nm FinFET k-NN accelerator [7] to
    65 nm before comparing: energy scales with capacitance (∝ feature
    size) and V_dd², with an extra factor for the FinFET → planar drive
    gap; delay scales with feature size and V_dd ratio. *)

type node = { nm : float; vdd : float; finfet : bool }

val n14_finfet : node
val n28_planar : node
val n65_planar : node

val finfet_to_planar_energy_factor : float
(** 2.1. *)

(** [energy_scale ~from_ ~to_] — multiply an energy measured at [from_]
    by this to estimate it at [to_]. *)
val energy_scale : from_:node -> to_:node -> float

(** [delay_scale ~from_ ~to_] — same for delays (divide throughputs). *)
val delay_scale : from_:node -> to_:node -> float
