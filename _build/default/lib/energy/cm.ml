open Promise_isa
open Promise_arch

let ctrl_pj_per_cycle = 4.3

let task_cycles (t : Task.t) =
  let per_iteration =
    max 1 (Timing.class1_delay t.Task.class1 + Timing.class2_delay t.Task.class2)
  in
  Timing.class3_latency t.Task.class3 + (Task.iterations t * per_iteration)

let program_cycles (p : Program.t) =
  List.fold_left (fun acc t -> acc + task_cycles t) 0 p.Program.tasks

let program_energy (p : Program.t) =
  let op_energy =
    List.fold_left
      (fun acc t ->
        let e = Model.task_energy t in
        (* Keep the per-op read/compute terms, rebuild leak/ctrl below. *)
        Model.add acc { e with Model.leak = 0.0; ctrl = 0.0 })
      Model.zero p.Program.tasks
  in
  let cycles = float_of_int (program_cycles p) in
  let banks = float_of_int (Program.max_banks p) in
  {
    op_energy with
    Model.leak = Tables.leakage_pj_per_cycle_per_bank *. cycles *. banks;
    ctrl = ctrl_pj_per_cycle *. cycles;
  }

let steady_iteration_cycles (t : Task.t) =
  max 1 (Timing.class1_delay t.Task.class1 + Timing.class2_delay t.Task.class2)

let program_steady_cycles (p : Program.t) =
  List.fold_left
    (fun acc t -> acc + (Task.iterations t * steady_iteration_cycles t))
    0 p.Program.tasks

let rebuild_leak_ctrl (p : Program.t) ~op_energy ~cycles =
  let banks = float_of_int (Program.max_banks p) in
  {
    op_energy with
    Model.leak = Tables.leakage_pj_per_cycle_per_bank *. cycles *. banks;
    ctrl = ctrl_pj_per_cycle *. cycles;
  }

let program_energy_steady (p : Program.t) =
  let op_energy =
    List.fold_left
      (fun acc t ->
        let e = Model.task_energy_steady t in
        Model.add acc { e with Model.leak = 0.0; ctrl = 0.0 })
      Model.zero p.Program.tasks
  in
  rebuild_leak_ctrl p ~op_energy
    ~cycles:(float_of_int (program_steady_cycles p))

let speedup_vs_cm_steady p =
  float_of_int (program_steady_cycles p)
  /. float_of_int (Model.program_steady_cycles p)

let energy_saving_vs_cm_steady p =
  let cm = Model.total (program_energy_steady p) in
  let promise = Model.total (Model.program_energy_steady p) in
  (cm -. promise) /. cm

let speedup_vs_cm p =
  float_of_int (program_cycles p) /. float_of_int (Model.program_cycles p)

let energy_saving_vs_cm p =
  let cm = Model.total (program_energy p) in
  let promise = Model.total (Model.program_energy p) in
  (cm -. promise) /. cm
