(** The DMA block of the multi-bank architecture (paper Fig. 2(b)):
    staging W and X from outside the accelerator.

    The paper's per-decision numbers assume weights are pre-stored and
    X arrives over a DMA rail; it never prices those transfers. This
    module adds the missing accounting as an {e optional} overlay —
    the defaults reproduce the paper (no DMA charge), the report's
    fidelity section shows both — which matters most for Linear
    Regression, whose X-REG must be reloaded every Task (§6.2). *)

val bytes_per_cycle : int
(** 16 — a 128-bit rail at the 1 ns cycle. *)

val energy_pj_per_byte : float
(** 1.0 pJ/byte moved (interconnect + buffer write). *)

(** [transfer_cycles ~bytes] — ceil (bytes / bandwidth). *)
val transfer_cycles : bytes:int -> int

(** [transfer_energy_pj ~bytes]. *)
val transfer_energy_pj : bytes:int -> float

(** [x_bytes_per_decision g] — X traffic one inference decision moves
    into X-REGs: for each task consuming an X operand, its vector
    length per row chunk (broadcast) or the whole streamed array
    (element-wise reductions). 8-bit elements = 1 byte each. *)
val x_bytes_per_decision : Promise_ir.Graph.t -> int

(** [weight_bytes g] — one-time W footprint (pre-stored; not charged
    per decision). *)
val weight_bytes : Promise_ir.Graph.t -> int

(** [decision_overhead g] — (extra cycles, extra pJ) per decision from
    the X traffic. *)
val decision_overhead : Promise_ir.Graph.t -> int * float
