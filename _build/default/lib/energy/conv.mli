(** CONV-8b / CONV-OPT: the conventional digital ASIC baselines
    (paper Fig. 9, Eq. (5)).

    A CONV design pairs a standard SRAM with an algorithm-specific 8-bit
    (CONV-8b) or minimum-precision (CONV-OPT) synthesized datapath. Per
    bank access the SRAM fetches NCOL/(L·B) = 64/B words (column mux
    ratio L = 4) in T_SRAM = 2 cycles, and the datapath keeps up with the
    fetch rate, so f_CONV = (NCOL/L)/B / T_SRAM (Eq. 5). X is held in the
    pipeline register and reused — unlike PROMISE, which must re-read
    analog data every Task (the Linear Regression penalty of §6.2). *)

type variant = Conv_8b | Conv_opt of int  (** precision bits, 2..8 *)

val precision : variant -> int

(** Abstract workload, derived from the same kernel the PROMISE program
    implements. [fetch_words] counts W words the CONV design must read
    from SRAM (register reuse collapses multi-pass kernels); [macs]
    counts datapath scalar ops. *)
type workload = {
  name : string;
  macs : int;
  fetch_words : int;
  banks : int;  (** SRAM banks, matched to the PROMISE configuration *)
}

val t_sram_cycles : int
(** 2 (Table 3 digital read). *)

val words_per_access : precision:int -> int
(** 64 / B, at least 1. *)

val sram_access_energy_pj : float
(** 33 pJ per 64-bit bank access (Table 3 digital read). *)

val mac_energy_pj : precision:int -> float
(** 0.9 pJ at 8 bits, scaling as (B/8)^1.6 (DESIGN.md calibration). *)

val ctrl_pj_per_ns : float
(** Clock/control/dataflow power of the synthesized datapath, 3.4 pJ/ns. *)

(** [delay_ns v w] — fetch-bound execution time across [w.banks] banks. *)
val delay_ns : variant -> workload -> float

(** [throughput_macs_per_ns v w] — Eq. (5) × banks. *)
val throughput_macs_per_ns : variant -> workload -> float

(** [energy v w] — read / compute / leak / ctrl decomposition, comparable
    with {!Model.breakdown} for PROMISE (Figure 11). *)
val energy : variant -> workload -> Model.breakdown

(** [edp v w] — energy-delay product, pJ·ns. *)
val edp : variant -> workload -> float
