(** CM: the original fixed-function compute-memory baseline ([9]).

    CM executes the same mixed-signal operations as PROMISE but without
    the analog pipeline: each iteration's stages run back-to-back
    (latency = Class-1 + Class-2 delay), and without a programmable
    controller (a slightly cheaper fixed-function CTRL). The paper finds
    PROMISE up to 1.9× faster (pipelining beats operational diversity)
    and ~5.5% lower energy (it sleeps sooner, cutting leakage+CTRL). *)

val ctrl_pj_per_cycle : float
(** 4.3 pJ/ns — fixed-function controller (DESIGN.md calibration). *)

(** [task_cycles t] — unpipelined: iterations × (T_S1 + T_S2) + ADC fill. *)
val task_cycles : Promise_isa.Task.t -> int

val program_cycles : Promise_isa.Program.t -> int

(** [program_energy p] — same per-op energies as PROMISE, CM CTRL rate,
    leakage over the longer unpipelined busy time. *)
val program_energy : Promise_isa.Program.t -> Model.breakdown

(** [speedup_vs_cm p] — PROMISE cycles vs CM cycles, >1 = PROMISE faster. *)
val speedup_vs_cm : Promise_isa.Program.t -> float

(** [energy_saving_vs_cm p] — fractional PROMISE saving, e.g. 0.055. *)
val energy_saving_vs_cm : Promise_isa.Program.t -> float

(** Steady-state variants (fill amortized across decisions), used by
    the §6.2 comparison report. *)
val program_steady_cycles : Promise_isa.Program.t -> int

val program_energy_steady : Promise_isa.Program.t -> Model.breakdown
val speedup_vs_cm_steady : Promise_isa.Program.t -> float
val energy_saving_vs_cm_steady : Promise_isa.Program.t -> float
