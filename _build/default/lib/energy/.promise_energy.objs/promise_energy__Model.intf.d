lib/energy/model.mli: Format Promise_arch Promise_isa
