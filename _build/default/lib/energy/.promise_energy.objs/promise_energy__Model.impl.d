lib/energy/model.ml: Crossbank Format List Op_param Params Program Promise_arch Promise_isa Tables Task Timing Trace
