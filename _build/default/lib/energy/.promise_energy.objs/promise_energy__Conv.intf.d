lib/energy/conv.mli: Model
