lib/energy/soa.mli: Format Scaling
