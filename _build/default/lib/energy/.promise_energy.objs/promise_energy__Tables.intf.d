lib/energy/tables.mli: Promise_isa
