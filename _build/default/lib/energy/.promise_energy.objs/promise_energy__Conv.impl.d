lib/energy/conv.ml: Model Promise_arch Tables
