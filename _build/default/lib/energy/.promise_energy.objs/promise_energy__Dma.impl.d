lib/energy/dma.ml: List Promise_arch Promise_ir
