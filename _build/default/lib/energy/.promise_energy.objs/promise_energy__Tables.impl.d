lib/energy/tables.ml: List Opcode Promise_analog Promise_arch Promise_isa Timing
