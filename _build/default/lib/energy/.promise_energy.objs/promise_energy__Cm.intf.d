lib/energy/cm.mli: Model Promise_isa
