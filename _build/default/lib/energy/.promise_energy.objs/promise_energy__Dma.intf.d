lib/energy/dma.mli: Promise_ir
