lib/energy/scaling.ml:
