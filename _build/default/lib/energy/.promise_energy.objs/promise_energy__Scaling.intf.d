lib/energy/scaling.mli:
