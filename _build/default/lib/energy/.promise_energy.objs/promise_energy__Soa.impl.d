lib/energy/soa.ml: Format Scaling
