lib/energy/cm.ml: List Model Program Promise_arch Promise_isa Tables Task Timing
