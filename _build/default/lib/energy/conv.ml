type variant = Conv_8b | Conv_opt of int

let precision = function
  | Conv_8b -> 8
  | Conv_opt b ->
      if b < 2 || b > 8 then invalid_arg "Conv: precision must be in [2, 8]";
      b

type workload = { name : string; macs : int; fetch_words : int; banks : int }

let t_sram_cycles = 2
let words_per_access ~precision = max 1 (Promise_arch.Params.n_col / 4 / precision)
let sram_access_energy_pj = 33.0
let mac_energy_pj ~precision = 0.9 *. ((float_of_int precision /. 8.0) ** 1.6)
let ctrl_pj_per_ns = 3.4

let accesses v w =
  let b = precision v in
  (w.fetch_words + words_per_access ~precision:b - 1)
  / words_per_access ~precision:b

let delay_ns v w =
  float_of_int (accesses v w * t_sram_cycles)
  *. Promise_arch.Params.cycle_ns /. float_of_int (max 1 w.banks)

let throughput_macs_per_ns v w =
  let b = precision v in
  float_of_int (words_per_access ~precision:b * w.banks)
  /. (float_of_int t_sram_cycles *. Promise_arch.Params.cycle_ns)

let energy v w =
  let b = precision v in
  let read = float_of_int (accesses v w) *. sram_access_energy_pj in
  let compute = float_of_int w.macs *. mac_energy_pj ~precision:b in
  let ns = delay_ns v w in
  let leak =
    Tables.leakage_pj_per_cycle_per_bank *. ns *. float_of_int w.banks
  in
  let ctrl = ctrl_pj_per_ns *. ns in
  { Model.read; compute; leak; ctrl }

let edp v w = Model.total (energy v w) *. delay_ns v w
