(** State-of-the-art silicon comparisons (paper §6.2).

    Published numbers of the two ASIC prototypes the paper compares
    against, and the comparison arithmetic (optionally process-scaled to
    65 nm via {!Scaling}). *)

type published = {
  name : string;
  node : Scaling.node;
  energy_per_decision_j : float;
  decisions_per_s : float;
  note : string;
}

val knn_l1_14nm : published
(** [7]: 3.37 nJ/decision, 21.5 M decisions/s, L1, 14 nm FinFET. *)

val knn_l2_14nm : published
(** [7]: 3.84 nJ/decision, 20.3 M decisions/s, L2. *)

val dnn_28nm : published
(** [6]: 0.57 µJ/decision, 28 K decisions/s, 8-bit 5-layer
    784-256-256-256-10 DNN, 28 nm (PROMISE's network is ~69% larger). *)

type comparison = {
  published : published;
  scaled_energy_j : float;
  scaled_decisions_per_s : float;
  ours_energy_j : float;
  ours_decisions_per_s : float;
  energy_ratio : float;  (** scaled published / ours; > 1 ⇒ PROMISE wins *)
  throughput_ratio : float;  (** ours / scaled published *)
  edp_ratio : float;  (** scaled published EDP / ours; > 1 ⇒ PROMISE wins *)
}

(** [compare ?scale_to_65nm pub ~ours_energy_j ~ours_decisions_per_s] —
    [scale_to_65nm] defaults to [true] (the paper scales the 14 nm k-NN
    accelerator but compares the 28 nm DNN accelerator raw). *)
val compare :
  ?scale_to_65nm:bool ->
  published ->
  ours_energy_j:float ->
  ours_decisions_per_s:float ->
  comparison

val pp_comparison : Format.formatter -> comparison -> unit
