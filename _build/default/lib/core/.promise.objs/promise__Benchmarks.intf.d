lib/core/benchmarks.mli: Promise_arch Promise_compiler Promise_energy Promise_ir Promise_isa
