lib/core/report.ml: Array Benchmarks Format List Promise_analog Promise_arch Promise_compiler Promise_energy Promise_ir Promise_isa Promise_ml String Validation
