lib/core/validation.ml: Array Benchmarks Float Format List Printf Promise_analog Promise_arch Promise_compiler Promise_energy Promise_ir Promise_isa Promise_ml Result
