lib/core/promise.ml: Benchmarks Promise_analog Promise_arch Promise_compiler Promise_energy Promise_ir Promise_isa Promise_ml Report Validation
