lib/core/validation.mli: Format
