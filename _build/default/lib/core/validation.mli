(** The paper's three-level validation methodology (Fig. 8, §5) as a
    runnable self-check.

    The paper validates bottom-up: component-level models against
    measured silicon (energy/delay within 10%/9%), architecture-level
    functionality against small data sets, and application-level
    accuracy against large data sets. This module reproduces that
    structure against this repository's own ground truths: the
    published Table-3 numbers, the float reference implementations, and
    the benchmark accuracy budgets. [promise-report validation] runs
    it; the result is also a single boolean for CI-style gating. *)

type check = {
  name : string;
  passed : bool;
  detail : string;  (** measured-vs-expected summary *)
}

type level = { title : string; checks : check list }

(** Component level: Table-3 energies/delays, the noise σ model, LUT
    deviation bounds, ADC quantization error, PWM/sub-ranged read
    exactness. *)
val component_level : unit -> level

(** Architecture level: ideal-machine kernels vs the float references
    (dot / L1 / argmin), the discrete-event scheduler vs the closed
    form, CTRL signal ordering. *)
val architecture_level : unit -> level

(** Application level: benchmark accuracy at maximum swing within the
    mismatch budgets (the fast benchmarks only). *)
val application_level : unit -> level

val all_levels : unit -> level list

(** [report ppf] — print every level; returns whether every check
    passed. *)
val report : Format.formatter -> bool
