let bits = 8
let levels = 1 lsl bits
let units_per_bank = 8
let conversion_delay_cycles = 138
let lsb = 2.0 /. float_of_int levels

(* Mid-tread: zero is exactly representable (code 128), avoiding a
   systematic lsb/2 bias on near-zero aggregates. *)
let quantize v =
  let code = int_of_float (Float.round (v /. lsb)) + (levels / 2) in
  max 0 (min (levels - 1) code)

let dequantize code =
  if code < 0 || code >= levels then invalid_arg "Adc.dequantize: bad code";
  float_of_int (code - (levels / 2)) *. lsb

let convert v = dequantize (quantize v)

let sustained_rate_hz =
  (* 8 pipelined units, one result each per 138 cycles at 1 GHz. *)
  float_of_int units_per_bank /. (float_of_int conversion_delay_cycles *. 1e-9)
