let bitline_rate_per_ns = 0.006
let capacitor_rate_per_ns = 0.0005

let droop ~rate_per_ns ~ns v =
  if ns < 0.0 then invalid_arg "Leakage.droop: negative time";
  v *. exp (-.rate_per_ns *. ns)

let bitline ~idle_ns v = droop ~rate_per_ns:bitline_rate_per_ns ~ns:idle_ns v
let stage_hold ~idle_ns v =
  droop ~rate_per_ns:capacitor_rate_per_ns ~ns:idle_ns v
