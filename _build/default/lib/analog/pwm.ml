type pulse = { bit : int; weight : int; duration : int }

let check_bits bits =
  if bits < 1 || bits > 16 then invalid_arg "Pwm: bits out of [1, 16]"

let pulses ~bits code =
  check_bits bits;
  if code < 0 || code >= 1 lsl bits then
    invalid_arg "Pwm.pulses: code out of range";
  List.init bits (fun bit ->
      let weight = 1 lsl bit in
      { bit; weight; duration = (if code land weight <> 0 then weight else 0) })

let bitline_drop ~bits ~mv_per_lsb code =
  List.fold_left
    (fun acc p -> acc +. (float_of_int p.duration *. mv_per_lsb))
    0.0
    (pulses ~bits code)

let read_value ~bits code =
  check_bits bits;
  if code < 0 || code >= 1 lsl bits then
    invalid_arg "Pwm.read_value: code out of range";
  float_of_int code /. float_of_int (1 lsl bits)

(* Two's-complement 8-bit code via the sub-ranged MSB/LSB column pair:
   the unsigned pattern splits into nibbles, the LSB column is read at
   1/16 weight, and the sign is restored by re-centering around 128. *)
let subranged_read code8 =
  if code8 < -128 || code8 > 127 then
    invalid_arg "Pwm.subranged_read: code not 8-bit";
  let unsigned = code8 land 0xff in
  let msb = unsigned lsr 4 and lsb = unsigned land 0xf in
  let combined =
    read_value ~bits:4 msb +. (read_value ~bits:4 lsb /. 16.0)
  in
  (* combined = unsigned / 256 in [0, 1); recenter to [-1, 1) *)
  (combined *. 2.0) -. (if code8 < 0 then 2.0 else 0.0)

let max_pulse_units ~bits =
  check_bits bits;
  1 lsl (bits - 1)
