(** The SWING knob: bit-line voltage swing per LSB (paper §3.3, §4.4).

    SWING codes 0..7 select ΔV_BL from 5 mV/LSB (code 0) up to 30 mV/LSB
    (code 7). A larger swing costs more energy but shrinks the relative
    aREAD noise factor f(SWING), which the paper reports ranging over
    0.08 (max swing) .. 0.75 (min swing), inversely monotone in the code. *)

val min_code : int
val max_code : int
val all_codes : int list

(** [mv_per_lsb code] — ΔV_BL in mV/LSB: 5 mV at code 0, 30 mV at code 7,
    linear in the code. Raises [Invalid_argument] outside 0..7. *)
val mv_per_lsb : int -> float

(** [noise_factor code] — f(SWING): 0.75 at code 0 down to 0.08 at code 7,
    geometrically interpolated (see DESIGN.md) so it is strictly
    decreasing in the code. *)
val noise_factor : int -> float

(** [read_energy_scale code] — fraction of the maximum-swing Class-1
    energy consumed at [code]. Half of the Class-1 energy (precharge,
    WL drivers) is swing-independent, the other half scales with ΔV_BL:
    [0.5 +. 0.5 *. mv_per_lsb code /. 30.]. *)
val read_energy_scale : int -> float

(** [of_mv mv] — smallest code whose swing is at least [mv] mV/LSB, or
    [max_code] when none reaches it. *)
val of_mv : float -> int

val validate : int -> (int, string) result
