lib/analog/pwm.mli:
