lib/analog/rng.ml: Array Float Int64
