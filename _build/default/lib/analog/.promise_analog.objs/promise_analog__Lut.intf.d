lib/analog/lut.mli:
