lib/analog/adc.ml: Float
