lib/analog/adc.mli:
