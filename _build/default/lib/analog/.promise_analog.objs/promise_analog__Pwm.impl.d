lib/analog/pwm.ml: List
