lib/analog/swing.ml: Printf
