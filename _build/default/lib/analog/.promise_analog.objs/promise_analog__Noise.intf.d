lib/analog/noise.mli: Rng
