lib/analog/lut.ml: Array Float
