lib/analog/leakage.ml:
