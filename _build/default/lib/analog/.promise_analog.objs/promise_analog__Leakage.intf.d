lib/analog/leakage.mli:
