lib/analog/swing.mli:
