lib/analog/noise.ml: Array Float Rng Swing
