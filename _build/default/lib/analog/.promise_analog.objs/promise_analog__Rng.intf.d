lib/analog/rng.mli:
