let min_code = 0
let max_code = 7
let all_codes = [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let validate code =
  if code < min_code || code > max_code then
    Error (Printf.sprintf "SWING code %d out of range [0, 7]" code)
  else Ok code

let check code =
  match validate code with
  | Ok c -> c
  | Error msg -> invalid_arg ("Swing: " ^ msg)

let mv_min = 5.0
let mv_max = 30.0

let mv_per_lsb code =
  let code = check code in
  mv_min +. ((mv_max -. mv_min) *. float_of_int code /. float_of_int max_code)

let f_at_min_swing = 0.75
let f_at_max_swing = 0.08

(* Geometric interpolation keeps f strictly decreasing and spans the
   published [0.08, 0.75] range exactly (DESIGN.md, "Modeling decisions"). *)
let noise_factor code =
  let code = check code in
  let ratio = f_at_max_swing /. f_at_min_swing in
  f_at_min_swing *. (ratio ** (float_of_int code /. float_of_int max_code))

let read_energy_scale code = 0.5 +. (0.5 *. mv_per_lsb code /. mv_max)

let of_mv mv =
  let rec search code =
    if code > max_code then max_code
    else if mv_per_lsb code >= mv then code
    else search (code + 1)
  in
  search min_code
