(** The 8-bit ADC bank (paper §3.1).

    Each PROMISE bank digitizes its aggregated analog value with eight
    8-bit ADCs operating in parallel (≈57 M conversions/s sustained),
    preventing analog noise from accumulating across Task iterations and
    enabling reliable cross-bank transfers. *)

val bits : int
(** 8. *)

val levels : int
(** 256. *)

val units_per_bank : int
(** 8 parallel ADCs per bank. *)

val conversion_delay_cycles : int
(** 138 cycles per conversion (Table 3); amortized over the 8 units. *)

(** [quantize v] — digital code (0..255) for analog [v] clamped to
    [[-1, 1)], mid-tread uniform quantizer (zero is exactly
    representable at code 128, avoiding a systematic bias on near-zero
    aggregates). *)
val quantize : float -> int

(** [dequantize code] — analog value of [code]: [(code - 128) · lsb]. *)
val dequantize : int -> float

(** [convert v] — quantize-then-dequantize round trip: the value the
    digital domain sees for analog input [v]. *)
val convert : float -> float

(** [lsb] — quantization step (2 / 256). *)
val lsb : float

(** [sustained_rate_hz] — conversions per second per bank with all eight
    units pipelined, at a 1 ns cycle. *)
val sustained_rate_hz : float
