(** The binary pulse-width-modulated word-line scheme of compute memory
    (paper Fig. 1(b), §2.2) — the mechanism beneath aREAD.

    A B_w-bit word stored column-major has its B_w word lines asserted
    simultaneously, each for a duration proportional to the binary
    weight of its bit position (bit i drives for 2^i time units). The
    bit-line develops a voltage drop proportional to the binary-weighted
    sum of the stored bits — a digital word becomes an analog value in
    one access. The sub-ranged variant splits the 8-bit word into 4-bit
    MSB/LSB halves on neighboring columns and combines them with a 16:1
    attenuation, improving linearity [9].

    {!Bitcell_array.aread} uses the resulting ideal transfer directly;
    this module exposes the pulse-level model so tests can verify the
    equivalence and the timing budget. *)

(** Pulse schedule of one word line: asserted for [duration] units. *)
type pulse = { bit : int; weight : int; duration : int }

(** [pulses ~bits code] — the per-bit schedule for an unsigned [code]
    (0 ≤ code < 2^bits): bit i's word line drives for 2^i units when
    the bit is set, 0 otherwise. *)
val pulses : bits:int -> int -> pulse list

(** [bitline_drop ~bits ~mv_per_lsb code] — total ΔV_BL in mV: the sum
    of the pulse durations times the per-LSB swing. Linear in [code]. *)
val bitline_drop : bits:int -> mv_per_lsb:float -> int -> float

(** [read_value ~bits code] — the normalized analog value the PWM read
    produces for unsigned [code]: [code / 2^bits ∈ [0, 1)]. *)
val read_value : bits:int -> int -> float

(** [subranged_read code8] — the sub-ranged two-column read of a signed
    8-bit code (two's complement): MSB nibble read at full weight, LSB
    nibble attenuated 16:1, recombined and re-centered. Equals
    [code8 / 128] exactly in the ideal model. *)
val subranged_read : int -> float

(** [max_pulse_units ~bits] — duration of the longest pulse (2^(bits-1)
    units): the component of the aREAD stage delay that scales with
    word precision. *)
val max_pulse_units : bits:int -> int
