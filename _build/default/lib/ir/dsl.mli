(** The high-level tensor DSL — the repository's stand-in for the Julia
    frontend (paper §4.3; substitution documented in DESIGN.md).

    A kernel is written as array declarations plus statements
    ("[for i in 1:n; out[i] = f(reduce(vecop(W[i], X))); end]" and
    library calls), and {!lower} emits the same SSA subgraphs the
    paper's Julia → LLVM path produces, which {!Pattern.match_function}
    then consumes. The DSL never shortcuts to AbstractTasks directly:
    everything flows through SSA and the pattern matcher. *)

(** {2 Array declarations} *)

type decl

val matrix : string -> rows:int -> cols:int -> decl
val vector : string -> len:int -> decl
val out_vector : string -> len:int -> decl

(** {2 Vector expressions (inside the loop body)} *)

type vexpr

val row : string -> vexpr
(** [row w] — the IV-th row of matrix [w] (Julia [getindex]). *)

val xvec : string -> vexpr
(** [xvec x] — a loop-invariant vector argument. *)

val vadd : vexpr -> vexpr -> vexpr
val vsub : vexpr -> vexpr -> vexpr
val vmul : vexpr -> vexpr -> vexpr
val vabs : vexpr -> vexpr
val vsquare : vexpr -> vexpr
val vcompare : vexpr -> vexpr

(** {2 Scalar expressions} *)

type sexpr

val sum : vexpr -> sexpr
(** The reduction library call. *)

val sigmoid : sexpr -> sexpr
val relu : sexpr -> sexpr

val sthreshold : float -> sexpr -> sexpr
(** [sthreshold c e] — 1 when [e > c], else 0 (the sign / threshold
    decision function, Class-4 [threshold]). *)

(** Convenience kernels. *)

val dot : string -> string -> sexpr
(** [dot w x] = [sum (vmul (row w) (xvec x))]. *)

val l1_distance : string -> string -> sexpr
(** [sum (vabs (vsub (row w) (xvec x)))]. *)

val l2_distance : string -> string -> sexpr
(** [sum (vsquare (vsub (row w) (xvec x)))]. *)

(** {2 Statements} *)

type stmt

(** [for_store ~iterations ~out body] — the Figure-7 loop. *)
val for_store : iterations:int -> out:string -> sexpr -> stmt

(** [for_store_countdown] — same loop written with a decrementing
    induction variable (exercises the canonicalization the paper
    mentions: "the loop index variable being incremented instead of
    decremented"). *)
val for_store_countdown : iterations:int -> out:string -> sexpr -> stmt

val argmin : string -> stmt
val argmax : string -> stmt
val mean : string -> stmt
val mean_square : string -> stmt
val mean_product : string -> string -> stmt

(** {2 Kernels} *)

type kernel = { name : string; decls : decl list; stmts : stmt list }

val kernel : name:string -> decls:decl list -> stmt list -> kernel

(** [lower k] — emit the SSA function. Raises [Invalid_argument] on
    undeclared arrays or malformed kernels. *)
val lower : kernel -> Ssa.func
