type sexp = Atom of string | List of sexp list

let rec pp_sexp ppf = function
  | Atom a -> Format.pp_print_string ppf a
  | List items ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_sexp)
        items

(* ------------------------------------------------------------------ *)
(* Tokenizer / reader                                                  *)
(* ------------------------------------------------------------------ *)

type token = Lparen | Rparen | Tatom of string

let tokenize src =
  let tokens = ref [] in
  let n = String.length src in
  let i = ref 0 in
  let atom_start = ref (-1) in
  let flush_atom upto =
    if !atom_start >= 0 then begin
      tokens := Tatom (String.sub src !atom_start (upto - !atom_start)) :: !tokens;
      atom_start := -1
    end
  in
  while !i < n do
    (match src.[!i] with
    | '(' ->
        flush_atom !i;
        tokens := Lparen :: !tokens
    | ')' ->
        flush_atom !i;
        tokens := Rparen :: !tokens
    | ';' ->
        flush_atom !i;
        while !i < n && src.[!i] <> '\n' do
          incr i
        done
    | ' ' | '\t' | '\n' | '\r' -> flush_atom !i
    | _ -> if !atom_start < 0 then atom_start := !i);
    incr i
  done;
  flush_atom n;
  List.rev !tokens

let sexp_of_string src =
  let rec parse_list acc = function
    | [] -> Error ("unexpected end of input", [])
    | Rparen :: rest -> Ok (List.rev acc, rest)
    | Lparen :: rest -> (
        match parse_list [] rest with
        | Ok (inner, rest) -> parse_list (List inner :: acc) rest
        | Error _ as e -> e)
    | Tatom a :: rest -> parse_list (Atom a :: acc) rest
  in
  let rec parse_top acc = function
    | [] -> Ok (List.rev acc)
    | Lparen :: rest -> (
        match parse_list [] rest with
        | Ok (inner, rest) -> parse_top (List inner :: acc) rest
        | Error (msg, _) -> Error msg)
    | Rparen :: _ -> Error "unbalanced ')'"
    | Tatom a :: rest -> parse_top (Atom a :: acc) rest
  in
  parse_top [] (tokenize src)

(* ------------------------------------------------------------------ *)
(* Kernel elaboration                                                  *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let err fmt = Format.kasprintf (fun m -> Error m) fmt

let as_int ctx = function
  | Atom a -> (
      match int_of_string_opt a with
      | Some n -> Ok n
      | None -> err "%s: expected an integer, got %S" ctx a)
  | List _ as s -> err "%s: expected an integer, got %a" ctx pp_sexp s

let as_float ctx = function
  | Atom a -> (
      match float_of_string_opt a with
      | Some f -> Ok f
      | None -> err "%s: expected a number, got %S" ctx a)
  | List _ as s -> err "%s: expected a number, got %a" ctx pp_sexp s

let as_name ctx = function
  | Atom a -> Ok a
  | List _ as s -> err "%s: expected a name, got %a" ctx pp_sexp s

let rec parse_vexpr = function
  | List [ Atom "row"; w ] ->
      let* w = as_name "row" w in
      Ok (Dsl.row w)
  | List [ Atom "xvec"; x ] ->
      let* x = as_name "xvec" x in
      Ok (Dsl.xvec x)
  | List [ Atom op; a; b ]
    when op = "vadd" || op = "vsub" || op = "vmul" ->
      let* va = parse_vexpr a in
      let* vb = parse_vexpr b in
      Ok
        ((match op with
         | "vadd" -> Dsl.vadd
         | "vsub" -> Dsl.vsub
         | _ -> Dsl.vmul)
           va vb)
  | List [ Atom op; a ] when op = "vabs" || op = "vsquare" || op = "vcompare" ->
      let* va = parse_vexpr a in
      Ok
        ((match op with
         | "vabs" -> Dsl.vabs
         | "vsquare" -> Dsl.vsquare
         | _ -> Dsl.vcompare)
           va)
  | s -> err "unknown vector expression %a" pp_sexp s

let rec parse_expr = function
  | List [ Atom "dot"; w; x ] ->
      let* w = as_name "dot" w in
      let* x = as_name "dot" x in
      Ok (Dsl.dot w x)
  | List [ Atom "l1"; w; x ] ->
      let* w = as_name "l1" w in
      let* x = as_name "l1" x in
      Ok (Dsl.l1_distance w x)
  | List [ Atom "l2"; w; x ] ->
      let* w = as_name "l2" w in
      let* x = as_name "l2" x in
      Ok (Dsl.l2_distance w x)
  | List [ Atom "sum"; v ] ->
      let* v = parse_vexpr v in
      Ok (Dsl.sum v)
  | List [ Atom "sigmoid"; e ] ->
      let* e = parse_expr e in
      Ok (Dsl.sigmoid e)
  | List [ Atom "relu"; e ] ->
      let* e = parse_expr e in
      Ok (Dsl.relu e)
  | List [ Atom "threshold"; c; e ] ->
      let* c = as_float "threshold" c in
      let* e = parse_expr e in
      Ok (Dsl.sthreshold c e)
  | s -> err "unknown scalar expression %a" pp_sexp s

let parse_form form (decls, stmts) =
  match form with
  | List [ Atom "matrix"; name; rows; cols ] ->
      let* name = as_name "matrix" name in
      let* rows = as_int "matrix rows" rows in
      let* cols = as_int "matrix cols" cols in
      Ok (Dsl.matrix name ~rows ~cols :: decls, stmts)
  | List [ Atom "vector"; name; len ] ->
      let* name = as_name "vector" name in
      let* len = as_int "vector len" len in
      Ok (Dsl.vector name ~len :: decls, stmts)
  | List [ Atom "output"; name; len ] ->
      let* name = as_name "output" name in
      let* len = as_int "output len" len in
      Ok (Dsl.out_vector name ~len :: decls, stmts)
  | List [ Atom ("for" | "for-down" as dir); iters; out; expr ] ->
      let* iterations = as_int "for" iters in
      let* out = as_name "for" out in
      let* body = parse_expr expr in
      let loop =
        if dir = "for" then Dsl.for_store else Dsl.for_store_countdown
      in
      Ok (decls, loop ~iterations ~out body :: stmts)
  | List [ Atom "argmin"; out ] ->
      let* out = as_name "argmin" out in
      Ok (decls, Dsl.argmin out :: stmts)
  | List [ Atom "argmax"; out ] ->
      let* out = as_name "argmax" out in
      Ok (decls, Dsl.argmax out :: stmts)
  | List [ Atom "mean"; w ] ->
      let* w = as_name "mean" w in
      Ok (decls, Dsl.mean w :: stmts)
  | List [ Atom "mean-square"; w ] ->
      let* w = as_name "mean-square" w in
      Ok (decls, Dsl.mean_square w :: stmts)
  | List [ Atom "mean-product"; u; v ] ->
      let* u = as_name "mean-product" u in
      let* v = as_name "mean-product" v in
      Ok (decls, Dsl.mean_product u v :: stmts)
  | s -> err "unknown kernel form %a" pp_sexp s

let parse src =
  let* top = sexp_of_string src in
  match top with
  | [ List (Atom "kernel" :: name :: forms) ] ->
      let* name = as_name "kernel" name in
      let* decls, stmts =
        List.fold_left
          (fun acc form ->
            let* acc = acc in
            parse_form form acc)
          (Ok ([], [])) forms
      in
      if stmts = [] then err "kernel %S has no statements" name
      else Ok (Dsl.kernel ~name ~decls:(List.rev decls) (List.rev stmts))
  | [ _ ] -> Error "expected (kernel NAME ...)"
  | [] -> Error "empty input"
  | _ -> Error "expected exactly one (kernel ...) form"

let parse_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let n = in_channel_length ic in
      let src = really_input_string ic n in
      close_in ic;
      parse src
