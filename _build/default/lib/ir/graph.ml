type port = W_input | X_input [@@deriving eq, show { with_path = false }]

type edge = { producer : int; consumer : int; port : port }

module Int_map = Map.Make (Int)

type t = { nodes : Abstract_task.t Int_map.t; edges : edge list; next : int }

let empty = { nodes = Int_map.empty; edges = []; next = 0 }

let add_task g task =
  let id = g.next in
  (id, { g with nodes = Int_map.add id task g.nodes; next = id + 1 })

let task g id = Int_map.find id g.nodes
let n_tasks g = Int_map.cardinal g.nodes
let tasks g = Int_map.bindings g.nodes
let edges g = g.edges

let successors g id =
  List.filter_map
    (fun e -> if e.producer = id then Some (e.consumer, e.port) else None)
    g.edges

let predecessors g id =
  List.filter_map
    (fun e -> if e.consumer = id then Some (e.producer, e.port) else None)
    g.edges

let reachable g ~from =
  let visited = Hashtbl.create 16 in
  let rec go id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      List.iter (fun (s, _) -> go s) (successors g id)
    end
  in
  go from;
  visited

let connect g ~producer ~consumer ~port =
  if not (Int_map.mem producer g.nodes) then
    Error (Printf.sprintf "unknown producer node %d" producer)
  else if not (Int_map.mem consumer g.nodes) then
    Error (Printf.sprintf "unknown consumer node %d" consumer)
  else if producer = consumer then Error "self edge would create a cycle"
  else if Hashtbl.mem (reachable g ~from:consumer) producer then
    Error
      (Printf.sprintf "edge %d -> %d would create a cycle" producer consumer)
  else Ok { g with edges = { producer; consumer; port } :: g.edges }

let ( let* ) = Result.bind

let of_tasks task_list =
  let g, ids =
    List.fold_left
      (fun (g, ids) task ->
        let id, g = add_task g task in
        (g, (id, task) :: ids))
      (empty, []) task_list
  in
  let ids = List.rev ids in
  (* Connect by array-name matching: later tasks consume earlier outputs. *)
  List.fold_left
    (fun acc (cid, (ctask : Abstract_task.t)) ->
      let* g = acc in
      let find_producer array_name =
        List.find_opt
          (fun (pid, (ptask : Abstract_task.t)) ->
            pid < cid && String.equal ptask.Abstract_task.output array_name)
          (List.rev ids)
      in
      let connect_port g port array_name =
        match find_producer array_name with
        | Some (pid, _) -> connect g ~producer:pid ~consumer:cid ~port
        | None -> Ok g
      in
      let* g = connect_port g W_input ctask.Abstract_task.w in
      if Abstract_task.uses_x ctask then
        connect_port g X_input ctask.Abstract_task.x
      else Ok g)
    (Ok g) ids

let topological_order g =
  let in_degree = Hashtbl.create 16 in
  Int_map.iter (fun id _ -> Hashtbl.replace in_degree id 0) g.nodes;
  List.iter
    (fun e ->
      Hashtbl.replace in_degree e.consumer
        (Hashtbl.find in_degree e.consumer + 1))
    g.edges;
  let ready =
    Int_map.fold
      (fun id _ acc -> if Hashtbl.find in_degree id = 0 then id :: acc else acc)
      g.nodes []
    |> List.sort compare
  in
  let rec go ready acc =
    match ready with
    | [] -> List.rev acc
    | id :: rest ->
        let newly_ready =
          List.filter_map
            (fun (s, _) ->
              let d = Hashtbl.find in_degree s - 1 in
              Hashtbl.replace in_degree s d;
              if d = 0 then Some s else None)
            (successors g id)
        in
        go (List.sort compare (rest @ newly_ready)) (id :: acc)
  in
  go ready []

let is_linear_pipeline g =
  Int_map.for_all
    (fun id _ ->
      List.length (predecessors g id) <= 1 && List.length (successors g id) <= 1)
    g.nodes

let map_tasks g f = { g with nodes = Int_map.mapi f g.nodes }

let pp ppf g =
  Format.fprintf ppf "@[<v>IR graph: %d tasks@," (n_tasks g);
  Int_map.iter
    (fun id t ->
      Format.fprintf ppf "  [%d] %s: %a / %a / %a (N=%d, iters=%d, swing=%d)@,"
        id t.Abstract_task.name Abstract_task.pp_vec_op t.Abstract_task.vec_op
        Abstract_task.pp_red_op t.Abstract_task.red_op
        Abstract_task.pp_digital_op t.Abstract_task.digital_op
        t.Abstract_task.vector_len t.Abstract_task.loop_iterations
        t.Abstract_task.swing)
    g.nodes;
  List.iter
    (fun e ->
      Format.fprintf ppf "  %d -> %d (%a)@," e.producer e.consumer pp_port
        e.port)
    g.edges;
  Format.fprintf ppf "@]"
