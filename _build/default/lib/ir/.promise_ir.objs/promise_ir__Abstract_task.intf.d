lib/ir/abstract_task.pp.mli: Format
