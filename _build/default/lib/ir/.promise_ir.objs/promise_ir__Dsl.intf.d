lib/ir/dsl.pp.mli: Ssa
