lib/ir/ssa.pp.ml: Array Format Hashtbl List Option Ppx_deriving_runtime Printf Result String
