lib/ir/dsl.pp.ml: Array List Option Printf Ssa String
