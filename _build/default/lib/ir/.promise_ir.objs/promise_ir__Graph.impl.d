lib/ir/graph.pp.ml: Abstract_task Format Hashtbl Int List Map Ppx_deriving_runtime Printf Result String
