lib/ir/abstract_task.pp.ml: Ppx_deriving_runtime
