lib/ir/pattern.pp.mli: Abstract_task Format Graph Ssa
