lib/ir/sexp_frontend.pp.ml: Dsl Format List Result String
