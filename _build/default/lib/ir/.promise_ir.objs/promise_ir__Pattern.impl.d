lib/ir/pattern.pp.ml: Abstract_task Array Format Graph List Option Printf Result Seq Ssa String
