lib/ir/sexp_frontend.pp.mli: Dsl Format
