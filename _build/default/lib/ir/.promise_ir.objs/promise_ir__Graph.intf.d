lib/ir/graph.pp.mli: Abstract_task Format
