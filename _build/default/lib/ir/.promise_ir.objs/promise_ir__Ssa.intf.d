lib/ir/ssa.pp.mli: Format
