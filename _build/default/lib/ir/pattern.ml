open Ssa

type loop_info = {
  block : Ssa.label;
  iv_phi : int;
  start : int;
  iterations : int;
}

let pp_loop_info ppf l =
  Format.fprintf ppf "loop %S iv=%%%d start=%d iterations=%d" l.block l.iv_phi
    l.start l.iterations

let in_block (b : block) = function
  | Vreg id -> id >= b.first_index && id < b.first_index + Array.length b.instrs
  | Arg _ | Const_int _ | Const_float _ -> false

let instr_in_block (b : block) id =
  let offset = id - b.first_index in
  if offset >= 0 && offset < Array.length b.instrs then Some b.instrs.(offset)
  else None

(* Recognize the IV update: phi +/- 1, tolerant of operand order for +. *)
let iv_step (b : block) ~phi_id next =
  match next with
  | Vreg id -> (
      match instr_in_block b id with
      | Some (Int_binop { op = Iadd; lhs = Vreg p; rhs = Const_int 1 })
      | Some (Int_binop { op = Iadd; lhs = Const_int 1; rhs = Vreg p })
        when p = phi_id ->
          Some 1
      | Some (Int_binop { op = Isub; lhs = Vreg p; rhs = Const_int 1 })
        when p = phi_id ->
          Some (-1)
      | _ -> None)
  | _ -> None

(* Trip count of a do-while self-loop from its exit comparison on the
   post-update IV (or the phi itself). *)
let trip_count ~start ~step ~continue_pred ~uses_next ~bound =
  match (step, continue_pred, uses_next) with
  | 1, Lt, true -> Some (bound - start)
  | 1, Le, true -> Some (bound - start + 1)
  | 1, Lt, false -> Some (bound - start + 1)
  | 1, Ne, true -> Some (bound - start)
  | -1, Gt, true -> Some (start - bound)
  | -1, Ge, true -> Some (start - bound + 1)
  | -1, Ne, true -> Some (start - bound)
  | _ -> None

let canonical_loop _f (b : block) =
  match b.terminator with
  | Cond_br { cond = Vreg cond_id; if_true; if_false } -> (
      let continue_to_self, negated =
        if String.equal if_true b.label then (true, false)
        else if String.equal if_false b.label then (true, true)
        else (false, false)
      in
      if not continue_to_self then None
      else
        (* One induction phi: incoming from a non-self block (init) and
           from self (the update). *)
        let find_iv () =
          Array.to_seq b.instrs
          |> Seq.mapi (fun i instr -> (b.first_index + i, instr))
          |> Seq.find_map (fun (id, instr) ->
                 match instr with
                 | Phi { incoming = [ (l1, v1); (l2, v2) ] } ->
                     let init, next =
                       if String.equal l1 b.label then (v2, v1)
                       else if String.equal l2 b.label then (v1, v2)
                       else (Const_int 0, Const_int 0)
                     in
                     (match (init, iv_step b ~phi_id:id next) with
                     | Const_int start, Some step -> Some (id, start, step, next)
                     | _ -> None)
                 | _ -> None)
        in
        match find_iv () with
        | None -> None
        | Some (iv_phi, start, step, next) -> (
            match instr_in_block b cond_id with
            | Some (Icmp { pred; lhs; rhs }) -> (
                let pred = if negated then
                    match pred with
                    | Lt -> Ge | Le -> Gt | Gt -> Le | Ge -> Lt | Eq -> Ne
                    | Ne -> Eq
                  else pred
                in
                let classify v =
                  if equal_value v next then Some true
                  else if equal_value v (Vreg iv_phi) then Some false
                  else None
                in
                let resolved =
                  match (classify lhs, rhs) with
                  | Some uses_next, Const_int bound ->
                      Some (pred, uses_next, bound)
                  | _ -> (
                      match (lhs, classify rhs) with
                      | Const_int bound, Some uses_next ->
                          (* bound on the left: mirror the predicate *)
                          let mirrored =
                            match pred with
                            | Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le
                            | Eq -> Eq | Ne -> Ne
                          in
                          Some (mirrored, uses_next, bound)
                      | _ -> None)
                in
                match resolved with
                | None -> None
                | Some (continue_pred, uses_next, bound) -> (
                    match
                      trip_count ~start ~step ~continue_pred ~uses_next ~bound
                    with
                    | Some n when n >= 1 ->
                        let start = if step = 1 then start else bound in
                        Some { block = b.label; iv_phi; start; iterations = n }
                    | _ -> None))
            | _ -> None))
  | Br _ | Ret _ | Cond_br _ -> None

let find_loops f = List.filter_map (canonical_loop f) f.blocks

let ( let* ) = Result.bind

let arg_name ctx = function
  | Arg name -> Ok name
  | v ->
      Error
        (Format.asprintf "%s: expected a function argument, got %a" ctx
           pp_value v)

(* The IV value as the loop body sees it (the phi). *)
let is_iv info v = equal_value v (Vreg info.iv_phi)

let vector_len_of f ~w ~x =
  match (Option.bind x (param_ty f), param_ty f w) with
  | Some (Vector n), _ -> Ok n
  | _, Some (Matrix (_, cols)) -> Ok cols
  | _ ->
      Error
        (Printf.sprintf "cannot determine vector length of W=%S" w)

let check_rows f ~w ~iterations =
  match param_ty f w with
  | Some (Matrix (rows, _)) ->
      if iterations > rows then
        Error
          (Printf.sprintf "loop runs %d iterations but %S has %d rows"
             iterations w rows)
      else Ok ()
  | _ -> Error (Printf.sprintf "W operand %S is not a matrix" w)

let match_loop f info =
  let* b =
    match find_block f info.block with
    | Some b -> Ok b
    | None -> Error ("no such block " ^ info.block)
  in
  let def v =
    match v with
    | Vreg id when in_block b v -> instr_in_block b id
    | _ -> None
  in
  (* 1. the unique store *)
  let stores =
    Array.to_list b.instrs
    |> List.filter_map (function Store { src; ptr } -> Some (src, ptr) | _ -> None)
  in
  let* src, ptr =
    match stores with
    | [ sp ] -> Ok sp
    | [] -> Error "loop body has no store"
    | _ -> Error "loop body has multiple stores"
  in
  (* 2. ptr = getelementptr (Arg out, iv) *)
  let* output =
    match def ptr with
    | Some (Getelementptr { base; index }) when is_iv info index ->
        arg_name "store address base" base
    | Some (Getelementptr _) ->
        Error "store address is not indexed by the induction variable"
    | _ -> Error "store address is not a getelementptr"
  in
  (* 3. optional scalar unary op *)
  let* digital_op, threshold, reduce_v =
    match def src with
    | Some (Scalar_unop { op = Usigmoid; operand }) ->
        Ok (Abstract_task.Do_sigmoid, 0.0, operand)
    | Some (Scalar_unop { op = Urelu; operand }) ->
        Ok (Abstract_task.Do_relu, 0.0, operand)
    | Some (Scalar_unop { op = Uthreshold value; operand }) ->
        Ok (Abstract_task.Do_threshold, value, operand)
    | Some (Scalar_unop { op = (Uneg | Uabs) as op; _ }) ->
        Error
          (Format.asprintf "unsupported decision function %a" pp_scalar_unop op)
    | _ -> Ok (Abstract_task.Do_none, 0.0, src)
  in
  (* 4. the reduction library call *)
  let* vec_v =
    match def reduce_v with
    | Some (Reduce { op = Rsum; operand }) -> Ok operand
    | _ -> Error "stored value is not a reduction of a vector"
  in
  (* 5. the element-wise vector operation over (W row, loop-invariant X) *)
  let match_w_row v =
    match def v with
    | Some (Getindex { matrix; index }) when is_iv info index ->
        Some (arg_name "W matrix" matrix)
    | _ -> None
  in
  let split_operands lhs rhs =
    match (match_w_row lhs, match_w_row rhs) with
    | Some w, None when not (in_block b rhs) -> Ok (w, Some rhs)
    | None, Some w when not (in_block b lhs) -> Ok (w, Some lhs)
    | Some _, Some _ -> Error "both vector operands are rows of W"
    | _ ->
        Error
          "vector operation is not between a W row and a loop-invariant X"
  in
  let* vec_op, red_op, w_res, x_value =
    match def vec_v with
    | Some (Vec_unop { op = unop; operand }) -> (
        let* red_op =
          match unop with
          | Vabs -> Ok Abstract_task.Ro_sum_abs
          | Vsquare -> Ok Abstract_task.Ro_sum_square
          | Vcompare -> Ok Abstract_task.Ro_sum_compare
        in
        match def operand with
        | Some (Vec_binop { op = Vsub; lhs; rhs }) ->
            let* w, x = split_operands lhs rhs in
            Ok (Abstract_task.Vo_sub, red_op, w, x)
        | Some (Getindex { matrix; index }) when is_iv info index ->
            Ok
              ( Abstract_task.Vo_none,
                red_op,
                arg_name "W matrix" matrix,
                None )
        | _ -> Error "unary vector op does not wrap a subtraction or a W row")
    | Some (Vec_binop { op; lhs; rhs }) ->
        let* w, x = split_operands lhs rhs in
        let vec_op =
          match op with
          | Vmul -> Abstract_task.Vo_mul_signed
          | Vsub -> Abstract_task.Vo_sub
          | Vadd -> Abstract_task.Vo_add
        in
        Ok (vec_op, Abstract_task.Ro_sum, w, x)
    | Some (Getindex { matrix; index }) when is_iv info index ->
        Ok (Abstract_task.Vo_none, Abstract_task.Ro_sum,
            arg_name "W matrix" matrix, None)
    | _ -> Error "reduced value is not an element-wise vector operation"
  in
  let* w = w_res in
  let* x =
    match x_value with
    | None -> Ok ""
    | Some v -> arg_name "X operand" v
  in
  let* vector_len = vector_len_of f ~w ~x:(if x = "" then None else Some x) in
  let* () = check_rows f ~w ~iterations:info.iterations in
  Ok
    (Abstract_task.make
       ~name:(f.name ^ ":" ^ info.block)
       ~threshold ~w ~x ~output ~vec_op ~red_op ~digital_op ~vector_len
       ~loop_iterations:info.iterations ())

(* Whole-array reduction library calls (Linear Regression, Table 2). *)
let match_reduction_call f fn args =
  let task ~w ~x ~vec_op ~red_op ~digital_op =
    let* rows, cols =
      match param_ty f w with
      | Some (Matrix (r, c)) -> Ok (r, c)
      | _ -> Error (Printf.sprintf "%s: %S is not a matrix" fn w)
    in
    Ok
      (Abstract_task.make
         ~name:(f.name ^ ":" ^ fn ^ "(" ^ w ^ ")")
         ~w ~x
         ~output:("%" ^ fn ^ "_" ^ w)
         ~vec_op ~red_op ~digital_op ~vector_len:cols ~loop_iterations:rows ())
  in
  match (fn, args) with
  | "mean", [ Arg w ] ->
      Some
        (task ~w ~x:"" ~vec_op:Abstract_task.Vo_none
           ~red_op:Abstract_task.Ro_sum ~digital_op:Abstract_task.Do_mean)
  | "mean_square", [ Arg w ] ->
      Some
        (task ~w ~x:"" ~vec_op:Abstract_task.Vo_none
           ~red_op:Abstract_task.Ro_sum_square ~digital_op:Abstract_task.Do_mean)
  | "mean_product", [ Arg w; Arg x ] ->
      Some
        (task ~w ~x ~vec_op:Abstract_task.Vo_mul_signed
           ~red_op:Abstract_task.Ro_sum ~digital_op:Abstract_task.Do_mean)
  | _ -> None

(* Post-loop decision calls to fuse into a producer's Class-4 op. *)
let decision_fusion fn =
  match fn with
  | "argmin" | "min" -> Some Abstract_task.Do_min
  | "argmax" | "max" -> Some Abstract_task.Do_max
  | _ -> None

let match_function f =
  let loop_blocks = find_loops f in
  (* Tasks from loops, in block order. *)
  let* loop_tasks =
    List.fold_left
      (fun acc info ->
        let* tasks = acc in
        let* task = match_loop f info in
        Ok (task :: tasks))
      (Ok []) loop_blocks
  in
  let loop_tasks = List.rev loop_tasks in
  (* Tasks from whole-array reduction calls, and decision fusions. *)
  let calls =
    List.concat_map
      (fun b ->
        Array.to_list b.instrs
        |> List.filter_map (function
             | Call { fn; args } -> Some (fn, args)
             | _ -> None))
      f.blocks
  in
  let* call_tasks =
    List.fold_left
      (fun acc (fn, args) ->
        let* tasks = acc in
        match match_reduction_call f fn args with
        | Some result ->
            let* task = result in
            Ok (task :: tasks)
        | None -> (
            match decision_fusion fn with
            | Some _ -> Ok tasks (* handled below *)
            | None ->
                Error (Printf.sprintf "unsupported library call %S" fn)))
      (Ok []) calls
  in
  let tasks = loop_tasks @ List.rev call_tasks in
  (* Fuse argmin/argmax(out) into the task producing out. *)
  let fused =
    List.fold_left
      (fun tasks (fn, args) ->
        match (decision_fusion fn, args) with
        | Some digital_op, [ Arg out ] ->
            List.map
              (fun (t : Abstract_task.t) ->
                if
                  String.equal t.Abstract_task.output out
                  && Abstract_task.equal_digital_op t.Abstract_task.digital_op
                       Abstract_task.Do_none
                then { t with Abstract_task.digital_op }
                else t)
              tasks
        | _ -> tasks)
      tasks calls
  in
  if fused = [] then Error "no offloadable computation found"
  else Graph.of_tasks fused
