(** A second, textual frontend: S-expression kernels.

    The paper's compiler IR is designed to be {e language-neutral} so
    new ML DSLs can be retargeted cheaply (§4.1, "Easily Extensible to
    ML Domain Specific Languages"). This module demonstrates that
    claim: a small S-expression kernel language that parses into the
    same {!Dsl} constructs — and therefore flows through the identical
    SSA → pattern-match → AbstractTask pipeline as the OCaml-embedded
    frontend.

    Grammar (one kernel per file):
    {v
    (kernel NAME
      (matrix W ROWS COLS) (vector x LEN) (output out LEN) ...
      (for ITERS out EXPR)            ; the Figure-7 loop
      (for-down ITERS out EXPR)       ; decrementing variant
      (argmin out) (argmax out)
      (mean W) (mean-square W) (mean-product U Vvec))

    EXPR := (dot W x) | (l1 W x) | (l2 W x)
          | (sum VEXPR)
          | (sigmoid EXPR) | (relu EXPR) | (threshold C EXPR)
    VEXPR := (row W) | (xvec x)
           | (vadd VEXPR VEXPR) | (vsub VEXPR VEXPR) | (vmul VEXPR VEXPR)
           | (vabs VEXPR) | (vsquare VEXPR) | (vcompare VEXPR)
    v}

    Comments run from [;] to end of line. *)

(** [parse src] — a {!Dsl.kernel}, or a located error message. *)
val parse : string -> (Dsl.kernel, string) result

(** [parse_file path]. *)
val parse_file : string -> (Dsl.kernel, string) result

(** {2 Exposed for tests} *)

type sexp = Atom of string | List of sexp list

val sexp_of_string : string -> (sexp list, string) result
val pp_sexp : Format.formatter -> sexp -> unit
