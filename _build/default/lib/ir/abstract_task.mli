(** AbstractTask: the node type of the PROMISE compiler IR (paper §4.2).

    An AbstractTask abstracts a hardware Task: it does not yet know
    whether its vector operation runs in Class-1 (add/subtract fused into
    the analog read) or Class-2 (multiply), nor any bank geometry — that
    is late-stage code generation (lib/compiler, Lower). Fields F1–F10 of
    the paper map to the record below; [swing] starts at the maximum
    (0b111) and is tuned by the energy-optimization pass. *)

(** F4 — element-wise vector operation between a row of W and X. *)
type vec_op = Vo_none | Vo_add | Vo_sub | Vo_mul_signed | Vo_mul_unsigned

(** F5 — reduction applied to the vecOp output. [Ro_sum_abs] is the
    paper's "L1 – absolute", [Ro_sum_square] "L2 – square". *)
type red_op = Ro_sum | Ro_sum_abs | Ro_sum_square | Ro_sum_compare

(** F6 — unary digital operation on the reduction output (the decision
    function f(), or a cross-iteration min/max fused from an
    [argmin]/[argmax] library call). *)
type digital_op =
  | Do_none
  | Do_sigmoid
  | Do_relu
  | Do_min
  | Do_max
  | Do_threshold
  | Do_mean

type t = {
  name : string;
  w : string;  (** F1 — 2D weight array *)
  x : string;  (** F2 — 1D input array ("" when [vec_op = Vo_none]) *)
  output : string;  (** F3 — 1D output array *)
  vec_op : vec_op;
  red_op : red_op;
  digital_op : digital_op;
  vector_len : int;  (** F7 *)
  loop_iterations : int;  (** F8 *)
  threshold : float;  (** F9 — used by [Do_threshold] *)
  swing : int;  (** F10 — 0..7, initialized to 7 *)
}

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val equal_vec_op : vec_op -> vec_op -> bool
val equal_red_op : red_op -> red_op -> bool
val equal_digital_op : digital_op -> digital_op -> bool
val pp_vec_op : Format.formatter -> vec_op -> unit
val pp_red_op : Format.formatter -> red_op -> unit
val pp_digital_op : Format.formatter -> digital_op -> unit

(** [make] with [swing] defaulted to 7, [threshold] to 0. Validates
    positivity of the sizes and the swing range. *)
val make :
  ?name:string ->
  ?threshold:float ->
  ?swing:int ->
  w:string ->
  x:string ->
  output:string ->
  vec_op:vec_op ->
  red_op:red_op ->
  digital_op:digital_op ->
  vector_len:int ->
  loop_iterations:int ->
  unit ->
  t

val with_swing : t -> int -> t

(** [uses_x t] — the task consumes an X operand. *)
val uses_x : t -> bool

(** [macs t] — scalar distance operations: vector_len × iterations. *)
val macs : t -> int
