(** The PROMISE compiler IR: a DAG of AbstractTasks (paper §4.2).

    An edge P → C means C reads (as its W or X input) the array P
    produces. Loops {e around} tasks live on the host, so the IR is
    acyclic even though each task iterates internally ([RPT_NUM]). *)

type port = W_input | X_input

val equal_port : port -> port -> bool
val pp_port : Format.formatter -> port -> unit

type edge = { producer : int; consumer : int; port : port }

type t

val empty : t

(** [add_task g task] — returns the node id and the extended graph. *)
val add_task : t -> Abstract_task.t -> int * t

(** [task g id]. Raises [Not_found]. *)
val task : t -> int -> Abstract_task.t

val n_tasks : t -> int
val tasks : t -> (int * Abstract_task.t) list
val edges : t -> edge list

(** [connect g ~producer ~consumer ~port] — add a dataflow edge.
    [Error] if it would create a cycle or an id is unknown. *)
val connect : t -> producer:int -> consumer:int -> port:port -> (t, string) result

(** [of_tasks tasks] — build a graph from tasks in order, inferring
    edges by array-name matching (producer.output = consumer.w / .x). *)
val of_tasks : Abstract_task.t list -> (t, string) result

(** [topological_order g] — node ids, producers before consumers. *)
val topological_order : t -> int list

(** [predecessors g id] / [successors g id]. *)
val predecessors : t -> int -> (int * port) list
val successors : t -> int -> (int * port) list

(** [is_linear_pipeline g] — every node has ≤1 predecessor and ≤1
    successor (the DNN shape: a sequential pipeline of layers). *)
val is_linear_pipeline : t -> bool

(** [map_tasks g f] — rewrite every task (e.g. assign swings). *)
val map_tasks : t -> (int -> Abstract_task.t -> Abstract_task.t) -> t

val pp : Format.formatter -> t -> unit
