type decl = string * Ssa.ty

let matrix name ~rows ~cols = (name, Ssa.Matrix (rows, cols))
let vector name ~len = (name, Ssa.Vector len)
let out_vector name ~len = (name, Ssa.Vector len)

type vexpr =
  | Row of string
  | Xvec of string
  | Vbin of Ssa.vec_binop * vexpr * vexpr
  | Vun of Ssa.vec_unop * vexpr

let row w = Row w
let xvec x = Xvec x
let vadd a b = Vbin (Ssa.Vadd, a, b)
let vsub a b = Vbin (Ssa.Vsub, a, b)
let vmul a b = Vbin (Ssa.Vmul, a, b)
let vabs a = Vun (Ssa.Vabs, a)
let vsquare a = Vun (Ssa.Vsquare, a)
let vcompare a = Vun (Ssa.Vcompare, a)

type sexpr = Sum of vexpr | Sunop of Ssa.scalar_unop * sexpr

let sum v = Sum v
let sigmoid s = Sunop (Ssa.Usigmoid, s)
let relu s = Sunop (Ssa.Urelu, s)
let sthreshold c s = Sunop (Ssa.Uthreshold c, s)
let dot w x = sum (vmul (row w) (xvec x))
let l1_distance w x = sum (vabs (vsub (row w) (xvec x)))
let l2_distance w x = sum (vsquare (vsub (row w) (xvec x)))

type direction = Up | Down

type stmt =
  | For_store of { iterations : int; out : string; body : sexpr;
                   direction : direction }
  | Lib_call of string * string list

let for_store ~iterations ~out body =
  if iterations < 1 then invalid_arg "Dsl.for_store: iterations must be >= 1";
  For_store { iterations; out; body; direction = Up }

let for_store_countdown ~iterations ~out body =
  if iterations < 1 then
    invalid_arg "Dsl.for_store_countdown: iterations must be >= 1";
  For_store { iterations; out; body; direction = Down }

let argmin out = Lib_call ("argmin", [ out ])
let argmax out = Lib_call ("argmax", [ out ])
let mean w = Lib_call ("mean", [ w ])
let mean_square w = Lib_call ("mean_square", [ w ])
let mean_product u v = Lib_call ("mean_product", [ u; v ])

type kernel = { name : string; decls : decl list; stmts : stmt list }

let kernel ~name ~decls stmts = { name; decls; stmts }

(* Lowering: hand-rolled block assembly (the loop phi forward-references
   the induction update, so blocks are built as buffers and the phi is
   patched once the update's register id is known). *)

type block_buf = {
  label : string;
  first_index : int;
  buf : Ssa.instr array ref;
  mutable len : int;
  mutable terminator : Ssa.terminator option;
}

let lower k =
  let declared name =
    if not (List.exists (fun (n, _) -> String.equal n name) k.decls) then
      invalid_arg (Printf.sprintf "Dsl.lower: undeclared array %S" name)
  in
  let counter = ref 0 in
  let blocks = ref [] in
  let placeholder = Ssa.Load { ptr = Ssa.Const_int 0 } in
  let new_block label =
    let b =
      {
        label;
        first_index = !counter;
        buf = ref (Array.make 8 placeholder);
        len = 0;
        terminator = None;
      }
    in
    blocks := b :: !blocks;
    b
  in
  let emit b instr =
    if b.len = Array.length !(b.buf) then begin
      let bigger = Array.make (2 * b.len) instr in
      Array.blit !(b.buf) 0 bigger 0 b.len;
      b.buf := bigger
    end;
    !(b.buf).(b.len) <- instr;
    b.len <- b.len + 1;
    let id = !counter in
    incr counter;
    Ssa.Vreg id
  in
  let patch_phi b phi_value instr =
    match phi_value with
    | Ssa.Vreg id -> !(b.buf).(id - b.first_index) <- instr
    | _ -> assert false
  in
  let rec emit_vexpr b ~iv = function
    | Row w ->
        declared w;
        emit b (Ssa.Getindex { matrix = Ssa.Arg w; index = iv })
    | Xvec x ->
        declared x;
        Ssa.Arg x
    | Vbin (op, a, c) ->
        let lhs = emit_vexpr b ~iv a in
        let rhs = emit_vexpr b ~iv c in
        emit b (Ssa.Vec_binop { op; lhs; rhs })
    | Vun (op, a) ->
        let operand = emit_vexpr b ~iv a in
        emit b (Ssa.Vec_unop { op; operand })
  in
  let rec emit_sexpr b ~iv = function
    | Sum v ->
        let operand = emit_vexpr b ~iv v in
        emit b (Ssa.Reduce { op = Ssa.Rsum; operand })
    | Sunop (op, s) ->
        let operand = emit_sexpr b ~iv s in
        emit b (Ssa.Scalar_unop { op; operand })
  in
  let entry = new_block "entry" in
  let fresh_label =
    let n = ref 0 in
    fun base ->
      incr n;
      Printf.sprintf "%s%d" base !n
  in
  let current = ref entry in
  List.iter
    (fun stmt ->
      match stmt with
      | Lib_call (fn, args) ->
          List.iter declared args;
          ignore
            (emit !current
               (Ssa.Call { fn; args = List.map (fun a -> Ssa.Arg a) args }))
      | For_store { iterations; out; body; direction } ->
          declared out;
          let loop_label = fresh_label "loop" in
          let after_label = fresh_label "after" in
          let pred_label = !current.label in
          !current.terminator <- Some (Ssa.Br loop_label);
          let b = new_block loop_label in
          (* phi placeholder, patched below once the update id is known *)
          let phi =
            emit b (Ssa.Phi { incoming = [ (pred_label, Ssa.Const_int 0) ] })
          in
          let value = emit_sexpr b ~iv:phi body in
          let ptr =
            emit b (Ssa.Getelementptr { base = Ssa.Arg out; index = phi })
          in
          ignore (emit b (Ssa.Store { src = value; ptr }));
          let start, update_op, pred, bound =
            match direction with
            | Up -> (0, Ssa.Iadd, Ssa.Lt, iterations)
            | Down -> (iterations, Ssa.Isub, Ssa.Gt, 0)
          in
          let next =
            emit b
              (Ssa.Int_binop { op = update_op; lhs = phi; rhs = Ssa.Const_int 1 })
          in
          patch_phi b phi
            (Ssa.Phi
               {
                 incoming =
                   [ (pred_label, Ssa.Const_int start); (loop_label, next) ];
               });
          let cond =
            emit b (Ssa.Icmp { pred; lhs = next; rhs = Ssa.Const_int bound })
          in
          b.terminator <-
            Some
              (Ssa.Cond_br
                 { cond; if_true = loop_label; if_false = after_label });
          let after = new_block after_label in
          current := after)
    k.stmts;
  !current.terminator <- Some (Ssa.Ret None);
  let finished =
    List.rev_map
      (fun b ->
        {
          Ssa.label = b.label;
          first_index = b.first_index;
          instrs = Array.sub !(b.buf) 0 b.len;
          terminator = Option.get b.terminator;
        })
      !blocks
  in
  let f = { Ssa.name = k.name; params = k.decls; blocks = finished } in
  (match Ssa.verify f with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Dsl.lower: internal SSA error: " ^ msg));
  f
