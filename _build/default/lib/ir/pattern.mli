(** The PROMISE pass: SSA pattern matching (paper §4.3, Fig. 7).

    Over each SSA function the pass
    + finds single-basic-block natural loops, canonicalizing induction
      variables (incrementing or decrementing by 1);
    + matches the loop body against the Figure-7 SSA pattern —
      [getindex] of the IV-th row of W, an element-wise vector operation
      with a loop-invariant X, a reduction library call, an optional
      scalar unary op, and a [getelementptr]+[store] into the output —
      extracting an {!Abstract_task.t};
    + recognizes whole-array library calls ([mean], [mean_square],
      [mean_product]) as reduction AbstractTasks (the Linear-Regression
      statistics of Table 2);
    + fuses post-loop decision library calls ([argmin]/[argmax] of a
      matched loop's output) into the producing task's Class-4 digital
      op, as §3.4's template-matching example does;
    + assembles the matched tasks into the compiler IR DAG. *)

(** A canonicalized single-basic-block natural loop. *)
type loop_info = {
  block : Ssa.label;
  iv_phi : int;  (** Vreg of the induction-variable phi *)
  start : int;
  iterations : int;
}

val pp_loop_info : Format.formatter -> loop_info -> unit

(** [canonical_loop f block] — recognize [block] as a single-basic-block
    natural loop (a conditional self-branch with a ±1 induction
    variable), normalizing decrementing loops. *)
val canonical_loop : Ssa.func -> Ssa.block -> loop_info option

(** [find_loops f]. *)
val find_loops : Ssa.func -> loop_info list

(** [match_loop f info] — Figure-7 extraction for one loop. *)
val match_loop : Ssa.func -> loop_info -> (Abstract_task.t, string) result

(** [match_function f] — the whole pass: [Error] when a loop or
    reduction call fails to match (the computation cannot be offloaded). *)
val match_function : Ssa.func -> (Graph.t, string) result
