type vec_op = Vo_none | Vo_add | Vo_sub | Vo_mul_signed | Vo_mul_unsigned
[@@deriving eq, show { with_path = false }]

type red_op = Ro_sum | Ro_sum_abs | Ro_sum_square | Ro_sum_compare
[@@deriving eq, show { with_path = false }]

type digital_op =
  | Do_none
  | Do_sigmoid
  | Do_relu
  | Do_min
  | Do_max
  | Do_threshold
  | Do_mean
[@@deriving eq, show { with_path = false }]

type t = {
  name : string;
  w : string;
  x : string;
  output : string;
  vec_op : vec_op;
  red_op : red_op;
  digital_op : digital_op;
  vector_len : int;
  loop_iterations : int;
  threshold : float;
  swing : int;
}
[@@deriving eq, show { with_path = false }]

let make ?(name = "task") ?(threshold = 0.0) ?(swing = 7) ~w ~x ~output ~vec_op
    ~red_op ~digital_op ~vector_len ~loop_iterations () =
  if vector_len < 1 then invalid_arg "Abstract_task: vector_len must be >= 1";
  if loop_iterations < 1 then
    invalid_arg "Abstract_task: loop_iterations must be >= 1";
  if swing < 0 || swing > 7 then
    invalid_arg "Abstract_task: swing must be in [0, 7]";
  {
    name;
    w;
    x;
    output;
    vec_op;
    red_op;
    digital_op;
    vector_len;
    loop_iterations;
    threshold;
    swing;
  }

let with_swing t swing =
  if swing < 0 || swing > 7 then
    invalid_arg "Abstract_task.with_swing: swing must be in [0, 7]";
  { t with swing }

let uses_x t =
  match t.vec_op with
  | Vo_none -> false
  | Vo_add | Vo_sub | Vo_mul_signed | Vo_mul_unsigned -> true

let macs t = t.vector_len * t.loop_iterations
