type class1 = C1_none | C1_write | C1_read | C1_aread | C1_asubt | C1_aadd
[@@deriving eq, show { with_path = false }]

type asd =
  | Asd_none
  | Asd_compare
  | Asd_absolute
  | Asd_square
  | Asd_sign_mult
  | Asd_unsign_mult
[@@deriving eq, show { with_path = false }]

type class2 = { asd : asd; avd : bool }
[@@deriving eq, show { with_path = false }]

type class3 = C3_none | C3_adc [@@deriving eq, show { with_path = false }]

type class4 =
  | C4_accumulate
  | C4_mean
  | C4_threshold
  | C4_max
  | C4_min
  | C4_sigmoid
  | C4_relu
[@@deriving eq, show { with_path = false }]

type destination = Des_acc | Des_output_buffer | Des_xreg | Des_write_buffer
[@@deriving eq, show { with_path = false }]

let class1_to_code = function
  | C1_none -> 0b000
  | C1_write -> 0b001
  | C1_read -> 0b010
  | C1_aread -> 0b011
  | C1_asubt -> 0b100
  | C1_aadd -> 0b101

let class1_of_code = function
  | 0b000 -> Some C1_none
  | 0b001 -> Some C1_write
  | 0b010 -> Some C1_read
  | 0b011 -> Some C1_aread
  | 0b100 -> Some C1_asubt
  | 0b101 -> Some C1_aadd
  | _ -> None

let asd_to_code = function
  | Asd_none -> 0b000
  | Asd_compare -> 0b001
  | Asd_absolute -> 0b010
  | Asd_square -> 0b011
  | Asd_sign_mult -> 0b100
  | Asd_unsign_mult -> 0b101

let asd_of_code = function
  | 0b000 -> Some Asd_none
  | 0b001 -> Some Asd_compare
  | 0b010 -> Some Asd_absolute
  | 0b011 -> Some Asd_square
  | 0b100 -> Some Asd_sign_mult
  | 0b101 -> Some Asd_unsign_mult
  | _ -> None

let class2_to_code { asd; avd } = (asd_to_code asd lsl 1) lor Bool.to_int avd

let class2_of_code code =
  if code < 0 || code > 0b1111 then None
  else
    match asd_of_code (code lsr 1) with
    | Some asd -> Some { asd; avd = code land 1 = 1 }
    | None -> None

let class3_to_code = function C3_none -> 0 | C3_adc -> 1

let class3_of_code = function
  | 0 -> Some C3_none
  | 1 -> Some C3_adc
  | _ -> None

let class4_to_code = function
  | C4_accumulate -> 0b000
  | C4_mean -> 0b001
  | C4_threshold -> 0b010
  | C4_max -> 0b011
  | C4_min -> 0b100
  | C4_sigmoid -> 0b101
  | C4_relu -> 0b111

let class4_of_code = function
  | 0b000 -> Some C4_accumulate
  | 0b001 -> Some C4_mean
  | 0b010 -> Some C4_threshold
  | 0b011 -> Some C4_max
  | 0b100 -> Some C4_min
  | 0b101 -> Some C4_sigmoid
  | 0b111 -> Some C4_relu
  | _ -> None

let destination_to_code = function
  | Des_acc -> 0b00
  | Des_output_buffer -> 0b01
  | Des_xreg -> 0b10
  | Des_write_buffer -> 0b11

let destination_of_code = function
  | 0b00 -> Some Des_acc
  | 0b01 -> Some Des_output_buffer
  | 0b10 -> Some Des_xreg
  | 0b11 -> Some Des_write_buffer
  | _ -> None

let class1_name = function
  | C1_none -> "none"
  | C1_write -> "write"
  | C1_read -> "read"
  | C1_aread -> "aREAD"
  | C1_asubt -> "aSUBT"
  | C1_aadd -> "aADD"

let asd_name = function
  | Asd_none -> "none"
  | Asd_compare -> "compare"
  | Asd_absolute -> "absolute"
  | Asd_square -> "square"
  | Asd_sign_mult -> "sign_mult"
  | Asd_unsign_mult -> "unsign_mult"

let class3_name = function C3_none -> "none" | C3_adc -> "ADC"

let class4_name = function
  | C4_accumulate -> "accumulate"
  | C4_mean -> "mean"
  | C4_threshold -> "threshold"
  | C4_max -> "max"
  | C4_min -> "min"
  | C4_sigmoid -> "sigmoid"
  | C4_relu -> "ReLu"

let destination_name = function
  | Des_acc -> "acc"
  | Des_output_buffer -> "out"
  | Des_xreg -> "xreg"
  | Des_write_buffer -> "wbuf"

let all_class1 = [ C1_none; C1_write; C1_read; C1_aread; C1_asubt; C1_aadd ]

let all_asd =
  [
    Asd_none;
    Asd_compare;
    Asd_absolute;
    Asd_square;
    Asd_sign_mult;
    Asd_unsign_mult;
  ]

let all_class2 =
  List.concat_map
    (fun asd -> [ { asd; avd = false }; { asd; avd = true } ])
    all_asd

let all_class3 = [ C3_none; C3_adc ]

let all_class4 =
  [
    C4_accumulate; C4_mean; C4_threshold; C4_max; C4_min; C4_sigmoid; C4_relu;
  ]

let all_destinations = [ Des_acc; Des_output_buffer; Des_xreg; Des_write_buffer ]

let find_by_name name pairs =
  List.find_opt (fun (_, n) -> String.equal n name) pairs
  |> Option.map (fun (v, _) -> v)

let class1_of_name name =
  find_by_name name (List.map (fun c -> (c, class1_name c)) all_class1)

let asd_of_name name =
  find_by_name name (List.map (fun c -> (c, asd_name c)) all_asd)

let class3_of_name name =
  find_by_name name (List.map (fun c -> (c, class3_name c)) all_class3)

let class4_of_name name =
  find_by_name name (List.map (fun c -> (c, class4_name c)) all_class4)

let destination_of_name name =
  find_by_name name
    (List.map (fun c -> (c, destination_name c)) all_destinations)

let class1_reads_x = function
  | C1_asubt | C1_aadd -> true
  | C1_none | C1_write | C1_read | C1_aread -> false

let asd_reads_x = function
  | Asd_sign_mult | Asd_unsign_mult -> true
  | Asd_none | Asd_compare | Asd_absolute | Asd_square -> false

let class1_is_analog = function
  | C1_aread | C1_asubt | C1_aadd -> true
  | C1_none | C1_write | C1_read -> false
