lib/isa/asm.pp.mli: Task
