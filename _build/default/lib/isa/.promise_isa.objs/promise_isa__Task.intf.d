lib/isa/task.pp.mli: Format Op_param Opcode
