lib/isa/task.pp.ml: List Op_param Opcode Ppx_deriving_runtime Printf Result
