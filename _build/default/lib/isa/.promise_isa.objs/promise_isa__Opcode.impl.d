lib/isa/opcode.pp.ml: Bool List Option Ppx_deriving_runtime String
