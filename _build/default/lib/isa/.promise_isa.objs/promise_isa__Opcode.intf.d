lib/isa/opcode.pp.mli: Format
