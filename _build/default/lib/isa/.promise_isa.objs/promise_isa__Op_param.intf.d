lib/isa/op_param.pp.mli: Format Opcode
