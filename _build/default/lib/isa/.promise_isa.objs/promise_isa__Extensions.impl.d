lib/isa/extensions.pp.ml: Float List Opcode
