lib/isa/encode.pp.mli: Task
