lib/isa/program.pp.ml: Asm Encode List Op_param Ppx_deriving_runtime Printf Result Task
