lib/isa/extensions.pp.mli:
