lib/isa/program.pp.mli: Format Task
