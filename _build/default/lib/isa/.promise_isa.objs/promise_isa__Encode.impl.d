lib/isa/encode.pp.ml: Bytes List Op_param Opcode Printf Result String Task
