lib/isa/asm.pp.ml: List Op_param Opcode Printf Result String Task
