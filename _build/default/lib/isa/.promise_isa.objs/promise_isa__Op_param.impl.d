lib/isa/op_param.pp.ml: Opcode Ppx_deriving_runtime Printf Result
