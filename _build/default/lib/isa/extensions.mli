(** The operations the PROMISE ISA deliberately omits (paper §3.3):
    element-wise write-back [30] and shuffle-and-compare [10, 31],
    needed for efficient k-means and random-forest execution.

    They were dropped "to keep T_P small": every pipeline stage shares
    one clock, so adding a slow operation inflates T_P for every
    program. This module quantifies that design decision — the
    hypothetical delays/energies of the extension ops (from the cited
    silicon: the analog SRAM write-back of [30] and the in-memory
    random-forest engine of [10]) and what they would do to the
    worst-case clock — without polluting the shipping opcode space. *)

type extension =
  | Elementwise_writeback
      (** analog result written back into the bit-cell array without a
          digitize/rewrite round trip [30] *)
  | Shuffle_compare
      (** permute-the-lanes + compare, the random-forest node step
          [10, 31] *)

val all : extension list
val name : extension -> string

(** [delay extension] — pipeline-stage delay in cycles the operation
    would occupy (S2-class). *)
val delay : extension -> int

(** [energy_pj extension] — energy per 128-lane operation, per bank. *)
val energy_pj : extension -> float

(** [worst_case_tp_with extensions] — the TP a pipeline supporting the
    base ISA {e plus} [extensions] must run at. *)
val worst_case_tp_with : extension list -> int

(** [tp_inflation extensions ~task] — how much slower [task] runs on a
    pipeline built for the extended ISA:
    [worst_case_tp_with extensions / task_tp-as-designed], the §3.3
    cost argument. At least 1. *)
val tp_inflation : extension list -> task_tp:int -> float
