type extension = Elementwise_writeback | Shuffle_compare

let all = [ Elementwise_writeback; Shuffle_compare ]

let name = function
  | Elementwise_writeback -> "elementwise_writeback"
  | Shuffle_compare -> "shuffle_compare"

(* Delays/energies estimated from the cited silicon: the 17.5 fJ/bit
   analog SRAM write path of [30] needs a full write slot plus settle
   (longer than the 14-cycle multiply), and the shuffle network +
   comparator bank of the random-forest engine [10] is comparable to
   two compare passes. *)
let delay = function
  | Elementwise_writeback -> 18
  | Shuffle_compare -> 16

let energy_pj = function
  | Elementwise_writeback -> 85.0
  | Shuffle_compare -> 24.0

let base_worst_case_tp () =
  let c1 =
    List.fold_left
      (fun a c ->
        max a
          (match c with
          | Opcode.C1_none -> 0
          | Opcode.C1_write | Opcode.C1_read -> 2
          | Opcode.C1_aread -> 5
          | Opcode.C1_asubt | Opcode.C1_aadd -> 7))
      0 Opcode.all_class1
  in
  let c2 =
    List.fold_left
      (fun a (c : Opcode.class2) ->
        max a
          (match c.Opcode.asd with
          | Opcode.Asd_none -> 0
          | Opcode.Asd_compare | Opcode.Asd_absolute -> 6
          | Opcode.Asd_square -> 8
          | Opcode.Asd_sign_mult | Opcode.Asd_unsign_mult -> 14))
      0 Opcode.all_class2
  in
  max c1 c2

let worst_case_tp_with extensions =
  List.fold_left
    (fun acc e -> max acc (delay e))
    (base_worst_case_tp ()) extensions

let tp_inflation extensions ~task_tp =
  if task_tp < 1 then invalid_arg "Extensions.tp_inflation: task_tp < 1";
  Float.max 1.0
    (float_of_int (worst_case_tp_with extensions) /. float_of_int task_tp)
