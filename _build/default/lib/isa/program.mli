(** A PROMISE program: an ordered sequence of Tasks plus metadata.

    Tasks execute in order; loops {e around} tasks run on the host
    (paper §4.2), so a program is a straight line of Tasks. *)

type t = { name : string; tasks : Task.t list }

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** [make ~name tasks] validates every task. Raises [Invalid_argument]
    with the failing task index on error. *)
val make : name:string -> Task.t list -> t

val length : t -> int

(** Total Task iterations summed over all tasks (host-visible work). *)
val total_iterations : t -> int

(** Maximum number of banks used by any task. *)
val max_banks : t -> int

(** Distinct swings used, ascending. *)
val swings : t -> int list

(** [with_swings t ss] returns a copy of [t] where task [i] uses swing
    [List.nth ss i]. Raises [Invalid_argument] on length mismatch. *)
val with_swings : t -> int list -> t

(** Serialize via {!Asm.print_program}. *)
val to_asm : t -> string

(** Parse via {!Asm.parse_program}. *)
val of_asm : name:string -> string -> (t, string) result

(** Serialize via {!Encode.program_to_bytes}. *)
val to_binary : t -> bytes

(** Parse via {!Encode.program_of_bytes}. *)
val of_binary : name:string -> bytes -> (t, string) result
