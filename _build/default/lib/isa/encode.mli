(** Bit-exact binary encoding of PROMISE Tasks (paper Fig. 5(a)).

    A Task occupies 48 bits, laid out MSB-first as:
    {v
      [47:20] OP_PARAM   (28 bits)
      [19:13] RPT_NUM    (7 bits)
      [12:11] MULTI_BANK (2 bits)
      [10:8]  Class-1    (3 bits)
      [7:4]   Class-2    (4 bits)
      [3]     Class-3    (1 bit)
      [2:0]   Class-4    (3 bits)
    v}
    Programs are serialized as consecutive 6-byte big-endian words. *)

val task_bits : int
(** 48. *)

val task_bytes : int
(** 6. *)

(** [to_int t] packs a validated task into the low 48 bits of an int.
    Raises [Invalid_argument] when [Task.validate] rejects [t]. *)
val to_int : Task.t -> int

(** [of_int bits] decodes the low 48 bits; [Error] on reserved opcodes or
    an illegal composition. *)
val of_int : int -> (Task.t, string) result

(** [to_bytes t] is the 6-byte big-endian encoding of [t]. *)
val to_bytes : Task.t -> bytes

(** [of_bytes b ~pos] decodes 6 bytes at [pos]. *)
val of_bytes : bytes -> pos:int -> (Task.t, string) result

(** [program_to_bytes tasks] concatenates the encodings of [tasks]. *)
val program_to_bytes : Task.t list -> bytes

(** [program_of_bytes b] decodes a whole binary program; [Error] carries the
    index of the first undecodable task. *)
val program_of_bytes : bytes -> (Task.t list, string) result

(** [hex_of_task t] is the 12-hex-digit rendering of [to_int t]. *)
val hex_of_task : Task.t -> string

(** [task_of_hex s] parses the output of {!hex_of_task}. *)
val task_of_hex : string -> (Task.t, string) result
