(** Operation codes of the four PROMISE instruction Classes (paper Fig. 5(c)).

    Class-1 selects the memory stage operation (S1, [aREAD] and friends),
    Class-2 the analog scalar-distance operation (S2, [aSD]) together with
    the aggregation flag (S3 input, [aVD]), Class-3 whether the ADC fires,
    and Class-4 the digital thresholding ([TH]) operation. *)

(** Class-1 memory operations (3-bit opcode). *)
type class1 =
  | C1_none        (** 000 — no memory operation *)
  | C1_write       (** 001 — digital write to [W_ADDR] *)
  | C1_read        (** 010 — digital read from [W_ADDR] *)
  | C1_aread       (** 011 — analog read from [W_ADDR] *)
  | C1_asubt       (** 100 — fused analog read + element-wise subtract of X *)
  | C1_aadd        (** 101 — fused analog read + element-wise add of X *)

(** aSD scalar-distance operations (upper 3 bits of the Class-2 opcode). *)
type asd =
  | Asd_none        (** 000 — pass-through *)
  | Asd_compare     (** 001 — scalar comparison *)
  | Asd_absolute    (** 010 — absolute value *)
  | Asd_square      (** 011 — square *)
  | Asd_sign_mult   (** 100 — signed multiply with X-REG operand *)
  | Asd_unsign_mult (** 101 — unsigned multiply with X-REG operand *)

(** Class-2 = aSD operation + aVD aggregation flag (4-bit opcode). *)
type class2 = { asd : asd; avd : bool }

(** Class-3: whether the aggregated analog value is digitized (1 bit). *)
type class3 = C3_none | C3_adc

(** Class-4 TH (digital) operations (3-bit opcode). Code 110 is reserved. *)
type class4 =
  | C4_accumulate  (** 000 — accumulate [ACC_NUM] operands *)
  | C4_mean        (** 001 *)
  | C4_threshold   (** 010 — compare against [THRES_VAL] *)
  | C4_max         (** 011 *)
  | C4_min         (** 100 *)
  | C4_sigmoid     (** 101 — piece-wise linear sigmoid *)
  | C4_relu        (** 111 *)

(** Class-4 output destination (the [DES] field of OP_PARAM). *)
type destination =
  | Des_acc           (** 00 — accumulator input *)
  | Des_output_buffer (** 01 *)
  | Des_xreg          (** 10 *)
  | Des_write_buffer  (** 11 *)

val equal_class1 : class1 -> class1 -> bool
val equal_asd : asd -> asd -> bool
val equal_class2 : class2 -> class2 -> bool
val equal_class3 : class3 -> class3 -> bool
val equal_class4 : class4 -> class4 -> bool
val equal_destination : destination -> destination -> bool

val pp_class1 : Format.formatter -> class1 -> unit
val pp_class2 : Format.formatter -> class2 -> unit
val pp_class3 : Format.formatter -> class3 -> unit
val pp_class4 : Format.formatter -> class4 -> unit
val pp_destination : Format.formatter -> destination -> unit

(** {2 Numeric encodings (Fig. 5(c))} *)

val class1_to_code : class1 -> int
val class1_of_code : int -> class1 option

val class2_to_code : class2 -> int
(** 4 bits: aSD opcode in bits [3:1], aVD flag in bit 0. *)

val class2_of_code : int -> class2 option
val class3_to_code : class3 -> int
val class3_of_code : int -> class3 option
val class4_to_code : class4 -> int
val class4_of_code : int -> class4 option
val destination_to_code : destination -> int
val destination_of_code : int -> destination option

(** {2 Assembly mnemonics} *)

val class1_name : class1 -> string
val class1_of_name : string -> class1 option
val asd_name : asd -> string
val asd_of_name : string -> asd option
val class3_name : class3 -> string
val class3_of_name : string -> class3 option
val class4_name : class4 -> string
val class4_of_name : string -> class4 option
val destination_name : destination -> string
val destination_of_name : string -> destination option

val all_class1 : class1 list
val all_asd : asd list
val all_class2 : class2 list
val all_class3 : class3 list
val all_class4 : class4 list
val all_destinations : destination list

(** [class1_reads_x c1] is true when the Class-1 operation consumes the X
    operand addressed by [X_ADDR1] (fused add/subtract). *)
val class1_reads_x : class1 -> bool

(** [asd_reads_x op] is true when the aSD operation consumes the X-REG
    operand addressed by [X_ADDR2] (signed/unsigned multiply). *)
val asd_reads_x : asd -> bool

(** [class1_is_analog c1] is true for aREAD / aSUBT / aADD. *)
val class1_is_analog : class1 -> bool
