module At = Promise_ir.Abstract_task
module Graph = Promise_ir.Graph
module Machine = Promise_arch.Machine
module Layout = Promise_arch.Layout
module Bank = Promise_arch.Bank
module Params = Promise_arch.Params
module Fx = Promise_ml.Fixed_point
open Promise_isa

type bindings = {
  matrices : (string, float array array) Hashtbl.t;
  vectors : (string, float array) Hashtbl.t;
  flat_lengths : (string, int) Hashtbl.t;
}

let bindings () =
  {
    matrices = Hashtbl.create 8;
    vectors = Hashtbl.create 8;
    flat_lengths = Hashtbl.create 8;
  }

let bind_matrix b name m = Hashtbl.replace b.matrices name m
let bind_vector b name v = Hashtbl.replace b.vectors name v

let bind_flat b name data ~cols =
  if cols < 1 then invalid_arg "Runtime.bind_flat: cols must be >= 1";
  let len = Array.length data in
  let rows = (len + cols - 1) / cols in
  let m =
    Array.init rows (fun r ->
        Array.init cols (fun c ->
            let i = (r * cols) + c in
            if i < len then data.(i) else 0.0))
  in
  Hashtbl.replace b.matrices name m;
  Hashtbl.replace b.flat_lengths name len

type task_output = {
  values : float array;
  decision : (int * float) option;
}

type run_result = {
  outputs : (int * task_output) list;
  machine : Machine.t;
}

let ( let* ) = Result.bind

let required_banks g =
  List.fold_left
    (fun acc (_, at) ->
      match
        Layout.plan ~vector_len:at.At.vector_len ~rows:at.At.loop_iterations
      with
      | Ok p -> max acc p.Layout.banks
      | Error _ -> acc)
    1 (Graph.tasks g)

(* Joint or independent quantization scales; returns (w_codes, x_codes
   option, rescale) where true value = rescale x (digital value computed
   from the quantized data). *)
let quantize_operands (at : At.t) w x_opt =
  let headroom = 0.99 in
  let scale_of max_abs = if max_abs <= 0.0 then 1.0 else max_abs /. headroom in
  let quantize_mat_scaled k m =
    Array.map (Array.map (fun v -> Fx.quantize (v /. k))) m
  in
  let quantize_vec_scaled k v = Array.map (fun e -> Fx.quantize (e /. k)) v in
  match at.At.vec_op with
  | At.Vo_mul_signed | At.Vo_mul_unsigned ->
      let x = Option.get x_opt in
      let kw = scale_of (Promise_ml.Linalg.mat_max_abs w) in
      let kx = scale_of (Promise_ml.Linalg.max_abs x) in
      (quantize_mat_scaled kw w, Some (quantize_vec_scaled kx x), kw *. kx)
  | At.Vo_add | At.Vo_sub ->
      let x = Option.get x_opt in
      let k =
        scale_of
          (Float.max
             (Promise_ml.Linalg.mat_max_abs w)
             (Promise_ml.Linalg.max_abs x))
      in
      let rescale =
        match at.At.red_op with
        | At.Ro_sum | At.Ro_sum_abs -> k
        | At.Ro_sum_square -> k *. k
        | At.Ro_sum_compare -> 1.0
      in
      (quantize_mat_scaled k w, Some (quantize_vec_scaled k x), rescale)
  | At.Vo_none ->
      let kw = scale_of (Promise_ml.Linalg.mat_max_abs w) in
      let rescale =
        match at.At.red_op with
        | At.Ro_sum | At.Ro_sum_abs -> kw
        | At.Ro_sum_square -> kw *. kw
        | At.Ro_sum_compare -> 1.0
      in
      (quantize_mat_scaled kw w, None, rescale)

let resolve_w g b id (at : At.t) =
  let from_edge =
    List.exists
      (fun (_, port) -> Graph.equal_port port Graph.W_input)
      (Graph.predecessors g id)
  in
  if from_edge then
    Error
      (Printf.sprintf "task %S: W produced by another task is not supported"
         at.At.name)
  else
    match Hashtbl.find_opt b.matrices at.At.w with
    | None -> Error (Printf.sprintf "unbound W matrix %S" at.At.w)
    | Some m ->
        if Array.length m < at.At.loop_iterations then
          Error
            (Printf.sprintf "W matrix %S has %d rows, task needs %d" at.At.w
               (Array.length m) at.At.loop_iterations)
        else Ok (Array.sub m 0 at.At.loop_iterations)

let resolve_x g b outputs id (at : At.t) =
  if not (At.uses_x at) then Ok None
  else
    let from_edge =
      List.find_opt
        (fun (_, port) -> Graph.equal_port port Graph.X_input)
        (Graph.predecessors g id)
    in
    match from_edge with
    | Some (pid, _) -> (
        match Hashtbl.find_opt outputs pid with
        | Some out -> Ok (Some out.values)
        | None -> Error (Printf.sprintf "producer %d has no output yet" pid))
    | None -> (
        match Hashtbl.find_opt b.vectors at.At.x with
        | Some v -> Ok (Some v)
        | None -> Error (Printf.sprintf "unbound X vector %S" at.At.x))

(* ADC range matching: a digital preview of every per-bank charge-share
   mean picks the largest power-of-two pre-ADC gain that keeps the
   aggregate within ~0.7 of full scale (headroom for analog noise).
   Mirrors Bank's gain staging exactly, minus noise and LUT shaping. *)
let ideal_partial_mean (at : At.t) ~w_slice ~x_slice ~lanes =
  let acc = ref 0.0 in
  for lane = 0 to lanes - 1 do
    let w = float_of_int w_slice.(lane) /. 128.0 in
    let x =
      match x_slice with
      | Some xs -> float_of_int xs.(lane) /. 128.0
      | None -> 0.0
    in
    let s1 =
      match at.At.vec_op with
      | At.Vo_add -> (w +. x) /. 2.0
      | At.Vo_sub -> (w -. x) /. 2.0
      | At.Vo_mul_signed -> w *. x
      | At.Vo_mul_unsigned -> Float.abs w *. Float.abs x
      | At.Vo_none -> w
    in
    let v =
      match (at.At.vec_op, at.At.red_op) with
      | (At.Vo_mul_signed | At.Vo_mul_unsigned), _ -> s1
      | _, At.Ro_sum -> s1
      | _, At.Ro_sum_abs -> Float.abs s1
      | _, At.Ro_sum_square -> s1 *. s1
      | _, At.Ro_sum_compare -> if s1 >= 0.0 then 1.0 else 0.0
    in
    acc := !acc +. v
  done;
  !acc /. float_of_int lanes

let estimate_adc_gain (at : At.t) (plan : Layout.plan) ~w_codes ~x_for_row =
  let lanes = plan.Layout.lanes_per_bank in
  let max_abs = ref 0.0 in
  Array.iteri
    (fun r w_row ->
      let x_row = x_for_row r in
      for bank = 0 to plan.Layout.banks - 1 do
        for segment = 0 to plan.Layout.segments - 1 do
          let w_slice = Layout.slice_of_vector plan w_row ~bank ~segment in
          let x_slice =
            Option.map
              (fun x -> Layout.slice_of_vector plan x ~bank ~segment)
              x_row
          in
          let m = ideal_partial_mean at ~w_slice ~x_slice ~lanes in
          max_abs := Float.max !max_abs (Float.abs m)
        done
      done)
    w_codes;
  let target = 0.7 in
  let rec grow g =
    if g >= 64.0 then 64.0
    else if 2.0 *. g *. !max_abs <= target then grow (2.0 *. g)
    else g
  in
  if !max_abs <= 0.0 then 64.0 else grow 1.0

let better_decision class4 (a : int * float) (b : (int * float) option) =
  match b with
  | None -> Some a
  | Some (_, bv) ->
      let _, av = a in
      let keep_a =
        match class4 with
        | Opcode.C4_min -> av < bv
        | Opcode.C4_max -> av > bv
        | _ -> false
      in
      if keep_a then Some a else b

let dest_xreg_index = Params.xreg_depth - 1

let run_task machine (at : At.t) ~terminal ~w ~x_opt ~original_n =
  let* () =
    match x_opt with
    | Some x
      when Array.length x <> at.At.vector_len
           && Array.length x <> at.At.vector_len * at.At.loop_iterations ->
        Error
          (Printf.sprintf
             "task %S: X has %d elements, expected %d (broadcast) or %d \
              (streaming)"
             at.At.name (Array.length x) at.At.vector_len
             (at.At.vector_len * at.At.loop_iterations))
    | _ -> Ok ()
  in
  let streaming =
    match x_opt with
    | Some x ->
        at.At.loop_iterations > 1
        && Array.length x = at.At.vector_len * at.At.loop_iterations
    | None -> false
  in
  let w_codes, x_codes, rescale = quantize_operands at w x_opt in
  let groups = Machine.n_banks machine in
  let values = ref [] and decision = ref None in
  let run_chunks plan ~adc_gain ~rows_of_chunk ~w_rows_of_chunk ~x_of_chunk
      ~n_chunks =
    let* template =
      Lower.lower_chunk ~terminal at ~plan ~chunk:0 ~w_base:0 ~xreg_base:0
    in
    let class4 = template.Task.class4 in
    let gain =
      float_of_int plan.Layout.lanes_per_bank
      *. Bank.analog_scale template *. rescale
    in
    let max_group = max 1 (groups / plan.Layout.banks) in
    let rec go chunk row_offset =
      if chunk >= n_chunks then Ok ()
      else
        let rows_c = rows_of_chunk chunk in
        let* task =
          if rows_c = plan.Layout.rows_per_task then Ok template
          else
            Lower.lower_chunk ~terminal at
              ~plan:
                {
                  plan with
                  Layout.rows = rows_c;
                  rows_per_task = rows_c;
                  tasks = 1;
                }
              ~chunk:0 ~w_base:0 ~xreg_base:0
        in
        let group = chunk mod max_group in
        Machine.load_weights machine ~group ~base:0 ~plan
          (w_rows_of_chunk chunk rows_c);
        (match x_of_chunk chunk with
        | Some xc -> Machine.load_x machine ~group ~xreg_base:0 ~plan xc
        | None -> ());
        let th =
          {
            Promise_arch.Th_unit.op = class4;
            acc_num = task.Task.op_param.Op_param.acc_num;
            threshold = at.At.threshold;
            gain;
            des = task.Task.op_param.Op_param.des;
          }
        in
        let launch =
          {
            Machine.task;
            bank_group = group;
            active_lanes = plan.Layout.lanes_per_bank;
            adc_gain;
            th;
            dest_xreg = dest_xreg_index;
          }
        in
        let result = Machine.execute machine launch in
        values := !values @ result.Machine.emitted @ result.Machine.xreg_out;
        (match result.Machine.argext with
        | Some (gidx, v) ->
            decision := better_decision class4 (row_offset + gidx, v) !decision
        | None -> ());
        go (chunk + 1) (row_offset + rows_c)
    in
    go 0 0
  in
  let* () =
    if streaming then
      let x = Option.get x_codes in
      let* plan = Layout.plan ~vector_len:at.At.vector_len ~rows:1 in
      let x_row r =
        Array.sub x (r * at.At.vector_len) at.At.vector_len
      in
      let adc_gain =
        estimate_adc_gain at plan ~w_codes
          ~x_for_row:(fun r -> Some (x_row r))
      in
      run_chunks plan ~adc_gain
        ~rows_of_chunk:(fun _ -> 1)
        ~w_rows_of_chunk:(fun chunk _ -> [| w_codes.(chunk) |])
        ~x_of_chunk:(fun chunk -> Some (x_row chunk))
        ~n_chunks:at.At.loop_iterations
    else
      let* plan =
        Layout.plan ~vector_len:at.At.vector_len ~rows:at.At.loop_iterations
      in
      let adc_gain =
        estimate_adc_gain at plan ~w_codes ~x_for_row:(fun _ -> x_codes)
      in
      run_chunks plan ~adc_gain
        ~rows_of_chunk:(fun chunk -> Layout.chunk_rows plan chunk)
        ~w_rows_of_chunk:(fun chunk rows_c ->
          Array.sub w_codes (chunk * plan.Layout.rows_per_task) rows_c)
        ~x_of_chunk:(fun _ -> x_codes)
        ~n_chunks:plan.Layout.tasks
  in
  let values = Array.of_list !values in
  (* Decision tasks surface their extremum; mean tasks reduce on host. *)
  match at.At.digital_op with
  | At.Do_mean ->
      let total = Array.fold_left ( +. ) 0.0 values in
      Ok { values = [| total /. float_of_int original_n |]; decision = None }
  | At.Do_min | At.Do_max ->
      Ok { values; decision = !decision }
  | At.Do_none | At.Do_sigmoid | At.Do_relu | At.Do_threshold ->
      Ok { values; decision = None }

let run ?machine g b =
  let machine =
    match machine with
    | Some m -> m
    | None ->
        Machine.create
          {
            Machine.banks = required_banks g;
            profile = Bank.Silicon;
            noise_seed = Some 42;
          }
  in
  let order = Graph.topological_order g in
  let outputs = Hashtbl.create 8 in
  let* ids =
    List.fold_left
      (fun acc id ->
        let* ids = acc in
        let at = Graph.task g id in
        let* w = resolve_w g b id at in
        let* x_opt = resolve_x g b outputs id at in
        let original_n =
          match Hashtbl.find_opt b.flat_lengths at.At.w with
          | Some n -> n
          | None -> at.At.vector_len * at.At.loop_iterations
        in
        let terminal = Graph.successors g id = [] in
        let* out = run_task machine at ~terminal ~w ~x_opt ~original_n in
        Hashtbl.replace outputs id out;
        Ok (id :: ids))
      (Ok []) order
  in
  let ordered = List.rev ids in
  Ok
    {
      outputs = List.map (fun id -> (id, Hashtbl.find outputs id)) ordered;
      machine;
    }

let output_of r id =
  match List.assoc_opt id r.outputs with
  | Some o -> Ok o
  | None -> Error (Printf.sprintf "no output for node %d" id)

let final_output r =
  match List.rev r.outputs with
  | (_, o) :: _ -> Ok o
  | [] -> Error "empty run result"

module For_tests = struct
  let estimate_adc_gain = estimate_adc_gain
end
