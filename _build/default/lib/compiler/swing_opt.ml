module Swing = Promise_analog.Swing
module At = Promise_ir.Abstract_task

let confidence = 2.6

let meets_eq3 ~swing ~bits ~n =
  if n < 1 then invalid_arg "Swing_opt.meets_eq3: n must be >= 1";
  confidence *. Swing.noise_factor swing /. sqrt (float_of_int n)
  < 2.0 ** float_of_int (-(bits + 1))

let min_swing_for ~bits ~n =
  List.find_opt (fun swing -> meets_eq3 ~swing ~bits ~n) Swing.all_codes

let ( let* ) = Result.bind

let optimize_graph ?(guard_bits = 1) g ~stats ~pm =
  let* analytic_bits =
    Precision.aggregate_bits stats ~pm ~bw:Precision.weight_bits
  in
  let bits = analytic_bits + guard_bits in
  let annotated =
    Promise_ir.Graph.map_tasks g (fun _id task ->
        let swing =
          Option.value
            (min_swing_for ~bits ~n:task.At.vector_len)
            ~default:Swing.max_code
        in
        At.with_swing task swing)
  in
  Ok (annotated, bits)

type sweep_point = { swing : int; accuracy : float; energy_pj : float }

type sweep_result = {
  chosen : int;
  reference_accuracy : float;
  points : sweep_point list;
}

let optimize_single ~simulate ~energy_at ~reference_accuracy ~pm =
  let points =
    List.map
      (fun swing ->
        { swing; accuracy = simulate swing; energy_pj = energy_at swing })
      Swing.all_codes
  in
  let chosen =
    match
      List.find_opt
        (fun p -> reference_accuracy -. p.accuracy <= pm)
        points
    with
    | Some p -> p.swing
    | None -> Swing.max_code
  in
  { chosen; reference_accuracy; points }

let search_space_size ~tasks =
  if tasks < 0 then invalid_arg "Swing_opt.search_space_size: negative";
  let rec pow acc n = if n = 0 then acc else pow (acc * 8) (n - 1) in
  pow 1 tasks
