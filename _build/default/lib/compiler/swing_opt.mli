(** Energy optimization: bit precision → swing voltages (paper §4.4).

    For an aggregation over N elements to deliver B output bits at 99%
    confidence, Eq. (3) requires 2.6·f(SWING)/√N < 2^-(B+1); the pass
    picks the {e smallest} swing code satisfying it (energy is monotone
    in the swing). Multi-task graphs (DNNs) get per-task swings from the
    one analytic precision target and their per-task vector lengths;
    single-task kernels can instead be swept exhaustively over all
    eight codes against a simulation oracle (paper §4.4, last ¶). *)

(** [min_swing_for ~bits ~n] — smallest code meeting Eq. (3);
    [None] when even the maximum swing fails (caller falls back to 7). *)
val min_swing_for : bits:int -> n:int -> int option

(** [meets_eq3 ~swing ~bits ~n] — the Eq. (3) predicate. *)
val meets_eq3 : swing:int -> bits:int -> n:int -> bool

(** [optimize_graph ?guard_bits g ~stats ~pm] — the analytic path:
    solve B_A from the Sakr bound ({!Precision}), then set each task's
    swing from its vector length. [guard_bits] (default 1) adds a
    safety margin on top of B_A covering the deterministic error
    sources outside the Eq. (3) noise model (ADC quantization, LUT
    non-linearity — see DESIGN.md). Returns the annotated graph and
    the precision target used (guard included). *)
val optimize_graph :
  ?guard_bits:int ->
  Promise_ir.Graph.t ->
  stats:Precision.stats ->
  pm:float ->
  (Promise_ir.Graph.t * int, string) result

(** The record of one brute-force sweep point. *)
type sweep_point = { swing : int; accuracy : float; energy_pj : float }

type sweep_result = {
  chosen : int;
  reference_accuracy : float;
  points : sweep_point list;  (** ascending swing *)
}

(** [optimize_single ~simulate ~energy_at ~reference_accuracy ~pm] —
    exhaustive sweep over the eight codes for a single-AbstractTask
    kernel: the chosen swing is the cheapest whose simulated accuracy
    drop stays within [pm] (falls back to 7 when none does). [simulate]
    runs the kernel on the machine at a given swing and returns
    accuracy; [energy_at] prices a swing. *)
val optimize_single :
  simulate:(int -> float) ->
  energy_at:(int -> float) ->
  reference_accuracy:float ->
  pm:float ->
  sweep_result

(** [search_space_size ~tasks] — 8^tasks (Figure 12's secondary axis). *)
val search_space_size : tasks:int -> int
