lib/compiler/runtime.ml: Array Float Hashtbl List Lower Op_param Opcode Option Printf Promise_arch Promise_ir Promise_isa Promise_ml Result Task
