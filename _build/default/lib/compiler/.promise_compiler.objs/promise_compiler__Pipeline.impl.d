lib/compiler/pipeline.ml: Lower Promise_ir Promise_isa Result Runtime Swing_opt
