lib/compiler/runtime.mli: Promise_arch Promise_ir
