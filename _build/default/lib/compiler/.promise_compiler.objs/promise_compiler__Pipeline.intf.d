lib/compiler/pipeline.mli: Precision Promise_arch Promise_ir Promise_isa Runtime
