lib/compiler/swing_opt.ml: List Option Precision Promise_analog Promise_ir Result
