lib/compiler/precision.mli: Format Promise_ml
