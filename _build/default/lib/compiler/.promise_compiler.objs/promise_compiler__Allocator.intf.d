lib/compiler/allocator.mli: Promise_isa
