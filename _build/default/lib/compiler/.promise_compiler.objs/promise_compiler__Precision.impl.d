lib/compiler/precision.ml: Format Printf Promise_ml
