lib/compiler/allocator.ml: List Printf Program Promise_arch Promise_isa Result Task
