lib/compiler/swing_opt.mli: Precision Promise_ir
