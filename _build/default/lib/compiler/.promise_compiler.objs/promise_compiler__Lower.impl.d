lib/compiler/lower.ml: Float List Op_param Opcode Printf Program Promise_arch Promise_ir Promise_isa Result Task
