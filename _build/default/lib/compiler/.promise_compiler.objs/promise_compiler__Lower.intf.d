lib/compiler/lower.mli: Opcode Program Promise_arch Promise_ir Promise_isa Task
