(** Error tolerance → bit precision: the Sakr analysis (paper §4.4,
    Eq. (4)).

    Given the trained model's quantization-noise gains E_A (activations)
    and E_W (weights), the mismatch probability of the fixed-point model
    is bounded by p_m ≤ Δ_A²·E_A + Δ_W²·E_W with
    Δ = 2^-(B-1). PROMISE stores weights at B_W = 7 magnitude bits; the
    pass solves for the minimal activation precision B_A, which then
    drives the swing selection (Eq. (3), {!Swing_opt}). *)

type stats = { ea : float; ew : float }

val pp_stats : Format.formatter -> stats -> unit

(** [of_mlp mlp data] — estimate (E_A, E_W) from a trained model
    ({!Promise_ml.Mlp.sakr_stats}). *)
val of_mlp : Promise_ml.Mlp.t -> Promise_ml.Dataset.labeled array -> stats

(** [bound stats ~ba ~bw] — the Eq. (4) right-hand side. *)
val bound : stats -> ba:int -> bw:int -> float

val weight_bits : int
(** 7 (8-bit storage including sign). *)

(** [min_activation_bits stats ~pm ~bw] — smallest B_A (in 1..16) with
    [bound ≤ pm]; [Error] when even B_A = 16 cannot meet [pm] (the
    weight term alone exceeds the budget). *)
val min_activation_bits : stats -> pm:float -> bw:int -> (int, string) result

(** [aggregate_bits stats ~pm ~bw] — the output precision B the
    aggregation must deliver: [min_activation_bits], since each Task's
    digitized aggregate becomes the next Task's (or decision's)
    activation. *)
val aggregate_bits : stats -> pm:float -> bw:int -> (int, string) result
