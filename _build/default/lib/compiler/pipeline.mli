(** The end-to-end compiler driver (paper Fig. 6): DSL ("Julia") →
    SSA → PROMISE pass (pattern match) → compiler IR → energy
    optimization → ISA code generation → runtime execution. *)

(** [compile kernel] — frontend + PROMISE pass: the IR graph with all
    swings at maximum (0b111). *)
val compile : Promise_ir.Dsl.kernel -> (Promise_ir.Graph.t, string) result

(** [optimize ?guard_bits g ~stats ~pm] — the analytic energy
    optimization ({!Swing_opt.optimize_graph}). *)
val optimize :
  ?guard_bits:int ->
  Promise_ir.Graph.t ->
  stats:Precision.stats ->
  pm:float ->
  (Promise_ir.Graph.t * int, string) result

(** [codegen g] — the binary-encodable ISA program. *)
val codegen : Promise_ir.Graph.t -> (Promise_isa.Program.t, string) result

(** A full compilation report. *)
type report = {
  graph : Promise_ir.Graph.t;
  program : Promise_isa.Program.t;
  binary : bytes;
  assembly : string;
  search_space : int;  (** 8^tasks *)
}

(** [compile_to_binary kernel] — DSL all the way to bytes. *)
val compile_to_binary : Promise_ir.Dsl.kernel -> (report, string) result

(** [run ?machine kernel bindings] — compile and execute. *)
val run :
  ?machine:Promise_arch.Machine.t ->
  Promise_ir.Dsl.kernel ->
  Runtime.bindings ->
  (Runtime.run_result, string) result
