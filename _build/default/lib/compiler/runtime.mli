(** The PROMISE host runtime (paper §4.3).

    Given a compiler-IR graph and float data bindings, the runtime
    - quantizes W/X to the 8-bit bit-cell format, choosing a joint scale
      for distance (add/subtract) kernels and independent scales for
      multiply kernels, and folds the scales plus the analog gain
      staging into the TH digital pre-gain so every emitted value is in
      the original units;
    - plans the data layout ({!Promise_arch.Layout}), stages weights and
      the X vector into the machine, and launches one Task per row
      chunk (RPT_NUM ≤ 128);
    - streams element-wise two-array reductions (the Linear-Regression
      [mean_product]) one row per launch, reloading X-REG each time —
      the paper's §6.2 re-access penalty;
    - chains DAG edges (a producer's output becomes the consumer's X),
      combines min/max decisions across chunks, and divides [Do_mean]
      accumulations by N on the host. *)

type bindings

val bindings : unit -> bindings
val bind_matrix : bindings -> string -> float array array -> unit
val bind_vector : bindings -> string -> float array -> unit

(** [bind_flat b name data ~cols] — reshape a long 1-D array into a
    [⌈len/cols⌉ × cols] matrix binding (zero-padded), the layout the
    whole-array reductions expect. *)
val bind_flat : bindings -> string -> float array -> cols:int -> unit

type task_output = {
  values : float array;  (** per-row outputs, original units *)
  decision : (int * float) option;  (** fused argmin/argmax (row, value) *)
}

type run_result = {
  outputs : (int * task_output) list;  (** by IR node id, topo order *)
  machine : Promise_arch.Machine.t;
}

(** [required_banks g] — banks the graph needs at one chunk per group
    (the runtime reuses groups when the machine is smaller). *)
val required_banks : Promise_ir.Graph.t -> int

(** [run ?machine g b] — execute the graph. When [machine] is omitted, a
    default [Silicon]-profile machine with {!required_banks} banks
    (seeded 42) is created. *)
val run :
  ?machine:Promise_arch.Machine.t ->
  Promise_ir.Graph.t ->
  bindings ->
  (run_result, string) result

val output_of : run_result -> int -> (task_output, string) result

(** [final_output r] — output of the last node in topological order. *)
val final_output : run_result -> (task_output, string) result

(** Internals exposed for tests. *)
module For_tests : sig
  (** [estimate_adc_gain at plan ~w_codes ~x_for_row] — the power-of-two
      ADC range-matching gain the runtime would program (see DESIGN.md). *)
  val estimate_adc_gain :
    Promise_ir.Abstract_task.t ->
    Promise_arch.Layout.plan ->
    w_codes:int array array ->
    x_for_row:(int -> int array option) ->
    float
end
