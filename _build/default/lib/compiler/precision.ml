type stats = { ea : float; ew : float }

let pp_stats ppf s = Format.fprintf ppf "E_A = %.4g, E_W = %.4g" s.ea s.ew

let of_mlp mlp data =
  let ea, ew = Promise_ml.Mlp.sakr_stats mlp data in
  { ea; ew }

let delta ~bits = 2.0 ** float_of_int (-(bits - 1))

let bound s ~ba ~bw =
  let da = delta ~bits:ba and dw = delta ~bits:bw in
  (da *. da *. s.ea) +. (dw *. dw *. s.ew)

let weight_bits = 7

let min_activation_bits s ~pm ~bw =
  if pm <= 0.0 then Error "mismatch probability must be positive"
  else
    let dw = delta ~bits:bw in
    let weight_term = dw *. dw *. s.ew in
    if weight_term >= pm then
      Error
        (Printf.sprintf
           "weight quantization alone (%.4g) exceeds the p_m budget %.4g"
           weight_term pm)
    else
      let rec search ba =
        if ba > 16 then Error "activation precision above 16 bits required"
        else if bound s ~ba ~bw <= pm then Ok ba
        else search (ba + 1)
      in
      search 1

let aggregate_bits = min_activation_bits
