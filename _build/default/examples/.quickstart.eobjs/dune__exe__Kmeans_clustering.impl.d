examples/kmeans_clustering.ml: Array List Printf Promise
