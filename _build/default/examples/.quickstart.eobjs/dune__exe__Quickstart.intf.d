examples/quickstart.mli:
