examples/quickstart.ml: Array Bytes Printf Promise
