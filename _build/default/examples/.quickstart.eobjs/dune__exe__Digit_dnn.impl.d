examples/digit_dnn.ml: Array Format List Printf Promise String
