examples/gunshot_detector.ml: Array List Printf Promise
