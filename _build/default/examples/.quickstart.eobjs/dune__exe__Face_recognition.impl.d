examples/face_recognition.ml: Format List Printf Promise
