examples/raw_isa.ml: Array List Printf Promise
