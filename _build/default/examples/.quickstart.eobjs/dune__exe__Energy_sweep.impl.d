examples/energy_sweep.ml: List Printf Promise
