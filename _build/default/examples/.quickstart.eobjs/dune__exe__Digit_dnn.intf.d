examples/digit_dnn.mli:
