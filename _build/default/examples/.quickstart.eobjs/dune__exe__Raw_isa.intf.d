examples/raw_isa.mli:
