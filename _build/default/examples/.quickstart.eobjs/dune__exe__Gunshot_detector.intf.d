examples/gunshot_detector.mli:
