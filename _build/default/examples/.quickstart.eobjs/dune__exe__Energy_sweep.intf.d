examples/energy_sweep.mli:
