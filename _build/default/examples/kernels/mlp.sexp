; Two-layer perceptron: sigmoid hidden layer, argmax decision.
(kernel mlp
  (vector x 784)
  (matrix W0 128 784)
  (output h 128)
  (matrix W1 10 128)
  (output y 10)
  (for 128 h (sigmoid (dot W0 x)))
  (for 10 y (dot W1 h))
  (argmax y))
