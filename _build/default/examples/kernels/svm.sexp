; Linear SVM decision: sign(w . x) as a Class-4 threshold.
(kernel svm
  (matrix weights 1 257)
  (vector sample 257)
  (output decision 1)
  (for 1 decision (threshold 0.0 (dot weights sample))))
