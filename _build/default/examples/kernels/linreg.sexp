; 2-D linear regression: the four Table-2 reduction statistics.
(kernel linreg
  (matrix U 2 4096)
  (matrix V 2 4096)
  (vector Vvec 8192)
  (mean U)
  (mean V)
  (mean-square U)
  (mean-product U Vvec))
