; The paper's §3.4 running example as a textual kernel:
; find the closest of 64 candidate faces to a query image by L1 distance.
(kernel template_matching
  (matrix faces 64 256)
  (vector query 256)
  (output distances 64)
  (for 64 distances (l1 faces query))
  (argmin distances))
