(* The accuracy-vs-energy knob, explicitly: sweep all eight SWING codes
   on the k-NN benchmark and print the trade-off curve the compiler's
   brute-force optimizer searches (paper §4.4, Figure 12).

     dune exec examples/energy_sweep.exe *)

module P = Promise
module B = P.Benchmarks
module Model = P.Energy.Model
module Swing = P.Analog.Swing

let () =
  let b = B.knn_l1 () in
  Printf.printf "benchmark: %s (reference accuracy %.3f)\n" b.B.name
    b.B.reference_accuracy;
  Printf.printf "%-6s %-12s %-10s %-12s %-10s\n" "swing" "deltaV(mV)"
    "accuracy" "energy(nJ)" "vs max";
  let e_max = Model.total (B.promise_energy b ~swings:[ 7 ]) in
  List.iter
    (fun swing ->
      let e = b.B.evaluate ~swings:[ swing ] () in
      let energy = Model.total (B.promise_energy b ~swings:[ swing ]) in
      Printf.printf "%-6d %-12.1f %-10.3f %-12.1f %-10.2f\n" swing
        (Swing.mv_per_lsb swing) e.B.promise_accuracy (energy /. 1e3)
        (energy /. e_max))
    Swing.all_codes;

  (* and what the compiler picks at p_m = 1% *)
  match B.optimize b ~pm:0.01 with
  | Ok ([ chosen ], e) ->
      Printf.printf
        "\ncompiler choice at p_m = 1%%: swing %d (accuracy %.3f, mismatch %.3f)\n"
        chosen e.B.promise_accuracy e.B.mismatch
  | Ok _ -> assert false
  | Error msg -> prerr_endline msg
