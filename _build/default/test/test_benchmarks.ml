(* End-to-end benchmark tests: the Table-2 workloads compile, run on a
   Silicon-profile machine with small accuracy loss at full swing, and
   the compiler energy optimization finds cheaper swings within the
   p_m = 1% budget where the workload tolerates it. *)

module B = Promise.Benchmarks
module Model = Promise.Energy.Model
module Program = Promise.Isa.Program

let check = Alcotest.check
let fail = Alcotest.fail
let bool = Alcotest.bool
let int = Alcotest.int

let ok_or_fail = function Ok v -> v | Error msg -> fail msg

let full_swing_eval (b : B.t) = b.B.evaluate ~swings:(B.max_swings b) ()

let check_benchmark_shape (b : B.t) ~tasks =
  check int (b.B.short ^ " abstract tasks") tasks b.B.abstract_tasks;
  check bool (b.B.short ^ " program nonempty") true
    (Program.length b.B.per_decision_program >= 1);
  check bool (b.B.short ^ " banks sane") true (b.B.banks >= 1 && b.B.banks <= 8);
  check bool
    (b.B.short ^ " conv workload macs")
    true
    (b.B.conv_workload.Promise.Energy.Conv.macs > 0)

let check_small_mismatch (b : B.t) ~budget =
  let e = full_swing_eval b in
  check bool
    (Printf.sprintf "%s mismatch %.3f within %.3f at full swing" b.B.short
       e.B.mismatch budget)
    true (e.B.mismatch <= budget)

let test_matched_filter () =
  let b = B.matched_filter () in
  check_benchmark_shape b ~tasks:1;
  check bool "reference accuracy high" true (b.B.reference_accuracy > 0.9);
  check_small_mismatch b ~budget:0.02

let test_template_l1 () =
  let b = B.template_l1 () in
  check_benchmark_shape b ~tasks:1;
  check_small_mismatch b ~budget:0.02

let test_template_l2 () =
  let b = B.template_l2 () in
  check_benchmark_shape b ~tasks:1;
  check_small_mismatch b ~budget:0.02

let test_svm () =
  let b = B.svm () in
  check_benchmark_shape b ~tasks:1;
  check bool "svm reference decent" true (b.B.reference_accuracy > 0.9);
  (* SVM is the paper's least noise-tolerant kernel *)
  check_small_mismatch b ~budget:0.06

let test_knn_l1 () =
  let b = B.knn_l1 () in
  check_benchmark_shape b ~tasks:1;
  check_small_mismatch b ~budget:0.03

let test_knn_l2 () =
  let b = B.knn_l2 () in
  check_benchmark_shape b ~tasks:1;
  check_small_mismatch b ~budget:0.03

let test_pca () =
  let b = B.pca () in
  check_benchmark_shape b ~tasks:1;
  check bool "pca is not a classifier" false b.B.is_classifier;
  let e = full_swing_eval b in
  check bool "feature fidelity > 0.9" true (e.B.promise_accuracy > 0.9)

let test_linreg () =
  let b = B.linreg () in
  check_benchmark_shape b ~tasks:4;
  let e = full_swing_eval b in
  check bool "parameter fidelity > 0.95" true (e.B.promise_accuracy > 0.95)

let test_dnn1 () =
  let b = B.dnn B.D1 in
  check_benchmark_shape b ~tasks:2;
  check bool "dnn stats present" true (b.B.stats <> None);
  check bool "dnn reference accuracy" true (b.B.reference_accuracy > 0.85);
  check_small_mismatch b ~budget:0.04

let test_energy_decreases_with_swing () =
  let b = B.template_l1 () in
  let e7 = Model.total (B.promise_energy b ~swings:[ 7 ]) in
  let e0 = Model.total (B.promise_energy b ~swings:[ 0 ]) in
  check bool "lower swing, lower energy" true (e0 < e7);
  (* savings bounded by the swing-dependent half of Class-1 energy *)
  check bool "savings < 50%" true (e0 > 0.5 *. e7)

let test_optimize_single_task_within_budget () =
  let b = B.template_l1 () in
  let swings, e = ok_or_fail (B.optimize b ~pm:0.01) in
  (match swings with
  | [ s ] -> check bool "optimized swing below max" true (s < 7)
  | _ -> fail "one swing expected");
  check bool "accuracy within budget of reference" true (e.B.mismatch <= 0.015);
  let opt = Model.total (B.promise_energy b ~swings) in
  let full = Model.total (B.promise_energy b ~swings:(B.max_swings b)) in
  check bool "optimization saves energy" true (opt < full)

let test_optimize_dnn_analytic () =
  let b = B.dnn B.D1 in
  let swings, _ = ok_or_fail (B.optimize b ~pm:0.01) in
  check int "one swing per layer" 2 (List.length swings);
  List.iter
    (fun s -> check bool "swing in range" true (s >= 0 && s <= 7))
    swings;
  (* the wider first layer gets an equal-or-lower swing *)
  match swings with
  | [ s0; s1 ] -> check bool "wider layer, lower swing" true (s0 <= s1)
  | _ -> ()

let test_optimize_rejects_multi_task_brute_force () =
  let b = B.linreg () in
  (* no stats and 4 tasks: brute force must refuse *)
  match B.optimize b ~pm:0.01 with
  | Error _ -> ()
  | Ok _ -> fail "multi-task brute force should be rejected"

let test_evaluate_deterministic () =
  let b = B.knn_l1 () in
  let a = b.B.evaluate ~seed:7 ~swings:[ 5 ] () in
  let c = b.B.evaluate ~seed:7 ~swings:[ 5 ] () in
  check bool "same seed, same accuracy" true
    (a.B.promise_accuracy = c.B.promise_accuracy)

let test_accuracy_monotone_in_swing_roughly () =
  (* accuracy at max swing is not worse than at min swing by more than
     noise; at min swing distance kernels degrade measurably *)
  let b = B.template_l2 () in
  let lo = (b.B.evaluate ~swings:[ 0 ] ()).B.promise_accuracy in
  let hi = (b.B.evaluate ~swings:[ 7 ] ()).B.promise_accuracy in
  check bool "max swing at least as accurate" true (hi >= lo)

let test_per_decision_program_encodable () =
  List.iter
    (fun (b : B.t) ->
      let bytes = Program.to_binary b.B.per_decision_program in
      match Program.of_binary ~name:b.B.per_decision_program.Program.name bytes with
      | Ok p ->
          check bool (b.B.short ^ " binary roundtrip") true
            (Program.equal p b.B.per_decision_program)
      | Error msg -> fail msg)
    [ B.matched_filter (); B.template_l1 (); B.svm (); B.linreg () ]

let test_knn_soa_program_shape () =
  let p = B.knn_soa_program ~metric:`L1 in
  check int "single task" 1 (Program.length p);
  (match p.Program.tasks with
  | [ t ] ->
      check int "128 candidates" 128 (Promise.Isa.Task.iterations t);
      check int "single bank" 1 (Promise.Isa.Task.banks t)
  | _ -> fail "one task expected");
  (* the paper's throughput: TP = 7 for L1 *)
  check int "TP 7" 7 (Promise.Arch.Timing.program_tp p)

let test_size_variants () =
  let variants = B.size_variants () in
  check int "nine variants" 9 (List.length variants);
  (* the small matched-filter variant evaluates cleanly *)
  let mf = B.matched_filter_sized 256 in
  let e = mf.B.evaluate ~swings:(B.max_swings mf) () in
  check bool "MF-256 accurate" true (e.B.promise_accuracy > 0.9);
  (* bank usage grows with the problem size *)
  let banks_of n = (B.matched_filter_sized n).B.banks in
  check bool "wider filters use more banks" true
    (banks_of 256 < banks_of 1024)

let test_fig10_suite_complete () =
  let suite = B.fig10_suite () in
  check int "eight benchmarks" 8 (List.length suite);
  let shorts = List.map (fun b -> b.B.short) suite in
  List.iter
    (fun expected ->
      check bool (expected ^ " present") true (List.mem expected shorts))
    [ "Match.Filt."; "Temp.Match.L1"; "Temp.Match.L2"; "Linear SVM";
      "k-NN L1"; "k-NN L2"; "PCA"; "Linear Reg." ]

let suite =
  [
    ("matched filter end-to-end", `Slow, test_matched_filter);
    ("template L1 end-to-end", `Slow, test_template_l1);
    ("template L2 end-to-end", `Slow, test_template_l2);
    ("SVM end-to-end", `Slow, test_svm);
    ("k-NN L1 end-to-end", `Slow, test_knn_l1);
    ("k-NN L2 end-to-end", `Slow, test_knn_l2);
    ("PCA end-to-end", `Slow, test_pca);
    ("linear regression end-to-end", `Slow, test_linreg);
    ("DNN-1 end-to-end", `Slow, test_dnn1);
    ("energy decreases with swing", `Slow, test_energy_decreases_with_swing);
    ("optimize single-task kernel", `Slow, test_optimize_single_task_within_budget);
    ("optimize DNN analytically", `Slow, test_optimize_dnn_analytic);
    ("multi-task brute force rejected", `Slow, test_optimize_rejects_multi_task_brute_force);
    ("evaluation deterministic", `Slow, test_evaluate_deterministic);
    ("accuracy monotone in swing", `Slow, test_accuracy_monotone_in_swing_roughly);
    ("programs encodable", `Slow, test_per_decision_program_encodable);
    ("k-NN SoA configuration", `Slow, test_knn_soa_program_shape);
    ("figure-10 suite complete", `Quick, test_fig10_suite_complete);
    ("size variants", `Slow, test_size_variants);
  ]

let () = Alcotest.run "promise-benchmarks" [ ("benchmarks", suite) ]
