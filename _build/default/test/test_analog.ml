(* Analog behavioral model tests: RNG, swing, noise statistics, LUTs,
   leakage, ADC. *)

open Promise.Analog

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg
let check_close ~eps msg = Alcotest.check (Alcotest.float eps) msg

(* ------------------------------------------------------------------ *)
(* RNG                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    checkf "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 7 and b = Rng.create 8 in
  check Alcotest.bool "different seeds differ" true
    (Rng.float a <> Rng.float b)

let test_rng_float_range () =
  let rng = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.float rng in
    check Alcotest.bool "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_int_range () =
  let rng = Rng.create 2 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    check Alcotest.bool "in [0,10)" true (v >= 0 && v < 10)
  done

let test_rng_gaussian_moments () =
  let rng = Rng.create 3 in
  let n = 20000 in
  let sum = ref 0.0 and sum2 = ref 0.0 in
  for _ = 1 to n do
    let g = Rng.gaussian rng in
    sum := !sum +. g;
    sum2 := !sum2 +. (g *. g)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sum2 /. float_of_int n) -. (mean *. mean) in
  check_close ~eps:0.05 "mean ~ 0" 0.0 mean;
  check_close ~eps:0.05 "variance ~ 1" 1.0 var

let test_rng_split_independent () =
  let root = Rng.create 4 in
  let a = Rng.split root and b = Rng.split root in
  check Alcotest.bool "split streams differ" true (Rng.float a <> Rng.float b)

let test_rng_copy () =
  let a = Rng.create 5 in
  ignore (Rng.float a);
  let b = Rng.copy a in
  checkf "copy continues identically" (Rng.float a) (Rng.float b)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 6 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Array.iteri (fun i v -> check Alcotest.int "permutation" i v) sorted

(* ------------------------------------------------------------------ *)
(* Swing                                                               *)
(* ------------------------------------------------------------------ *)

let test_swing_endpoints () =
  checkf "code 0 = 5 mV" 5.0 (Swing.mv_per_lsb 0);
  checkf "code 7 = 30 mV" 30.0 (Swing.mv_per_lsb 7);
  checkf "f(0) = 0.75" 0.75 (Swing.noise_factor 0);
  checkf "f(7) = 0.08" 0.08 (Swing.noise_factor 7)

let test_swing_monotone () =
  for s = 0 to 6 do
    check Alcotest.bool "mV increasing" true
      (Swing.mv_per_lsb (s + 1) > Swing.mv_per_lsb s);
    check Alcotest.bool "f decreasing" true
      (Swing.noise_factor (s + 1) < Swing.noise_factor s);
    check Alcotest.bool "energy scale increasing" true
      (Swing.read_energy_scale (s + 1) > Swing.read_energy_scale s)
  done

let test_swing_energy_scale_range () =
  checkf "max swing full energy" 1.0 (Swing.read_energy_scale 7);
  check_close ~eps:1e-9 "min swing: fixed half + 5/30 of the rest"
    (0.5 +. (0.5 *. 5.0 /. 30.0))
    (Swing.read_energy_scale 0)

let test_swing_of_mv () =
  check Alcotest.int "5 mV -> code 0" 0 (Swing.of_mv 5.0);
  check Alcotest.int "30 mV -> code 7" 7 (Swing.of_mv 30.0);
  check Alcotest.int "beyond max clamps" 7 (Swing.of_mv 100.0)

let test_swing_validate () =
  (match Swing.validate 8 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "8 must be rejected");
  match Swing.validate (-1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "-1 must be rejected"

(* ------------------------------------------------------------------ *)
(* Noise                                                               *)
(* ------------------------------------------------------------------ *)

let test_noise_disabled_identity () =
  let n = Noise.disabled in
  checkf "identity" 0.42 (Noise.aread n ~swing:0 0.42);
  check Alcotest.bool "disabled" false (Noise.is_enabled n)

let test_noise_sigma_model () =
  checkf "sigma = |w| f(s)" (0.5 *. Swing.noise_factor 3)
    (Noise.sigma ~swing:3 ~w:(-0.5));
  checkf "zero weight, zero sigma" 0.0 (Noise.sigma ~swing:0 ~w:0.0)

let test_noise_statistics () =
  (* empirical sigma of aREAD matches |w| · f(swing) *)
  let rng = Rng.create 11 in
  let noise = Noise.create ~rng () in
  let w = 0.8 and swing = 2 in
  let n = 20000 in
  let sum = ref 0.0 and sum2 = ref 0.0 in
  for _ = 1 to n do
    let v = Noise.aread noise ~swing w in
    sum := !sum +. v;
    sum2 := !sum2 +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let sigma = sqrt ((!sum2 /. float_of_int n) -. (mean *. mean)) in
  check_close ~eps:0.02 "mean = w" w mean;
  check_close ~eps:0.02 "sigma = |w| f(s)"
    (Noise.sigma ~swing ~w) sigma

let test_noise_aggregate_sigma () =
  checkf "sigma_agg = f/sqrt N"
    (Swing.noise_factor 7 /. sqrt 128.0)
    (Noise.aggregate_sigma ~swing:7 ~n:128);
  check Alcotest.bool "decreasing in N" true
    (Noise.aggregate_sigma ~swing:0 ~n:256
    < Noise.aggregate_sigma ~swing:0 ~n:64)

let test_noise_vector_independent () =
  let rng = Rng.create 12 in
  let noise = Noise.create ~rng () in
  let v = Noise.aread_vector noise ~swing:0 [| 0.5; 0.5; 0.5 |] in
  check Alcotest.bool "per-element noise differs" true
    (v.(0) <> v.(1) || v.(1) <> v.(2))

(* ------------------------------------------------------------------ *)
(* LUT                                                                 *)
(* ------------------------------------------------------------------ *)

let test_lut_identity () =
  List.iter
    (fun v -> check_close ~eps:1e-6 "identity" v (Lut.apply Lut.identity v))
    [ -1.0; -0.37; 0.0; 0.5; 1.0 ]

let test_lut_clamps () =
  checkf "clamps above" 1.0 (Lut.apply Lut.identity 3.0);
  checkf "clamps below" (-1.0) (Lut.apply Lut.identity (-3.0))

let test_lut_compressive () =
  let l = Lut.compressive ~alpha:0.02 in
  check_close ~eps:1e-3 "x - a x^3 at 1" 0.98 (Lut.apply l 1.0);
  check_close ~eps:1e-3 "odd symmetric" (-0.98) (Lut.apply l (-1.0));
  check_close ~eps:1e-4 "near-linear at 0" 0.0 (Lut.apply l 0.0)

let test_lut_max_deviation () =
  check Alcotest.bool "silicon luts deviate < 2.5%" true
    (Lut.max_deviation Lut.Silicon.aread < 0.025
    && Lut.max_deviation Lut.Silicon.square < 0.025
    && Lut.max_deviation Lut.Silicon.mult < 0.025);
  checkf "identity deviates 0" 0.0 (Lut.max_deviation Lut.identity)

let test_lut_offset () =
  let l = Lut.with_offset ~offset:0.1 Lut.identity in
  check_close ~eps:1e-6 "offset applied" 0.35 (Lut.apply l 0.25)

let test_lut_interpolation () =
  (* between entries of a coarse table, interpolation is linear *)
  let l = Lut.of_function ~entries:3 (fun x -> x *. x) in
  (* entries at -1 (1.0), 0 (0.0), 1 (1.0); midpoint 0.5 -> 0.5 *)
  check_close ~eps:1e-6 "linear between entries" 0.5 (Lut.apply l 0.5)

(* ------------------------------------------------------------------ *)
(* Leakage                                                             *)
(* ------------------------------------------------------------------ *)

let test_leakage_rates () =
  checkf "bitline rate is 0.6%/ns" 0.006 Leakage.bitline_rate_per_ns;
  check Alcotest.bool "hold cap leaks less" true
    (Leakage.capacitor_rate_per_ns < Leakage.bitline_rate_per_ns)

let test_leakage_droop () =
  let v = 0.8 in
  check_close ~eps:1e-9 "no time, no droop" v (Leakage.bitline ~idle_ns:0.0 v);
  check Alcotest.bool "droop reduces magnitude" true
    (Leakage.bitline ~idle_ns:10.0 v < v);
  (* ~0.6%/ns: after 1 ns, within first order of 0.6% *)
  check_close ~eps:1e-4 "rate matches"
    (v *. exp (-0.006))
    (Leakage.bitline ~idle_ns:1.0 v)

let test_leakage_negative_time_rejected () =
  match Leakage.droop ~rate_per_ns:0.01 ~ns:(-1.0) 1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative time must be rejected"

(* ------------------------------------------------------------------ *)
(* ADC                                                                 *)
(* ------------------------------------------------------------------ *)

let test_adc_constants () =
  check Alcotest.int "8 bits" 8 Adc.bits;
  check Alcotest.int "256 levels" 256 Adc.levels;
  check Alcotest.int "8 units" 8 Adc.units_per_bank;
  check Alcotest.int "138 cycles" 138 Adc.conversion_delay_cycles;
  (* ~57M conversions/s *)
  check Alcotest.bool "~57M/s sustained" true
    (Adc.sustained_rate_hz > 55e6 && Adc.sustained_rate_hz < 60e6)

let test_adc_quantize_bounds () =
  check Alcotest.int "minimum" 0 (Adc.quantize (-1.0));
  check Alcotest.int "below range clamps" 0 (Adc.quantize (-5.0));
  check Alcotest.int "above range clamps" 255 (Adc.quantize 5.0)

let test_adc_roundtrip_error () =
  List.iter
    (fun v ->
      let err = Float.abs (Adc.convert v -. v) in
      check Alcotest.bool "error within lsb/2" true (err <= (Adc.lsb /. 2.0) +. 1e-9))
    [ -0.99; -0.5; -0.1; 0.0; 0.123; 0.7; 0.99 ]

let test_adc_monotone () =
  let prev = ref (-1) in
  let v = ref (-1.0) in
  while !v < 1.0 do
    let c = Adc.quantize !v in
    check Alcotest.bool "monotone codes" true (c >= !prev);
    prev := c;
    v := !v +. 0.001
  done

(* ------------------------------------------------------------------ *)
(* PWM word-line scheme (Fig. 1(b))                                    *)
(* ------------------------------------------------------------------ *)

let test_pwm_pulses () =
  (* code 0b1010 = 10: bits 1 and 3 pulse for 2 and 8 units *)
  let ps = Pwm.pulses ~bits:4 10 in
  check Alcotest.int "four word lines" 4 (List.length ps);
  let total = List.fold_left (fun a p -> a + p.Pwm.duration) 0 ps in
  check Alcotest.int "total duration = code" 10 total;
  List.iter
    (fun p ->
      let expected = if 10 land p.Pwm.weight <> 0 then p.Pwm.weight else 0 in
      check Alcotest.int "per-bit duration" expected p.Pwm.duration)
    ps

let test_pwm_bitline_drop_linear () =
  (* ΔV_BL is linear in the code: drop(a) + drop(b) = drop(a+b) when
     the bit sets are disjoint *)
  let drop c = Pwm.bitline_drop ~bits:8 ~mv_per_lsb:5.0 c in
  check_close ~eps:1e-9 "5 mV per LSB" 5.0 (drop 1);
  check_close ~eps:1e-9 "binary weighting" (drop 0b101) (drop 0b100 +. drop 0b001);
  check_close ~eps:1e-9 "full scale" (255.0 *. 5.0) (drop 255)

let test_pwm_subranged_exact () =
  (* the sub-ranged MSB/LSB read reproduces code/128 exactly *)
  for code = -128 to 127 do
    check_close ~eps:1e-12 "subranged = code/128"
      (float_of_int code /. 128.0)
      (Pwm.subranged_read code)
  done

let test_pwm_max_pulse () =
  check Alcotest.int "8-bit longest pulse" 128 (Pwm.max_pulse_units ~bits:8);
  check Alcotest.int "4-bit longest pulse" 8 (Pwm.max_pulse_units ~bits:4)

let test_pwm_bad_inputs () =
  (match Pwm.pulses ~bits:4 16 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "code 16 at 4 bits must be rejected");
  match Pwm.subranged_read 200 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "code 200 must be rejected"

let qcheck_pwm_total_duration =
  QCheck.Test.make ~name:"pwm total pulse duration equals the code" ~count:300
    (QCheck.int_range 0 255) (fun code ->
      List.fold_left (fun a p -> a + p.Pwm.duration) 0 (Pwm.pulses ~bits:8 code)
      = code)

let qcheck_adc_roundtrip =
  (* mid-tread codes span [-1, 0.9921875]; stay inside the unclamped
     region *)
  QCheck.Test.make ~name:"adc convert within lsb/2" ~count:1000
    (QCheck.float_range (-0.996) 0.996) (fun v ->
      Float.abs (Adc.convert v -. v) <= (Adc.lsb /. 2.0) +. 1e-9)

let qcheck_lut_identity_fixpoint =
  QCheck.Test.make ~name:"identity lut is a fixpoint" ~count:500
    (QCheck.float_range (-1.0) 1.0) (fun v ->
      Float.abs (Lut.apply Lut.identity v -. v) < 1e-6)

let suite =
  [
    ("rng determinism", `Quick, test_rng_determinism);
    ("rng seed sensitivity", `Quick, test_rng_seed_sensitivity);
    ("rng float range", `Quick, test_rng_float_range);
    ("rng int range", `Quick, test_rng_int_range);
    ("rng gaussian moments", `Slow, test_rng_gaussian_moments);
    ("rng split independence", `Quick, test_rng_split_independent);
    ("rng copy", `Quick, test_rng_copy);
    ("rng shuffle is a permutation", `Quick, test_rng_shuffle_permutation);
    ("swing endpoints", `Quick, test_swing_endpoints);
    ("swing monotone", `Quick, test_swing_monotone);
    ("swing energy scale range", `Quick, test_swing_energy_scale_range);
    ("swing of_mv", `Quick, test_swing_of_mv);
    ("swing validate", `Quick, test_swing_validate);
    ("noise disabled identity", `Quick, test_noise_disabled_identity);
    ("noise sigma model", `Quick, test_noise_sigma_model);
    ("noise empirical statistics", `Slow, test_noise_statistics);
    ("noise aggregate sigma", `Quick, test_noise_aggregate_sigma);
    ("noise vector independence", `Quick, test_noise_vector_independent);
    ("lut identity", `Quick, test_lut_identity);
    ("lut clamps", `Quick, test_lut_clamps);
    ("lut compressive", `Quick, test_lut_compressive);
    ("lut max deviation", `Quick, test_lut_max_deviation);
    ("lut offset", `Quick, test_lut_offset);
    ("lut interpolation", `Quick, test_lut_interpolation);
    ("leakage rates", `Quick, test_leakage_rates);
    ("leakage droop", `Quick, test_leakage_droop);
    ("leakage negative time", `Quick, test_leakage_negative_time_rejected);
    ("adc constants", `Quick, test_adc_constants);
    ("adc quantize bounds", `Quick, test_adc_quantize_bounds);
    ("adc roundtrip error", `Quick, test_adc_roundtrip_error);
    ("adc monotone", `Quick, test_adc_monotone);
    ("pwm pulses (Fig. 1b)", `Quick, test_pwm_pulses);
    ("pwm bitline drop linear", `Quick, test_pwm_bitline_drop_linear);
    ("pwm sub-ranged read exact", `Quick, test_pwm_subranged_exact);
    ("pwm max pulse", `Quick, test_pwm_max_pulse);
    ("pwm bad inputs", `Quick, test_pwm_bad_inputs);
    QCheck_alcotest.to_alcotest qcheck_adc_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_pwm_total_duration;
    QCheck_alcotest.to_alcotest qcheck_lut_identity_fixpoint;
  ]

let () = Alcotest.run "promise-analog" [ ("analog", suite) ]
