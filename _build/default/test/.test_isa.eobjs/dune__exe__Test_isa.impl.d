test/test_isa.ml: Alcotest Array Asm Bytes Encode List Op_param Opcode Program Promise QCheck QCheck_alcotest String Task
