test/test_energy.ml: Alcotest Array Cm Conv List Model Op_param Opcode Program Promise QCheck QCheck_alcotest Scaling Soa Tables Task
