test/test_analog.mli:
