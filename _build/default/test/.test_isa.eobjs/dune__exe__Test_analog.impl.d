test/test_analog.ml: Adc Alcotest Array Float Leakage List Lut Noise Promise Pwm QCheck QCheck_alcotest Rng Swing
