test/test_frontend.ml: Abstract_task Alcotest Dsl Format Graph List Pattern Promise Sexp_frontend
