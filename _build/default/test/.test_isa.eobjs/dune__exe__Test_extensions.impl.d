test/test_extensions.ml: Alcotest Array Extensions List Op_param Opcode Promise QCheck QCheck_alcotest String Task
