test/test_ml.ml: Alcotest Array Dataset Fixed_point Float Knn Linalg Linreg List Matched_filter Metrics Mlp Pca Promise QCheck QCheck_alcotest Svm Template
