test/test_benchmarks.ml: Alcotest List Printf Promise
