test/test_ir.ml: Abstract_task Alcotest Dsl Graph List Pattern Printf Promise QCheck QCheck_alcotest Ssa
