The textual frontend compiles the example kernels to the ISA.

  $ promise_compile kernels/template_matching.sexp
  task c1=aSUBT c2=absolute.avd c3=ADC c4=min rpt=63 mb=1 swing=7 acc=0 w=0 x1=0 x2=0 xprd=0 des=out thres=8

  $ promise_compile kernels/mlp.sexp --swing 3
  task c1=aREAD c2=sign_mult.avd c3=ADC c4=sigmoid rpt=127 mb=3 swing=3 acc=0 w=0 x1=0 x2=0 xprd=0 des=xreg thres=8
  task c1=aREAD c2=sign_mult.avd c3=ADC c4=max rpt=9 mb=0 swing=3 acc=0 w=0 x1=0 x2=0 xprd=0 des=out thres=8

  $ promise_compile kernels/linreg.sexp --ir | head -2
  IR graph: 4 tasks
    [0] linreg:mean(U): Vo_none / Ro_sum / Do_mean (N=4096, iters=2, swing=7)

Binary output is 6 bytes per Task.

  $ promise_compile kernels/svm.sexp --binary svm.bin
  wrote 1 task(s), 6 bytes to svm.bin

Parse errors are reported.

  $ cat > broken.sexp <<'SEXP'
  > (kernel broken (matrix W 2 2) (for 1 o (fft W)))
  > SEXP
  $ promise_compile broken.sexp
  promise-compile: unknown scalar expression (fft
  W)
  [1]
