  $ cat > tm.pasm <<'PASM'
  > ; template matching, 127 candidates on 4 banks
  > task c1=aSUBT c2=absolute.avd c3=ADC c4=min rpt=126 mb=2
  > PASM
  $ promise_asm assemble tm.pasm
  $ promise_asm assemble tm.pasm | promise_asm disassemble
  $ promise_asm validate tm.pasm
  $ cat > bad.pasm <<'PASM'
  > task c1=read c2=square c3=ADC c4=min
  > PASM
  $ promise_asm validate bad.pasm
