  $ promise_compile kernels/template_matching.sexp
  $ promise_compile kernels/mlp.sexp --swing 3
  $ promise_compile kernels/linreg.sexp --ir | head -2
  $ promise_compile kernels/svm.sexp --binary svm.bin
  $ cat > broken.sexp <<'SEXP'
  > (kernel broken (matrix W 2 2) (for 1 o (fft W)))
  > SEXP
  $ promise_compile broken.sexp
