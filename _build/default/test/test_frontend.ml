(* Tests for the S-expression frontend: reader, kernel elaboration,
   error reporting, and — the point of the exercise — equivalence with
   the OCaml-embedded DSL through the shared language-neutral IR
   (paper §4.1). *)

open Promise.Ir
module Sexp = Sexp_frontend

let check = Alcotest.check
let fail = Alcotest.fail
let bool = Alcotest.bool
let int = Alcotest.int

let ok_or_fail = function Ok v -> v | Error msg -> fail msg

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

let test_reader_atoms_and_lists () =
  match Sexp.sexp_of_string "(a (b 12) c)" with
  | Ok [ Sexp.List [ Sexp.Atom "a"; Sexp.List [ Sexp.Atom "b"; Sexp.Atom "12" ]; Sexp.Atom "c" ] ] ->
      ()
  | Ok other ->
      fail
        (Format.asprintf "unexpected parse: %a"
           (Format.pp_print_list Sexp.pp_sexp)
           other)
  | Error msg -> fail msg

let test_reader_comments () =
  match Sexp.sexp_of_string "; header\n(a) ; trailing\n(b)" with
  | Ok [ Sexp.List [ Sexp.Atom "a" ]; Sexp.List [ Sexp.Atom "b" ] ] -> ()
  | _ -> fail "comments must be skipped"

let test_reader_unbalanced () =
  (match Sexp.sexp_of_string "(a (b)" with
  | Error _ -> ()
  | Ok _ -> fail "missing ')' must fail");
  match Sexp.sexp_of_string "a))" with
  | Error _ -> ()
  | Ok _ -> fail "stray ')' must fail"

let test_reader_whitespace_robust () =
  match Sexp.sexp_of_string "(\n  a\t( b\r\n12 )\n)" with
  | Ok [ Sexp.List [ Sexp.Atom "a"; Sexp.List [ Sexp.Atom "b"; Sexp.Atom "12" ] ] ] ->
      ()
  | _ -> fail "whitespace handling"

(* ------------------------------------------------------------------ *)
(* Kernel elaboration                                                  *)
(* ------------------------------------------------------------------ *)

let tm_source =
  "(kernel tm\n\
  \  (matrix W 64 256)\n\
  \  (vector x 256)\n\
  \  (output out 64)\n\
  \  (for 64 out (l1 W x))\n\
  \  (argmin out))"

let test_parse_template_kernel () =
  let kernel = ok_or_fail (Sexp.parse tm_source) in
  let g = ok_or_fail (Pattern.match_function (Dsl.lower kernel)) in
  match Graph.tasks g with
  | [ (_, t) ] ->
      check bool "L1" true
        (Abstract_task.equal_red_op t.Abstract_task.red_op
           Abstract_task.Ro_sum_abs);
      check bool "argmin fused" true
        (Abstract_task.equal_digital_op t.Abstract_task.digital_op
           Abstract_task.Do_min);
      check int "iterations" 64 t.Abstract_task.loop_iterations
  | _ -> fail "one task expected"

let test_sexp_equals_embedded_dsl () =
  (* the textual and embedded frontends must produce the same IR *)
  let from_sexp =
    ok_or_fail (Pattern.match_function (Dsl.lower (ok_or_fail (Sexp.parse tm_source))))
  in
  let embedded =
    Dsl.kernel ~name:"tm"
      ~decls:
        [
          Dsl.matrix "W" ~rows:64 ~cols:256;
          Dsl.vector "x" ~len:256;
          Dsl.out_vector "out" ~len:64;
        ]
      [ Dsl.for_store ~iterations:64 ~out:"out" (Dsl.l1_distance "W" "x");
        Dsl.argmin "out" ]
  in
  let from_dsl = ok_or_fail (Pattern.match_function (Dsl.lower embedded)) in
  match (Graph.tasks from_sexp, Graph.tasks from_dsl) with
  | [ (_, a) ], [ (_, b) ] ->
      check bool "identical AbstractTask" true (Abstract_task.equal a b)
  | _ -> fail "one task each expected"

let test_parse_multilayer () =
  let src =
    "(kernel mlp (vector x 16) (matrix W0 8 16) (output h 8)\n\
     (matrix W1 4 8) (output y 4)\n\
     (for 8 h (sigmoid (dot W0 x)))\n\
     (for 4 y (relu (dot W1 h))))"
  in
  let g =
    ok_or_fail
      (Pattern.match_function (Dsl.lower (ok_or_fail (Sexp.parse src))))
  in
  check int "two tasks" 2 (Graph.n_tasks g);
  check bool "pipeline" true (Graph.is_linear_pipeline g)

let test_parse_reductions () =
  let src =
    "(kernel stats (matrix U 2 64) (matrix V 2 64) (vector Vv 128)\n\
     (mean U) (mean-square U) (mean-product U Vv))"
  in
  let g =
    ok_or_fail
      (Pattern.match_function (Dsl.lower (ok_or_fail (Sexp.parse src))))
  in
  check int "three tasks" 3 (Graph.n_tasks g)

let test_parse_threshold_and_countdown () =
  let src =
    "(kernel k (matrix W 4 8) (vector x 8) (output o 4)\n\
     (for-down 4 o (threshold 0.25 (dot W x))))"
  in
  let g =
    ok_or_fail
      (Pattern.match_function (Dsl.lower (ok_or_fail (Sexp.parse src))))
  in
  match Graph.tasks g with
  | [ (_, t) ] ->
      check bool "threshold op" true
        (Abstract_task.equal_digital_op t.Abstract_task.digital_op
           Abstract_task.Do_threshold);
      check (Alcotest.float 1e-9) "threshold value" 0.25
        t.Abstract_task.threshold;
      check int "countdown canonicalized" 4 t.Abstract_task.loop_iterations
  | _ -> fail "one task expected"

let test_parse_vexpr_forms () =
  let src =
    "(kernel k (matrix W 4 8) (vector x 8) (output o 4)\n\
     (for 4 o (sum (vsquare (vsub (row W) (xvec x))))))"
  in
  let g =
    ok_or_fail
      (Pattern.match_function (Dsl.lower (ok_or_fail (Sexp.parse src))))
  in
  match Graph.tasks g with
  | [ (_, t) ] ->
      check bool "L2 via explicit vexprs" true
        (Abstract_task.equal_red_op t.Abstract_task.red_op
           Abstract_task.Ro_sum_square)
  | _ -> fail "one task expected"

(* ------------------------------------------------------------------ *)
(* Error paths                                                         *)
(* ------------------------------------------------------------------ *)

let expect_error src what =
  match Sexp.parse src with
  | Error _ -> ()
  | Ok _ -> fail (what ^ " must be rejected")

let test_parse_errors () =
  expect_error "" "empty input";
  expect_error "(module x)" "non-kernel top form";
  expect_error "(kernel k)" "kernel without statements";
  expect_error "(kernel k (matrix W x 2) (for 1 o (dot W x)))"
    "non-integer dimension";
  expect_error "(kernel k (matrix W 2 2) (for 1 o (fft W)))"
    "unknown expression";
  expect_error "(kernel k (for one o (dot W x)))" "non-integer trip count"

let test_undeclared_array_fails_at_lowering () =
  let k = ok_or_fail (Sexp.parse "(kernel k (for 1 o (dot W x)))") in
  match Dsl.lower k with
  | exception Invalid_argument _ -> ()
  | _ -> fail "undeclared arrays must fail at lowering"

let test_example_kernel_files () =
  List.iter
    (fun path ->
      match Sexp.parse_file path with
      | Ok kernel -> (
          match Pattern.match_function (Dsl.lower kernel) with
          | Ok _ -> ()
          | Error msg -> fail (path ^ ": " ^ msg))
      | Error msg -> fail (path ^ ": " ^ msg))
    [
      "../examples/kernels/template_matching.sexp";
      "../examples/kernels/svm.sexp";
      "../examples/kernels/mlp.sexp";
      "../examples/kernels/linreg.sexp";
    ]

let suite =
  [
    ("reader atoms and lists", `Quick, test_reader_atoms_and_lists);
    ("reader comments", `Quick, test_reader_comments);
    ("reader unbalanced", `Quick, test_reader_unbalanced);
    ("reader whitespace", `Quick, test_reader_whitespace_robust);
    ("parse template kernel", `Quick, test_parse_template_kernel);
    ("sexp == embedded DSL (§4.1)", `Quick, test_sexp_equals_embedded_dsl);
    ("parse multilayer", `Quick, test_parse_multilayer);
    ("parse reductions", `Quick, test_parse_reductions);
    ("parse threshold/countdown", `Quick, test_parse_threshold_and_countdown);
    ("parse explicit vexprs", `Quick, test_parse_vexpr_forms);
    ("parse errors", `Quick, test_parse_errors);
    ("undeclared arrays", `Quick, test_undeclared_array_fails_at_lowering);
    ("example kernel files", `Quick, test_example_kernel_files);
  ]

let () = Alcotest.run "promise-frontend" [ ("frontend", suite) ]
