(* ML substrate tests: linear algebra, fixed point, synthetic datasets,
   model training (MLP, SVM, PCA), reference kernels and metrics. *)

module Ml = Promise.Ml
module Rng = Promise.Analog.Rng
open Ml

let check = Alcotest.check
let fail = Alcotest.fail
let bool = Alcotest.bool
let int = Alcotest.int
let close eps = Alcotest.float eps

(* ------------------------------------------------------------------ *)
(* Linalg                                                              *)
(* ------------------------------------------------------------------ *)

let test_dot () =
  check (close 1e-9) "dot" 11.0 (Linalg.dot [| 1.0; 2.0 |] [| 3.0; 4.0 |]);
  match Linalg.dot [| 1.0 |] [| 1.0; 2.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> fail "length mismatch must be rejected"

let test_distances () =
  let a = [| 1.0; -2.0 |] and b = [| -1.0; 1.0 |] in
  check (close 1e-9) "l1" 5.0 (Linalg.l1_distance a b);
  check (close 1e-9) "l2 squared" 13.0 (Linalg.l2_distance a b);
  check (close 1e-9) "self distance" 0.0 (Linalg.l1_distance a a);
  check (close 1e-9) "hamming" 2.0 (Linalg.hamming a b)

let test_vector_ops () =
  check (close 1e-9) "add" 3.0 (Linalg.add [| 1.0 |] [| 2.0 |]).(0);
  check (close 1e-9) "sub" (-1.0) (Linalg.sub [| 1.0 |] [| 2.0 |]).(0);
  check (close 1e-9) "scale" 4.0 (Linalg.scale 2.0 [| 2.0 |]).(0);
  check (close 1e-9) "norm" 5.0 (Linalg.norm2 [| 3.0; 4.0 |]);
  check (close 1e-9) "mean" 2.0 (Linalg.mean [| 1.0; 2.0; 3.0 |]);
  check (close 1e-9) "variance" (2.0 /. 3.0) (Linalg.variance [| 1.0; 2.0; 3.0 |])

let test_arg_extrema () =
  check int "argmin" 2 (Linalg.argmin [| 3.0; 2.0; 1.0; 5.0 |]);
  check int "argmax" 3 (Linalg.argmax [| 3.0; 2.0; 1.0; 5.0 |]);
  check int "first wins ties" 0 (Linalg.argmin [| 1.0; 1.0 |])

let test_mat_ops () =
  let m = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let v = Linalg.mat_vec m [| 1.0; 1.0 |] in
  check (close 1e-9) "row 0" 3.0 v.(0);
  check (close 1e-9) "row 1" 7.0 v.(1);
  let t = Linalg.mat_transpose m in
  check (close 1e-9) "transpose" 3.0 t.(0).(1);
  check int "rows" 2 (Linalg.mat_rows m);
  check int "cols" 2 (Linalg.mat_cols m);
  check (close 1e-9) "max abs" 4.0 (Linalg.mat_max_abs m)

let test_outer_accumulate () =
  let acc = Linalg.mat_create ~rows:2 ~cols:2 in
  Linalg.outer_accumulate acc [| 1.0; 2.0 |] [| 3.0; 4.0 |] 2.0;
  check (close 1e-9) "acc[0][0]" 6.0 acc.(0).(0);
  check (close 1e-9) "acc[1][1]" 16.0 acc.(1).(1)

(* ------------------------------------------------------------------ *)
(* Fixed point                                                         *)
(* ------------------------------------------------------------------ *)

let test_fixed_point_roundtrip () =
  List.iter
    (fun v ->
      let err = Float.abs (Fixed_point.dequantize (Fixed_point.quantize v) -. v) in
      check bool "within half lsb" true (err <= 0.5 /. 128.0 +. 1e-9))
    [ -0.99; -0.5; 0.0; 0.123; 0.7 ]

let test_fixed_point_clamps () =
  check int "high clamp" 127 (Fixed_point.quantize 2.0);
  check int "low clamp" (-128) (Fixed_point.quantize (-2.0))

let test_normalize_mat () =
  let m = [| [| 3.0; -6.0 |] |] in
  let scaled, k = Fixed_point.normalize_mat m in
  check (close 1e-9) "max is headroom" 0.99 (Linalg.mat_max_abs scaled);
  check (close 1e-9) "k recovers original" 3.0 (k *. scaled.(0).(0));
  let z, kz = Fixed_point.normalize_mat [| [| 0.0 |] |] in
  check (close 1e-9) "zero matrix k=1" 1.0 kz;
  check (close 1e-9) "zero stays zero" 0.0 z.(0).(0)

let test_quantize_to_bits () =
  check (close 1e-9) "4-bit grid" 0.125 (Fixed_point.quantize_to_bits 0.1 ~bits:4);
  check (close 1e-9) "step" 0.125 (Fixed_point.quantization_step ~bits:4);
  check bool "clamps below 1" true (Fixed_point.quantize_to_bits 0.999 ~bits:2 < 1.0)

let qcheck_fixed_roundtrip =
  QCheck.Test.make ~name:"8-bit quantization error bound" ~count:500
    (QCheck.float_range (-0.996) 0.996) (fun v ->
      Float.abs (Fixed_point.dequantize (Fixed_point.quantize v) -. v)
      <= (0.5 /. 128.0) +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Datasets                                                            *)
(* ------------------------------------------------------------------ *)

let test_digits_deterministic () =
  let gen () =
    Dataset.Digits.generate (Rng.create 3) ~width:8 ~height:8 ~n:20
  in
  let a = gen () and b = gen () in
  Array.iteri
    (fun i s ->
      check bool "same features" true (s.Dataset.features = b.(i).Dataset.features))
    a

let test_digits_labels_round_robin () =
  let d = Dataset.Digits.generate (Rng.create 3) ~width:8 ~height:8 ~n:25 in
  Array.iteri (fun i s -> check int "label" (i mod 10) s.Dataset.label) d

let test_digits_range () =
  let d = Dataset.Digits.generate (Rng.create 4) ~width:8 ~height:8 ~n:10 in
  Array.iter
    (fun s ->
      Array.iter
        (fun v -> check bool "in [-1,1)" true (v >= -1.0 && v < 1.0))
        s.Dataset.features)
    d

let test_digits_classes_distinguishable () =
  (* prototypes of distinct classes are far apart relative to noise *)
  let p0 = Dataset.Digits.prototype ~cls:0 ~width:16 ~height:16 in
  let p1 = Dataset.Digits.prototype ~cls:1 ~width:16 ~height:16 in
  check bool "classes differ" true (Linalg.l2_distance p0 p1 > 1.0)

let test_faces_identities () =
  let rng = Rng.create 5 in
  let ids = Dataset.Faces.identities rng ~width:16 ~height:16 ~n:8 in
  check int "8 identities" 8 (Array.length ids);
  (* a query is closest to its own identity *)
  let q = Dataset.Faces.query rng ~width:16 ~height:16 ids ~identity:3 in
  let d = Array.map (fun t -> Linalg.l1_distance t q) ids in
  check int "query resolves" 3 (Linalg.argmin d)

let test_faces_detection_balanced () =
  let d = Dataset.Faces.detection (Rng.create 6) ~width:16 ~height:16 ~n:40 in
  let pos = Array.fold_left (fun a s -> a + s.Dataset.label) 0 d in
  check int "balanced" 20 pos

let test_gunshot_windows () =
  let rng = Rng.create 7 in
  let template = Dataset.Gunshot.template rng ~len:128 in
  check int "template length" 128 (Array.length template);
  check bool "unit-ish peak" true (Linalg.max_abs template > 0.85);
  let w = Dataset.Gunshot.windows rng ~template ~n:30 ~snr:1.0 in
  (* positives correlate with the template much more than negatives *)
  let mean_corr label =
    let sum = ref 0.0 and count = ref 0 in
    Array.iter
      (fun s ->
        if s.Dataset.label = label then begin
          sum := !sum +. Linalg.dot template s.Dataset.features;
          incr count
        end)
      w;
    !sum /. float_of_int !count
  in
  check bool "positives correlate" true (mean_corr 1 > mean_corr 0 +. 1.0)

let test_linreg_data () =
  let u, v =
    Dataset.Linreg2d.generate (Rng.create 8) ~n:2000 ~slope:0.5 ~intercept:0.2
      ~noise:0.02
  in
  let fit = Linreg.fit u v in
  check (close 0.03) "slope recovered" 0.5 fit.Linreg.slope;
  check (close 0.03) "intercept recovered" 0.2 fit.Linreg.intercept

let test_train_test_split () =
  let d = Dataset.Digits.generate (Rng.create 9) ~width:8 ~height:8 ~n:100 in
  let train, test = Dataset.train_test_split d ~test_fraction:0.2 in
  check int "train" 80 (Array.length train);
  check int "test" 20 (Array.length test)

(* ------------------------------------------------------------------ *)
(* MLP                                                                 *)
(* ------------------------------------------------------------------ *)

let small_mlp_data () =
  Dataset.Digits.generate (Rng.create 11) ~width:8 ~height:8 ~n:300

let test_mlp_shapes () =
  let rng = Rng.create 12 in
  let m = Mlp.create rng ~sizes:[ 64; 32; 10 ] ~hidden_activation:Mlp.Sigmoid in
  check int "2 layers" 2 (Mlp.n_layers m);
  check (Alcotest.list int) "sizes" [ 64; 32; 10 ] (Mlp.layer_sizes m);
  check (Alcotest.list int) "fanins" [ 64; 32 ] (Mlp.per_layer_fanin m);
  let acts = Mlp.forward m (Array.make 64 0.1) in
  check int "3 activation arrays" 3 (Array.length acts);
  check int "output width" 10 (Array.length acts.(2))

let test_mlp_training_improves () =
  let rng = Rng.create 13 in
  let data = small_mlp_data () in
  let m = Mlp.create rng ~sizes:[ 64; 24; 10 ] ~hidden_activation:Mlp.Sigmoid in
  let before = Mlp.accuracy m data in
  Mlp.train m rng ~data ~epochs:5 ~lr:0.3;
  let after = Mlp.accuracy m data in
  check bool "training improves accuracy" true (after > before +. 0.3);
  check bool "high train accuracy" true (after > 0.9)

let test_mlp_relu_trains () =
  let rng = Rng.create 14 in
  let data = small_mlp_data () in
  let m = Mlp.create rng ~sizes:[ 64; 24; 10 ] ~hidden_activation:Mlp.Relu in
  Mlp.train m rng ~data ~epochs:5 ~lr:0.05;
  check bool "relu net learns" true (Mlp.accuracy m data > 0.8)

let test_mlp_gradient_check () =
  (* finite-difference check of the training gradient on one weight *)
  let rng = Rng.create 15 in
  let m = Mlp.create rng ~sizes:[ 4; 3; 2 ] ~hidden_activation:Mlp.Sigmoid in
  let x = [| 0.3; -0.2; 0.5; 0.1 |] in
  let label = 1 in
  let loss () =
    let z = Mlp.logits m x in
    let mx = Array.fold_left Float.max neg_infinity z in
    let logsum = mx +. log (Array.fold_left (fun a v -> a +. exp (v -. mx)) 0.0 z) in
    logsum -. z.(label)
  in
  (* numeric gradient for weight (0, 1, 2) *)
  let w = m.Mlp.layers.(0).Mlp.weights in
  let eps = 1e-5 in
  let orig = w.(1).(2) in
  w.(1).(2) <- orig +. eps;
  let lp = loss () in
  w.(1).(2) <- orig -. eps;
  let lm = loss () in
  w.(1).(2) <- orig;
  let numeric = (lp -. lm) /. (2.0 *. eps) in
  (* analytic: train with lr so that delta_w = -lr * grad *)
  let m2 = { Mlp.layers = Array.map (fun l -> { l with Mlp.weights = Array.map Array.copy l.Mlp.weights }) m.Mlp.layers } in
  let lr = 1e-3 in
  Mlp.train m2 (Rng.create 1) ~data:[| { Dataset.features = x; label } |]
    ~epochs:1 ~lr;
  let analytic = (orig -. m2.Mlp.layers.(0).Mlp.weights.(1).(2)) /. lr in
  check (close 1e-3) "gradient check" numeric analytic

let test_mlp_sakr_stats_positive () =
  let rng = Rng.create 16 in
  let data = small_mlp_data () in
  let m = Mlp.create rng ~sizes:[ 64; 16; 10 ] ~hidden_activation:Mlp.Sigmoid in
  Mlp.train m rng ~data ~epochs:3 ~lr:0.3;
  let ea, ew = Mlp.sakr_stats m (Array.sub data 0 60) in
  check bool "EA > 0" true (ea > 0.0);
  check bool "EW > 0" true (ew > 0.0)

(* ------------------------------------------------------------------ *)
(* SVM                                                                 *)
(* ------------------------------------------------------------------ *)

let test_svm_separable () =
  (* two gaussian blobs, linearly separable *)
  let rng = Rng.create 17 in
  let data =
    Array.init 200 (fun i ->
        let label = i mod 2 in
        let center = if label = 1 then 0.4 else -0.4 in
        {
          Dataset.features =
            Array.init 8 (fun _ -> Rng.gaussian_scaled rng ~mu:center ~sigma:0.15);
          label;
        })
  in
  let m = Svm.train rng ~data ~epochs:10 ~lambda:0.01 in
  check bool "separable accuracy > 0.97" true (Svm.accuracy m data > 0.97)

let test_svm_augmented_weights () =
  let m = { Svm.weights = [| 1.0; 2.0 |]; bias = 0.5 } in
  let aug = Svm.augmented_weights m in
  check int "length" 3 (Array.length aug);
  check (close 1e-9) "bias appended" 0.5 aug.(2);
  check (close 1e-9) "decision" 3.5 (Svm.decision m [| 1.0; 1.0 |]);
  check int "predict positive" 1 (Svm.predict m [| 1.0; 1.0 |])

(* ------------------------------------------------------------------ *)
(* PCA                                                                 *)
(* ------------------------------------------------------------------ *)

let test_pca_recovers_dominant_direction () =
  (* data spread along a known axis *)
  let rng = Rng.create 18 in
  let dir = [| 0.6; 0.8 |] in
  let data =
    Array.init 300 (fun _ ->
        let t = Rng.gaussian rng in
        let n = Rng.gaussian_scaled rng ~mu:0.0 ~sigma:0.05 in
        [| (t *. dir.(0)) -. (n *. dir.(1)); (t *. dir.(1)) +. (n *. dir.(0)) |])
  in
  let p = Pca.fit rng ~data ~n_components:1 ~iterations:50 in
  let c = p.Pca.components.(0) in
  check (close 0.02) "aligned with the true axis" 1.0
    (Float.abs (Linalg.dot c dir));
  check bool "explains most variance" true (Pca.explained_ratio p ~data > 0.95)

let test_pca_orthonormal_components () =
  let rng = Rng.create 19 in
  let data =
    Array.init 100 (fun _ -> Array.init 6 (fun _ -> Rng.gaussian rng))
  in
  let p = Pca.fit rng ~data ~n_components:3 ~iterations:40 in
  for i = 0 to 2 do
    check (close 1e-3) "unit norm" 1.0 (Linalg.norm2 p.Pca.components.(i));
    for j = i + 1 to 2 do
      check (close 0.05) "orthogonal" 0.0
        (Float.abs (Linalg.dot p.Pca.components.(i) p.Pca.components.(j)))
    done
  done

let test_pca_projection_centers () =
  let rng = Rng.create 20 in
  let data = Array.init 50 (fun _ -> Array.init 4 (fun _ -> Rng.float rng)) in
  let p = Pca.fit rng ~data ~n_components:2 ~iterations:30 in
  (* projecting the mean gives ~0 *)
  let z = Pca.project p p.Pca.mean in
  Array.iter (fun v -> check (close 1e-9) "mean projects to 0" 0.0 v) z

(* ------------------------------------------------------------------ *)
(* kNN / template / matched filter / metrics                           *)
(* ------------------------------------------------------------------ *)

let test_knn_classifies () =
  let rng = Rng.create 21 in
  let data = Dataset.Digits.generate rng ~width:8 ~height:8 ~n:150 in
  let train = Array.sub data 0 100 and test = Array.sub data 100 50 in
  check bool "knn L1 accuracy" true (Knn.accuracy ~metric:Knn.L1 ~k:3 ~train test > 0.8);
  check bool "knn L2 accuracy" true (Knn.accuracy ~metric:Knn.L2 ~k:3 ~train test > 0.8)

let test_knn_from_distances () =
  let train =
    [|
      { Dataset.features = [||]; label = 0 };
      { Dataset.features = [||]; label = 1 };
      { Dataset.features = [||]; label = 1 };
    |]
  in
  check int "majority of k=3" 1
    (Knn.classify_from_distances ~k:3 ~train [| 0.1; 0.2; 0.3 |]);
  check int "k=1 nearest" 0
    (Knn.classify_from_distances ~k:1 ~train [| 0.1; 0.2; 0.3 |])

let test_template_nearest () =
  let candidates = [| [| 0.0; 0.0 |]; [| 1.0; 1.0 |]; [| -1.0; 0.5 |] |] in
  let i, d = Template.nearest ~metric:Template.L2 ~candidates [| 0.9; 0.9 |] in
  check int "nearest" 1 i;
  check (close 1e-9) "distance" 0.02 d

let test_matched_filter_detects () =
  let rng = Rng.create 22 in
  let template = Dataset.Gunshot.template rng ~len:256 in
  let windows = Dataset.Gunshot.windows rng ~template ~n:100 ~snr:1.0 in
  let threshold = Matched_filter.calibrate_threshold ~template windows in
  let f = Matched_filter.make ~template ~threshold in
  check bool "detection accuracy" true (Matched_filter.accuracy f windows > 0.95)

let test_linreg_of_statistics () =
  let fit =
    Linreg.of_statistics ~mean_u:0.0 ~mean_v:1.0 ~mean_u2:1.0 ~mean_uv:0.5
  in
  check (close 1e-9) "slope" 0.5 fit.Linreg.slope;
  check (close 1e-9) "intercept" 1.0 fit.Linreg.intercept;
  match Linreg.of_statistics ~mean_u:1.0 ~mean_v:0.0 ~mean_u2:1.0 ~mean_uv:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> fail "zero variance must be rejected"

let test_metrics () =
  check (close 1e-9) "accuracy" 0.75
    (Metrics.accuracy ~truth:[| 0; 1; 1; 0 |] ~predicted:[| 0; 1; 0; 0 |]);
  check (close 1e-9) "mismatch" 0.25
    (Metrics.mismatch_probability ~reference:[| 0; 1; 1; 0 |]
       ~promise:[| 0; 1; 0; 0 |]);
  check (close 1e-9) "drop clamps" 0.0
    (Metrics.accuracy_drop ~reference_acc:0.9 ~promise_acc:0.95);
  let c = Metrics.confusion ~n_classes:2 ~truth:[| 0; 1; 1 |] ~predicted:[| 0; 1; 0 |] in
  check int "c[1][0]" 1 c.(1).(0);
  check (close 1e-9) "geomean" 2.0 (Metrics.geometric_mean [ 1.0; 4.0 ])

let qcheck_knn_self_consistent =
  QCheck.Test.make ~name:"1-NN classifies training points exactly" ~count:50
    (QCheck.int_range 1 1000) (fun seed ->
      let rng = Rng.create seed in
      let data = Dataset.Digits.generate rng ~width:6 ~height:6 ~n:20 in
      Array.for_all
        (fun s -> Knn.classify ~metric:Knn.L1 ~k:1 ~train:data s.Dataset.features
                  = s.Dataset.label)
        data)

let suite =
  [
    ("dot", `Quick, test_dot);
    ("distances", `Quick, test_distances);
    ("vector ops", `Quick, test_vector_ops);
    ("arg extrema", `Quick, test_arg_extrema);
    ("matrix ops", `Quick, test_mat_ops);
    ("outer accumulate", `Quick, test_outer_accumulate);
    ("fixed point roundtrip", `Quick, test_fixed_point_roundtrip);
    ("fixed point clamps", `Quick, test_fixed_point_clamps);
    ("normalize mat", `Quick, test_normalize_mat);
    ("quantize to bits", `Quick, test_quantize_to_bits);
    ("digits deterministic", `Quick, test_digits_deterministic);
    ("digits labels", `Quick, test_digits_labels_round_robin);
    ("digits range", `Quick, test_digits_range);
    ("digit classes distinguishable", `Quick, test_digits_classes_distinguishable);
    ("faces identities", `Quick, test_faces_identities);
    ("faces detection balanced", `Quick, test_faces_detection_balanced);
    ("gunshot windows", `Quick, test_gunshot_windows);
    ("linreg data", `Quick, test_linreg_data);
    ("train/test split", `Quick, test_train_test_split);
    ("mlp shapes", `Quick, test_mlp_shapes);
    ("mlp training improves", `Slow, test_mlp_training_improves);
    ("mlp relu trains", `Slow, test_mlp_relu_trains);
    ("mlp gradient check", `Quick, test_mlp_gradient_check);
    ("mlp sakr stats", `Slow, test_mlp_sakr_stats_positive);
    ("svm separable", `Quick, test_svm_separable);
    ("svm augmented weights", `Quick, test_svm_augmented_weights);
    ("pca dominant direction", `Quick, test_pca_recovers_dominant_direction);
    ("pca orthonormal", `Quick, test_pca_orthonormal_components);
    ("pca projection centers", `Quick, test_pca_projection_centers);
    ("knn classifies", `Quick, test_knn_classifies);
    ("knn from distances", `Quick, test_knn_from_distances);
    ("template nearest", `Quick, test_template_nearest);
    ("matched filter detects", `Quick, test_matched_filter_detects);
    ("linreg closed form", `Quick, test_linreg_of_statistics);
    ("metrics", `Quick, test_metrics);
    QCheck_alcotest.to_alcotest qcheck_fixed_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_knn_self_consistent;
  ]

let () = Alcotest.run "promise-ml" [ ("ml", suite) ]
