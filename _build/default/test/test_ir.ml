(* Compiler IR tests: SSA construction/verification, the DSL frontend,
   the Figure-7 pattern matcher (including loop canonicalization and
   decision fusion), and the AbstractTask DAG. *)

open Promise.Ir

let check = Alcotest.check
let fail = Alcotest.fail
let bool = Alcotest.bool
let int = Alcotest.int
let str = Alcotest.string

let ok_or_fail = function Ok v -> v | Error msg -> fail msg

(* ------------------------------------------------------------------ *)
(* SSA                                                                 *)
(* ------------------------------------------------------------------ *)

let simple_func () =
  let b =
    Ssa.Builder.create ~name:"f"
      ~params:[ ("W", Ssa.Matrix (4, 8)); ("x", Ssa.Vector 8) ]
  in
  Ssa.Builder.block b "entry";
  let row =
    Ssa.Builder.instr b
      (Ssa.Getindex { matrix = Ssa.Arg "W"; index = Ssa.Const_int 0 })
  in
  let prod =
    Ssa.Builder.instr b
      (Ssa.Vec_binop { op = Ssa.Vmul; lhs = row; rhs = Ssa.Arg "x" })
  in
  let sum = Ssa.Builder.instr b (Ssa.Reduce { op = Ssa.Rsum; operand = prod }) in
  Ssa.Builder.terminate b (Ssa.Ret (Some sum));
  Ssa.Builder.finish b

let test_builder_produces_valid_ssa () =
  let f = simple_func () in
  check str "name" "f" f.Ssa.name;
  check int "one block" 1 (List.length f.Ssa.blocks);
  match Ssa.verify f with Ok () -> () | Error msg -> fail msg

let test_param_ty () =
  let f = simple_func () in
  (match Ssa.param_ty f "W" with
  | Some (Ssa.Matrix (4, 8)) -> ()
  | _ -> fail "W type");
  check bool "unknown param" true (Ssa.param_ty f "nope" = None)

let test_def_of () =
  let f = simple_func () in
  match Ssa.def_of f 1 with
  | Some (_, Ssa.Vec_binop { op = Ssa.Vmul; _ }) -> ()
  | _ -> fail "register 1 should be the multiply"

let test_verify_rejects_undefined_register () =
  let b = Ssa.Builder.create ~name:"g" ~params:[] in
  Ssa.Builder.block b "entry";
  ignore (Ssa.Builder.instr b (Ssa.Load { ptr = Ssa.Vreg 99 }));
  Ssa.Builder.terminate b (Ssa.Ret None);
  match Ssa.Builder.finish b with
  | exception Invalid_argument _ -> ()
  | _ -> fail "undefined register must be rejected"

let test_verify_rejects_unknown_label () =
  let b = Ssa.Builder.create ~name:"g" ~params:[] in
  Ssa.Builder.block b "entry";
  Ssa.Builder.terminate b (Ssa.Br "nowhere");
  match Ssa.Builder.finish b with
  | exception Invalid_argument _ -> ()
  | _ -> fail "unknown branch target must be rejected"

let test_builder_requires_terminator () =
  let b = Ssa.Builder.create ~name:"g" ~params:[] in
  Ssa.Builder.block b "entry";
  match Ssa.Builder.finish b with
  | exception Invalid_argument _ -> ()
  | _ -> fail "missing terminator must be rejected"

let test_verify_rejects_unknown_arg () =
  let b = Ssa.Builder.create ~name:"g" ~params:[] in
  Ssa.Builder.block b "entry";
  ignore (Ssa.Builder.instr b (Ssa.Load { ptr = Ssa.Arg "mystery" }));
  Ssa.Builder.terminate b (Ssa.Ret None);
  match Ssa.Builder.finish b with
  | exception Invalid_argument _ -> ()
  | _ -> fail "unknown argument must be rejected"

(* ------------------------------------------------------------------ *)
(* DSL lowering                                                        *)
(* ------------------------------------------------------------------ *)

let svm_kernel =
  Dsl.kernel ~name:"svm"
    ~decls:
      [
        Dsl.matrix "W" ~rows:1 ~cols:16;
        Dsl.vector "x" ~len:16;
        Dsl.out_vector "out" ~len:1;
      ]
    [
      Dsl.for_store ~iterations:1 ~out:"out"
        (Dsl.sthreshold 0.0 (Dsl.dot "W" "x"));
    ]

let tm_kernel ~countdown =
  let loop =
    if countdown then Dsl.for_store_countdown else Dsl.for_store
  in
  Dsl.kernel ~name:"tm"
    ~decls:
      [
        Dsl.matrix "W" ~rows:64 ~cols:256;
        Dsl.vector "x" ~len:256;
        Dsl.out_vector "out" ~len:64;
      ]
    [ loop ~iterations:64 ~out:"out" (Dsl.l1_distance "W" "x"); Dsl.argmin "out" ]

let test_dsl_lowering_verifies () =
  let f = Dsl.lower (tm_kernel ~countdown:false) in
  (match Ssa.verify f with Ok () -> () | Error msg -> fail msg);
  (* entry + loop + after *)
  check int "three blocks" 3 (List.length f.Ssa.blocks)

let test_dsl_undeclared_array_rejected () =
  let k =
    Dsl.kernel ~name:"bad" ~decls:[]
      [ Dsl.for_store ~iterations:1 ~out:"out" (Dsl.dot "W" "x") ]
  in
  match Dsl.lower k with
  | exception Invalid_argument _ -> ()
  | _ -> fail "undeclared arrays must be rejected"

let test_dsl_multi_statement_chain () =
  let k =
    Dsl.kernel ~name:"mlp"
      ~decls:
        [
          Dsl.matrix "W0" ~rows:8 ~cols:16;
          Dsl.matrix "W1" ~rows:4 ~cols:8;
          Dsl.vector "x" ~len:16;
          Dsl.out_vector "h" ~len:8;
          Dsl.out_vector "y" ~len:4;
        ]
      [
        Dsl.for_store ~iterations:8 ~out:"h" (Dsl.sigmoid (Dsl.dot "W0" "x"));
        Dsl.for_store ~iterations:4 ~out:"y" (Dsl.sigmoid (Dsl.dot "W1" "h"));
      ]
  in
  let f = Dsl.lower k in
  check int "five blocks" 5 (List.length f.Ssa.blocks)

(* ------------------------------------------------------------------ *)
(* Pattern matching                                                    *)
(* ------------------------------------------------------------------ *)

let test_find_loops () =
  let f = Dsl.lower (tm_kernel ~countdown:false) in
  match Pattern.find_loops f with
  | [ info ] ->
      check int "iterations" 64 info.Pattern.iterations;
      check int "start" 0 info.Pattern.start
  | loops -> fail (Printf.sprintf "expected 1 loop, got %d" (List.length loops))

let test_countdown_canonicalized () =
  (* the paper: pattern matching must survive "the loop index variable
     being incremented instead of decremented" *)
  let f = Dsl.lower (tm_kernel ~countdown:true) in
  match Pattern.find_loops f with
  | [ info ] -> check int "iterations" 64 info.Pattern.iterations
  | _ -> fail "countdown loop not canonicalized"

let extract_single kernel =
  let g = ok_or_fail (Pattern.match_function (Dsl.lower kernel)) in
  match Graph.tasks g with
  | [ (_, t) ] -> t
  | ts -> fail (Printf.sprintf "expected 1 task, got %d" (List.length ts))

let test_match_l1_with_argmin_fusion () =
  let t = extract_single (tm_kernel ~countdown:false) in
  check bool "vec sub" true
    (Abstract_task.equal_vec_op t.Abstract_task.vec_op Abstract_task.Vo_sub);
  check bool "red sum_abs" true
    (Abstract_task.equal_red_op t.Abstract_task.red_op Abstract_task.Ro_sum_abs);
  check bool "argmin fused into Class-4 min" true
    (Abstract_task.equal_digital_op t.Abstract_task.digital_op
       Abstract_task.Do_min);
  check int "vector_len" 256 t.Abstract_task.vector_len;
  check int "iterations" 64 t.Abstract_task.loop_iterations;
  check str "W" "W" t.Abstract_task.w;
  check str "X" "x" t.Abstract_task.x;
  check int "initial swing is max" 7 t.Abstract_task.swing

let test_match_threshold () =
  let t = extract_single svm_kernel in
  check bool "threshold op" true
    (Abstract_task.equal_digital_op t.Abstract_task.digital_op
       Abstract_task.Do_threshold);
  check bool "mul vec op" true
    (Abstract_task.equal_vec_op t.Abstract_task.vec_op
       Abstract_task.Vo_mul_signed)

let test_match_l2 () =
  let k =
    Dsl.kernel ~name:"l2"
      ~decls:
        [
          Dsl.matrix "W" ~rows:4 ~cols:8;
          Dsl.vector "x" ~len:8;
          Dsl.out_vector "out" ~len:4;
        ]
      [ Dsl.for_store ~iterations:4 ~out:"out" (Dsl.l2_distance "W" "x") ]
  in
  let t = extract_single k in
  check bool "red sum_square" true
    (Abstract_task.equal_red_op t.Abstract_task.red_op
       Abstract_task.Ro_sum_square)

let test_match_sigmoid_relu () =
  let mk act =
    Dsl.kernel ~name:"act"
      ~decls:
        [
          Dsl.matrix "W" ~rows:4 ~cols:8;
          Dsl.vector "x" ~len:8;
          Dsl.out_vector "out" ~len:4;
        ]
      [ Dsl.for_store ~iterations:4 ~out:"out" (act (Dsl.dot "W" "x")) ]
  in
  let t = extract_single (mk Dsl.sigmoid) in
  check bool "sigmoid" true
    (Abstract_task.equal_digital_op t.Abstract_task.digital_op
       Abstract_task.Do_sigmoid);
  let t = extract_single (mk Dsl.relu) in
  check bool "relu" true
    (Abstract_task.equal_digital_op t.Abstract_task.digital_op
       Abstract_task.Do_relu)

let test_match_whole_array_reductions () =
  let k =
    Dsl.kernel ~name:"linreg"
      ~decls:
        [
          Dsl.matrix "U" ~rows:2 ~cols:16;
          Dsl.matrix "V" ~rows:2 ~cols:16;
          Dsl.vector "Vvec" ~len:32;
        ]
      [
        Dsl.mean "U";
        Dsl.mean "V";
        Dsl.mean_square "U";
        Dsl.mean_product "U" "Vvec";
      ]
  in
  let g = ok_or_fail (Pattern.match_function (Dsl.lower k)) in
  check int "four tasks" 4 (Graph.n_tasks g);
  let ops =
    List.map
      (fun (_, t) -> (t.Abstract_task.vec_op, t.Abstract_task.red_op))
      (Graph.tasks g)
  in
  check bool "mean is a plain sum" true
    (List.exists
       (fun (v, r) ->
         Abstract_task.equal_vec_op v Abstract_task.Vo_none
         && Abstract_task.equal_red_op r Abstract_task.Ro_sum)
       ops);
  check bool "mean_square squares" true
    (List.exists
       (fun (v, r) ->
         Abstract_task.equal_vec_op v Abstract_task.Vo_none
         && Abstract_task.equal_red_op r Abstract_task.Ro_sum_square)
       ops);
  check bool "mean_product multiplies" true
    (List.exists
       (fun (v, _) -> Abstract_task.equal_vec_op v Abstract_task.Vo_mul_signed)
       ops)

let test_match_dnn_chain_builds_pipeline () =
  let k =
    Dsl.kernel ~name:"mlp"
      ~decls:
        [
          Dsl.matrix "W0" ~rows:8 ~cols:16;
          Dsl.matrix "W1" ~rows:4 ~cols:8;
          Dsl.vector "x" ~len:16;
          Dsl.out_vector "h" ~len:8;
          Dsl.out_vector "y" ~len:4;
        ]
      [
        Dsl.for_store ~iterations:8 ~out:"h" (Dsl.sigmoid (Dsl.dot "W0" "x"));
        Dsl.for_store ~iterations:4 ~out:"y" (Dsl.sigmoid (Dsl.dot "W1" "h"));
      ]
  in
  let g = ok_or_fail (Pattern.match_function (Dsl.lower k)) in
  check int "two tasks" 2 (Graph.n_tasks g);
  check int "one dataflow edge" 1 (List.length (Graph.edges g));
  check bool "linear pipeline" true (Graph.is_linear_pipeline g);
  match Graph.edges g with
  | [ e ] ->
      check bool "X edge" true (Graph.equal_port e.Graph.port Graph.X_input)
  | _ -> fail "edge expected"

let test_unsupported_call_rejected () =
  let b =
    Ssa.Builder.create ~name:"f" ~params:[ ("W", Ssa.Matrix (2, 4)) ]
  in
  Ssa.Builder.block b "entry";
  ignore (Ssa.Builder.instr b (Ssa.Call { fn = "fft"; args = [ Ssa.Arg "W" ] }));
  Ssa.Builder.terminate b (Ssa.Ret None);
  match Pattern.match_function (Ssa.Builder.finish b) with
  | Error _ -> ()
  | Ok _ -> fail "unknown library call must be rejected"

let test_no_offloadable_computation () =
  let b = Ssa.Builder.create ~name:"f" ~params:[] in
  Ssa.Builder.block b "entry";
  Ssa.Builder.terminate b (Ssa.Ret None);
  match Pattern.match_function (Ssa.Builder.finish b) with
  | Error _ -> ()
  | Ok _ -> fail "empty function cannot be offloaded"

let test_loop_bound_exceeding_rows_rejected () =
  (* a loop of 9 iterations over an 8-row matrix must not match *)
  let k =
    Dsl.kernel ~name:"bad"
      ~decls:
        [
          Dsl.matrix "W" ~rows:8 ~cols:4;
          Dsl.vector "x" ~len:4;
          Dsl.out_vector "out" ~len:9;
        ]
      [ Dsl.for_store ~iterations:9 ~out:"out" (Dsl.dot "W" "x") ]
  in
  match Pattern.match_function (Dsl.lower k) with
  | Error _ -> ()
  | Ok _ -> fail "overrunning loop must be rejected"

(* ------------------------------------------------------------------ *)
(* AbstractTask & Graph                                                *)
(* ------------------------------------------------------------------ *)

let task name ~w ~x ~output =
  Abstract_task.make ~name ~w ~x ~output ~vec_op:Abstract_task.Vo_mul_signed
    ~red_op:Abstract_task.Ro_sum ~digital_op:Abstract_task.Do_none
    ~vector_len:8 ~loop_iterations:4 ()

let test_abstract_task_validation () =
  (match
     Abstract_task.make ~w:"W" ~x:"x" ~output:"o"
       ~vec_op:Abstract_task.Vo_none ~red_op:Abstract_task.Ro_sum
       ~digital_op:Abstract_task.Do_none ~vector_len:0 ~loop_iterations:1 ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> fail "vector_len 0 must be rejected");
  match Abstract_task.with_swing (task "t" ~w:"W" ~x:"x" ~output:"o") 9 with
  | exception Invalid_argument _ -> ()
  | _ -> fail "swing 9 must be rejected"

let test_abstract_task_helpers () =
  let t = task "t" ~w:"W" ~x:"x" ~output:"o" in
  check int "macs" 32 (Abstract_task.macs t);
  check bool "uses x" true (Abstract_task.uses_x t);
  let t' =
    Abstract_task.make ~w:"W" ~x:"" ~output:"o" ~vec_op:Abstract_task.Vo_none
      ~red_op:Abstract_task.Ro_sum ~digital_op:Abstract_task.Do_mean
      ~vector_len:8 ~loop_iterations:4 ()
  in
  check bool "vo_none needs no x" false (Abstract_task.uses_x t')

let test_graph_topological_order () =
  let g =
    ok_or_fail
      (Graph.of_tasks
         [
           task "a" ~w:"W0" ~x:"x" ~output:"h1";
           task "b" ~w:"W1" ~x:"h1" ~output:"h2";
           task "c" ~w:"W2" ~x:"h2" ~output:"y";
         ])
  in
  check (Alcotest.list int) "topo order" [ 0; 1; 2 ] (Graph.topological_order g);
  check int "two edges" 2 (List.length (Graph.edges g));
  check bool "pipeline" true (Graph.is_linear_pipeline g)

let test_graph_cycle_rejected () =
  let g = Graph.empty in
  let a, g = Graph.add_task g (task "a" ~w:"W" ~x:"x" ~output:"oa") in
  let b, g = Graph.add_task g (task "b" ~w:"W" ~x:"oa" ~output:"ob") in
  let g =
    ok_or_fail (Graph.connect g ~producer:a ~consumer:b ~port:Graph.X_input)
  in
  match Graph.connect g ~producer:b ~consumer:a ~port:Graph.X_input with
  | Error _ -> ()
  | Ok _ -> fail "cycle must be rejected"

let test_graph_map_tasks () =
  let g =
    ok_or_fail (Graph.of_tasks [ task "a" ~w:"W" ~x:"x" ~output:"o" ])
  in
  let g' = Graph.map_tasks g (fun _ t -> Abstract_task.with_swing t 3) in
  check int "swing updated" 3 (Graph.task g' 0).Abstract_task.swing

let test_graph_predecessors () =
  let g =
    ok_or_fail
      (Graph.of_tasks
         [
           task "a" ~w:"W0" ~x:"x" ~output:"h";
           task "b" ~w:"W1" ~x:"h" ~output:"y";
         ])
  in
  check int "b has one predecessor" 1 (List.length (Graph.predecessors g 1));
  check int "a has one successor" 1 (List.length (Graph.successors g 0));
  check int "a has no predecessor" 0 (List.length (Graph.predecessors g 0))

let qcheck_dsl_roundtrip_dimensions =
  (* for random kernel geometries the matched task reproduces the
     declared dimensions *)
  QCheck.Test.make ~name:"pattern preserves kernel geometry" ~count:100
    (QCheck.pair (QCheck.int_range 1 64) (QCheck.int_range 1 512))
    (fun (rows, cols) ->
      let k =
        Dsl.kernel ~name:"k"
          ~decls:
            [
              Dsl.matrix "W" ~rows ~cols;
              Dsl.vector "x" ~len:cols;
              Dsl.out_vector "out" ~len:rows;
            ]
          [ Dsl.for_store ~iterations:rows ~out:"out" (Dsl.dot "W" "x") ]
      in
      match Pattern.match_function (Dsl.lower k) with
      | Ok g -> (
          match Graph.tasks g with
          | [ (_, t) ] ->
              t.Abstract_task.vector_len = cols
              && t.Abstract_task.loop_iterations = rows
          | _ -> false)
      | Error _ -> false)

let suite =
  [
    ("builder produces valid SSA", `Quick, test_builder_produces_valid_ssa);
    ("param types", `Quick, test_param_ty);
    ("def_of", `Quick, test_def_of);
    ("verify: undefined register", `Quick, test_verify_rejects_undefined_register);
    ("verify: unknown label", `Quick, test_verify_rejects_unknown_label);
    ("builder: missing terminator", `Quick, test_builder_requires_terminator);
    ("verify: unknown argument", `Quick, test_verify_rejects_unknown_arg);
    ("dsl lowering verifies", `Quick, test_dsl_lowering_verifies);
    ("dsl rejects undeclared arrays", `Quick, test_dsl_undeclared_array_rejected);
    ("dsl multi-statement chain", `Quick, test_dsl_multi_statement_chain);
    ("find single-block loops", `Quick, test_find_loops);
    ("countdown loops canonicalized", `Quick, test_countdown_canonicalized);
    ("match L1 + argmin fusion (§3.4)", `Quick, test_match_l1_with_argmin_fusion);
    ("match threshold decision", `Quick, test_match_threshold);
    ("match L2", `Quick, test_match_l2);
    ("match sigmoid/relu", `Quick, test_match_sigmoid_relu);
    ("match whole-array reductions", `Quick, test_match_whole_array_reductions);
    ("match DNN chain", `Quick, test_match_dnn_chain_builds_pipeline);
    ("unsupported call rejected", `Quick, test_unsupported_call_rejected);
    ("no offloadable computation", `Quick, test_no_offloadable_computation);
    ("loop bound over rows rejected", `Quick, test_loop_bound_exceeding_rows_rejected);
    ("abstract task validation", `Quick, test_abstract_task_validation);
    ("abstract task helpers", `Quick, test_abstract_task_helpers);
    ("graph topological order", `Quick, test_graph_topological_order);
    ("graph cycle rejected", `Quick, test_graph_cycle_rejected);
    ("graph map tasks", `Quick, test_graph_map_tasks);
    ("graph predecessors/successors", `Quick, test_graph_predecessors);
    QCheck_alcotest.to_alcotest qcheck_dsl_roundtrip_dimensions;
  ]

let () = Alcotest.run "promise-ir" [ ("ir", suite) ]
