(* promise-asm: assemble PROMISE assembly to binary Task words and
   disassemble them back (paper Fig. 5 encoding).

   Usage:
     promise_asm assemble  [FILE]   # asm -> hex words on stdout
     promise_asm disassemble [FILE] # hex words -> asm on stdout
     promise_asm validate  [FILE]   # parse + validate, report task count *)

module P = Promise

let read_input = function
  | None ->
      let buf = Buffer.create 4096 in
      (try
         while true do
           Buffer.add_channel buf stdin 1
         done
       with End_of_file -> ());
      Buffer.contents buf
  | Some path ->
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s

let die msg =
  prerr_endline ("promise-asm: " ^ msg);
  exit 1

let assemble file =
  match P.Isa.Asm.parse_program (read_input file) with
  | Error msg -> die msg
  | Ok tasks ->
      List.iter (fun t -> print_endline (P.Isa.Encode.hex_of_task t)) tasks;
      `Ok ()

let disassemble file =
  let lines =
    read_input file |> String.split_on_char '\n'
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let tasks =
    List.mapi
      (fun i line ->
        match P.Isa.Encode.task_of_hex line with
        | Ok t -> t
        | Error msg -> die (Printf.sprintf "word %d: %s" (i + 1) msg))
      lines
  in
  print_string (P.Isa.Asm.print_program tasks);
  `Ok ()

let validate file =
  match P.Isa.Asm.parse_program (read_input file) with
  | Error msg -> die msg
  | Ok tasks ->
      Printf.printf "%d task(s) valid; program uses up to %d bank(s)\n"
        (List.length tasks)
        (List.fold_left (fun a t -> max a (P.Isa.Task.banks t)) 1 tasks);
      `Ok ()

open Cmdliner

let file_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE"
         ~doc:"Input file; standard input when omitted.")

let cmd name doc f =
  Cmd.v (Cmd.info name ~doc) Term.(ret (const f $ file_arg))

let () =
  let info =
    Cmd.info "promise-asm" ~version:P.version
      ~doc:"PROMISE Task assembler / disassembler"
  in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            cmd "assemble" "assemble PROMISE assembly into hex Task words"
              assemble;
            cmd "disassemble" "disassemble hex Task words into assembly"
              disassemble;
            cmd "validate" "parse and validate a PROMISE assembly program"
              validate;
          ]))
