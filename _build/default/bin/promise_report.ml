(* promise-report: regenerate the paper's tables and figures as text
   (the same sections the bench harness prints).

   Usage: promise_report [--quick] [SECTION ...] *)

module P = Promise
open Cmdliner

let run quick sections =
  let ppf = Format.std_formatter in
  (match (quick, sections) with
  | true, _ -> P.Report.quick ppf
  | false, [] -> P.Report.all ppf
  | false, names ->
      List.iter
        (fun name ->
          match
            List.find_opt (fun (n, _, _) -> n = name) P.Report.sections
          with
          | Some (_, _, f) -> f ppf
          | None ->
              Format.fprintf ppf "unknown section %S; available: %s@." name
                (String.concat ", "
                   (List.map (fun (n, _, _) -> n) P.Report.sections)))
        names);
  `Ok ()

let quick_arg =
  Arg.(
    value & flag
    & info [ "quick" ] ~doc:"Skip the slow sections (fig12, table2, soa_dnn).")

let sections_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"SECTION"
         ~doc:"Sections to print (default: all).")

let () =
  let info =
    Cmd.info "promise-report" ~version:P.version
      ~doc:"regenerate the paper's evaluation tables and figures"
  in
  exit
    (Cmd.eval (Cmd.v info Term.(ret (const run $ quick_arg $ sections_arg))))
