(* The serving layer: bounded-queue admission (typed rejection +
   incident), coalescing (flush-by-size, flush-by-deadline on a fake
   clock), per-request watchdog timeouts, the batched ≡ single
   bit-identity contract through the whole service path (noisy twin
   machines), percentile math of the log-linear histogram, the bounded
   FIFO's accounting, the compilation cache's LRU eviction, and the
   PROMISE_SERVE_* environment validation. *)

module P = Promise
module Serve = P.Serve
module Qb = P.Queue_bounded
module H = P.Histogram
module Pipeline = P.Compiler.Pipeline
module Cache = Pipeline.Cache
module Dsl = P.Ir.Dsl
module E = P.Error

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let fok = function Ok v -> v | Error e -> Alcotest.fail (E.to_string e)

let code_of = function
  | Ok _ -> Alcotest.fail "expected a typed error"
  | Error (e : E.t) -> e.E.code

(* ------------------------------------------------------------------ *)
(* Queue_bounded                                                        *)
(* ------------------------------------------------------------------ *)

let test_queue_fifo_and_rejection () =
  let q = fok (Qb.create ~capacity:2) in
  check int "capacity" 2 (Qb.capacity q);
  fok (Qb.try_push q 1);
  fok (Qb.try_push q 2);
  (match Qb.try_push q 3 with
  | Error e ->
      check bool "capacity code" true (e.E.code = E.Capacity);
      check bool "depth in context" true
        (List.mem_assoc "depth" e.E.context)
  | Ok () -> Alcotest.fail "third push must be rejected");
  check (Alcotest.option int) "fifo pop 1" (Some 1) (Qb.pop_opt q);
  check (Alcotest.option int) "fifo pop 2" (Some 2) (Qb.pop_opt q);
  check (Alcotest.option int) "empty" None (Qb.pop_opt q);
  let s = Qb.stats q in
  check int "pushed" 2 s.Qb.pushed;
  check int "rejected" 1 s.Qb.rejected;
  check int "popped" 2 s.Qb.popped;
  check int "max depth" 2 s.Qb.max_depth

let test_queue_validation () =
  check bool "capacity 0 rejected" true
    (code_of (Qb.create ~capacity:0) = E.Invalid_operand);
  check bool "huge capacity rejected" true
    (code_of (Qb.create ~capacity:2_000_000) = E.Invalid_operand);
  let q = fok (Qb.create ~capacity:8) in
  List.iter (fun v -> fok (Qb.try_push q v)) [ 1; 2; 3; 4; 5 ];
  check (Alcotest.list int) "drain max" [ 1; 2 ] (Qb.drain ~max:2 q);
  check (Alcotest.list int) "drain rest" [ 3; 4; 5 ] (Qb.drain q)

(* ------------------------------------------------------------------ *)
(* Histogram                                                            *)
(* ------------------------------------------------------------------ *)

let test_histogram_exact_small () =
  let h = H.create () in
  for v = 1 to 50 do
    H.add h (float_of_int v)
  done;
  check int "count" 50 (H.count h);
  (* nearest rank: rank = ceil (q * 50); values below 64 are exact *)
  check (Alcotest.float 0.0) "p50" 25.0 (H.percentile h 0.5);
  check (Alcotest.float 0.0) "p0 is rank 1" 1.0 (H.percentile h 0.0);
  check (Alcotest.float 0.0) "p100" 50.0 (H.percentile h 1.0);
  check (Alcotest.float 0.0) "p99 rank 50" 50.0 (H.percentile h 0.99);
  check (Alcotest.float 0.0) "p98 rank 49" 49.0 (H.percentile h 0.98);
  check (Alcotest.float 1e-9) "mean" 25.5 (H.mean h);
  check (Alcotest.float 0.0) "min" 1.0 (H.min_value h);
  check (Alcotest.float 0.0) "max" 50.0 (H.max_value h);
  H.clear h;
  check int "cleared" 0 (H.count h);
  check (Alcotest.float 0.0) "empty percentile" 0.0 (H.percentile h 0.5)

let test_histogram_log_bounds () =
  (* above 64 a reported percentile is the bucket's upper bound: never
     below the sample, and within 1/32 relative width above it *)
  List.iter
    (fun v ->
      let h = H.create () in
      H.add h (float_of_int v);
      let p = H.percentile h 1.0 in
      check bool
        (Printf.sprintf "p100(%d) >= sample" v)
        true
        (p >= float_of_int v);
      check bool
        (Printf.sprintf "p100(%d) within 1/32" v)
        true
        (p <= float_of_int v *. (1.0 +. 1.0 /. 32.0)))
    [ 64; 100; 1000; 4095; 65_537; 1_000_000_000 ];
  let h = H.create () in
  H.add h (-5.0);
  check (Alcotest.float 0.0) "negative clamps to 0" 0.0 (H.percentile h 1.0);
  H.add h 1000.0;
  let total = List.fold_left (fun a (_, c) -> a + c) 0 (H.buckets h) in
  check int "buckets account for every sample" 2 total

(* ------------------------------------------------------------------ *)
(* Pipeline.Cache LRU eviction                                          *)
(* ------------------------------------------------------------------ *)

let kernel_of_rows rows =
  Dsl.kernel
    ~name:(Printf.sprintf "serve_lru_%d" rows)
    ~decls:
      [
        Dsl.matrix "W" ~rows ~cols:128;
        Dsl.vector "x" ~len:128;
        Dsl.out_vector "out" ~len:rows;
      ]
    [
      Dsl.for_store ~iterations:rows ~out:"out" (Dsl.l1_distance "W" "x");
      Dsl.argmin "out";
    ]

let with_bounded_cache cap f =
  Cache.clear ();
  Cache.set_capacity (Some cap);
  Fun.protect
    ~finally:(fun () ->
      Cache.set_capacity None;
      Cache.clear ())
    f

let test_cache_lru_eviction () =
  with_bounded_cache 2 (fun () ->
      let a = kernel_of_rows 8
      and b = kernel_of_rows 16
      and c = kernel_of_rows 24 in
      let ga = fok (Pipeline.compile a) in
      let _gb = fok (Pipeline.compile b) in
      (* hit A: refreshes its recency, so B is now the LRU entry *)
      let ga2 = fok (Pipeline.compile a) in
      check bool "hit serves the identical graph" true (ga == ga2);
      let _gc = fok (Pipeline.compile c) in
      let s = Cache.stats () in
      check int "one eviction at capacity 2" 1 s.Cache.evictions;
      check int "entries bounded" 2 s.Cache.entries;
      (* A survived (recency refreshed): compiling it again is a hit *)
      let before = (Cache.stats ()).Cache.hits in
      let ga3 = fok (Pipeline.compile a) in
      check bool "A retained after eviction" true (ga == ga3);
      check int "A was a cache hit" (before + 1) (Cache.stats ()).Cache.hits;
      (* B was evicted: recompiling is a miss, and the result is equal *)
      let misses_before = (Cache.stats ()).Cache.misses in
      let gb2 = fok (Pipeline.compile b) in
      check int "B recompiles as a miss" (misses_before + 1)
        (Cache.stats ()).Cache.misses;
      let gb3 = fok (Pipeline.compile b) in
      check bool "recompiled B is served from cache" true (gb2 == gb3))

let test_cache_capacity_validation () =
  (match Cache.set_capacity (Some 0) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "capacity 0 must raise");
  Cache.set_capacity (Some 3);
  check (Alcotest.option int) "capacity readable" (Some 3) (Cache.capacity ());
  Cache.set_capacity None;
  check (Alcotest.option int) "unbounded again" None (Cache.capacity ())

(* ------------------------------------------------------------------ *)
(* Serve engine (fake clock)                                            *)
(* ------------------------------------------------------------------ *)

let mf = lazy (P.Benchmarks.matched_filter ())

let noisy_model () =
  Serve.model_of_benchmark ~noise_seed:(Some 42) (Lazy.force mf)

let quiet_model () = Serve.model_of_benchmark (Lazy.force mf)

let engine ?deadline_ms ?(mode = Serve.Batched) ?(queue = 16) ?(batch_max = 4)
    ?(flush_us = 1000) ?incidents ~clock model =
  let outs = ref [] in
  let eng =
    fok
      (Serve.create ~clock ?incidents ?deadline_ms ~mode ~queue ~batch_max
         ~flush_us
         ~respond:(fun o -> outs := o :: !outs)
         [ model ])
  in
  (eng, fun () -> List.rev !outs)

let test_admission_overflow () =
  let buf = Buffer.create 256 in
  let incidents = P.Incident.to_buffer buf in
  let clock () = 0L in
  let eng, outs =
    engine ~clock ~queue:2 ~batch_max:64 ~incidents (quiet_model ())
  in
  let name = Serve.model_name (quiet_model ()) in
  fok (Serve.submit eng ~rid:0 ~model:name);
  fok (Serve.submit eng ~rid:1 ~model:name);
  check bool "third submit rejected with Capacity" true
    (code_of (Serve.submit eng ~rid:2 ~model:name) = E.Capacity);
  check bool "unknown model rejected as Invalid_operand" true
    (code_of (Serve.submit eng ~rid:3 ~model:"nope") = E.Invalid_operand);
  let s = Serve.stats eng in
  check int "submitted" 2 s.Serve.submitted;
  check int "rejected counts both causes" 2 s.Serve.rejected;
  check bool "admission-reject incidents logged" true
    (P.Incident.count incidents >= 2);
  check bool "incident kind on the wire" true
    (let all = Buffer.contents buf in
     let rec occurrences i acc =
       match String.index_from_opt all i 'a' with
       | None -> acc
       | Some j ->
           if
             j + 16 <= String.length all
             && String.sub all j 16 = "admission-reject"
           then occurrences (j + 1) (acc + 1)
           else occurrences (j + 1) acc
     in
     occurrences 0 0 = 2);
  check int "nothing dispatched yet" 0 (List.length (outs ()))

let test_flush_by_size () =
  let clock () = 0L in
  let m = quiet_model () in
  let name = Serve.model_name m in
  let eng, outs = engine ~clock ~batch_max:3 m in
  for rid = 0 to 2 do
    fok (Serve.submit eng ~rid ~model:name)
  done;
  Serve.pump eng;
  (* batch_max reached: dispatched with no clock advance, no flush_due *)
  let os = outs () in
  check int "three outcomes" 3 (List.length os);
  List.iteri
    (fun i o ->
      check int "arrival order" i o.Serve.o_rid;
      let r = fok o.Serve.o_result in
      check int "rode a 3-decision batch" 3 r.Serve.batch;
      check bool "non-empty values" true (Array.length r.Serve.values > 0))
    os;
  check int "one coalesced dispatch" 1 (Serve.stats eng).Serve.batches

let test_flush_by_deadline () =
  let now = ref 0L in
  let clock () = !now in
  let m = quiet_model () in
  let name = Serve.model_name m in
  let eng, outs = engine ~clock ~batch_max:64 ~flush_us:1000 m in
  fok (Serve.submit eng ~rid:0 ~model:name);
  now := 400_000L;
  fok (Serve.submit eng ~rid:1 ~model:name);
  Serve.pump eng;
  (* deadline = oldest arrival + flush_us: 0 + 1_000_000 ns *)
  check bool "deadline anchored to the oldest request" true
    (Serve.next_deadline_ns eng = Some 1_000_000L);
  Serve.flush_due eng;
  check int "not due yet" 0 (List.length (outs ()));
  now := 999_999L;
  Serve.flush_due eng;
  check int "still not due" 0 (List.length (outs ()));
  now := 1_000_000L;
  Serve.flush_due eng;
  let os = outs () in
  check int "flushed at the deadline" 2 (List.length os);
  List.iter
    (fun o -> check int "coalesced pair" 2 (fok o.Serve.o_result).Serve.batch)
    os;
  check bool "no pending deadline left" true
    (Serve.next_deadline_ns eng = None)

let test_watchdog_timeout () =
  let now = ref 0L in
  let clock () = !now in
  let buf = Buffer.create 256 in
  let incidents = P.Incident.to_buffer buf in
  let m = quiet_model () in
  let name = Serve.model_name m in
  let eng, outs =
    engine ~clock ~batch_max:64 ~flush_us:50_000 ~deadline_ms:1.0 ~incidents m
  in
  fok (Serve.submit eng ~rid:0 ~model:name);
  Serve.pump eng;
  (* the watchdog tightens the flush horizon: due at 1 ms, not 50 ms *)
  check bool "watchdog bounds the deadline" true
    (Serve.next_deadline_ns eng = Some 1_000_000L);
  now := 5_000_000L;
  Serve.flush_due eng;
  (match outs () with
  | [ o ] ->
      check bool "typed Timeout" true (code_of o.Serve.o_result = E.Timeout)
  | os -> Alcotest.failf "expected one timeout outcome, got %d" (List.length os));
  let s = Serve.stats eng in
  check int "timeout counted" 1 s.Serve.timeouts;
  check int "nothing served" 0 s.Serve.served;
  check bool "timeout incident logged" true (P.Incident.count incidents >= 1)

(* Batched ≡ Single through the full service path, on NOISY twin
   machines: the k-th served decision must consume the machine's RNG
   streams exactly as the k-th sequential single execution. *)
let test_batched_equals_single_bitwise () =
  let n = 10 in
  let run mode =
    let clock () = 0L in
    let m = noisy_model () in
    let name = Serve.model_name m in
    let eng, outs = engine ~clock ~mode ~batch_max:4 ~queue:16 m in
    for rid = 0 to n - 1 do
      fok (Serve.submit eng ~rid ~model:name)
    done;
    Serve.pump eng;
    Serve.flush_all eng;
    let os = outs () in
    check int "all served" n (List.length os);
    List.map
      (fun o ->
        (o.Serve.o_rid, Array.map Int64.bits_of_float (fok o.Serve.o_result).Serve.values))
      os
  in
  let batched = run Serve.Batched and single = run Serve.Single in
  List.iter2
    (fun (rid_b, vb) (rid_s, vs) ->
      check int "same rid order" rid_b rid_s;
      check int "same emission count" (Array.length vb) (Array.length vs);
      Array.iteri
        (fun i b ->
          check bool
            (Printf.sprintf "rid %d value %d bitwise equal" rid_b i)
            true
            (Int64.equal b vs.(i)))
        vb)
    batched single

let test_create_validation () =
  let respond _ = () in
  let m () = quiet_model () in
  let mk ?(queue = 4) ?(batch_max = 4) ?(flush_us = 1000) models =
    Serve.create ~queue ~batch_max ~flush_us ~respond models
  in
  check bool "batch_max 0" true
    (code_of (mk ~batch_max:0 [ m () ]) = E.Invalid_operand);
  check bool "batch_max 4097" true
    (code_of (mk ~batch_max:4097 [ m () ]) = E.Invalid_operand);
  check bool "flush_us 0" true
    (code_of (mk ~flush_us:0 [ m () ]) = E.Invalid_operand);
  check bool "queue 0" true (code_of (mk ~queue:0 [ m () ]) = E.Invalid_operand);
  check bool "no models" true (code_of (mk []) = E.Invalid_operand);
  check bool "duplicate models" true
    (code_of (mk [ m (); m () ]) = E.Invalid_operand)

(* The in-process load generator end to end (real clock, small): both
   modes serve everything and produce the same digest. *)
let test_load_run_identity () =
  let run mode =
    fok
      (Serve.load_run ~mode ~queue:64 ~batch_max:8 ~flush_us:1000 ~requests:32
         ~load:(Serve.Closed_loop 16) ~model:noisy_model ())
  in
  let b = run Serve.Batched and s = run Serve.Single in
  check int "batched served all" 32 b.Serve.l_served;
  check int "single served all" 32 s.Serve.l_served;
  check bool "digests equal across modes" true
    (String.equal b.Serve.l_digest s.Serve.l_digest);
  check bool "batched coalesced" true (b.Serve.l_mean_batch > 1.0);
  check (Alcotest.float 0.0) "single never coalesces" 1.0 s.Serve.l_max_batch

(* ------------------------------------------------------------------ *)
(* PROMISE_SERVE_* environment validation                               *)
(* ------------------------------------------------------------------ *)

let test_env_validation () =
  let with_env name value f =
    Unix.putenv name value;
    Fun.protect ~finally:(fun () -> Unix.putenv name "") f
  in
  List.iter
    (fun (name, bad, good) ->
      with_env name bad (fun () ->
          match P.check_env () with
          | Ok () -> Alcotest.failf "%s=%s must be rejected" name bad
          | Error e ->
              check bool
                (name ^ " error names the variable")
                true
                (let s = E.to_string e in
                 let n = String.length name in
                 let rec has i =
                   i + n <= String.length s
                   && (String.sub s i n = name || has (i + 1))
                 in
                 has 0));
      with_env name good (fun () -> fok (P.check_env ())))
    [
      ("PROMISE_SERVE_QUEUE", "0", "256");
      ("PROMISE_SERVE_QUEUE", "1048577", "1");
      ("PROMISE_SERVE_BATCH", "4097", "64");
      ("PROMISE_SERVE_BATCH", "abc", "4096");
      ("PROMISE_SERVE_FLUSH_US", "0", "2000");
      ("PROMISE_SERVE_FLUSH_US", "10000001", "1");
      ("PROMISE_SERVE_BREAKER_THRESHOLD", "0", "8");
      ("PROMISE_SERVE_BREAKER_THRESHOLD", "10001", "1");
      ("PROMISE_SERVE_DWELL_BUDGET_US", "abc", "3000");
      ("PROMISE_FAILPOINTS", "bogus", "ipc.read:fail_prob=0.1");
      ("PROMISE_FAILPOINTS", "ipc.read:fail_prob=2", "serve.flush:off");
    ]

let () =
  Alcotest.run "serve"
    [
      ( "queue_bounded",
        [
          Alcotest.test_case "fifo and typed rejection" `Quick
            test_queue_fifo_and_rejection;
          Alcotest.test_case "validation and drain" `Quick
            test_queue_validation;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "exact small-value percentiles" `Quick
            test_histogram_exact_small;
          Alcotest.test_case "log-bucket upper bounds" `Quick
            test_histogram_log_bounds;
        ] );
      ( "cache_lru",
        [
          Alcotest.test_case "LRU eviction with recency refresh" `Quick
            test_cache_lru_eviction;
          Alcotest.test_case "capacity validation" `Quick
            test_cache_capacity_validation;
        ] );
      ( "engine",
        [
          Alcotest.test_case "admission overflow" `Quick
            test_admission_overflow;
          Alcotest.test_case "flush by size" `Quick test_flush_by_size;
          Alcotest.test_case "flush by deadline (fake clock)" `Quick
            test_flush_by_deadline;
          Alcotest.test_case "watchdog timeout" `Quick test_watchdog_timeout;
          Alcotest.test_case "batched = single, bitwise, noisy twins" `Quick
            test_batched_equals_single_bitwise;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "load_run identity" `Quick test_load_run_identity;
        ] );
      ( "environment",
        [ Alcotest.test_case "PROMISE_SERVE_*" `Quick test_env_validation ] );
    ]
