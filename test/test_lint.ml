(* Lint tests: the Diag core, the three analysis passes (Task-ISA
   verifier, SSA validator, interval overflow analysis), the report
   driver, and the clean-lint property over random DSL kernels.

   Mutation style: each seeded defect must be caught with its exact
   documented diagnostic code (ARCHITECTURE §10). *)

open Promise.Ir
open Promise.Isa
module P = Promise
module Diag = P.Diag
module Ssa_check = P.Analysis.Ssa_check
module Isa_check = P.Analysis.Isa_check
module Interval = P.Analysis.Interval
module Dataflow = P.Analysis.Dataflow
module Liveness = P.Analysis.Liveness
module Regpressure = P.Analysis.Regpressure
module Timing_check = P.Analysis.Timing_check
module Lint = P.Analysis.Lint
module B = P.Benchmarks
module Precision = P.Compiler.Precision
module Runtime = P.Compiler.Runtime
module Machine = P.Arch.Machine

let check = Alcotest.check
let fail = Alcotest.fail
let bool = Alcotest.bool
let int = Alcotest.int
let str = Alcotest.string

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  n = 0 || go 0

let codes ds = List.map Diag.code ds

let has_code c ds =
  if not (List.mem c (codes ds)) then
    fail
      (Printf.sprintf "expected %s, got [%s]" c
         (String.concat "; " (List.map Diag.to_string ds)))

let only_code c ds =
  has_code c ds;
  check int (c ^ " is the only diagnostic") 1 (List.length ds)

(* ------------------------------------------------------------------ *)
(* Diag core                                                           *)
(* ------------------------------------------------------------------ *)

let test_diag_render () =
  let d = Diag.errorf ~code:"P-ISA-003" ~span:(Diag.Task 2) "dropped" in
  check str "render" "[P-ISA-003] dropped" (Diag.render d);
  check str "to_string" "error[P-ISA-003] task 2: dropped" (Diag.to_string d);
  check bool "is_error" true (Diag.is_error d);
  let w = Diag.warningf ~code:"P-OVF-002" "w" in
  check int "count_errors" 1 (Diag.count_errors [ w; d ]);
  check int "count_warnings" 1 (Diag.count_warnings [ w; d ])

let test_diag_sort () =
  let at span code = Diag.errorf ~code ~span "x" in
  let sorted =
    Diag.sort
      [ at (Diag.Task 3) "P-ISA-001"; at (Diag.Task 1) "P-ISA-006";
        at (Diag.Task 1) "P-ISA-002" ]
  in
  check bool "span order, then code" true
    (codes sorted = [ "P-ISA-002"; "P-ISA-006"; "P-ISA-001" ])

let test_diag_to_error () =
  let d = Diag.errorf ~code:"P-TSK-001" "swing out of range" in
  let e = Diag.to_error ~layer:"isa" d in
  let s = P.Error.to_string e in
  check bool "code survives in the typed error" true
    (contains ~sub:"P-TSK-001" s)

let test_diag_json () =
  let d = Diag.errorf ~code:"P-SSA-006" ~span:(Diag.Instr { block = "b"; vreg = 3 }) {|say "hi"|} in
  let j = Diag.to_json d in
  check bool "code in json" true (contains ~sub:{|"code":"P-SSA-006"|} j);
  check bool "message escaped" true (contains ~sub:{|say \"hi\"|} j)

(* ------------------------------------------------------------------ *)
(* Task-level mutations: assembler + per-Task validation codes         *)
(* ------------------------------------------------------------------ *)

let parse_task_code line =
  match Asm.parse_task line with
  | Ok _ -> fail ("expected a diagnostic for: " ^ line)
  | Error d -> Diag.code d

let test_task_mutations () =
  List.iter
    (fun (line, code) -> check str line code (parse_task_code line))
    [
      ("task c1=bogus", "P-ASM-001");
      ("task c1=aREAD c2=square.avd avd c3=ADC", "P-ASM-001");
      ("task c1=aREAD c2=square.avd c3=ADC c4=accumulate swing=9", "P-TSK-001");
      ("task c1=aREAD c2=square.avd c3=ADC c4=accumulate w=600", "P-TSK-001");
      ("task c1=read rpt=200", "P-TSK-002");
      ("task c1=read mb=5", "P-TSK-002");
      ("task c1=read c2=square c3=ADC c4=min", "P-TSK-003");
    ]

(* ------------------------------------------------------------------ *)
(* Whole-program ISA mutations                                         *)
(* ------------------------------------------------------------------ *)

let program_of_lines lines =
  match Asm.parse_program (String.concat "\n" lines) with
  | Ok tasks -> tasks
  | Error msg -> fail msg

let isa_diags lines = Isa_check.check_program (program_of_lines lines)

let test_isa_clean () =
  check int "well-formed single task is clean" 0
    (List.length
       (isa_diags [ "task c1=aREAD c2=square.avd c3=ADC c4=accumulate" ]))

let test_isa_mutations () =
  List.iter
    (fun (lines, code) -> only_code code (isa_diags lines))
    [
      (* dead X-REG store: nothing after the write reads X *)
      ( [ "task c1=aREAD c2=square.avd c3=ADC c4=sigmoid des=xreg" ],
        "P-ISA-001" );
      (* W window walks off the 128 word rows of a bank *)
      ( [ "task c1=aREAD c2=square.avd c3=ADC c4=accumulate w=100 rpt=59" ],
        "P-ISA-002" );
      (* analog aggregate dropped at the Task boundary (no ADC) *)
      ([ "task c1=aREAD c2=square c4=accumulate" ], "P-ISA-003");
      (* 3 iterations do not divide into ACC_NUM+1 = 2 groups *)
      ( [ "task c1=aREAD c2=square.avd c3=ADC c4=accumulate acc=1 rpt=2" ],
        "P-ISA-004" );
      (* X circulates out of phase with the accumulation group *)
      ( [ "task c1=aADD c2=none.avd c3=ADC c4=accumulate acc=1 rpt=3 xprd=0" ],
        "P-ISA-005" );
      (* accumulator chain never drains *)
      ( [ "task c1=aREAD c2=square.avd c3=ADC c4=accumulate des=acc" ],
        "P-ISA-006" );
      (* chain members disagree on SWING *)
      ( [
          "task c1=aREAD c2=square.avd c3=ADC c4=accumulate des=acc swing=7";
          "task c1=aREAD c2=square.avd c3=ADC c4=accumulate des=acc swing=3";
          "task c1=aREAD c2=square.avd c3=ADC c4=accumulate des=out";
        ],
        "P-ISA-006" );
    ]

let test_isa_xreg_consumed_is_clean () =
  (* the same X-REG store is fine when a later Task reads X *)
  check int "consumed store is clean" 0
    (List.length
       (isa_diags
          [
            "task c1=aREAD c2=square.avd c3=ADC c4=sigmoid des=xreg";
            "task c1=aADD c2=none.avd c3=ADC c4=accumulate acc=0 xprd=0";
          ]))

(* ------------------------------------------------------------------ *)
(* SSA validator mutations                                             *)
(* ------------------------------------------------------------------ *)

let blk ~label ~first instrs terminator =
  { Ssa.label; first_index = first; instrs = Array.of_list instrs; terminator }

let func ?(params = [ ("x", Ssa.Vector 4) ]) blocks =
  { Ssa.name = "t"; params; blocks }

let test_ssa_mutations () =
  let cases =
    [
      ( "duplicate label",
        func
          [
            blk ~label:"entry" ~first:0 [] (Ssa.Br "entry");
            blk ~label:"entry" ~first:0 [] (Ssa.Ret None);
          ],
        "P-SSA-001" );
      ( "undefined vreg",
        func
          [ blk ~label:"entry" ~first:0
              [ Ssa.Load { ptr = Ssa.Vreg 99 } ]
              (Ssa.Ret None) ],
        "P-SSA-002" );
      ( "unknown argument",
        func
          [ blk ~label:"entry" ~first:0
              [ Ssa.Reduce { op = Ssa.Rsum; operand = Ssa.Arg "nope" } ]
              (Ssa.Ret None) ],
        "P-SSA-003" );
      ( "branch to unknown label",
        func [ blk ~label:"entry" ~first:0 [] (Ssa.Br "nowhere") ],
        "P-SSA-004" );
      ( "def does not dominate use",
        func
          [
            blk ~label:"entry" ~first:0 []
              (Ssa.Cond_br
                 { cond = Ssa.Const_int 1; if_true = "a"; if_false = "b" });
            blk ~label:"a" ~first:0
              [ Ssa.Reduce { op = Ssa.Rsum; operand = Ssa.Arg "x" } ]
              (Ssa.Br "b");
            blk ~label:"b" ~first:1
              [ Ssa.Scalar_unop { op = Ssa.Uneg; operand = Ssa.Vreg 0 } ]
              (Ssa.Ret None);
          ],
        "P-SSA-006" );
      ( "phi with a non-predecessor incoming label",
        func
          [
            blk ~label:"entry" ~first:0 [] (Ssa.Br "l");
            blk ~label:"l" ~first:0
              [ Ssa.Phi { incoming = [ ("nowhere", Ssa.Const_int 0) ] } ]
              (Ssa.Ret None);
          ],
        "P-SSA-007" );
      ( "vector length mismatch",
        func
          ~params:[ ("W", Ssa.Matrix (2, 8)); ("V", Ssa.Matrix (2, 4)) ]
          [
            blk ~label:"entry" ~first:0
              [
                Ssa.Getindex { matrix = Ssa.Arg "W"; index = Ssa.Const_int 0 };
                Ssa.Getindex { matrix = Ssa.Arg "V"; index = Ssa.Const_int 0 };
                Ssa.Vec_binop { op = Ssa.Vadd; lhs = Ssa.Vreg 0; rhs = Ssa.Vreg 1 };
              ]
              (Ssa.Ret None);
          ],
        "P-SSA-008" );
    ]
  in
  List.iter
    (fun (what, f, code) ->
      let ds = Ssa_check.validate f in
      if not (List.mem code (codes ds)) then
        fail
          (Printf.sprintf "%s: expected %s, got [%s]" what code
             (String.concat "; " (List.map Diag.to_string ds))))
    cases

let test_ssa_builder_missing_terminator () =
  (* satellite (f): the Builder rejects an unterminated block eagerly,
     tagged with the validator's code *)
  let b = Ssa.Builder.create ~name:"g" ~params:[] in
  Ssa.Builder.block b "entry";
  match Ssa.Builder.finish b with
  | exception Invalid_argument msg ->
      check bool "message carries P-SSA-005" true
        (contains ~sub:"P-SSA-005" msg)
  | _ -> fail "expected Invalid_argument"

let test_ssa_frontend_output_validates () =
  let k =
    Dsl.kernel ~name:"clean"
      ~decls:
        [ Dsl.matrix "W" ~rows:4 ~cols:16; Dsl.vector "x" ~len:16;
          Dsl.out_vector "out" ~len:4 ]
      [ Dsl.for_store ~iterations:4 ~out:"out" (Dsl.dot "W" "x") ]
  in
  check int "Dsl.lower output is SSA-clean" 0
    (List.length (Ssa_check.validate (Dsl.lower k)))

(* ------------------------------------------------------------------ *)
(* Interval overflow analysis                                          *)
(* ------------------------------------------------------------------ *)

let graph_of_tasks tasks =
  match Graph.of_tasks tasks with Ok g -> g | Error msg -> fail msg

let test_interval_saturation () =
  (* 2048-element rows need 2 segments on 8 banks, so the TH stage
     accumulates two ±1 samples: the non-terminal ReLU routes [0, 2]
     into an 8-bit X-REG and saturates; its consumer inherits the
     clamped value (warning). *)
  let layer1 =
    Abstract_task.make ~name:"layer1" ~w:"W1" ~x:"x" ~output:"h"
      ~vec_op:Abstract_task.Vo_mul_signed ~red_op:Abstract_task.Ro_sum
      ~digital_op:Abstract_task.Do_relu ~vector_len:2048 ~loop_iterations:4 ()
  in
  let layer2 =
    Abstract_task.make ~name:"layer2" ~w:"W2" ~x:"h" ~output:"y"
      ~vec_op:Abstract_task.Vo_mul_signed ~red_op:Abstract_task.Ro_sum
      ~digital_op:Abstract_task.Do_sigmoid ~vector_len:4 ~loop_iterations:2 ()
  in
  let reports, ds = Interval.analyze (graph_of_tasks [ layer1; layer2 ]) in
  has_code "P-OVF-001" ds;
  has_code "P-OVF-002" ds;
  check int "one error, one warning" 1 (Diag.count_errors ds);
  check int "one warning" 1 (Diag.count_warnings ds);
  let r1 = List.find (fun r -> r.Interval.name = "layer1") reports in
  check bool "layer1 saturates" true r1.Interval.saturates;
  check bool "layer1 interval clamped for consumers" true
    (r1.Interval.emitted.Interval.hi <= 1.0)

let test_interval_terminal_is_clean () =
  (* same geometry, but the ReLU is terminal (output buffer, not an
     8-bit register) — nothing to saturate *)
  let t =
    Abstract_task.make ~name:"only" ~w:"W" ~x:"x" ~output:"y"
      ~vec_op:Abstract_task.Vo_mul_signed ~red_op:Abstract_task.Ro_sum
      ~digital_op:Abstract_task.Do_relu ~vector_len:2048 ~loop_iterations:4 ()
  in
  let _, ds = Interval.analyze (graph_of_tasks [ t ]) in
  check int "terminal relu is clean" 0 (List.length ds)

let test_interval_check_stats () =
  only_code "P-OVF-003"
    (Interval.check_stats ~ea:1e9 ~ew:1e9 ~pm:1e-6);
  check int "feasible stats are clean" 0
    (List.length (Interval.check_stats ~ea:0.5 ~ew:0.5 ~pm:0.1))

let test_min_bits_matches_precision () =
  (* the analysis reimplements the compiler's Sakr solve (the
     dependency points compiler -> analysis); the two must agree *)
  List.iter
    (fun ea ->
      List.iter
        (fun ew ->
          List.iter
            (fun pm ->
              let ours = Interval.min_bits ~ea ~ew ~pm in
              let theirs =
                Precision.min_activation_bits { Precision.ea; ew } ~pm
                  ~bw:Interval.weight_bits
              in
              match (ours, theirs) with
              | Ok a, Ok b ->
                  check int
                    (Printf.sprintf "ba at ea=%g ew=%g pm=%g" ea ew pm)
                    b a
              | Error _, Error _ -> ()
              | _ ->
                  fail
                    (Printf.sprintf "feasibility disagrees at ea=%g ew=%g pm=%g"
                       ea ew pm))
            [ 0.5; 0.01; 1e-4; 1e-8 ])
        [ 0.3; 2.0; 150.0 ])
    [ 0.3; 2.0; 150.0 ]

(* ------------------------------------------------------------------ *)
(* Dataflow framework                                                  *)
(* ------------------------------------------------------------------ *)

module Count = Dataflow.Make (struct
  type t = int

  let bottom = 0
  let equal = Int.equal
  let join = max
end)

let test_dataflow_sequence () =
  (* "count the nodes before/after me" over a 4-node straight line —
     pins the entry/exit convention and the boundary init in both
     directions *)
  let g = Dataflow.of_sequence 4 in
  let fwd =
    Count.solve ~direction:Dataflow.Forward ~graph:g
      ~transfer:(fun _ fact -> fact + 1)
      ()
  in
  check bool "forward entry facts" true
    (Array.to_list fwd.Count.entry = [ 0; 1; 2; 3 ]);
  check bool "forward exit facts" true
    (Array.to_list fwd.Count.exit = [ 1; 2; 3; 4 ]);
  let bwd =
    Count.solve ~direction:Dataflow.Backward ~graph:g
      ~transfer:(fun _ fact -> fact + 1)
      ()
  in
  check bool "backward exit facts" true
    (Array.to_list bwd.Count.exit = [ 3; 2; 1; 0 ]);
  check bool "backward entry facts" true
    (Array.to_list bwd.Count.entry = [ 4; 3; 2; 1 ])

let test_dataflow_divergence_cap () =
  (* an unbounded lattice on a cycle must hit the fuel cap, not hang *)
  let cyc =
    {
      Dataflow.n = 2;
      succs = (fun i -> [ (i + 1) mod 2 ]);
      preds = (fun i -> [ (i + 1) mod 2 ]);
    }
  in
  match
    Count.solve ~direction:Dataflow.Forward ~graph:cyc
      ~transfer:(fun _ fact -> fact + 1)
      ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> fail "expected the iteration cap to fire"

(* ------------------------------------------------------------------ *)
(* Liveness / dead code (P-DCE)                                        *)
(* ------------------------------------------------------------------ *)

let test_liveness_dead_pure () =
  (* seeded mutation: a pure reduce whose result is live nowhere *)
  let f =
    func
      [
        blk ~label:"entry" ~first:0
          [ Ssa.Reduce { op = Ssa.Rsum; operand = Ssa.Arg "x" } ]
          (Ssa.Ret None);
      ]
  in
  let ds = Liveness.check f in
  only_code "P-DCE-001" ds;
  check int "dead code is a warning" 1 (Diag.count_warnings ds)

let test_liveness_used_is_clean () =
  (* the same reduce, but returned — a terminator use keeps it live *)
  let f =
    func
      [
        blk ~label:"entry" ~first:0
          [ Ssa.Reduce { op = Ssa.Rsum; operand = Ssa.Arg "x" } ]
          (Ssa.Ret (Some (Ssa.Vreg 0)));
      ]
  in
  check int "returned value is live" 0 (List.length (Liveness.check f))

let test_liveness_loop_phi () =
  (* a loop-carried induction variable: the increment's only use is
     the phi on the back edge, so phi-edge attribution must keep it
     live (no false P-DCE-001) *)
  let f =
    func
      [
        blk ~label:"entry" ~first:0 [] (Ssa.Br "head");
        blk ~label:"head" ~first:0
          [
            Ssa.Phi
              {
                incoming = [ ("entry", Ssa.Const_int 0); ("body", Ssa.Vreg 1) ];
              };
          ]
          (Ssa.Cond_br
             { cond = Ssa.Const_int 1; if_true = "body"; if_false = "exit" });
        blk ~label:"body" ~first:1
          [ Ssa.Int_binop { op = Ssa.Iadd; lhs = Ssa.Vreg 0; rhs = Ssa.Const_int 1 } ]
          (Ssa.Br "head");
        blk ~label:"exit" ~first:2 [] (Ssa.Ret (Some (Ssa.Vreg 0)));
      ]
  in
  check int "loop-carried phi operand is live" 0
    (List.length (Liveness.check f));
  let lv = Liveness.ssa_liveness f in
  (* the increment must be live out of the body (consumed by the phi
     at the end of that edge) *)
  check bool "phi use is live out of the predecessor" true
    (Liveness.IntSet.mem 1 lv.Liveness.live_out.(2))

let shadow_lines =
  [
    "task c1=aREAD c2=square.avd c3=ADC c4=sigmoid des=xreg";
    "task c1=aREAD c2=square.avd c3=ADC c4=sigmoid des=xreg";
    "task c1=aADD c2=none.avd c3=ADC c4=accumulate acc=0 xprd=0";
  ]

let test_liveness_shadowed_store () =
  (* seeded mutation: two X-REG stores, one reader — the first store
     can never be observed *)
  let ds = Liveness.check_program (program_of_lines shadow_lines) in
  only_code "P-DCE-002" ds;
  check int "shadowed store is an error" 1 (Diag.count_errors ds);
  (* P-ISA-001 stays silent (both stores have a later X reader), so
     the two codes never double-report *)
  check bool "no P-ISA-001 double fire" false
    (List.mem "P-ISA-001" (codes (isa_diags shadow_lines)));
  check int "store-then-read is clean" 0
    (List.length
       (Liveness.check_program
          (program_of_lines
             [ List.nth shadow_lines 0; List.nth shadow_lines 2 ])))

(* ------------------------------------------------------------------ *)
(* X-REG pressure (P-REG)                                              *)
(* ------------------------------------------------------------------ *)

(* [k] matrix rows all live at once: k Getindex defs, then a pairwise
   sum chain, then a store of the final sum — peak vector pressure is
   exactly [k]. *)
let pressure_func k =
  let rows =
    List.init k (fun j ->
        Ssa.Getindex { matrix = Ssa.Arg "W"; index = Ssa.Const_int j })
  in
  let gep =
    [ Ssa.Getelementptr { base = Ssa.Arg "out"; index = Ssa.Const_int 0 } ]
  in
  let adds =
    List.init (k - 1) (fun i ->
        let lhs = if i = 0 then Ssa.Vreg 0 else Ssa.Vreg (k + i) in
        Ssa.Vec_binop { op = Ssa.Vadd; lhs; rhs = Ssa.Vreg (i + 1) })
  in
  let final = if k = 1 then 0 else (2 * k) - 1 in
  func
    ~params:[ ("W", Ssa.Matrix (k, 8)); ("out", Ssa.Vector 8) ]
    [
      blk ~label:"entry" ~first:0
        (rows @ gep
        @ adds
        @ [ Ssa.Store { src = Ssa.Vreg final; ptr = Ssa.Vreg k } ])
        (Ssa.Ret None);
    ]

let test_pressure_overflow () =
  (* seeded mutation: 9 simultaneously-live vectors on an 8-deep file *)
  let deep = P.Arch.Params.xreg_depth in
  let ds = Regpressure.check_function (pressure_func (deep + 1)) in
  only_code "P-REG-001" ds;
  check int "pressure overflow is an error" 1 (Diag.count_errors ds);
  check int "exactly full is clean" 0
    (List.length (Regpressure.check_function (pressure_func deep)));
  check int "pressure func is valid SSA" 0
    (List.length (Ssa_check.validate (pressure_func (deep + 1))))

let test_allocation_overlap () =
  (* seeded mutation: two placements sharing banks 2-3 over cycles 5-9 *)
  let a ~index ~first_bank ~banks ~start_cycle ~finish_cycle =
    {
      Regpressure.index;
      level = 0;
      first_bank;
      banks;
      start_cycle;
      finish_cycle;
    }
  in
  let overlapping =
    [
      a ~index:0 ~first_bank:0 ~banks:4 ~start_cycle:0 ~finish_cycle:10;
      a ~index:1 ~first_bank:2 ~banks:4 ~start_cycle:5 ~finish_cycle:15;
    ]
  in
  only_code "P-REG-002" (Regpressure.check_allocation overlapping);
  check int "disjoint banks are clean" 0
    (List.length
       (Regpressure.check_allocation
          [
            a ~index:0 ~first_bank:0 ~banks:4 ~start_cycle:0 ~finish_cycle:10;
            a ~index:1 ~first_bank:4 ~banks:4 ~start_cycle:5 ~finish_cycle:15;
          ]));
  check int "disjoint cycles are clean" 0
    (List.length
       (Regpressure.check_allocation
          [
            a ~index:0 ~first_bank:0 ~banks:4 ~start_cycle:0 ~finish_cycle:10;
            (* half-open: starting exactly at the other's finish is fine *)
            a ~index:1 ~first_bank:2 ~banks:4 ~start_cycle:10 ~finish_cycle:15;
          ]))

(* ------------------------------------------------------------------ *)
(* Analog-dwell timing hazards (P-TIM)                                 *)
(* ------------------------------------------------------------------ *)

let test_timing_budget () =
  let b = Timing_check.leakage_budget_ns () in
  check bool "nominal budget is ~47 ns" true (b > 40.0 && b < 55.0);
  check bool "budget shrinks with excess leakage" true
    (Timing_check.leakage_budget_ns ~leakage_mult:10.0 () < b /. 9.0)

let test_timing_dwell () =
  (* seeded mutation: a 128-iteration accumulation on a single
     surviving ADC unit dwells far past the leakage budget *)
  let tasks =
    program_of_lines
      [ "task c1=aREAD c2=square.avd c3=ADC c4=accumulate rpt=127" ]
  in
  has_code "P-TIM-001" (Timing_check.check_program ~adc_units:1 tasks);
  check int "full ADC complement is clean" 0
    (List.length (Timing_check.check_program tasks));
  (* a 100x leakage fault blows the budget even without ADC stalls:
     an ACC_NUM=3 group dwells 3 x TP cycles before its single read *)
  let grouped =
    program_of_lines
      [ "task c1=aREAD c2=square.avd c3=ADC c4=accumulate acc=3 rpt=7" ]
  in
  check int "24-cycle dwell is within the nominal budget" 0
    (List.length (Timing_check.check_program grouped));
  has_code "P-TIM-001" (Timing_check.check_program ~leakage_mult:100.0 grouped)

let test_timing_chain_mismatch () =
  (* seeded mutation: accumulation-chain members at different TP *)
  let mismatched =
    program_of_lines
      [
        "task c1=aREAD c2=sign_mult.avd c3=ADC c4=accumulate des=acc";
        "task c1=aREAD c2=square.avd c3=ADC c4=accumulate des=acc";
        "task c1=aREAD c2=square.avd c3=ADC c4=accumulate";
      ]
  in
  has_code "P-TIM-002" (Timing_check.check_program mismatched);
  let uniform =
    program_of_lines
      [
        "task c1=aREAD c2=square.avd c3=ADC c4=accumulate des=acc";
        "task c1=aREAD c2=square.avd c3=ADC c4=accumulate des=acc";
        "task c1=aREAD c2=square.avd c3=ADC c4=accumulate";
      ]
  in
  check bool "uniform chain has no P-TIM-002" false
    (List.mem "P-TIM-002" (codes (Timing_check.check_program uniform)))

let test_timing_backlog () =
  (* seeded mutation: 2 surviving units x TP 8 = 16 < 138-cycle
     conversion — requests outrun the ADC *)
  let tasks =
    program_of_lines [ "task c1=aREAD c2=square.avd c3=ADC c4=accumulate" ]
  in
  let ds = Timing_check.check_program ~adc_units:2 tasks in
  has_code "P-TIM-003" ds;
  check int "backlog is a warning" 1 (Diag.count_warnings ds);
  check int "full complement is silent" 0
    (List.length (Timing_check.check_program tasks))

let test_timing_validation () =
  let tasks = program_of_lines [ "task c1=read" ] in
  let expect_invalid what f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> fail ("accepted " ^ what)
  in
  expect_invalid "adc_units 0" (fun () ->
      Timing_check.check_program ~adc_units:0 tasks);
  expect_invalid "batch 1" (fun () ->
      Timing_check.check_program ~batch:1 tasks);
  expect_invalid "leakage_mult 0" (fun () ->
      Timing_check.check_program ~leakage_mult:0.0 tasks)

(* ------------------------------------------------------------------ *)
(* Report driver                                                       *)
(* ------------------------------------------------------------------ *)

let test_driver_pasm_report () =
  let bad = "task c1=aREAD c2=square c4=accumulate\n" in
  let r = Lint.lint_pasm ~target:"bad.pasm" bad in
  check int "one error" 1 (Lint.errors r);
  check int "exit code 1" 1 (Lint.exit_code [ r ]);
  check bool "text names the target and line" true
    (contains ~sub:"bad.pasm: error[P-ISA-003] line 1" (Lint.render_text r));
  let j = Lint.render_json [ r ] in
  check bool "json carries the code" true (contains ~sub:"P-ISA-003" j)

let test_driver_clean_report () =
  let r = Lint.lint_pasm ~target:"ok.pasm" "task c1=read\n" in
  check int "clean" 0 (Lint.errors r + Lint.warnings r);
  check int "exit code 0" 0 (Lint.exit_code [ r ]);
  check str "summary" "0 error(s), 0 warning(s) in 1 target(s)"
    (Lint.summary [ r ])

let test_diag_fingerprint () =
  check str "digit runs collapse to #" "task # drifts # cycles"
    (Diag.skeleton "task 12 drifts 507 cycles");
  let at msg = Diag.warningf ~code:"P-TIM-003" ~span:(Diag.Task 3) "%s" msg in
  let d = at "dwell grows by 17 cycles" in
  let fp = Diag.fingerprint d in
  check int "16 hex chars" 16 (String.length fp);
  check bool "lowercase hex" true
    (String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       fp);
  check str "identity is digit-insensitive" fp
    (Diag.fingerprint (at "dwell grows by 399 cycles"));
  check bool "wording changes identity" true
    (fp <> Diag.fingerprint (at "dwell shrinks by 17 cycles"));
  check bool "span changes identity" true
    (fp <> Diag.fingerprint (Diag.with_span d (Diag.Task 4)));
  check bool "salt changes identity" true
    (Diag.fingerprint ~salt:"a.pasm" d <> Diag.fingerprint ~salt:"b.pasm" d)

let test_driver_dedupe () =
  let d = Diag.errorf ~code:"P-ISA-003" ~span:(Diag.Task 1) "dropped" in
  let w = Diag.warningf ~code:"P-OVF-002" ~span:(Diag.Task 0) "sat" in
  let r = Lint.make ~target:"t" [ d; w; d; d; w ] in
  check int "structural duplicates collapse" 2 (List.length r.Lint.diags);
  check bool "span-major stable order" true
    (codes r.Lint.diags = [ "P-OVF-002"; "P-ISA-003" ])

let test_driver_deny_and_budget () =
  let w = Diag.warningf ~code:"P-TIM-003" ~span:(Diag.Task 0) "backlog" in
  let rs = [ Lint.make ~target:"t" [ w ] ] in
  check int "warnings alone pass" 0 (Lint.exit_code rs);
  check int "over budget fails" 1 (Lint.exit_code ~max_warnings:0 rs);
  check int "within budget passes" 0 (Lint.exit_code ~max_warnings:1 rs);
  let denied = Lint.apply_deny ~deny:[ "P-TIM" ] rs in
  check int "denied warning is an error" 1 (Lint.total_errors denied);
  check int "denied warning fails the run" 1 (Lint.exit_code denied);
  check int "other prefixes untouched" 0
    (Lint.total_errors (Lint.apply_deny ~deny:[ "P-OVF" ] rs))

let test_driver_baseline () =
  let w =
    Diag.warningf ~code:"P-TIM-003" ~span:(Diag.Task 0) "backlog 17 cycles"
  in
  let e = Diag.errorf ~code:"P-TIM-001" ~span:(Diag.Task 2) "dwell" in
  let rs = [ Lint.make ~target:"a.pasm" [ w; e ] ] in
  let json = Lint.baseline_of_reports rs in
  (match Lint.parse_baseline json with
  | Error msg -> fail msg
  | Ok fps ->
      check int "two fingerprints recorded" 2 (List.length fps);
      let rs', n = Lint.apply_baseline ~baseline:fps rs in
      check int "both suppressed" 2 n;
      check int "nothing left" 0
        (Lint.total_errors rs' + Lint.total_warnings rs');
      (* exactly fingerprinted: a new span is a new diagnostic *)
      let moved =
        [ Lint.make ~target:"a.pasm" [ Diag.with_span w (Diag.Task 5) ] ]
      in
      let moved', m = Lint.apply_baseline ~baseline:fps moved in
      check int "moved diagnostic is not suppressed" 0 m;
      check int "it survives as a warning" 1 (Lint.total_warnings moved');
      (* but a digit-only message drift keeps its identity *)
      let drift =
        [
          Lint.make ~target:"a.pasm"
            [
              Diag.warningf ~code:"P-TIM-003" ~span:(Diag.Task 0)
                "backlog 99 cycles";
            ];
        ]
      in
      let _, k = Lint.apply_baseline ~baseline:fps drift in
      check int "digit drift stays suppressed" 1 k;
      (* the target is part of the identity *)
      let other = [ Lint.make ~target:"b.pasm" [ w ] ] in
      let _, j = Lint.apply_baseline ~baseline:fps other in
      check int "another target is not suppressed" 0 j);
  (match Lint.parse_baseline "{}" with
  | Error _ -> ()
  | Ok _ -> fail "parsed a baseline without a fingerprints key");
  match Lint.parse_baseline {|{"version":1,"fingerprints":[]}|} with
  | Ok [] -> ()
  | _ -> fail "an empty baseline must parse to an empty list"

let test_driver_sarif () =
  let w = Diag.warningf ~code:"P-TIM-003" ~span:(Diag.Line 4) "backlog" in
  let rs = [ Lint.make ~target:"a.pasm" [ w ] ] in
  let s = Lint.render_sarif rs in
  List.iter
    (fun sub -> check bool sub true (contains ~sub s))
    [
      {|"version":"2.1.0"|};
      {|"name":"promise-lint"|};
      {|"rules":[{"id":"P-TIM-003"}]|};
      {|"ruleId":"P-TIM-003"|};
      {|"level":"warning"|};
      {|"startLine":4|};
      {|"artifactLocation":{"uri":"a.pasm"}|};
      {|"partialFingerprints":{"promiseLint/v1":"|};
    ]

(* ------------------------------------------------------------------ *)
(* Environment validation of the PROMISE_LINT variables               *)
(* ------------------------------------------------------------------ *)

let with_env name value f =
  let old = try Some (Sys.getenv name) with Not_found -> None in
  Unix.putenv name value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv name (Option.value old ~default:""))
    f

let test_env_validation () =
  (with_env "PROMISE_LINT_BASELINE" "/nonexistent/lint-baseline.json"
     (fun () ->
       match P.check_env () with
       | Error _ -> ()
       | Ok () -> fail "check_env accepted a missing baseline file"));
  let tmp = Filename.temp_file "promise-baseline" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      with_env "PROMISE_LINT_BASELINE" tmp (fun () ->
          check bool "an existing baseline file validates" true
            (P.check_env () = Ok ())));
  with_env "PROMISE_LINT_DENY" "P-TIM,P-OVF" (fun () ->
      check bool "a prefix list validates" true (P.check_env () = Ok ()));
  List.iter
    (fun bad ->
      with_env "PROMISE_LINT_DENY" bad (fun () ->
          match P.check_env () with
          | Error _ -> ()
          | Ok () -> Alcotest.failf "check_env accepted PROMISE_LINT_DENY=%s" bad))
    [ "p-tim"; "P-TIM,,P-OVF"; "P TIM" ]

(* ------------------------------------------------------------------ *)
(* Clean-lint property and acceptance sweeps                           *)
(* ------------------------------------------------------------------ *)

(* mirror of promise-lint's kernel path, returning the diagnostics *)
let lint_kernel_diags k =
  let ssa = Dsl.lower k in
  let ssa_d =
    Ssa_check.validate ssa @ Liveness.check ssa
    @ Regpressure.check_function ssa
  in
  match Pattern.match_function ssa with
  | Error msg -> [ Diag.errorf ~code:"P-OVF-004" "no match: %s" msg ]
  | Ok graph -> (
      let _, ovf = Interval.analyze graph in
      match P.Compiler.Lower.program_of_graph graph with
      | Error e ->
          [ Diag.errorf ~code:"P-OVF-004" "%s" (P.Error.to_string e) ]
      | Ok prog ->
          let tasks = prog.Program.tasks in
          ssa_d @ ovf
          @ Isa_check.check_program tasks
          @ Liveness.check_program tasks
          @ Timing_check.check_program tasks)

(* random geometry shared by the soundness properties *)
let random_kernel (rows, cols, op) =
  let body =
    match op with
    | 0 -> Dsl.dot "W" "x"
    | 1 -> Dsl.l1_distance "W" "x"
    | _ -> Dsl.l2_distance "W" "x"
  in
  Dsl.kernel ~name:"prop"
    ~decls:
      [ Dsl.matrix "W" ~rows ~cols; Dsl.vector "x" ~len:cols;
        Dsl.out_vector "out" ~len:rows ]
    [ Dsl.for_store ~iterations:rows ~out:"out" body ]

(* ---- soundness: liveness covers every use ---- *)

let value_vregs vs =
  List.filter_map (function Ssa.Vreg r -> Some r | _ -> None) vs

let instr_values = function
  | Ssa.Getindex { matrix; index } -> [ matrix; index ]
  | Ssa.Vec_binop { lhs; rhs; _ }
  | Ssa.Int_binop { lhs; rhs; _ }
  | Ssa.Icmp { lhs; rhs; _ } ->
      [ lhs; rhs ]
  | Ssa.Vec_unop { operand; _ }
  | Ssa.Reduce { operand; _ }
  | Ssa.Scalar_unop { operand; _ } ->
      [ operand ]
  | Ssa.Load { ptr } -> [ ptr ]
  | Ssa.Getelementptr { base; index } -> [ base; index ]
  | Ssa.Store { src; ptr } -> [ src; ptr ]
  | Ssa.Phi { incoming } -> List.map snd incoming
  | Ssa.Call { args; _ } -> args

let term_values = function
  | Ssa.Br _ -> []
  | Ssa.Cond_br { cond; _ } -> [ cond ]
  | Ssa.Ret v -> Option.to_list v

(* Independent statement of soundness, checked against the solver's
   fixpoint: every vreg an instruction consumes is either defined
   earlier in the same block or live into the block; every phi operand
   is live out of its incoming predecessor. *)
let liveness_covers_uses f =
  let lv = Liveness.ssa_liveness f in
  let index_of = Hashtbl.create 8 in
  List.iteri
    (fun i (b : Ssa.block) -> Hashtbl.replace index_of b.Ssa.label i)
    f.Ssa.blocks;
  List.for_all Fun.id
    (List.mapi
       (fun bi (b : Ssa.block) ->
         let defined = ref Liveness.IntSet.empty in
         let ok_use r =
           Liveness.IntSet.mem r !defined
           || Liveness.IntSet.mem r lv.Liveness.live_in.(bi)
         in
         let instr_ok pos ins =
           let ok =
             match ins with
             | Ssa.Phi { incoming } ->
                 List.for_all
                   (fun (lbl, v) ->
                     match v with
                     | Ssa.Vreg r -> (
                         match Hashtbl.find_opt index_of lbl with
                         | Some pi ->
                             Liveness.IntSet.mem r lv.Liveness.live_out.(pi)
                         | None -> false)
                     | _ -> true)
                   incoming
             | _ -> List.for_all ok_use (value_vregs (instr_values ins))
           in
           defined :=
             Liveness.IntSet.add (b.Ssa.first_index + pos) !defined;
           ok
         in
         Array.for_all Fun.id (Array.mapi instr_ok b.Ssa.instrs)
         && List.for_all ok_use (value_vregs (term_values b.Ssa.terminator)))
       f.Ssa.blocks)

let qcheck_liveness_sound =
  let gen =
    QCheck.Gen.(triple (int_range 1 16) (int_range 2 300) (int_range 0 2))
  in
  QCheck.Test.make ~name:"liveness covers every runtime-read value" ~count:50
    (QCheck.make gen)
    (fun shape ->
      let f = Dsl.lower (random_kernel shape) in
      liveness_covers_uses f && Liveness.check f = [])

(* ---- soundness: reported pressure matches an independent
        straight-line recomputation ---- *)

let naive_vector_peak f =
  match f.Ssa.blocks with
  | [ b ] ->
      let module S = Liveness.IntSet in
      let vecs = ref S.empty in
      Array.iteri
        (fun i ins ->
          match ins with
          | Ssa.Getindex _ | Ssa.Vec_binop _ | Ssa.Vec_unop _ ->
              vecs := S.add (b.Ssa.first_index + i) !vecs
          | _ -> ())
        b.Ssa.instrs;
      let live = ref (S.of_list (value_vregs (term_values b.Ssa.terminator))) in
      let peak = ref 0 in
      for i = Array.length b.Ssa.instrs - 1 downto 0 do
        peak := max !peak (S.cardinal (S.inter !live !vecs));
        live := S.remove (b.Ssa.first_index + i) !live;
        List.iter
          (fun r -> live := S.add r !live)
          (value_vregs (instr_values b.Ssa.instrs.(i)))
      done;
      !peak
  | _ -> invalid_arg "naive_vector_peak: single block only"

let qcheck_pressure_exact =
  QCheck.Test.make
    ~name:"X-REG pressure matches brute-force straight-line peak" ~count:24
    (QCheck.make QCheck.Gen.(int_range 1 12))
    (fun k ->
      let f = pressure_func k in
      let reported = Regpressure.max_pressure f in
      reported = k
      && reported = naive_vector_peak f
      && (k <= P.Arch.Params.xreg_depth)
         = (Regpressure.check_function f = []))

(* ---- soundness: concrete machine outputs stay within the interval
        bounds ---- *)

let qcheck_interval_bounds_sound =
  (* Bind data whose max-abs is pinned at 1.0 so the runtime's
     quantization scales are known (rescale = 1/0.99^2 for a multiply
     kernel), run on a noise-free machine, and demand every emitted
     value sit inside the analysis bounds. The analysis works in
     per-lane-mean units (one ADC sample is the charge-share mean of a
     segment, the TH sums one sample per segment), so the original-
     units output maps back as v / rescale / lanes_per_bank; slack
     covers only the 8-bit input/ADC quantization. *)
  let gen =
    QCheck.Gen.(triple (int_range 1 4) (int_range 2 256) (int_range 0 9999))
  in
  QCheck.Test.make ~name:"machine outputs stay within Interval bounds"
    ~count:20 (QCheck.make gen)
    (fun (rows, cols, seed) ->
      let k = random_kernel (rows, cols, 0) in
      let ssa = Dsl.lower k in
      match Pattern.match_function ssa with
      | Error msg -> QCheck.Test.fail_report msg
      | Ok graph -> (
          let reports, _ = Interval.analyze graph in
          let rng = Random.State.make [| seed |] in
          let elt () = Random.State.float rng 2.0 -. 1.0 in
          let w = Array.init rows (fun _ -> Array.init cols (fun _ -> elt ())) in
          let x = Array.init cols (fun _ -> elt ()) in
          w.(0).(0) <- 1.0;
          x.(0) <- 1.0;
          let b = Runtime.bindings () in
          Runtime.bind_matrix b "W" w;
          Runtime.bind_vector b "x" x;
          let lanes =
            match P.Arch.Layout.plan ~vector_len:cols ~rows () with
            | Ok p -> float_of_int p.P.Arch.Layout.lanes_per_bank
            | Error msg -> QCheck.Test.fail_report msg
          in
          let machine =
            Machine.create
              (Machine.ideal_config ~banks:(Runtime.required_banks graph))
          in
          match Runtime.run ~machine graph b with
          | Error e -> QCheck.Test.fail_report (P.Error.to_string e)
          | Ok res ->
              let rescale = 1.0 /. (0.99 *. 0.99) in
              let slack = 0.06 in
              List.for_all
                (fun (node, (out : Runtime.task_output)) ->
                  match
                    List.find_opt (fun r -> r.Interval.node = node) reports
                  with
                  | None -> true
                  | Some r ->
                      Array.for_all
                        (fun v ->
                          let nv = v /. rescale /. lanes in
                          nv >= r.Interval.emitted.Interval.lo -. slack
                          && nv <= r.Interval.emitted.Interval.hi +. slack)
                        out.Runtime.values)
                res.Runtime.outputs))

let qcheck_random_kernels_lint_clean =
  (* the compiler must never emit a program its own linter rejects:
     random geometry and distance metric, every pass, zero errors *)
  let gen =
    QCheck.Gen.(triple (int_range 1 16) (int_range 2 300) (int_range 0 2))
  in
  QCheck.Test.make ~name:"random DSL kernels lint clean" ~count:50
    (QCheck.make gen)
    (fun shape -> Diag.count_errors (lint_kernel_diags (random_kernel shape)) = 0)

let test_example_kernels_lint_clean () =
  List.iter
    (fun path ->
      match Sexp_frontend.parse_file path with
      | Error msg -> fail (path ^ ": " ^ msg)
      | Ok k ->
          let ds = lint_kernel_diags k in
          check int (path ^ " has no diagnostics") 0 (List.length ds))
    [
      "../examples/kernels/template_matching.sexp";
      "../examples/kernels/svm.sexp";
      "../examples/kernels/mlp.sexp";
      "../examples/kernels/linreg.sexp";
    ]

let test_benchmarks_lint_clean () =
  List.iter
    (fun (b : B.t) ->
      let tasks = b.B.per_decision_program.Program.tasks in
      let isa = Isa_check.check_program tasks in
      let dce = Liveness.check_program tasks in
      let tim = Timing_check.check_program tasks in
      let _, ovf = Interval.analyze b.B.graph in
      check int (b.B.name ^ " has no diagnostics") 0
        (List.length (isa @ dce @ tim @ ovf)))
    (B.fig10_suite () @ [ B.dnn B.D1 ])

let () =
  Alcotest.run "lint"
    [
      ( "diag",
        [
          Alcotest.test_case "render" `Quick test_diag_render;
          Alcotest.test_case "sort" `Quick test_diag_sort;
          Alcotest.test_case "to_error" `Quick test_diag_to_error;
          Alcotest.test_case "json" `Quick test_diag_json;
        ] );
      ( "task-mutations",
        [
          Alcotest.test_case "assembler and per-task codes" `Quick
            test_task_mutations;
        ] );
      ( "isa-verifier",
        [
          Alcotest.test_case "clean program" `Quick test_isa_clean;
          Alcotest.test_case "seeded violations" `Quick test_isa_mutations;
          Alcotest.test_case "consumed X-REG store" `Quick
            test_isa_xreg_consumed_is_clean;
        ] );
      ( "ssa-validator",
        [
          Alcotest.test_case "seeded violations" `Quick test_ssa_mutations;
          Alcotest.test_case "builder missing terminator" `Quick
            test_ssa_builder_missing_terminator;
          Alcotest.test_case "frontend output validates" `Quick
            test_ssa_frontend_output_validates;
        ] );
      ( "interval",
        [
          Alcotest.test_case "saturating relu chain" `Quick
            test_interval_saturation;
          Alcotest.test_case "terminal relu is clean" `Quick
            test_interval_terminal_is_clean;
          Alcotest.test_case "sakr feasibility" `Quick
            test_interval_check_stats;
          Alcotest.test_case "min_bits matches Precision" `Quick
            test_min_bits_matches_precision;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "sequence convention" `Quick
            test_dataflow_sequence;
          Alcotest.test_case "divergence cap" `Quick
            test_dataflow_divergence_cap;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "dead pure instruction" `Quick
            test_liveness_dead_pure;
          Alcotest.test_case "returned value is live" `Quick
            test_liveness_used_is_clean;
          Alcotest.test_case "loop-carried phi" `Quick test_liveness_loop_phi;
          Alcotest.test_case "shadowed X-REG store" `Quick
            test_liveness_shadowed_store;
        ] );
      ( "regpressure",
        [
          Alcotest.test_case "pressure overflow" `Quick test_pressure_overflow;
          Alcotest.test_case "allocation overlap" `Quick
            test_allocation_overlap;
        ] );
      ( "timing",
        [
          Alcotest.test_case "leakage budget" `Quick test_timing_budget;
          Alcotest.test_case "dwell past budget" `Quick test_timing_dwell;
          Alcotest.test_case "chain cadence mismatch" `Quick
            test_timing_chain_mismatch;
          Alcotest.test_case "ADC backlog" `Quick test_timing_backlog;
          Alcotest.test_case "parameter validation" `Quick
            test_timing_validation;
        ] );
      ( "driver",
        [
          Alcotest.test_case "pasm report" `Quick test_driver_pasm_report;
          Alcotest.test_case "clean report" `Quick test_driver_clean_report;
          Alcotest.test_case "fingerprints" `Quick test_diag_fingerprint;
          Alcotest.test_case "dedupe" `Quick test_driver_dedupe;
          Alcotest.test_case "deny and warning budget" `Quick
            test_driver_deny_and_budget;
          Alcotest.test_case "baseline round trip" `Quick test_driver_baseline;
          Alcotest.test_case "sarif rendering" `Quick test_driver_sarif;
        ] );
      ( "env",
        [ Alcotest.test_case "PROMISE_LINT_*" `Quick test_env_validation ] );
      ( "acceptance",
        [
          QCheck_alcotest.to_alcotest qcheck_random_kernels_lint_clean;
          QCheck_alcotest.to_alcotest qcheck_liveness_sound;
          QCheck_alcotest.to_alcotest qcheck_pressure_exact;
          QCheck_alcotest.to_alcotest qcheck_interval_bounds_sound;
          Alcotest.test_case "example kernels lint clean" `Quick
            test_example_kernels_lint_clean;
          Alcotest.test_case "benchmarks lint clean" `Slow
            test_benchmarks_lint_clean;
        ] );
    ]
