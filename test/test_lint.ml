(* Lint tests: the Diag core, the three analysis passes (Task-ISA
   verifier, SSA validator, interval overflow analysis), the report
   driver, and the clean-lint property over random DSL kernels.

   Mutation style: each seeded defect must be caught with its exact
   documented diagnostic code (ARCHITECTURE §10). *)

open Promise.Ir
open Promise.Isa
module P = Promise
module Diag = P.Diag
module Ssa_check = P.Analysis.Ssa_check
module Isa_check = P.Analysis.Isa_check
module Interval = P.Analysis.Interval
module Lint = P.Analysis.Lint
module B = P.Benchmarks
module Precision = P.Compiler.Precision

let check = Alcotest.check
let fail = Alcotest.fail
let bool = Alcotest.bool
let int = Alcotest.int
let str = Alcotest.string

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  n = 0 || go 0

let codes ds = List.map Diag.code ds

let has_code c ds =
  if not (List.mem c (codes ds)) then
    fail
      (Printf.sprintf "expected %s, got [%s]" c
         (String.concat "; " (List.map Diag.to_string ds)))

let only_code c ds =
  has_code c ds;
  check int (c ^ " is the only diagnostic") 1 (List.length ds)

(* ------------------------------------------------------------------ *)
(* Diag core                                                           *)
(* ------------------------------------------------------------------ *)

let test_diag_render () =
  let d = Diag.errorf ~code:"P-ISA-003" ~span:(Diag.Task 2) "dropped" in
  check str "render" "[P-ISA-003] dropped" (Diag.render d);
  check str "to_string" "error[P-ISA-003] task 2: dropped" (Diag.to_string d);
  check bool "is_error" true (Diag.is_error d);
  let w = Diag.warningf ~code:"P-OVF-002" "w" in
  check int "count_errors" 1 (Diag.count_errors [ w; d ]);
  check int "count_warnings" 1 (Diag.count_warnings [ w; d ])

let test_diag_sort () =
  let at span code = Diag.errorf ~code ~span "x" in
  let sorted =
    Diag.sort
      [ at (Diag.Task 3) "P-ISA-001"; at (Diag.Task 1) "P-ISA-006";
        at (Diag.Task 1) "P-ISA-002" ]
  in
  check bool "span order, then code" true
    (codes sorted = [ "P-ISA-002"; "P-ISA-006"; "P-ISA-001" ])

let test_diag_to_error () =
  let d = Diag.errorf ~code:"P-TSK-001" "swing out of range" in
  let e = Diag.to_error ~layer:"isa" d in
  let s = P.Error.to_string e in
  check bool "code survives in the typed error" true
    (contains ~sub:"P-TSK-001" s)

let test_diag_json () =
  let d = Diag.errorf ~code:"P-SSA-006" ~span:(Diag.Instr { block = "b"; vreg = 3 }) {|say "hi"|} in
  let j = Diag.to_json d in
  check bool "code in json" true (contains ~sub:{|"code":"P-SSA-006"|} j);
  check bool "message escaped" true (contains ~sub:{|say \"hi\"|} j)

(* ------------------------------------------------------------------ *)
(* Task-level mutations: assembler + per-Task validation codes         *)
(* ------------------------------------------------------------------ *)

let parse_task_code line =
  match Asm.parse_task line with
  | Ok _ -> fail ("expected a diagnostic for: " ^ line)
  | Error d -> Diag.code d

let test_task_mutations () =
  List.iter
    (fun (line, code) -> check str line code (parse_task_code line))
    [
      ("task c1=bogus", "P-ASM-001");
      ("task c1=aREAD c2=square.avd avd c3=ADC", "P-ASM-001");
      ("task c1=aREAD c2=square.avd c3=ADC c4=accumulate swing=9", "P-TSK-001");
      ("task c1=aREAD c2=square.avd c3=ADC c4=accumulate w=600", "P-TSK-001");
      ("task c1=read rpt=200", "P-TSK-002");
      ("task c1=read mb=5", "P-TSK-002");
      ("task c1=read c2=square c3=ADC c4=min", "P-TSK-003");
    ]

(* ------------------------------------------------------------------ *)
(* Whole-program ISA mutations                                         *)
(* ------------------------------------------------------------------ *)

let program_of_lines lines =
  match Asm.parse_program (String.concat "\n" lines) with
  | Ok tasks -> tasks
  | Error msg -> fail msg

let isa_diags lines = Isa_check.check_program (program_of_lines lines)

let test_isa_clean () =
  check int "well-formed single task is clean" 0
    (List.length
       (isa_diags [ "task c1=aREAD c2=square.avd c3=ADC c4=accumulate" ]))

let test_isa_mutations () =
  List.iter
    (fun (lines, code) -> only_code code (isa_diags lines))
    [
      (* dead X-REG store: nothing after the write reads X *)
      ( [ "task c1=aREAD c2=square.avd c3=ADC c4=sigmoid des=xreg" ],
        "P-ISA-001" );
      (* W window walks off the 128 word rows of a bank *)
      ( [ "task c1=aREAD c2=square.avd c3=ADC c4=accumulate w=100 rpt=59" ],
        "P-ISA-002" );
      (* analog aggregate dropped at the Task boundary (no ADC) *)
      ([ "task c1=aREAD c2=square c4=accumulate" ], "P-ISA-003");
      (* 3 iterations do not divide into ACC_NUM+1 = 2 groups *)
      ( [ "task c1=aREAD c2=square.avd c3=ADC c4=accumulate acc=1 rpt=2" ],
        "P-ISA-004" );
      (* X circulates out of phase with the accumulation group *)
      ( [ "task c1=aADD c2=none.avd c3=ADC c4=accumulate acc=1 rpt=3 xprd=0" ],
        "P-ISA-005" );
      (* accumulator chain never drains *)
      ( [ "task c1=aREAD c2=square.avd c3=ADC c4=accumulate des=acc" ],
        "P-ISA-006" );
      (* chain members disagree on SWING *)
      ( [
          "task c1=aREAD c2=square.avd c3=ADC c4=accumulate des=acc swing=7";
          "task c1=aREAD c2=square.avd c3=ADC c4=accumulate des=acc swing=3";
          "task c1=aREAD c2=square.avd c3=ADC c4=accumulate des=out";
        ],
        "P-ISA-006" );
    ]

let test_isa_xreg_consumed_is_clean () =
  (* the same X-REG store is fine when a later Task reads X *)
  check int "consumed store is clean" 0
    (List.length
       (isa_diags
          [
            "task c1=aREAD c2=square.avd c3=ADC c4=sigmoid des=xreg";
            "task c1=aADD c2=none.avd c3=ADC c4=accumulate acc=0 xprd=0";
          ]))

(* ------------------------------------------------------------------ *)
(* SSA validator mutations                                             *)
(* ------------------------------------------------------------------ *)

let blk ~label ~first instrs terminator =
  { Ssa.label; first_index = first; instrs = Array.of_list instrs; terminator }

let func ?(params = [ ("x", Ssa.Vector 4) ]) blocks =
  { Ssa.name = "t"; params; blocks }

let test_ssa_mutations () =
  let cases =
    [
      ( "duplicate label",
        func
          [
            blk ~label:"entry" ~first:0 [] (Ssa.Br "entry");
            blk ~label:"entry" ~first:0 [] (Ssa.Ret None);
          ],
        "P-SSA-001" );
      ( "undefined vreg",
        func
          [ blk ~label:"entry" ~first:0
              [ Ssa.Load { ptr = Ssa.Vreg 99 } ]
              (Ssa.Ret None) ],
        "P-SSA-002" );
      ( "unknown argument",
        func
          [ blk ~label:"entry" ~first:0
              [ Ssa.Reduce { op = Ssa.Rsum; operand = Ssa.Arg "nope" } ]
              (Ssa.Ret None) ],
        "P-SSA-003" );
      ( "branch to unknown label",
        func [ blk ~label:"entry" ~first:0 [] (Ssa.Br "nowhere") ],
        "P-SSA-004" );
      ( "def does not dominate use",
        func
          [
            blk ~label:"entry" ~first:0 []
              (Ssa.Cond_br
                 { cond = Ssa.Const_int 1; if_true = "a"; if_false = "b" });
            blk ~label:"a" ~first:0
              [ Ssa.Reduce { op = Ssa.Rsum; operand = Ssa.Arg "x" } ]
              (Ssa.Br "b");
            blk ~label:"b" ~first:1
              [ Ssa.Scalar_unop { op = Ssa.Uneg; operand = Ssa.Vreg 0 } ]
              (Ssa.Ret None);
          ],
        "P-SSA-006" );
      ( "phi with a non-predecessor incoming label",
        func
          [
            blk ~label:"entry" ~first:0 [] (Ssa.Br "l");
            blk ~label:"l" ~first:0
              [ Ssa.Phi { incoming = [ ("nowhere", Ssa.Const_int 0) ] } ]
              (Ssa.Ret None);
          ],
        "P-SSA-007" );
      ( "vector length mismatch",
        func
          ~params:[ ("W", Ssa.Matrix (2, 8)); ("V", Ssa.Matrix (2, 4)) ]
          [
            blk ~label:"entry" ~first:0
              [
                Ssa.Getindex { matrix = Ssa.Arg "W"; index = Ssa.Const_int 0 };
                Ssa.Getindex { matrix = Ssa.Arg "V"; index = Ssa.Const_int 0 };
                Ssa.Vec_binop { op = Ssa.Vadd; lhs = Ssa.Vreg 0; rhs = Ssa.Vreg 1 };
              ]
              (Ssa.Ret None);
          ],
        "P-SSA-008" );
    ]
  in
  List.iter
    (fun (what, f, code) ->
      let ds = Ssa_check.validate f in
      if not (List.mem code (codes ds)) then
        fail
          (Printf.sprintf "%s: expected %s, got [%s]" what code
             (String.concat "; " (List.map Diag.to_string ds))))
    cases

let test_ssa_builder_missing_terminator () =
  (* satellite (f): the Builder rejects an unterminated block eagerly,
     tagged with the validator's code *)
  let b = Ssa.Builder.create ~name:"g" ~params:[] in
  Ssa.Builder.block b "entry";
  match Ssa.Builder.finish b with
  | exception Invalid_argument msg ->
      check bool "message carries P-SSA-005" true
        (contains ~sub:"P-SSA-005" msg)
  | _ -> fail "expected Invalid_argument"

let test_ssa_frontend_output_validates () =
  let k =
    Dsl.kernel ~name:"clean"
      ~decls:
        [ Dsl.matrix "W" ~rows:4 ~cols:16; Dsl.vector "x" ~len:16;
          Dsl.out_vector "out" ~len:4 ]
      [ Dsl.for_store ~iterations:4 ~out:"out" (Dsl.dot "W" "x") ]
  in
  check int "Dsl.lower output is SSA-clean" 0
    (List.length (Ssa_check.validate (Dsl.lower k)))

(* ------------------------------------------------------------------ *)
(* Interval overflow analysis                                          *)
(* ------------------------------------------------------------------ *)

let graph_of_tasks tasks =
  match Graph.of_tasks tasks with Ok g -> g | Error msg -> fail msg

let test_interval_saturation () =
  (* 2048-element rows need 2 segments on 8 banks, so the TH stage
     accumulates two ±1 samples: the non-terminal ReLU routes [0, 2]
     into an 8-bit X-REG and saturates; its consumer inherits the
     clamped value (warning). *)
  let layer1 =
    Abstract_task.make ~name:"layer1" ~w:"W1" ~x:"x" ~output:"h"
      ~vec_op:Abstract_task.Vo_mul_signed ~red_op:Abstract_task.Ro_sum
      ~digital_op:Abstract_task.Do_relu ~vector_len:2048 ~loop_iterations:4 ()
  in
  let layer2 =
    Abstract_task.make ~name:"layer2" ~w:"W2" ~x:"h" ~output:"y"
      ~vec_op:Abstract_task.Vo_mul_signed ~red_op:Abstract_task.Ro_sum
      ~digital_op:Abstract_task.Do_sigmoid ~vector_len:4 ~loop_iterations:2 ()
  in
  let reports, ds = Interval.analyze (graph_of_tasks [ layer1; layer2 ]) in
  has_code "P-OVF-001" ds;
  has_code "P-OVF-002" ds;
  check int "one error, one warning" 1 (Diag.count_errors ds);
  check int "one warning" 1 (Diag.count_warnings ds);
  let r1 = List.find (fun r -> r.Interval.name = "layer1") reports in
  check bool "layer1 saturates" true r1.Interval.saturates;
  check bool "layer1 interval clamped for consumers" true
    (r1.Interval.emitted.Interval.hi <= 1.0)

let test_interval_terminal_is_clean () =
  (* same geometry, but the ReLU is terminal (output buffer, not an
     8-bit register) — nothing to saturate *)
  let t =
    Abstract_task.make ~name:"only" ~w:"W" ~x:"x" ~output:"y"
      ~vec_op:Abstract_task.Vo_mul_signed ~red_op:Abstract_task.Ro_sum
      ~digital_op:Abstract_task.Do_relu ~vector_len:2048 ~loop_iterations:4 ()
  in
  let _, ds = Interval.analyze (graph_of_tasks [ t ]) in
  check int "terminal relu is clean" 0 (List.length ds)

let test_interval_check_stats () =
  only_code "P-OVF-003"
    (Interval.check_stats ~ea:1e9 ~ew:1e9 ~pm:1e-6);
  check int "feasible stats are clean" 0
    (List.length (Interval.check_stats ~ea:0.5 ~ew:0.5 ~pm:0.1))

let test_min_bits_matches_precision () =
  (* the analysis reimplements the compiler's Sakr solve (the
     dependency points compiler -> analysis); the two must agree *)
  List.iter
    (fun ea ->
      List.iter
        (fun ew ->
          List.iter
            (fun pm ->
              let ours = Interval.min_bits ~ea ~ew ~pm in
              let theirs =
                Precision.min_activation_bits { Precision.ea; ew } ~pm
                  ~bw:Interval.weight_bits
              in
              match (ours, theirs) with
              | Ok a, Ok b ->
                  check int
                    (Printf.sprintf "ba at ea=%g ew=%g pm=%g" ea ew pm)
                    b a
              | Error _, Error _ -> ()
              | _ ->
                  fail
                    (Printf.sprintf "feasibility disagrees at ea=%g ew=%g pm=%g"
                       ea ew pm))
            [ 0.5; 0.01; 1e-4; 1e-8 ])
        [ 0.3; 2.0; 150.0 ])
    [ 0.3; 2.0; 150.0 ]

(* ------------------------------------------------------------------ *)
(* Report driver                                                       *)
(* ------------------------------------------------------------------ *)

let test_driver_pasm_report () =
  let bad = "task c1=aREAD c2=square c4=accumulate\n" in
  let r = Lint.lint_pasm ~target:"bad.pasm" bad in
  check int "one error" 1 (Lint.errors r);
  check int "exit code 1" 1 (Lint.exit_code [ r ]);
  check bool "text names the target and line" true
    (contains ~sub:"bad.pasm: error[P-ISA-003] line 1" (Lint.render_text r));
  let j = Lint.render_json [ r ] in
  check bool "json carries the code" true (contains ~sub:"P-ISA-003" j)

let test_driver_clean_report () =
  let r = Lint.lint_pasm ~target:"ok.pasm" "task c1=read\n" in
  check int "clean" 0 (Lint.errors r + Lint.warnings r);
  check int "exit code 0" 0 (Lint.exit_code [ r ]);
  check str "summary" "0 error(s), 0 warning(s) in 1 target(s)"
    (Lint.summary [ r ])

(* ------------------------------------------------------------------ *)
(* Clean-lint property and acceptance sweeps                           *)
(* ------------------------------------------------------------------ *)

(* mirror of promise-lint's kernel path, returning the diagnostics *)
let lint_kernel_diags k =
  let ssa = Dsl.lower k in
  let ssa_d = Ssa_check.validate ssa in
  match Pattern.match_function ssa with
  | Error msg -> [ Diag.errorf ~code:"P-OVF-004" "no match: %s" msg ]
  | Ok graph -> (
      let _, ovf = Interval.analyze graph in
      match P.Compiler.Lower.program_of_graph graph with
      | Error e ->
          [ Diag.errorf ~code:"P-OVF-004" "%s" (P.Error.to_string e) ]
      | Ok prog -> ssa_d @ ovf @ Isa_check.check_program prog.Program.tasks)

let qcheck_random_kernels_lint_clean =
  (* the compiler must never emit a program its own linter rejects:
     random geometry and distance metric, every pass, zero errors *)
  let gen =
    QCheck.Gen.(triple (int_range 1 16) (int_range 2 300) (int_range 0 2))
  in
  QCheck.Test.make ~name:"random DSL kernels lint clean" ~count:50
    (QCheck.make gen)
    (fun (rows, cols, op) ->
      let body =
        match op with
        | 0 -> Dsl.dot "W" "x"
        | 1 -> Dsl.l1_distance "W" "x"
        | _ -> Dsl.l2_distance "W" "x"
      in
      let k =
        Dsl.kernel ~name:"prop"
          ~decls:
            [ Dsl.matrix "W" ~rows ~cols; Dsl.vector "x" ~len:cols;
              Dsl.out_vector "out" ~len:rows ]
          [ Dsl.for_store ~iterations:rows ~out:"out" body ]
      in
      Diag.count_errors (lint_kernel_diags k) = 0)

let test_example_kernels_lint_clean () =
  List.iter
    (fun path ->
      match Sexp_frontend.parse_file path with
      | Error msg -> fail (path ^ ": " ^ msg)
      | Ok k ->
          let ds = lint_kernel_diags k in
          check int (path ^ " has no diagnostics") 0 (List.length ds))
    [
      "../examples/kernels/template_matching.sexp";
      "../examples/kernels/svm.sexp";
      "../examples/kernels/mlp.sexp";
      "../examples/kernels/linreg.sexp";
    ]

let test_benchmarks_lint_clean () =
  List.iter
    (fun (b : B.t) ->
      let isa = Isa_check.check_program b.B.per_decision_program.Program.tasks in
      let _, ovf = Interval.analyze b.B.graph in
      check int (b.B.name ^ " has no diagnostics") 0
        (List.length (isa @ ovf)))
    (B.fig10_suite () @ [ B.dnn B.D1 ])

let () =
  Alcotest.run "lint"
    [
      ( "diag",
        [
          Alcotest.test_case "render" `Quick test_diag_render;
          Alcotest.test_case "sort" `Quick test_diag_sort;
          Alcotest.test_case "to_error" `Quick test_diag_to_error;
          Alcotest.test_case "json" `Quick test_diag_json;
        ] );
      ( "task-mutations",
        [
          Alcotest.test_case "assembler and per-task codes" `Quick
            test_task_mutations;
        ] );
      ( "isa-verifier",
        [
          Alcotest.test_case "clean program" `Quick test_isa_clean;
          Alcotest.test_case "seeded violations" `Quick test_isa_mutations;
          Alcotest.test_case "consumed X-REG store" `Quick
            test_isa_xreg_consumed_is_clean;
        ] );
      ( "ssa-validator",
        [
          Alcotest.test_case "seeded violations" `Quick test_ssa_mutations;
          Alcotest.test_case "builder missing terminator" `Quick
            test_ssa_builder_missing_terminator;
          Alcotest.test_case "frontend output validates" `Quick
            test_ssa_frontend_output_validates;
        ] );
      ( "interval",
        [
          Alcotest.test_case "saturating relu chain" `Quick
            test_interval_saturation;
          Alcotest.test_case "terminal relu is clean" `Quick
            test_interval_terminal_is_clean;
          Alcotest.test_case "sakr feasibility" `Quick
            test_interval_check_stats;
          Alcotest.test_case "min_bits matches Precision" `Quick
            test_min_bits_matches_precision;
        ] );
      ( "driver",
        [
          Alcotest.test_case "pasm report" `Quick test_driver_pasm_report;
          Alcotest.test_case "clean report" `Quick test_driver_clean_report;
        ] );
      ( "acceptance",
        [
          QCheck_alcotest.to_alcotest qcheck_random_kernels_lint_clean;
          Alcotest.test_case "example kernels lint clean" `Quick
            test_example_kernels_lint_clean;
          Alcotest.test_case "benchmarks lint clean" `Slow
            test_benchmarks_lint_clean;
        ] );
    ]
