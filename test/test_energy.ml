(* Energy / throughput model tests: Table 3 energies, Eq. (6), the
   CONV-8b/CONV-OPT baselines (Eq. 5), the CM baseline, process scaling
   and state-of-the-art comparisons. *)

open Promise.Energy
open Promise.Isa
module Arch = Promise.Arch

let check = Alcotest.check
let fail = Alcotest.fail
let bool = Alcotest.bool
let int = Alcotest.int
let close eps = Alcotest.float eps

let dot_task ?(rpt_num = 0) ?(multi_bank = 0) ?(swing = 7) () =
  Task.make
    ~op_param:{ Op_param.default with Op_param.swing }
    ~rpt_num ~multi_bank ~class1:Opcode.C1_aread
    ~class2:{ Opcode.asd = Opcode.Asd_sign_mult; avd = true }
    ~class3:Opcode.C3_adc ~class4:Opcode.C4_accumulate ()

let l1_task ?(rpt_num = 0) ?(swing = 7) () =
  Task.make
    ~op_param:{ Op_param.default with Op_param.swing }
    ~rpt_num ~class1:Opcode.C1_asubt
    ~class2:{ Opcode.asd = Opcode.Asd_absolute; avd = true }
    ~class3:Opcode.C3_adc ~class4:Opcode.C4_min ()

(* ------------------------------------------------------------------ *)
(* Table 3                                                             *)
(* ------------------------------------------------------------------ *)

let test_table3_energies () =
  check (close 1e-9) "aREAD 61" 61.0 (Tables.class1_energy_pj Opcode.C1_aread);
  check (close 1e-9) "aSUBT 103" 103.0
    (Tables.class1_energy_pj Opcode.C1_asubt);
  check (close 1e-9) "write 73" 73.0 (Tables.class1_energy_pj Opcode.C1_write);
  check (close 1e-9) "read 33" 33.0 (Tables.class1_energy_pj Opcode.C1_read);
  check (close 1e-9) "square 38" 38.0
    (Tables.class2_energy_pj { Opcode.asd = Opcode.Asd_square; avd = true });
  check (close 1e-9) "mult 16" 16.0
    (Tables.class2_energy_pj { Opcode.asd = Opcode.Asd_sign_mult; avd = true });
  check (close 1e-9) "ADC 6" 6.0 (Tables.class3_energy_pj Opcode.C3_adc);
  check (close 1e-9) "leak 0.6" 0.6 Tables.leakage_pj_per_cycle_per_bank;
  check (close 1e-9) "ctrl 5.4" 5.4 Tables.ctrl_pj_per_cycle;
  check (close 1e-9) "rail 0.5" 0.5 Tables.crossbank_transfer_pj

let test_table3_rows () =
  let rows = Tables.table3 () in
  (* 5 class-1 + 5 class-2 + 1 ADC + 7 class-4 *)
  check int "18 rows" 18 (List.length rows);
  match List.find_opt (fun (_, n, _, _) -> n = "aREAD") rows with
  | Some (cls, _, delay, energy) ->
      check int "class" 1 cls;
      check int "delay" 5 delay;
      check (close 1e-9) "energy" 61.0 energy
  | None -> fail "aREAD row missing"

let test_swing_scaled_class1 () =
  let full = Tables.class1_energy_at_swing Opcode.C1_aread ~swing:7 in
  let low = Tables.class1_energy_at_swing Opcode.C1_aread ~swing:0 in
  check (close 1e-9) "max swing full energy" 61.0 full;
  (* half fixed + half * 5/30 *)
  check (close 1e-6) "min swing" (61.0 *. (0.5 +. (0.5 /. 6.0))) low;
  (* digital ops are swing-independent *)
  check (close 1e-9) "digital read unaffected" 33.0
    (Tables.class1_energy_at_swing Opcode.C1_read ~swing:0)

(* ------------------------------------------------------------------ *)
(* Eq. (6) model                                                       *)
(* ------------------------------------------------------------------ *)

let test_breakdown_arithmetic () =
  let a = { Model.read = 1.0; compute = 2.0; leak = 3.0; ctrl = 4.0 } in
  check (close 1e-9) "total" 10.0 (Model.total a);
  let s = Model.add a (Model.scale 2.0 a) in
  check (close 1e-9) "add+scale" 30.0 (Model.total s);
  check (close 1e-9) "zero" 0.0 (Model.total Model.zero)

let test_task_energy_hand_calc () =
  (* k-NN L1 per decision: 128 iterations, 1 bank, TP = 7.
     read = 128 * 103; compute = 128*12 + 128*6 + 128*0.05;
     cycles = 155 + 127*7 = 1044; leak = 0.6*1044; ctrl = 5.4*1044 *)
  let t = l1_task ~rpt_num:127 () in
  let e = Model.task_energy t in
  check (close 1e-6) "read" (128.0 *. 103.0) e.Model.read;
  check (close 1e-6) "compute"
    ((128.0 *. 12.0) +. (128.0 *. 6.0) +. (128.0 *. 0.05))
    e.Model.compute;
  let cycles = float_of_int (Arch.Timing.task_cycles t) in
  check (close 1e-6) "leak" (0.6 *. cycles) e.Model.leak;
  check (close 1e-6) "ctrl" (5.4 *. cycles) e.Model.ctrl;
  (* the paper reports 18 nJ/decision for this configuration; the model
     must land in the same ballpark (within 40%) *)
  let nj = Model.total e /. 1000.0 in
  check bool "~18 nJ/decision" true (nj > 12.0 && nj < 26.0)

let test_energy_scales_with_banks () =
  let one = Model.total (Model.task_energy (dot_task ~rpt_num:63 ())) in
  let four =
    Model.total (Model.task_energy (dot_task ~rpt_num:63 ~multi_bank:2 ()))
  in
  check bool "4 banks cost more" true (four > 2.0 *. one);
  check bool "but CTRL is shared" true (four < 4.0 *. one)

let test_energy_swing_monotone () =
  let at s = Model.total (Model.task_energy (l1_task ~rpt_num:63 ~swing:s ())) in
  for s = 0 to 6 do
    check bool "monotone in swing" true (at s < at (s + 1))
  done

let test_trace_energy_matches_analytic () =
  (* run a task on the machine and compare the trace-based energy with
     the analytic per-task energy *)
  let m = Arch.Machine.create (Arch.Machine.ideal_config ~banks:1) in
  let plan = Arch.Layout.plan_exn ~vector_len:16 ~rows:8 () in
  let w = Array.init 8 (fun r -> Array.init 16 (fun c -> ((r * c) mod 80) - 40)) in
  Arch.Machine.load_weights m ~group:0 ~base:0 ~plan w;
  Arch.Machine.load_x m ~group:0 ~xreg_base:0 ~plan (Array.make 16 32);
  let task = dot_task ~rpt_num:7 () in
  let launch =
    {
      Arch.Machine.task;
      bank_group = 0;
      active_lanes = 16;
      adc_gain = 1.0;
      th =
        {
          Arch.Th_unit.op = Opcode.C4_accumulate;
          acc_num = 0;
          threshold = 0.0;
          gain = 16.0;
          des = Opcode.Des_output_buffer;
        };
      dest_xreg = 7;
    }
  in
  ignore (Arch.Machine.execute m launch);
  let from_trace = Model.trace_energy (Arch.Machine.trace m) in
  let analytic = Model.task_energy task in
  check (close 1e-6) "trace = analytic" (Model.total analytic)
    (Model.total from_trace)

let test_program_cycles_and_ops () =
  let p = Program.make ~name:"p" [ dot_task ~rpt_num:9 (); l1_task ~rpt_num:4 () ] in
  check int "cycles"
    (Arch.Timing.task_cycles (dot_task ~rpt_num:9 ())
    + Arch.Timing.task_cycles (l1_task ~rpt_num:4 ()))
    (Model.program_cycles p);
  check int "element ops" ((10 + 5) * 128) (Model.element_ops p);
  check bool "worst-case TP costs more" true
    (Model.program_cycles_at_worst_case_tp p > Model.program_cycles p)

let test_edp () =
  let e = { Model.read = 10.0; compute = 0.0; leak = 0.0; ctrl = 0.0 } in
  check (close 1e-9) "edp" 100.0 (Model.energy_delay_product e ~cycles:10)

(* ------------------------------------------------------------------ *)
(* CONV baselines                                                      *)
(* ------------------------------------------------------------------ *)

let workload =
  { Conv.name = "w"; macs = 1024; fetch_words = 1024; banks = 1 }

let test_conv_eq5 () =
  (* f_CONV = (NCOL/L)/B / T_SRAM = 8 words / 2 ns at 8 bits *)
  check int "8 words per access" 8 (Conv.words_per_access ~precision:8);
  check int "16 words at 4 bits" 16 (Conv.words_per_access ~precision:4);
  check (close 1e-9) "4 MACs/ns" 4.0
    (Conv.throughput_macs_per_ns Conv.Conv_8b workload);
  check (close 1e-9) "8 MACs/ns at 4 bits" 8.0
    (Conv.throughput_macs_per_ns (Conv.Conv_opt 4) workload)

let test_conv_delay () =
  (* 1024 words / 8 per access * 2 ns *)
  check (close 1e-9) "delay" 256.0 (Conv.delay_ns Conv.Conv_8b workload);
  let w4 = { workload with Conv.banks = 4 } in
  check (close 1e-9) "banks divide delay" 64.0 (Conv.delay_ns Conv.Conv_8b w4)

let test_conv_energy_components () =
  let e = Conv.energy Conv.Conv_8b workload in
  (* 128 accesses x 33 pJ *)
  check (close 1e-6) "read" (128.0 *. 33.0) e.Model.read;
  check (close 1e-6) "compute" (1024.0 *. 0.9) e.Model.compute;
  check bool "ctrl > 0" true (e.Model.ctrl > 0.0)

let test_conv_opt_cheaper () =
  let e8 = Model.total (Conv.energy Conv.Conv_8b workload) in
  let e4 = Model.total (Conv.energy (Conv.Conv_opt 4) workload) in
  check bool "lower precision, lower energy" true (e4 < e8)

let test_conv_bad_precision () =
  match Conv.precision (Conv.Conv_opt 1) with
  | exception Invalid_argument _ -> ()
  | _ -> fail "precision 1 must be rejected"

let test_promise_beats_conv_energy () =
  (* the headline claim: 3.4-5.5x energy advantage at same work.
     Compare a 128-dim 128-row dot-product kernel. *)
  let t = dot_task ~rpt_num:127 () in
  let promise = Model.total (Model.task_energy t) in
  let conv =
    Model.total
      (Conv.energy Conv.Conv_8b
         { Conv.name = "dot"; macs = 128 * 128; fetch_words = 128 * 128;
           banks = 1 })
  in
  let ratio = conv /. promise in
  check bool "energy ratio in the paper band" true (ratio > 2.5 && ratio < 8.0)

(* ------------------------------------------------------------------ *)
(* CM baseline                                                         *)
(* ------------------------------------------------------------------ *)

let test_cm_slower () =
  let p = Program.make ~name:"knn" [ l1_task ~rpt_num:127 () ] in
  let speedup = Cm.speedup_vs_cm p in
  check bool "PROMISE faster than CM" true (speedup > 1.2);
  check bool "up to ~1.9x" true (speedup < 2.2)

let test_cm_energy_saving () =
  let p = Program.make ~name:"knn" [ l1_task ~rpt_num:127 () ] in
  let saving = Cm.energy_saving_vs_cm p in
  (* paper: ~5.5% net saving from earlier sleep *)
  check bool "PROMISE saves energy vs CM" true (saving > 0.0 && saving < 0.2)

let test_cm_cycles () =
  let t = l1_task ~rpt_num:0 () in
  check int "one iteration = S1+S2 + ADC fill" (138 + 13) (Cm.task_cycles t)

(* ------------------------------------------------------------------ *)
(* Process scaling / state-of-the-art                                  *)
(* ------------------------------------------------------------------ *)

let test_scaling_factors () =
  let e =
    Scaling.energy_scale ~from_:Scaling.n14_finfet ~to_:Scaling.n65_planar
  in
  (* ~22x: (65/14) * (1.2/0.8)^2 * 2.1 *)
  check (close 0.5) "energy scale ~21.9" 21.9 e;
  let d =
    Scaling.delay_scale ~from_:Scaling.n14_finfet ~to_:Scaling.n65_planar
  in
  check (close 0.1) "delay scale ~7" 6.96 d;
  check (close 1e-9) "self scale" 1.0
    (Scaling.energy_scale ~from_:Scaling.n65_planar ~to_:Scaling.n65_planar)

let test_soa_knn_comparison () =
  (* ours at the paper's own numbers: 18 nJ, 1.12 M/s -> the scaled
     ratios of §6.2 (4.1x energy, 3.1x lower throughput, 1.3x EDP) *)
  let c =
    Soa.compare Soa.knn_l1_14nm ~ours_energy_j:18e-9
      ~ours_decisions_per_s:1.12e6
  in
  check (close 0.6) "energy ratio ~4.1" 4.1 c.Soa.energy_ratio;
  check (close 0.1) "throughput ratio ~1/3.1" (1.0 /. 3.1)
    c.Soa.throughput_ratio;
  check bool "EDP advantage ~1.3x" true
    (c.Soa.edp_ratio > 1.0 && c.Soa.edp_ratio < 1.8)

let test_soa_dnn_comparison () =
  (* raw (unscaled) comparison, as in the paper *)
  let c =
    Soa.compare ~scale_to_65nm:false Soa.dnn_28nm ~ours_energy_j:0.49e-6
      ~ours_decisions_per_s:558e3
  in
  check (close 0.05) "energy ratio ~1.16" 1.163 c.Soa.energy_ratio;
  check (close 0.2) "throughput ratio ~19.9" 19.93 c.Soa.throughput_ratio;
  check bool "EDP ~22x" true (c.Soa.edp_ratio > 20.0 && c.Soa.edp_ratio < 25.0)

let test_soa_published_values () =
  check (close 1e-12) "[7] L1 energy" 3.37e-9
    Soa.knn_l1_14nm.Soa.energy_per_decision_j;
  check (close 1e-12) "[7] L2 energy" 3.84e-9
    Soa.knn_l2_14nm.Soa.energy_per_decision_j;
  check (close 1e-9) "[6] energy" 0.57e-6
    Soa.dnn_28nm.Soa.energy_per_decision_j

let qcheck_energy_nonnegative =
  QCheck.Test.make ~name:"task energy components nonnegative" ~count:200
    (QCheck.pair (QCheck.int_range 0 127) (QCheck.int_range 0 3))
    (fun (rpt_num, multi_bank) ->
      let e = Model.task_energy (dot_task ~rpt_num ~multi_bank ()) in
      e.Model.read >= 0.0 && e.Model.compute >= 0.0 && e.Model.leak >= 0.0
      && e.Model.ctrl >= 0.0)

let qcheck_conv_energy_monotone_in_macs =
  QCheck.Test.make ~name:"conv energy monotone in work" ~count:200
    (QCheck.pair (QCheck.int_range 1 100000) (QCheck.int_range 1 100000))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let w m = { Conv.name = "w"; macs = m; fetch_words = m; banks = 1 } in
      Model.total (Conv.energy Conv.Conv_8b (w lo))
      <= Model.total (Conv.energy Conv.Conv_8b (w hi)) +. 1e-9)

let suite =
  [
    ("table 3 energies", `Quick, test_table3_energies);
    ("table 3 rows", `Quick, test_table3_rows);
    ("swing-scaled class-1 energy", `Quick, test_swing_scaled_class1);
    ("breakdown arithmetic", `Quick, test_breakdown_arithmetic);
    ("task energy hand calc (k-NN)", `Quick, test_task_energy_hand_calc);
    ("energy scales with banks", `Quick, test_energy_scales_with_banks);
    ("energy monotone in swing", `Quick, test_energy_swing_monotone);
    ("trace energy = analytic", `Quick, test_trace_energy_matches_analytic);
    ("program cycles and ops", `Quick, test_program_cycles_and_ops);
    ("energy-delay product", `Quick, test_edp);
    ("CONV Eq. (5)", `Quick, test_conv_eq5);
    ("CONV delay", `Quick, test_conv_delay);
    ("CONV energy components", `Quick, test_conv_energy_components);
    ("CONV-OPT cheaper", `Quick, test_conv_opt_cheaper);
    ("CONV bad precision", `Quick, test_conv_bad_precision);
    ("PROMISE beats CONV on energy", `Quick, test_promise_beats_conv_energy);
    ("CM is slower", `Quick, test_cm_slower);
    ("CM energy saving", `Quick, test_cm_energy_saving);
    ("CM cycles", `Quick, test_cm_cycles);
    ("process scaling factors", `Quick, test_scaling_factors);
    ("§6.2 k-NN comparison", `Quick, test_soa_knn_comparison);
    ("§6.2 DNN comparison", `Quick, test_soa_dnn_comparison);
    ("published SoA values", `Quick, test_soa_published_values);
    QCheck_alcotest.to_alcotest qcheck_energy_nonnegative;
    QCheck_alcotest.to_alcotest qcheck_conv_energy_monotone_in_macs;
  ]

let () = Alcotest.run "promise-energy" [ ("energy", suite) ]
