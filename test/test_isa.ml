(* ISA tests: opcodes, OP_PARAM, Task validation, binary encoding,
   assembly round trips. *)

open Promise.Isa

let check = Alcotest.check
let fail = Alcotest.fail
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Opcodes                                                             *)
(* ------------------------------------------------------------------ *)

let test_class1_code_roundtrip () =
  List.iter
    (fun op ->
      match Opcode.class1_of_code (Opcode.class1_to_code op) with
      | Some op' ->
          check bool "class1 code roundtrip" true (Opcode.equal_class1 op op')
      | None -> fail "class1 decode failed")
    Opcode.all_class1

let test_class2_code_roundtrip () =
  List.iter
    (fun op ->
      match Opcode.class2_of_code (Opcode.class2_to_code op) with
      | Some op' ->
          check bool "class2 code roundtrip" true (Opcode.equal_class2 op op')
      | None -> fail "class2 decode failed")
    Opcode.all_class2

let test_class4_code_roundtrip () =
  List.iter
    (fun op ->
      match Opcode.class4_of_code (Opcode.class4_to_code op) with
      | Some op' ->
          check bool "class4 code roundtrip" true (Opcode.equal_class4 op op')
      | None -> fail "class4 decode failed")
    Opcode.all_class4

let test_class4_reserved_code () =
  check bool "code 110 is reserved" true (Opcode.class4_of_code 0b110 = None)

let test_class1_reserved_codes () =
  check bool "110 reserved" true (Opcode.class1_of_code 0b110 = None);
  check bool "111 reserved" true (Opcode.class1_of_code 0b111 = None)

let test_name_roundtrip () =
  List.iter
    (fun op ->
      match Opcode.class1_of_name (Opcode.class1_name op) with
      | Some op' -> check bool "name roundtrip" true (Opcode.equal_class1 op op')
      | None -> fail "class1 name roundtrip failed")
    Opcode.all_class1;
  List.iter
    (fun op ->
      match Opcode.class4_of_name (Opcode.class4_name op) with
      | Some op' -> check bool "name roundtrip" true (Opcode.equal_class4 op op')
      | None -> fail "class4 name roundtrip failed")
    Opcode.all_class4

let test_paper_codes () =
  (* spot-check the Fig. 5(c) encodings *)
  check int "aREAD = 011" 0b011 (Opcode.class1_to_code Opcode.C1_aread);
  check int "aSUBT = 100" 0b100 (Opcode.class1_to_code Opcode.C1_asubt);
  check int "ReLu = 111" 0b111 (Opcode.class4_to_code Opcode.C4_relu);
  check int "sign_mult+avd = 1001"
    0b1001
    (Opcode.class2_to_code { Opcode.asd = Opcode.Asd_sign_mult; avd = true })

let test_reads_x () =
  check bool "aSUBT reads X" true (Opcode.class1_reads_x Opcode.C1_asubt);
  check bool "aREAD does not" false (Opcode.class1_reads_x Opcode.C1_aread);
  check bool "sign_mult reads X" true (Opcode.asd_reads_x Opcode.Asd_sign_mult);
  check bool "absolute does not" false (Opcode.asd_reads_x Opcode.Asd_absolute)

(* ------------------------------------------------------------------ *)
(* OP_PARAM                                                            *)
(* ------------------------------------------------------------------ *)

let test_op_param_pack_unpack () =
  let p =
    {
      Op_param.swing = 5;
      acc_num = 2;
      w_addr = 300;
      x_addr1 = 3;
      x_addr2 = 6;
      x_prd = 1;
      des = Opcode.Des_xreg;
      thres_val = 9;
    }
  in
  let p' = Op_param.of_bits (Op_param.to_bits p) in
  check bool "pack/unpack" true (Op_param.equal p p')

let test_op_param_bit_positions () =
  (* SWING occupies [27:25] *)
  let p = { Op_param.default with Op_param.swing = 7 } in
  let bits = Op_param.to_bits p in
  check int "swing bits" 0b111 ((bits lsr 25) land 0b111);
  let p = { Op_param.default with Op_param.thres_val = 0xf; swing = 0 } in
  check int "thres bits" 0xf (Op_param.to_bits p land 0xf)

let test_op_param_validation () =
  let bad = { Op_param.default with Op_param.w_addr = 512 } in
  (match Op_param.validate bad with
  | Error _ -> ()
  | Ok _ -> fail "W_ADDR 512 should be rejected");
  match Op_param.validate { Op_param.default with Op_param.swing = 8 } with
  | Error _ -> ()
  | Ok _ -> fail "SWING 8 should be rejected"

let test_x_addr_circulation () =
  let p = { Op_param.default with Op_param.x_prd = 1 } in
  (* X_PRD = 1: period 2, addresses 0 1 0 1 ... *)
  check int "iter 0" 0 (Op_param.x_addr_at p ~base:0 ~iteration:0);
  check int "iter 1" 1 (Op_param.x_addr_at p ~base:0 ~iteration:1);
  check int "iter 2" 0 (Op_param.x_addr_at p ~base:0 ~iteration:2);
  let p0 = { Op_param.default with Op_param.x_prd = 0 } in
  check int "period 1 stays" 0 (Op_param.x_addr_at p0 ~base:0 ~iteration:17)

let qcheck_op_param_roundtrip =
  QCheck.Test.make ~name:"op_param bits roundtrip" ~count:500
    (QCheck.make
       (QCheck.Gen.map
          (fun (swing, acc_num, w_addr, (x1, x2, xprd, thres)) ->
            {
              Op_param.swing;
              acc_num;
              w_addr;
              x_addr1 = x1;
              x_addr2 = x2;
              x_prd = xprd;
              des = Opcode.Des_acc;
              thres_val = thres;
            })
          (QCheck.Gen.quad (QCheck.Gen.int_bound 7) (QCheck.Gen.int_bound 3)
             (QCheck.Gen.int_bound 511)
             (QCheck.Gen.quad (QCheck.Gen.int_bound 7) (QCheck.Gen.int_bound 7)
                (QCheck.Gen.int_bound 3) (QCheck.Gen.int_bound 15)))))
    (fun p -> Op_param.equal p (Op_param.of_bits (Op_param.to_bits p)))

(* ------------------------------------------------------------------ *)
(* Task validation                                                     *)
(* ------------------------------------------------------------------ *)

let dot_task ?(rpt_num = 0) ?(multi_bank = 0) () =
  Task.make ~rpt_num ~multi_bank ~class1:Opcode.C1_aread
    ~class2:{ Opcode.asd = Opcode.Asd_sign_mult; avd = true }
    ~class3:Opcode.C3_adc ~class4:Opcode.C4_accumulate ()

let test_valid_dot_task () =
  let t = dot_task () in
  check int "1 iteration" 1 (Task.iterations t);
  check int "1 bank" 1 (Task.banks t)

let test_template_matching_task () =
  (* the paper's §3.4 example: aSUBT + absolute.avd + ADC + min,
     RPT_NUM = 126, 4 banks *)
  let t =
    Task.make ~rpt_num:126 ~multi_bank:2 ~class1:Opcode.C1_asubt
      ~class2:{ Opcode.asd = Opcode.Asd_absolute; avd = true }
      ~class3:Opcode.C3_adc ~class4:Opcode.C4_min ()
  in
  check int "127 candidates" 127 (Task.iterations t);
  check int "4 banks" 4 (Task.banks t)

let test_invalid_mult_after_fused () =
  match
    Task.validate
      {
        Task.nop with
        Task.class1 = Opcode.C1_asubt;
        class2 = { Opcode.asd = Opcode.Asd_sign_mult; avd = true };
        class3 = Opcode.C3_adc;
      }
  with
  | Error _ -> ()
  | Ok _ -> fail "multiply after fused subtract must be rejected"

let test_invalid_avd_without_adc () =
  match
    Task.validate
      {
        Task.nop with
        Task.class1 = Opcode.C1_aread;
        class2 = { Opcode.asd = Opcode.Asd_none; avd = true };
        class3 = Opcode.C3_none;
      }
  with
  | Error _ -> ()
  | Ok _ -> fail "aggregation without ADC must be rejected"

let test_invalid_asd_on_digital_read () =
  match
    Task.validate
      {
        Task.nop with
        Task.class1 = Opcode.C1_read;
        class2 = { Opcode.asd = Opcode.Asd_square; avd = false };
      }
  with
  | Error _ -> ()
  | Ok _ -> fail "aSD on a digital read must be rejected"

let test_invalid_rpt_num () =
  match Task.validate { (dot_task ()) with Task.rpt_num = 128 } with
  | Error _ -> ()
  | Ok _ -> fail "RPT_NUM 128 must be rejected"

let test_composition_count () =
  (* The paper claims "more than 1000 compositions" counting parameter
     settings; the opcode-level composition space must be substantial
     and every enumerated element must validate. *)
  let comps = Task.legal_compositions () in
  check bool "at least 64 opcode compositions" true (List.length comps >= 64);
  List.iter
    (fun (class1, class2, class3, class4) ->
      let t = { Task.nop with Task.class1; class2; class3; class4 } in
      match Task.validate t with
      | Ok _ -> ()
      | Error d ->
          fail
            ("enumerated composition rejected: " ^ Promise_core.Diag.render d))
    comps

(* ------------------------------------------------------------------ *)
(* Binary encoding                                                     *)
(* ------------------------------------------------------------------ *)

let test_encode_roundtrip_examples () =
  let tasks =
    [
      dot_task ();
      dot_task ~rpt_num:127 ~multi_bank:3 ();
      Task.make ~rpt_num:126 ~multi_bank:2 ~class1:Opcode.C1_asubt
        ~class2:{ Opcode.asd = Opcode.Asd_absolute; avd = true }
        ~class3:Opcode.C3_adc ~class4:Opcode.C4_min ();
      Task.nop;
    ]
  in
  List.iter
    (fun t ->
      match Encode.of_int (Encode.to_int t) with
      | Ok t' -> check bool "binary roundtrip" true (Task.equal t t')
      | Error msg -> fail msg)
    tasks

let test_encode_width () =
  let t = dot_task ~rpt_num:127 ~multi_bank:3 () in
  let bits = Encode.to_int t in
  check bool "fits in 48 bits" true (bits < 1 lsl 48);
  check int "6 bytes" 6 (Bytes.length (Encode.to_bytes t))

let test_encode_bytes_roundtrip () =
  let t = dot_task ~rpt_num:42 () in
  match Encode.of_bytes (Encode.to_bytes t) ~pos:0 with
  | Ok t' -> check bool "bytes roundtrip" true (Task.equal t t')
  | Error msg -> fail msg

let test_program_binary_roundtrip () =
  let tasks = [ dot_task (); dot_task ~rpt_num:9 (); Task.nop ] in
  match Encode.program_of_bytes (Encode.program_to_bytes tasks) with
  | Ok tasks' ->
      check int "same length" (List.length tasks) (List.length tasks');
      List.iter2
        (fun a b -> check bool "task equal" true (Task.equal a b))
        tasks tasks'
  | Error msg -> fail msg

let test_bad_binary_rejected () =
  (match Encode.program_of_bytes (Bytes.create 5) with
  | Error _ -> ()
  | Ok _ -> fail "truncated program must be rejected");
  (* Class-1 opcode 111 is reserved *)
  match Encode.of_int (0b111 lsl 8) with
  | Error _ -> ()
  | Ok _ -> fail "reserved opcode must be rejected"

let test_hex_roundtrip () =
  let t = dot_task ~rpt_num:3 () in
  match Encode.task_of_hex (Encode.hex_of_task t) with
  | Ok t' -> check bool "hex roundtrip" true (Task.equal t t')
  | Error msg -> fail msg

let qcheck_encode_roundtrip =
  let compositions = Array.of_list (Task.legal_compositions ()) in
  let gen =
    QCheck.Gen.map
      (fun (ci, rpt_num, multi_bank, (swing, w_addr, xprd, thres)) ->
        let class1, class2, class3, class4 =
          compositions.(ci mod Array.length compositions)
        in
        {
          Task.op_param =
            {
              Op_param.default with
              Op_param.swing;
              w_addr;
              x_prd = xprd;
              thres_val = thres;
            };
          rpt_num;
          multi_bank;
          class1;
          class2;
          class3;
          class4;
        })
      (QCheck.Gen.quad QCheck.Gen.nat (QCheck.Gen.int_bound 127)
         (QCheck.Gen.int_bound 3)
         (QCheck.Gen.quad (QCheck.Gen.int_bound 7) (QCheck.Gen.int_bound 511)
            (QCheck.Gen.int_bound 3) (QCheck.Gen.int_bound 15)))
  in
  QCheck.Test.make ~name:"task encode/decode roundtrip" ~count:500
    (QCheck.make gen) (fun t ->
      match Encode.of_int (Encode.to_int t) with
      | Ok t' -> Task.equal t t'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)
(* ------------------------------------------------------------------ *)

let qcheck_decode_encode_identity =
  (* any 48-bit pattern either fails to decode or round-trips bit-exactly *)
  QCheck.Test.make ~name:"decode/encode identity on raw bits" ~count:2000
    (QCheck.make
       (QCheck.Gen.map
          (fun (a, b) -> ((a land 0xffffff) lsl 24) lor (b land 0xffffff))
          (QCheck.Gen.pair QCheck.Gen.nat QCheck.Gen.nat)))
    (fun bits ->
      match Encode.of_int bits with
      | Error _ -> true
      | Ok t -> Encode.to_int t = bits)

let qcheck_asm_parser_total =
  (* the assembler never raises on arbitrary printable junk *)
  QCheck.Test.make ~name:"asm parser is total" ~count:500
    QCheck.printable_string (fun junk ->
      match Asm.parse_program junk with Ok _ | Error _ -> true)

let test_asm_roundtrip () =
  let t =
    Task.make ~rpt_num:126 ~multi_bank:2
      ~op_param:{ Op_param.default with Op_param.swing = 3; w_addr = 17 }
      ~class1:Opcode.C1_asubt
      ~class2:{ Opcode.asd = Opcode.Asd_absolute; avd = true }
      ~class3:Opcode.C3_adc ~class4:Opcode.C4_min ()
  in
  match Asm.parse_task (Asm.print_task t) with
  | Ok t' -> check bool "asm roundtrip" true (Task.equal t t')
  | Error d -> fail (Promise_core.Diag.to_string d)

let test_asm_defaults () =
  match Asm.parse_task "task c1=aREAD c2=sign_mult.avd c3=ADC c4=accumulate" with
  | Ok t ->
      check int "default rpt" 0 t.Task.rpt_num;
      check int "default swing" 7 t.Task.op_param.Op_param.swing
  | Error d -> fail (Promise_core.Diag.to_string d)

let test_asm_comments_and_continuation () =
  let src =
    "# template matching\n\
     task c1=aSUBT c2=absolute.avd c3=ADC \\\n\
    \     c4=min rpt=126 mb=2 ; inline comment\n\n\
     task c1=aREAD c2=sign_mult.avd c3=ADC c4=sigmoid\n"
  in
  match Asm.parse_program src with
  | Ok tasks -> check int "two tasks" 2 (List.length tasks)
  | Error msg -> fail msg

let test_asm_errors () =
  (match Asm.parse_task "task c1=bogus" with
  | Error _ -> ()
  | Ok _ -> fail "unknown mnemonic must fail");
  (match Asm.parse_task "tusk c1=aREAD" with
  | Error _ -> ()
  | Ok _ -> fail "bad keyword must fail");
  match Asm.parse_program "task c1=read c2=square c3=ADC c4=min rpt=5\n" with
  | Error msg ->
      check bool "line number in error" true
        (String.length msg > 0 && msg.[0] = 'l')
  | Ok _ -> fail "illegal composition must fail with line info"

let test_program_roundtrip () =
  let p =
    Program.make ~name:"p" [ dot_task (); dot_task ~rpt_num:3 ~multi_bank:1 () ]
  in
  (match Program.of_asm ~name:"p" (Program.to_asm p) with
  | Ok p' -> check bool "program asm roundtrip" true (Program.equal p p')
  | Error msg -> fail msg);
  match Program.of_binary ~name:"p" (Program.to_binary p) with
  | Ok p' -> check bool "program binary roundtrip" true (Program.equal p p')
  | Error msg -> fail msg

let test_asm_duplicate_field_last_wins () =
  match Asm.parse_task "task c1=aREAD c2=sign_mult.avd c3=ADC c4=accumulate rpt=3 rpt=9" with
  | Ok t -> check int "last rpt wins" 9 t.Task.rpt_num
  | Error d -> fail (Promise_core.Diag.to_string d)

let test_with_swings_mismatch () =
  let p = Program.make ~name:"p" [ dot_task () ] in
  match Program.with_swings p [ 1; 2 ] with
  | exception Invalid_argument _ -> ()
  | _ -> fail "length mismatch must be rejected"

let test_program_helpers () =
  let p =
    Program.make ~name:"p"
      [ dot_task ~rpt_num:9 () ; dot_task ~rpt_num:4 ~multi_bank:2 () ]
  in
  check int "total iterations" 15 (Program.total_iterations p);
  check int "max banks" 4 (Program.max_banks p);
  check (Alcotest.list Alcotest.int) "swings" [ 7 ] (Program.swings p);
  let p' = Program.with_swings p [ 2; 5 ] in
  check (Alcotest.list Alcotest.int) "updated swings" [ 2; 5 ]
    (Program.swings p')

let suite =
  [
    ("class1 code roundtrip", `Quick, test_class1_code_roundtrip);
    ("class2 code roundtrip", `Quick, test_class2_code_roundtrip);
    ("class4 code roundtrip", `Quick, test_class4_code_roundtrip);
    ("class4 reserved code", `Quick, test_class4_reserved_code);
    ("class1 reserved codes", `Quick, test_class1_reserved_codes);
    ("mnemonic roundtrip", `Quick, test_name_roundtrip);
    ("paper opcode values", `Quick, test_paper_codes);
    ("operand usage predicates", `Quick, test_reads_x);
    ("op_param pack/unpack", `Quick, test_op_param_pack_unpack);
    ("op_param bit positions", `Quick, test_op_param_bit_positions);
    ("op_param validation", `Quick, test_op_param_validation);
    ("x address circulation", `Quick, test_x_addr_circulation);
    ("valid dot task", `Quick, test_valid_dot_task);
    ("template matching task (§3.4)", `Quick, test_template_matching_task);
    ("reject multiply after fused op", `Quick, test_invalid_mult_after_fused);
    ("reject aVD without ADC", `Quick, test_invalid_avd_without_adc);
    ("reject aSD on digital read", `Quick, test_invalid_asd_on_digital_read);
    ("reject RPT_NUM overflow", `Quick, test_invalid_rpt_num);
    ("legal composition enumeration", `Quick, test_composition_count);
    ("encode roundtrip examples", `Quick, test_encode_roundtrip_examples);
    ("encode width", `Quick, test_encode_width);
    ("encode bytes roundtrip", `Quick, test_encode_bytes_roundtrip);
    ("program binary roundtrip", `Quick, test_program_binary_roundtrip);
    ("bad binaries rejected", `Quick, test_bad_binary_rejected);
    ("hex roundtrip", `Quick, test_hex_roundtrip);
    ("asm roundtrip", `Quick, test_asm_roundtrip);
    ("asm defaults", `Quick, test_asm_defaults);
    ("asm comments/continuation", `Quick, test_asm_comments_and_continuation);
    ("asm errors", `Quick, test_asm_errors);
    ("program asm/binary roundtrip", `Quick, test_program_roundtrip);
    ("asm duplicate field", `Quick, test_asm_duplicate_field_last_wins);
    ("with_swings mismatch", `Quick, test_with_swings_mismatch);
    ("program helpers", `Quick, test_program_helpers);
    QCheck_alcotest.to_alcotest qcheck_op_param_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_encode_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_decode_encode_identity;
    QCheck_alcotest.to_alcotest qcheck_asm_parser_total;
  ]

let () = Alcotest.run "promise-isa" [ ("isa", suite) ]
