(* Tests for the resilience subsystem: fault-descriptor algebra
   (QCheck properties over the validated builders), BIST localization
   against injected ground truth, lane-sparing recovery, and the typed
   error contract of the builders. *)

module P = Promise
module Arch = P.Arch
module Faults = Arch.Faults
module Selftest = Arch.Selftest
module Dsl = P.Ir.Dsl
module Rt = P.Compiler.Runtime
module Rng = P.Analog.Rng
module E = P.Error

let check = Alcotest.check
let fail = Alcotest.fail
let bool = Alcotest.bool

let fok = function Ok v -> v | Error e -> fail (E.to_string e)

(* ------------------------------------------------------------------ *)
(* Fault-descriptor properties                                         *)
(* ------------------------------------------------------------------ *)

(* Random fault descriptors built through the validated constructors,
   so every generated value is reachable through the public API. *)
let gen_faults st =
  let open QCheck.Gen in
  let ok = function Ok v -> v | Error _ -> assert false in
  let f = ref Faults.none in
  for _ = 1 to int_bound 3 st do
    f :=
      ok
        (Faults.with_stuck_lane !f ~lane:(int_bound 127 st)
           ~code:(int_range (-128) 127 st))
  done;
  for _ = 1 to int_bound 2 st do
    f := ok (Faults.with_dead_lane !f ~lane:(int_bound 127 st))
  done;
  if bool st then f := Faults.with_dead_bank !f;
  if bool st then
    f := Faults.with_adc_offset !f (float_range (-0.2) 0.2 st);
  f := ok (Faults.with_dead_adc_units !f (int_bound 8 st));
  if bool st then
    f :=
      ok
        (Faults.with_xreg_flips !f ~seed:(int_bound 9999 st)
           ~rate:(float_range 0.0 1.0 st));
  f := ok (Faults.with_swing_drift !f (int_bound 7 st));
  f := ok (Faults.with_leakage_mult !f (float_range 1.0 16.0 st));
  !f

let arb_faults = QCheck.make ~print:Faults.to_string gen_faults

let qcheck_string_roundtrip =
  QCheck.Test.make ~name:"faults to_string/of_string round-trip" ~count:300
    arb_faults (fun f ->
      match Faults.of_string (Faults.to_string f) with
      | Ok f' -> Faults.equal f f'
      | Error _ -> false)

let qcheck_apply_stuck_idempotent =
  QCheck.Test.make ~name:"apply_stuck is idempotent" ~count:300
    (QCheck.pair arb_faults
       (QCheck.array_of_size (QCheck.Gen.int_bound 128)
          (QCheck.float_range (-1.0) 1.0)))
    (fun (f, v) ->
      let once = Faults.apply_stuck f v in
      let twice = Faults.apply_stuck f once in
      once = twice)

let qcheck_compose_none_identity =
  QCheck.Test.make ~name:"compose with none is the identity" ~count:300
    arb_faults (fun f ->
      Faults.equal (Faults.compose f Faults.none) f
      && Faults.equal (Faults.compose Faults.none f) f)

let qcheck_is_none_iff_equal_none =
  QCheck.Test.make ~name:"is_none iff equal to none" ~count:300 arb_faults
    (fun f -> Faults.is_none f = Faults.equal f Faults.none)

let test_is_none_after_add () =
  check bool "none is none" true (Faults.is_none Faults.none);
  check bool "compose none none" true
    (Faults.is_none (Faults.compose Faults.none Faults.none));
  check bool "stuck lane is a fault" false
    (Faults.is_none (fok (Faults.with_stuck_lane Faults.none ~lane:0 ~code:1)));
  check bool "dead bank is a fault" false
    (Faults.is_none (Faults.with_dead_bank Faults.none))

let test_compose_merges () =
  let a = fok (Faults.with_stuck_lane Faults.none ~lane:3 ~code:10) in
  let b = fok (Faults.with_dead_lane Faults.none ~lane:7) in
  let c = Faults.compose a b in
  check (Alcotest.list Alcotest.int) "faulty lanes" [ 3; 7 ]
    (Faults.faulty_lanes c);
  (* the right-hand side wins on a conflicting lane *)
  let b' = fok (Faults.with_stuck_lane Faults.none ~lane:3 ~code:99) in
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "conflict resolution" [ (3, 99) ]
    (Faults.stuck_lanes (Faults.compose a b'))

(* ------------------------------------------------------------------ *)
(* Typed errors from the builders                                      *)
(* ------------------------------------------------------------------ *)

let expect_invalid name = function
  | Ok _ -> fail (name ^ ": expected a typed error")
  | Error e ->
      check bool name true (e.E.code = E.Invalid_operand)

let test_builder_errors () =
  expect_invalid "lane out of range"
    (Faults.with_stuck_lane Faults.none ~lane:200 ~code:0);
  expect_invalid "code out of range"
    (Faults.with_stuck_lane Faults.none ~lane:0 ~code:500);
  expect_invalid "adc unit count"
    (Faults.with_dead_adc_units Faults.none 9);
  expect_invalid "flip rate" (Faults.with_xreg_flips Faults.none ~seed:1 ~rate:1.5);
  expect_invalid "swing drift" (Faults.with_swing_drift Faults.none 8);
  expect_invalid "leakage mult" (Faults.with_leakage_mult Faults.none 0.5);
  expect_invalid "unparsable description" (Faults.of_string "garbage")

(* ------------------------------------------------------------------ *)
(* BIST localization                                                   *)
(* ------------------------------------------------------------------ *)

let test_bist_localization () =
  let m = Arch.Machine.create (Arch.Machine.ideal_config ~banks:2) in
  Arch.Bank.set_faults (Arch.Machine.bank m 0)
    (fok (Faults.with_stuck_lane Faults.none ~lane:5 ~code:64));
  Arch.Bank.set_faults (Arch.Machine.bank m 1)
    (fok (Faults.with_dead_adc_units Faults.none 6));
  let report = fok (Selftest.run m) in
  check Alcotest.int "banks tested" 2 report.Selftest.banks_tested;
  check bool "stuck lane localized" true
    (List.exists
       (function
         | Selftest.Stuck_lane { lane = 5; code } -> abs (code - 64) <= 2
         | _ -> false)
       (Selftest.findings_for report ~bank:0));
  check bool "dead ADC units detected" true
    (List.exists
       (function Selftest.Dead_adc _ -> true | _ -> false)
       (Selftest.findings_for report ~bank:1))

let test_bist_clean_machine () =
  let m = Arch.Machine.create (Arch.Machine.ideal_config ~banks:1) in
  let report = fok (Selftest.run m) in
  check Alcotest.int "no findings on a healthy machine" 0
    (List.length report.Selftest.findings)

let test_bist_all_adc_dead () =
  (* Every ADC unit dead: the machine layer refuses to execute; BIST
     must turn that refusal into a localized finding, not an error. *)
  let m = Arch.Machine.create (Arch.Machine.ideal_config ~banks:1) in
  Arch.Bank.set_faults (Arch.Machine.bank m 0)
    (fok (Faults.with_dead_adc_units Faults.none 8));
  let report = fok (Selftest.run m) in
  check bool "all-dead ADC reported" true
    (List.exists
       (function Selftest.Dead_adc _ -> true | _ -> false)
       (Selftest.findings_for report ~bank:0))

let test_bist_all_banks_dead () =
  (* Every bank dead: BIST must still return a report localizing every
     bank, and the derived recovery must exclude them all. *)
  let m = Arch.Machine.create (Arch.Machine.ideal_config ~banks:2) in
  for b = 0 to 1 do
    Arch.Bank.set_faults (Arch.Machine.bank m b)
      (Faults.with_dead_bank Faults.none)
  done;
  let report = fok (Selftest.run m) in
  for b = 0 to 1 do
    check bool
      (Printf.sprintf "dead bank %d reported" b)
      true
      (List.exists
         (function Selftest.Dead_bank -> true | _ -> false)
         (Selftest.findings_for report ~bank:b))
  done;
  let recovery = Rt.recovery_of_report report in
  check (Alcotest.list Alcotest.int) "recovery excludes every bank" [ 0; 1 ]
    (List.sort compare recovery.Rt.excluded_banks)

(* ------------------------------------------------------------------ *)
(* Lane-sparing recovery                                               *)
(* ------------------------------------------------------------------ *)

let test_lane_sparing_recovery () =
  let make_machine () =
    let m = Arch.Machine.create (Arch.Machine.ideal_config ~banks:1) in
    Arch.Bank.set_faults (Arch.Machine.bank m 0)
      (fok (Faults.with_stuck_lane Faults.none ~lane:5 ~code:100));
    m
  in
  let rows = 4 and cols = 40 in
  let rng = Rng.create 1003 in
  let w =
    Array.init rows (fun _ ->
        Array.init cols (fun _ -> Rng.uniform rng ~lo:(-0.8) ~hi:0.8))
  in
  let x = Array.init cols (fun _ -> Rng.uniform rng ~lo:(-0.8) ~hi:0.8) in
  let k =
    Dsl.kernel ~name:"t_spare"
      ~decls:
        [
          Dsl.matrix "W" ~rows ~cols;
          Dsl.vector "x" ~len:cols;
          Dsl.out_vector "out" ~len:rows;
        ]
      [ Dsl.for_store ~iterations:rows ~out:"out" (Dsl.dot "W" "x") ]
  in
  let reference = P.Ml.Linalg.mat_vec w x in
  let worst_error ?recovery () =
    let b = Rt.bindings () in
    Rt.bind_matrix b "W" w;
    Rt.bind_vector b "x" x;
    let g = fok (P.compile k) in
    let r = fok (Rt.run ~machine:(make_machine ()) ?recovery g b) in
    let o = fok (Rt.final_output r) in
    Array.to_seqi o.Rt.values
    |> Seq.fold_left
         (fun acc (i, v) -> Float.max acc (Float.abs (v -. reference.(i))))
         0.0
  in
  let recovery : Rt.recovery =
    {
      Rt.default_recovery with
      Rt.spared_lanes = [ 5 ];
      max_retries = 0;
      digital_fallback = false;
    }
  in
  let unspared = worst_error () in
  let spared = worst_error ~recovery () in
  check bool
    (Printf.sprintf "stuck lane corrupts the result (%.4f)" unspared)
    true (unspared > 0.3);
  check bool
    (Printf.sprintf "sparing restores accuracy (%.4f)" spared)
    true (spared < 0.05)

(* ------------------------------------------------------------------ *)
(* Degradation to the digital fallback when no analog resource is left *)
(* ------------------------------------------------------------------ *)

let small_kernel_setup () =
  let rows = 4 and cols = 40 in
  let rng = Rng.create 2203 in
  let w =
    Array.init rows (fun _ ->
        Array.init cols (fun _ -> Rng.uniform rng ~lo:(-0.8) ~hi:0.8))
  in
  let x = Array.init cols (fun _ -> Rng.uniform rng ~lo:(-0.8) ~hi:0.8) in
  let k =
    Dsl.kernel ~name:"t_degrade"
      ~decls:
        [
          Dsl.matrix "W" ~rows ~cols;
          Dsl.vector "x" ~len:cols;
          Dsl.out_vector "out" ~len:rows;
        ]
      [ Dsl.for_store ~iterations:rows ~out:"out" (Dsl.dot "W" "x") ]
  in
  let b = Rt.bindings () in
  Rt.bind_matrix b "W" w;
  Rt.bind_vector b "x" x;
  (fok (P.compile k), b, P.Ml.Linalg.mat_vec w x)

let check_digital_run ~name r reference =
  let o = fok (Rt.final_output r) in
  check bool (name ^ ": chunks fell back") true (r.Rt.stats.Rt.fallbacks > 0);
  Array.iteri
    (fun i v ->
      check bool
        (Printf.sprintf "%s: out[%d] accurate (%.4f vs %.4f)" name i v
           reference.(i))
        true
        (Float.abs (v -. reference.(i)) < 0.05))
    o.Rt.values

let test_all_banks_excluded_falls_back () =
  (* Recovery excludes every bank: with the fallback on, the whole run
     degrades to the digital reference instead of failing. *)
  let g, b, reference = small_kernel_setup () in
  let m = Arch.Machine.create (Arch.Machine.ideal_config ~banks:2) in
  let recovery =
    { Rt.default_recovery with Rt.excluded_banks = [ 0; 1 ] }
  in
  check_digital_run ~name:"all-banks-excluded"
    (fok (Rt.run ~machine:m ~recovery g b))
    reference

let test_all_lanes_spared_falls_back () =
  (* Sparing all 128 lanes leaves no healthy column anywhere: same
     digital degradation, through the lane rather than the bank path. *)
  let g, b, reference = small_kernel_setup () in
  let m = Arch.Machine.create (Arch.Machine.ideal_config ~banks:2) in
  let recovery =
    {
      Rt.default_recovery with
      Rt.spared_lanes = List.init 128 (fun l -> l);
    }
  in
  check_digital_run ~name:"all-lanes-spared"
    (fok (Rt.run ~machine:m ~recovery g b))
    reference

let test_no_resource_without_fallback_is_typed () =
  (* With the fallback off the same situations are a typed Capacity
     error, never an exception. *)
  let g, b, _ = small_kernel_setup () in
  let expect_capacity name recovery =
    let m = Arch.Machine.create (Arch.Machine.ideal_config ~banks:2) in
    match Rt.run ~machine:m ~recovery g b with
    | Ok _ -> fail (name ^ ": expected a Capacity error")
    | Error e -> check bool name true (e.E.code = E.Capacity)
  in
  expect_capacity "all banks excluded, no fallback"
    {
      Rt.default_recovery with
      Rt.excluded_banks = [ 0; 1 ];
      digital_fallback = false;
    };
  expect_capacity "all lanes spared, no fallback"
    {
      Rt.default_recovery with
      Rt.spared_lanes = List.init 128 (fun l -> l);
      digital_fallback = false;
    }

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "resilience"
    [
      ( "faults",
        [
          QCheck_alcotest.to_alcotest qcheck_string_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_apply_stuck_idempotent;
          QCheck_alcotest.to_alcotest qcheck_compose_none_identity;
          QCheck_alcotest.to_alcotest qcheck_is_none_iff_equal_none;
          Alcotest.test_case "is_none after add/compose" `Quick
            test_is_none_after_add;
          Alcotest.test_case "compose merges lane faults" `Quick
            test_compose_merges;
          Alcotest.test_case "builders reject bad inputs with typed errors"
            `Quick test_builder_errors;
        ] );
      ( "selftest",
        [
          Alcotest.test_case "localizes stuck lane and dead ADC" `Quick
            test_bist_localization;
          Alcotest.test_case "clean machine reports nothing" `Quick
            test_bist_clean_machine;
          Alcotest.test_case "all ADC units dead becomes a finding" `Quick
            test_bist_all_adc_dead;
          Alcotest.test_case "all banks dead: localized and excluded" `Quick
            test_bist_all_banks_dead;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "lane sparing restores a stuck-lane kernel"
            `Quick test_lane_sparing_recovery;
          Alcotest.test_case "all banks excluded degrades to digital" `Quick
            test_all_banks_excluded_falls_back;
          Alcotest.test_case "all lanes spared degrades to digital" `Quick
            test_all_lanes_spared_falls_back;
          Alcotest.test_case "no analog resource without fallback is typed"
            `Quick test_no_resource_without_fallback_is_typed;
        ] );
    ]
