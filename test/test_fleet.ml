(* Fleet execution: IPC framing, shard arithmetic, worker crash /
   restart / quarantine supervision, per-shard checkpoint resume, and
   the bit-identity of fleets that lost workers or were interrupted. *)

open Alcotest
module P = Promise
module E = P.Error
module Ipc = P.Ipc
module Fleet = P.Fleet
module Ckpt = P.Checkpoint
module Inc = P.Incident
module Sup = P.Supervisor

let get_ok = function
  | Ok v -> v
  | Error e -> fail ("unexpected error: " ^ E.to_string e)

let tmp_path suffix =
  let path = Filename.temp_file "promise-test" suffix in
  Sys.remove path;
  path

let tmp_dir () =
  let path = tmp_path ".fleet" in
  Unix.mkdir path 0o755;
  path

let no_sleep _ = ()

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let count_substring ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i acc =
    if i + nl > hl then acc
    else if String.sub hay i nl = needle then go (i + nl) (acc + 1)
    else go (i + 1) acc
  in
  if nl = 0 then 0 else go 0 0

let fleet_config ?shard_timeout_ms ?liveness_timeout_ms ?heartbeat_ms
    ?max_restarts ?incidents ?checkpoint_dir ?resume ?chaos ?stop
    ?(workers = 2) () =
  get_ok
    (Fleet.config ~workers ?shard_timeout_ms ?liveness_timeout_ms
       ?heartbeat_ms ?max_restarts ?incidents ?checkpoint_dir ?resume ?chaos
       ?stop ~sleep:no_sleep ())

(* ------------------------------------------------------------------ *)
(* IPC framing                                                         *)
(* ------------------------------------------------------------------ *)

let test_ipc_roundtrip () =
  let r, w = Unix.pipe () in
  let v1 = (42, "hello", [ 1.5; 2.5 ]) in
  get_ok (Ipc.write w v1);
  get_ok (Ipc.write w ((0, "", []) : int * string * float list));
  (match (get_ok (Ipc.read r) : (int * string * float list) option) with
  | Some v -> check bool "first frame round-trips" true (v = v1)
  | None -> fail "unexpected EOF");
  (match (get_ok (Ipc.read r) : (int * string * float list) option) with
  | Some v -> check bool "second frame round-trips" true (v = (0, "", []))
  | None -> fail "unexpected EOF");
  Unix.close w;
  (match (get_ok (Ipc.read r) : (int * string * float list) option) with
  | None -> ()
  | Some _ -> fail "expected clean EOF after writer close");
  Unix.close r

let test_ipc_large_frame () =
  (* 1 MiB exceeds any pipe buffer, so the write needs a concurrently
     draining reader. A forked writer, not a domain: OCaml 5 forbids
     Unix.fork once any other domain has ever been spawned, and the
     fleet tests below must still be allowed to fork. *)
  let payload = Bytes.make (1024 * 1024) 'x' in
  let r, w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      ignore (Ipc.write w payload);
      Unix._exit 0
  | pid -> (
      Unix.close w;
      (match (get_ok (Ipc.read r) : Bytes.t option) with
      | Some back ->
          check bool "1 MiB payload round-trips" true (back = payload)
      | None -> fail "unexpected EOF");
      Unix.close r;
      ignore (Unix.waitpid [] pid))

let test_ipc_truncated_frame () =
  let r, w = Unix.pipe () in
  (* a valid header announcing 100 bytes, then only 10 and EOF *)
  let junk = Bytes.create 18 in
  Bytes.blit_string "PIP1" 0 junk 0 4;
  Bytes.set_int32_be junk 4 100l;
  ignore (Unix.write w junk 0 18);
  Unix.close w;
  (match (Ipc.read r : (int option, E.t) result) with
  | Error e ->
      check string "typed error" "invalid-operand" (E.code_name e.E.code)
  | Ok _ -> fail "expected a mid-frame error");
  Unix.close r

let test_ipc_bad_magic () =
  let r, w = Unix.pipe () in
  ignore (Unix.write_substring w "XXXX\x00\x00\x00\x01z" 0 9);
  Unix.close w;
  (match (Ipc.read r : (int option, E.t) result) with
  | Error e ->
      check string "typed error" "invalid-operand" (E.code_name e.E.code)
  | Ok _ -> fail "expected a bad-magic error");
  Unix.close r

(* ------------------------------------------------------------------ *)
(* Shard arithmetic                                                    *)
(* ------------------------------------------------------------------ *)

let qcheck_ranges_partition =
  QCheck.Test.make
    ~name:"ranges is a contiguous balanced partition of 0..items-1"
    ~count:200
    QCheck.(pair (int_range 1 64) (int_bound 500))
    (fun (shards, items) ->
      let r = Fleet.ranges ~shards ~items in
      let lens = Array.to_list (Array.map snd r) in
      let total = List.fold_left ( + ) 0 lens in
      let contiguous =
        fst
          (Array.fold_left
             (fun (ok, next) (off, len) -> (ok && off = next, off + len))
             (true, 0) r)
      in
      let balanced =
        match lens with
        | [] -> true
        | hd :: _ ->
            List.fold_left max hd lens - List.fold_left min hd lens <= 1
      in
      total = items
      && contiguous && balanced
      && Array.length r = min shards items
      && List.for_all (fun l -> l > 0) lens)

let test_shard_seed () =
  check int "deterministic" (Fleet.shard_seed ~seed:7 ~shard:3)
    (Fleet.shard_seed ~seed:7 ~shard:3);
  check bool "shards decorrelated" true
    (Fleet.shard_seed ~seed:7 ~shard:3 <> Fleet.shard_seed ~seed:7 ~shard:4);
  check bool "seeds decorrelated" true
    (Fleet.shard_seed ~seed:7 ~shard:3 <> Fleet.shard_seed ~seed:8 ~shard:3);
  check bool "non-negative" true (Fleet.shard_seed ~seed:0 ~shard:0 >= 0)

let test_config_validation () =
  let bad = function
    | Error (e : E.t) ->
        check string "invalid-operand" "invalid-operand" (E.code_name e.E.code)
    | Ok _ -> fail "expected Error"
  in
  bad (Fleet.config ~workers:0 ());
  bad (Fleet.config ~workers:65 ());
  bad (Fleet.config ~heartbeat_ms:0.0 ());
  bad (Fleet.config ~max_restarts:(-1) ());
  bad (Fleet.config ~shard_timeout_ms:(-5.0) ());
  bad (Fleet.config ~liveness_timeout_ms:0.0 ())

(* ------------------------------------------------------------------ *)
(* Fleet runs                                                          *)
(* ------------------------------------------------------------------ *)

let expect_done = function
  | Fleet.Fleet_done (slots, summary) -> (slots, summary)
  | Fleet.Fleet_interrupted _ -> fail "unexpected interruption"
  | Fleet.Fleet_rejected e -> fail ("rejected: " ^ E.to_string e)

let test_fleet_basic () =
  let cfg = fleet_config ~workers:3 () in
  let outcome =
    Fleet.run cfg ~digest:"basic" ~shards:7 ~f:(fun ~shard ->
        Ok (shard * shard))
  in
  let slots, summary = expect_done outcome in
  check int "seven slots" 7 (Array.length slots);
  Array.iteri
    (fun i slot -> check int "shard-major result" (i * i) (get_ok slot))
    slots;
  check int "summary shards" 7 summary.Fleet.shards;
  check int "summary workers" 3 summary.Fleet.workers;
  check int "no restarts" 0 summary.Fleet.restarts;
  check int "nothing resumed" 0 summary.Fleet.resumed;
  check int "nothing quarantined" 0 summary.Fleet.quarantined

let test_fleet_single_shard_more_workers () =
  (* workers clamp to the pending shard count *)
  let cfg = fleet_config ~workers:4 () in
  let slots, summary =
    expect_done
      (Fleet.run cfg ~digest:"clamp" ~shards:1 ~f:(fun ~shard -> Ok shard))
  in
  check int "one slot" 1 (Array.length slots);
  check int "workers clamped" 1 summary.Fleet.workers

let test_fleet_rejects_zero_shards () =
  let cfg = fleet_config () in
  match Fleet.run cfg ~digest:"zero" ~shards:0 ~f:(fun ~shard -> Ok shard) with
  | Fleet.Fleet_rejected e ->
      check string "invalid-operand" "invalid-operand" (E.code_name e.E.code)
  | _ -> fail "expected rejection"

(* A shard function that SIGKILLs its own worker on the first attempt
   (marker file absent), then succeeds on the retry. This is the
   kill-a-worker-mid-run ≡ clean-run property: the parent must detect
   the death, respawn, re-assign, and aggregate identically. *)
let self_kill_once ~marker ~shard =
  if shard = 2 && not (Sys.file_exists marker) then begin
    let oc = open_out marker in
    close_out oc;
    Unix.kill (Unix.getpid ()) Sys.sigkill
  end;
  Ok (shard * 10)

let test_fleet_worker_crash_restart () =
  let marker = tmp_path ".marker" in
  let buf = Buffer.create 256 in
  let inc = Inc.to_buffer buf in
  let cfg = fleet_config ~workers:2 ~incidents:inc () in
  let slots, summary =
    expect_done
      (Fleet.run cfg ~digest:"crash" ~shards:5
         ~f:(fun ~shard -> self_kill_once ~marker ~shard))
  in
  Array.iteri
    (fun i slot ->
      check int "identical to a clean run" (i * 10) (get_ok slot))
    slots;
  check bool "the death was observed" true (summary.Fleet.restarts >= 1);
  check int "no quarantine" 0 summary.Fleet.quarantined;
  check bool "shard 2 consumed an extra attempt" true
    (summary.Fleet.timings.(2).Fleet.t_attempts >= 2);
  check bool "worker-death incident" true
    (contains ~needle:"worker-death" (Buffer.contents buf));
  Sys.remove marker

let test_fleet_quarantine () =
  let buf = Buffer.create 256 in
  let inc = Inc.to_buffer buf in
  let cfg = fleet_config ~workers:2 ~max_restarts:1 ~incidents:inc () in
  let slots, summary =
    expect_done
      (Fleet.run cfg ~digest:"quarantine" ~shards:3 ~f:(fun ~shard ->
           if shard = 1 then Unix.kill (Unix.getpid ()) Sys.sigkill;
           Ok shard))
  in
  check int "shard 0 fine" 0 (get_ok slots.(0));
  check int "shard 2 fine" 2 (get_ok slots.(2));
  (match slots.(1) with
  | Error e ->
      check string "typed quarantine" "retry-exhausted" (E.code_name e.E.code)
  | Ok _ -> fail "expected shard 1 quarantined");
  check int "one quarantined" 1 summary.Fleet.quarantined;
  check bool "restarts consumed" true (summary.Fleet.restarts >= 2)

let test_fleet_shard_deadline () =
  let cfg =
    fleet_config ~workers:1 ~max_restarts:0 ~shard_timeout_ms:300.0
      ~heartbeat_ms:20.0 ()
  in
  let slots, summary =
    expect_done
      (Fleet.run cfg ~digest:"deadline" ~shards:2 ~f:(fun ~shard ->
           if shard = 0 then
             while true do
               Unix.sleepf 0.05
             done;
           Ok shard))
  in
  (match slots.(0) with
  | Error e ->
      check string "overdue shard quarantined" "retry-exhausted"
        (E.code_name e.E.code)
  | Ok _ -> fail "expected the wedged shard to be killed");
  check int "sibling survives" 1 (get_ok slots.(1));
  check int "one quarantined" 1 summary.Fleet.quarantined

let test_fleet_liveness () =
  (* SIGSTOP freezes the whole worker, heartbeat domain included: the
     liveness watchdog must SIGKILL it (SIGKILL works on stopped
     processes) and quarantine the shard *)
  let cfg =
    fleet_config ~workers:1 ~max_restarts:0 ~liveness_timeout_ms:400.0
      ~heartbeat_ms:20.0 ()
  in
  let slots, _summary =
    expect_done
      (Fleet.run cfg ~digest:"liveness" ~shards:2 ~f:(fun ~shard ->
           if shard = 0 then begin
             Unix.kill (Unix.getpid ()) Sys.sigstop;
             (* unreachable until SIGKILL *)
             Unix.sleepf 60.0
           end;
           Ok shard))
  in
  (match slots.(0) with
  | Error e ->
      check string "wedged worker quarantined" "retry-exhausted"
        (E.code_name e.E.code)
  | Ok _ -> fail "expected the stopped worker to be killed");
  check int "sibling survives" 1 (get_ok slots.(1))

(* ------------------------------------------------------------------ *)
(* Checkpoints and resume                                              *)
(* ------------------------------------------------------------------ *)

let test_fleet_checkpoint_resume () =
  let dir = tmp_dir () in
  let cfg =
    fleet_config ~workers:2 ~max_restarts:0 ~checkpoint_dir:dir ()
  in
  (* first run: shard 3 always dies -> quarantined; the other shards
     complete and persist their checkpoints (kept, because a slot is
     Error) *)
  let slots, _ =
    expect_done
      (Fleet.run cfg ~digest:"resume" ~shards:4 ~f:(fun ~shard ->
           if shard = 3 then Unix.kill (Unix.getpid ()) Sys.sigkill;
           Ok (shard + 100)))
  in
  check bool "shard 3 quarantined" true (Result.is_error slots.(3));
  check bool "successful shards checkpointed" true
    (Sys.file_exists (Filename.concat dir "shard-0000.ckpt"));
  (* second run, resume: only shard 3 is computed (prove it by failing
     loudly if any other shard executes), and now it succeeds *)
  let cfg2 =
    fleet_config ~workers:2 ~checkpoint_dir:dir ~resume:true ()
  in
  let slots2, summary2 =
    expect_done
      (Fleet.run cfg2 ~digest:"resume" ~shards:4 ~f:(fun ~shard ->
           if shard <> 3 then
             E.fail ~layer:"test" "resumed shard must not recompute"
           else Ok (shard + 100)))
  in
  Array.iteri
    (fun i slot ->
      check int "aggregate identical to a clean run" (i + 100) (get_ok slot))
    slots2;
  check int "three shards resumed" 3 summary2.Fleet.resumed;
  check bool "resumed shard marked" true
    summary2.Fleet.timings.(0).Fleet.t_resumed;
  check bool "computed shard not marked" true
    (not summary2.Fleet.timings.(3).Fleet.t_resumed);
  (* a fully-Ok fleet removes its checkpoints *)
  check bool "checkpoints removed after success" true
    (not (Sys.file_exists (Filename.concat dir "shard-0000.ckpt")));
  Unix.rmdir dir

let test_fleet_stale_digest_rejected () =
  let dir = tmp_dir () in
  let cfg = fleet_config ~workers:1 ~checkpoint_dir:dir () in
  let _ =
    expect_done
      (Fleet.run cfg ~digest:"digest-A" ~shards:2 ~f:(fun ~shard ->
           if shard = 1 then E.fail ~layer:"test" "keep checkpoints"
           else Ok shard))
  in
  let cfg2 = fleet_config ~workers:1 ~checkpoint_dir:dir ~resume:true () in
  (match
     Fleet.run cfg2 ~digest:"digest-B" ~shards:2 ~f:(fun ~shard -> Ok shard)
   with
  | Fleet.Fleet_rejected e ->
      check string "stale checkpoint rejected" "stale-checkpoint"
        (E.code_name e.E.code)
  | _ -> fail "expected rejection");
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  Unix.rmdir dir

let test_fleet_interrupt_and_resume () =
  let dir = tmp_dir () in
  let stop = Sup.never_stop () in
  let cfg = fleet_config ~workers:1 ~checkpoint_dir:dir ~stop () in
  (* stop after the first completed shard: a single worker processes
     shards one at a time, so at least one remains *)
  let outcome =
    Fleet.run
      ~on_shard_done:(fun ~shard:_ ~completed ~total:_ ->
        if completed = 1 then Sup.request_stop stop)
      cfg ~digest:"interrupt" ~shards:3
      ~f:(fun ~shard -> Ok (shard * 7))
  in
  (match outcome with
  | Fleet.Fleet_interrupted { completed; total } ->
      check int "three total" 3 total;
      check bool "not all done" true (completed < 3);
      check bool "some progress" true (completed >= 1)
  | _ -> fail "expected interruption");
  let cfg2 = fleet_config ~workers:1 ~checkpoint_dir:dir ~resume:true () in
  let slots, summary =
    expect_done
      (Fleet.run cfg2 ~digest:"interrupt" ~shards:3 ~f:(fun ~shard ->
           Ok (shard * 7)))
  in
  Array.iteri
    (fun i slot -> check int "identical to a clean run" (i * 7) (get_ok slot))
    slots;
  check bool "resumed the interrupted progress" true
    (summary.Fleet.resumed >= 1);
  Unix.rmdir dir

let test_fleet_error_slot_keeps_checkpoints () =
  (* an Error returned by f (no worker death involved) must also keep
     the siblings' checkpoints for a later resume *)
  let dir = tmp_dir () in
  let cfg = fleet_config ~workers:2 ~checkpoint_dir:dir () in
  let _ =
    expect_done
      (Fleet.run cfg ~digest:"full" ~shards:3 ~f:(fun ~shard ->
           if shard = 0 then E.fail ~layer:"test" "keep checkpoints"
           else Ok shard))
  in
  check bool "siblings kept their checkpoints" true
    (Sys.file_exists (Filename.concat dir "shard-0001.ckpt"));
  (* resume: only shard 0 recomputes; success removes everything *)
  let cfg2 = fleet_config ~workers:2 ~checkpoint_dir:dir ~resume:true () in
  let slots, summary =
    expect_done
      (Fleet.run cfg2 ~digest:"full" ~shards:3 ~f:(fun ~shard ->
           if shard <> 0 then
             E.fail ~layer:"test" "resumed shard must not recompute"
           else Ok shard))
  in
  Array.iteri (fun i slot -> check int "slot" i (get_ok slot)) slots;
  check int "two resumed" 2 summary.Fleet.resumed;
  check int "checkpoints removed" 0 (Array.length (Sys.readdir dir));
  Unix.rmdir dir

let test_fleet_all_resumed_no_fork () =
  (* when every shard loads from a checkpoint the fleet must not run
     [f] at all and still report the full result *)
  let dir = tmp_dir () in
  let digest = "everything" in
  let shards = 3 in
  for s = 0 to shards - 1 do
    get_ok
      (Ckpt.save
         ~path:(Filename.concat dir (Printf.sprintf "shard-%04d.ckpt" s))
         ~config_digest:
           (Ckpt.digest_of_config ~kind:"fleet-shard"
              [ digest; string_of_int shards; string_of_int s ])
         (s * 11))
  done;
  let cfg = fleet_config ~workers:2 ~checkpoint_dir:dir ~resume:true () in
  let slots, summary =
    expect_done
      (Fleet.run cfg ~digest ~shards ~f:(fun ~shard:_ ->
           (E.fail ~layer:"test" "nothing may execute" : (int, E.t) result)))
  in
  Array.iteri
    (fun i slot -> check int "loaded result" (i * 11) (get_ok slot))
    slots;
  check int "all resumed" shards summary.Fleet.resumed;
  check int "checkpoints removed" 0 (Array.length (Sys.readdir dir));
  Unix.rmdir dir

(* ------------------------------------------------------------------ *)
(* Chaos                                                               *)
(* ------------------------------------------------------------------ *)

let test_fleet_chaos_kill_one () =
  let buf = Buffer.create 256 in
  let inc = Inc.to_buffer buf in
  let cfg =
    fleet_config ~workers:2 ~chaos:Fleet.Kill_one ~incidents:inc ()
  in
  let slots, summary =
    expect_done
      (Fleet.run cfg ~digest:"chaos" ~shards:6 ~f:(fun ~shard ->
           (* slow enough that the chaos monkey finds a busy worker *)
           Unix.sleepf 0.05;
           Ok (shard + 1)))
  in
  Array.iteri
    (fun i slot ->
      check int "output identical despite the kill" (i + 1) (get_ok slot))
    slots;
  check int "nothing quarantined" 0 summary.Fleet.quarantined;
  check int "exactly one chaos kill" 1
    (count_substring ~needle:"\"kind\":\"chaos\"" (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Campaign over a fleet ≡ the in-process campaign                     *)
(* ------------------------------------------------------------------ *)

let test_campaign_fleet_matches_plain () =
  let scenarios = [ List.hd (P.Campaign.quick_scenarios ()) ] in
  let benchmarks = [ P.Benchmarks.matched_filter () ] in
  let plain = P.Campaign.run_cells ~scenarios ~benchmarks () in
  let cfg = fleet_config ~workers:2 () in
  match P.Campaign.run_cells_fleet cfg ~shards:2 ~scenarios ~benchmarks () with
  | P.Campaign.Fleet_completed (results, summary) ->
      check int "same cell count" (List.length plain) (List.length results);
      List.iter2
        (fun (c : P.Campaign.cell) (r : P.Campaign.cell_result) ->
          check bool "cell identical to the in-process path" true
            (get_ok r.P.Campaign.r_cell = c))
        plain results;
      check int "no quarantine" 0 summary.Fleet.quarantined
  | _ -> fail "expected completion"

(* Chaos kill-one at batch 8: a fleet that loses a worker mid-run must
   produce cells byte-identical to the uninterrupted in-process batched
   campaign (the shard checkpoint digest folds the batch width in, so
   the restarted worker re-executes at the same width). *)
let test_campaign_fleet_batch_chaos () =
  let scenarios = [ List.hd (P.Campaign.quick_scenarios ()) ] in
  let benchmarks = [ P.Benchmarks.matched_filter () ] in
  let batch = 8 in
  let plain = P.Campaign.run_cells ~batch ~scenarios ~benchmarks () in
  let buf = Buffer.create 256 in
  let inc = Inc.to_buffer buf in
  let cfg =
    fleet_config ~workers:2 ~chaos:Fleet.Kill_one ~incidents:inc ()
  in
  match
    P.Campaign.run_cells_fleet ~batch cfg ~shards:2 ~scenarios ~benchmarks ()
  with
  | P.Campaign.Fleet_completed (results, summary) ->
      check int "same cell count" (List.length plain) (List.length results);
      List.iter2
        (fun (c : P.Campaign.cell) (r : P.Campaign.cell_result) ->
          check bool "batched cell identical despite the kill" true
            (get_ok r.P.Campaign.r_cell = c))
        plain results;
      check int "nothing quarantined" 0 summary.Fleet.quarantined;
      check int "exactly one chaos kill" 1
        (count_substring ~needle:"\"kind\":\"chaos\"" (Buffer.contents buf))
  | _ -> fail "expected completion"

(* A checkpoint written at one batch width must be a stale checkpoint
   at another: the campaign folds the width into the config digest. *)
let test_campaign_digest_includes_batch () =
  let scenarios = [ List.hd (P.Campaign.quick_scenarios ()) ] in
  let benchmarks = [ P.Benchmarks.matched_filter () ] in
  let d1 = P.Campaign.config_digest ~batch:1 ~scenarios ~benchmarks () in
  let d8 = P.Campaign.config_digest ~batch:8 ~scenarios ~benchmarks () in
  let d1' = P.Campaign.config_digest ~scenarios ~benchmarks () in
  check bool "batch 1 and 8 digests differ" true (d1 <> d8);
  check string "batch defaults to 1" d1 d1'

let () =
  run "promise-fleet"
    [
      ( "ipc",
        [
          test_case "frame roundtrip and clean EOF" `Quick test_ipc_roundtrip;
          test_case "1 MiB frame crosses the pipe" `Quick test_ipc_large_frame;
          test_case "truncated frame is a typed error" `Quick
            test_ipc_truncated_frame;
          test_case "bad magic is a typed error" `Quick test_ipc_bad_magic;
        ] );
      ( "shards",
        [
          QCheck_alcotest.to_alcotest qcheck_ranges_partition;
          test_case "shard_seed splits deterministically" `Quick
            test_shard_seed;
          test_case "config validation" `Quick test_config_validation;
        ] );
      ( "fleet",
        [
          test_case "shard-major aggregation across workers" `Quick
            test_fleet_basic;
          test_case "workers clamp to shard count" `Quick
            test_fleet_single_shard_more_workers;
          test_case "zero shards rejected" `Quick
            test_fleet_rejects_zero_shards;
          test_case "kill -9 a worker mid-run = clean run" `Quick
            test_fleet_worker_crash_restart;
          test_case "repeatedly dying shard is quarantined" `Quick
            test_fleet_quarantine;
          test_case "overdue shard is killed and quarantined" `Quick
            test_fleet_shard_deadline;
          test_case "silent (stopped) worker is killed" `Quick
            test_fleet_liveness;
          test_case "chaos kill-one leaves output identical" `Quick
            test_fleet_chaos_kill_one;
        ] );
      ( "resume",
        [
          test_case "per-shard checkpoint resume" `Quick
            test_fleet_checkpoint_resume;
          test_case "stale digest rejects the run" `Quick
            test_fleet_stale_digest_rejected;
          test_case "interrupt via stop flag, then resume" `Quick
            test_fleet_interrupt_and_resume;
          test_case "an Error slot keeps sibling checkpoints" `Quick
            test_fleet_error_slot_keeps_checkpoints;
          test_case "fully-checkpointed fleet forks nothing" `Quick
            test_fleet_all_resumed_no_fork;
        ] );
      ( "campaign",
        [
          test_case "fleet campaign = in-process campaign" `Slow
            test_campaign_fleet_matches_plain;
          test_case "chaos kill-one at batch 8 = uninterrupted batch 8"
            `Slow test_campaign_fleet_batch_chaos;
          test_case "config digest folds the batch width in" `Quick
            test_campaign_digest_includes_batch;
        ] );
    ]
