(* Architecture simulator tests: timing, storage, TH unit, bank
   semantics, layout planning, machine execution. *)

open Promise.Arch
open Promise.Isa
module Analog = Promise.Analog

let check = Alcotest.check
let fail = Alcotest.fail
let bool = Alcotest.bool
let int = Alcotest.int
let close eps = Alcotest.float eps

let dot_task ?(rpt_num = 0) ?(multi_bank = 0) ?(op_param = Op_param.default) ()
    =
  Task.make ~op_param ~rpt_num ~multi_bank ~class1:Opcode.C1_aread
    ~class2:{ Opcode.asd = Opcode.Asd_sign_mult; avd = true }
    ~class3:Opcode.C3_adc ~class4:Opcode.C4_accumulate ()

let l1_task ?(rpt_num = 0) ?(multi_bank = 0) ?(class4 = Opcode.C4_accumulate)
    ?(op_param = Op_param.default) () =
  Task.make ~op_param ~rpt_num ~multi_bank ~class1:Opcode.C1_asubt
    ~class2:{ Opcode.asd = Opcode.Asd_absolute; avd = true }
    ~class3:Opcode.C3_adc ~class4 ()

(* ------------------------------------------------------------------ *)
(* Timing (Table 3)                                                    *)
(* ------------------------------------------------------------------ *)

let test_table3_delays () =
  check int "aREAD 5" 5 (Timing.class1_delay Opcode.C1_aread);
  check int "aSUBT 7" 7 (Timing.class1_delay Opcode.C1_asubt);
  check int "write 2" 2 (Timing.class1_delay Opcode.C1_write);
  check int "square 8" 8
    (Timing.class2_delay { Opcode.asd = Opcode.Asd_square; avd = true });
  check int "mult 14" 14
    (Timing.class2_delay { Opcode.asd = Opcode.Asd_sign_mult; avd = true });
  check int "ADC 138" 138 (Timing.class3_latency Opcode.C3_adc);
  check int "min 4" 4 (Timing.class4_delay Opcode.C4_min);
  check int "sigmoid 3" 3 (Timing.class4_delay Opcode.C4_sigmoid)

let test_tp_is_max_of_used_stages () =
  (* k-NN L1: aSUBT(7) + absolute(6) + min(4) -> TP = 7 (paper §6.2) *)
  check int "L1 TP = 7" 7 (Timing.task_tp (l1_task ~class4:Opcode.C4_min ()));
  (* dot product: aREAD(5) + mult(14) -> TP = 14 *)
  check int "dot TP = 14" 14 (Timing.task_tp (dot_task ()));
  (* L2: aSUBT(7) + square(8) -> TP = 8 *)
  let l2 =
    Task.make ~class1:Opcode.C1_asubt
      ~class2:{ Opcode.asd = Opcode.Asd_square; avd = true }
      ~class3:Opcode.C3_adc ~class4:Opcode.C4_min ()
  in
  check int "L2 TP = 8" 8 (Timing.task_tp l2)

let test_worst_case_tp () =
  (* accommodating every ISA op costs TP = 14: up to 2x over a task
     that only needs 7 (paper §3.2) *)
  check int "worst-case TP" 14 (Timing.worst_case_tp ());
  let l1 = l1_task ~class4:Opcode.C4_min () in
  let ratio =
    float_of_int (Timing.worst_case_tp ()) /. float_of_int (Timing.task_tp l1)
  in
  check bool "2x degradation for L1 kernels" true (ratio >= 1.9)

let test_task_cycles () =
  let t = l1_task ~rpt_num:127 ~class4:Opcode.C4_min () in
  (* fill = 7 + 6 + 138 + 4; 127 more iterations at TP = 7 *)
  check int "fill" (7 + 6 + 138 + 4) (Timing.fill_cycles t);
  check int "cycles" (155 + (127 * 7)) (Timing.task_cycles t)

let test_knn_decision_rate () =
  (* paper: 1.12 M decisions/s for L1 over 128 candidates; steady-state
     iteration time = 128 x 7 ns = 896 ns *)
  let t = l1_task ~rpt_num:127 ~class4:Opcode.C4_min () in
  let steady_ns = float_of_int (Task.iterations t * Timing.task_tp t) in
  let decisions_per_s = 1e9 /. steady_ns in
  check (close 1e4) "~1.12 M/s" 1.116e6 decisions_per_s

let test_throughput_formula () =
  (* f = 128 / TP per bank *)
  check (close 1e-9) "128/7" (128.0 /. 7.0)
    (Timing.throughput_ops_per_ns (l1_task ~class4:Opcode.C4_min ()))

let test_unpipelined_cm_latency () =
  let l1 = l1_task ~class4:Opcode.C4_min () in
  check int "CM iteration = S1+S2+ADC+TH" (7 + 6 + 138 + 4)
    (Timing.unpipelined_iteration_cycles l1)

(* ------------------------------------------------------------------ *)
(* Bit-cell array                                                      *)
(* ------------------------------------------------------------------ *)

let test_bitcell_write_read () =
  let a = Bitcell_array.create () in
  let values = Array.init Params.lanes (fun i -> (i mod 255) - 127) in
  Bitcell_array.write a ~word_row:17 values;
  let back = Bitcell_array.read a ~word_row:17 in
  Array.iteri (fun i v -> check int "stored code" values.(i) v) back

let test_bitcell_partial_write_zero_pads () =
  let a = Bitcell_array.create () in
  Bitcell_array.write a ~word_row:0 [| 1; 2; 3 |];
  check int "lane 3 zero" 0 (Bitcell_array.read_lane a ~word_row:0 ~lane:3);
  check int "lane 127 zero" 0 (Bitcell_array.read_lane a ~word_row:0 ~lane:127)

let test_bitcell_bad_inputs () =
  let a = Bitcell_array.create () in
  (match Bitcell_array.write a ~word_row:128 [| 0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> fail "word row 128 must be rejected");
  match Bitcell_array.write a ~word_row:0 [| 200 |] with
  | exception Invalid_argument _ -> ()
  | _ -> fail "code 200 must be rejected"

let test_bitcell_msb_lsb_view () =
  let a = Bitcell_array.create () in
  Bitcell_array.write a ~word_row:3 [| 0x5A - 128 |];
  (* code -38 = 0xDA as unsigned byte: MSB nibble 0xD, LSB 0xA *)
  let msb, lsb = Bitcell_array.msb_lsb_view a ~word_row:3 ~lane:0 in
  check int "msb nibble" 0xD msb;
  check int "lsb nibble" 0xA lsb

let test_bitcell_aread_ideal () =
  let a = Bitcell_array.create () in
  Bitcell_array.write a ~word_row:5 [| 64; -64; 127; -128 |];
  let v =
    Bitcell_array.aread a ~word_row:5 ~swing:7 ~noise:Analog.Noise.disabled
      ~lut:Analog.Lut.identity
  in
  check (close 1e-6) "0.5" 0.5 v.(0);
  check (close 1e-6) "-0.5" (-0.5) v.(1);
  check (close 1e-6) "127/128" (127.0 /. 128.0) v.(2);
  check (close 1e-6) "-1" (-1.0) v.(3)

let test_bitcell_quantize () =
  check int "0.5 -> 64" 64 (Bitcell_array.quantize 0.5);
  check int "clamps" 127 (Bitcell_array.quantize 2.0);
  check int "clamps low" (-128) (Bitcell_array.quantize (-2.0))

(* ------------------------------------------------------------------ *)
(* X-REG                                                               *)
(* ------------------------------------------------------------------ *)

let test_xreg_load_get () =
  let x = Xreg.create () in
  Xreg.load x ~index:2 [| 10; -20; 30 |];
  let v = Xreg.get x ~index:2 in
  check int "v0" 10 v.(0);
  check int "v1" (-20) v.(1);
  check int "zero pad" 0 v.(5);
  let n = Xreg.get_normalized x ~index:2 in
  check (close 1e-9) "normalized" (10.0 /. 128.0) n.(0)

let test_xreg_staging () =
  let x = Xreg.create () in
  Xreg.stage_element x ~index:0 5;
  Xreg.stage_element x ~index:0 6;
  check int "staged 2" 2 (Xreg.staged_count x ~index:0);
  let v = Xreg.get x ~index:0 in
  check int "lane 0" 5 v.(0);
  check int "lane 1" 6 v.(1);
  Xreg.reset_staging x ~index:0;
  check int "reset" 0 (Xreg.staged_count x ~index:0)

let test_xreg_staging_wraps () =
  let x = Xreg.create () in
  for i = 0 to Params.lanes do
    Xreg.stage_element x ~index:1 (i mod 100)
  done;
  (* the 129th element lands on lane 0 *)
  check int "wrap" (Params.lanes mod 100) (Xreg.get x ~index:1).(0)

let test_xreg_bounds () =
  let x = Xreg.create () in
  match Xreg.load x ~index:8 [| 0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> fail "index 8 must be rejected"

(* ------------------------------------------------------------------ *)
(* TH unit                                                             *)
(* ------------------------------------------------------------------ *)

let th_config ?(op = Opcode.C4_accumulate) ?(acc_num = 0) ?(threshold = 0.0)
    ?(gain = 1.0) ?(des = Opcode.Des_output_buffer) () =
  { Th_unit.op; acc_num; threshold; gain; des }

let test_th_accumulate_groups () =
  let th = Th_unit.create (th_config ~acc_num:1 ~gain:2.0 ()) in
  check bool "first sample buffered" true (Th_unit.push th 1.0 = None);
  (match Th_unit.push th 2.0 with
  | Some e -> check (close 1e-9) "gained group sum" 6.0 e.Th_unit.value
  | None -> fail "group of 2 should emit");
  check int "one op" 1 (Th_unit.ops_executed th)

let test_th_mean () =
  let th = Th_unit.create (th_config ~op:Opcode.C4_mean ~acc_num:3 ()) in
  ignore (Th_unit.push th 1.0);
  ignore (Th_unit.push th 2.0);
  ignore (Th_unit.push th 3.0);
  match Th_unit.push th 6.0 with
  | Some e -> check (close 1e-9) "mean of 4" 3.0 e.Th_unit.value
  | None -> fail "mean group should emit"

let test_th_threshold () =
  let th =
    Th_unit.create (th_config ~op:Opcode.C4_threshold ~threshold:0.5 ())
  in
  (match Th_unit.push th 0.7 with
  | Some e -> check (close 1e-9) "above" 1.0 e.Th_unit.value
  | None -> fail "emit expected");
  match Th_unit.push th 0.3 with
  | Some e -> check (close 1e-9) "below" 0.0 e.Th_unit.value
  | None -> fail "emit expected"

let test_th_min_argmin () =
  let th = Th_unit.create (th_config ~op:Opcode.C4_min ()) in
  List.iter (fun v -> ignore (Th_unit.push th v)) [ 5.0; 2.0; 7.0; 2.5 ];
  (match Th_unit.argext th with
  | Some (i, v) ->
      check int "argmin index" 1 i;
      check (close 1e-9) "min value" 2.0 v
  | None -> fail "extremum expected");
  match Th_unit.finish th with
  | Some e -> check (close 1e-9) "emitted min" 2.0 e.Th_unit.value
  | None -> fail "finish should emit"

let test_th_max () =
  let th = Th_unit.create (th_config ~op:Opcode.C4_max ()) in
  List.iter (fun v -> ignore (Th_unit.push th v)) [ -5.0; -2.0; -7.0 ];
  match Th_unit.argext th with
  | Some (i, v) ->
      check int "argmax index" 1 i;
      check (close 1e-9) "max value" (-2.0) v
  | None -> fail "extremum expected"

let test_th_sigmoid_relu () =
  let th = Th_unit.create (th_config ~op:Opcode.C4_sigmoid ()) in
  (match Th_unit.push th 0.0 with
  | Some e -> check (close 1e-2) "sigmoid(0)" 0.5 e.Th_unit.value
  | None -> fail "emit expected");
  let th = Th_unit.create (th_config ~op:Opcode.C4_relu ()) in
  (match Th_unit.push th (-3.0) with
  | Some e -> check (close 1e-9) "relu(-3)" 0.0 e.Th_unit.value
  | None -> fail "emit expected");
  match Th_unit.push th 3.0 with
  | Some e -> check (close 1e-9) "relu(3)" 3.0 e.Th_unit.value
  | None -> fail "emit expected"

let test_th_partial_group_flush () =
  let th = Th_unit.create (th_config ~acc_num:3 ()) in
  ignore (Th_unit.push th 1.0);
  ignore (Th_unit.push th 2.0);
  match Th_unit.finish th with
  | Some e -> check (close 1e-9) "partial flush" 3.0 e.Th_unit.value
  | None -> fail "partial group should flush"

let test_pwl_sigmoid_accuracy () =
  let exact x = 1.0 /. (1.0 +. exp (-.x)) in
  let max_err = ref 0.0 in
  let x = ref (-8.0) in
  while !x <= 8.0 do
    max_err :=
      Float.max !max_err (Float.abs (Th_unit.pwl_sigmoid !x -. exact !x));
    x := !x +. 0.01
  done;
  check bool "PLAN max error < 0.02" true (!max_err < 0.02)

let test_pwl_sigmoid_continuous_at_seams () =
  (* the PLAN segments must meet (the classic 2.375 breakpoint leaves a
     ~0.004 step; we use the exact intersection 7/3) *)
  List.iter
    (fun seam ->
      let below = Th_unit.pwl_sigmoid (seam -. 1e-9) in
      let above = Th_unit.pwl_sigmoid (seam +. 1e-9) in
      check (close 1e-6) "continuous at seam" below above)
    [ 1.0; 7.0 /. 3.0; 5.0; -1.0; -7.0 /. 3.0; -5.0 ]

let qcheck_pwl_sigmoid_monotone =
  QCheck.Test.make ~name:"pwl sigmoid monotone and bounded" ~count:500
    (QCheck.pair
       (QCheck.float_range (-10.0) 10.0)
       (QCheck.float_range (-10.0) 10.0))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      let ya = Th_unit.pwl_sigmoid lo and yb = Th_unit.pwl_sigmoid hi in
      ya <= yb +. 1e-9 && ya >= 0.0 && yb <= 1.0)

(* ------------------------------------------------------------------ *)
(* Bank                                                                *)
(* ------------------------------------------------------------------ *)

let ideal_bank () =
  Bank.create ~profile:Bank.Ideal ~noise:Analog.Noise.disabled ()

let test_bank_analog_scale () =
  check (close 1e-9) "dot scale 1" 1.0 (Bank.analog_scale (dot_task ()));
  check (close 1e-9) "L1 scale 2" 2.0 (Bank.analog_scale (l1_task ()));
  let l2 =
    Task.make ~class1:Opcode.C1_asubt
      ~class2:{ Opcode.asd = Opcode.Asd_square; avd = true }
      ~class3:Opcode.C3_adc ~class4:Opcode.C4_min ()
  in
  check (close 1e-9) "L2 scale 4" 4.0 (Bank.analog_scale l2)

let test_bank_dot_iteration () =
  let b = ideal_bank () in
  (* w = [0.5, -0.25], x = [0.5, 0.5]: sum(w*x) = 0.125, mean over 2 *)
  Bitcell_array.write (Bank.array b) ~word_row:0 [| 64; -32 |];
  Xreg.load (Bank.xreg b) ~index:0 [| 64; 64 |];
  match
    Bank.run_iteration b ~task:(dot_task ()) ~iteration:0 ~active_lanes:2
      ~adc_gain:8.0
  with
  | Bank.Sample s -> check (close 2e-3) "dot mean" 0.0625 s
  | _ -> fail "expected an ADC sample"

let test_bank_l1_iteration () =
  let b = ideal_bank () in
  (* |0.5 - (-0.5)| + |(-0.25) - 0.25| = 1.5 *)
  Bitcell_array.write (Bank.array b) ~word_row:0 [| 64; -32 |];
  Xreg.load (Bank.xreg b) ~index:0 [| -64; 32 |];
  match
    Bank.run_iteration b ~task:(l1_task ()) ~iteration:0 ~active_lanes:2
      ~adc_gain:1.0
  with
  | Bank.Sample s ->
      (* true sum = s * lanes * scale = s * 2 * 2 *)
      check (close 0.02) "L1 distance" 1.5 (s *. 4.0)
  | _ -> fail "expected an ADC sample"

let test_bank_w_addr_increments () =
  let b = ideal_bank () in
  Bitcell_array.write (Bank.array b) ~word_row:3 [| 64 |];
  Bitcell_array.write (Bank.array b) ~word_row:4 [| -64 |];
  let task =
    dot_task ~op_param:{ Op_param.default with Op_param.w_addr = 3 } ()
  in
  Xreg.load (Bank.xreg b) ~index:0 [| 127 |];
  let sample i =
    match
      Bank.run_iteration b ~task ~iteration:i ~active_lanes:1 ~adc_gain:1.0
    with
    | Bank.Sample s -> s
    | _ -> fail "sample expected"
  in
  check bool "iteration 0 positive" true (sample 0 > 0.0);
  check bool "iteration 1 negative" true (sample 1 < 0.0)

let test_bank_digital_read () =
  let b = ideal_bank () in
  Bitcell_array.write (Bank.array b) ~word_row:9 [| 42 |];
  let task =
    Task.make
      ~op_param:{ Op_param.default with Op_param.w_addr = 9 }
      ~class1:Opcode.C1_read
      ~class2:{ Opcode.asd = Opcode.Asd_none; avd = false }
      ~class3:Opcode.C3_none ~class4:Opcode.C4_accumulate ()
  in
  match
    Bank.run_iteration b ~task ~iteration:0 ~active_lanes:1 ~adc_gain:1.0
  with
  | Bank.Digital_vector v -> check int "read back" 42 v.(0)
  | _ -> fail "digital vector expected"

let test_bank_write () =
  let b = ideal_bank () in
  Bank.set_write_data b [| 7; 8 |];
  let task =
    Task.make ~class1:Opcode.C1_write
      ~class2:{ Opcode.asd = Opcode.Asd_none; avd = false }
      ~class3:Opcode.C3_none ~class4:Opcode.C4_accumulate ()
  in
  (match
     Bank.run_iteration b ~task ~iteration:0 ~active_lanes:1 ~adc_gain:1.0
   with
  | Bank.Idle -> ()
  | _ -> fail "write is idle on the analog path");
  check int "written" 7
    (Bitcell_array.read_lane (Bank.array b) ~word_row:0 ~lane:0)

let test_bank_adc_gain_reduces_quantization () =
  let b = ideal_bank () in
  Bitcell_array.write (Bank.array b) ~word_row:0 [| 3 |];
  Xreg.load (Bank.xreg b) ~index:0 [| 3 |];
  (* tiny product: 3/128 * 3/128, far below one ADC lsb *)
  let sample gain =
    match
      Bank.run_iteration b ~task:(dot_task ()) ~iteration:0 ~active_lanes:1
        ~adc_gain:gain
    with
    | Bank.Sample s -> s
    | _ -> fail "sample expected"
  in
  let truth = 3.0 /. 128.0 *. (3.0 /. 128.0) in
  let err_lo = Float.abs (sample 1.0 -. truth) in
  let err_hi = Float.abs (sample 64.0 -. truth) in
  check bool "gain reduces quantization error" true (err_hi < err_lo)

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

let plan_exn = Layout.plan_exn

let test_layout_small_vector () =
  let p = plan_exn ~vector_len:100 ~rows:10 () in
  check int "1 bank" 1 p.Layout.banks;
  check int "1 segment" 1 p.Layout.segments;
  check int "100 lanes" 100 p.Layout.lanes_per_bank;
  check int "1 task" 1 p.Layout.tasks

let test_layout_multibank () =
  let p = plan_exn ~vector_len:512 ~rows:127 () in
  (* the paper's §3.4 example: 512 pixels over 4 banks *)
  check int "4 banks" 4 p.Layout.banks;
  check int "mb code 2" 2 p.Layout.multi_bank;
  check int "128 lanes" 128 p.Layout.lanes_per_bank;
  check int "1 segment" 1 p.Layout.segments

let test_layout_segments () =
  (* 4096 elements: 8 banks x 4 segments x 128 lanes *)
  let p = plan_exn ~vector_len:4096 ~rows:2 () in
  check int "8 banks" 8 p.Layout.banks;
  check int "4 segments" 4 p.Layout.segments;
  check int "x_prd 3" 3 (Layout.x_prd p)

let test_layout_row_chunking () =
  let p = plan_exn ~vector_len:784 ~rows:512 () in
  check int "8 banks" 8 p.Layout.banks;
  check int "128 rows per task" 128 p.Layout.rows_per_task;
  check int "4 chunks" 4 p.Layout.tasks;
  check int "last chunk rows" 128 (Layout.chunk_rows p 3)

let test_layout_uneven_chunk () =
  let p = plan_exn ~vector_len:128 ~rows:130 () in
  check int "2 tasks" 2 p.Layout.tasks;
  check int "first chunk" 128 (Layout.chunk_rows p 0);
  check int "last chunk" 2 (Layout.chunk_rows p 1)

let test_layout_too_large () =
  match Layout.plan ~vector_len:((8 * 4 * 128) + 1) ~rows:1 () with
  | Error _ -> ()
  | Ok _ -> fail "oversized vector must be rejected"

let test_layout_slices_cover_vector () =
  let p = plan_exn ~vector_len:300 ~rows:1 () in
  let v = Array.init 300 (fun i -> (i mod 250) - 125) in
  (* every element appears exactly once across (bank, segment, lane) *)
  let seen = Hashtbl.create 512 in
  for bank = 0 to p.Layout.banks - 1 do
    for segment = 0 to p.Layout.segments - 1 do
      let slice = Layout.slice_of_vector p v ~bank ~segment in
      Array.iteri
        (fun lane code ->
          let e =
            (((bank * p.Layout.segments) + segment) * p.Layout.lanes_per_bank)
            + lane
          in
          if e < 300 then begin
            check int "slice value" v.(e) code;
            if Hashtbl.mem seen e then fail "duplicate coverage";
            Hashtbl.add seen e ()
          end
          else check int "padding zero" 0 code)
        slice
    done
  done;
  check int "all covered" 300 (Hashtbl.length seen)

let qcheck_layout_invariants =
  QCheck.Test.make ~name:"layout plan invariants" ~count:300
    (QCheck.pair (QCheck.int_range 1 4096) (QCheck.int_range 1 1024))
    (fun (vector_len, rows) ->
      match Layout.plan ~vector_len ~rows () with
      | Error _ -> false
      | Ok p ->
          p.Layout.lanes_per_bank >= 1
          && p.Layout.lanes_per_bank <= 128
          && p.Layout.banks * p.Layout.segments * p.Layout.lanes_per_bank
             >= vector_len
          && p.Layout.rows_per_task * p.Layout.segments <= 128
          && p.Layout.tasks * p.Layout.rows_per_task >= rows
          && p.Layout.segments >= 1
          && p.Layout.segments <= 4
          && p.Layout.banks = 1 lsl p.Layout.multi_bank)

(* ------------------------------------------------------------------ *)
(* Machine                                                             *)
(* ------------------------------------------------------------------ *)

let simple_th ?(op = Opcode.C4_accumulate) ~gain () =
  {
    Th_unit.op;
    acc_num = 0;
    threshold = 0.0;
    gain;
    des = Opcode.Des_output_buffer;
  }

let test_machine_multibank_dot () =
  let m = Machine.create (Machine.ideal_config ~banks:4) in
  let plan = plan_exn ~vector_len:512 ~rows:1 () in
  let w = Array.init 512 (fun i -> if i mod 2 = 0 then 32 else -32) in
  let x = Array.init 512 (fun _ -> 64) in
  Machine.load_weights m ~group:0 ~base:0 ~plan [| w |];
  Machine.load_x m ~group:0 ~xreg_base:0 ~plan x;
  let task = dot_task ~multi_bank:plan.Layout.multi_bank () in
  let launch =
    {
      Machine.task;
      bank_group = 0;
      active_lanes = plan.Layout.lanes_per_bank;
      adc_gain = 16.0;
      th = simple_th ~gain:(float_of_int plan.Layout.lanes_per_bank) ();
      dest_xreg = 7;
    }
  in
  let r = Machine.execute_exn m launch in
  (* sum w*x = 0 by symmetry *)
  (match r.Machine.emitted with
  | [ v ] -> check (close 0.05) "zero dot" 0.0 v
  | _ -> fail "one emitted value expected");
  check int "crossbank transfers" 3 r.Machine.record.Trace.crossbank_transfers

let test_machine_trace_accumulates () =
  let m = Machine.create (Machine.ideal_config ~banks:1) in
  let plan = plan_exn ~vector_len:16 ~rows:4 () in
  let w =
    Array.init 4 (fun r -> Array.init 16 (fun c -> ((r + c) mod 100) - 50))
  in
  Machine.load_weights m ~group:0 ~base:0 ~plan w;
  Machine.load_x m ~group:0 ~xreg_base:0 ~plan (Array.make 16 64);
  let task = dot_task ~rpt_num:3 () in
  let launch =
    {
      Machine.task;
      bank_group = 0;
      active_lanes = 16;
      adc_gain = 1.0;
      th = simple_th ~gain:16.0 ();
      dest_xreg = 7;
    }
  in
  let r = Machine.execute_exn m launch in
  check int "4 emissions" 4 (List.length r.Machine.emitted);
  check int "adc conversions" 4 r.Machine.record.Trace.adc_conversions;
  check int "trace cycles" (Timing.task_cycles task)
    (Trace.total_cycles (Machine.trace m));
  Machine.reset_trace m;
  check int "trace reset" 0 (Trace.total_cycles (Machine.trace m))

let test_machine_argmin_decision () =
  let m = Machine.create (Machine.ideal_config ~banks:1) in
  let plan = plan_exn ~vector_len:8 ~rows:3 () in
  (* candidate 1 matches x exactly *)
  let x = Array.init 8 (fun i -> (i * 10) - 40) in
  let far = Array.map (fun c -> -c) x in
  Machine.load_weights m ~group:0 ~base:0 ~plan
    [| far; Array.copy x; Array.map (fun c -> c + 20) x |];
  Machine.load_x m ~group:0 ~xreg_base:0 ~plan x;
  let task = l1_task ~rpt_num:2 ~class4:Opcode.C4_min () in
  let launch =
    {
      Machine.task;
      bank_group = 0;
      active_lanes = 8;
      adc_gain = 1.0;
      th = simple_th ~op:Opcode.C4_min ~gain:16.0 ();
      dest_xreg = 7;
    }
  in
  let r = Machine.execute_exn m launch in
  match r.Machine.argext with
  | Some (i, _) -> check int "argmin is the exact match" 1 i
  | None -> fail "decision expected"

let test_machine_group_bounds () =
  let m = Machine.create (Machine.ideal_config ~banks:2) in
  let task = dot_task ~multi_bank:2 () in
  let launch =
    {
      Machine.task;
      bank_group = 0;
      active_lanes = 1;
      adc_gain = 1.0;
      th = simple_th ~gain:1.0 ();
      dest_xreg = 7;
    }
  in
  match Machine.execute m launch with
  | Error e -> check bool "capacity error" true (e.Promise_core.Error.code = Promise_core.Error.Capacity)
  | Ok _ -> fail "4-bank task on a 2-bank machine must be rejected"

let test_machine_determinism () =
  let run () =
    let m =
      Machine.create
        { Machine.banks = 1; profile = Bank.Silicon; noise_seed = Some 9 }
    in
    let plan = plan_exn ~vector_len:32 ~rows:1 () in
    let w = Array.init 32 (fun i -> (i * 3) - 48) in
    Machine.load_weights m ~group:0 ~base:0 ~plan [| w |];
    Machine.load_x m ~group:0 ~xreg_base:0 ~plan (Array.make 32 50);
    let launch =
      {
        Machine.task = dot_task ();
        bank_group = 0;
        active_lanes = 32;
        adc_gain = 4.0;
        th = simple_th ~gain:32.0 ();
        dest_xreg = 7;
      }
    in
    (Machine.execute_exn m launch).Machine.emitted
  in
  check bool "same seed, same result" true (run () = run ())

(* ------------------------------------------------------------------ *)
(* CTRL signal generation                                              *)
(* ------------------------------------------------------------------ *)

let find_step steps signal =
  List.find_opt (fun s -> Ctrl.equal_signal s.Ctrl.signal signal) steps

let test_ctrl_l1_schedule () =
  let task = l1_task ~class4:Opcode.C4_min () in
  let steps = Ctrl.iteration_schedule task in
  (* precharge first, one cycle *)
  (match find_step steps Ctrl.Precharge with
  | Some s ->
      check int "precharge at 0" 0 s.Ctrl.cycle;
      check int "one cycle" 1 s.Ctrl.duration
  | None -> fail "precharge expected");
  (* PWM burst fills the rest of the aSUBT slot, with X driven *)
  (match find_step steps (Ctrl.Wl_pwm { bits = 8 }) with
  | Some s ->
      check int "wl after precharge" 1 s.Ctrl.cycle;
      check int "wl duration" (Timing.class1_delay Opcode.C1_asubt - 1)
        s.Ctrl.duration
  | None -> fail "wl pwm expected");
  check bool "x driven for the fused op" true
    (find_step steps Ctrl.X_drive <> None);
  (* aSD after class-1; charge share in its last cycle; ADC next *)
  (match find_step steps (Ctrl.Sd_enable Opcode.Asd_absolute) with
  | Some s -> check int "sd after class1" 7 s.Ctrl.cycle
  | None -> fail "sd expected");
  (match find_step steps Ctrl.Avd_share with
  | Some s -> check int "share in last sd cycle" 12 s.Ctrl.cycle
  | None -> fail "share expected");
  (match find_step steps Ctrl.Adc_start with
  | Some s -> check int "adc after sd" 13 s.Ctrl.cycle
  | None -> fail "adc expected");
  (* TH fires after the ADC latency; the schedule spans the fill time *)
  (match find_step steps (Ctrl.Th_strobe Opcode.C4_min) with
  | Some s -> check int "th after adc" (13 + 138) s.Ctrl.cycle
  | None -> fail "th expected");
  check int "schedule spans the fill" (Timing.fill_cycles task)
    (Ctrl.last_cycle steps)

let test_ctrl_digital_ops () =
  let read_task =
    Task.make ~class1:Opcode.C1_read
      ~class2:{ Opcode.asd = Opcode.Asd_none; avd = false }
      ~class3:Opcode.C3_none ~class4:Opcode.C4_accumulate ()
  in
  let steps = Ctrl.iteration_schedule read_task in
  (* digital read: the read path plus the (idle) TH pipeline slot *)
  check bool "read enable present" true
    (find_step steps Ctrl.Read_enable <> None);
  check bool "no analog signals" true
    (find_step steps Ctrl.Precharge = None
    && find_step steps (Ctrl.Wl_pwm { bits = 8 }) = None
    && find_step steps Ctrl.Adc_start = None)

let test_ctrl_signal_counts () =
  let task = dot_task ~rpt_num:9 () in
  let counts = Ctrl.signal_counts task in
  List.iter
    (fun (_, n) -> check int "every signal fires per iteration" 10 n)
    counts;
  check bool "adc counted" true
    (List.exists (fun (sg, _) -> Ctrl.equal_signal sg Ctrl.Adc_start) counts)

let test_ctrl_ordering_property () =
  (* for every legal analog composition: precharge < WL < SD < ADC < TH *)
  List.iter
    (fun (class1, class2, class3, class4) ->
      let task = { Task.nop with Task.class1; class2; class3; class4 } in
      match Task.validate task with
      | Error _ -> ()
      | Ok task ->
          let steps = Ctrl.iteration_schedule task in
          let cycle_of signal =
            Option.map (fun s -> s.Ctrl.cycle) (find_step steps signal)
          in
          let ordered a b =
            match (a, b) with
            | Some x, Some y -> x <= y
            | _ -> true
          in
          check bool "precharge before wl" true
            (ordered (cycle_of Ctrl.Precharge)
               (cycle_of (Ctrl.Wl_pwm { bits = 8 })));
          check bool "wl before adc" true
            (ordered
               (cycle_of (Ctrl.Wl_pwm { bits = 8 }))
               (cycle_of Ctrl.Adc_start));
          check bool "adc before th" true
            (ordered (cycle_of Ctrl.Adc_start)
               (cycle_of (Ctrl.Th_strobe task.Task.class4))))
    (Task.legal_compositions ())

let test_machine_writeback_path () =
  (* DES = 11: Class-4 results land in the write data buffer; a
     following Class-1 write Task stores them, and a digital read gets
     them back (the full Fig. 5(b) destination loop). *)
  let m = Machine.create (Machine.ideal_config ~banks:1) in
  let plan = plan_exn ~vector_len:4 ~rows:3 () in
  let w =
    [| [| 32; 32; 32; 32 |]; [| 64; 64; 64; 64 |]; [| 96; 96; 96; 96 |] |]
  in
  Machine.load_weights m ~group:0 ~base:0 ~plan w;
  Machine.load_x m ~group:0 ~xreg_base:0 ~plan [| 127; 127; 127; 127 |];
  let compute =
    {
      Machine.task = dot_task ~rpt_num:2 ();
      bank_group = 0;
      active_lanes = 4;
      adc_gain = 1.0;
      th =
        {
          Th_unit.op = Opcode.C4_mean;
          acc_num = 0;
          threshold = 0.0;
          (* gain chosen so means land on representable codes *)
          gain = 1.0;
          des = Opcode.Des_write_buffer;
        };
      dest_xreg = 7;
    }
  in
  let r = Machine.execute_exn m compute in
  check int "three codes staged" 3 (List.length r.Machine.write_buffer);
  let write_task =
    Task.make
      ~op_param:{ Op_param.default with Op_param.w_addr = 50 }
      ~class1:Opcode.C1_write
      ~class2:{ Opcode.asd = Opcode.Asd_none; avd = false }
      ~class3:Opcode.C3_none ~class4:Opcode.C4_accumulate ()
  in
  let wlaunch =
    { compute with Machine.task = write_task }
  in
  ignore (Machine.execute_exn m wlaunch);
  let stored = Bitcell_array.read (Bank.array (Machine.bank m 0)) ~word_row:50 in
  List.iteri
    (fun i code -> check int "stored = staged" code stored.(i))
    r.Machine.write_buffer

let test_crossbank () =
  check (close 1e-9) "combine sums" 6.0 (Crossbank.combine [| 1.0; 2.0; 3.0 |]);
  check int "transfers" 7 (Crossbank.transfers_per_iteration ~banks:8);
  check int "single bank no transfer" 0
    (Crossbank.transfers_per_iteration ~banks:1)

let test_machine_raw_program_run () =
  (* assembler-driven path: parse asm, run with default launches *)
  let src =
    "task c1=aSUBT c2=absolute.avd c3=ADC c4=min rpt=2 swing=7\n"
  in
  let program =
    match Program.of_asm ~name:"raw" src with
    | Ok p -> p
    | Error msg -> fail msg
  in
  let m = Machine.create (Machine.ideal_config ~banks:1) in
  let plan = plan_exn ~vector_len:128 ~rows:3 () in
  let x = Array.init 128 (fun i -> (i mod 100) - 50) in
  let rows =
    [| Array.map (fun c -> -c) x; Array.copy x; Array.map (fun c -> min 127 (c + 30)) x |]
  in
  Machine.load_weights m ~group:0 ~base:0 ~plan rows;
  Machine.load_x m ~group:0 ~xreg_base:0 ~plan x;
  (match Machine.run_program m program with
  | Ok [ r ] -> (
      match r.Machine.argext with
      | Some (i, _) -> check int "raw argmin finds the match" 1 i
      | None -> fail "decision expected")
  | Ok _ -> fail "one result expected"
  | Error e -> fail (Promise_core.Error.to_string e))

let test_layout_capacity_boundaries () =
  (* exactly 8 banks x 128 lanes fits in one segment *)
  let p = plan_exn ~vector_len:1024 ~rows:1 () in
  check int "1024 fits one segment" 1 p.Layout.segments;
  check int "8 banks" 8 p.Layout.banks;
  (* one more element forces a second segment *)
  let p = plan_exn ~vector_len:1025 ~rows:1 () in
  check int "1025 needs two segments" 2 p.Layout.segments;
  (* the absolute maximum *)
  let p = plan_exn ~vector_len:4096 ~rows:1 () in
  check int "4096 = 4 segments" 4 p.Layout.segments

let test_default_launch_threshold_mapping () =
  let task =
    Task.make
      ~op_param:{ Op_param.default with Op_param.thres_val = 8 }
      ~class1:Opcode.C1_aread
      ~class2:{ Opcode.asd = Opcode.Asd_sign_mult; avd = true }
      ~class3:Opcode.C3_adc ~class4:Opcode.C4_threshold ()
  in
  let launch = Machine.default_launch task in
  (* code 8 is the near-midpoint of the 16-level field: 8/7.5 - 1 *)
  check (close 1e-6) "threshold decode" ((8.0 /. 7.5) -. 1.0)
    launch.Machine.th.Th_unit.threshold;
  check int "all lanes" Params.lanes launch.Machine.active_lanes

let test_trace_csv () =
  let m = Machine.create (Machine.ideal_config ~banks:1) in
  let plan = plan_exn ~vector_len:8 ~rows:2 () in
  Machine.load_weights m ~group:0 ~base:0 ~plan
    [| Array.make 8 10; Array.make 8 20 |];
  Machine.load_x m ~group:0 ~xreg_base:0 ~plan (Array.make 8 30);
  ignore
    (Machine.run_program m
       (Program.make ~name:"csv" [ dot_task ~rpt_num:1 () ]));
  let csv = Trace.to_csv (Machine.trace m) in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check int "header + one record" 2 (List.length lines);
  check bool "record mentions aREAD" true
    (match lines with
    | [ _; record ] -> String.length record > 0 && String.sub record 0 5 = "aREAD"
    | _ -> false)

let suite =
  [
    ("table 3 delays", `Quick, test_table3_delays);
    ("TP = max of used stages", `Quick, test_tp_is_max_of_used_stages);
    ("worst-case TP (§3.2 ablation)", `Quick, test_worst_case_tp);
    ("task cycles", `Quick, test_task_cycles);
    ("k-NN decision rate (§6.2)", `Quick, test_knn_decision_rate);
    ("throughput formula", `Quick, test_throughput_formula);
    ("CM unpipelined latency", `Quick, test_unpipelined_cm_latency);
    ("bitcell write/read", `Quick, test_bitcell_write_read);
    ("bitcell zero padding", `Quick, test_bitcell_partial_write_zero_pads);
    ("bitcell bad inputs", `Quick, test_bitcell_bad_inputs);
    ("bitcell msb/lsb sub-ranging", `Quick, test_bitcell_msb_lsb_view);
    ("bitcell ideal aread", `Quick, test_bitcell_aread_ideal);
    ("bitcell quantize", `Quick, test_bitcell_quantize);
    ("xreg load/get", `Quick, test_xreg_load_get);
    ("xreg staging", `Quick, test_xreg_staging);
    ("xreg staging wraps", `Quick, test_xreg_staging_wraps);
    ("xreg bounds", `Quick, test_xreg_bounds);
    ("th accumulate groups", `Quick, test_th_accumulate_groups);
    ("th mean", `Quick, test_th_mean);
    ("th threshold", `Quick, test_th_threshold);
    ("th min/argmin", `Quick, test_th_min_argmin);
    ("th max", `Quick, test_th_max);
    ("th sigmoid/relu", `Quick, test_th_sigmoid_relu);
    ("th partial group flush", `Quick, test_th_partial_group_flush);
    ("pwl sigmoid accuracy", `Quick, test_pwl_sigmoid_accuracy);
    ("pwl sigmoid seam continuity", `Quick, test_pwl_sigmoid_continuous_at_seams);
    ("bank analog scale", `Quick, test_bank_analog_scale);
    ("bank dot iteration", `Quick, test_bank_dot_iteration);
    ("bank L1 iteration", `Quick, test_bank_l1_iteration);
    ("bank W address increments", `Quick, test_bank_w_addr_increments);
    ("bank digital read", `Quick, test_bank_digital_read);
    ("bank write", `Quick, test_bank_write);
    ("bank ADC gain", `Quick, test_bank_adc_gain_reduces_quantization);
    ("layout small vector", `Quick, test_layout_small_vector);
    ("layout multibank (§3.4)", `Quick, test_layout_multibank);
    ("layout segments", `Quick, test_layout_segments);
    ("layout row chunking", `Quick, test_layout_row_chunking);
    ("layout uneven chunk", `Quick, test_layout_uneven_chunk);
    ("layout too large", `Quick, test_layout_too_large);
    ("layout slices cover vector", `Quick, test_layout_slices_cover_vector);
    ("machine multibank dot", `Quick, test_machine_multibank_dot);
    ("machine trace accumulates", `Quick, test_machine_trace_accumulates);
    ("machine argmin decision", `Quick, test_machine_argmin_decision);
    ("machine group bounds", `Quick, test_machine_group_bounds);
    ("machine determinism", `Quick, test_machine_determinism);
    ("ctrl L1 schedule", `Quick, test_ctrl_l1_schedule);
    ("ctrl digital ops", `Quick, test_ctrl_digital_ops);
    ("ctrl signal counts", `Quick, test_ctrl_signal_counts);
    ("ctrl ordering property", `Quick, test_ctrl_ordering_property);
    ("machine write-back path (DES=11)", `Quick, test_machine_writeback_path);
    ("machine raw asm program run", `Quick, test_machine_raw_program_run);
    ("trace csv export", `Quick, test_trace_csv);
    ("layout capacity boundaries", `Quick, test_layout_capacity_boundaries);
    ("default launch threshold mapping", `Quick, test_default_launch_threshold_mapping);
    ("crossbank rail", `Quick, test_crossbank);
    QCheck_alcotest.to_alcotest qcheck_pwl_sigmoid_monotone;
    QCheck_alcotest.to_alcotest qcheck_layout_invariants;
  ]

let () = Alcotest.run "promise-arch" [ ("arch", suite) ]
