(* Supervised execution: retry/backoff, checkpoint/resume, incident
   log, quarantine, and the bit-identity of interrupted-and-resumed
   campaigns and reports. *)

open Alcotest
module P = Promise
module E = P.Error
module Retry = P.Retry
module Ckpt = P.Checkpoint
module Inc = P.Incident
module Sup = P.Supervisor
module Val = P.Validate

let get_ok = function
  | Ok v -> v
  | Error e -> fail ("unexpected error: " ^ E.to_string e)

let code = function Ok _ -> fail "expected Error" | Error e -> e.E.code

let tmp_path suffix =
  let path = Filename.temp_file "promise-test" suffix in
  Sys.remove path;
  path

(* ------------------------------------------------------------------ *)
(* Retry                                                               *)
(* ------------------------------------------------------------------ *)

let qcheck_retry_deterministic =
  QCheck.Test.make ~name:"retry schedule is a pure function of the policy"
    ~count:100
    QCheck.(pair (int_bound 1_000_000) (int_range 2 8))
    (fun (seed, max_attempts) ->
      let p () = get_ok (Retry.policy ~max_attempts ~seed ()) in
      Retry.schedule (p ()) = Retry.schedule (p ()))

let qcheck_retry_bounded =
  QCheck.Test.make ~name:"every backoff is in [0, cap * (1 + jitter)]"
    ~count:200
    QCheck.(triple (int_bound 1_000_000) (int_range 2 10) (int_range 0 100))
    (fun (seed, max_attempts, jitter_pct) ->
      let jitter = float_of_int jitter_pct /. 100.0 in
      let p =
        get_ok
          (Retry.policy ~max_attempts ~base_delay_ms:10.0 ~max_delay_ms:80.0
             ~jitter ~seed ())
      in
      List.for_all
        (fun d -> d >= 0.0 && d <= 80.0 *. (1.0 +. jitter) +. 1e-9)
        (Retry.schedule p))

let qcheck_retry_attempts_bounded =
  QCheck.Test.make ~name:"run makes at most max_attempts calls" ~count:100
    QCheck.(pair (int_range 1 8) (int_range 1 20))
    (fun (max_attempts, fail_until) ->
      let p =
        get_ok
          (Retry.policy ~max_attempts ~base_delay_ms:1.0 ~max_delay_ms:2.0
             ~seed:0 ())
      in
      let calls = ref 0 in
      let f ~attempt:_ =
        incr calls;
        if !calls >= fail_until then Ok !calls
        else E.fail ~layer:"test" "not yet"
      in
      let r = Retry.run ~sleep:(fun _ -> ()) p f in
      !calls <= max_attempts
      && (match r with
         | Ok _ -> !calls = fail_until
         | Error _ -> !calls = max_attempts))

let test_retry_exhaustion_error () =
  let p =
    get_ok
      (Retry.policy ~max_attempts:3 ~base_delay_ms:5.0 ~max_delay_ms:20.0
         ~seed:7 ())
  in
  let slept = ref [] in
  let retries = ref 0 in
  let r =
    Retry.run
      ~sleep:(fun ms -> slept := ms :: !slept)
      ~on_retry:(fun ~attempt:_ ~delay_ms:_ _ -> incr retries)
      p
      (fun ~attempt:_ -> E.fail ~layer:"test" "always")
  in
  check int "two backoff sleeps" 2 (List.length !slept);
  check int "two on_retry callbacks" 2 !retries;
  (match r with
  | Ok _ -> fail "expected exhaustion"
  | Error e ->
      check string "promoted code" "retry-exhausted" (E.code_name e.E.code);
      check bool "attempts in context" true
        (List.mem_assoc "attempts" e.E.context));
  (* the recorded waits are exactly the published schedule *)
  check (list (float 1e-9)) "sleeps follow the schedule" (Retry.schedule p)
    (List.rev !slept)

let test_retry_policy_validation () =
  let bad f = check string "invalid-operand" "invalid-operand" (E.code_name f) in
  bad (code (Retry.policy ~max_attempts:0 ~seed:0 ()));
  bad (code (Retry.policy ~base_delay_ms:(-1.0) ~seed:0 ()));
  bad (code (Retry.policy ~base_delay_ms:10.0 ~max_delay_ms:5.0 ~seed:0 ()));
  bad (code (Retry.policy ~jitter:1.5 ~seed:0 ()))

(* ------------------------------------------------------------------ *)
(* Checkpoint                                                          *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_roundtrip () =
  let path = tmp_path ".ckpt" in
  let digest = Ckpt.digest_of_config ~kind:"test" [ "a"; "b" ] in
  let payload = (Array.init 16 (fun i -> float_of_int i), "tail") in
  get_ok (Ckpt.save ~path ~config_digest:digest payload);
  check bool "exists" true (Ckpt.exists path);
  let back : (float array * string, E.t) result =
    Ckpt.load ~path ~config_digest:digest
  in
  check bool "payload survives the round trip" true (get_ok back = payload);
  Ckpt.remove path;
  check bool "removed" false (Ckpt.exists path)

let test_checkpoint_stale () =
  let path = tmp_path ".ckpt" in
  get_ok
    (Ckpt.save ~path
       ~config_digest:(Ckpt.digest_of_config ~kind:"test" [ "run1" ])
       [| 1; 2; 3 |]);
  let r : (int array, E.t) result =
    Ckpt.load ~path
      ~config_digest:(Ckpt.digest_of_config ~kind:"test" [ "run2" ])
  in
  check string "stale rejected" "stale-checkpoint" (E.code_name (code r));
  Ckpt.remove path

let test_checkpoint_corrupt_and_missing () =
  let digest = Ckpt.digest_of_config ~kind:"test" [] in
  let missing : (int, E.t) result =
    Ckpt.load ~path:(tmp_path ".ckpt") ~config_digest:digest
  in
  check string "missing" "invalid-operand" (E.code_name (code missing));
  let path = tmp_path ".ckpt" in
  let oc = open_out path in
  output_string oc "this is not a checkpoint";
  close_out oc;
  let corrupt : (int, E.t) result = Ckpt.load ~path ~config_digest:digest in
  check string "corrupt" "invalid-operand" (E.code_name (code corrupt));
  Ckpt.remove path

(* ------------------------------------------------------------------ *)
(* Incident log                                                        *)
(* ------------------------------------------------------------------ *)

let test_incident_jsonl () =
  let buf = Buffer.create 256 in
  let t = Inc.to_buffer buf in
  Inc.record t Inc.Retry [ ("item", "cell-7"); ("attempt", "1") ];
  Inc.record t Inc.Quarantine [ ("item", "cell \"7\"") ];
  Inc.record t Inc.Run_end [];
  check int "count" 3 (Inc.count t);
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  check int "three JSONL lines" 3 (List.length lines);
  List.iteri
    (fun i line ->
      check bool "object per line" true
        (String.length line > 2
        && line.[0] = '{'
        && line.[String.length line - 1] = '}');
      let seq = Printf.sprintf "{\"seq\":%d," (i + 1) in
      check bool "seq counts up" true
        (String.length line >= String.length seq
        && String.sub line 0 (String.length seq) = seq))
    lines;
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check bool "kind serialized" true
    (contains (List.nth lines 0) "\"kind\":\"retry\"");
  check bool "quotes escaped" true
    (contains (List.nth lines 1) "cell \\\"7\\\"")

(* ------------------------------------------------------------------ *)
(* Validate                                                            *)
(* ------------------------------------------------------------------ *)

let test_validate () =
  check int "in range" 4 (get_ok (Val.int_in_range ~what:"--jobs" ~min:1 ~max:64 "4"));
  check int "trimmed" 4 (get_ok (Val.int_in_range ~what:"--jobs" ~min:1 ~max:64 " 4 "));
  let bad s =
    check string ("rejects " ^ s) "invalid-operand"
      (E.code_name (code (Val.int_in_range ~what:"--jobs" ~min:1 ~max:64 s)))
  in
  bad "fuor";
  bad "";
  bad "0";
  bad "65";
  bad "1e2";
  check string "negative float rejected" "invalid-operand"
    (E.code_name (code (Val.non_negative_float ~what:"--timeout-ms" "-1")));
  check bool "float ok" true
    (get_ok (Val.non_negative_float ~what:"--timeout-ms" "250.5") = 250.5)

let test_validate_env () =
  Unix.putenv "PROMISE_TEST_INT" "8";
  check bool "env set" true
    (get_ok (Val.env_int ~name:"PROMISE_TEST_INT" ~min:1 ~max:64) = Some 8);
  Unix.putenv "PROMISE_TEST_INT" "junk";
  (match Val.env_int ~name:"PROMISE_TEST_INT" ~min:1 ~max:64 with
  | Ok _ -> fail "junk env accepted"
  | Error e ->
      check string "typed env error" "invalid-operand" (E.code_name e.E.code);
      check bool "names the variable" true
        (List.exists (fun (_, v) -> v = "PROMISE_TEST_INT") e.E.context));
  Unix.putenv "PROMISE_TEST_INT" "";
  check bool "blank is unset" true
    (get_ok (Val.env_int ~name:"PROMISE_TEST_INT" ~min:1 ~max:64) = None)

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)
(* ------------------------------------------------------------------ *)

let test_supervise_quarantine () =
  let buf = Buffer.create 256 in
  let inc = Inc.to_buffer buf in
  let retry =
    get_ok
      (Retry.policy ~max_attempts:3 ~base_delay_ms:1.0 ~max_delay_ms:2.0
         ~seed:0 ())
  in
  let cfg = Sup.config ~retry ~incidents:inc ~sleep:(fun _ -> ()) () in
  let calls = ref 0 in
  let r =
    Sup.supervise cfg ~label:"cell-3" (fun ~attempt:_ ->
        incr calls;
        E.fail ~layer:"test" "broken cell")
  in
  check int "all attempts used" 3 !calls;
  check string "quarantined as retry-exhausted" "retry-exhausted"
    (E.code_name (code r));
  (* 2 retries + 1 quarantine in the incident trail *)
  check int "incidents logged" 3 (Inc.count inc)

let test_supervise_catches_exceptions () =
  let cfg = Sup.config () in
  let r =
    Sup.supervise cfg ~label:"boom" (fun ~attempt:_ -> failwith "kaboom")
  in
  match r with
  | Ok _ -> fail "expected the exception to become an Error"
  | Error e ->
      check bool "captured exception in context" true
        (List.mem_assoc "exn" e.E.context)

let test_supervise_timeout_fake_clock () =
  (* a clock that jumps 100 ms per reading: every attempt is overdue *)
  let now = ref 0L in
  let clock () =
    now := Int64.add !now 100_000_000L;
    !now
  in
  let buf = Buffer.create 256 in
  let inc = Inc.to_buffer buf in
  let cfg =
    Sup.config ~timeout_ms:10.0 ~clock ~incidents:inc ~live_watchdog:false
      ~sleep:(fun _ -> ())
      ()
  in
  let r = Sup.supervise cfg ~label:"slow" (fun ~attempt:_ -> Ok 42) in
  check string "overdue attempt becomes Timeout" "timeout"
    (E.code_name (code r));
  check bool "timeout incident logged" true (Inc.count inc >= 1)

let test_supervise_no_deadline_is_transparent () =
  let cfg = Sup.config () in
  check bool "value passes through" true
    (Sup.supervise cfg ~label:"ok" (fun ~attempt:_ -> Ok "v") = Ok "v")

let test_map_result_isolates () =
  P.Pool.with_pool ~jobs:4 (fun pool ->
      let cfg = Sup.config () in
      let out =
        Sup.map_result ~pool cfg
          ~label:(Printf.sprintf "item-%d")
          (fun i ->
            if i mod 2 = 0 then E.fail ~layer:"test" "even items break"
            else Ok (10 * i))
          [ 1; 2; 3; 4; 5 ]
      in
      check int "every slot filled" 5 (List.length out);
      List.iteri
        (fun idx r ->
          let i = idx + 1 in
          match r with
          | Ok v ->
              check bool "odd survives" true (i mod 2 = 1);
              check int "value" (10 * i) v
          | Error _ -> check bool "even quarantined" true (i mod 2 = 0))
        out)

let test_stop_flag () =
  let stop = Sup.never_stop () in
  check bool "initially unset" false (Sup.stop_requested stop);
  Sup.request_stop stop;
  check bool "set" true (Sup.stop_requested stop);
  check bool "no signal for programmatic stop" true (Sup.stop_signal stop = None)

let test_map_result_empty_stream () =
  (* zero items: no pool work, no incidents, just [] back *)
  let buf = Buffer.create 16 in
  let inc = Inc.to_buffer buf in
  P.Pool.with_pool ~jobs:2 (fun pool ->
      let cfg = Sup.config ~incidents:inc ~live_watchdog:false () in
      let out =
        Sup.map_result ~pool cfg
          ~label:(Printf.sprintf "item-%d")
          (fun _ -> fail "f must not run on an empty stream")
          []
      in
      check (list reject) "empty in, empty out" [] out);
  check int "no incidents for empty stream" 0 (Inc.count inc)

let test_deadline_exactly_equal_passes () =
  (* the deadline check is strict: elapsed > timeout. An attempt whose
     elapsed time equals the deadline exactly must still pass. The
     fake clock advances exactly 10 ms per reading, and supervise
     reads it twice (t0, then after f), so elapsed == 10.0 ms. *)
  let now = ref 0L in
  let clock () =
    now := Int64.add !now 10_000_000L;
    !now
  in
  let buf = Buffer.create 64 in
  let inc = Inc.to_buffer buf in
  let cfg =
    Sup.config ~timeout_ms:10.0 ~clock ~incidents:inc ~live_watchdog:false
      ~sleep:(fun _ -> ())
      ()
  in
  let r = Sup.supervise cfg ~label:"on-time" (fun ~attempt:_ -> Ok 7) in
  check int "elapsed == deadline is not a timeout" 7 (get_ok r);
  check int "no timeout incident" 0 (Inc.count inc)

let test_stop_before_first_chunk () =
  (* a stop flag raised before any work: both drivers must return an
     Interrupted outcome with completed = 0, before touching a cell *)
  let scenarios =
    match P.Campaign.quick_scenarios () with
    | a :: _ -> [ a ]
    | [] -> fail "expected at least one quick scenario"
  in
  let benchmarks = [ P.Benchmarks.matched_filter () ] in
  let stop = Sup.never_stop () in
  Sup.request_stop stop;
  let session = Sup.session ~stop () in
  (match P.Campaign.run_cells_supervised session ~scenarios ~benchmarks () with
  | P.Campaign.Interrupted { completed; total } ->
      check int "no cells computed" 0 completed;
      check bool "total still reported" true (total > 0)
  | _ -> fail "expected Interrupted before the first chunk");
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  (match P.Report.run_sections_supervised session ppf [ "table1" ] with
  | P.Report.Sections_interrupted { completed; total } ->
      check int "no sections rendered" 0 completed;
      check int "one section requested" 1 total
  | _ -> fail "expected Sections_interrupted before the first section")

let test_pool_item_failure_context () =
  (* a Pool.Item_failure escaping the supervised function must surface
     the failing item index and its backtrace in the typed error *)
  let cfg = Sup.config ~live_watchdog:false () in
  let r =
    Sup.supervise cfg ~label:"nested-pool" (fun ~attempt:_ ->
        raise
          (P.Pool.Item_failure
             { index = 3; exn = Failure "boom"; backtrace = "frame0\nframe1" }))
  in
  match r with
  | Ok _ -> fail "expected the Item_failure to become an Error"
  | Error e ->
      check string "failing item index" "3"
        (List.assoc "pool-item" e.E.context);
      check string "item backtrace carried" "frame0\nframe1"
        (List.assoc "item-backtrace" e.E.context)

let test_checkpoint_dir_fsync () =
  (* durability: save must fsync the containing directory after the
     rename, or a crash can lose the directory entry *)
  let path = tmp_path ".ckpt" in
  let before = !Ckpt.For_tests.dir_fsyncs in
  get_ok (Ckpt.save ~path ~config_digest:"fsync-test" [ 42 ]);
  check bool "directory fsynced after rename" true
    (!Ckpt.For_tests.dir_fsyncs > before);
  let payload : int list = get_ok (Ckpt.load ~path ~config_digest:"fsync-test") in
  check (list int) "payload survives" [ 42 ] payload;
  Ckpt.remove path

let test_incident_rotation () =
  (* a file sink caps its size: crossing max_bytes rotates the live
     file to path ^ ".1" so disk use stays bounded *)
  let path = tmp_path ".jsonl" in
  let backup = path ^ ".1" in
  let t = get_ok (Inc.to_file ~max_bytes:400 path) in
  for i = 1 to 50 do
    Inc.record t Inc.Retry [ ("item", Printf.sprintf "cell-%d" i) ]
  done;
  Inc.close t;
  check bool "rotated backup exists" true (Sys.file_exists backup);
  check bool "live file stays under the cap" true
    ((Unix.stat path).Unix.st_size <= 400);
  check int "no record lost" 50 (Inc.count t);
  Sys.remove path;
  Sys.remove backup

(* ------------------------------------------------------------------ *)
(* Campaign: interrupt + resume == uninterrupted, bit for bit          *)
(* ------------------------------------------------------------------ *)

let campaign_fixture () =
  let scenarios =
    match P.Campaign.quick_scenarios () with
    | a :: b :: _ -> [ a; b ]
    | _ -> fail "expected at least two quick scenarios"
  in
  let benchmarks = [ P.Benchmarks.matched_filter () ] in
  (scenarios, benchmarks)

let render_results results =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  P.Campaign.print_cell_results ppf results;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_campaign_resume_bit_identical () =
  let scenarios, benchmarks = campaign_fixture () in
  (* 1: uninterrupted reference run *)
  let reference =
    match
      P.Campaign.run_cells_supervised Sup.plain ~scenarios ~benchmarks ()
    with
    | P.Campaign.Completed results -> results
    | _ -> fail "uninterrupted run did not complete"
  in
  (* 2: interrupt after the first checkpoint flush *)
  let path = tmp_path ".ckpt" in
  let stop = Sup.never_stop () in
  let session = Sup.session ~checkpoint:path ~stop () in
  let interrupted =
    (* the first flush (after baselines) reports 0 grid cells; stop at
       the first flush that shows real grid progress *)
    P.Campaign.run_cells_supervised session
      ~on_checkpoint:(fun ~completed ~total:_ ->
        if completed >= 1 then Sup.request_stop stop)
      ~scenarios ~benchmarks ()
  in
  (match interrupted with
  | P.Campaign.Interrupted { completed; total } ->
      check bool "made progress before the stop" true (completed >= 1);
      check bool "stopped before the end" true (completed < total)
  | _ -> fail "expected the run to be interrupted");
  check bool "checkpoint left behind" true (Ckpt.exists path);
  (* 3: resume to completion *)
  let resumed_session = Sup.session ~checkpoint:path ~resume:true () in
  let resumed =
    match
      P.Campaign.run_cells_supervised resumed_session ~scenarios ~benchmarks
        ()
    with
    | P.Campaign.Completed results -> results
    | _ -> fail "resumed run did not complete"
  in
  check bool "completed run removed its checkpoint" false (Ckpt.exists path);
  check bool "resumed cells == uninterrupted cells" true (resumed = reference);
  check string "rendered tables are bit-identical"
    (render_results reference) (render_results resumed)

let test_campaign_stale_checkpoint_rejected () =
  let scenarios, benchmarks = campaign_fixture () in
  let path = tmp_path ".ckpt" in
  let stop = Sup.never_stop () in
  let session = Sup.session ~checkpoint:path ~stop () in
  (match
     P.Campaign.run_cells_supervised session
       ~on_checkpoint:(fun ~completed:_ ~total:_ -> Sup.request_stop stop)
       ~scenarios ~benchmarks ()
   with
  | P.Campaign.Interrupted _ -> ()
  | _ -> fail "expected an interrupted run");
  (* resuming under a different scenario set must be refused *)
  let other_scenarios = P.Campaign.quick_scenarios () in
  let resumed_session = Sup.session ~checkpoint:path ~resume:true () in
  (match
     P.Campaign.run_cells_supervised resumed_session
       ~scenarios:other_scenarios ~benchmarks ()
   with
  | P.Campaign.Rejected e ->
      check string "typed rejection" "stale-checkpoint" (E.code_name e.E.code)
  | _ -> fail "expected the stale checkpoint to be rejected");
  Ckpt.remove path

(* ------------------------------------------------------------------ *)
(* Report sections: supervised == plain printer                        *)
(* ------------------------------------------------------------------ *)

let test_report_supervised_matches_plain () =
  let names = [ "table1"; "table3"; "eq3" ] in
  let names =
    List.filter
      (fun n -> List.exists (fun (s, _, _) -> s = n) P.Report.sections)
      names
  in
  check bool "fixture sections exist" true (List.length names >= 2);
  let plain =
    let buf = Buffer.create 4096 in
    let ppf = Format.formatter_of_buffer buf in
    P.Report.print_sections ppf
      (List.filter_map
         (fun n ->
           List.find_opt (fun (s, _, _) -> s = n) P.Report.sections
           |> Option.map (fun (_, _, f) -> f))
         names);
    Format.pp_print_flush ppf ();
    Buffer.contents buf
  in
  let supervised =
    let buf = Buffer.create 4096 in
    let ppf = Format.formatter_of_buffer buf in
    (match P.Report.run_sections_supervised Sup.plain ppf names with
    | P.Report.Sections_done { quarantined } ->
        check int "nothing quarantined" 0 quarantined
    | _ -> fail "supervised render did not complete");
    Format.pp_print_flush ppf ();
    Buffer.contents buf
  in
  check string "supervised output == plain output" plain supervised

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "supervision"
    [
      ( "retry",
        [
          QCheck_alcotest.to_alcotest qcheck_retry_deterministic;
          QCheck_alcotest.to_alcotest qcheck_retry_bounded;
          QCheck_alcotest.to_alcotest qcheck_retry_attempts_bounded;
          Alcotest.test_case "exhaustion error + schedule replay" `Quick
            test_retry_exhaustion_error;
          Alcotest.test_case "policy validation" `Quick
            test_retry_policy_validation;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "round trip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "stale digest rejected" `Quick
            test_checkpoint_stale;
          Alcotest.test_case "corrupt and missing files" `Quick
            test_checkpoint_corrupt_and_missing;
          Alcotest.test_case "directory fsync after rename" `Quick
            test_checkpoint_dir_fsync;
        ] );
      ( "incidents",
        [
          Alcotest.test_case "JSONL shape" `Quick test_incident_jsonl;
          Alcotest.test_case "file sink rotation cap" `Quick
            test_incident_rotation;
        ] );
      ( "validate",
        [
          Alcotest.test_case "flag parsing" `Quick test_validate;
          Alcotest.test_case "environment variables" `Quick test_validate_env;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "quarantine after retries" `Quick
            test_supervise_quarantine;
          Alcotest.test_case "exceptions become typed errors" `Quick
            test_supervise_catches_exceptions;
          Alcotest.test_case "deadline enforcement (fake clock)" `Quick
            test_supervise_timeout_fake_clock;
          Alcotest.test_case "no deadline is transparent" `Quick
            test_supervise_no_deadline_is_transparent;
          Alcotest.test_case "map_result isolates failures" `Quick
            test_map_result_isolates;
          Alcotest.test_case "stop flag" `Quick test_stop_flag;
          Alcotest.test_case "empty stream is a no-op" `Quick
            test_map_result_empty_stream;
          Alcotest.test_case "deadline exactly equal passes" `Quick
            test_deadline_exactly_equal_passes;
          Alcotest.test_case "stop raised before the first chunk" `Quick
            test_stop_before_first_chunk;
          Alcotest.test_case "pool item failure context" `Quick
            test_pool_item_failure_context;
        ] );
      ( "resume",
        [
          Alcotest.test_case "campaign interrupt+resume is bit-identical"
            `Slow test_campaign_resume_bit_identical;
          Alcotest.test_case "stale campaign checkpoint rejected" `Slow
            test_campaign_stale_checkpoint_rejected;
          Alcotest.test_case "supervised report == plain report" `Slow
            test_report_supervised_matches_plain;
        ] );
    ]
