(* Fault injection and self-healing: the failpoint registry (spec
   grammar, seeded determinism, fail-once arming), injected faults at
   every site it guards — IPC short transfers and truncation, checkpoint
   fsync, incident-sink ENOSPC with degraded-mode recovery, admission —
   the serve engine's circuit breaker and dwell shedding, and the whole
   chaos soak: same seed, same incident transcript, byte for byte, with
   exactly one outcome per admitted request and survivors bit-identical
   to a fault-free twin. *)

module P = Promise
module Serve = P.Serve
module Fp = P.Failpoint
module Qb = P.Queue_bounded
module E = P.Error

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string
let fok = function Ok v -> v | Error e -> Alcotest.fail (E.to_string e)

let code_of = function
  | Ok _ -> Alcotest.fail "expected a typed error"
  | Error (e : E.t) -> e.E.code

let with_failpoints ?seed assignments f =
  fok (Fp.configure ?seed assignments);
  Fun.protect ~finally:Fp.reset f

(* ------------------------------------------------------------------ *)
(* The registry                                                         *)
(* ------------------------------------------------------------------ *)

let test_spec_grammar () =
  let parsed =
    fok
      (Fp.parse_spec
         "ipc.read:fail_prob=0.25, serve.flush:FAIL_ONCE,queue.admit:eintr, \
          machine.execute:delay_ns=100,checkpoint.save:off")
  in
  check int "five clauses" 5 (List.length parsed);
  check bool "prob parsed" true
    (List.assoc "ipc.read" parsed = Fp.Fail_prob 0.25);
  check bool "case-insensitive policy" true
    (List.assoc "serve.flush" parsed = Fp.Fail_once);
  check bool "delay parsed" true
    (List.assoc "machine.execute" parsed = Fp.Delay_ns 100L);
  check (Alcotest.list (Alcotest.pair string Alcotest.reject))
    "empty spec is no assignments" []
    (List.map (fun (s, _) -> (s, ())) (fok (Fp.parse_spec "  ")));
  List.iter
    (fun spec ->
      check bool (spec ^ " rejected") true
        (code_of (Fp.parse_spec spec) = E.Invalid_operand))
    [
      "nope.site:fail_once";
      "ipc.read";
      "ipc.read:explode";
      "ipc.read:fail_prob=1.5";
      "ipc.read:fail_prob=x";
      "ipc.read:delay_ns=-3";
    ]

let test_fail_once_and_stats () =
  with_failpoints [ ("serve.flush", Fp.Fail_once) ] (fun () ->
      check bool "armed" true (Fp.enabled ());
      check bool "first check fires" true (Fp.check "serve.flush" = Some Fp.Fail);
      check bool "self-disarms" true (Fp.check "serve.flush" = None);
      check bool "unarmed site never fires" true (Fp.check "ipc.read" = None);
      match Fp.stats () with
      | [ s ] ->
          check string "site" "serve.flush" s.Fp.site;
          check int "hits" 2 s.Fp.hits;
          check int "fires" 1 s.Fp.fires
      | l -> Alcotest.failf "expected one stat, got %d" (List.length l));
  check bool "reset disarms the fast path" false (Fp.enabled ());
  check bool "after reset nothing fires" true (Fp.check "serve.flush" = None)

let test_seeded_determinism () =
  let draw () =
    fok (Fp.configure ~seed:5 [ ("serve.flush", Fp.Fail_prob 0.5) ]);
    List.init 64 (fun _ -> Fp.check "serve.flush" <> None)
  in
  let a = draw () and b = draw () in
  check (Alcotest.list bool) "same seed, same fire schedule" a b;
  fok (Fp.configure ~seed:6 [ ("serve.flush", Fp.Fail_prob 0.5) ]);
  let c = List.init 64 (fun _ -> Fp.check "serve.flush" <> None) in
  Fp.reset ();
  check bool "different seed, different schedule" false (a = c);
  check bool "some fired" true (List.exists Fun.id a);
  check bool "some did not" true (List.exists not a)

(* ------------------------------------------------------------------ *)
(* IPC under injected short transfers and truncation (QCheck)           *)
(* ------------------------------------------------------------------ *)

let payload_arb =
  QCheck.(
    pair small_int (array_of_size (Gen.int_range 0 64) float))

let payload_eq (i1, (a1 : float array)) (i2, a2) =
  i1 = i2
  && Array.length a1 = Array.length a2
  && Array.for_all2
       (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
       a1 a2

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () -> f r w)

let prop_ipc_eintr_roundtrip =
  QCheck.Test.make ~count:40
    ~name:"ipc: frames survive injected EINTR one-byte transfers"
    payload_arb
    (fun v ->
      fok
        (Fp.configure ~seed:(Hashtbl.hash v)
           [ ("ipc.read", Fp.Eintr); ("ipc.write", Fp.Eintr) ]);
      Fun.protect ~finally:Fp.reset (fun () ->
          with_pipe (fun r w ->
              match P.Ipc.write w v with
              | Error e -> QCheck.Test.fail_report (E.to_string e)
              | Ok () -> (
                  match P.Ipc.read r with
                  | Ok (Some got) -> payload_eq v got
                  | Ok None -> QCheck.Test.fail_report "unexpected EOF"
                  | Error e -> QCheck.Test.fail_report (E.to_string e)))))

let prop_ipc_truncation_is_typed =
  QCheck.Test.make ~count:60
    ~name:"ipc: injected peer death is intact, clean EOF, or a typed error"
    payload_arb
    (fun v ->
      fok
        (Fp.configure ~seed:(Hashtbl.hash v)
           [ ("ipc.read", Fp.Fail_prob 0.3) ]);
      Fun.protect ~finally:Fp.reset (fun () ->
          with_pipe (fun r w ->
              match P.Ipc.write w v with
              | Error e -> QCheck.Test.fail_report (E.to_string e)
              | Ok () -> (
                  (* every outcome is accounted for: the frame arrives
                     intact, the simulated peer death lands between
                     frames (clean EOF), or it lands mid-frame and the
                     error is typed — never a silently wrong value *)
                  match P.Ipc.read r with
                  | Ok (Some got) -> payload_eq v got
                  | Ok None -> true
                  | Error e -> e.E.code = E.Invalid_operand))))

let test_ipc_injected_write_failure () =
  with_failpoints [ ("ipc.write", Fp.Fail_once) ] (fun () ->
      with_pipe (fun _r w ->
          check bool "write fails typed" true
            (code_of (P.Ipc.write w (1, [| 2.0 |])) = E.Invalid_operand);
          check bool "registry disarmed, next frame flows" true
            (P.Ipc.write w (3, [| 4.0 |]) = Ok ())))

(* ------------------------------------------------------------------ *)
(* Incident sink degraded mode                                          *)
(* ------------------------------------------------------------------ *)

let test_incident_sink_degrades_and_recovers () =
  let path = Filename.temp_file "promise_sink" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let inc = fok (P.Incident.to_file path) in
      with_failpoints [ ("incident.write", Fp.Fail_once) ] (fun () ->
          P.Incident.record inc P.Incident.Chaos [ ("n", "1") ];
          check bool "sink degraded on injected ENOSPC" true
            (P.Incident.degraded inc);
          check int "one line dropped" 1 (P.Incident.dropped inc);
          P.Incident.record inc P.Incident.Chaos [ ("n", "2") ];
          check bool "recovered on the next good write" false
            (P.Incident.degraded inc));
      P.Incident.close inc;
      let ic = open_in path in
      let rec lines acc =
        match input_line ic with
        | l -> lines (l :: acc)
        | exception End_of_file ->
            close_in_noerr ic;
            List.rev acc
      in
      let all = lines [] in
      let has needle l =
        let n = String.length needle in
        let rec go i =
          i + n <= String.length l && (String.sub l i n = needle || go (i + 1))
        in
        go 0
      in
      check int "marker + surviving line" 2 (List.length all);
      (match all with
      | [ marker; survivor ] ->
          check bool "recovery marker first" true
            (has "\"sink-degraded\"" marker && has "\"dropped\":\"1\"" marker);
          check bool "dropped line stays dropped, next line lands" true
            (has "\"n\":\"2\"" survivor)
      | _ -> Alcotest.fail "unexpected log shape");
      (* two records plus the recovery marker all draw sequence numbers *)
      check int "count tracks recorded, not persisted" 3
        (P.Incident.count inc))

(* ------------------------------------------------------------------ *)
(* Checkpoint fsync failure, admission failure                          *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_injected_fsync () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ()) "promise_chaos_test.ckpt"
  in
  (try Sys.remove path with Sys_error _ -> ());
  let digest = P.Checkpoint.digest_of_config ~kind:"chaos-test" [ "a" ] in
  with_failpoints [ ("checkpoint.save", Fp.Fail_once) ] (fun () ->
      (match P.Checkpoint.save ~path ~config_digest:digest 42 with
      | Ok () -> Alcotest.fail "injected fsync failure must surface"
      | Error e -> check bool "typed" true (E.to_string e <> ""));
      check bool "no torn checkpoint left behind" false (Sys.file_exists path);
      fok (P.Checkpoint.save ~path ~config_digest:digest 42);
      check int "clean save round-trips" 42
        (fok (P.Checkpoint.load ~path ~config_digest:digest)));
  try Sys.remove path with Sys_error _ -> ()

let test_queue_injected_admission () =
  with_failpoints [ ("queue.admit", Fp.Fail_once) ] (fun () ->
      let q = fok (Qb.create ~capacity:4) in
      (match Qb.try_push q 1 with
      | Ok () -> Alcotest.fail "injected admission failure must reject"
      | Error e ->
          check bool "typed Capacity" true (e.E.code = E.Capacity);
          check bool "marked injected" true
            (List.assoc_opt "injected" e.E.context = Some "true"));
      fok (Qb.try_push q 2);
      check (Alcotest.option int) "peek sees the head without popping"
        (Some 2) (Qb.peek_opt q);
      check (Alcotest.option int) "pop still FIFO" (Some 2) (Qb.pop_opt q);
      check int "rejection accounted" 1 (Qb.stats q).Qb.rejected)

(* ------------------------------------------------------------------ *)
(* The self-healing engine: breaker and dwell shedding                  *)
(* ------------------------------------------------------------------ *)

let mf = lazy (P.Benchmarks.matched_filter ())
let quiet_model () = Serve.model_of_benchmark (Lazy.force mf)

let engine ?(queue = 16) ?(batch_max = 4) ?(flush_us = 1000)
    ?breaker_threshold ?breaker_cooldown_ms ?dwell_budget_us ?incidents ~clock
    model =
  let outs = ref [] in
  let eng =
    fok
      (Serve.create ~clock ?incidents ?breaker_threshold ?breaker_cooldown_ms
         ?dwell_budget_us ~queue ~batch_max ~flush_us
         ~respond:(fun o -> outs := o :: !outs)
         [ model ])
  in
  (eng, fun () -> List.rev !outs)

let test_breaker_trips_sheds_recovers () =
  let now = ref 0L in
  let buf = Buffer.create 512 in
  let incidents = P.Incident.to_buffer buf in
  let m = quiet_model () in
  let name = Serve.model_name m in
  let eng, outs =
    engine ~clock:(fun () -> !now) ~incidents ~batch_max:1
      ~breaker_threshold:2 ~breaker_cooldown_ms:1.0 m
  in
  let flush_one rid =
    fok (Serve.submit eng ~rid ~model:name);
    Serve.pump eng;
    Serve.flush_all eng
  in
  (* the blackout: primary AND the digital fallback twin fault, so the
     heal ladder cannot absorb it and consecutive failures accumulate *)
  fok (Fp.configure ~seed:1 [ ("machine.execute", Fp.Fail_prob 1.0) ]);
  flush_one 0;
  flush_one 1;
  (* two consecutive batch failures: the breaker is now open *)
  flush_one 2;
  (match List.filter (fun o -> o.Serve.o_rid = 2) (outs ()) with
  | [ o ] -> (
      match o.Serve.o_result with
      | Error e ->
          check bool "open breaker sheds with Overloaded" true
            (e.E.code = E.Overloaded);
          check bool "retry-after hint" true
            (List.mem_assoc "retry-after-ms" e.E.context)
      | Ok _ -> Alcotest.fail "request 2 must be shed")
  | _ -> Alcotest.fail "request 2 must get exactly one outcome");
  (* fault clears; past the cooldown the next flush is the half-open
     probe, it succeeds, and the breaker closes *)
  Fp.reset ();
  now := 5_000_000L;
  flush_one 3;
  (match List.filter (fun o -> o.Serve.o_rid = 3) (outs ()) with
  | [ o ] -> check bool "probe request served" true (Result.is_ok o.Serve.o_result)
  | _ -> Alcotest.fail "request 3 must get exactly one outcome");
  let s = Serve.stats eng in
  check bool "shed accounted" true (s.Serve.shed >= 1);
  let log = Buffer.contents buf in
  let has needle =
    let n = String.length needle in
    let rec go i =
      i + n <= String.length log
      && (String.sub log i n = needle || go (i + 1))
    in
    go 0
  in
  check bool "breaker open logged" true (has "\"state\":\"open\"");
  check bool "half-open probe logged" true (has "\"state\":\"half-open\"");
  check bool "breaker close logged" true (has "\"state\":\"closed\"")

let test_dwell_shedding () =
  let now = ref 0L in
  let m = quiet_model () in
  let name = Serve.model_name m in
  let eng, outs =
    engine ~clock:(fun () -> !now) ~batch_max:64 ~flush_us:1000
      ~dwell_budget_us:100 m
  in
  fok (Serve.submit eng ~rid:0 ~model:name);
  (* the engine stalls: the queue head ages past the 100 us budget *)
  now := 300_000L;
  (match Serve.submit eng ~rid:1 ~model:name with
  | Ok () -> Alcotest.fail "over-budget dwell must shed new arrivals"
  | Error e ->
      check bool "typed Overloaded" true (e.E.code = E.Overloaded);
      check bool "retry-after hint" true
        (List.mem_assoc "retry-after-ms" e.E.context));
  check int "shed accounted" 1 (Serve.stats eng).Serve.shed;
  (* the stalled head itself is still served once the engine resumes *)
  Serve.pump eng;
  Serve.flush_all eng;
  match outs () with
  | [ o ] ->
      check int "head survived the stall" 0 o.Serve.o_rid;
      check bool "served" true (Result.is_ok o.Serve.o_result)
  | os -> Alcotest.failf "expected one outcome, got %d" (List.length os)

(* ------------------------------------------------------------------ *)
(* The whole soak                                                       *)
(* ------------------------------------------------------------------ *)

let test_chaos_soak_invariants_and_determinism () =
  let dir = Filename.get_temp_dir_name () in
  let soak tag =
    let ip = Filename.concat dir ("promise_chaos_" ^ tag ^ ".jsonl") in
    let cp = ip ^ ".ckpt" in
    let r =
      fok
        (Serve.chaos_run ~seed:11 ~incident_path:ip ~checkpoint_path:cp
           ~model:quiet_model ())
    in
    (try Sys.remove ip with Sys_error _ -> ());
    (try Sys.remove cp with Sys_error _ -> ());
    r
  in
  let a = soak "a" in
  check int "exactly one outcome per admitted request" 0 a.Serve.c_lost;
  check int "no duplicate outcomes" 0 a.Serve.c_multi;
  check int "survivors bit-identical to the fault-free twin" 0
    a.Serve.c_survivor_mismatches;
  check bool "a real population survived" true (a.Serve.c_survivors_checked > 0);
  check bool "every admitted request resolved" true
    (a.Serve.c_served + a.Serve.c_timeouts + a.Serve.c_failed + a.Serve.c_shed
     >= a.Serve.c_admitted);
  check bool "the transient fault healed in place" true (a.Serve.c_healed >= 1);
  check bool "the bank death parked the model on the digital twin" true
    (a.Serve.c_fallback_batches >= 1);
  check bool "the blackout tripped the breaker" true
    (a.Serve.c_breaker_opens >= 1);
  check bool "the sink degraded and recovered" true
    (a.Serve.c_sink_degraded >= 1);
  check bool "ipc faults were typed, not fatal" true (a.Serve.c_ipc_faults > 0);
  check bool "checkpoint failures were typed, not fatal" true
    (a.Serve.c_checkpoint_failures > 0);
  let b = soak "b" in
  check string "same seed, byte-identical transcript" a.Serve.c_events
    b.Serve.c_events;
  check bool "transcript is non-trivial" true
    (String.length a.Serve.c_events > 500)

let () =
  Alcotest.run "chaos"
    [
      ( "failpoint",
        [
          Alcotest.test_case "spec grammar" `Quick test_spec_grammar;
          Alcotest.test_case "fail_once + stats" `Quick
            test_fail_once_and_stats;
          Alcotest.test_case "seeded determinism" `Quick
            test_seeded_determinism;
        ] );
      ( "ipc",
        [
          QCheck_alcotest.to_alcotest prop_ipc_eintr_roundtrip;
          QCheck_alcotest.to_alcotest prop_ipc_truncation_is_typed;
          Alcotest.test_case "injected write failure" `Quick
            test_ipc_injected_write_failure;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "incident sink degrades and recovers" `Quick
            test_incident_sink_degrades_and_recovers;
          Alcotest.test_case "checkpoint fsync failure" `Quick
            test_checkpoint_injected_fsync;
          Alcotest.test_case "injected admission failure" `Quick
            test_queue_injected_admission;
        ] );
      ( "self-heal",
        [
          Alcotest.test_case "breaker trips, sheds, recovers" `Quick
            test_breaker_trips_sheds_recovers;
          Alcotest.test_case "dwell shedding" `Quick test_dwell_shedding;
        ] );
      ( "soak",
        [
          Alcotest.test_case "invariants + determinism" `Quick
            test_chaos_soak_invariants_and_determinism;
        ] );
    ]
