Golden traces of the report CLI. Sections render into private buffers
and print in list order, so the output is byte-identical at any job
count.

  $ promise_report table1
  
  == Table 1 - ML algorithm kernels ==
     inner-loop distance D(W,X) and decision function f()
     algorithm                    kernel                   f()
     ------------------------------------------------------------------------
     SVM                          sum w[i]x[i]             sign
     Temp. Match. (L1)            sum |w[i]-x[i]|          min
     Temp. Match. (L2)            sum (w[i]-x[i])^2        min
     DNN                          sum w[i]x[i]             sigmoid
     Feature extraction (PCA)     sum w[i]x[i]             -
     k-NN (L1)                    sum |w[i]-x[i]|          majority vote
     k-NN (L2)                    sum (w[i]-x[i])^2        majority vote
     Matched filter               sum w[i]x[i]             threshold
     Linear regression            means of u, v, u^2, uv   accumulate

  $ promise_report isa
  
  == Figure 5 / §3.4 - the template-matching Task ==
     aSUBT + absolute.avd + ADC + min over 127 candidates on 4 banks
     asm:    task c1=aSUBT c2=absolute.avd c3=ADC c4=min rpt=126 mb=2 swing=7 acc=0 w=0 x1=0 x2=0 xprd=0 des=out thres=0
     binary: 0xe000010fd45c (48 bits)
     TP = 7 cycles, 127 iterations, 4 banks

A multi-section parallel render is byte-for-byte the sequential one.

  $ promise_report isa table1 eq3 > seq.txt
  $ promise_report isa table1 eq3 --jobs 4 > par.txt
  $ cmp seq.txt par.txt

Unknown sections are reported with the available names.

  $ promise_report no_such_section
  unknown section "no_such_section"; available: validation, resilience, table1, table3, eq3, isa, fig10a, fig10b, fig11, fig12, table2, soa_knn, soa_dnn, cm, ablation, extensions, adc_fidelity, size_sweep, error_sources, dma, yield

A bad job count is a usage error carrying the typed diagnostic.

  $ promise_report table1 --jobs 0
  promise-report: option '--jobs': cli: must be in 1..64 [flag=--jobs, value=0]
  Usage: promise-report [OPTION]… [SECTION]…
  Try 'promise-report --help' for more information.
  [124]

So is junk in a PROMISE_* environment variable.

  $ PROMISE_JOBS=fuor promise_report table1
  promise-report: cli: expected an integer [flag=PROMISE_JOBS, value=fuor]
  [124]

A run interrupted mid-render resumes from its checkpoint and prints
the byte-identical report.

  $ promise_report isa table1 eq3 > clean.txt
  $ promise_report isa table1 eq3 --checkpoint state.ckpt --resume --incidents log.jsonl > resumed.txt 2>/dev/null
  $ cmp clean.txt resumed.txt
  $ grep -c '"kind":"run-start"' log.jsonl
  1
  $ test ! -e state.ckpt
