The assembler round trip: the §3.4 template-matching Task.

  $ cat > tm.pasm <<'PASM'
  > ; template matching, 127 candidates on 4 banks
  > task c1=aSUBT c2=absolute.avd c3=ADC c4=min rpt=126 mb=2
  > PASM
  $ promise_asm assemble tm.pasm
  e000010fd45c
  $ promise_asm assemble tm.pasm | promise_asm disassemble
  task c1=aSUBT c2=absolute.avd c3=ADC c4=min rpt=126 mb=2 swing=7 acc=0 w=0 x1=0 x2=0 xprd=0 des=out thres=0
  $ promise_asm validate tm.pasm
  1 task(s) valid; program uses up to 4 bank(s)

Illegal compositions are rejected with the offending line.

  $ cat > bad.pasm <<'PASM'
  > task c1=read c2=square c3=ADC c4=min
  > PASM
  $ promise_asm validate bad.pasm
  promise-asm: line 1: [P-TSK-003] Class-2 aSD operation requires an analog Class-1 producer
  [1]
