promise-lint on a clean assembly program: exit 0, no diagnostics.

  $ cat > clean.pasm <<'PASM'
  > ; one well-formed Task
  > task c1=aREAD c2=square.avd c3=ADC c4=accumulate
  > PASM
  $ promise_lint clean.pasm
  clean.pasm: clean
  0 error(s), 0 warning(s) in 1 target(s)

Seeded ISA violations are caught with their documented codes and the
source line, and the exit code is 1.

  $ cat > bad.pasm <<'PASM'
  > task c1=aREAD c2=square c4=accumulate
  > task c1=aREAD c2=square.avd c3=ADC c4=accumulate w=100 rpt=59
  > task c1=aREAD c2=square.avd c3=ADC c4=accumulate des=acc
  > PASM
  $ promise_lint bad.pasm
  bad.pasm: error[P-ISA-003] line 1: analog value crosses the Task boundary without a Class-3 ADC and is dropped
  bad.pasm: error[P-ISA-002] line 2: W window [100, 159] exceeds the 128 word rows of a bank (addresses wrap and alias)
  bad.pasm: error[P-ISA-006] line 3: accumulator chain never drains: the program ends with DES = acc
  3 error(s), 0 warning(s) in 1 target(s)
  [1]

A syntax error is a single located P-ASM-001.

  $ cat > syntax.pasm <<'PASM'
  > task c1=aREAD avd
  > PASM
  $ promise_lint syntax.pasm
  syntax.pasm: error[P-ASM-001] line 1: malformed field "avd"
  1 error(s), 0 warning(s) in 1 target(s)
  [1]

DSL kernels run the whole pipeline under the linter.

  $ promise_lint kernels/svm.sexp kernels/mlp.sexp
  kernels/svm.sexp: clean
  kernels/mlp.sexp: clean
  0 error(s), 0 warning(s) in 2 target(s)

JSON output (the CI artifact) carries codes, spans and severities.

  $ promise_lint bad.pasm --format json
  {"summary":{"errors":3,"warnings":0},"targets":[{"target":"bad.pasm","errors":3,"warnings":0,"diagnostics":[{"code":"P-ISA-003","severity":"error","span":{"kind":"line","line":1},"message":"analog value crosses the Task boundary without a Class-3 ADC and is dropped"},{"code":"P-ISA-002","severity":"error","span":{"kind":"line","line":2},"message":"W window [100, 159] exceeds the 128 word rows of a bank (addresses wrap and alias)"},{"code":"P-ISA-006","severity":"error","span":{"kind":"line","line":3},"message":"accumulator chain never drains: the program ends with DES = acc"}]}]}
  [1]

Nothing to lint is a usage error (exit 2).

  $ promise_lint
  promise-lint: nothing to lint (give FILES or --benchmarks)
  [2]

The compile and assemble drivers expose the same passes behind
--lint; the report goes to stderr so stdout stays the program.

  $ promise_compile kernels/svm.sexp --lint 2>lint.err >/dev/null && cat lint.err
  kernels/svm.sexp: clean
  0 error(s), 0 warning(s) in 1 target(s)

  $ promise_asm validate bad.pasm --lint 2>&1 >/dev/null | head -1
  bad.pasm: error[P-ISA-003] line 1: analog value crosses the Task boundary without a Class-3 ADC and is dropped

--no-lint overrides --lint.

  $ promise_asm validate bad.pasm --lint --no-lint
  3 task(s) valid; program uses up to 1 bank(s)

The Task-level dataflow passes run on assembly too: a shadowed X-REG
store (a later store lands before any X read) is P-DCE-002 on the
source line of the dead store.

  $ cat > shadow.pasm <<'PASM'
  > task c1=aREAD c2=square.avd c3=ADC c4=sigmoid des=xreg
  > task c1=aREAD c2=square.avd c3=ADC c4=sigmoid des=xreg
  > task c1=aADD c2=none.avd c3=ADC c4=accumulate acc=0 xprd=0
  > PASM
  $ promise_lint shadow.pasm
  shadow.pasm: error[P-DCE-002] line 1: X-REG store is overwritten by a later store before any Task reads an X operand (shadowed write)
  1 error(s), 0 warning(s) in 1 target(s)
  [1]

The timing pass models a degraded ADC complement with --adc-units: a
128-iteration accumulation on one surviving unit dwells past the
~47 ns leakage budget (P-TIM-001), and the conversion cadence outruns
the unit (P-TIM-003).

  $ cat > slow.pasm <<'PASM'
  > task c1=aREAD c2=square.avd c3=ADC c4=accumulate rpt=127
  > PASM
  $ promise_lint slow.pasm
  slow.pasm: clean
  0 error(s), 0 warning(s) in 1 target(s)
  $ promise_lint slow.pasm --adc-units 1
  slow.pasm: error[P-TIM-001] line 1: analog accumulation dwells 130 cycles (130.0 ns) before its ADC read but the leakage budget is 47.4 ns (2.3% full-scale droop): the held samples decay below 8-bit precision
  slow.pasm: warning[P-TIM-003] line 1: with 1 of 8 ADC units alive, conversions arrive every 8 cycles but 1 units cover only one per 138: the pipeline stalls and held samples droop
  1 error(s), 1 warning(s) in 1 target(s)
  [1]

Exit-code policy: warnings pass by default, --max-warnings bounds
them, and --deny promotes matching warnings to errors.

  $ cat > warn.pasm <<'PASM'
  > task c1=aREAD c2=square.avd c3=ADC c4=accumulate
  > PASM
  $ promise_lint warn.pasm --adc-units 2
  warn.pasm: warning[P-TIM-003] line 1: with 2 of 8 ADC units alive, conversions arrive every 8 cycles but 2 units cover only one per 69: the pipeline stalls and held samples droop
  0 error(s), 1 warning(s) in 1 target(s)
  $ promise_lint warn.pasm --adc-units 2 --max-warnings 0
  warn.pasm: warning[P-TIM-003] line 1: with 2 of 8 ADC units alive, conversions arrive every 8 cycles but 2 units cover only one per 69: the pipeline stalls and held samples droop
  0 error(s), 1 warning(s) in 1 target(s)
  [1]
  $ promise_lint warn.pasm --adc-units 2 --deny P-TIM
  warn.pasm: error[P-TIM-003] line 1: with 2 of 8 ADC units alive, conversions arrive every 8 cycles but 2 units cover only one per 69: the pipeline stalls and held samples droop
  1 error(s), 0 warning(s) in 1 target(s)
  [1]

--write-baseline records fingerprints; --baseline suppresses exactly
those diagnostics (and only those) on later runs. The fingerprint is
deterministic: target x code x span x digit-insensitive message.

  $ promise_lint warn.pasm --adc-units 2 --write-baseline base.json
  wrote baseline (1 diagnostic(s)) to base.json
  $ cat base.json
  {"version":1,"fingerprints":["804fb8064a34f465"]}
  $ promise_lint warn.pasm --adc-units 2 --baseline base.json
  warn.pasm: clean
  0 error(s), 0 warning(s) in 1 target(s) (1 suppressed by baseline)

PROMISE_LINT_BASELINE supplies the same default, and the environment
is validated loudly (exit 2, not a silent ignore).

  $ PROMISE_LINT_BASELINE=base.json promise_lint warn.pasm --adc-units 2
  warn.pasm: clean
  0 error(s), 0 warning(s) in 1 target(s) (1 suppressed by baseline)
  $ PROMISE_LINT_DENY=p-tim promise_lint warn.pasm
  cli: deny prefixes are uppercase code prefixes like P-TIM [flag=PROMISE_LINT_DENY, prefix=p-tim]
  [2]

--format sarif emits the CI code-scanning artifact, fingerprints under
partialFingerprints.

  $ promise_lint warn.pasm --adc-units 2 --format sarif
  {"$schema":"https://json.schemastore.org/sarif-2.1.0.json","version":"2.1.0","runs":[{"tool":{"driver":{"name":"promise-lint","version":"1.0.0","rules":[{"id":"P-TIM-003"}]}},"results":[{"ruleId":"P-TIM-003","level":"warning","message":{"text":"with 2 of 8 ADC units alive, conversions arrive every 8 cycles but 2 units cover only one per 69: the pipeline stalls and held samples droop"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"warn.pasm"},"region":{"startLine":1}},"logicalLocations":[{"fullyQualifiedName":"line 1"}]}],"partialFingerprints":{"promiseLint/v1":"804fb8064a34f465"}}]}]}
