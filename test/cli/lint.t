promise-lint on a clean assembly program: exit 0, no diagnostics.

  $ cat > clean.pasm <<'PASM'
  > ; one well-formed Task
  > task c1=aREAD c2=square.avd c3=ADC c4=accumulate
  > PASM
  $ promise_lint clean.pasm
  clean.pasm: clean
  0 error(s), 0 warning(s) in 1 target(s)

Seeded ISA violations are caught with their documented codes and the
source line, and the exit code is 1.

  $ cat > bad.pasm <<'PASM'
  > task c1=aREAD c2=square c4=accumulate
  > task c1=aREAD c2=square.avd c3=ADC c4=accumulate w=100 rpt=59
  > task c1=aREAD c2=square.avd c3=ADC c4=accumulate des=acc
  > PASM
  $ promise_lint bad.pasm
  bad.pasm: error[P-ISA-003] line 1: analog value crosses the Task boundary without a Class-3 ADC and is dropped
  bad.pasm: error[P-ISA-002] line 2: W window [100, 159] exceeds the 128 word rows of a bank (addresses wrap and alias)
  bad.pasm: error[P-ISA-006] line 3: accumulator chain never drains: the program ends with DES = acc
  3 error(s), 0 warning(s) in 1 target(s)
  [1]

A syntax error is a single located P-ASM-001.

  $ cat > syntax.pasm <<'PASM'
  > task c1=aREAD avd
  > PASM
  $ promise_lint syntax.pasm
  syntax.pasm: error[P-ASM-001] line 1: malformed field "avd"
  1 error(s), 0 warning(s) in 1 target(s)
  [1]

DSL kernels run the whole pipeline under the linter.

  $ promise_lint kernels/svm.sexp kernels/mlp.sexp
  kernels/svm.sexp: clean
  kernels/mlp.sexp: clean
  0 error(s), 0 warning(s) in 2 target(s)

JSON output (the CI artifact) carries codes, spans and severities.

  $ promise_lint bad.pasm --format json
  {"summary":{"errors":3,"warnings":0},"targets":[{"target":"bad.pasm","errors":3,"warnings":0,"diagnostics":[{"code":"P-ISA-003","severity":"error","span":{"kind":"line","line":1},"message":"analog value crosses the Task boundary without a Class-3 ADC and is dropped"},{"code":"P-ISA-002","severity":"error","span":{"kind":"line","line":2},"message":"W window [100, 159] exceeds the 128 word rows of a bank (addresses wrap and alias)"},{"code":"P-ISA-006","severity":"error","span":{"kind":"line","line":3},"message":"accumulator chain never drains: the program ends with DES = acc"}]}]}
  [1]

Nothing to lint is a usage error (exit 2).

  $ promise_lint
  promise-lint: nothing to lint (give FILES or --benchmarks)
  [2]

The compile and assemble drivers expose the same passes behind
--lint; the report goes to stderr so stdout stays the program.

  $ promise_compile kernels/svm.sexp --lint 2>lint.err >/dev/null && cat lint.err
  kernels/svm.sexp: clean
  0 error(s), 0 warning(s) in 1 target(s)

  $ promise_asm validate bad.pasm --lint 2>&1 >/dev/null | head -1
  bad.pasm: error[P-ISA-003] line 1: analog value crosses the Task boundary without a Class-3 ADC and is dropped

--no-lint overrides --lint.

  $ promise_asm validate bad.pasm --lint --no-lint
  3 task(s) valid; program uses up to 1 bank(s)
