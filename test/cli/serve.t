The serving selftest drives the coalescing engine in batched and
single mode over bit-for-bit twin models; the response streams must be
identical (timings go to stderr, stable facts to stdout).

  $ promise_serve --selftest-load --requests 64 --batch-max 8 --load closed:16 2>/dev/null
  serve selftest: model=matched_filter requests=64 load=closed:16
  batched: served=64 rejected=0 timeouts=0 failures=0
  single: served=64 rejected=0 timeouts=0 failures=0
  identical_output=true

The selftest writes the BENCH_serve.json artifact.

  $ promise_serve --selftest-load --requests 64 --batch-max 8 --load closed:16 --bench bench.json >/dev/null 2>&1
  $ grep -c '"identical_output": true' bench.json
  1

Daemon and probe over a Unix-domain socket: the daemon exits cleanly
after its response budget; the probe pipelines requests on one
connection and accounts every answer.

  $ promise_serve --listen /tmp/serve-cram.$$ --max-requests 6 2>/dev/null &
  $ promise_serve --probe /tmp/serve-cram.$$ --requests 6 2>/dev/null
  probe: sent=6 ok=6 rejected=0
  $ wait

A request for an unknown model is rejected at admission with a typed
error reply — the daemon stays alive and still answers.

  $ promise_serve --listen /tmp/serve-cram.$$ --max-requests 3 2>/dev/null &
  $ promise_serve --probe /tmp/serve-cram.$$ --model nope --requests 3 2>/dev/null
  probe: sent=3 ok=0 rejected=3
  [124]
  $ wait

A daemon that loses a reply mid-pipeline (here: one injected
response-write failure) leaves the probe facing a closed connection;
the typed error accounts exactly how many replies arrived before the
close.

  $ promise_serve --listen /tmp/serve-close.$$ --max-requests 8 --failpoints ipc.write:fail_once 2>/dev/null &
  $ promise_serve --probe /tmp/serve-close.$$ --requests 8 2>&1
  promise-serve: serve: daemon closed the connection mid-pipeline [replies-before-close=7, missing=1]
  [124]
  $ wait

The chaos soak replays a seeded failure storm on a virtual clock:
deterministic counters, invariants gated in-process, and a canonical
incident transcript that is byte-identical for the same seed.

  $ promise_serve --chaos --seed 42 --incidents inc_a.jsonl --events ev_a.txt 2>/dev/null
  chaos: model=matched_filter seed=42 requests=240
  chaos: admitted=207 served=153 timeouts=13 failed=20 shed=21 rejected=33
  chaos: healed=1 fallback_batches=20 breaker_opens=1 sink_degraded=2
  chaos: lost=0 multi=0 survivors=153 mismatches=0
  chaos: invariants hold

  $ promise_serve --chaos --seed 42 --incidents inc_b.jsonl --events ev_b.txt >/dev/null 2>&1
  $ cmp ev_a.txt ev_b.txt && echo byte-identical
  byte-identical

  $ grep -c '"kind":"breaker","model":"matched_filter","state":"open"' ev_a.txt
  1

Validation: exactly one entry point, range-checked knobs, and loud
PROMISE_SERVE_* environment checking before any work.

  $ promise_serve
  promise-serve: pick exactly one of --listen PATH, --probe PATH, --selftest-load, --chaos
  [124]

  $ promise_serve --selftest-load --batch-max 0 2>&1 | tail -1
  Try 'promise-serve --help' for more information.

  $ promise_serve --selftest-load --flush-us 10000001 2>&1 | tail -1
  Try 'promise-serve --help' for more information.

  $ promise_serve --selftest-load --queue 0 2>&1 | tail -1
  Try 'promise-serve --help' for more information.

  $ promise_serve --selftest-load --model nosuch
  promise-serve: unknown model "nosuch" (expected one of: matched_filter, template_l1, template_l2, svm, knn_l1, knn_l2, pca, linreg)
  [124]

  $ PROMISE_SERVE_BATCH=4097 promise_serve --selftest-load
  promise-serve: cli: must be in 1..4096 [flag=PROMISE_SERVE_BATCH, value=4097]
  [124]

  $ PROMISE_SERVE_QUEUE=zero promise_serve --selftest-load
  promise-serve: cli: expected an integer [flag=PROMISE_SERVE_QUEUE, value=zero]
  [124]

  $ PROMISE_SERVE_BREAKER_THRESHOLD=0 promise_serve --selftest-load
  promise-serve: cli: must be in 1..10000 [flag=PROMISE_SERVE_BREAKER_THRESHOLD, value=0]
  [124]

  $ PROMISE_SERVE_DWELL_BUDGET_US=abc promise_serve --selftest-load
  promise-serve: cli: expected an integer [flag=PROMISE_SERVE_DWELL_BUDGET_US, value=abc]
  [124]

A malformed failpoint spec — environment or flag — fails loudly before
any work, naming the clause.

  $ PROMISE_FAILPOINTS=bogus promise_serve --selftest-load
  promise-serve: failpoint: expected site:policy [flag=PROMISE_FAILPOINTS, clause=bogus]
  [124]

  $ promise_serve --selftest-load --failpoints ipc.read:explode
  promise-serve: failpoint: expected off, fail_once, eintr, fail_prob=P or delay_ns=N [clause=ipc.read:explode, policy=explode]
  [124]
