The fleet runner shards a report across forked workers; stdout is
identical to the single-process report (progress goes to stderr).

  $ promise_fleet report table1 table3 isa --shards 2 --workers 2 2>/dev/null > fleet.txt
  $ promise_report table1 table3 isa > plain.txt
  $ cmp fleet.txt plain.txt

Validation: flags and workloads are checked before any fork.

  $ promise_fleet report table1 --workers 0 2>&1 | tail -1
  Try 'promise-fleet --help' for more information.

  $ promise_fleet campaign --resume
  promise-fleet: --resume needs --checkpoint-dir DIR to resume from
  [124]

  $ promise_fleet bogus
  promise-fleet: unknown workload "bogus" (expected campaign or report)
  [124]

  $ promise_fleet report nosuchsection
  promise-fleet: unknown sections: nosuchsection
  [124]

  $ promise_fleet report table1 --chaos bogus 2>&1 | tail -1
  Try 'promise-fleet --help' for more information.

  $ promise_fleet campaign --batch 0 2>&1 | tail -1
  Try 'promise-fleet --help' for more information.

  $ promise_fleet campaign --batch 4097 2>&1 | tail -1
  Try 'promise-fleet --help' for more information.

Batched execution over a fleet: losing a worker to the chaos monkey
mid-run leaves the batch-8 campaign byte-identical to the
uninterrupted batch-8 run (the shard checkpoint digest folds the
batch width in, so the restarted worker resumes at the same width).

  $ promise_fleet campaign --quick --batch 8 --workers 2 --chaos kill-one 2>/dev/null > chaos8.txt
  $ promise_fleet campaign --quick --batch 8 --workers 2 2>/dev/null > plain8.txt
  $ cmp chaos8.txt plain8.txt
