(* Tests for the post-reproduction extensions: the discrete-event
   pipeline scheduler, hardware fault injection, the §3.3 omitted-ops
   analysis, and the k-means / random-forest substrate. *)

module P = Promise
open P.Isa
module Arch = P.Arch
module Ml = P.Ml
module Rng = P.Analog.Rng

let check = Alcotest.check
let fail = Alcotest.fail
let bool = Alcotest.bool
let int = Alcotest.int
let close eps = Alcotest.float eps

let l1_task ?(rpt_num = 0) () =
  Task.make ~rpt_num ~class1:Opcode.C1_asubt
    ~class2:{ Opcode.asd = Opcode.Asd_absolute; avd = true }
    ~class3:Opcode.C3_adc ~class4:Opcode.C4_min ()

let dot_task ?(rpt_num = 0) () =
  Task.make ~rpt_num ~class1:Opcode.C1_aread
    ~class2:{ Opcode.asd = Opcode.Asd_sign_mult; avd = true }
    ~class3:Opcode.C3_adc ~class4:Opcode.C4_accumulate ()

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

let test_scheduler_matches_closed_form () =
  List.iter
    (fun task ->
      check bool "closed form" true (Arch.Scheduler.matches_closed_form task))
    [ l1_task (); l1_task ~rpt_num:63 (); dot_task ~rpt_num:127 () ]

let test_scheduler_event_structure () =
  let s = Arch.Scheduler.run (l1_task ~rpt_num:1 ()) in
  (* 2 iterations x 4 stages *)
  check int "8 events" 8 (List.length s.Arch.Scheduler.events);
  let first = List.hd s.Arch.Scheduler.events in
  check Alcotest.string "first stage" "S1" first.Arch.Scheduler.stage;
  check int "starts at 0" 0 first.Arch.Scheduler.start;
  check int "S1 busy 7 cycles" 7 first.Arch.Scheduler.finish

let test_scheduler_ideal_interval_is_tp () =
  let task = l1_task ~rpt_num:63 () in
  let s = Arch.Scheduler.run ~ideal_adc:true task in
  (match Arch.Scheduler.throughput_interval s with
  | Some i -> check int "interval = TP" (Arch.Timing.task_tp task) i
  | None -> fail "interval expected");
  check int "no stalls" 0 s.Arch.Scheduler.adc_stalls

let test_scheduler_unit_accurate_stalls () =
  (* 8 x TP(7) = 56 < 138: the per-unit model must stall *)
  let task = l1_task ~rpt_num:63 () in
  let s = Arch.Scheduler.run ~ideal_adc:false task in
  check bool "stalls observed" true (s.Arch.Scheduler.adc_stalls > 0);
  match Arch.Scheduler.throughput_interval s with
  | Some i ->
      (* sustained rate limited by 138/8 ~ 17.25 cycles *)
      check bool "interval near 138/8" true (i >= 15 && i <= 19)
  | None -> fail "interval expected"

let test_scheduler_slow_pipeline_never_stalls () =
  (* TP = 18 >= 138/8: no stalls even with per-unit accounting *)
  let task =
    Task.make ~rpt_num:63
      ~op_param:Op_param.default
      ~class1:Opcode.C1_aread
      ~class2:{ Opcode.asd = Opcode.Asd_sign_mult; avd = true }
      ~class3:Opcode.C3_adc ~class4:Opcode.C4_accumulate ()
  in
  (* TP = 14; 8 x 14 = 112 < 138 still stalls a little; use PCA-like
     4-iteration task instead, which cannot exhaust the 8 units *)
  let short = { task with Task.rpt_num = 3 } in
  let s = Arch.Scheduler.run ~ideal_adc:false short in
  check int "4 iterations never stall" 0 s.Arch.Scheduler.adc_stalls

let qcheck_scheduler_closed_form =
  let compositions =
    Task.legal_compositions ()
    |> List.filter (fun (c1, _, _, _) ->
           Opcode.class1_is_analog c1)
    |> Array.of_list
  in
  QCheck.Test.make ~name:"scheduler completion equals closed form" ~count:200
    (QCheck.pair QCheck.small_nat (QCheck.int_range 0 127))
    (fun (ci, rpt_num) ->
      let class1, class2, class3, class4 =
        compositions.(ci mod Array.length compositions)
      in
      let task = { Task.nop with Task.class1; class2; class3; class4; rpt_num } in
      match Task.validate task with
      | Ok task -> Arch.Scheduler.matches_closed_form task
      | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Faults                                                              *)
(* ------------------------------------------------------------------ *)

let fok = function
  | Ok f -> f
  | Error e -> fail (Promise_core.Error.to_string e)

let test_faults_construction () =
  let f =
    Arch.Faults.(with_adc_offset (fok (with_stuck_lane none ~lane:3 ~code:127)) 0.05)
  in
  check bool "not none" false (Arch.Faults.is_none f);
  check (close 1e-9) "offset" 0.05 (Arch.Faults.adc_offset f);
  check int "one stuck lane" 1 (List.length (Arch.Faults.stuck_lanes f));
  check bool "none is none" true (Arch.Faults.is_none Arch.Faults.none)

let test_faults_stuck_overrides () =
  let f = fok Arch.Faults.(with_stuck_lane none ~lane:1 ~code:64) in
  let v = Arch.Faults.apply_stuck f [| 0.1; 0.2; 0.3 |] in
  check (close 1e-9) "lane 1 stuck at 0.5" 0.5 v.(1);
  check (close 1e-9) "lane 0 untouched" 0.1 v.(0)

let test_faults_bad_inputs () =
  (match Arch.Faults.(with_stuck_lane none ~lane:128 ~code:0) with
  | Error e ->
      check bool "typed rejection" true
        (e.Promise_core.Error.code = Promise_core.Error.Invalid_operand)
  | Ok _ -> fail "lane 128 must be rejected");
  match Arch.Faults.(with_stuck_lane none ~lane:0 ~code:300) with
  | Error e ->
      check bool "typed rejection" true
        (e.Promise_core.Error.code = Promise_core.Error.Invalid_operand)
  | Ok _ -> fail "code 300 must be rejected"

let fault_free_and_faulty ~faults =
  let machine = Arch.Machine.create (Arch.Machine.ideal_config ~banks:1) in
  Arch.Bank.set_faults (Arch.Machine.bank machine 0) faults;
  let plan = Arch.Layout.plan_exn ~vector_len:8 ~rows:1 () in
  Arch.Machine.load_weights machine ~group:0 ~base:0 ~plan
    [| [| 64; 64; 64; 64; 64; 64; 64; 64 |] |];
  Arch.Machine.load_x machine ~group:0 ~xreg_base:0 ~plan (Array.make 8 64);
  let launch =
    {
      Arch.Machine.task = dot_task ();
      bank_group = 0;
      active_lanes = 8;
      adc_gain = 2.0;
      th =
        {
          Arch.Th_unit.op = Opcode.C4_accumulate;
          acc_num = 0;
          threshold = 0.0;
          gain = 8.0;
          des = Opcode.Des_output_buffer;
        };
      dest_xreg = 7;
    }
  in
  match (Arch.Machine.execute_exn machine launch).Arch.Machine.emitted with
  | [ v ] -> v
  | _ -> fail "one value expected"

let test_fault_injection_stuck_lane () =
  let healthy = fault_free_and_faulty ~faults:Arch.Faults.none in
  let faulty =
    fault_free_and_faulty
      ~faults:(fok Arch.Faults.(with_stuck_lane none ~lane:0 ~code:(-128)))
  in
  (* one of eight 0.25 products replaced by -0.5 *. 0.5 *)
  check (close 0.02) "healthy sum" 2.0 healthy;
  check bool "stuck lane shifts the sum down" true (faulty < healthy -. 0.3)

let test_fault_injection_adc_offset () =
  let healthy = fault_free_and_faulty ~faults:Arch.Faults.none in
  let faulty =
    fault_free_and_faulty ~faults:Arch.Faults.(with_adc_offset none 0.1)
  in
  (* offset is divided by the gain (2), multiplied by TH gain (8) *)
  check (close 0.05) "offset propagates" (healthy +. (0.1 /. 2.0 *. 8.0)) faulty

let test_fault_injection_degrades_template_benchmark () =
  (* end to end: a stuck column on the query path lowers recognition *)
  let b = P.Benchmarks.template_l1 () in
  let healthy = (b.P.Benchmarks.evaluate ~swings:[ 7 ] ()).P.Benchmarks.promise_accuracy in
  check bool "healthy is accurate" true (healthy > 0.95);
  (* faults are injected via the machine, so run manually through the
     runtime on a faulty machine *)
  let machine =
    Arch.Machine.create
      { Arch.Machine.banks = 2; profile = Arch.Bank.Silicon; noise_seed = Some 1 }
  in
  for i = 0 to 1 do
    let bank = Arch.Machine.bank machine i in
    let f = ref Arch.Faults.none in
    for lane = 0 to 40 do
      f := fok (Arch.Faults.with_stuck_lane !f ~lane ~code:127)
    done;
    Arch.Bank.set_faults bank !f
  done;
  (* distances against heavily corrupted reads should shrink the gap
     between the right candidate and the rest; just assert the machine
     still runs and yields a decision *)
  let g = b.P.Benchmarks.graph in
  let rng = Rng.create 5 in
  let width = 16 and height = 16 in
  let faces = Ml.Dataset.Faces.identities rng ~width ~height ~n:64 in
  let q = Ml.Dataset.Faces.query rng ~width ~height faces ~identity:0 in
  let bind = P.Compiler.Runtime.bindings () in
  P.Compiler.Runtime.bind_matrix bind "W" faces;
  P.Compiler.Runtime.bind_vector bind "x" q;
  match P.Compiler.Runtime.run ~machine g bind with
  | Ok r -> (
      match P.Compiler.Runtime.final_output r with
      | Ok { P.Compiler.Runtime.decision = Some _; _ } -> ()
      | _ -> fail "decision expected even under faults")
  | Error e -> fail (Promise_core.Error.to_string e)

(* ------------------------------------------------------------------ *)
(* ISA extensions (§3.3)                                               *)
(* ------------------------------------------------------------------ *)

let test_extensions_inflate_tp () =
  let open Extensions in
  check int "base worst case is mult" 14 (worst_case_tp_with []);
  check int "writeback raises it" 18 (worst_case_tp_with [ Elementwise_writeback ]);
  check int "both take the max" 18 (worst_case_tp_with all);
  check (close 1e-9) "L1 kernel pays 18/7"
    (18.0 /. 7.0)
    (tp_inflation [ Elementwise_writeback ] ~task_tp:7);
  check (close 1e-9) "never below 1" 1.0 (tp_inflation [] ~task_tp:14)

let test_extensions_metadata () =
  List.iter
    (fun e ->
      check bool "positive delay" true (Extensions.delay e > 0);
      check bool "positive energy" true (Extensions.energy_pj e > 0.0);
      check bool "has a name" true (String.length (Extensions.name e) > 0))
    Extensions.all

(* ------------------------------------------------------------------ *)
(* k-means                                                             *)
(* ------------------------------------------------------------------ *)

let blobs rng ~k ~n ~dims ~sigma =
  let centers =
    Array.init k (fun _ ->
        Array.init dims (fun _ -> Rng.uniform rng ~lo:(-0.7) ~hi:0.7))
  in
  ( centers,
    Array.init n (fun i ->
        Array.map
          (fun v -> v +. Rng.gaussian_scaled rng ~mu:0.0 ~sigma)
          centers.(i mod k)) )

let test_kmeans_recovers_blobs () =
  let rng = Rng.create 31 in
  let centers, data = blobs rng ~k:3 ~n:90 ~dims:8 ~sigma:0.05 in
  let m = Ml.Kmeans.fit rng ~data ~k:3 ~iterations:10 in
  (* every true center has a centroid within 3 sigma *)
  Array.iter
    (fun c ->
      let nearest = m.Ml.Kmeans.centroids.(Ml.Kmeans.assign m c) in
      check bool "center recovered" true
        (Ml.Linalg.l2_distance nearest c < 0.1))
    centers

let test_kmeans_update_means () =
  let data = [| [| 0.0 |]; [| 1.0 |]; [| 4.0 |]; [| 6.0 |] |] in
  let centroids, empty =
    Ml.Kmeans.update ~k:2 ~data ~assignments:[| 0; 0; 1; 1 |]
  in
  check (close 1e-9) "cluster 0 mean" 0.5 centroids.(0).(0);
  check (close 1e-9) "cluster 1 mean" 5.0 centroids.(1).(0);
  check int "no empty clusters" 0 (List.length empty)

let test_kmeans_empty_cluster_reported () =
  let data = [| [| 0.0 |]; [| 1.0 |] |] in
  let _, empty = Ml.Kmeans.update ~k:3 ~data ~assignments:[| 0; 0 |] in
  check (Alcotest.list int) "clusters 1,2 empty" [ 1; 2 ] empty

let test_kmeans_inertia_decreases () =
  let rng = Rng.create 32 in
  let _, data = blobs rng ~k:4 ~n:120 ~dims:6 ~sigma:0.1 in
  let m0 = Ml.Kmeans.fit rng ~data ~k:4 ~iterations:0 in
  let m5 = Ml.Kmeans.fit (Rng.create 32) ~data:(snd (blobs (Rng.create 32) ~k:4 ~n:120 ~dims:6 ~sigma:0.1)) ~k:4 ~iterations:5 in
  check bool "iterations reduce inertia" true
    (Ml.Kmeans.inertia m5 data <= Ml.Kmeans.inertia m0 data +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Random forest                                                       *)
(* ------------------------------------------------------------------ *)

let test_forest_learns () =
  let rng = Rng.create 33 in
  let data = Ml.Dataset.Digits.generate rng ~width:8 ~height:8 ~n:300 in
  let train, test = Ml.Dataset.train_test_split data ~test_fraction:0.2 in
  let f =
    Ml.Random_forest.train rng ~data:train ~n_trees:15 ~max_depth:6
      ~feature_fraction:0.4
  in
  check int "15 trees" 15 (Ml.Random_forest.n_trees f);
  check bool "nodes exist" true (Ml.Random_forest.node_count f > 15);
  check bool "test accuracy > 0.6" true (Ml.Random_forest.accuracy f test > 0.6);
  check bool "train accuracy high" true (Ml.Random_forest.accuracy f train > 0.85)

let test_forest_bad_inputs () =
  let rng = Rng.create 34 in
  (match
     Ml.Random_forest.train rng ~data:[||] ~n_trees:1 ~max_depth:2
       ~feature_fraction:0.5
   with
  | exception Invalid_argument _ -> ()
  | _ -> fail "empty data must be rejected");
  let data = Ml.Dataset.Digits.generate rng ~width:4 ~height:4 ~n:10 in
  match
    Ml.Random_forest.train rng ~data ~n_trees:0 ~max_depth:2
      ~feature_fraction:0.5
  with
  | exception Invalid_argument _ -> ()
  | _ -> fail "zero trees must be rejected"

let suite =
  [
    ("scheduler matches closed form", `Quick, test_scheduler_matches_closed_form);
    ("scheduler event structure", `Quick, test_scheduler_event_structure);
    ("scheduler ideal interval = TP", `Quick, test_scheduler_ideal_interval_is_tp);
    ("scheduler unit-accurate ADC stalls", `Quick, test_scheduler_unit_accurate_stalls);
    ("scheduler short task never stalls", `Quick, test_scheduler_slow_pipeline_never_stalls);
    ("faults construction", `Quick, test_faults_construction);
    ("faults stuck override", `Quick, test_faults_stuck_overrides);
    ("faults bad inputs", `Quick, test_faults_bad_inputs);
    ("fault injection: stuck lane", `Quick, test_fault_injection_stuck_lane);
    ("fault injection: ADC offset", `Quick, test_fault_injection_adc_offset);
    ("fault injection: end to end", `Slow, test_fault_injection_degrades_template_benchmark);
    ("extensions inflate TP (§3.3)", `Quick, test_extensions_inflate_tp);
    ("extensions metadata", `Quick, test_extensions_metadata);
    ("kmeans recovers blobs", `Quick, test_kmeans_recovers_blobs);
    ("kmeans update means", `Quick, test_kmeans_update_means);
    ("kmeans empty clusters", `Quick, test_kmeans_empty_cluster_reported);
    ("kmeans inertia decreases", `Quick, test_kmeans_inertia_decreases);
    ("random forest learns", `Slow, test_forest_learns);
    ("random forest bad inputs", `Quick, test_forest_bad_inputs);
    QCheck_alcotest.to_alcotest qcheck_scheduler_closed_form;
  ]

let () = Alcotest.run "promise-extensions" [ ("extensions", suite) ]
