(* Differential tests for the compiled iteration kernels: the fused
   datapath must be bit-identical to the scalar reference path on every
   task shape, profile, fault set, lane mask and launch shape (QCheck),
   the fused steady state must not allocate on the minor heap, the
   8-bit quantizer must be the one shared function everywhere, and the
   degraded-ADC stall memo must actually memoize. *)

module P = Promise
module Arch = P.Arch
module Machine = Arch.Machine
module Kernel = Arch.Kernel
module Faults = Arch.Faults
module Rng = P.Analog.Rng
module Task = P.Isa.Task
module Op = P.Isa.Opcode
module Op_param = P.Isa.Op_param
module E = P.Error

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let fok = function Ok v -> v | Error e -> Alcotest.fail (E.to_string e)

(* ------------------------------------------------------------------ *)
(* QCheck: fused == reference, bit for bit                             *)
(* ------------------------------------------------------------------ *)

type case = {
  seed : int;
  noisy : bool;
  profile : int;  (** 0 Ideal, 1 Silicon, 2 Custom lut, 3 Custom leakage *)
  banks_log : int;  (** machine has [2^banks_log] banks *)
  mb : int;  (** MULTI_BANK; [mb <= banks_log] *)
  rpt : int;
  shape : int;  (** task shape, includes a non-fusable one *)
  fault : int;  (** 0..5 *)
  masked : bool;
  active_lanes : int;
  gain_log : int;  (** ADC gain [2^gain_log] *)
  swing : int;
  x_prd : int;
}

let gen_case st =
  let open QCheck.Gen in
  let banks_log = int_range 0 3 st in
  {
    seed = int_bound 10_000 st;
    noisy = bool st;
    profile = int_bound 3 st;
    banks_log;
    mb = int_range 0 banks_log st;
    rpt = int_bound 127 st;
    shape = int_bound 6 st;
    fault = int_bound 5 st;
    masked = bool st;
    active_lanes = int_range 1 128 st;
    gain_log = int_bound 2 st;
    swing = int_bound 7 st;
    x_prd = int_bound 3 st;
  }

let print_case c =
  Printf.sprintf
    "{seed=%d; noisy=%b; profile=%d; banks=%d; mb=%d; rpt=%d; shape=%d; \
     fault=%d; masked=%b; lanes=%d; gain=%d; swing=%d; x_prd=%d}"
    c.seed c.noisy c.profile (1 lsl c.banks_log) c.mb c.rpt c.shape c.fault
    c.masked c.active_lanes (1 lsl c.gain_log) c.swing c.x_prd

let task_of c =
  let op_param =
    {
      Op_param.default with
      swing = c.swing;
      w_addr = c.seed mod 64;
      x_addr1 = 1;
      x_addr2 = 2;
      x_prd = c.x_prd;
    }
  in
  let mk ~class1 ~asd ~avd ~class3 ~class4 =
    Task.make ~op_param ~rpt_num:c.rpt ~multi_bank:c.mb ~class1
      ~class2:{ Op.asd; avd } ~class3 ~class4 ()
  in
  match c.shape with
  | 0 ->
      mk ~class1:Op.C1_aread ~asd:Op.Asd_sign_mult ~avd:true ~class3:Op.C3_adc
        ~class4:Op.C4_accumulate
  | 1 ->
      mk ~class1:Op.C1_aread ~asd:Op.Asd_unsign_mult ~avd:true
        ~class3:Op.C3_adc ~class4:Op.C4_max
  | 2 ->
      mk ~class1:Op.C1_asubt ~asd:Op.Asd_absolute ~avd:true ~class3:Op.C3_adc
        ~class4:Op.C4_accumulate
  | 3 ->
      mk ~class1:Op.C1_aadd ~asd:Op.Asd_square ~avd:true ~class3:Op.C3_adc
        ~class4:Op.C4_min
  | 4 ->
      mk ~class1:Op.C1_aread ~asd:Op.Asd_compare ~avd:true ~class3:Op.C3_adc
        ~class4:Op.C4_accumulate
  | 5 ->
      mk ~class1:Op.C1_asubt ~asd:Op.Asd_none ~avd:true ~class3:Op.C3_adc
        ~class4:Op.C4_accumulate
  | _ ->
      (* aVD off: not the fusable shape — exercises the passthrough *)
      mk ~class1:Op.C1_aread ~asd:Op.Asd_none ~avd:false ~class3:Op.C3_none
        ~class4:Op.C4_accumulate

let faults_of c =
  match c.fault with
  | 0 -> Faults.none
  | 1 ->
      fok
        (Faults.with_dead_lane
           (fok (Faults.with_stuck_lane Faults.none ~lane:7 ~code:42))
           ~lane:3)
  | 2 -> fok (Faults.with_xreg_flips Faults.none ~seed:(c.seed + 1) ~rate:0.3)
  | 3 ->
      fok
        (Faults.with_swing_drift (Faults.with_adc_offset Faults.none 0.05) 2)
  | 4 -> fok (Faults.with_leakage_mult Faults.none 3.0)
  | _ -> Faults.with_dead_bank Faults.none

(* Two machines built from the same case are identical by construction:
   same seed, same split noise streams, same data image, same faults. *)
let machine_of c =
  let profile =
    match c.profile with
    | 0 -> Arch.Bank.Ideal
    | 1 -> Arch.Bank.Silicon
    | 2 -> Arch.Bank.Custom { lut = true; leakage = false }
    | _ -> Arch.Bank.Custom { lut = false; leakage = true }
  in
  let m =
    Machine.create
      {
        Machine.banks = 1 lsl c.banks_log;
        profile;
        noise_seed = (if c.noisy then Some c.seed else None);
      }
  in
  let rng = Rng.create ((c.seed * 13) + 7) in
  let codes () =
    Array.init Arch.Params.lanes (fun _ -> Rng.int rng 255 - 128)
  in
  for bi = 0 to Machine.n_banks m - 1 do
    let bank = Machine.bank m bi in
    for row = 0 to 63 do
      Arch.Bitcell_array.write (Arch.Bank.array bank) ~word_row:row (codes ())
    done;
    for i = 0 to Arch.Params.xreg_depth - 1 do
      Arch.Xreg.load (Arch.Bank.xreg bank) ~index:i (codes ())
    done
  done;
  Arch.Bank.set_faults (Machine.bank m 0) (faults_of c);
  m

let launch_of c task =
  {
    (Machine.default_launch task) with
    Machine.active_lanes = c.active_lanes;
    adc_gain = float_of_int (1 lsl c.gain_log);
  }

let lane_mask_of c =
  if c.masked then Some (Array.init Arch.Params.lanes (fun i -> i mod 3 <> 0))
  else None

let same_result (a : Machine.result) (b : Machine.result) =
  a.emitted = b.emitted && a.acc_out = b.acc_out && a.xreg_out = b.xreg_out
  && a.write_buffer = b.write_buffer
  && a.argext = b.argext && a.digital = b.digital

(* Each mode executes the launch twice on its own machine: the second
   run replays from advanced RNG streams and, in fused mode, through
   the now-populated kernel cache. *)
let run_twice c mode =
  let task = task_of c in
  let m = machine_of c in
  let launch = launch_of c task in
  let lane_mask = lane_mask_of c in
  let exec () =
    match Machine.execute ?lane_mask ~kernel_mode:mode m launch with
    | Ok r -> Ok r
    | Error e -> Error (E.to_string e)
  in
  (exec (), exec ())

let qcheck_fused_eq_reference =
  QCheck.Test.make ~name:"fused == reference bit-for-bit" ~count:60
    (QCheck.make ~print:print_case gen_case) (fun c ->
      let r1, r2 = run_twice c Machine.Reference in
      let f1, f2 = run_twice c Machine.Fused in
      match (r1, f1, r2, f2) with
      | Ok r1, Ok f1, Ok r2, Ok f2 -> same_result r1 f1 && same_result r2 f2
      | Error e1, Error e2, _, _ -> e1 = e2
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Kernel-cache invalidation                                           *)
(* ------------------------------------------------------------------ *)

(* [Bank.set_faults] between two executes must recompile the kernel:
   run the same schedule on a reference machine and a fused machine,
   changing faults mid-stream, and require identical outputs. *)
let test_cache_invalidation () =
  let c =
    {
      seed = 5;
      noisy = true;
      profile = 1;
      banks_log = 1;
      mb = 1;
      rpt = 15;
      shape = 0;
      fault = 0;
      masked = false;
      active_lanes = 128;
      gain_log = 0;
      swing = 7;
      x_prd = 1;
    }
  in
  let task = task_of c in
  let launch = launch_of c task in
  let newly_stuck = fok (Faults.with_stuck_lane Faults.none ~lane:11 ~code:(-7)) in
  let run mode =
    let m = machine_of c in
    let a = Machine.execute_exn ~kernel_mode:mode m launch in
    Arch.Bank.set_faults (Machine.bank m 0) newly_stuck;
    let b = Machine.execute_exn ~kernel_mode:mode m launch in
    (* same faults re-applied: equal set, fresh transient stream *)
    Arch.Bank.set_faults (Machine.bank m 0) newly_stuck;
    let c' = Machine.execute_exn ~kernel_mode:mode m launch in
    (a, b, c')
  in
  let ra, rb, rc = run Machine.Reference in
  let fa, fb, fc = run Machine.Fused in
  check bool "before fault change" true (same_result ra fa);
  check bool "after fault change" true (same_result rb fb);
  check bool "after fault re-set" true (same_result rc fc)

(* ------------------------------------------------------------------ *)
(* Zero-allocation steady state                                        *)
(* ------------------------------------------------------------------ *)

let test_zero_alloc () =
  let m =
    Machine.create
      { Machine.banks = 1; profile = Arch.Bank.Silicon; noise_seed = Some 9 }
  in
  let bank = Machine.bank m 0 in
  let rng = Rng.create 31 in
  for row = 0 to 63 do
    Arch.Bitcell_array.write (Arch.Bank.array bank) ~word_row:row
      (Array.init Arch.Params.lanes (fun _ -> Rng.int rng 255 - 128))
  done;
  for i = 0 to Arch.Params.xreg_depth - 1 do
    Arch.Xreg.load (Arch.Bank.xreg bank) ~index:i
      (Array.init Arch.Params.lanes (fun _ -> Rng.int rng 255 - 128))
  done;
  let task =
    Task.make ~rpt_num:127 ~class1:Op.C1_aread
      ~class2:{ Op.asd = Op.Asd_sign_mult; avd = true }
      ~class3:Op.C3_adc ~class4:Op.C4_accumulate ()
  in
  let k = Kernel.specialize bank ~task ~active_lanes:128 ~adc_gain:1.0 in
  check bool "kernel is fused" true (Kernel.is_fused k);
  let dst = Array.make 1 0.0 in
  for i = 0 to 255 do
    Kernel.sample_into k ~iteration:i ~dst ~at:0
  done;
  let iters = 10_000 in
  let minor0 = Gc.minor_words () in
  for i = 0 to iters - 1 do
    Kernel.sample_into k ~iteration:i ~dst ~at:0
  done;
  let delta = Gc.minor_words () -. minor0 in
  (* noise enabled: the whole lane vector draws through [gaussian_fill];
     a tiny slack tolerates instrumentation, not per-iteration boxing *)
  if delta > 100.0 then
    Alcotest.failf "fused steady state allocated %.0f minor words in %d iters"
      delta iters

(* ------------------------------------------------------------------ *)
(* One shared 8-bit quantizer                                          *)
(* ------------------------------------------------------------------ *)

let test_quantizer_shared () =
  check int "bits" 8 P.Ml.Fixed_point.bits;
  for i = -160 to 160 do
    let v = float_of_int i /. 100.0 in
    check int
      (Printf.sprintf "quantize %.2f" v)
      (P.Quant.quantize8 v)
      (P.Ml.Fixed_point.quantize v)
  done;
  for code = -128 to 127 do
    check (Alcotest.float 0.0)
      (Printf.sprintf "dequantize %d" code)
      (P.Quant.dequantize8 code)
      (P.Ml.Fixed_point.dequantize code);
    (* write→aread round trip through the bit-cell array agrees too *)
    check int
      (Printf.sprintf "round trip %d" code)
      code
      (P.Quant.quantize8 (P.Quant.dequantize8 code))
  done

(* ------------------------------------------------------------------ *)
(* The degraded-ADC stall memo                                         *)
(* ------------------------------------------------------------------ *)

let test_stall_memo () =
  Machine.For_tests.reset_stall_memo ();
  let m =
    Machine.create
      { Machine.banks = 1; profile = Arch.Bank.Ideal; noise_seed = None }
  in
  Arch.Bank.set_faults (Machine.bank m 0)
    (fok (Faults.with_dead_adc_units Faults.none 6));
  let task =
    Task.make ~rpt_num:63 ~class1:Op.C1_aread
      ~class2:{ Op.asd = Op.Asd_absolute; avd = true }
      ~class3:Op.C3_adc ~class4:Op.C4_accumulate ()
  in
  let launch = Machine.default_launch task in
  let r1 = Machine.execute_exn m launch in
  let hits1, misses1 = Machine.For_tests.stall_memo_stats () in
  check int "first run misses once" 1 misses1;
  check int "first run has no hit" 0 hits1;
  let r2 = Machine.execute_exn m launch in
  let hits2, misses2 = Machine.For_tests.stall_memo_stats () in
  check int "replay hits the memo" 1 hits2;
  check int "replay adds no miss" 1 misses2;
  check int "stall accounting identical" r1.Machine.record.Arch.Trace.stall_cycles
    r2.Machine.record.Arch.Trace.stall_cycles;
  check bool "stalls actually happen" true
    (r1.Machine.record.Arch.Trace.stall_cycles > 0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "kernels"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest qcheck_fused_eq_reference;
          Alcotest.test_case "set_faults invalidates the kernel cache" `Quick
            test_cache_invalidation;
        ] );
      ( "allocation",
        [ Alcotest.test_case "fused steady state is zero-alloc" `Quick
            test_zero_alloc ] );
      ( "quantizer",
        [ Alcotest.test_case "one quantizer everywhere" `Quick
            test_quantizer_shared ] );
      ( "stall memo",
        [ Alcotest.test_case "scheduler pair memoized" `Quick test_stall_memo ]
      );
    ]
