(* Differential tests for the batch-dimension execution engine: N
   batched decisions must be bit-identical to N sequential
   single-decision runs — against both the fused path and the scalar
   reference oracle — across task shapes, fault profiles, swing/launch
   configurations and batch sizes (including N = 1, pool width, and
   ragged chained batches). Plus: the zero-allocation serving path's Gc
   property, the pipelined-timing closed form (Scheduler.run_batch),
   launch-shape-keyed batch plans in Pipeline.Cache, and typed
   validation of --batch / PROMISE_BATCH. *)

module P = Promise
module Arch = P.Arch
module Machine = Arch.Machine
module Scheduler = Arch.Scheduler
module Faults = Arch.Faults
module Rng = P.Analog.Rng
module Task = P.Isa.Task
module Op = P.Isa.Opcode
module Op_param = P.Isa.Op_param
module Program = P.Isa.Program
module Dsl = P.Ir.Dsl
module Rt = P.Compiler.Runtime
module Pipeline = P.Compiler.Pipeline
module Cache = Pipeline.Cache
module Pool = P.Pool
module E = P.Error

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let fok = function Ok v -> v | Error e -> Alcotest.fail (E.to_string e)

(* ------------------------------------------------------------------ *)
(* QCheck: batched == N sequential singles, fused AND reference        *)
(* ------------------------------------------------------------------ *)

type case = {
  seed : int;
  noisy : bool;
  profile : int;  (** 0 Ideal, 1 Silicon, 2 Custom lut, 3 Custom leakage *)
  banks_log : int;
  mb : int;
  rpt : int;
  shape : int;  (** includes the non-fusable passthrough shape *)
  fault : int;
  masked : bool;
  active_lanes : int;
  gain_log : int;
  swing : int;
  x_prd : int;
  batch : int;
}

let gen_case st =
  let open QCheck.Gen in
  let banks_log = int_range 0 3 st in
  {
    seed = int_bound 10_000 st;
    noisy = bool st;
    profile = int_bound 3 st;
    banks_log;
    mb = int_range 0 banks_log st;
    rpt = int_bound 127 st;
    shape = int_bound 6 st;
    fault = int_bound 5 st;
    masked = bool st;
    active_lanes = int_range 1 128 st;
    gain_log = int_bound 2 st;
    swing = int_bound 7 st;
    x_prd = int_bound 3 st;
    batch = oneofl [ 1; 2; 3; 4; 8; 16; 33 ] st;
  }

let print_case c =
  Printf.sprintf
    "{seed=%d; noisy=%b; profile=%d; banks=%d; mb=%d; rpt=%d; shape=%d; \
     fault=%d; masked=%b; lanes=%d; gain=%d; swing=%d; x_prd=%d; batch=%d}"
    c.seed c.noisy c.profile (1 lsl c.banks_log) c.mb c.rpt c.shape c.fault
    c.masked c.active_lanes (1 lsl c.gain_log) c.swing c.x_prd c.batch

let task_of c =
  let op_param =
    {
      Op_param.default with
      swing = c.swing;
      w_addr = c.seed mod 64;
      x_addr1 = 1;
      x_addr2 = 2;
      x_prd = c.x_prd;
    }
  in
  let mk ~class1 ~asd ~avd ~class3 ~class4 =
    Task.make ~op_param ~rpt_num:c.rpt ~multi_bank:c.mb ~class1
      ~class2:{ Op.asd; avd } ~class3 ~class4 ()
  in
  match c.shape with
  | 0 ->
      mk ~class1:Op.C1_aread ~asd:Op.Asd_sign_mult ~avd:true ~class3:Op.C3_adc
        ~class4:Op.C4_accumulate
  | 1 ->
      mk ~class1:Op.C1_aread ~asd:Op.Asd_unsign_mult ~avd:true
        ~class3:Op.C3_adc ~class4:Op.C4_max
  | 2 ->
      mk ~class1:Op.C1_asubt ~asd:Op.Asd_absolute ~avd:true ~class3:Op.C3_adc
        ~class4:Op.C4_accumulate
  | 3 ->
      mk ~class1:Op.C1_aadd ~asd:Op.Asd_square ~avd:true ~class3:Op.C3_adc
        ~class4:Op.C4_min
  | 4 ->
      mk ~class1:Op.C1_aread ~asd:Op.Asd_compare ~avd:true ~class3:Op.C3_adc
        ~class4:Op.C4_accumulate
  | 5 ->
      mk ~class1:Op.C1_asubt ~asd:Op.Asd_none ~avd:true ~class3:Op.C3_adc
        ~class4:Op.C4_accumulate
  | _ ->
      (* aVD off: not fusable — the batch engine must fall back to
         sequential replay and still be bit-identical *)
      mk ~class1:Op.C1_aread ~asd:Op.Asd_none ~avd:false ~class3:Op.C3_none
        ~class4:Op.C4_accumulate

let faults_of c =
  match c.fault with
  | 0 -> Faults.none
  | 1 ->
      fok
        (Faults.with_dead_lane
           (fok (Faults.with_stuck_lane Faults.none ~lane:7 ~code:42))
           ~lane:3)
  | 2 -> fok (Faults.with_xreg_flips Faults.none ~seed:(c.seed + 1) ~rate:0.3)
  | 3 ->
      fok
        (Faults.with_swing_drift (Faults.with_adc_offset Faults.none 0.05) 2)
  | 4 -> fok (Faults.with_leakage_mult Faults.none 3.0)
  | _ -> Faults.with_dead_bank Faults.none

(* Two machines built from the same case are identical by construction:
   same seed, same split noise streams, same data image, same faults. *)
let machine_of c =
  let profile =
    match c.profile with
    | 0 -> Arch.Bank.Ideal
    | 1 -> Arch.Bank.Silicon
    | 2 -> Arch.Bank.Custom { lut = true; leakage = false }
    | _ -> Arch.Bank.Custom { lut = false; leakage = true }
  in
  let m =
    Machine.create
      {
        Machine.banks = 1 lsl c.banks_log;
        profile;
        noise_seed = (if c.noisy then Some c.seed else None);
      }
  in
  let rng = Rng.create ((c.seed * 13) + 7) in
  let codes () =
    Array.init Arch.Params.lanes (fun _ -> Rng.int rng 255 - 128)
  in
  for bi = 0 to Machine.n_banks m - 1 do
    let bank = Machine.bank m bi in
    for row = 0 to 63 do
      Arch.Bitcell_array.write (Arch.Bank.array bank) ~word_row:row (codes ())
    done;
    for i = 0 to Arch.Params.xreg_depth - 1 do
      Arch.Xreg.load (Arch.Bank.xreg bank) ~index:i (codes ())
    done
  done;
  Arch.Bank.set_faults (Machine.bank m 0) (faults_of c);
  m

let launch_of c task =
  {
    (Machine.default_launch task) with
    Machine.active_lanes = c.active_lanes;
    adc_gain = float_of_int (1 lsl c.gain_log);
  }

let lane_mask_of c =
  if c.masked then Some (Array.init Arch.Params.lanes (fun i -> i mod 3 <> 0))
  else None

let same_result (a : Machine.result) (b : Machine.result) =
  a.emitted = b.emitted && a.acc_out = b.acc_out && a.xreg_out = b.xreg_out
  && a.write_buffer = b.write_buffer
  && a.argext = b.argext && a.digital = b.digital

(* [batch] sequential executes on a fresh twin machine. *)
let run_singles c mode =
  let m = machine_of c in
  let launch = launch_of c (task_of c) in
  let lane_mask = lane_mask_of c in
  let rec go n acc =
    if n = 0 then Ok (Array.of_list (List.rev acc))
    else
      match Machine.execute ?lane_mask ~kernel_mode:mode m launch with
      | Ok r -> go (n - 1) (r :: acc)
      | Error e -> Error (E.to_string e)
  in
  go c.batch []

let run_batched c mode =
  let m = machine_of c in
  let launch = launch_of c (task_of c) in
  let lane_mask = lane_mask_of c in
  match Machine.execute_batch ?lane_mask ~kernel_mode:mode m launch
          ~batch:c.batch
  with
  | Ok rs -> Ok rs
  | Error e -> Error (E.to_string e)

let same_results a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> same_result x y) a b

let qcheck_batched_eq_singles =
  QCheck.Test.make ~name:"execute_batch == N sequential executes" ~count:40
    (QCheck.make ~print:print_case gen_case) (fun c ->
      let ref_singles = run_singles c Machine.Reference in
      let fus_singles = run_singles c Machine.Fused in
      let batched = run_batched c Machine.Fused in
      match (ref_singles, fus_singles, batched) with
      | Ok rs, Ok fs, Ok bs -> same_results rs fs && same_results fs bs
      | Error e1, Error e2, Error e3 -> e1 = e2 && e2 = e3
      | _ -> false)

(* RNG stream continuity: chunked ragged batches (5 then 3) on ONE
   machine equal one batch of 8 on a twin, equal 8 sequential singles
   on a third — against both kernel modes. *)
let test_ragged_chained () =
  List.iter
    (fun shape ->
      let c =
        {
          seed = 2024 + shape;
          noisy = true;
          profile = 1;
          banks_log = 1;
          mb = 1;
          rpt = 31;
          shape;
          fault = 0;
          masked = false;
          active_lanes = 128;
          gain_log = 1;
          swing = 7;
          x_prd = 2;
          batch = 8;
        }
      in
      let launch = launch_of c (task_of c) in
      let chunked =
        (* explicit lets: argument positions would evaluate right to
           left, running the 3-chunk before the 5-chunk *)
        let m = machine_of c in
        let first = fok (Machine.execute_batch m launch ~batch:5) in
        let rest = fok (Machine.execute_batch m launch ~batch:3) in
        Array.append first rest
      in
      let whole = fok (Machine.execute_batch (machine_of c) launch ~batch:8) in
      let singles =
        match run_singles { c with batch = 8 } Machine.Reference with
        | Ok rs -> rs
        | Error e -> Alcotest.fail e
      in
      check bool
        (Printf.sprintf "shape %d: 5+3 chunks == one batch of 8" shape)
        true
        (same_results chunked whole);
      check bool
        (Printf.sprintf "shape %d: batch of 8 == 8 reference singles" shape)
        true
        (same_results whole singles))
    [ 0; 1; 2; 3 ]

(* Pool fan-out across the banks of the group is bit-identical. *)
let test_batched_pooled () =
  let c =
    {
      seed = 77;
      noisy = true;
      profile = 1;
      banks_log = 2;
      mb = 2;
      rpt = 63;
      shape = 2;
      fault = 0;
      masked = false;
      active_lanes = 128;
      gain_log = 0;
      swing = 7;
      x_prd = 1;
      batch = 4;
    }
  in
  let launch = launch_of c (task_of c) in
  let seq = fok (Machine.execute_batch (machine_of c) launch ~batch:4) in
  Pool.with_pool ~jobs:3 (fun pool ->
      let par =
        fok (Machine.execute_batch ~pool (machine_of c) launch ~batch:4)
      in
      check bool "pooled batch == sequential batch" true
        (same_results seq par))

(* ------------------------------------------------------------------ *)
(* The zero-allocation serving path                                     *)
(* ------------------------------------------------------------------ *)

let serving_case shape =
  {
    seed = 501 + shape;
    noisy = true;
    profile = 1;
    banks_log = 0;
    mb = 0;
    rpt = 127;
    shape;
    fault = 0;
    masked = false;
    active_lanes = 128;
    gain_log = 0;
    swing = 7;
    x_prd = 1;
    batch = 8;
  }

let ba_create n = Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout n

(* out.{d*epd + g} is bitwise the emission stream of the d-th
   sequential execute (emitted for accumulate/threshold, the extremum
   value for max/min). *)
let test_into_bitwise () =
  List.iter
    (fun shape ->
      let c = serving_case shape in
      let task = task_of c in
      let launch = launch_of c task in
      let epd =
        Machine.emissions_per_decision task ~th:launch.Machine.th
      in
      let out = ba_create (c.batch * epd) in
      let n =
        fok
          (Machine.execute_batch_into (machine_of c) launch ~batch:c.batch
             ~out)
      in
      check int (Printf.sprintf "shape %d: returned epd" shape) epd n;
      let m = machine_of c in
      for d = 0 to c.batch - 1 do
        let r = Machine.execute_exn ~kernel_mode:Machine.Fused m launch in
        let want =
          match r.Machine.argext with
          | Some (_, v) -> [ v ]
          | None -> r.Machine.emitted @ r.Machine.acc_out
        in
        check int
          (Printf.sprintf "shape %d decision %d: emission count" shape d)
          epd (List.length want);
        List.iteri
          (fun g v ->
            if
              Int64.bits_of_float out.{(d * epd) + g}
              <> Int64.bits_of_float v
            then
              Alcotest.failf "shape %d decision %d emission %d: %h <> %h"
                shape d g
                out.{(d * epd) + g}
                v)
          want
      done)
    [ 0; 1; 3 ]

let test_into_zero_alloc () =
  let c = serving_case 0 in
  let task = task_of c in
  let launch = launch_of c task in
  let m = machine_of c in
  let batch = 512 in
  let epd = Machine.emissions_per_decision task ~th:launch.Machine.th in
  let out = ba_create (batch * epd) in
  (* warmup compiles the kernels and grows the noise plane / tables *)
  ignore (fok (Machine.execute_batch_into m launch ~batch ~out));
  let minor0 = Gc.minor_words () in
  ignore (fok (Machine.execute_batch_into m launch ~batch ~out));
  let delta = Gc.minor_words () -. minor0 in
  let per_task = delta /. float_of_int batch in
  (* the per-decision loop is allocation-free; the per-call fixed cost
     (one trace record, a few boxes) must amortize below 1 word/task *)
  if per_task >= 1.0 then
    Alcotest.failf
      "batched serving allocated %.2f minor words/task (%.0f words for %d \
       decisions)"
      per_task delta batch

(* The batch trace record carries the pipelined timing closed form. *)
let test_batch_trace_timing () =
  let c = serving_case 0 in
  let task = task_of c in
  let launch = launch_of c task in
  let m = machine_of c in
  let batch = 16 in
  let epd = Machine.emissions_per_decision task ~th:launch.Machine.th in
  let out = ba_create (batch * epd) in
  ignore (fok (Machine.execute_batch_into m launch ~batch ~out));
  match (Machine.trace m).Arch.Trace.records with
  | record :: _ ->
      let iters = Task.iterations task in
      let tp = Arch.Timing.task_tp task in
      check int "batched cycles = fill + (N-1) * iters * TP"
        (Arch.Timing.task_cycles task + ((batch - 1) * iters * tp))
        record.Arch.Trace.cycles;
      check int "iterations cover the whole batch" (batch * iters)
        record.Arch.Trace.iterations
  | [] -> Alcotest.fail "no trace record"

(* ------------------------------------------------------------------ *)
(* Discrete-event validation of the closed form                         *)
(* ------------------------------------------------------------------ *)

let test_scheduler_closed_form () =
  List.iter
    (fun shape ->
      List.iter
        (fun batch ->
          let c = { (serving_case shape) with rpt = 19 } in
          let task = task_of c in
          check bool
            (Printf.sprintf "shape %d batch %d matches closed form" shape
               batch)
            true
            (Scheduler.batch_matches_closed_form task ~batch))
        [ 1; 2; 7; 16 ])
    [ 0; 1; 2; 3; 4; 5 ];
  (match Scheduler.run_batch (task_of (serving_case 0)) ~batch:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Scheduler.run_batch accepted batch 0");
  (* batch 1 degenerates to the single-decision schedule *)
  let task = task_of (serving_case 2) in
  check int "batch 1 == run"
    (Scheduler.run task).Scheduler.completion
    (Scheduler.run_batch task ~batch:1).Scheduler.completion

(* ------------------------------------------------------------------ *)
(* Program- and runtime-level batching                                  *)
(* ------------------------------------------------------------------ *)

let test_run_program_batch () =
  let c = { (serving_case 0) with banks_log = 1; mb = 0 } in
  let program =
    Program.make ~name:"two"
      [ task_of c; task_of { c with shape = 2; rpt = 15 } ]
  in
  let batch = 5 in
  let batched =
    fok (Machine.run_program_batch (machine_of c) program ~batch)
  in
  let m = machine_of c in
  let replayed =
    Array.init batch (fun _ -> fok (Machine.run_program m program))
  in
  check int "one result list per decision" batch (Array.length batched);
  Array.iteri
    (fun d rs ->
      check bool
        (Printf.sprintf "decision %d: multi-task program identical" d)
        true
        (List.for_all2 same_result rs replayed.(d)))
    batched

let bt_kernel =
  Dsl.kernel ~name:"bt"
    ~decls:
      [
        Dsl.matrix "W" ~rows:8 ~cols:64;
        Dsl.vector "x" ~len:64;
        Dsl.out_vector "out" ~len:8;
      ]
    [ Dsl.for_store ~iterations:8 ~out:"out" (Dsl.dot "W" "x") ]

let bt_bindings () =
  let rng = Rng.create 8101 in
  let w =
    Array.init 8 (fun _ ->
        Array.init 64 (fun _ -> Rng.uniform rng ~lo:(-0.9) ~hi:0.9))
  in
  let x = Array.init 64 (fun _ -> Rng.uniform rng ~lo:(-0.9) ~hi:0.9) in
  let b = Rt.bindings () in
  Rt.bind_matrix b "W" w;
  Rt.bind_vector b "x" x;
  b

let bt_machine g =
  Machine.create
    {
      Machine.banks = Rt.required_banks g;
      profile = Arch.Bank.Silicon;
      noise_seed = Some 42;
    }

let outputs_of r =
  List.map
    (fun (id, (o : Rt.task_output)) -> (id, o.Rt.values, o.Rt.decision))
    r.Rt.outputs

let test_runtime_batch () =
  let g = fok (P.compile bt_kernel) in
  let plan = fok (Pipeline.plan_for g ~batch:3) in
  check bool "single-node graph plans the fast path" true
    plan.Rt.single_node;
  let batched =
    fok (Rt.run_batch ~plan ~machine:(bt_machine g) g (bt_bindings ()) ~batch:3)
  in
  let m = bt_machine g in
  let sequential =
    Array.init 3 (fun _ -> fok (Rt.run ~machine:m g (bt_bindings ())))
  in
  check int "one run_result per decision" 3 (Array.length batched);
  Array.iteri
    (fun d r ->
      check bool
        (Printf.sprintf "decision %d: runtime outputs bit-identical" d)
        true
        (outputs_of r = outputs_of sequential.(d)))
    batched;
  (* a chained two-layer DAG (layer 1's output is layer 2's X) is
     genuinely multi-node — argmin/argmax fuse into their producer, so
     they do NOT leave the single-node fast path *)
  let g2 =
    fok
      (P.compile
         (Dsl.kernel ~name:"bt2"
            ~decls:
              [
                Dsl.matrix "W0" ~rows:8 ~cols:64;
                Dsl.vector "x" ~len:64;
                Dsl.out_vector "h" ~len:8;
                Dsl.matrix "W1" ~rows:4 ~cols:8;
                Dsl.out_vector "y" ~len:4;
              ]
            [
              Dsl.for_store ~iterations:8 ~out:"h" (Dsl.dot "W0" "x");
              Dsl.for_store ~iterations:4 ~out:"y" (Dsl.dot "W1" "h");
            ]))
  in
  check bool "multi-node graph does not claim the fast path" false
    (fok (Pipeline.plan_for g2 ~batch:3)).Rt.single_node;
  let b2_bindings () =
    let rng = Rng.create 8102 in
    let w0 =
      Array.init 8 (fun _ ->
          Array.init 64 (fun _ -> Rng.uniform rng ~lo:(-0.9) ~hi:0.9))
    in
    let w1 =
      Array.init 4 (fun _ ->
          Array.init 8 (fun _ -> Rng.uniform rng ~lo:(-0.9) ~hi:0.9))
    in
    let x = Array.init 64 (fun _ -> Rng.uniform rng ~lo:(-0.9) ~hi:0.9) in
    let b = Rt.bindings () in
    Rt.bind_matrix b "W0" w0;
    Rt.bind_matrix b "W1" w1;
    Rt.bind_vector b "x" x;
    b
  in
  let b2 = fok (Rt.run_batch ~machine:(bt_machine g2) g2 (b2_bindings ()) ~batch:2) in
  let m2 = bt_machine g2 in
  let s2 =
    Array.init 2 (fun _ -> fok (Rt.run ~machine:m2 g2 (b2_bindings ())))
  in
  Array.iteri
    (fun d r ->
      check bool
        (Printf.sprintf "multi-node decision %d identical" d)
        true
        (outputs_of r = outputs_of s2.(d)))
    b2

(* ------------------------------------------------------------------ *)
(* Launch-shape-keyed batch plans in the compilation cache              *)
(* ------------------------------------------------------------------ *)

let test_plan_cache_keying () =
  let g = fok (P.compile bt_kernel) in
  Cache.clear ();
  let s0 = Cache.stats () in
  let p1 = fok (Pipeline.plan_for g ~batch:1) in
  let s1 = Cache.stats () in
  check int "batch 1 plan misses" (s0.Cache.misses + 1) s1.Cache.misses;
  let p8 = fok (Pipeline.plan_for g ~batch:8) in
  let s2 = Cache.stats () in
  check int "batch 8 is a different key: misses again" (s1.Cache.misses + 1)
    s2.Cache.misses;
  check int "two plan entries" (s0.Cache.entries + 2) s2.Cache.entries;
  let p8' = fok (Pipeline.plan_for g ~batch:8) in
  let s3 = Cache.stats () in
  check int "batch 8 replay hits" (s2.Cache.hits + 1) s3.Cache.hits;
  check int "a hit adds no entry" s2.Cache.entries s3.Cache.entries;
  check bool "cached plan is the stored one" true (p8 = p8');
  check int "plans carry their batch" 1 p1.Rt.batch;
  check int "plans carry their batch (8)" 8 p8.Rt.batch;
  (* a stale single-decision plan forced past the cache is rejected
     with a typed error, never silently reused for a batched launch *)
  match
    Rt.run_batch ~plan:p1 ~machine:(bt_machine g) g (bt_bindings ()) ~batch:8
  with
  | Error e -> check bool "typed Invalid_operand" true (e.E.code = E.Invalid_operand)
  | Ok _ -> Alcotest.fail "stale batch plan was accepted"

(* ------------------------------------------------------------------ *)
(* Typed validation of --batch / PROMISE_BATCH                          *)
(* ------------------------------------------------------------------ *)

let with_env name value f =
  let old = try Some (Sys.getenv name) with Not_found -> None in
  Unix.putenv name value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv name (Option.value old ~default:""))
    f

let test_batch_validation () =
  (* machine layer *)
  let c = serving_case 0 in
  let launch = launch_of c (task_of c) in
  (match Machine.execute_batch (machine_of c) launch ~batch:0 with
  | Error e -> check bool "machine rejects batch 0" true (e.E.code = E.Invalid_operand)
  | Ok _ -> Alcotest.fail "machine accepted batch 0");
  (* runtime layer *)
  let g = fok (P.compile bt_kernel) in
  (match Rt.run_batch g (bt_bindings ()) ~batch:(-2) with
  | Error e -> check bool "runtime rejects batch -2" true (e.E.code = E.Invalid_operand)
  | Ok _ -> Alcotest.fail "runtime accepted batch -2");
  (* pipeline layer *)
  (match Pipeline.plan_for g ~batch:0 with
  | Error e -> check bool "pipeline rejects batch 0" true (e.E.code = E.Invalid_operand)
  | Ok _ -> Alcotest.fail "pipeline accepted batch 0");
  (* environment *)
  List.iter
    (fun bad ->
      with_env "PROMISE_BATCH" bad (fun () ->
          (match P.Validate.env_int ~name:"PROMISE_BATCH" ~min:1 ~max:4096 with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "PROMISE_BATCH=%s validated" bad);
          match P.check_env () with
          | Error _ -> ()
          | Ok () -> Alcotest.failf "check_env accepted PROMISE_BATCH=%s" bad))
    [ "0"; "-3"; "abc"; "4097" ];
  with_env "PROMISE_BATCH" "16" (fun () ->
      check bool "PROMISE_BATCH=16 validates" true
        (P.Validate.env_int ~name:"PROMISE_BATCH" ~min:1 ~max:4096
        = Ok (Some 16));
      check bool "check_env accepts 16" true (P.check_env () = Ok ()));
  with_env "PROMISE_BATCH" "" (fun () ->
      check bool "unset reads as None" true
        (P.Validate.env_int ~name:"PROMISE_BATCH" ~min:1 ~max:4096 = Ok None))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "batch"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest qcheck_batched_eq_singles;
          Alcotest.test_case "ragged chained batches are stream-continuous"
            `Quick test_ragged_chained;
          Alcotest.test_case "pooled batch is bit-identical" `Quick
            test_batched_pooled;
        ] );
      ( "serving",
        [
          Alcotest.test_case "execute_batch_into is bitwise the emission \
                              stream" `Quick test_into_bitwise;
          Alcotest.test_case "steady state allocates < 1 word/task" `Quick
            test_into_zero_alloc;
          Alcotest.test_case "batch trace carries pipelined timing" `Quick
            test_batch_trace_timing;
        ] );
      ( "timing",
        [
          Alcotest.test_case "discrete-event batch matches closed form"
            `Quick test_scheduler_closed_form;
        ] );
      ( "program+runtime",
        [
          Alcotest.test_case "run_program_batch == N run_program" `Quick
            test_run_program_batch;
          Alcotest.test_case "Runtime.run_batch == N Runtime.run" `Quick
            test_runtime_batch;
        ] );
      ( "plan cache",
        [
          Alcotest.test_case "plans are keyed on (graph, batch)" `Quick
            test_plan_cache_keying;
        ] );
      ( "validation",
        [
          Alcotest.test_case "--batch / PROMISE_BATCH typed errors" `Quick
            test_batch_validation;
        ] );
    ]
