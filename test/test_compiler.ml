(* Compiler tests: backend lowering, the Sakr precision analysis, the
   Eq. (3) swing optimizer, and runtime correctness against the float
   reference implementations on an ideal machine. *)

open Promise.Compiler
open Promise.Ir
open Promise.Isa
module Arch = Promise.Arch
module Ml = Promise.Ml

let check = Alcotest.check
let fail = Alcotest.fail
let bool = Alcotest.bool
let int = Alcotest.int
let close eps = Alcotest.float eps

let ok_or_fail = function
  | Ok v -> v
  | Error e -> fail (Promise.Error.to_string e)

(* for the layers whose errors are still plain strings *)
let ok_or_fail_s = function Ok v -> v | Error msg -> fail msg

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)
(* ------------------------------------------------------------------ *)

let at ?(vec_op = Abstract_task.Vo_mul_signed) ?(red_op = Abstract_task.Ro_sum)
    ?(digital_op = Abstract_task.Do_none) ?(vector_len = 128)
    ?(loop_iterations = 16) ?(swing = 7) () =
  Abstract_task.make ~w:"W" ~x:"x" ~output:"out" ~vec_op ~red_op ~digital_op
    ~vector_len ~loop_iterations ~swing ()

let test_classes_of_mul () =
  let c1, c2, c3, c4 = ok_or_fail (Lower.classes_of (at ())) in
  check bool "aREAD" true (Opcode.equal_class1 c1 Opcode.C1_aread);
  check bool "sign_mult + avd" true
    (Opcode.equal_class2 c2 { Opcode.asd = Opcode.Asd_sign_mult; avd = true });
  check bool "ADC" true (Opcode.equal_class3 c3 Opcode.C3_adc);
  check bool "accumulate" true (Opcode.equal_class4 c4 Opcode.C4_accumulate)

let test_classes_of_l1 () =
  let c1, c2, _, c4 =
    ok_or_fail
      (Lower.classes_of
         (at ~vec_op:Abstract_task.Vo_sub ~red_op:Abstract_task.Ro_sum_abs
            ~digital_op:Abstract_task.Do_min ()))
  in
  check bool "aSUBT" true (Opcode.equal_class1 c1 Opcode.C1_asubt);
  check bool "absolute" true
    (Opcode.equal_class2 c2 { Opcode.asd = Opcode.Asd_absolute; avd = true });
  check bool "min" true (Opcode.equal_class4 c4 Opcode.C4_min)

let test_classes_of_vo_none_square () =
  let c1, c2, _, _ =
    ok_or_fail
      (Lower.classes_of
         (at ~vec_op:Abstract_task.Vo_none ~red_op:Abstract_task.Ro_sum_square
            ~digital_op:Abstract_task.Do_mean ()))
  in
  check bool "aREAD" true (Opcode.equal_class1 c1 Opcode.C1_aread);
  check bool "square" true
    (Opcode.equal_class2 c2 { Opcode.asd = Opcode.Asd_square; avd = true })

let test_classes_of_invalid_combo () =
  match
    Lower.classes_of
      (at ~vec_op:Abstract_task.Vo_mul_signed ~red_op:Abstract_task.Ro_sum_abs ())
  with
  | Error _ -> ()
  | Ok _ -> fail "multiply + absolute must be rejected"

let test_threshold_code () =
  check int "zero is midpoint" 8 (Lower.threshold_code 0.0);
  check int "minus one" 0 (Lower.threshold_code (-1.0));
  check int "plus one" 15 (Lower.threshold_code 1.0);
  check int "clamps" 15 (Lower.threshold_code 3.0)

let test_lower_chunk_fields () =
  let a = at ~vector_len:512 ~loop_iterations:100 ~swing:3 () in
  let plan = Arch.Layout.plan_exn ~vector_len:512 ~rows:100 () in
  let task = ok_or_fail (Lower.lower_chunk a ~plan ~chunk:0 ~w_base:0 ~xreg_base:0) in
  check int "multi_bank" 2 task.Task.multi_bank;
  check int "rpt covers rows x segments" (100 - 1) task.Task.rpt_num;
  check int "swing propagated" 3 task.Task.op_param.Op_param.swing;
  check int "x_prd" 0 task.Task.op_param.Op_param.x_prd

let test_lower_segments () =
  let a = at ~vector_len:4096 ~loop_iterations:2 () in
  let plan = Arch.Layout.plan_exn ~vector_len:4096 ~rows:2 () in
  let task = ok_or_fail (Lower.lower_chunk a ~plan ~chunk:0 ~w_base:0 ~xreg_base:0) in
  check int "x_prd = 3" 3 task.Task.op_param.Op_param.x_prd;
  check int "acc groups segments" 3 task.Task.op_param.Op_param.acc_num;
  check int "8 iterations" 7 task.Task.rpt_num

let test_lower_chunked_program () =
  let a = at ~vector_len:784 ~loop_iterations:512 () in
  let plan = Arch.Layout.plan_exn ~vector_len:784 ~rows:512 () in
  let tasks = ok_or_fail (Lower.lower a ~plan) in
  check int "four chunks" 4 (List.length tasks);
  List.iter
    (fun t -> check int "each chunk 128 rows" 127 t.Task.rpt_num)
    tasks

let test_destination_routing () =
  let sigmoid_task =
    ok_or_fail
      (Lower.lower_chunk
         (at ~digital_op:Abstract_task.Do_sigmoid ())
         ~plan:(Arch.Layout.plan_exn ~vector_len:128 ~rows:16 ())
         ~chunk:0 ~w_base:0 ~xreg_base:0)
  in
  check bool "activations go to X-REG" true
    (Opcode.equal_destination sigmoid_task.Task.op_param.Op_param.des
       Opcode.Des_xreg);
  let min_task =
    ok_or_fail
      (Lower.lower_chunk
         (at ~vec_op:Abstract_task.Vo_sub ~red_op:Abstract_task.Ro_sum_abs
            ~digital_op:Abstract_task.Do_min ())
         ~plan:(Arch.Layout.plan_exn ~vector_len:128 ~rows:16 ())
         ~chunk:0 ~w_base:0 ~xreg_base:0)
  in
  check bool "decisions go to the output buffer" true
    (Opcode.equal_destination min_task.Task.op_param.Op_param.des
       Opcode.Des_output_buffer)

let test_program_of_graph () =
  let g =
    ok_or_fail_s
      (Graph.of_tasks
         [
           at ~loop_iterations:8 ();
           Abstract_task.make ~w:"W2" ~x:"out" ~output:"y"
             ~vec_op:Abstract_task.Vo_mul_signed ~red_op:Abstract_task.Ro_sum
             ~digital_op:Abstract_task.Do_sigmoid ~vector_len:8
             ~loop_iterations:4 ();
         ])
  in
  let p = ok_or_fail (Lower.program_of_graph g) in
  check int "two tasks" 2 (Program.length p)

(* ------------------------------------------------------------------ *)
(* Precision (Sakr bound)                                              *)
(* ------------------------------------------------------------------ *)

let test_bound_formula () =
  let s = { Precision.ea = 4.0; ew = 16.0 } in
  (* ba=2: da = 2^-1, term = 0.25*4 = 1; bw=3: dw = 2^-2, 16/16 = 1 *)
  check (close 1e-9) "bound" 2.0 (Precision.bound s ~ba:2 ~bw:3)

let test_bound_decreases_with_bits () =
  let s = { Precision.ea = 10.0; ew = 10.0 } in
  let prev = ref infinity in
  for b = 1 to 12 do
    let v = Precision.bound s ~ba:b ~bw:b in
    check bool "decreasing" true (v < !prev);
    prev := v
  done

let test_min_activation_bits () =
  let s = { Precision.ea = 1.0; ew = 0.001 } in
  let ba = ok_or_fail_s (Precision.min_activation_bits s ~pm:0.01 ~bw:7) in
  (* need da^2 <= ~0.01 -> da <= 0.1 -> ba >= 1 + log2(10) ~ 4.4 *)
  check int "ba" 5 ba;
  check bool "bound satisfied" true (Precision.bound s ~ba ~bw:7 <= 0.01);
  check bool "minimal" true (Precision.bound s ~ba:(ba - 1) ~bw:7 > 0.01)

let test_min_activation_bits_infeasible () =
  (* weight term alone blows the budget *)
  let s = { Precision.ea = 1.0; ew = 1e6 } in
  match Precision.min_activation_bits s ~pm:0.01 ~bw:7 with
  | Error _ -> ()
  | Ok _ -> fail "infeasible budget must be rejected"

let test_stats_of_trained_mlp () =
  let rng = Promise.Analog.Rng.create 31 in
  let data = Ml.Dataset.Digits.generate rng ~width:8 ~height:8 ~n:200 in
  let mlp = Ml.Mlp.create rng ~sizes:[ 64; 16; 10 ] ~hidden_activation:Ml.Mlp.Sigmoid in
  Ml.Mlp.train mlp rng ~data ~epochs:3 ~lr:0.3;
  let s = Precision.of_mlp mlp (Array.sub data 0 50) in
  check bool "EA positive" true (s.Precision.ea > 0.0);
  check bool "EW positive" true (s.Precision.ew > 0.0)

(* ------------------------------------------------------------------ *)
(* Swing optimization (Eq. 3)                                          *)
(* ------------------------------------------------------------------ *)

let test_eq3_predicate () =
  (* 2.6 f(s)/sqrt(N) < 2^-(B+1) *)
  let lhs s n = 2.6 *. Promise.Analog.Swing.noise_factor s /. sqrt (float_of_int n) in
  check bool "consistency" true
    (Swing_opt.meets_eq3 ~swing:7 ~bits:4 ~n:784
    = (lhs 7 784 < 2.0 ** (-5.0)))

let test_min_swing_monotone_in_n () =
  (* wider layers tolerate lower swings (paper §6.1) *)
  let swing_for n =
    Option.value (Swing_opt.min_swing_for ~bits:4 ~n) ~default:7
  in
  check bool "784 <= 512" true (swing_for 784 <= swing_for 512);
  check bool "512 <= 128" true (swing_for 512 <= swing_for 128)

let test_min_swing_monotone_in_bits () =
  let swing_for bits =
    Option.value (Swing_opt.min_swing_for ~bits ~n:256) ~default:7
  in
  check bool "more bits, more swing" true (swing_for 3 <= swing_for 5)

let test_min_swing_none_when_impossible () =
  check bool "16 bits unreachable" true
    (Swing_opt.min_swing_for ~bits:16 ~n:16 = None)

let test_optimize_graph_assigns_per_layer_swings () =
  let layer ~w ~x ~out ~n ~rows =
    Abstract_task.make ~w ~x ~output:out ~vec_op:Abstract_task.Vo_mul_signed
      ~red_op:Abstract_task.Ro_sum ~digital_op:Abstract_task.Do_sigmoid
      ~vector_len:n ~loop_iterations:rows ()
  in
  let g =
    ok_or_fail_s
      (Graph.of_tasks
         [
           layer ~w:"W0" ~x:"x" ~out:"h0" ~n:784 ~rows:512;
           layer ~w:"W1" ~x:"h0" ~out:"h1" ~n:512 ~rows:256;
           layer ~w:"W2" ~x:"h1" ~out:"h2" ~n:256 ~rows:128;
           layer ~w:"W3" ~x:"h2" ~out:"y" ~n:128 ~rows:10;
         ])
  in
  let stats = { Precision.ea = 2.0; ew = 0.01 } in
  let g', bits = ok_or_fail_s (Swing_opt.optimize_graph g ~stats ~pm:0.01) in
  check bool "bits reasonable" true (bits >= 3 && bits <= 9);
  let swings =
    List.map (fun id -> (Graph.task g' id).Abstract_task.swing)
      (Graph.topological_order g')
  in
  (* wider (earlier) layers get equal-or-lower swing codes *)
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  check bool "monotone swings across layers" true (monotone swings)

let test_optimize_single_picks_cheapest_passing () =
  (* fabricated oracle: accuracy climbs with swing *)
  let accs = [| 0.90; 0.93; 0.97; 0.992; 0.994; 0.995; 0.996; 0.997 |] in
  let r =
    Swing_opt.optimize_single
      ~simulate:(fun s -> accs.(s))
      ~energy_at:(fun s -> float_of_int (s + 1))
      ~reference_accuracy:1.0 ~pm:0.01
  in
  check int "first within pm" 3 r.Swing_opt.chosen;
  check int "eight points" 8 (List.length r.Swing_opt.points)

let test_optimize_single_falls_back_to_max () =
  let r =
    Swing_opt.optimize_single
      ~simulate:(fun _ -> 0.5)
      ~energy_at:(fun _ -> 1.0)
      ~reference_accuracy:1.0 ~pm:0.01
  in
  check int "fallback 7" 7 r.Swing_opt.chosen

let test_search_space () =
  check int "8^1" 8 (Swing_opt.search_space_size ~tasks:1);
  check int "8^4 = 4096 (DNN-3, §6.1)" 4096 (Swing_opt.search_space_size ~tasks:4)

(* ------------------------------------------------------------------ *)
(* Runtime correctness on an ideal machine                              *)
(* ------------------------------------------------------------------ *)

let ideal_machine banks =
  Arch.Machine.create (Arch.Machine.ideal_config ~banks)

let run_kernel ?(banks = 8) kernel bindings =
  let g = ok_or_fail (Pipeline.compile kernel) in
  ok_or_fail (Runtime.run ~machine:(ideal_machine banks) g bindings)

let final r = ok_or_fail (Runtime.final_output r)

let test_runtime_dot_matches_reference () =
  let rows = 12 and cols = 40 in
  let rng = Promise.Analog.Rng.create 5 in
  let w =
    Array.init rows (fun _ ->
        Array.init cols (fun _ -> Promise.Analog.Rng.uniform rng ~lo:(-0.8) ~hi:0.8))
  in
  let x = Array.init cols (fun _ -> Promise.Analog.Rng.uniform rng ~lo:(-0.8) ~hi:0.8) in
  let k =
    Dsl.kernel ~name:"dot"
      ~decls:
        [
          Dsl.matrix "W" ~rows ~cols;
          Dsl.vector "x" ~len:cols;
          Dsl.out_vector "out" ~len:rows;
        ]
      [ Dsl.for_store ~iterations:rows ~out:"out" (Dsl.dot "W" "x") ]
  in
  let b = Runtime.bindings () in
  Runtime.bind_matrix b "W" w;
  Runtime.bind_vector b "x" x;
  let out = (final (run_kernel k b)).Runtime.values in
  let reference = Ml.Linalg.mat_vec w x in
  check int "all rows" rows (Array.length out);
  Array.iteri
    (fun i v -> check (close 0.05) "dot row" reference.(i) v)
    out

let test_runtime_l1_argmin_matches_reference () =
  let rng = Promise.Analog.Rng.create 6 in
  let candidates =
    Array.init 10 (fun _ ->
        Array.init 64 (fun _ -> Promise.Analog.Rng.uniform rng ~lo:(-0.9) ~hi:0.9))
  in
  let x = Array.copy candidates.(4) in
  let k =
    Dsl.kernel ~name:"tm"
      ~decls:
        [
          Dsl.matrix "W" ~rows:10 ~cols:64;
          Dsl.vector "x" ~len:64;
          Dsl.out_vector "out" ~len:10;
        ]
      [
        Dsl.for_store ~iterations:10 ~out:"out" (Dsl.l1_distance "W" "x");
        Dsl.argmin "out";
      ]
  in
  let b = Runtime.bindings () in
  Runtime.bind_matrix b "W" candidates;
  Runtime.bind_vector b "x" x;
  match (final (run_kernel k b)).Runtime.decision with
  | Some (i, _) -> check int "nearest candidate" 4 i
  | None -> fail "decision expected"

let test_runtime_l2_values () =
  let rng = Promise.Analog.Rng.create 7 in
  let w =
    Array.init 6 (fun _ ->
        Array.init 32 (fun _ -> Promise.Analog.Rng.uniform rng ~lo:(-0.9) ~hi:0.9))
  in
  let x = Array.init 32 (fun _ -> Promise.Analog.Rng.uniform rng ~lo:(-0.9) ~hi:0.9) in
  let k =
    Dsl.kernel ~name:"l2"
      ~decls:
        [
          Dsl.matrix "W" ~rows:6 ~cols:32;
          Dsl.vector "x" ~len:32;
          Dsl.out_vector "out" ~len:6;
        ]
      [ Dsl.for_store ~iterations:6 ~out:"out" (Dsl.l2_distance "W" "x") ]
  in
  let b = Runtime.bindings () in
  Runtime.bind_matrix b "W" w;
  Runtime.bind_vector b "x" x;
  let out = (final (run_kernel k b)).Runtime.values in
  Array.iteri
    (fun i v ->
      let reference = Ml.Linalg.l2_distance w.(i) x in
      check (close (0.05 +. (reference *. 0.1))) "l2 row" reference v)
    out

let test_runtime_threshold_decision () =
  let k =
    Dsl.kernel ~name:"thr"
      ~decls:
        [
          Dsl.matrix "W" ~rows:1 ~cols:4;
          Dsl.vector "x" ~len:4;
          Dsl.out_vector "out" ~len:1;
        ]
      [
        Dsl.for_store ~iterations:1 ~out:"out"
          (Dsl.sthreshold 0.1 (Dsl.dot "W" "x"));
      ]
  in
  let run w_row x =
    let b = Runtime.bindings () in
    Runtime.bind_matrix b "W" [| w_row |];
    Runtime.bind_vector b "x" x;
    (final (run_kernel k b)).Runtime.values.(0)
  in
  check (close 1e-9) "above threshold" 1.0
    (run [| 0.5; 0.5; 0.5; 0.5 |] [| 0.5; 0.5; 0.5; 0.5 |]);
  check (close 1e-9) "below threshold" 0.0
    (run [| 0.5; -0.5; 0.5; -0.5 |] [| 0.5; 0.5; 0.5; 0.5 |])

let test_runtime_multibank_long_vector () =
  (* 512-element vectors span 4 banks (the §3.4 shape) *)
  let rng = Promise.Analog.Rng.create 8 in
  let w =
    Array.init 4 (fun _ ->
        Array.init 512 (fun _ -> Promise.Analog.Rng.uniform rng ~lo:(-0.9) ~hi:0.9))
  in
  let x = Array.init 512 (fun _ -> Promise.Analog.Rng.uniform rng ~lo:(-0.9) ~hi:0.9) in
  let k =
    Dsl.kernel ~name:"wide"
      ~decls:
        [
          Dsl.matrix "W" ~rows:4 ~cols:512;
          Dsl.vector "x" ~len:512;
          Dsl.out_vector "out" ~len:4;
        ]
      [ Dsl.for_store ~iterations:4 ~out:"out" (Dsl.dot "W" "x") ]
  in
  let b = Runtime.bindings () in
  Runtime.bind_matrix b "W" w;
  Runtime.bind_vector b "x" x;
  let out = (final (run_kernel k b)).Runtime.values in
  Array.iteri
    (fun i v -> check (close 0.3) "wide dot" (Ml.Linalg.dot w.(i) x) v)
    out

let test_runtime_mean_statistics () =
  let n = 1024 and cols = 256 in
  let rng = Promise.Analog.Rng.create 9 in
  let u = Array.init n (fun _ -> Promise.Analog.Rng.uniform rng ~lo:(-0.9) ~hi:0.9) in
  let v = Array.map (fun ui -> (0.5 *. ui) +. 0.1) u in
  let rows = n / cols in
  let k =
    Dsl.kernel ~name:"stats"
      ~decls:
        [
          Dsl.matrix "U" ~rows ~cols;
          Dsl.matrix "V" ~rows ~cols;
          Dsl.vector "Vvec" ~len:n;
        ]
      [
        Dsl.mean "U"; Dsl.mean "V"; Dsl.mean_square "U";
        Dsl.mean_product "U" "Vvec";
      ]
  in
  let b = Runtime.bindings () in
  Runtime.bind_flat b "U" u ~cols;
  Runtime.bind_flat b "V" v ~cols;
  Runtime.bind_vector b "Vvec" v;
  let r = run_kernel k b in
  let values = List.map (fun (_, o) -> o.Runtime.values.(0)) r.Runtime.outputs in
  match values with
  | [ mu; mv; mu2; muv ] ->
      check (close 0.02) "mean u" (Ml.Linalg.mean u) mu;
      check (close 0.02) "mean v" (Ml.Linalg.mean v) mv;
      check (close 0.02) "mean u^2"
        (Ml.Linalg.mean (Array.map (fun a -> a *. a) u)) mu2;
      check (close 0.02) "mean uv"
        (Ml.Linalg.mean (Array.map2 ( *. ) u v)) muv
  | _ -> fail "four statistics expected"

let test_runtime_dnn_chain () =
  let rng = Promise.Analog.Rng.create 10 in
  let mlp = Ml.Mlp.create rng ~sizes:[ 32; 12; 4 ] ~hidden_activation:Ml.Mlp.Sigmoid in
  let x = Array.init 32 (fun _ -> Promise.Analog.Rng.uniform rng ~lo:(-0.9) ~hi:0.9) in
  let k =
    Dsl.kernel ~name:"mlp"
      ~decls:
        [
          Dsl.matrix "W0" ~rows:12 ~cols:32;
          Dsl.matrix "W1" ~rows:4 ~cols:12;
          Dsl.vector "x" ~len:32;
          Dsl.out_vector "h" ~len:12;
          Dsl.out_vector "y" ~len:4;
        ]
      [
        Dsl.for_store ~iterations:12 ~out:"h" (Dsl.sigmoid (Dsl.dot "W0" "x"));
        Dsl.for_store ~iterations:4 ~out:"y" (Dsl.sigmoid (Dsl.dot "W1" "h"));
      ]
  in
  let b = Runtime.bindings () in
  Runtime.bind_matrix b "W0" mlp.Ml.Mlp.layers.(0).Ml.Mlp.weights;
  Runtime.bind_matrix b "W1" mlp.Ml.Mlp.layers.(1).Ml.Mlp.weights;
  Runtime.bind_vector b "x" x;
  let out = (final (run_kernel k b)).Runtime.values in
  let reference = (Ml.Mlp.forward mlp x).(2) in
  check int "4 outputs" 4 (Array.length out);
  Array.iteri
    (fun i v -> check (close 0.08) "mlp output" reference.(i) v)
    out;
  (* decisions agree *)
  check int "argmax agrees" (Ml.Linalg.argmax reference) (Ml.Linalg.argmax out)

let test_runtime_unbound_arrays_error () =
  let k =
    Dsl.kernel ~name:"dot"
      ~decls:
        [
          Dsl.matrix "W" ~rows:2 ~cols:4;
          Dsl.vector "x" ~len:4;
          Dsl.out_vector "out" ~len:2;
        ]
      [ Dsl.for_store ~iterations:2 ~out:"out" (Dsl.dot "W" "x") ]
  in
  let g = ok_or_fail (Pipeline.compile k) in
  match Runtime.run ~machine:(ideal_machine 1) g (Runtime.bindings ()) with
  | Error _ -> ()
  | Ok _ -> fail "unbound arrays must be an error"

let test_runtime_adc_gain_estimation () =
  (* small-magnitude data picks a large power-of-two gain *)
  let a = at ~vector_len:4 ~loop_iterations:1 () in
  let plan = Arch.Layout.plan_exn ~vector_len:4 ~rows:1 () in
  let g =
    Runtime.For_tests.estimate_adc_gain a plan
      ~w_codes:[| [| 2; -2; 2; -2 |] |]
      ~x_for_row:(fun _ -> Some [| 3; 3; 3; 3 |])
  in
  check bool "gain is a large power of two" true (g >= 32.0);
  check (close 1e-9) "power of two" 0.0
    (Float.rem (Float.log (Float.max g 1.0) /. Float.log 2.0) 1.0)

let test_runtime_compare_kernel () =
  (* the Hamming-style compare path: count of non-negative differences *)
  let k =
    Dsl.kernel ~name:"cmp"
      ~decls:
        [
          Dsl.matrix "W" ~rows:3 ~cols:16;
          Dsl.vector "x" ~len:16;
          Dsl.out_vector "out" ~len:3;
        ]
      [
        Dsl.for_store ~iterations:3 ~out:"out"
          (Dsl.sum (Dsl.vcompare (Dsl.vsub (Dsl.row "W") (Dsl.xvec "x"))));
      ]
  in
  let rng = Promise.Analog.Rng.create 41 in
  let w =
    Array.init 3 (fun _ ->
        Array.init 16 (fun _ -> Promise.Analog.Rng.uniform rng ~lo:(-0.9) ~hi:0.9))
  in
  let x = Array.init 16 (fun _ -> Promise.Analog.Rng.uniform rng ~lo:(-0.9) ~hi:0.9) in
  let b = Runtime.bindings () in
  Runtime.bind_matrix b "W" w;
  Runtime.bind_vector b "x" x;
  let out = (final (run_kernel k b)).Runtime.values in
  Array.iteri
    (fun i v ->
      let reference =
        Array.fold_left ( + ) 0
          (Array.mapi (fun j wj -> if wj -. x.(j) >= 0.0 then 1 else 0) w.(i))
      in
      (* compare emits exact 0/1 per lane; sum is exact up to ADC *)
      check (close 0.6) "compare count" (float_of_int reference) v)
    out

let test_eq3_empirical_aggregate_noise () =
  (* End-to-end validation of the Eq. (3) noise model: the standard
     deviation of the digitized aggregate of N worst-case (|w| = 1)
     reads matches f(swing)/sqrt(N) within sampling error. *)
  let swing = 4 and lanes = 128 in
  let machine =
    Arch.Machine.create
      { Arch.Machine.banks = 1; profile = Arch.Bank.Silicon; noise_seed = Some 77 }
  in
  let bank = Arch.Machine.bank machine 0 in
  (* |w| = 0.75 on every lane (away from the ADC clip point, so the
     gaussian is not truncated) *)
  Arch.Bitcell_array.write (Arch.Bank.array bank) ~word_row:0
    (Array.make lanes (-96));
  let task =
    Promise.Isa.Task.make
      ~op_param:{ Promise.Isa.Op_param.default with Promise.Isa.Op_param.swing }
      ~class1:Opcode.C1_aread
      ~class2:{ Opcode.asd = Opcode.Asd_none; avd = true }
      ~class3:Opcode.C3_adc ~class4:Opcode.C4_accumulate ()
  in
  let n = 3000 in
  let sum = ref 0.0 and sum2 = ref 0.0 in
  for _ = 1 to n do
    match
      Arch.Bank.run_iteration bank ~task ~iteration:0 ~active_lanes:lanes
        ~adc_gain:1.0
    with
    | Arch.Bank.Sample s ->
        sum := !sum +. s;
        sum2 := !sum2 +. (s *. s)
    | _ -> fail "sample expected"
  done;
  let mean = !sum /. float_of_int n in
  let sigma = sqrt (Float.max 0.0 ((!sum2 /. float_of_int n) -. (mean *. mean))) in
  let predicted =
    0.75 *. Promise.Analog.Noise.aggregate_sigma ~swing ~n:lanes
  in
  (* ADC quantization adds lsb^2/12 variance on top of the analog noise *)
  let adc_var = Promise.Analog.Adc.lsb ** 2.0 /. 12.0 in
  let predicted_total = sqrt ((predicted ** 2.0) +. adc_var) in
  check bool
    (Printf.sprintf "empirical sigma %.5f ~ predicted %.5f" sigma
       predicted_total)
    true
    (Float.abs (sigma -. predicted_total) /. predicted_total < 0.15)

let test_runtime_segmented_vector () =
  (* 2048-element vectors: 8 banks x 2 segments, X_PRD = 1, TH groups
     the two per-row samples (ACC_NUM = 1) *)
  let rng = Promise.Analog.Rng.create 66 in
  let cols = 2048 and rows = 4 in
  let w =
    Array.init rows (fun _ ->
        Array.init cols (fun _ -> Promise.Analog.Rng.uniform rng ~lo:(-0.9) ~hi:0.9))
  in
  let x = Array.init cols (fun _ -> Promise.Analog.Rng.uniform rng ~lo:(-0.9) ~hi:0.9) in
  let k =
    Dsl.kernel ~name:"wide2048"
      ~decls:
        [
          Dsl.matrix "W" ~rows ~cols;
          Dsl.vector "x" ~len:cols;
          Dsl.out_vector "out" ~len:rows;
        ]
      [ Dsl.for_store ~iterations:rows ~out:"out" (Dsl.l1_distance "W" "x") ]
  in
  (* check the lowered shape first *)
  let g = ok_or_fail (Pipeline.compile k) in
  let program = ok_or_fail (Pipeline.codegen g) in
  (match program.Program.tasks with
  | [ t ] ->
      check int "x_prd 1" 1 t.Task.op_param.Op_param.x_prd;
      check int "acc groups 2 segments" 1 t.Task.op_param.Op_param.acc_num;
      check int "8 iterations" 7 t.Task.rpt_num;
      check int "8 banks" 8 (Task.banks t)
  | _ -> fail "one task expected");
  let b = Runtime.bindings () in
  Runtime.bind_matrix b "W" w;
  Runtime.bind_vector b "x" x;
  let out = (final (run_kernel ~banks:8 k b)).Runtime.values in
  check int "four outputs" rows (Array.length out);
  Array.iteri
    (fun i v ->
      let reference = Ml.Linalg.l1_distance w.(i) x in
      check (close (0.1 *. reference)) "segmented L1" reference v)
    out

let test_runtime_chained_unnormalized_producer () =
  (* a distance producer emits values far outside [-1, 1); the consumer
     multiply kernel must renormalize its X operand transparently *)
  let rng = Promise.Analog.Rng.create 55 in
  let w1 =
    Array.init 6 (fun _ ->
        Array.init 32 (fun _ -> Promise.Analog.Rng.uniform rng ~lo:(-0.9) ~hi:0.9))
  in
  let x = Array.init 32 (fun _ -> Promise.Analog.Rng.uniform rng ~lo:(-0.9) ~hi:0.9) in
  let w2 =
    Array.init 3 (fun _ ->
        Array.init 6 (fun _ -> Promise.Analog.Rng.uniform rng ~lo:(-0.9) ~hi:0.9))
  in
  let k =
    Dsl.kernel ~name:"chain"
      ~decls:
        [
          Dsl.matrix "W1" ~rows:6 ~cols:32;
          Dsl.vector "x" ~len:32;
          Dsl.out_vector "d" ~len:6;
          Dsl.matrix "W2" ~rows:3 ~cols:6;
          Dsl.out_vector "y" ~len:3;
        ]
      [
        Dsl.for_store ~iterations:6 ~out:"d" (Dsl.l1_distance "W1" "x");
        Dsl.for_store ~iterations:3 ~out:"y" (Dsl.dot "W2" "d");
      ]
  in
  let b = Runtime.bindings () in
  Runtime.bind_matrix b "W1" w1;
  Runtime.bind_matrix b "W2" w2;
  Runtime.bind_vector b "x" x;
  let out = (final (run_kernel k b)).Runtime.values in
  let d = Array.map (fun row -> Ml.Linalg.l1_distance row x) w1 in
  let reference = Ml.Linalg.mat_vec w2 d in
  Array.iteri
    (fun i v ->
      check
        (close (0.5 +. (0.05 *. Float.abs reference.(i))))
        "chained value" reference.(i) v)
    out

let qcheck_random_kernels_match_reference =
  (* end-to-end property: random kernel geometry and distance metric,
     random data, ideal machine — results track the float reference
     within the quantization budget *)
  let gen =
    QCheck.Gen.(
      quad (int_range 1 16) (int_range 2 300) (int_range 0 2) (int_range 0 10000))
  in
  QCheck.Test.make ~name:"random kernels match the float reference" ~count:25
    (QCheck.make gen)
    (fun (rows, cols, op, seed) ->
      let rng = Promise.Analog.Rng.create seed in
      let w =
        Array.init rows (fun _ ->
            Array.init cols (fun _ ->
                Promise.Analog.Rng.uniform rng ~lo:(-0.9) ~hi:0.9))
      in
      let x =
        Array.init cols (fun _ ->
            Promise.Analog.Rng.uniform rng ~lo:(-0.9) ~hi:0.9)
      in
      (* the dominant error is the 8-bit ADC quantization of per-bank
         means: worst case ~ lanes x lsb/2 per bank, so the bound
         scales with the vector length *)
      let quant = 0.05 +. (0.004 *. float_of_int cols) in
      let body, reference, tolerance_of =
        match op with
        | 0 ->
            ( Dsl.dot "W" "x",
              (fun i -> Ml.Linalg.dot w.(i) x),
              fun r -> quant +. (0.02 *. Float.abs r) )
        | 1 ->
            ( Dsl.l1_distance "W" "x",
              (fun i -> Ml.Linalg.l1_distance w.(i) x),
              fun r -> quant +. (0.05 *. r) )
        | _ ->
            ( Dsl.l2_distance "W" "x",
              (fun i -> Ml.Linalg.l2_distance w.(i) x),
              fun r -> quant +. (0.08 *. r) )
      in
      let k =
        Dsl.kernel ~name:"prop"
          ~decls:
            [
              Dsl.matrix "W" ~rows ~cols;
              Dsl.vector "x" ~len:cols;
              Dsl.out_vector "out" ~len:rows;
            ]
          [ Dsl.for_store ~iterations:rows ~out:"out" body ]
      in
      let b = Runtime.bindings () in
      Runtime.bind_matrix b "W" w;
      Runtime.bind_vector b "x" x;
      let out = (final (run_kernel ~banks:8 k b)).Runtime.values in
      Array.length out = rows
      && Array.for_all
           (fun ok -> ok)
           (Array.mapi
              (fun i v ->
                let r = reference i in
                Float.abs (v -. r) <= tolerance_of r)
              out))

(* ------------------------------------------------------------------ *)
(* Allocator (concurrent bank assignment)                              *)
(* ------------------------------------------------------------------ *)

let chunk_task ~multi_bank ~rpt_num =
  Task.make ~rpt_num ~multi_bank ~class1:Opcode.C1_aread
    ~class2:{ Opcode.asd = Opcode.Asd_sign_mult; avd = true }
    ~class3:Opcode.C3_adc ~class4:Opcode.C4_sigmoid ()

let test_allocator_parallel_level () =
  (* four 8-bank chunks fit a 36-bank machine in one wave *)
  let tasks = List.init 4 (fun _ -> (chunk_task ~multi_bank:3 ~rpt_num:127, 0)) in
  let p = ok_or_fail_s (Allocator.plan ~total_banks:36 tasks) in
  check int "peak banks" 32 p.Allocator.banks_used;
  (* all start together; makespan = one chunk's steady time *)
  check int "makespan" (128 * 14) p.Allocator.makespan;
  check int "interval = slowest level" (128 * 14) p.Allocator.pipelined_interval

let test_allocator_waves_when_full () =
  (* four 8-bank chunks on a 16-bank machine: two waves *)
  let tasks = List.init 4 (fun _ -> (chunk_task ~multi_bank:3 ~rpt_num:127, 0)) in
  let p = ok_or_fail_s (Allocator.plan ~total_banks:16 tasks) in
  check int "peak banks" 16 p.Allocator.banks_used;
  check int "two waves" (2 * 128 * 14) p.Allocator.makespan

let test_allocator_levels_sequence () =
  (* two levels run back to back; the interval is the slower one *)
  let tasks =
    [
      (chunk_task ~multi_bank:3 ~rpt_num:127, 0);
      (chunk_task ~multi_bank:0 ~rpt_num:9, 1);
    ]
  in
  let p = ok_or_fail_s (Allocator.plan ~total_banks:8 tasks) in
  check int "makespan sums levels" ((128 * 14) + (10 * 14)) p.Allocator.makespan;
  check int "interval = level 0" (128 * 14) p.Allocator.pipelined_interval

let test_allocator_rejects_oversized_task () =
  match Allocator.plan ~total_banks:4 [ (chunk_task ~multi_bank:3 ~rpt_num:0, 0) ] with
  | Error _ -> ()
  | Ok _ -> fail "8-bank task on a 4-bank machine must be rejected"

let test_allocator_of_program_level_counts () =
  let program =
    Program.make ~name:"p"
      [
        chunk_task ~multi_bank:3 ~rpt_num:127;
        chunk_task ~multi_bank:3 ~rpt_num:127;
        chunk_task ~multi_bank:0 ~rpt_num:9;
      ]
  in
  (match Allocator.of_program ~total_banks:36 ~levels:[ 2; 1 ] program with
  | Ok p ->
      check int "peak = two 8-bank chunks" 16 p.Allocator.banks_used;
      check bool "decisions/s positive" true
        (Allocator.decisions_per_second p > 0.0)
  | Error msg -> fail msg);
  match Allocator.of_program ~total_banks:36 ~levels:[ 2; 2 ] program with
  | Error _ -> ()
  | Ok _ -> fail "mismatched level counts must be rejected"

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)
(* ------------------------------------------------------------------ *)

let test_pipeline_compile_to_binary () =
  let k =
    Dsl.kernel ~name:"tm"
      ~decls:
        [
          Dsl.matrix "W" ~rows:64 ~cols:256;
          Dsl.vector "x" ~len:256;
          Dsl.out_vector "out" ~len:64;
        ]
      [
        Dsl.for_store ~iterations:64 ~out:"out" (Dsl.l1_distance "W" "x");
        Dsl.argmin "out";
      ]
  in
  let r = ok_or_fail (Pipeline.compile_to_binary k) in
  check int "one task program" 1 (Program.length r.Pipeline.program);
  check int "48-bit task = 6 bytes" 6 (Bytes.length r.Pipeline.binary);
  check int "search space 8" 8 r.Pipeline.search_space;
  check bool "assembly mentions aSUBT" true
    (String.length r.Pipeline.assembly > 0);
  (* binary round-trips back to the same program *)
  match Program.of_binary ~name:r.Pipeline.program.Program.name r.Pipeline.binary with
  | Ok p -> check bool "binary roundtrip" true (Program.equal p r.Pipeline.program)
  | Error msg -> fail msg

let suite =
  [
    ("classes_of multiply", `Quick, test_classes_of_mul);
    ("classes_of L1", `Quick, test_classes_of_l1);
    ("classes_of Vo_none square", `Quick, test_classes_of_vo_none_square);
    ("classes_of invalid combo", `Quick, test_classes_of_invalid_combo);
    ("threshold code", `Quick, test_threshold_code);
    ("lower chunk fields", `Quick, test_lower_chunk_fields);
    ("lower segments", `Quick, test_lower_segments);
    ("lower chunked program", `Quick, test_lower_chunked_program);
    ("destination routing", `Quick, test_destination_routing);
    ("program of graph", `Quick, test_program_of_graph);
    ("Sakr bound formula", `Quick, test_bound_formula);
    ("bound decreases with bits", `Quick, test_bound_decreases_with_bits);
    ("min activation bits", `Quick, test_min_activation_bits);
    ("infeasible budget", `Quick, test_min_activation_bits_infeasible);
    ("stats of a trained MLP", `Quick, test_stats_of_trained_mlp);
    ("Eq. (3) predicate", `Quick, test_eq3_predicate);
    ("min swing monotone in N", `Quick, test_min_swing_monotone_in_n);
    ("min swing monotone in bits", `Quick, test_min_swing_monotone_in_bits);
    ("min swing impossible", `Quick, test_min_swing_none_when_impossible);
    ("optimize DNN graph", `Quick, test_optimize_graph_assigns_per_layer_swings);
    ("brute force picks cheapest", `Quick, test_optimize_single_picks_cheapest_passing);
    ("brute force fallback", `Quick, test_optimize_single_falls_back_to_max);
    ("search space sizes", `Quick, test_search_space);
    ("runtime dot vs reference", `Quick, test_runtime_dot_matches_reference);
    ("runtime L1 argmin vs reference", `Quick, test_runtime_l1_argmin_matches_reference);
    ("runtime L2 values", `Quick, test_runtime_l2_values);
    ("runtime threshold decision", `Quick, test_runtime_threshold_decision);
    ("runtime multibank long vector", `Quick, test_runtime_multibank_long_vector);
    ("runtime whole-array statistics", `Quick, test_runtime_mean_statistics);
    ("runtime DNN chain", `Quick, test_runtime_dnn_chain);
    ("runtime unbound arrays", `Quick, test_runtime_unbound_arrays_error);
    ("runtime ADC gain estimation", `Quick, test_runtime_adc_gain_estimation);
    ("runtime compare kernel", `Quick, test_runtime_compare_kernel);
    ("Eq. (3) empirical noise", `Slow, test_eq3_empirical_aggregate_noise);
    ("pipeline compile to binary", `Quick, test_pipeline_compile_to_binary);
    ("allocator parallel level", `Quick, test_allocator_parallel_level);
    ("allocator waves when full", `Quick, test_allocator_waves_when_full);
    ("allocator level sequencing", `Quick, test_allocator_levels_sequence);
    ("allocator rejects oversized", `Quick, test_allocator_rejects_oversized_task);
    ("allocator of_program", `Quick, test_allocator_of_program_level_counts);
    ("runtime chained unnormalized producer", `Quick,
      test_runtime_chained_unnormalized_producer);
    ("runtime segmented vector (X_PRD)", `Quick, test_runtime_segmented_vector);
    QCheck_alcotest.to_alcotest qcheck_random_kernels_match_reference;
  ]

let () = Alcotest.run "promise-compiler" [ ("compiler", suite) ]
