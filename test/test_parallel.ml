(* Tests for the multicore execution engine: the Domain work pool
   (ordering, exceptions, nesting, lifecycle), the split_n RNG contract
   behind per-bank streams, bit-for-bit determinism of parallel
   execution at machine and runtime level (QCheck, including faulty
   machines), and the content-addressed compilation cache. *)

module P = Promise
module Pool = P.Pool
module Arch = P.Arch
module Faults = Arch.Faults
module Rng = P.Analog.Rng
module Dsl = P.Ir.Dsl
module Rt = P.Compiler.Runtime
module Cache = P.Compiler.Pipeline.Cache
module E = P.Error

let check = Alcotest.check
let fail = Alcotest.fail
let bool = Alcotest.bool
let int = Alcotest.int

let fok = function Ok v -> v | Error e -> fail (E.to_string e)

(* ------------------------------------------------------------------ *)
(* Pool basics                                                         *)
(* ------------------------------------------------------------------ *)

let test_pool_ordering () =
  let arr = Array.init 100 (fun i -> i) in
  let expect = Array.map (fun i -> i * i) arr in
  check (Alcotest.array int) "sequential"
    expect
    (Pool.map_array Pool.sequential (fun i -> i * i) arr);
  Pool.with_pool ~jobs:4 (fun pool ->
      check bool "is_parallel" true (Pool.is_parallel pool);
      check int "jobs" 4 (Pool.jobs pool);
      check (Alcotest.array int) "parallel positional"
        expect
        (Pool.map_array pool (fun i -> i * i) arr);
      check (Alcotest.list int) "map_list"
        (Array.to_list expect)
        (Pool.map_list pool (fun i -> i * i) (Array.to_list arr));
      check (Alcotest.array int) "empty input" [||]
        (Pool.map_array pool (fun i -> i) [||]))

let test_pool_exception () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (match
         Pool.map_array pool
           (fun i -> if i = 37 then failwith "boom" else i)
           (Array.init 64 (fun i -> i))
       with
      | _ -> fail "expected the item exception to propagate"
      | exception Pool.Item_failure { index; exn = Failure msg; _ } ->
          check Alcotest.int "failing item index" 37 index;
          check Alcotest.string "message" "boom" msg
      | exception e -> fail ("unexpected exception " ^ Printexc.to_string e));
      (* the pool survives a failed batch *)
      check (Alcotest.array int) "usable after failure"
        [| 0; 2; 4 |]
        (Pool.map_array pool (fun i -> 2 * i) [| 0; 1; 2 |]))

let test_pool_nested () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let out =
        Pool.map_list pool
          (fun i ->
            (* a nested map must run inline, not deadlock on the workers *)
            List.fold_left ( + ) 0
              (Pool.map_list pool (fun j -> (10 * i) + j) [ 1; 2; 3 ]))
          [ 0; 1; 2; 3; 4; 5; 6; 7 ]
      in
      check (Alcotest.list int) "nested results"
        (List.map (fun i -> (30 * i) + 6) [ 0; 1; 2; 3; 4; 5; 6; 7 ])
        out)

let test_pool_lifecycle () =
  (match Pool.create ~jobs:0 with
  | _ -> fail "jobs:0 must be rejected"
  | exception Invalid_argument _ -> ());
  (match Pool.create ~jobs:65 with
  | _ -> fail "jobs:65 must be rejected"
  | exception Invalid_argument _ -> ());
  check bool "jobs:1 is sequential" false
    (Pool.is_parallel (Pool.create ~jobs:1));
  check bool "default_jobs is positive" true (Pool.default_jobs () >= 1);
  let pool = Pool.create ~jobs:2 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  match Pool.map_array pool (fun i -> i) [| 1 |] with
  | _ -> fail "map on a shut-down pool must be rejected"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* RNG stream splitting                                                *)
(* ------------------------------------------------------------------ *)

let test_split_n () =
  let a = Rng.create 2024 and b = Rng.create 2024 in
  let streams = Rng.split_n a 8 in
  let manual = Array.init 8 (fun _ -> Rng.split b) in
  Array.iteri
    (fun i s ->
      for draw = 0 to 15 do
        check Alcotest.int64
          (Printf.sprintf "stream %d draw %d" i draw)
          (Rng.bits64 manual.(i)) (Rng.bits64 s)
      done)
    streams;
  (* parents stay in lock-step too *)
  check Alcotest.int64 "parent advanced identically" (Rng.bits64 b)
    (Rng.bits64 a)

(* ------------------------------------------------------------------ *)
(* Machine-level determinism (QCheck)                                  *)
(* ------------------------------------------------------------------ *)

type case = {
  seed : int;
  banks : int;
  mb : int;  (** MULTI_BANK: group of [2^mb] banks *)
  rpt : int;
  shape : int;  (** which legal opcode composition *)
  faulty : bool;
}

let gen_case st =
  let open QCheck.Gen in
  let banks_log = int_range 1 3 st in
  {
    seed = int_bound 10_000 st;
    banks = 1 lsl banks_log;
    mb = int_range 1 banks_log st;
    rpt = int_bound 127 st;
    shape = int_bound 1 st;
    faulty = bool st;
  }

let print_case c =
  Printf.sprintf "{seed=%d; banks=%d; mb=%d; rpt=%d; shape=%d; faulty=%b}"
    c.seed c.banks c.mb c.rpt c.shape c.faulty

let task_of c =
  if c.shape = 0 then
    P.Isa.Task.make ~rpt_num:c.rpt ~multi_bank:c.mb
      ~class1:P.Isa.Opcode.C1_asubt
      ~class2:{ P.Isa.Opcode.asd = P.Isa.Opcode.Asd_absolute; avd = true }
      ~class3:P.Isa.Opcode.C3_adc ~class4:P.Isa.Opcode.C4_min ()
  else
    P.Isa.Task.make ~rpt_num:c.rpt ~multi_bank:c.mb
      ~class1:P.Isa.Opcode.C1_aread
      ~class2:{ P.Isa.Opcode.asd = P.Isa.Opcode.Asd_sign_mult; avd = true }
      ~class3:P.Isa.Opcode.C3_adc ~class4:P.Isa.Opcode.C4_accumulate ()

(* Two machines built from the same case are identical by construction:
   same seed, same split streams, same faults. *)
let machine_of c =
  let m =
    Arch.Machine.create
      {
        Arch.Machine.banks = c.banks;
        profile = Arch.Bank.Silicon;
        noise_seed = Some c.seed;
      }
  in
  if c.faulty then begin
    Arch.Bank.set_faults (Arch.Machine.bank m 0)
      (fok (Faults.with_stuck_lane Faults.none ~lane:7 ~code:42));
    Arch.Bank.set_faults (Arch.Machine.bank m 1)
      (fok (Faults.with_dead_lane Faults.none ~lane:3))
  end;
  m

let same_result (a : Arch.Machine.result) (b : Arch.Machine.result) =
  a.emitted = b.emitted && a.acc_out = b.acc_out && a.xreg_out = b.xreg_out
  && a.write_buffer = b.write_buffer
  && a.argext = b.argext && a.digital = b.digital

let qcheck_machine_determinism =
  QCheck.Test.make ~name:"execute jobs:1 == jobs:4 bit-for-bit" ~count:25
    (QCheck.make ~print:print_case gen_case) (fun c ->
      let launch = Arch.Machine.default_launch (task_of c) in
      let r_seq = Arch.Machine.execute_exn (machine_of c) launch in
      Pool.with_pool ~jobs:4 (fun pool ->
          let r_par = Arch.Machine.execute_exn ~pool (machine_of c) launch in
          same_result r_seq r_par))

(* ------------------------------------------------------------------ *)
(* Runtime-level determinism                                           *)
(* ------------------------------------------------------------------ *)

let tm_kernel =
  Dsl.kernel ~name:"tpar"
    ~decls:
      [
        Dsl.matrix "W" ~rows:32 ~cols:256;
        Dsl.vector "x" ~len:256;
        Dsl.out_vector "out" ~len:32;
      ]
    [
      Dsl.for_store ~iterations:32 ~out:"out" (Dsl.l1_distance "W" "x");
      Dsl.argmin "out";
    ]

let tm_bindings () =
  let rng = Rng.create 7001 in
  let w =
    Array.init 32 (fun _ ->
        Array.init 256 (fun _ -> Rng.uniform rng ~lo:(-0.9) ~hi:0.9))
  in
  let x = Array.init 256 (fun _ -> Rng.uniform rng ~lo:(-0.9) ~hi:0.9) in
  let b = Rt.bindings () in
  Rt.bind_matrix b "W" w;
  Rt.bind_vector b "x" x;
  b

let test_runtime_determinism () =
  let g = fok (P.compile tm_kernel) in
  let run ?pool () =
    let r = fok (Rt.run ?pool g (tm_bindings ())) in
    fok (Rt.final_output r)
  in
  let o_seq = run () in
  Pool.with_pool ~jobs:4 (fun pool ->
      let o_par = run ~pool () in
      check bool "values bit-identical" true (o_seq.Rt.values = o_par.Rt.values);
      check bool "decision identical" true
        (o_seq.Rt.decision = o_par.Rt.decision))

(* ------------------------------------------------------------------ *)
(* Compiled-task cache                                                 *)
(* ------------------------------------------------------------------ *)

let test_cache_hit () =
  Cache.clear ();
  let s0 = Cache.stats () in
  check int "clear zeroes entries" 0 s0.Cache.entries;
  let g1 = fok (P.compile tm_kernel) in
  let s1 = Cache.stats () in
  check bool "first compile misses" true (s1.Cache.misses > s0.Cache.misses);
  check bool "first compile populates" true (s1.Cache.entries > 0);
  let g2 = fok (P.compile tm_kernel) in
  let s2 = Cache.stats () in
  check bool "second compile hits" true (s2.Cache.hits > s1.Cache.hits);
  check int "no new entries on a hit" s1.Cache.entries s2.Cache.entries;
  check bool "cached graph structurally equal" true (g1 = g2);
  let p1 = fok (P.Compiler.Pipeline.codegen g1) in
  let p2 = fok (P.Compiler.Pipeline.codegen g2) in
  check bool "cached program structurally equal" true (p1 = p2)

let test_cache_disable () =
  Cache.clear ();
  Cache.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Cache.set_enabled true)
    (fun () ->
      check bool "disabled" false (Cache.is_enabled ());
      let g1 = fok (P.compile tm_kernel) in
      let g2 = fok (P.compile tm_kernel) in
      let s = Cache.stats () in
      check int "no entries while disabled" 0 s.Cache.entries;
      check int "no hits while disabled" 0 s.Cache.hits;
      check bool "recomputation agrees" true (g1 = g2))

let test_cache_concurrent () =
  (* hammer one key from four domains: every result must be the same
     graph, and the cache must end up with a consistent entry count *)
  Cache.clear ();
  Pool.with_pool ~jobs:4 (fun pool ->
      let graphs =
        Pool.map_list pool
          (fun _ -> fok (P.compile tm_kernel))
          [ 0; 1; 2; 3; 4; 5; 6; 7 ]
      in
      match graphs with
      | first :: rest ->
          List.iteri
            (fun i g ->
              check bool
                (Printf.sprintf "concurrent compile %d agrees" (i + 1))
                true (g = first))
            rest
      | [] -> fail "no results")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "ordering is positional" `Quick test_pool_ordering;
          Alcotest.test_case "item exceptions propagate" `Quick
            test_pool_exception;
          Alcotest.test_case "nested maps run inline" `Quick test_pool_nested;
          Alcotest.test_case "lifecycle and validation" `Quick
            test_pool_lifecycle;
        ] );
      ( "rng",
        [ Alcotest.test_case "split_n == n sequential splits" `Quick
            test_split_n ] );
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest qcheck_machine_determinism;
          Alcotest.test_case "runtime output identical under a pool" `Quick
            test_runtime_determinism;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit returns the structurally equal graph" `Quick
            test_cache_hit;
          Alcotest.test_case "disable stops caching" `Quick test_cache_disable;
          Alcotest.test_case "concurrent compilations agree" `Quick
            test_cache_concurrent;
        ] );
    ]
