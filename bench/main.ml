(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Promise.Report), then runs Bechamel
   micro-benchmarks over the building blocks — one group per
   table/figure so the wall-clock cost of each reproduction path is
   also measured. *)

module P = Promise
module Dsl = P.Ir.Dsl

let ppf = Format.std_formatter

(* Every elapsed interval below is measured on the monotonic clock —
   an NTP step mid-run must not corrupt a reported duration. *)
let now_s () = Int64.to_float (P.Clock.monotonic_ns ()) *. 1e-9

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let template_task =
  P.Isa.Task.make ~rpt_num:126 ~multi_bank:2
    ~class1:P.Isa.Opcode.C1_asubt
    ~class2:{ P.Isa.Opcode.asd = P.Isa.Opcode.Asd_absolute; avd = true }
    ~class3:P.Isa.Opcode.C3_adc ~class4:P.Isa.Opcode.C4_min ()

let template_asm = P.Isa.Asm.print_task template_task
let template_bits = P.Isa.Encode.to_int template_task

let tm_kernel =
  Dsl.kernel ~name:"tm"
    ~decls:
      [
        Dsl.matrix "W" ~rows:64 ~cols:256;
        Dsl.vector "x" ~len:256;
        Dsl.out_vector "out" ~len:64;
      ]
    [
      Dsl.for_store ~iterations:64 ~out:"out" (Dsl.l1_distance "W" "x");
      Dsl.argmin "out";
    ]

let tm_graph =
  match P.compile tm_kernel with Ok g -> g | Error e -> failwith (P.Error.to_string e)

let bench_machine = P.Arch.Machine.create P.Arch.Machine.default_config

let bench_bank_iteration =
  let bank = P.Arch.Machine.bank bench_machine 0 in
  let task =
    P.Isa.Task.make ~class1:P.Isa.Opcode.C1_aread
      ~class2:{ P.Isa.Opcode.asd = P.Isa.Opcode.Asd_sign_mult; avd = true }
      ~class3:P.Isa.Opcode.C3_adc ~class4:P.Isa.Opcode.C4_accumulate ()
  in
  fun () ->
    P.Arch.Bank.run_iteration bank ~task ~iteration:0 ~active_lanes:128
      ~adc_gain:8.0

let tm_rng = P.Analog.Rng.create 99

let tm_data =
  let candidates =
    Array.init 64 (fun _ ->
        Array.init 256 (fun _ -> P.Analog.Rng.uniform tm_rng ~lo:(-0.9) ~hi:0.9))
  in
  let x =
    Array.init 256 (fun _ -> P.Analog.Rng.uniform tm_rng ~lo:(-0.9) ~hi:0.9)
  in
  (candidates, x)

let run_tm_once machine =
  let candidates, x = tm_data in
  let b = P.Compiler.Runtime.bindings () in
  P.Compiler.Runtime.bind_matrix b "W" candidates;
  P.Compiler.Runtime.bind_vector b "x" x;
  match P.Compiler.Runtime.run ~machine tm_graph b with
  | Ok r -> r
  | Error e -> failwith (P.Error.to_string e)

let tm_silicon_machine =
  P.Arch.Machine.create
    { P.Arch.Machine.banks = 2; profile = P.Arch.Bank.Silicon; noise_seed = Some 5 }

let micro_tests =
  let open Bechamel in
  let t name f = Test.make ~name (Staged.stage f) in
  [
    (* figure 5: ISA paths *)
    t "isa/encode" (fun () -> P.Isa.Encode.to_int template_task);
    t "isa/decode" (fun () -> P.Isa.Encode.of_int template_bits);
    t "isa/asm-print" (fun () -> P.Isa.Asm.print_task template_task);
    t "isa/asm-parse" (fun () -> P.Isa.Asm.parse_task template_asm);
    (* fig 10/11: the simulator inner loops *)
    t "arch/bank-iteration-128" bench_bank_iteration;
    t "arch/tm-decision" (fun () -> run_tm_once tm_silicon_machine);
    (* fig 12: compiler paths *)
    t "compiler/frontend+match" (fun () -> P.compile tm_kernel);
    t "compiler/codegen" (fun () -> P.Compiler.Pipeline.codegen tm_graph);
    t "compiler/eq3-swing" (fun () ->
        P.Compiler.Swing_opt.min_swing_for ~bits:4 ~n:784);
    (* energy model evaluation *)
    t "energy/task-energy" (fun () -> P.Energy.Model.task_energy template_task);
  ]

let run_micro () =
  let open Bechamel in
  Format.fprintf ppf "@.== Bechamel micro-benchmarks ==@.";
  Format.fprintf ppf "   (ns per run, OLS estimate over the monotonic clock)@.";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name est ->
          Format.fprintf ppf "   %-32s %12.1f ns/run@." name
            (Analyze.OLS.estimates est
            |> Option.map (function v :: _ -> v | [] -> nan)
            |> Option.value ~default:nan))
        analyzed)
    micro_tests

(* ------------------------------------------------------------------ *)
(* Parallel-execution macro-benchmark                                    *)
(* ------------------------------------------------------------------ *)

(* Times the same campaign workload at jobs=1 and jobs=N and proves the
   outputs identical. The campaign is not memoized, so both timed runs
   do the full simulation; a warmup run populates the compiled-task
   cache first so neither timed run pays compilation.

   The measured job count is clamped to the host's usable cores:
   oversubscribed domains only add scheduling noise, and the reported
   "speedup" then understates the machine (the PR-2 anomaly). The JSON
   records both the requested and the effective count so CI artifacts
   from small runners stay interpretable. *)
let run_parallel_bench ~jobs:requested =
  let cores = Domain.recommended_domain_count () in
  let jobs = max 1 (min requested cores) in
  let scenarios = P.Campaign.quick_scenarios () in
  let benchmarks = [ P.Benchmarks.matched_filter () ] in
  let run ~jobs =
    P.Pool.with_pool ~jobs (fun pool ->
        let t0 = now_s () in
        let cells = P.Campaign.run_cells ~pool ~scenarios ~benchmarks () in
        (cells, now_s () -. t0))
  in
  ignore (run ~jobs:1);
  let cells1, t1 = run ~jobs:1 in
  let cells_n, tn = run ~jobs in
  let identical = cells1 = cells_n in
  let speedup = t1 /. tn in
  let note =
    if jobs < requested then
      Printf.sprintf
        ",\n  \"note\": \"requested %d jobs clamped to %d usable cores\""
        requested cores
    else ""
  in
  let oc = open_out "BENCH_parallel.json" in
  Printf.fprintf oc
    "{\n\
    \  \"workload\": \"fault campaign, %d quick scenarios x matched filter \
     (%d cells)\",\n\
    \  \"host_cores\": %d,\n\
    \  \"requested_jobs\": %d,\n\
    \  \"effective_jobs\": %d,\n\
    \  \"baseline\": { \"jobs\": 1, \"seconds\": %.3f },\n\
    \  \"parallel\": { \"jobs\": %d, \"seconds\": %.3f },\n\
    \  \"speedup\": %.3f,\n\
    \  \"identical_output\": %b%s\n\
     }\n"
    (List.length scenarios) (List.length cells1) cores requested jobs t1 jobs
    tn speedup identical note;
  close_out oc;
  Format.fprintf ppf
    "parallel bench: jobs=1 %.3fs, jobs=%d %.3fs (requested %d, host cores \
     %d), speedup %.2fx, identical_output=%b -> BENCH_parallel.json@."
    t1 jobs tn requested cores speedup identical;
  if not identical then (
    Format.fprintf ppf "FAIL: parallel output differs from sequential@.";
    exit 1)

(* ------------------------------------------------------------------ *)
(* Fused-kernel macro-benchmark                                          *)
(* ------------------------------------------------------------------ *)

(* Replays the matched-filter per-decision ISA program on two machines
   built from the same seed and data image — one stepping the scalar
   reference datapath, one the fused compiled kernels — and reports
   single-thread task throughput, Gc minor words per task, and a full
   output comparison (bit-identity makes the two runs produce the same
   emission stream draw for draw). *)
(* Deterministic data image shared by the kernels and batch benches:
   every bank row and X-REG slot filled from one seeded stream, so twin
   machines built from the same seed replay identical decisions. *)
let fill_machine machine =
  let lanes = P.Arch.Params.lanes in
  let rng = P.Analog.Rng.create 7 in
  let codes () = Array.init lanes (fun _ -> P.Analog.Rng.int rng 255 - 128) in
  for bi = 0 to P.Arch.Machine.n_banks machine - 1 do
    let bank = P.Arch.Machine.bank machine bi in
    for row = 0 to 63 do
      P.Arch.Bitcell_array.write (P.Arch.Bank.array bank) ~word_row:row
        (codes ())
    done;
    for i = 0 to P.Arch.Params.xreg_depth - 1 do
      P.Arch.Xreg.load (P.Arch.Bank.xreg bank) ~index:i (codes ())
    done
  done

let run_kernels_bench ~quick =
  let b = P.Benchmarks.matched_filter () in
  let program = b.P.Benchmarks.per_decision_program in
  let n_tasks = List.length program.P.Isa.Program.tasks in
  let reps = if quick then 300 else 2000 in
  let time_mode mode =
    let machine =
      P.Arch.Machine.create
        {
          P.Arch.Machine.banks = max 1 b.P.Benchmarks.banks;
          profile = P.Arch.Bank.Silicon;
          noise_seed = Some 42;
        }
    in
    fill_machine machine;
    let run () =
      match P.Arch.Machine.run_program ~kernel_mode:mode machine program with
      | Ok results -> results
      | Error e -> failwith (P.Error.to_string e)
    in
    (* warmup: populates the kernel cache so the timed loop measures the
       steady state both paths reach on a replay workload *)
    ignore (run ());
    let outputs = ref [] in
    let minor0 = Gc.minor_words () in
    let t0 = now_s () in
    for _ = 1 to reps do
      List.iter
        (fun r -> outputs := r.P.Arch.Machine.emitted :: !outputs)
        (run ())
    done;
    let seconds = ref (now_s () -. t0) in
    let minor = Gc.minor_words () -. minor0 in
    (* best of three timed windows: the replay is deterministic, so
       window-to-window variation is scheduler noise, not workload *)
    for _ = 1 to 2 do
      let t0 = now_s () in
      for _ = 1 to reps do
        ignore (run ())
      done;
      let s = now_s () -. t0 in
      if s < !seconds then seconds := s
    done;
    let total = float_of_int (reps * n_tasks) in
    ( !seconds,
      total /. !seconds,
      minor /. total,
      minor /. float_of_int reps,
      !outputs )
  in
  let ref_s, ref_tps, ref_mwpt, ref_mwpd, ref_out =
    time_mode P.Arch.Machine.Reference
  in
  let fus_s, fus_tps, fus_mwpt, fus_mwpd, fus_out =
    time_mode P.Arch.Machine.Fused
  in
  let identical = ref_out = fus_out in
  let speedup = ref_s /. fus_s in
  let oc = open_out "BENCH_kernels.json" in
  Printf.fprintf oc
    "{\n\
    \  \"workload\": \"matched filter (N=512) per-decision program replay, \
     single thread\",\n\
    \  \"reps\": %d,\n\
    \  \"tasks\": %d,\n\
    \  \"reference\": { \"seconds\": %.4f, \"tasks_per_sec\": %.1f, \
     \"minor_words_per_task\": %.1f, \"minor_words_per_decision\": %.1f },\n\
    \  \"fused\": { \"seconds\": %.4f, \"tasks_per_sec\": %.1f, \
     \"minor_words_per_task\": %.1f, \"minor_words_per_decision\": %.1f },\n\
    \  \"speedup\": %.3f,\n\
    \  \"identical_output\": %b\n\
     }\n"
    reps (reps * n_tasks) ref_s ref_tps ref_mwpt ref_mwpd fus_s fus_tps
    fus_mwpt fus_mwpd speedup identical;
  close_out oc;
  Format.fprintf ppf
    "kernel bench: reference %.1f tasks/s (%.0f minor words/task, %.0f \
     /decision), fused %.1f tasks/s (%.0f minor words/task, %.0f /decision), \
     speedup %.2fx, identical_output=%b -> BENCH_kernels.json@."
    ref_tps ref_mwpt ref_mwpd fus_tps fus_mwpt fus_mwpd speedup identical;
  if not identical then (
    Format.fprintf ppf "FAIL: fused output differs from reference@.";
    exit 1)

(* ------------------------------------------------------------------ *)
(* Batched-execution macro-benchmark                                     *)
(* ------------------------------------------------------------------ *)

(* Replays the matched-filter decision on twin machines — one decision
   at a time (the PR-3 fused baseline) against the batch engine — and
   proves the batched emission stream bitwise identical to the
   sequential one, including the ragged final batch. Three batched
   rows: the program-level path (run_program_batch), the
   zero-allocation serving path (execute_batch_into), and the same
   serving path noiseless (noise generation is drawn bit-identically
   in both paths, so on a single-core host it bounds the achievable
   wall-clock win; the noiseless row shows the engine without it). *)
let run_batch_bench ~quick ~batch =
  let b = P.Benchmarks.matched_filter () in
  let program = b.P.Benchmarks.per_decision_program in
  let n_tasks = List.length program.P.Isa.Program.tasks in
  (* +3 forces a ragged final batch for every even batch width *)
  let decisions = max batch ((if quick then 512 else 4096) + 3) in
  let mk ?(noise = Some 42) () =
    let machine =
      P.Arch.Machine.create
        {
          P.Arch.Machine.banks = max 1 b.P.Benchmarks.banks;
          profile = P.Arch.Bank.Silicon;
          noise_seed = noise;
        }
    in
    fill_machine machine;
    machine
  in
  let ok = function Ok v -> v | Error e -> failwith (P.Error.to_string e) in
  let outputs_of rs =
    List.map (fun r -> (r.P.Arch.Machine.emitted, r.P.Arch.Machine.argext)) rs
  in
  let measure f =
    let minor0 = Gc.minor_words () in
    let t0 = now_s () in
    let v = f () in
    let seconds = now_s () -. t0 in
    let minor = Gc.minor_words () -. minor0 in
    let tasks = float_of_int (decisions * n_tasks) in
    (v, seconds, tasks /. seconds, minor /. tasks)
  in
  (* 1. fused sequential: one run_program per decision (the PR-3 row) *)
  let seq_machine = mk () in
  ignore (ok (P.Arch.Machine.run_program ~kernel_mode:P.Arch.Machine.Fused seq_machine program));
  let seq_out, seq_s, seq_tps, seq_mwpt =
    measure (fun () ->
        let acc = ref [] in
        for _ = 1 to decisions do
          acc :=
            outputs_of
              (ok
                 (P.Arch.Machine.run_program ~kernel_mode:P.Arch.Machine.Fused seq_machine
                    program))
            :: !acc
        done;
        List.rev !acc)
  in
  (* 2. batched program path, chunked at the requested width *)
  let bat_machine = mk () in
  ignore (ok (P.Arch.Machine.run_program ~kernel_mode:P.Arch.Machine.Fused bat_machine program));
  let bat_out, bat_s, bat_tps, bat_mwpt =
    measure (fun () ->
        let acc = ref [] in
        let remaining = ref decisions in
        while !remaining > 0 do
          let n = min batch !remaining in
          let arr =
            ok
              (P.Arch.Machine.run_program_batch ~kernel_mode:P.Arch.Machine.Fused bat_machine
                 program ~batch:n)
          in
          Array.iter (fun rs -> acc := outputs_of rs :: !acc) arr;
          remaining := !remaining - n
        done;
        List.rev !acc)
  in
  let identical = seq_out = bat_out in
  (* 3. the zero-allocation serving path on the program's launch *)
  let task = List.hd program.P.Isa.Program.tasks in
  let launch = P.Arch.Machine.default_launch task in
  let epd =
    P.Arch.Machine.emissions_per_decision task
      ~th:launch.P.Arch.Machine.th
  in
  let out =
    Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout (batch * epd)
  in
  let chunked_into machine =
    let remaining = ref decisions in
    while !remaining > 0 do
      let n = min batch !remaining in
      ignore (ok (P.Arch.Machine.execute_batch_into machine launch ~batch:n ~out));
      remaining := !remaining - n
    done
  in
  let time_into ~noise =
    let machine = mk ~noise () in
    ignore (ok (P.Arch.Machine.execute_batch_into machine launch ~batch:1 ~out));
    let (), s, tps, mwpt = measure (fun () -> chunked_into machine) in
    (s, tps, mwpt)
  in
  let into_s, into_tps, into_mwpt = time_into ~noise:(Some 42) in
  let nless_s, nless_tps, nless_mwpt = time_into ~noise:None in
  (* serving-path identity: a fresh twin pair, chunked vs sequential *)
  let into_identical =
    let check_n = min decisions 259 in
    let m_into = mk () and m_seq = mk () in
    let got = ref [] in
    let remaining = ref check_n in
    while !remaining > 0 do
      let n = min batch !remaining in
      ignore (ok (P.Arch.Machine.execute_batch_into m_into launch ~batch:n ~out));
      for d = 0 to (n * epd) - 1 do
        got := out.{d} :: !got
      done;
      remaining := !remaining - n
    done;
    let want = ref [] in
    for _ = 1 to check_n do
      let r = P.Arch.Machine.execute_exn ~kernel_mode:P.Arch.Machine.Fused m_seq launch in
      List.iter
        (fun v -> want := v :: !want)
        (r.P.Arch.Machine.emitted @ r.P.Arch.Machine.acc_out)
    done;
    List.length !got = List.length !want
    && List.for_all2
         (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
         !got !want
  in
  let cores = Domain.recommended_domain_count () in
  let speedup = seq_s /. bat_s in
  let speedup_into = seq_s /. into_s in
  let oc = open_out "BENCH_batch.json" in
  Printf.fprintf oc
    "{\n\
    \  \"workload\": \"matched filter (N=512) per-decision replay, single \
     thread\",\n\
    \  \"host_cores\": %d,\n\
    \  \"jobs\": 1,\n\
    \  \"batch\": %d,\n\
    \  \"decisions\": %d,\n\
    \  \"fused_sequential\": { \"seconds\": %.4f, \"tasks_per_sec\": %.1f, \
     \"minor_words_per_task\": %.1f },\n\
    \  \"batched_program\": { \"seconds\": %.4f, \"tasks_per_sec\": %.1f, \
     \"minor_words_per_task\": %.1f },\n\
    \  \"batched_into\": { \"seconds\": %.4f, \"tasks_per_sec\": %.1f, \
     \"minor_words_per_task\": %.1f },\n\
    \  \"batched_into_noiseless\": { \"seconds\": %.4f, \"tasks_per_sec\": \
     %.1f, \"minor_words_per_task\": %.1f },\n\
    \  \"speedup_vs_fused\": %.3f,\n\
    \  \"speedup_into_vs_fused\": %.3f,\n\
    \  \"identical_output\": %b,\n\
    \  \"note\": \"noise variates are drawn bit-identically in both paths \
     (the identity contract), so at jobs=1 they bound the wall-clock win; \
     the batch engine's gain is allocation (minor words/task) and the \
     noiseless row\"\n\
     }\n"
    cores batch decisions seq_s seq_tps seq_mwpt bat_s bat_tps bat_mwpt into_s
    into_tps into_mwpt nless_s nless_tps nless_mwpt speedup speedup_into
    (identical && into_identical);
  close_out oc;
  Format.fprintf ppf
    "batch bench (batch=%d, %d decisions): fused %.1f tasks/s (%.0f minor \
     words/task), batched %.1f tasks/s (%.0f), into %.1f tasks/s (%.1f), \
     noiseless into %.1f tasks/s, speedup %.2fx, identical_output=%b -> \
     BENCH_batch.json@."
    batch decisions seq_tps seq_mwpt bat_tps bat_mwpt into_tps into_mwpt
    nless_tps speedup
    (identical && into_identical);
  if not (identical && into_identical) then (
    Format.fprintf ppf "FAIL: batched output differs from sequential@.";
    exit 1)

(* ------------------------------------------------------------------ *)
(* Main                                                                 *)
(* ------------------------------------------------------------------ *)

type cli = {
  jobs : int option;
  quick : bool;
  parallel : bool;
  kernels : bool;
  batch : int option;
  checkpoint : string option;
  resume : bool;
  incidents : string option;
  names : string list;
}

(* every flag value goes through the typed validators: `bench --jobs
   fuor` dies with the same structured error a bad PROMISE_JOBS does,
   instead of an int_of_string backtrace *)
let parse_args args =
  let ( let* ) = Result.bind in
  let missing flag =
    Error
      (P.Error.make ~layer:"cli" ~code:P.Error.Invalid_operand
         (flag ^ " needs a value")
         ~context:[ ("flag", flag) ])
  in
  let rec parse acc = function
    | [] -> Ok { acc with names = List.rev acc.names }
    | "--quick" :: rest -> parse { acc with quick = true } rest
    | "--parallel" :: rest -> parse { acc with parallel = true } rest
    | "--kernels" :: rest -> parse { acc with kernels = true } rest
    | [ "--jobs" ] | [ "-j" ] -> missing "--jobs"
    | ("--jobs" | "-j") :: n :: rest ->
        let* n = P.Validate.int_in_range ~what:"--jobs" ~min:1 ~max:64 n in
        parse { acc with jobs = Some n } rest
    | [ "--batch" ] -> missing "--batch"
    | "--batch" :: n :: rest ->
        let* n = P.Validate.int_in_range ~what:"--batch" ~min:1 ~max:4096 n in
        parse { acc with batch = Some n } rest
    | [ "--checkpoint" ] -> missing "--checkpoint"
    | "--checkpoint" :: file :: rest ->
        parse { acc with checkpoint = Some file } rest
    | "--resume" :: rest -> parse { acc with resume = true } rest
    | [ "--incidents" ] -> missing "--incidents"
    | "--incidents" :: file :: rest ->
        parse { acc with incidents = Some file } rest
    | s :: rest -> parse { acc with names = s :: acc.names } rest
  in
  let* cli =
    parse
      {
        jobs = None;
        quick = false;
        parallel = false;
        kernels = false;
        batch = None;
        checkpoint = None;
        resume = false;
        incidents = None;
        names = [];
      }
      args
  in
  let* () = P.check_env () in
  if cli.resume && cli.checkpoint = None then
    Error
      (P.Error.make ~layer:"cli" ~code:P.Error.Invalid_operand
         "--resume needs --checkpoint FILE to resume from"
         ~context:[ ("flag", "--resume") ])
  else Ok cli

(* The report part of the harness runs supervised: `bench --checkpoint
   state.ckpt` survives SIGINT/SIGTERM mid-evaluation and `--resume`
   picks up with the already-rendered sections from the checkpoint —
   the printed report stays byte-identical to an uninterrupted run. *)
let run_report cli =
  let jobs = Option.value cli.jobs ~default:1 in
  Format.fprintf ppf
    "PROMISE reproduction harness - every table and figure of the \
     evaluation@.";
  let names =
    match cli.names with
    | [] -> if cli.quick then P.Report.quick_names () else P.Report.all_names ()
    | names ->
        List.filter
          (fun name ->
            let known =
              List.exists (fun (n, _, _) -> n = name) P.Report.sections
            in
            if not known then
              Format.fprintf ppf "unknown section %S; available: %s@." name
                (String.concat ", "
                   (List.map (fun (n, _, _) -> n) P.Report.sections));
            known)
          names
  in
  let incidents =
    match cli.incidents with
    | None -> Ok P.Incident.null
    | Some path -> P.Incident.to_file path
  in
  match incidents with
  | Error e ->
      prerr_endline (P.Error.to_string e);
      exit 2
  | Ok incidents ->
      let stop = P.Supervisor.install_stop_signals () in
      let sup = P.Supervisor.config ~incidents () in
      let session =
        P.Supervisor.session ~sup ?checkpoint:cli.checkpoint
          ~resume:cli.resume ~stop ()
      in
      let outcome =
        P.Pool.with_pool ~jobs (fun pool ->
            P.Report.run_sections_supervised ~pool session ppf names)
      in
      Format.pp_print_flush ppf ();
      P.Incident.close incidents;
      (match outcome with
      | P.Report.Sections_interrupted { completed; total } ->
          Format.eprintf
            "interrupted at %d/%d sections; resume with: bench --checkpoint \
             %s --resume@."
            completed total
            (Option.value cli.checkpoint ~default:"FILE");
          exit
            (match P.Supervisor.stop_signal stop with
            | Some s when s = Sys.sigterm -> 143
            | _ -> 130)
      | P.Report.Sections_rejected e ->
          prerr_endline (P.Error.to_string e);
          exit 2
      | P.Report.Sections_done { quarantined } ->
          if quarantined > 0 then
            Format.eprintf "%d sections were quarantined@." quarantined);
      run_micro ();
      Format.fprintf ppf "@.done.@."

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match parse_args args with
  | Error e ->
      prerr_endline (P.Error.to_string e);
      exit 2
  | Ok cli -> (
      match cli.batch with
      | Some batch -> run_batch_bench ~quick:cli.quick ~batch
      | None ->
          if cli.kernels then run_kernels_bench ~quick:cli.quick
          else if cli.parallel then
            run_parallel_bench ~jobs:(Option.value cli.jobs ~default:4)
          else run_report cli)
