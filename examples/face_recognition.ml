(* Face recognition by template matching — the paper's §3.4 running
   example, end to end.

     dune exec examples/face_recognition.exe

   64 synthetic face identities (16x16) are stored as W; each query is
   matched with the L1-distance kernel and the argmin decision fused
   into the Class-4 min operation, so the machine itself returns the
   recognized identity. *)

module P = Promise
module Dsl = P.Ir.Dsl
module Rt = P.Compiler.Runtime
module Rng = P.Analog.Rng

let width = 16
let height = 16
let n_identities = 64
let n_queries = 20

let () =
  let rng = Rng.create 2024 in
  let faces =
    P.Ml.Dataset.Faces.identities rng ~width ~height ~n:n_identities
  in
  let dims = width * height in

  let kernel =
    Dsl.kernel ~name:"face_recognition"
      ~decls:
        [
          Dsl.matrix "faces" ~rows:n_identities ~cols:dims;
          Dsl.vector "query" ~len:dims;
          Dsl.out_vector "distances" ~len:n_identities;
        ]
      [
        Dsl.for_store ~iterations:n_identities ~out:"distances"
          (Dsl.l1_distance "faces" "query");
        Dsl.argmin "distances";
      ]
  in
  let graph = match P.compile kernel with Ok g -> g | Error e -> failwith (P.Error.to_string e) in
  Format.printf "%a@." P.Ir.Graph.pp graph;

  let machine =
    P.Arch.Machine.create
      { P.Arch.Machine.banks = 2; profile = P.Arch.Bank.Silicon;
        noise_seed = Some 7 }
  in
  let correct = ref 0 in
  for q = 0 to n_queries - 1 do
    let identity = Rng.int rng n_identities in
    let query = P.Ml.Dataset.Faces.query rng ~width ~height faces ~identity in
    let bindings = Rt.bindings () in
    Rt.bind_matrix bindings "faces" faces;
    Rt.bind_vector bindings "query" query;
    match Rt.run ~machine graph bindings with
    | Error e -> failwith (P.Error.to_string e)
    | Ok r -> (
        match Rt.final_output r with
        | Ok { Rt.decision = Some (found, distance); _ } ->
            let ok = found = identity in
            if ok then incr correct;
            Printf.printf "query %2d: true id %2d -> recognized %2d (L1 %.2f) %s\n"
              q identity found distance
              (if ok then "ok" else "MISS")
        | Ok _ -> failwith "no decision"
        | Error e -> failwith (P.Error.to_string e))
  done;
  Printf.printf "recognition accuracy: %d/%d\n" !correct n_queries;

  (* what did it cost? *)
  let trace = P.Arch.Machine.trace machine in
  let energy = P.Energy.Model.trace_energy trace in
  Printf.printf "total: %d task launches, %.1f nJ, %.1f us simulated\n"
    (List.length (P.Arch.Trace.records_in_order trace))
    (P.Energy.Model.total energy /. 1e3)
    (P.Arch.Trace.elapsed_ns trace /. 1e3)
