(* Driving PROMISE at the ISA level, no compiler: write assembly,
   assemble it to 48-bit Task words, load data by hand, and execute the
   raw program with default launch semantics.

     dune exec examples/raw_isa.exe

   This is the path `bin/promise_asm.exe` serves; it shows what the
   compiler's runtime does for you (scales, gains, layout). *)

module P = Promise
module Machine = P.Arch.Machine
module Layout = P.Arch.Layout

let source =
  "; nearest-of-8 by L1 distance, one bank, Class-4 min carries argmin\n\
   task c1=aSUBT c2=absolute.avd c3=ADC c4=min rpt=7 swing=7\n"

let () =
  (* 1. assemble *)
  let program =
    match P.Isa.Program.of_asm ~name:"nearest" source with
    | Ok p -> p
    | Error msg -> failwith msg
  in
  print_endline "assembled:";
  List.iter
    (fun t -> Printf.printf "  0x%s  %s\n" (P.Isa.Encode.hex_of_task t)
        (P.Isa.Asm.print_task t))
    program.P.Isa.Program.tasks;

  (* 2. hand-load eight candidate vectors and the query *)
  let machine = Machine.create (Machine.ideal_config ~banks:1) in
  let plan = Layout.plan_exn ~vector_len:32 ~rows:8 () in
  let rng = P.Analog.Rng.create 3030 in
  let candidates =
    Array.init 8 (fun _ ->
        Array.init 32 (fun _ -> P.Analog.Rng.int rng 200 - 100))
  in
  let target = 5 in
  let query = Array.copy candidates.(target) in
  Machine.load_weights machine ~group:0 ~base:0 ~plan candidates;
  Machine.load_x machine ~group:0 ~xreg_base:0 ~plan query;

  (* 3. execute the raw program *)
  (match Machine.run_program machine program with
  | Ok [ result ] -> (
      match result.Machine.argext with
      | Some (i, d) ->
          Printf.printf "nearest candidate: %d (true %d), distance %.3f\n" i
            target d
      | None -> failwith "no decision")
  | Ok _ -> failwith "one result expected"
  | Error e -> failwith (P.Error.to_string e));

  (* 4. the cycle/energy story of what just ran *)
  let trace = Machine.trace machine in
  Printf.printf "cycles: %d, energy: %.1f pJ\n"
    (P.Arch.Trace.total_cycles trace)
    (P.Energy.Model.total (P.Energy.Model.trace_energy trace));
  print_string (P.Arch.Trace.to_csv trace)
