(* Digit recognition with a small DNN, compiled at an error tolerance.

     dune exec examples/digit_dnn.exe

   Trains a 784-128-10 perceptron on synthetic digits, compiles it into
   a two-Task PROMISE pipeline, estimates the Sakr back-propagation
   statistics (E_A, E_W), runs the analytic energy optimization at
   p_m = 1%, and compares accuracy and energy at maximum vs optimized
   swings. *)

module P = Promise
module Dsl = P.Ir.Dsl
module Rt = P.Compiler.Runtime
module Rng = P.Analog.Rng
module Mlp = P.Ml.Mlp

let () =
  (* 1. train the float model *)
  let rng = Rng.create 99 in
  let data = P.Ml.Dataset.Digits.generate rng ~width:28 ~height:28 ~n:800 in
  let train, test = P.Ml.Dataset.train_test_split data ~test_fraction:0.1 in
  let model = Mlp.create rng ~sizes:[ 784; 128; 10 ] ~hidden_activation:Mlp.Sigmoid in
  Mlp.train model rng ~data:train ~epochs:3 ~lr:0.15;
  Printf.printf "float model accuracy: %.3f\n" (Mlp.accuracy model test);

  (* 2. the two-layer kernel; the output decision fuses into Class-4 max *)
  let kernel =
    Dsl.kernel ~name:"digit_dnn"
      ~decls:
        [
          Dsl.vector "x" ~len:784;
          Dsl.matrix "W0" ~rows:128 ~cols:784;
          Dsl.out_vector "h" ~len:128;
          Dsl.matrix "W1" ~rows:10 ~cols:128;
          Dsl.out_vector "y" ~len:10;
        ]
      [
        Dsl.for_store ~iterations:128 ~out:"h" (Dsl.sigmoid (Dsl.dot "W0" "x"));
        Dsl.for_store ~iterations:10 ~out:"y" (Dsl.dot "W1" "h");
        Dsl.argmax "y";
      ]
  in
  let graph = match P.compile kernel with Ok g -> g | Error e -> failwith (P.Error.to_string e) in

  (* 3. energy optimization: tolerance -> bits -> per-layer swings *)
  let stats = P.Compiler.Precision.of_mlp model (Array.sub test 0 40) in
  Format.printf "back-prop statistics: %a@." P.Compiler.Precision.pp_stats stats;
  let optimized, bits =
    match P.Compiler.Pipeline.optimize graph ~stats ~pm:0.01 with
    | Ok r -> r
    | Error e -> failwith (P.Error.to_string e)
  in
  Printf.printf "precision target: %d bits\n" bits;

  (* 4. run the test set at both configurations *)
  let accuracy_of graph =
    let machine =
      P.Arch.Machine.create
        { P.Arch.Machine.banks = 8; profile = P.Arch.Bank.Silicon;
          noise_seed = Some 11 }
    in
    let correct = ref 0 in
    Array.iter
      (fun s ->
        let b = Rt.bindings () in
        Rt.bind_matrix b "W0" model.Mlp.layers.(0).Mlp.weights;
        Rt.bind_matrix b "W1" model.Mlp.layers.(1).Mlp.weights;
        Rt.bind_vector b "x" s.P.Ml.Dataset.features;
        match Rt.run ~machine graph b with
        | Error e -> failwith (P.Error.to_string e)
        | Ok r -> (
            match Rt.final_output r with
            | Ok { Rt.decision = Some (cls, _); _ } ->
                if cls = s.P.Ml.Dataset.label then incr correct
            | _ -> failwith "no decision"))
      test;
    float_of_int !correct /. float_of_int (Array.length test)
  in
  let describe name graph =
    let swings =
      List.map
        (fun id -> (P.Ir.Graph.task graph id).P.Ir.Abstract_task.swing)
        (P.Ir.Graph.topological_order graph)
    in
    let energy =
      match P.Compiler.Pipeline.codegen graph with
      | Ok p -> P.Energy.Model.total (P.Energy.Model.program_energy_steady p)
      | Error e -> failwith (P.Error.to_string e)
    in
    Printf.printf "%s: swings (%s), accuracy %.3f, %.1f nJ/decision\n" name
      (String.concat "," (List.map string_of_int swings))
      (accuracy_of graph) (energy /. 1e3)
  in
  describe "max swing " graph;
  describe "optimized " optimized
