(* Gunshot detection with a matched filter (Table 2's event-detection
   workload).

     dune exec examples/gunshot_detector.exe

   The filter weights (the time-reversed impulse template) are stored
   in the bit-cell array; every incoming 512-sample audio window is
   correlated in one Task whose Class-4 threshold op emits the
   detection decision directly. *)

module P = Promise
module Dsl = P.Ir.Dsl
module Rt = P.Compiler.Runtime
module Rng = P.Analog.Rng

let n = 512

let () =
  let rng = Rng.create 4242 in
  let template = P.Ml.Dataset.Gunshot.template rng ~len:n in

  (* calibrate the decision threshold on labeled windows *)
  let calibration = P.Ml.Dataset.Gunshot.windows rng ~template ~n:200 ~snr:1.0 in
  let threshold =
    P.Ml.Matched_filter.calibrate_threshold ~template calibration
  in
  Printf.printf "calibrated threshold: %.3f\n" threshold;

  let kernel =
    Dsl.kernel ~name:"gunshot"
      ~decls:
        [
          Dsl.matrix "filter" ~rows:1 ~cols:n;
          Dsl.vector "window" ~len:n;
          Dsl.out_vector "detect" ~len:1;
        ]
      [
        Dsl.for_store ~iterations:1 ~out:"detect"
          (Dsl.sthreshold threshold (Dsl.dot "filter" "window"));
      ]
  in
  let graph = match P.compile kernel with Ok g -> g | Error e -> failwith (P.Error.to_string e) in

  let machine =
    P.Arch.Machine.create
      { P.Arch.Machine.banks = 4; profile = P.Arch.Bank.Silicon;
        noise_seed = Some 3 }
  in
  let windows = P.Ml.Dataset.Gunshot.windows rng ~template ~n:40 ~snr:1.0 in
  let tp = ref 0 and tn = ref 0 and fp = ref 0 and fn = ref 0 in
  Array.iter
    (fun w ->
      let bindings = Rt.bindings () in
      Rt.bind_matrix bindings "filter" [| template |];
      Rt.bind_vector bindings "window" w.P.Ml.Dataset.features;
      match Rt.run ~machine graph bindings with
      | Error e -> failwith (P.Error.to_string e)
      | Ok r -> (
          match Rt.final_output r with
          | Ok o ->
              let detected = o.Rt.values.(0) > 0.5 in
              (match (detected, w.P.Ml.Dataset.label = 1) with
              | true, true -> incr tp
              | false, false -> incr tn
              | true, false -> incr fp
              | false, true -> incr fn)
          | Error e -> failwith (P.Error.to_string e)))
    windows;
  Printf.printf "detections: %d true-positive, %d true-negative, %d false-positive, %d missed\n"
    !tp !tn !fp !fn;
  Printf.printf "accuracy: %.1f%%\n"
    (100.0 *. float_of_int (!tp + !tn) /. float_of_int (Array.length windows));

  (* energy per decision at two swings: the accuracy-energy knob *)
  List.iter
    (fun swing ->
      let g = P.Ir.Graph.map_tasks graph (fun _ t -> P.Ir.Abstract_task.with_swing t swing) in
      match P.Compiler.Pipeline.codegen g with
      | Ok program ->
          Printf.printf "swing %d: %.0f pJ per window\n" swing
            (P.Energy.Model.total (P.Energy.Model.program_energy_steady program))
      | Error e -> failwith (P.Error.to_string e))
    [ 7; 0 ]
