(* k-means with the assignment step offloaded to PROMISE.

     dune exec examples/kmeans_clustering.exe

   The paper's §3.3 notes that k-means is inefficient on PROMISE: the
   assignment step maps perfectly (L2 distances to k centroids, argmin
   fused in Class-4), but the centroid update needs the element-wise
   write-back operation the ISA omits, so every Lloyd iteration
   round-trips through the host to rewrite W. This example runs that
   hybrid loop and prices the round trip against the hypothetical
   extended ISA (Promise.Isa.Extensions). *)

module P = Promise
module Dsl = P.Ir.Dsl
module Rt = P.Compiler.Runtime
module Rng = P.Analog.Rng
module Kmeans = P.Ml.Kmeans

let k = 4
let dims = 32
let n = 120
let lloyd_iterations = 6

let () =
  (* blobs around k true centers *)
  let rng = Rng.create 777 in
  let centers =
    Array.init k (fun _ ->
        Array.init dims (fun _ -> Rng.uniform rng ~lo:(-0.6) ~hi:0.6))
  in
  let data =
    Array.init n (fun i ->
        let c = centers.(i mod k) in
        Array.map (fun v -> v +. Rng.gaussian_scaled rng ~mu:0.0 ~sigma:0.08) c)
  in

  (* the PROMISE assignment kernel: distances to the k current centroids *)
  let kernel =
    Dsl.kernel ~name:"kmeans_assign"
      ~decls:
        [
          Dsl.matrix "centroids" ~rows:k ~cols:dims;
          Dsl.vector "sample" ~len:dims;
          Dsl.out_vector "distances" ~len:k;
        ]
      [
        Dsl.for_store ~iterations:k ~out:"distances"
          (Dsl.l2_distance "centroids" "sample");
        Dsl.argmin "distances";
      ]
  in
  let graph = match P.compile kernel with Ok g -> g | Error e -> failwith (P.Error.to_string e) in
  let machine =
    P.Arch.Machine.create
      { P.Arch.Machine.banks = 1; profile = P.Arch.Bank.Silicon;
        noise_seed = Some 13 }
  in
  let assign_on_promise centroids sample =
    let b = Rt.bindings () in
    Rt.bind_matrix b "centroids" centroids;
    Rt.bind_vector b "sample" sample;
    match Rt.run ~machine graph b with
    | Error e -> failwith (P.Error.to_string e)
    | Ok r -> (
        match Rt.final_output r with
        | Ok { Rt.decision = Some (c, _); _ } -> c
        | _ -> failwith "no decision")
  in

  (* hybrid Lloyd loop: assignment on PROMISE, update on the host *)
  let model = ref (Kmeans.fit rng ~data ~k ~iterations:0) in
  for it = 1 to lloyd_iterations do
    let assignments =
      Array.map (assign_on_promise !model.Kmeans.centroids) data
    in
    let centroids, _empty = Kmeans.update ~k ~data ~assignments in
    model := { Kmeans.centroids };
    Printf.printf "iteration %d: inertia %.3f\n" it (Kmeans.inertia !model data)
  done;

  (* agreement with the all-float reference *)
  let reference = Kmeans.fit (Rng.create 777) ~data ~k ~iterations:lloyd_iterations in
  Printf.printf "PROMISE-assisted inertia %.3f vs float reference %.3f\n"
    (Kmeans.inertia !model data)
    (Kmeans.inertia reference data);

  (* what would the omitted write-back op cost the rest of the ISA? *)
  let open P.Isa.Extensions in
  Printf.printf
    "\n§3.3: supporting %s would set the worst-case TP to %d cycles\n"
    (name Elementwise_writeback)
    (worst_case_tp_with [ Elementwise_writeback ]);
  List.iter
    (fun (kernel_name, tp) ->
      Printf.printf "  %-18s (TP %2d) would slow down %.2fx\n" kernel_name tp
        (tp_inflation [ Elementwise_writeback ] ~task_tp:tp))
    [ ("k-NN L1", 7); ("Temp. Match. L2", 8); ("DNN layer", 14) ]
