(* Quickstart: compile a dot-product kernel for PROMISE and run it.

     dune exec examples/quickstart.exe

   The kernel is written in the tensor DSL (the repository's stand-in
   for the paper's Julia frontend), lowered to SSA, matched by the
   PROMISE pass into an AbstractTask, code-generated into one 48-bit
   Task, and executed on a simulated 1-bank machine. *)

module P = Promise
module Dsl = P.Ir.Dsl
module Rt = P.Compiler.Runtime

let () =
  (* 1. the kernel: out[j] = W[j] . x for 4 weight rows of 16 elements *)
  let kernel =
    Dsl.kernel ~name:"quickstart"
      ~decls:
        [
          Dsl.matrix "W" ~rows:4 ~cols:16;
          Dsl.vector "x" ~len:16;
          Dsl.out_vector "out" ~len:4;
        ]
      [ Dsl.for_store ~iterations:4 ~out:"out" (Dsl.dot "W" "x") ]
  in

  (* 2. compile: DSL -> SSA -> PROMISE pass -> IR -> ISA *)
  let report =
    match P.compile_to_binary kernel with
    | Ok r -> r
    | Error e -> failwith (P.Error.to_string e)
  in
  print_endline "compiled Task:";
  print_string ("  " ^ report.P.Compiler.Pipeline.assembly);
  Printf.printf "  binary: %d byte(s)\n"
    (Bytes.length report.P.Compiler.Pipeline.binary);

  (* 3. data *)
  let w =
    Array.init 4 (fun r ->
        Array.init 16 (fun c -> 0.05 *. float_of_int (r + 1) *. sin (float_of_int c)))
  in
  let x = Array.init 16 (fun c -> 0.5 *. cos (float_of_int c /. 3.0)) in
  let bindings = Rt.bindings () in
  Rt.bind_matrix bindings "W" w;
  Rt.bind_vector bindings "x" x;

  (* 4. run on a simulated machine (silicon profile: analog noise on) *)
  let machine = P.Arch.Machine.create P.Arch.Machine.default_config in
  let result =
    match P.run ~machine kernel bindings with
    | Ok r -> r
    | Error e -> failwith (P.Error.to_string e)
  in
  let out =
    match Rt.final_output result with
    | Ok o -> o.Rt.values
    | Error e -> failwith (P.Error.to_string e)
  in

  (* 5. compare with the float reference *)
  let reference = P.Ml.Linalg.mat_vec w x in
  print_endline "results (PROMISE vs float reference):";
  Array.iteri
    (fun i v -> Printf.printf "  out[%d] = %+.4f   (ref %+.4f)\n" i v reference.(i))
    out;

  (* 6. energy/latency of the decision *)
  let program = report.P.Compiler.Pipeline.program in
  let e = P.energy_report program in
  Printf.printf "energy: %.1f pJ, steady-state delay: %d ns\n"
    (P.Energy.Model.total e)
    (P.Energy.Model.program_steady_cycles program)
