(** Fault-injection campaign: fault scenarios × fast benchmarks.

    For every (scenario, benchmark) cell the campaign measures
    - {e detection}: a BIST run ({!Promise_arch.Selftest}) on a probe
      machine carrying the injected faults, validated against the
      injection ground truth;
    - {e faulted accuracy}: the benchmark with the faults and no
      countermeasures;
    - {e recovered accuracy}: the benchmark re-run under the recovery
      the BIST report implies ({!Promise_compiler.Runtime.recovery_of_report}
      — lane sparing, bank exclusion, canary retry/fallback).

    The campaign is deterministic (fixed seeds) and prints one table
    plus summary rates. *)

type scenario = {
  sname : string;
  kind : string;  (** fault-kind tag, one per distinct model *)
  inject : Promise_arch.Machine.t -> unit;
  expected : (int * (Promise_arch.Selftest.kind -> bool)) list;
      (** (bank, predicate) pairs the BIST report must satisfy *)
}

val quick_scenarios : unit -> scenario list
(** Five scenarios, one per hard-fault kind: stuck lane, dead lanes,
    dead bank, ADC offset, dead ADC units. *)

val all_scenarios : unit -> scenario list
(** {!quick_scenarios} plus X-REG transients, swing drift and excess
    leakage — eight scenarios, eight distinct fault kinds. *)

type cell = {
  benchmark : string;
  scenario : string;
  detected : bool;
  baseline : float;
  faulted : float;
  recovered : float;
  residual : float;  (** baseline − recovered, clamped at 0 *)
  recovered_ok : bool;
}

val residual_budget : float
(** Accuracy loss a recovered part may keep (0.06). *)

val fast_benchmarks : unit -> Benchmarks.t list
(** Matched filter, template matching L1, k-NN L1. *)

val run_cells :
  ?pool:Promise_core.Pool.t ->
  ?batch:int ->
  scenarios:scenario list ->
  benchmarks:Benchmarks.t list ->
  unit ->
  cell list
(** Cells are independent and fan out across [pool] (baselines first,
    then the scenario × benchmark grid); the result list is identical
    at any job count. [batch] (default 1) scores that many batched
    noise realizations per query ({!Benchmarks}); batch 1 is
    bit-identical to the historical campaign. *)

val print_cells : Format.formatter -> cell list -> unit

val summarize : cell list -> float * float * float
(** (detection rate, recovery rate, mean residual loss). *)

(** [report ?quick ?pool ppf] — run the campaign and print the table;
    [true] when detection and recovery rates are both 100%. [quick]
    restricts to {!quick_scenarios}; [pool] fans the cells out across
    domains. *)
val report : ?quick:bool -> ?pool:Promise_core.Pool.t -> Format.formatter -> bool

(** {2 Supervised, checkpointed execution}

    The same campaign as a resumable item stream: cells run under a
    {!Promise_core.Supervisor.session} (deadline, bounded retry,
    quarantine, incident log), progress is checkpointed atomically
    after every chunk, SIGINT/SIGTERM (via the session's stop flag)
    flushes a final checkpoint instead of losing the run, and a rerun
    with [resume] picks up exactly where the previous process died.
    Both paths are deterministic: an interrupted-and-resumed run
    assembles the same cell list, bit for bit, as an uninterrupted one
    at the same job count. *)

type cell_result = {
  r_benchmark : string;
  r_scenario : string;
  r_cell : (cell, Promise_core.Error.t) result;
      (** [Error] = the cell was quarantined (deadline or retry budget
          exhausted); its siblings are unaffected *)
}

type outcome =
  | Completed of cell_result list  (** every cell accounted for *)
  | Interrupted of { completed : int; total : int }
      (** the stop flag was raised; progress is in the checkpoint *)
  | Rejected of Promise_core.Error.t
      (** the checkpoint belongs to a different run configuration *)

val config_digest :
  ?batch:int ->
  scenarios:scenario list ->
  benchmarks:Benchmarks.t list ->
  unit ->
  string
(** The digest guarding campaign checkpoints: scenario names/kinds,
    benchmark shorts, the residual budget, the batch width, the
    library version. A checkpoint written at one batch width is a
    stale-checkpoint rejection at any other. *)

val run_cells_supervised :
  ?pool:Promise_core.Pool.t ->
  ?batch:int ->
  ?on_checkpoint:(completed:int -> total:int -> unit) ->
  Promise_core.Supervisor.session ->
  scenarios:scenario list ->
  benchmarks:Benchmarks.t list ->
  unit ->
  outcome
(** Supervised {!run_cells}. Baselines are supervised items too (a
    quarantined baseline cascades to its benchmark's cells); the grid
    then runs in pool-width chunks with a checkpoint flush (and
    [on_checkpoint] callback) after each. A completed run removes its
    checkpoint. *)

val print_cell_results : Format.formatter -> cell_result list -> unit
(** The {!print_cells} table with QUARANTINED rows for [Error] cells. *)

type supervised_summary = {
  cells : int;
  quarantined : int;
  undetected : int;  (** completed cells whose BIST missed a fault *)
  residual_errors : int;
      (** quarantined cells + completed cells over the residual budget *)
}

val summarize_results : cell_result list -> supervised_summary

val report_supervised :
  ?quick:bool ->
  ?pool:Promise_core.Pool.t ->
  ?on_checkpoint:(completed:int -> total:int -> unit) ->
  Promise_core.Supervisor.session ->
  Format.formatter ->
  outcome
(** Supervised {!report}: prints the same header/table/summary (plus a
    quarantine line when any cell was isolated) and returns the
    outcome for the CLI to turn into an exit status. *)

(** {2 Fleet (multi-process) execution}

    The same grid sharded across forked worker processes via
    {!Promise_core.Fleet}: contiguous index ranges, one per shard,
    each shard recomputing (memoized, deterministic) the baselines of
    the benchmarks it touches. Results aggregate shard-major, so the
    cell list — and the printed table — is bit-identical to the
    supervised path at any worker count, through worker crashes, and
    across kill/resume cycles. A quarantined shard expands to one
    QUARANTINED row per cell it covered. *)

type fleet_outcome =
  | Fleet_completed of cell_result list * Promise_core.Fleet.summary
  | Fleet_interrupted of { completed_shards : int; total_shards : int }
      (** the stop flag was raised; finished shards are in the
          checkpoint dir (when configured) *)
  | Fleet_rejected of Promise_core.Error.t

val run_cells_fleet :
  ?on_shard_done:(shard:int -> completed:int -> total:int -> unit) ->
  ?batch:int ->
  Promise_core.Fleet.config ->
  shards:int ->
  scenarios:scenario list ->
  benchmarks:Benchmarks.t list ->
  unit ->
  fleet_outcome
(** {!run_cells} across a worker fleet. [shards] is a request: the
    grid is split into at most that many non-empty ranges. [batch]
    (default 1) is forwarded to every evaluation and folded into the
    shard checkpoint digest, so kill/resume runs at batch N stay
    bit-identical to uninterrupted batch-N runs and can never resume a
    differently-batched shard. *)

val report_fleet :
  ?quick:bool ->
  ?on_shard_done:(shard:int -> completed:int -> total:int -> unit) ->
  ?batch:int ->
  Promise_core.Fleet.config ->
  shards:int ->
  Format.formatter ->
  fleet_outcome
(** Fleet {!report_supervised}: identical header/table/summary on
    [ppf] (fleet statistics are in the returned summary, not printed —
    stdout stays diffable against the supervised path). *)
