(** Fault-injection campaign: fault scenarios × fast benchmarks.

    For every (scenario, benchmark) cell the campaign measures
    - {e detection}: a BIST run ({!Promise_arch.Selftest}) on a probe
      machine carrying the injected faults, validated against the
      injection ground truth;
    - {e faulted accuracy}: the benchmark with the faults and no
      countermeasures;
    - {e recovered accuracy}: the benchmark re-run under the recovery
      the BIST report implies ({!Promise_compiler.Runtime.recovery_of_report}
      — lane sparing, bank exclusion, canary retry/fallback).

    The campaign is deterministic (fixed seeds) and prints one table
    plus summary rates. *)

type scenario = {
  sname : string;
  kind : string;  (** fault-kind tag, one per distinct model *)
  inject : Promise_arch.Machine.t -> unit;
  expected : (int * (Promise_arch.Selftest.kind -> bool)) list;
      (** (bank, predicate) pairs the BIST report must satisfy *)
}

val quick_scenarios : unit -> scenario list
(** Five scenarios, one per hard-fault kind: stuck lane, dead lanes,
    dead bank, ADC offset, dead ADC units. *)

val all_scenarios : unit -> scenario list
(** {!quick_scenarios} plus X-REG transients, swing drift and excess
    leakage — eight scenarios, eight distinct fault kinds. *)

type cell = {
  benchmark : string;
  scenario : string;
  detected : bool;
  baseline : float;
  faulted : float;
  recovered : float;
  residual : float;  (** baseline − recovered, clamped at 0 *)
  recovered_ok : bool;
}

val residual_budget : float
(** Accuracy loss a recovered part may keep (0.06). *)

val fast_benchmarks : unit -> Benchmarks.t list
(** Matched filter, template matching L1, k-NN L1. *)

val run_cells :
  ?pool:Promise_core.Pool.t ->
  scenarios:scenario list ->
  benchmarks:Benchmarks.t list ->
  unit ->
  cell list
(** Cells are independent and fan out across [pool] (baselines first,
    then the scenario × benchmark grid); the result list is identical
    at any job count. *)

val print_cells : Format.formatter -> cell list -> unit

val summarize : cell list -> float * float * float
(** (detection rate, recovery rate, mean residual loss). *)

(** [report ?quick ?pool ppf] — run the campaign and print the table;
    [true] when detection and recovery rates are both 100%. [quick]
    restricts to {!quick_scenarios}; [pool] fans the cells out across
    domains. *)
val report : ?quick:bool -> ?pool:Promise_core.Pool.t -> Format.formatter -> bool
