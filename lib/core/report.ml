module B = Benchmarks
module Model = Promise_energy.Model
module Conv = Promise_energy.Conv
module Cm = Promise_energy.Cm
module Soa = Promise_energy.Soa
module Swing = Promise_analog.Swing
module Swing_opt = Promise_compiler.Swing_opt
module Timing = Promise_arch.Timing
module Program = Promise_isa.Program
module Task = Promise_isa.Task
module At = Promise_ir.Abstract_task
module Graph = Promise_ir.Graph
module Pool = Promise_core.Pool

let section ppf title note =
  Format.fprintf ppf "@.== %s ==@." title;
  if note <> "" then Format.fprintf ppf "   %s@." note

let hr ppf = Format.fprintf ppf "   %s@." (String.make 72 '-')

(* ------------------------------------------------------------------ *)
(* Memoized expensive state                                            *)
(* ------------------------------------------------------------------ *)

type opt_result = {
  bench : B.t;
  swings : int list;
  eval : B.eval;
  full_energy : float;
  opt_energy : float;
}

(* Memoized on first call; the pool only changes how fast the sweep
   runs, never its result (the optimization is deterministic), so a
   later caller with a different pool gets the same cached value. *)
let optimizations_lock = Mutex.create ()
let optimizations_cache : opt_result list option ref = ref None

let optimizations ?(pool = Pool.sequential) () =
  Mutex.protect optimizations_lock (fun () ->
      match !optimizations_cache with
      | Some v -> v
      | None ->
          let v =
            List.filter_map Fun.id
              (Pool.map_list pool
                 (fun (b : B.t) ->
                   match B.optimize ~pool b ~pm:0.01 with
                   | Ok (swings, eval) ->
                       Some
                         {
                           bench = b;
                           swings;
                           eval;
                           full_energy =
                             Model.total
                               (B.promise_energy b ~swings:(B.max_swings b));
                           opt_energy = Model.total (B.promise_energy b ~swings);
                         }
                   | Error _ -> None)
                 (B.fig12_suite ()))
          in
          optimizations_cache := Some v;
          v)

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let table1 ppf =
  section ppf "Table 1 - ML algorithm kernels"
    "inner-loop distance D(W,X) and decision function f()";
  let rows =
    [
      ("SVM", "sum w[i]x[i]", "sign");
      ("Temp. Match. (L1)", "sum |w[i]-x[i]|", "min");
      ("Temp. Match. (L2)", "sum (w[i]-x[i])^2", "min");
      ("DNN", "sum w[i]x[i]", "sigmoid");
      ("Feature extraction (PCA)", "sum w[i]x[i]", "-");
      ("k-NN (L1)", "sum |w[i]-x[i]|", "majority vote");
      ("k-NN (L2)", "sum (w[i]-x[i])^2", "majority vote");
      ("Matched filter", "sum w[i]x[i]", "threshold");
      ("Linear regression", "means of u, v, u^2, uv", "accumulate");
    ]
  in
  Format.fprintf ppf "   %-28s %-24s %s@." "algorithm" "kernel" "f()";
  hr ppf;
  List.iter
    (fun (a, k, f) -> Format.fprintf ppf "   %-28s %-24s %s@." a k f)
    rows

(* ------------------------------------------------------------------ *)
(* Table 3                                                             *)
(* ------------------------------------------------------------------ *)

let table3 ppf =
  section ppf "Table 3 - energy and delay per operation"
    "1 cycle = 1 ns; energies per bank at SWING = 111 (the model is the \
     published table)";
  Format.fprintf ppf "   %-7s %-12s %10s %12s@." "class" "operation"
    "delay(cyc)" "energy(pJ)";
  hr ppf;
  List.iter
    (fun (cls, name, delay, energy) ->
      Format.fprintf ppf "   %-7d %-12s %10d %12.2f@." cls name delay energy)
    (Promise_energy.Tables.table3 ());
  Format.fprintf ppf "   %-20s %22.2f pJ/cycle@." "leakage (per bank)"
    Promise_energy.Tables.leakage_pj_per_cycle_per_bank;
  Format.fprintf ppf "   %-20s %22.2f pJ/cycle@." "CTRL"
    Promise_energy.Tables.ctrl_pj_per_cycle

(* ------------------------------------------------------------------ *)
(* Eq. (3)                                                             *)
(* ------------------------------------------------------------------ *)

let eq3_table ppf =
  section ppf "Eq. (3) - precision -> minimum swing"
    "2.6 f(SWING)/sqrt(N) < 2^-(B+1); '-' = infeasible even at max swing";
  Format.fprintf ppf "   swing codes:      ";
  List.iter (fun s -> Format.fprintf ppf "%8d" s) Swing.all_codes;
  Format.fprintf ppf "@.   deltaV (mV/LSB):  ";
  List.iter (fun s -> Format.fprintf ppf "%8.1f" (Swing.mv_per_lsb s)) Swing.all_codes;
  Format.fprintf ppf "@.   f(SWING):         ";
  List.iter (fun s -> Format.fprintf ppf "%8.3f" (Swing.noise_factor s)) Swing.all_codes;
  Format.fprintf ppf "@.";
  hr ppf;
  Format.fprintf ppf "   min swing by (B bits, N elements):@.";
  Format.fprintf ppf "   %6s" "B\\N";
  let ns = [ 128; 256; 512; 784; 1024 ] in
  List.iter (fun n -> Format.fprintf ppf "%8d" n) ns;
  Format.fprintf ppf "@.";
  List.iter
    (fun bits ->
      Format.fprintf ppf "   %6d" bits;
      List.iter
        (fun n ->
          match Swing_opt.min_swing_for ~bits ~n with
          | Some s -> Format.fprintf ppf "%8d" s
          | None -> Format.fprintf ppf "%8s" "-")
        ns;
      Format.fprintf ppf "@.")
    [ 2; 3; 4; 5; 6 ]

(* ------------------------------------------------------------------ *)
(* ISA demo (Figure 5 / §3.4)                                          *)
(* ------------------------------------------------------------------ *)

let isa_demo ppf =
  section ppf "Figure 5 / §3.4 - the template-matching Task"
    "aSUBT + absolute.avd + ADC + min over 127 candidates on 4 banks";
  let task =
    Task.make ~rpt_num:126 ~multi_bank:2
      ~class1:Promise_isa.Opcode.C1_asubt
      ~class2:{ Promise_isa.Opcode.asd = Promise_isa.Opcode.Asd_absolute; avd = true }
      ~class3:Promise_isa.Opcode.C3_adc ~class4:Promise_isa.Opcode.C4_min ()
  in
  Format.fprintf ppf "   asm:    %s@." (Promise_isa.Asm.print_task task);
  Format.fprintf ppf "   binary: 0x%s (48 bits)@."
    (Promise_isa.Encode.hex_of_task task);
  Format.fprintf ppf "   TP = %d cycles, %d iterations, %d banks@."
    (Timing.task_tp task) (Task.iterations task) (Task.banks task)

(* ------------------------------------------------------------------ *)
(* Figure 10                                                           *)
(* ------------------------------------------------------------------ *)

(* Steady-state per-decision time/energy: the paper's throughput model
   (f = 128/TP) amortizes the pipeline fill across back-to-back
   decisions. *)
let promise_delay_ns (b : B.t) =
  float_of_int (Model.program_steady_cycles b.B.per_decision_program)

let promise_decision_energy (b : B.t) =
  Model.program_energy_steady b.B.per_decision_program

let fig10a ppf =
  section ppf "Figure 10(a) - speed-up PROMISE vs CONV"
    "paper: 1.4-3.4x vs CONV-OPT; Linear Reg. lowest (SRAM re-access)";
  Format.fprintf ppf "   %-16s %12s %12s %12s %10s %10s@." "benchmark"
    "PROMISE(ns)" "CONV8b(ns)" "CONVOPT(ns)" "vs 8b" "vs OPT";
  hr ppf;
  List.iter
    (fun (b : B.t) ->
      let p = promise_delay_ns b in
      let c8 = Conv.delay_ns Conv.Conv_8b b.B.conv_workload in
      let copt = Conv.delay_ns (Conv.Conv_opt b.B.conv_opt_bits) b.B.conv_workload in
      Format.fprintf ppf "   %-16s %12.0f %12.0f %12.0f %10.2f %10.2f@."
        b.B.short p c8 copt (c8 /. p) (copt /. p))
    (B.fig10_suite ())

let fig10b ppf =
  section ppf "Figure 10(b) - energy ratio CONV / PROMISE"
    "paper: 3.4-5.5x vs CONV-OPT, EDP improvement 4.7-12.6x";
  Format.fprintf ppf "   %-16s %12s %12s %12s %8s %8s %8s@." "benchmark"
    "PROMISE(pJ)" "CONV8b(pJ)" "CONVOPT(pJ)" "vs 8b" "vs OPT" "EDPxOPT";
  hr ppf;
  List.iter
    (fun (b : B.t) ->
      let pe = Model.total (promise_decision_energy b) in
      let pd = promise_delay_ns b in
      let e8 = Model.total (Conv.energy Conv.Conv_8b b.B.conv_workload) in
      let v = Conv.Conv_opt b.B.conv_opt_bits in
      let eo = Model.total (Conv.energy v b.B.conv_workload) in
      let edp_ratio = Conv.edp v b.B.conv_workload /. (pe *. pd) in
      Format.fprintf ppf "   %-16s %12.0f %12.0f %12.0f %8.2f %8.2f %8.2f@."
        b.B.short pe e8 eo (e8 /. pe) (eo /. pe) edp_ratio)
    (B.fig10_suite ())

(* ------------------------------------------------------------------ *)
(* Figure 11                                                           *)
(* ------------------------------------------------------------------ *)

let fig11 ppf =
  section ppf "Figure 11 - energy breakdown"
    "READ / COMPUTATION / CTRL(+leak); each pair normalized to its \
     CONV-8b total (workload sizes differ)";
  Format.fprintf ppf "   %-28s %8s %8s %8s %8s@." "design point" "READ" "COMP"
    "CTRL" "total";
  hr ppf;
  let print_row name norm (e : Model.breakdown) =
    Format.fprintf ppf "   %-28s %8.3f %8.3f %8.3f %8.3f@." name
      (e.Model.read /. norm)
      (e.Model.compute /. norm)
      ((e.Model.ctrl +. e.Model.leak) /. norm)
      (Model.total e /. norm)
  in
  List.iter
    (fun (b : B.t) ->
      let conv = Conv.energy Conv.Conv_8b b.B.conv_workload in
      let norm = Model.total conv in
      print_row (b.B.short ^ " CONV-8b") norm conv;
      print_row (b.B.short ^ " PROMISE") norm (promise_decision_energy b))
    [ B.svm (); B.template_l1 (); B.template_l2 () ]

(* ------------------------------------------------------------------ *)
(* Figure 12 / Table 2                                                 *)
(* ------------------------------------------------------------------ *)

let fig12 ?pool ppf =
  section ppf "Figure 12 - compiler energy optimization at p_m = 1%"
    "paper: 4-25% savings, geometric mean 17%; DNN swings e.g. (3,3,4,6)";
  Format.fprintf ppf "   %-16s %12s %-14s %9s %9s %10s@." "benchmark"
    "search space" "opt swings" "E_opt/E" "saving" "mismatch";
  hr ppf;
  let ratios = ref [] in
  List.iter
    (fun r ->
      let ratio = r.opt_energy /. r.full_energy in
      ratios := ratio :: !ratios;
      Format.fprintf ppf "   %-16s %12d (%-12s %9.3f %8.1f%% %9.3f@."
        r.bench.B.short
        (Swing_opt.search_space_size ~tasks:r.bench.B.abstract_tasks)
        (String.concat "," (List.map string_of_int r.swings) ^ ")")
        ratio
        ((1.0 -. ratio) *. 100.0)
        r.eval.B.mismatch)
    (optimizations ?pool ());
  let geo =
    Promise_ml.Metrics.geometric_mean !ratios
  in
  hr ppf;
  Format.fprintf ppf "   geometric-mean saving: %.1f%% (paper: 17%%)@."
    ((1.0 -. geo) *. 100.0)

let table2 ?pool ppf =
  section ppf "Table 2 - benchmark inventory"
    "dims / tasks / minimum digital precision / optimal swing at p_m = 1%";
  Format.fprintf ppf "   %-16s %8s %8s %6s %8s %8s %-12s@." "benchmark" "N"
    "rows" "#AT" "ref acc" "CONV-OPT" "opt swing";
  hr ppf;
  let opts = optimizations ?pool () in
  let opt_for (b : B.t) =
    List.find_opt (fun r -> r.bench.B.short = b.B.short) opts
  in
  List.iter
    (fun (b : B.t) ->
      let n, rows =
        match Graph.tasks b.B.graph with
        | (_, t) :: _ -> (t.At.vector_len, t.At.loop_iterations)
        | [] -> (0, 0)
      in
      let swings =
        match opt_for b with
        | Some r -> "(" ^ String.concat "," (List.map string_of_int r.swings) ^ ")"
        | None -> "-"
      in
      Format.fprintf ppf "   %-16s %8d %8d %6d %8.3f %7db %-12s@." b.B.short n
        rows b.B.abstract_tasks b.B.reference_accuracy b.B.conv_opt_bits swings)
    (B.fig10_suite () @ [ B.dnn B.D1; B.dnn B.D2; B.dnn B.D3 ])

(* ------------------------------------------------------------------ *)
(* §6.2 state of the art                                               *)
(* ------------------------------------------------------------------ *)

let soa_knn ppf =
  section ppf "§6.2 - vs the 14nm k-NN accelerator [7]"
    "paper (scaled to 65nm): 4.1x/3.7x lower energy, 3.1x/3.4x lower \
     throughput, 1.3x/1.1x EDP advantage";
  List.iter
    (fun (metric, published) ->
      let p = B.knn_soa_program ~metric in
      let energy_j = Model.total (Model.program_energy_steady p) *. 1e-12 in
      let decisions_per_s =
        1e9 /. float_of_int (Model.program_steady_cycles p)
      in
      let c = Soa.compare published ~ours_energy_j:energy_j ~ours_decisions_per_s:decisions_per_s in
      Format.fprintf ppf "   %a@.@." Soa.pp_comparison c)
    [ (`L1, Soa.knn_l1_14nm); (`L2, Soa.knn_l2_14nm) ]

let soa_dnn ppf =
  section ppf "§6.2 - vs the 28nm sparse DNN engine [6]"
    "paper (raw): 1.15x energy saving, 19.9x throughput, 22x EDP";
  let _, energy_pj, delay_ns = B.dnn_soa () in
  let c =
    Soa.compare ~scale_to_65nm:false Soa.dnn_28nm
      ~ours_energy_j:(energy_pj *. 1e-12)
      ~ours_decisions_per_s:(1e9 /. delay_ns)
  in
  Format.fprintf ppf "   %a@." Soa.pp_comparison c

let cm_compare ppf =
  section ppf "§6.2 - vs the original compute memory (CM)"
    "paper: up to 1.9x speed-up from the analog pipeline, ~5.5% energy \
     saving from earlier sleep";
  Format.fprintf ppf "   %-16s %10s %10s@." "benchmark" "speed-up" "saving";
  hr ppf;
  let savings = ref [] in
  List.iter
    (fun (b : B.t) ->
      let p = b.B.per_decision_program in
      let speedup = Cm.speedup_vs_cm_steady p in
      let saving = Cm.energy_saving_vs_cm_steady p in
      savings := saving :: !savings;
      Format.fprintf ppf "   %-16s %9.2fx %9.1f%%@." b.B.short speedup
        (saving *. 100.0))
    (B.fig10_suite ());
  hr ppf;
  let mean =
    List.fold_left ( +. ) 0.0 !savings /. float_of_int (List.length !savings)
  in
  Format.fprintf ppf "   mean energy saving: %.1f%% (paper: 5.5%%)@."
    (mean *. 100.0)

let ablation_tp ppf =
  section ppf "§3.2 ablation - cost of operational diversity"
    "pipeline clocked at the worst-case TP over ALL ISA ops vs the \
     per-program TP (paper: up to 2x throughput loss)";
  Format.fprintf ppf "   %-16s %8s %12s %12s %8s@." "benchmark" "TP"
    "cycles@TP" "cycles@worst" "slowdown";
  hr ppf;
  List.iter
    (fun (b : B.t) ->
      let p = b.B.per_decision_program in
      let fast = Model.program_steady_cycles p in
      let slow = Model.program_steady_cycles_at_worst_case_tp p in
      Format.fprintf ppf "   %-16s %8d %12d %12d %7.2fx@." b.B.short
        (Timing.program_tp p) fast slow
        (float_of_int slow /. float_of_int fast))
    (B.fig10_suite ())

let size_sweep ppf =
  section ppf "Table 2 - problem-size sweep"
    "the per-decision cost scaling across the Table-2 size variants";
  Format.fprintf ppf "   %-22s %6s %6s %8s %12s %12s %10s@." "variant" "N"
    "rows" "banks" "delay(ns)" "energy(pJ)" "ref acc";
  hr ppf;
  List.iter
    (fun (b : B.t) ->
      let n, rows =
        match Graph.tasks b.B.graph with
        | (_, t) :: _ -> (t.At.vector_len, t.At.loop_iterations)
        | [] -> (0, 0)
      in
      Format.fprintf ppf "   %-22s %6d %6d %8d %12.0f %12.0f %10.3f@."
        b.B.short n rows b.B.banks (promise_delay_ns b)
        (Model.total (promise_decision_energy b))
        b.B.reference_accuracy)
    (B.size_variants ())

let error_sources ppf =
  section ppf "Error-source ablation"
    "which behavioral error source costs accuracy at a low swing \
     (template matching L2, swing 1)";
  let b = B.template_l2 () in
  Format.fprintf ppf "   %-40s %10s@." "error sources enabled" "accuracy";
  hr ppf;
  let run name profile =
    let e = b.B.evaluate ~profile ~swings:[ 1 ] () in
    Format.fprintf ppf "   %-40s %10.3f@." name e.B.promise_accuracy
  in
  run "none (ideal, but 8-bit + ADC quantized)"
    (Promise_arch.Bank.Custom { lut = false; leakage = false });
  run "+ LUT non-linearity"
    (Promise_arch.Bank.Custom { lut = true; leakage = false });
  run "+ capacitor leakage"
    (Promise_arch.Bank.Custom { lut = false; leakage = true });
  run "full silicon profile" Promise_arch.Bank.Silicon;
  Format.fprintf ppf
    "   (the machine adds swing-dependent aREAD noise in every row)@."

let dma_overhead ppf =
  section ppf "Fidelity - DMA traffic the paper does not price"
    "per-decision X staging over a 16 B/cycle rail; weights pre-stored";
  Format.fprintf ppf "   %-16s %10s %12s %14s %12s@." "benchmark" "X bytes"
    "delay(ns)" "+DMA delay" "overhead";
  hr ppf;
  List.iter
    (fun (b : B.t) ->
      let bytes = Promise_energy.Dma.x_bytes_per_decision b.B.graph in
      let cycles, _pj = Promise_energy.Dma.decision_overhead b.B.graph in
      let base = promise_delay_ns b in
      let with_dma = base +. float_of_int cycles in
      Format.fprintf ppf "   %-16s %10d %12.0f %14.0f %11.2fx@." b.B.short
        bytes base with_dma (with_dma /. base))
    (B.fig10_suite ())

let ext_ablation ppf =
  section ppf "§3.3 extension ablation - the omitted operations"
    "element-wise write-back [30] and shuffle/compare [10,31] were \
     dropped to keep TP small; this prices re-adding them";
  let open Promise_isa.Extensions in
  List.iter
    (fun e ->
      Format.fprintf ppf "   %-24s delay %2d cyc, %5.1f pJ/op -> worst-case TP %d@."
        (name e) (delay e) (energy_pj e)
        (worst_case_tp_with [ e ]))
    all;
  hr ppf;
  Format.fprintf ppf "   %-16s %4s %22s %22s@." "benchmark" "TP" "+writeback"
    "+shuffle/compare";
  List.iter
    (fun (b : B.t) ->
      let tp = Timing.program_tp b.B.per_decision_program in
      Format.fprintf ppf "   %-16s %4d %21.2fx %21.2fx@." b.B.short tp
        (tp_inflation [ Elementwise_writeback ] ~task_tp:tp)
        (tp_inflation [ Shuffle_compare ] ~task_tp:tp))
    (B.fig10_suite ())

let adc_fidelity ppf =
  section ppf "Fidelity - ADC throughput consistency"
    "the paper's throughput model assumes the 8-unit ADC never limits \
     TP, yet 8 x TP < 138 for every kernel here; the discrete-event \
     scheduler quantifies the gap (EXPERIMENTS.md)";
  Format.fprintf ppf "   %-16s %4s %14s %16s %12s@." "benchmark" "TP"
    "ideal itvl" "unit-acc. itvl" "ADC stalls";
  hr ppf;
  List.iter
    (fun (b : B.t) ->
      match b.B.per_decision_program.Program.tasks with
      | task :: _ when Task.iterations task > 1 ->
          let ideal = Promise_arch.Scheduler.run ~ideal_adc:true task in
          let real = Promise_arch.Scheduler.run ~ideal_adc:false task in
          let show s =
            match Promise_arch.Scheduler.throughput_interval s with
            | Some i -> string_of_int i
            | None -> "-"
          in
          Format.fprintf ppf "   %-16s %4d %14s %16s %12d@." b.B.short
            (Timing.task_tp task) (show ideal) (show real)
            real.Promise_arch.Scheduler.adc_stalls
      | _ -> ())
    (B.fig10_suite ())

(* ------------------------------------------------------------------ *)
(* Drivers                                                             *)
(* ------------------------------------------------------------------ *)

let yield_analysis ?(pool = Pool.sequential) ppf =
  section ppf "Yield - accuracy across process-variation corners"
    "each noise seed models a different die; Eq. (3)'s 2.6-sigma margin \
     targets 99% per-aggregate confidence";
  let seeds = [ 1; 2; 3; 5; 8; 13; 21; 34; 55; 89; 144; 233 ] in
  Format.fprintf ppf "   %-16s %6s %8s %8s %8s %12s@." "benchmark" "swing"
    "min" "median" "max" "dies at p_m=1%";
  hr ppf;
  List.iter
    (fun ((b : B.t), swing) ->
      (* one die (seed) per pool slot; the sort erases completion order *)
      let accs =
        Pool.map_list pool
          (fun seed ->
            (b.B.evaluate ~seed ~swings:[ swing ] ()).B.promise_accuracy)
          seeds
        |> List.sort compare
      in
      let arr = Array.of_list accs in
      let n = Array.length arr in
      let within =
        List.length
          (List.filter
             (fun a -> b.B.reference_accuracy -. a <= 0.01)
             accs)
      in
      Format.fprintf ppf "   %-16s %6d %8.3f %8.3f %8.3f %8d/%d@." b.B.short
        swing arr.(0)
        arr.(n / 2)
        arr.(n - 1)
        within n)
    [ (B.matched_filter (), 1); (B.template_l2 (), 2); (B.template_l2 (), 4) ]

let validation ppf = ignore (Validation.report ppf)
let resilience ?pool ppf = ignore (Campaign.report ?pool ppf)

(* Each section printer takes the pool explicitly so the CLI can thread
   [--jobs] through named-section selection; pool-oblivious sections
   just drop it. *)
let sections : (string * bool * (Pool.t -> Format.formatter -> unit)) list =
  let p f = fun _pool ppf -> f ppf in
  [
    ("validation", false, p validation);
    ("resilience", true, fun pool ppf -> resilience ~pool ppf);
    ("table1", false, p table1);
    ("table3", false, p table3);
    ("eq3", false, p eq3_table);
    ("isa", false, p isa_demo);
    ("fig10a", false, p fig10a);
    ("fig10b", false, p fig10b);
    ("fig11", false, p fig11);
    ("fig12", true, fun pool ppf -> fig12 ~pool ppf);
    ("table2", true, fun pool ppf -> table2 ~pool ppf);
    ("soa_knn", false, p soa_knn);
    ("soa_dnn", true, p soa_dnn);
    ("cm", false, p cm_compare);
    ("ablation", false, p ablation_tp);
    ("extensions", false, p ext_ablation);
    ("adc_fidelity", false, p adc_fidelity);
    ("size_sweep", false, p size_sweep);
    ("error_sources", false, p error_sources);
    ("dma", false, p dma_overhead);
    ("yield", true, fun pool ppf -> yield_analysis ~pool ppf);
  ]

(* Sections are rendered to private buffers — concurrently when the
   pool allows — and printed in list order, so the assembled report is
   byte-identical at any job count (each section is deterministic and
   writes only to its own formatter). *)
let print_sections ?(pool = Pool.sequential) ppf fns =
  let render f =
    let buf = Buffer.create 4096 in
    let bppf = Format.formatter_of_buffer buf in
    f pool bppf;
    Format.pp_print_flush bppf ();
    Buffer.contents buf
  in
  List.iter
    (Format.pp_print_string ppf)
    (Pool.map_list pool render fns);
  Format.pp_print_flush ppf ()

let quick ?pool ppf =
  print_sections ?pool ppf
    (List.filter_map
       (fun (_, slow, f) -> if slow then None else Some f)
       sections)

let all ?pool ppf =
  print_sections ?pool ppf (List.map (fun (_, _, f) -> f) sections)

(* ------------------------------------------------------------------ *)
(* Supervised, checkpointed rendering                                  *)
(* ------------------------------------------------------------------ *)

module Sup = Promise_core.Supervisor
module Ckpt = Promise_core.Checkpoint
module Inc = Promise_core.Incident
module E = Promise_core.Error

type sections_outcome =
  | Sections_done of { quarantined : int }
  | Sections_interrupted of { completed : int; total : int }
  | Sections_rejected of E.t

let sections_digest names =
  Ckpt.digest_of_config ~kind:"report-sections" names

let quick_names () =
  List.filter_map (fun (n, slow, _) -> if slow then None else Some n) sections

let all_names () = List.map (fun (n, _, _) -> n) sections

(* Render the named sections under the session: each section is one
   supervised work item (deadline / retry / quarantine), finished
   renders checkpoint after every pool-width chunk, and the assembled
   report prints only once everything is in — in list order, so the
   output is byte-identical to the unsupervised path whatever the job
   count or the number of interruptions. *)
let run_sections_supervised ?(pool = Pool.sequential)
    ?(on_checkpoint = fun ~completed:_ ~total:_ -> ())
    (session : Sup.session) ppf names =
  let cfg = session.Sup.sup in
  let inc = cfg.Sup.incidents in
  let named =
    List.filter_map
      (fun name ->
        List.find_opt (fun (n, _, _) -> n = name) sections
        |> Option.map (fun (n, _, f) -> (n, f)))
      names
  in
  let narr = Array.of_list named in
  let total = Array.length narr in
  let digest = sections_digest (List.map fst named) in
  let count_some arr =
    Array.fold_left (fun n o -> if o = None then n else n + 1) 0 arr
  in
  let loaded =
    match session.Sup.checkpoint with
    | Some path when session.Sup.resume && Ckpt.exists path -> (
        match
          (Ckpt.load ~path ~config_digest:digest
            : ((string, E.t) result option array, E.t) result)
        with
        | Ok p when Array.length p = total ->
            Inc.record inc Inc.Checkpoint_resume
              [
                ("path", path);
                ("sections_done", string_of_int (count_some p));
                ("total", string_of_int total);
              ];
            Ok p
        | Ok _ ->
            Error
              (E.make ~layer:"report" ~code:E.Stale_checkpoint
                 ~context:[ ("path", path) ]
                 "checkpoint section count does not match this report")
        | Error e ->
            Inc.record inc Inc.Checkpoint_stale [ ("error", E.to_string e) ];
            Error e)
    | _ -> Ok (Array.make total None)
  in
  match loaded with
  | Error e -> Sections_rejected e
  | Ok rendered ->
      let save () =
        match session.Sup.checkpoint with
        | None -> ()
        | Some path -> (
            match Ckpt.save ~path ~config_digest:digest rendered with
            | Ok () ->
                let completed = count_some rendered in
                Inc.record inc Inc.Checkpoint_write
                  [
                    ("path", path);
                    ("sections_done", string_of_int completed);
                    ("total", string_of_int total);
                  ];
                on_checkpoint ~completed ~total
            | Error e ->
                Inc.record inc Inc.Degradation
                  [ ("what", "checkpoint write failed");
                    ("error", E.to_string e) ])
      in
      let interrupted () =
        save ();
        Inc.record inc Inc.Signal
          [
            ( "signal",
              match Sup.stop_signal session.Sup.stop with
              | Some n -> Sup.signal_name n
              | None -> "request" );
            ("sections_done", string_of_int (count_some rendered));
            ("total", string_of_int total);
          ];
        Sections_interrupted { completed = count_some rendered; total }
      in
      let render i () =
        let _, f = narr.(i) in
        let buf = Buffer.create 4096 in
        let bppf = Format.formatter_of_buffer buf in
        f pool bppf;
        Format.pp_print_flush bppf ();
        Ok (Buffer.contents buf)
      in
      Inc.record inc Inc.Run_start
        [
          ("what", "report");
          ("total_sections", string_of_int total);
          ("jobs", string_of_int (Pool.jobs pool));
          ("resumed", string_of_int (count_some rendered));
        ];
      let chunk_size = max 1 (Pool.jobs pool) in
      let rec take k = function
        | [] -> ([], [])
        | l when k = 0 -> ([], l)
        | x :: tl ->
            let a, b = take (k - 1) tl in
            (x :: a, b)
      in
      let rec loop pending =
        if Sup.stop_requested session.Sup.stop then interrupted ()
        else
          match pending with
          | [] ->
              let quarantined = ref 0 in
              Array.iteri
                (fun i r ->
                  match Option.get r with
                  | Ok s -> Format.pp_print_string ppf s
                  | Error e ->
                      incr quarantined;
                      Format.fprintf ppf
                        "@.== %s ==@.   SECTION QUARANTINED: %s@."
                        (fst narr.(i)) (E.to_string e))
                rendered;
              Format.pp_print_flush ppf ();
              Inc.record inc Inc.Run_end
                [ ("what", "report"); ("total_sections", string_of_int total) ];
              (match session.Sup.checkpoint with
              | Some path -> Ckpt.remove path
              | None -> ());
              Sections_done { quarantined = !quarantined }
          | _ ->
              let chunk, rest = take chunk_size pending in
              let carr = Array.of_list chunk in
              let results =
                Sup.map_result ~pool cfg
                  ~label:(fun k -> "section:" ^ fst narr.(carr.(k)))
                  (fun i -> render i ())
                  chunk
              in
              List.iter2
                (fun i r -> rendered.(i) <- Some r)
                chunk results;
              save ();
              loop rest
      in
      loop
        (List.filter (fun i -> rendered.(i) = None) (List.init total Fun.id))

(* ------------------------------------------------------------------ *)
(* Fleet (multi-process) rendering                                     *)
(* ------------------------------------------------------------------ *)

module Fleet = Promise_core.Fleet

type sections_fleet_outcome =
  | Sections_fleet_done of { quarantined : int; summary : Fleet.summary }
  | Sections_fleet_interrupted of { completed_shards : int; total_shards : int }
  | Sections_fleet_rejected of E.t

let empty_fleet_summary =
  {
    Fleet.shards = 0;
    workers = 0;
    restarts = 0;
    resumed = 0;
    quarantined = 0;
    total_ms = 0.0;
    timings = [||];
  }

(* The named sections sharded across forked workers: each shard
   renders a contiguous slice of the section list to strings (one
   buffer per section, exceptions captured per section so a broken
   section quarantines only itself), and the parent prints the slices
   in list order — byte-identical to the in-process paths whatever the
   worker count or how many workers died on the way. *)
let run_sections_fleet ?on_shard_done (fcfg : Fleet.config) ~shards ppf names =
  let named =
    List.filter_map
      (fun name ->
        List.find_opt (fun (n, _, _) -> n = name) sections
        |> Option.map (fun (n, _, f) -> (n, f)))
      names
  in
  let narr = Array.of_list named in
  let total = Array.length narr in
  if total = 0 then
    Sections_fleet_done { quarantined = 0; summary = empty_fleet_summary }
  else begin
    let ranges = Fleet.ranges ~shards ~items:total in
    let digest = sections_digest (List.map fst named) in
    let render_one i =
      let name, f = narr.(i) in
      try
        let buf = Buffer.create 4096 in
        let bppf = Format.formatter_of_buffer buf in
        f Pool.sequential bppf;
        Format.pp_print_flush bppf ();
        Ok (Buffer.contents buf)
      with exn ->
        let bt = String.trim (Printexc.get_backtrace ()) in
        Error
          (E.make ~layer:"report-fleet" ~code:E.Internal
             ~context:
               (("section", name)
               :: ("exn", Printexc.to_string exn)
               :: (if bt = "" then [] else [ ("backtrace", bt) ]))
             "section raised in fleet worker")
    in
    let f ~shard =
      let off, len = ranges.(shard) in
      Ok (List.init len (fun k -> render_one (off + k)))
    in
    match Fleet.run ?on_shard_done fcfg ~digest ~shards:(Array.length ranges) ~f with
    | Fleet.Fleet_rejected e -> Sections_fleet_rejected e
    | Fleet.Fleet_interrupted { completed; total } ->
        Sections_fleet_interrupted
          { completed_shards = completed; total_shards = total }
    | Fleet.Fleet_done (slots, summary) ->
        let quarantined = ref 0 in
        Array.iteri
          (fun sh slot ->
            let off, len = ranges.(sh) in
            let per_section =
              match slot with
              | Ok rendered -> rendered
              | Error e ->
                  List.init len (fun _ ->
                      Error (E.with_context e [ ("shard", string_of_int sh) ]))
            in
            List.iteri
              (fun k r ->
                match r with
                | Ok s -> Format.pp_print_string ppf s
                | Error e ->
                    incr quarantined;
                    Format.fprintf ppf
                      "@.== %s ==@.   SECTION QUARANTINED: %s@."
                      (fst narr.(off + k))
                      (E.to_string e))
              per_section)
          slots;
        Format.pp_print_flush ppf ();
        Sections_fleet_done { quarantined = !quarantined; summary }
  end
