(** The nine Table-2 benchmarks, wired end-to-end: synthetic data →
    model training (reference float implementation) → DSL kernel →
    compiled IR graph → PROMISE execution → accuracy, energy and
    throughput — plus the CONV-8b / CONV-OPT baseline workloads of §5.

    Every benchmark is deterministic (seeded). Constructors are lazy
    and memoized per configuration: building a benchmark trains its
    model once. *)

module Graph = Promise_ir.Graph
module Program = Promise_isa.Program
module Model = Promise_energy.Model
module Conv = Promise_energy.Conv
module Bank = Promise_arch.Bank

type eval = {
  promise_accuracy : float;
  reference_accuracy : float;
  mismatch : float;  (** accuracy drop, clamped at 0 *)
}

type t = {
  name : string;
  short : string;  (** Figure-10/12 axis label *)
  abstract_tasks : int;
  graph : Graph.t;  (** swings at maximum *)
  per_decision_program : Program.t;
      (** ISA program for one inference decision *)
  banks : int;  (** banks the program uses *)
  conv_workload : Conv.workload;  (** same decision on CONV *)
  conv_opt_bits : int;  (** minimum digital precision (CONV-OPT) *)
  reference_accuracy : float;
  is_classifier : bool;
  evaluate :
    ?seed:int ->
    ?profile:Promise_arch.Bank.profile ->
    ?prepare:(Promise_arch.Machine.t -> unit) ->
    ?recovery:Promise_compiler.Runtime.recovery ->
    ?banks:int ->
    ?pool:Promise_core.Pool.t ->
    ?kernel_mode:Promise_arch.Machine.kernel_mode ->
    ?batch:int ->
    swings:int list ->
    unit ->
    eval;
      (** run the benchmark's test set ([profile] defaults to
          [Silicon]; pass [Custom _] for the error-source ablation);
          [swings] has one entry per AbstractTask. [prepare] runs on
          the freshly-created machine before any query — the
          fault-injection hook; [recovery] enables the runtime's
          graceful-degradation path; [banks] overrides the machine
          size (sparing lanes shrinks per-bank capacity); [pool]
          parallelizes multi-bank task execution (bit-identical at any
          job count); [kernel_mode] selects the fused or reference
          analog datapath (also bit-identical); [batch] (default 1)
          runs that many noise realizations of every query through
          {!Promise_compiler.Runtime.run_batch} and scores all of them
          — batch 1 is bit-identical to the historical evaluation. *)
  stats : Promise_compiler.Precision.stats option;
      (** Sakr back-prop statistics (DNNs only) *)
}

(** {2 The Figure-10 suite (single-AbstractTask kernels + LinReg)} *)

val matched_filter : unit -> t
(** Gunshot detection, N = 512, 100 windows. *)

val matched_filter_sized : int -> t
(** Table-2 size variants: N ∈ {256, 512, 1024}. *)

val template_l1 : unit -> t
val template_l2 : unit -> t
(** Face recognition, 64 candidates of 16×16. *)

val template_sized : [ `L1 | `L2 ] * (int * int) -> t
(** Table-2 size variants: 16×16, 22×23, 32×33. *)

val svm : unit -> t
(** Face detection, 16×16 + bias, linear SVM. *)

val knn_l1 : unit -> t
val knn_l2 : unit -> t
(** Character recognition, 128 stored 16×16 samples, k = 5. *)

val knn_sized : [ `L1 | `L2 ] * (int * int) -> t
(** Table-2 size variants: 16×16, 22×23, 32×33. *)

val pca : unit -> t
(** Four-component feature extraction, 16×16 faces (not a classifier). *)

val linreg : unit -> t
(** 2-D linear regression over 8192 samples: 4 AbstractTasks. *)

(** {2 The Figure-12 DNNs (MNIST-like 28×28 digits)} *)

type dnn_variant = D1 | D2 | D3
(** 784-128-10, 784-256-128-10, 784-512-256-128-10. *)

val dnn : dnn_variant -> t

(** {2 Suites} *)

val fig10_suite : unit -> t list
(** MatchFilt, TM-L1, TM-L2, SVM, kNN-L1, kNN-L2, PCA, LinReg. *)

val fig12_suite : unit -> t list
(** The six classifiers + DNN-1/2/3. *)

val size_variants : unit -> t list
(** The Table-2 problem-size sweep: matched filter at N ∈
    {256, 512, 1024}, template matching and k-NN (L1) at 16×16,
    22×23 and 32×33. *)

(** {2 Derived metrics} *)

(** [program_at_swings b swings] — re-lower with per-task swings. *)
val program_at_swings : t -> int list -> Program.t

(** [promise_energy b ~swings] — Eq. (6) per decision. *)
val promise_energy : t -> swings:int list -> Model.breakdown

val promise_cycles : t -> int
val max_swings : t -> int list

(** [optimize ?pool b ~pm] — the compiler energy optimization: analytic
    (Sakr + Eq. 3) for DNNs, brute-force sweep otherwise. Returns the
    per-task swings and the evaluation at those swings. [pool] is
    forwarded to every evaluation. *)
val optimize : ?pool:Promise_core.Pool.t -> t -> pm:float -> (int list * eval, string) result

(** {2 State-of-the-art comparison workloads (§6.2)} *)

(** [knn_soa_program ~metric] — the exact [7] configuration: 8-bit
    128-dim X against 128 W_j, single bank. *)
val knn_soa_program :
  metric:[ `L1 | `L2 ] -> Program.t

(** [dnn_soa ()] — (program, steady energy pJ per decision, sustained
    decision period ns) for the 784-512-256-128-10 network with row
    chunks on concurrent bank groups and layers pipelined across the
    decision stream (the paper's 36-bank configuration). *)
val dnn_soa : unit -> Program.t * float * float
