(** Reproduction of every table and figure of the paper's evaluation
    (§5–§6). Each section prints the measured values next to the
    published ones; EXPERIMENTS.md records a snapshot.

    All sections write to the given formatter and are deterministic.
    The expensive state (trained benchmarks, swing optimizations) is
    computed once and memoized across sections. *)

(** [table1 ppf] — the ML-algorithm kernel inventory (Table 1). *)
val table1 : Format.formatter -> unit

(** [table3 ppf] — energy and delay per operation (Table 3). *)
val table3 : Format.formatter -> unit

(** [eq3_table ppf] — f(SWING) and the Eq. (3) bit-precision → minimum
    swing mapping over layer widths. *)
val eq3_table : Format.formatter -> unit

(** [isa_demo ppf] — the §3.4 template-matching Task encoded to binary
    and disassembled (Figure 5 walk-through). *)
val isa_demo : Format.formatter -> unit

(** [fig10a ppf] — speed-up of PROMISE over CONV-8b / CONV-OPT for the
    eight benchmarks (Figure 10(a); paper band 1.4–3.4×). *)
val fig10a : Format.formatter -> unit

(** [fig10b ppf] — energy ratio CONV/PROMISE (Figure 10(b); paper band
    3.4–5.5× vs CONV-OPT) and the EDP improvement (4.7–12.6×). *)
val fig10b : Format.formatter -> unit

(** [fig11 ppf] — READ/COMPUTATION/CTRL energy breakdown normalized to
    SVM on CONV-8b (Figure 11). *)
val fig11 : Format.formatter -> unit

(** [fig12 ?pool ppf] — compiler swing optimization at p_m = 1%:
    optimized vs full-precision energy and the search-space size per
    kernel (Figure 12; paper savings 4–25%, geometric mean 17%). Slow:
    sweeps all eight swings for the six single-task kernels and trains
    the three DNNs; [pool] fans the per-benchmark sweeps out across
    domains. *)
val fig12 : ?pool:Promise_core.Pool.t -> Format.formatter -> unit

(** [table2 ?pool ppf] — the benchmark inventory with the optimal
    swings at p_m = 1% (Table 2). Shares the memoized fig12
    optimizations. *)
val table2 : ?pool:Promise_core.Pool.t -> Format.formatter -> unit

(** [soa_knn ppf] — §6.2 comparison with the 14 nm k-NN accelerator [7],
    ITRS-scaled to 65 nm. *)
val soa_knn : Format.formatter -> unit

(** [soa_dnn ppf] — §6.2 comparison with the 28 nm DNN engine [6]
    (raw, as in the paper). *)
val soa_dnn : Format.formatter -> unit

(** [cm_compare ppf] — §6.2 comparison with the original fixed-function
    compute memory: pipelining speed-up (up to 1.9×) and net energy
    saving (~5.5%). *)
val cm_compare : Format.formatter -> unit

(** [ablation_tp ppf] — the §3.2 operational-diversity ablation: cycles
    at per-program TP vs a worst-case TP accommodating every ISA op
    (up to 2× throughput loss). *)
val ablation_tp : Format.formatter -> unit

(** [ext_ablation ppf] — pricing the ISA extensions the paper omitted
    (§3.3): what element-wise write-back / shuffle-compare would do to
    the worst-case TP of every benchmark. *)
val ext_ablation : Format.formatter -> unit

(** [adc_fidelity ppf] — ideal vs unit-accurate ADC scheduling: the
    throughput-model inconsistency quantified (EXPERIMENTS.md,
    "Fidelity notes"). *)
val adc_fidelity : Format.formatter -> unit

(** [size_sweep ppf] — per-decision cost scaling across the Table-2
    problem-size variants (matched filter N, template/k-NN image
    dimensions). *)
val size_sweep : Format.formatter -> unit

(** [error_sources ppf] — accuracy under each behavioral error source
    enabled individually (noise / LUT / leakage), at a low swing. *)
val error_sources : Format.formatter -> unit

(** [dma_overhead ppf] — per-decision X-staging traffic the paper does
    not price (Fig. 2(b) DMA), and its delay overhead. *)
val dma_overhead : Format.formatter -> unit

(** [validation ppf] — the Fig.-8 three-level validation self-check
    ({!Validation.report}). *)
val validation : Format.formatter -> unit

(** [resilience ?pool ppf] — the fault-injection campaign
    ({!Campaign.report}): scenario × benchmark detection / recovery
    table. Slow; [pool] fans the campaign cells out across domains. *)
val resilience : ?pool:Promise_core.Pool.t -> Format.formatter -> unit

(** [yield_analysis ?pool ppf] — accuracy distribution across
    process-variation corners (noise seeds = dies) at reduced swings:
    the die-to-die view behind Eq. (3)'s 99% confidence margin. Slow;
    [pool] evaluates the dies concurrently. *)
val yield_analysis : ?pool:Promise_core.Pool.t -> Format.formatter -> unit

(** [quick ?pool ppf] — every section except the slow
    {!fig12}/{!table2}. *)
val quick : ?pool:Promise_core.Pool.t -> Format.formatter -> unit

(** [all ?pool ppf] — every section. *)
val all : ?pool:Promise_core.Pool.t -> Format.formatter -> unit

(** [sections] — (name, slow, printer) for CLI selection; every printer
    takes the pool explicitly (pool-oblivious sections ignore it). *)
val sections :
  (string * bool * (Promise_core.Pool.t -> Format.formatter -> unit)) list

(** [print_sections ?pool ppf fns] — render each section to a private
    buffer (concurrently when [pool] allows) and print them in list
    order: the output is byte-identical at any job count. *)
val print_sections :
  ?pool:Promise_core.Pool.t ->
  Format.formatter ->
  (Promise_core.Pool.t -> Format.formatter -> unit) list ->
  unit

(** {2 Supervised, checkpointed rendering} *)

type sections_outcome =
  | Sections_done of { quarantined : int }
      (** printed; [quarantined] sections were replaced by their error *)
  | Sections_interrupted of { completed : int; total : int }
      (** stop flag raised; finished renders are in the checkpoint *)
  | Sections_rejected of Promise_core.Error.t
      (** the checkpoint belongs to a different section list *)

val quick_names : unit -> string list
(** Names of the non-slow sections, in print order. *)

val all_names : unit -> string list

val sections_digest : string list -> string
(** The digest guarding report checkpoints (ordered section names). *)

val run_sections_supervised :
  ?pool:Promise_core.Pool.t ->
  ?on_checkpoint:(completed:int -> total:int -> unit) ->
  Promise_core.Supervisor.session ->
  Format.formatter ->
  string list ->
  sections_outcome
(** Render the named sections as supervised work items: each render is
    deadline/retry/quarantine-supervised, finished renders are
    checkpointed after every pool-width chunk, and the assembled
    report prints once, in section order — byte-identical to
    {!print_sections} however often the run was interrupted and
    resumed. Unknown names are skipped (the CLIs report them). A
    completed run removes its checkpoint. *)

(** {2 Fleet (multi-process) rendering} *)

type sections_fleet_outcome =
  | Sections_fleet_done of {
      quarantined : int;
      summary : Promise_core.Fleet.summary;
    }
      (** printed; [quarantined] sections were replaced by their error *)
  | Sections_fleet_interrupted of { completed_shards : int; total_shards : int }
  | Sections_fleet_rejected of Promise_core.Error.t

val run_sections_fleet :
  ?on_shard_done:(shard:int -> completed:int -> total:int -> unit) ->
  Promise_core.Fleet.config ->
  shards:int ->
  Format.formatter ->
  string list ->
  sections_fleet_outcome
(** {!run_sections_supervised} across forked worker processes: the
    named sections are split into at most [shards] contiguous slices,
    each rendered in a crash-isolated worker (exceptions captured per
    section; a quarantined {e shard} quarantines every section it
    covered), and printed in section order — byte-identical to
    {!print_sections} through worker crashes and kill/resume cycles. *)
