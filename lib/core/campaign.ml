module B = Benchmarks
module Machine = Promise_arch.Machine
module Bank = Promise_arch.Bank
module Faults = Promise_arch.Faults
module Selftest = Promise_arch.Selftest
module Runtime = Promise_compiler.Runtime
module E = Promise_core.Error

let ok_exn = function Ok v -> v | Error e -> invalid_arg (E.to_string e)

(* ------------------------------------------------------------------ *)
(* Scenarios                                                           *)
(* ------------------------------------------------------------------ *)

type scenario = {
  sname : string;
  kind : string;  (** fault-kind tag, one per distinct model *)
  inject : Machine.t -> unit;
      (** set the fault descriptors on a machine's banks (any size ≥ 2) *)
  expected : (int * (Selftest.kind -> bool)) list;
      (** ground truth: (bank, finding predicate) the BIST must report *)
}

let set m bank faults =
  if bank < Machine.n_banks m then Bank.set_faults (Machine.bank m bank) faults

let scenario_stuck_lane =
  let f = ok_exn (Faults.with_stuck_lane Faults.none ~lane:5 ~code:64) in
  {
    sname = "stuck-lane b0/l5=64";
    kind = "stuck-lane";
    inject = (fun m -> set m 0 f);
    expected =
      [
        ( 0,
          function
          | Selftest.Stuck_lane { lane = 5; code } -> abs (code - 64) <= 2
          | _ -> false );
      ];
  }

let scenario_dead_lanes =
  let f =
    ok_exn
      (Result.bind
         (Faults.with_dead_lane Faults.none ~lane:3)
         (Faults.with_dead_lane ~lane:17))
  in
  {
    sname = "dead-lanes b0/l3,l17";
    kind = "dead-lane";
    inject = (fun m -> set m 0 f);
    expected =
      [
        (0, function Selftest.Dead_lane { lane = 3 } -> true | _ -> false);
        (0, function Selftest.Dead_lane { lane = 17 } -> true | _ -> false);
      ];
  }

let scenario_dead_bank =
  {
    sname = "dead-bank b1";
    kind = "dead-bank";
    inject = (fun m -> set m 1 (Faults.with_dead_bank Faults.none));
    expected = [ (1, function Selftest.Dead_bank -> true | _ -> false) ];
  }

let scenario_adc_offset =
  {
    sname = "adc-offset b0/+0.08";
    kind = "adc-offset";
    inject = (fun m -> set m 0 (Faults.with_adc_offset Faults.none 0.08));
    expected =
      [
        ( 0,
          function
          | Selftest.Adc_offset { offset } -> Float.abs (offset -. 0.08) < 0.04
          | _ -> false );
      ];
  }

let scenario_dead_adc =
  let f = ok_exn (Faults.with_dead_adc_units Faults.none 6) in
  {
    sname = "dead-adc b0/6of8";
    kind = "dead-adc";
    inject = (fun m -> set m 0 f);
    expected = [ (0, function Selftest.Dead_adc _ -> true | _ -> false) ];
  }

let scenario_xreg_transient =
  let f = ok_exn (Faults.with_xreg_flips Faults.none ~seed:97 ~rate:0.02) in
  {
    sname = "xreg-flips b0/2%";
    kind = "xreg-transient";
    inject = (fun m -> set m 0 f);
    expected =
      [
        ( 0,
          function
          | Selftest.Xreg_transient { events; _ } -> events >= 2
          | _ -> false );
      ];
  }

let scenario_swing_drift =
  let f = ok_exn (Faults.with_swing_drift Faults.none 4) in
  {
    sname = "swing-drift b0/-4";
    kind = "swing-drift";
    inject = (fun m -> set m 0 f);
    expected =
      [ (0, function Selftest.Swing_degraded _ -> true | _ -> false) ];
  }

let scenario_leakage =
  let f = ok_exn (Faults.with_leakage_mult Faults.none 8.0) in
  {
    sname = "leakage b0/x8";
    kind = "excess-leakage";
    inject = (fun m -> set m 0 f);
    expected =
      [ (0, function Selftest.Excess_leakage _ -> true | _ -> false) ];
  }

let quick_scenarios () =
  [
    scenario_stuck_lane;
    scenario_dead_lanes;
    scenario_dead_bank;
    scenario_adc_offset;
    scenario_dead_adc;
  ]

let all_scenarios () =
  quick_scenarios ()
  @ [ scenario_xreg_transient; scenario_swing_drift; scenario_leakage ]

(* ------------------------------------------------------------------ *)
(* One campaign cell: scenario × benchmark                             *)
(* ------------------------------------------------------------------ *)

type cell = {
  benchmark : string;
  scenario : string;
  detected : bool;  (** BIST reported every injected fault *)
  baseline : float;  (** fault-free accuracy *)
  faulted : float;  (** accuracy with the fault, no recovery *)
  recovered : float;  (** accuracy with BIST-derived recovery *)
  residual : float;  (** baseline − recovered, clamped at 0 *)
  recovered_ok : bool;  (** residual within the campaign budget *)
}

(* The recovery budget: residual accuracy loss a degraded part may
   keep. Matches the loosest application-level validation budget. *)
let residual_budget = 0.06

(* BIST probe machine: 2 banks cover every scenario's injection sites. *)
let probe_report scenario =
  let m =
    Machine.create
      { Machine.banks = 2; profile = Bank.Silicon; noise_seed = Some 1234 }
  in
  scenario.inject m;
  ok_exn (Selftest.run m)

let detected_in report scenario =
  List.for_all
    (fun (bank, pred) ->
      List.exists pred (Selftest.findings_for report ~bank))
    scenario.expected

(* Machine size for the recovered run: lane sparing shrinks per-bank
   capacity, and excluding banks must leave at least one whole clean
   bank group. *)
let recovered_banks (b : B.t) (r : Runtime.recovery) =
  let max_lanes =
    max 1 (Promise_arch.Params.lanes - List.length r.Runtime.spared_lanes)
  in
  let base = Runtime.required_banks ~max_lanes b.B.graph in
  if r.Runtime.excluded_banks = [] then base else 2 * base

let run_cell ?pool ?(batch = 1) ~scenario (b : B.t) ~baseline =
  let swings = B.max_swings b in
  let faulted =
    (b.B.evaluate ~prepare:scenario.inject ?pool ~batch ~swings ())
      .B.promise_accuracy
  in
  let report = probe_report scenario in
  let detected = detected_in report scenario in
  let recovery = Runtime.recovery_of_report report in
  let recovered =
    (b.B.evaluate ~prepare:scenario.inject ~recovery
       ~banks:(recovered_banks b recovery) ?pool ~batch ~swings ())
      .B.promise_accuracy
  in
  let residual = Float.max 0.0 (baseline -. recovered) in
  {
    benchmark = b.B.short;
    scenario = scenario.sname;
    detected;
    baseline;
    faulted;
    recovered;
    residual;
    recovered_ok = residual <= residual_budget;
  }

(* ------------------------------------------------------------------ *)
(* The campaign                                                        *)
(* ------------------------------------------------------------------ *)

let fast_benchmarks () = [ B.matched_filter (); B.template_l1 (); B.knn_l1 () ]

(* Cells are independent (each evaluation creates its own machines from
   fixed seeds), so the campaign fans out across the pool: first the
   per-benchmark baselines, then the full scenario × benchmark grid.
   Results come back in input order — the table is identical at any
   job count. *)
let run_cells ?pool ?(batch = 1) ~scenarios ~benchmarks () =
  let pool = Option.value pool ~default:Promise_core.Pool.sequential in
  let baselines =
    Promise_core.Pool.map_list pool
      (fun (b : B.t) ->
        (b.B.evaluate ~batch ~swings:(B.max_swings b) ()).B.promise_accuracy)
      benchmarks
  in
  let grid =
    List.concat_map
      (fun (b, baseline) -> List.map (fun s -> (b, baseline, s)) scenarios)
      (List.combine benchmarks baselines)
  in
  Promise_core.Pool.map_list pool
    (fun ((b : B.t), baseline, s) -> run_cell ~batch ~scenario:s b ~baseline)
    grid

let print_cells ppf cells =
  Format.fprintf ppf
    "   %-20s %-14s %-9s %8s %8s %8s %8s  %s@." "scenario" "benchmark"
    "detected" "baseline" "faulted" "recover" "residual" "ok";
  List.iter
    (fun c ->
      Format.fprintf ppf
        "   %-20s %-14s %-9s %8.3f %8.3f %8.3f %8.3f  %s@." c.scenario
        c.benchmark
        (if c.detected then "yes" else "NO")
        c.baseline c.faulted c.recovered c.residual
        (if c.recovered_ok then "ok" else "FAIL"))
    cells

let summarize cells =
  let n = List.length cells in
  let count p = List.length (List.filter p cells) in
  let detection = float_of_int (count (fun c -> c.detected)) /. float_of_int n in
  let recovery =
    float_of_int (count (fun c -> c.recovered_ok)) /. float_of_int n
  in
  let mean_residual =
    List.fold_left (fun a c -> a +. c.residual) 0.0 cells /. float_of_int n
  in
  (detection, recovery, mean_residual)

(* ------------------------------------------------------------------ *)
(* Supervised, checkpointed execution                                  *)
(* ------------------------------------------------------------------ *)

module Sup = Promise_core.Supervisor
module Ckpt = Promise_core.Checkpoint
module Inc = Promise_core.Incident

type cell_result = {
  r_benchmark : string;
  r_scenario : string;
  r_cell : (cell, E.t) result;  (** [Error] = the cell was quarantined *)
}

type outcome =
  | Completed of cell_result list
  | Interrupted of { completed : int; total : int }
  | Rejected of E.t

(* The checkpoint payload: per-benchmark baselines and per-grid-cell
   results, indexed positionally over the (benchmark × scenario) grid.
   Everything in here is plain data (floats, strings, Error.t), so
   Marshal round-trips it bit-exactly. *)
type progress = {
  p_baselines : (float, E.t) result option array;
  p_cells : cell_result option array;
}

(* [batch] is part of the digest: a checkpoint (or fleet shard) written
   at one batch width holds different cell values than another, so
   resuming it at a different width must be a stale-checkpoint
   rejection, never a silent mix. *)
let config_digest ?(batch = 1) ~scenarios ~benchmarks () =
  Ckpt.digest_of_config ~kind:"campaign-cells"
    ((Printf.sprintf "budget=%.4f" residual_budget
     :: Printf.sprintf "batch=%d" batch
     :: List.map (fun s -> s.sname ^ "/" ^ s.kind) scenarios)
    @ List.map (fun (b : B.t) -> b.B.short) benchmarks)

let count_some arr =
  Array.fold_left (fun n o -> if o = None then n else n + 1) 0 arr

(* Cells processed between checkpoint flushes: one pool width per
   chunk keeps every domain busy while bounding how much work a crash
   or SIGTERM can lose. *)
let chunk_size pool = max 1 (Promise_core.Pool.jobs pool)

let rec take k = function
  | [] -> ([], [])
  | l when k = 0 -> ([], l)
  | x :: tl ->
      let a, b = take (k - 1) tl in
      (x :: a, b)

let run_cells_supervised ?pool ?(batch = 1)
    ?(on_checkpoint = fun ~completed:_ ~total:_ -> ())
    (session : Sup.session) ~scenarios ~benchmarks () =
  let pool = Option.value pool ~default:Promise_core.Pool.sequential in
  let cfg = session.Sup.sup in
  let inc = cfg.Sup.incidents in
  let barr = Array.of_list benchmarks in
  let sarr = Array.of_list scenarios in
  let nb = Array.length barr and ns = Array.length sarr in
  let total = nb * ns in
  let digest = config_digest ~batch ~scenarios ~benchmarks () in
  let fresh () =
    { p_baselines = Array.make nb None; p_cells = Array.make total None }
  in
  let loaded =
    match session.Sup.checkpoint with
    | Some path when session.Sup.resume && Ckpt.exists path -> (
        match (Ckpt.load ~path ~config_digest:digest : (progress, E.t) result) with
        | Ok p
          when Array.length p.p_baselines = nb
               && Array.length p.p_cells = total ->
            Inc.record inc Inc.Checkpoint_resume
              [
                ("path", path);
                ("cells_done", string_of_int (count_some p.p_cells));
                ("total", string_of_int total);
              ];
            Ok p
        | Ok _ ->
            Error
              (E.make ~layer:"campaign" ~code:E.Stale_checkpoint
                 ~context:[ ("path", path) ]
                 "checkpoint grid shape does not match this campaign")
        | Error e ->
            Inc.record inc Inc.Checkpoint_stale [ ("error", E.to_string e) ];
            Error e)
    | _ -> Ok (fresh ())
  in
  match loaded with
  | Error e -> Rejected e
  | Ok progress ->
      let save () =
        match session.Sup.checkpoint with
        | None -> ()
        | Some path -> (
            match Ckpt.save ~path ~config_digest:digest progress with
            | Ok () ->
                let completed = count_some progress.p_cells in
                Inc.record inc Inc.Checkpoint_write
                  [
                    ("path", path);
                    ("cells_done", string_of_int completed);
                    ("total", string_of_int total);
                  ];
                on_checkpoint ~completed ~total
            | Error e ->
                (* losing persistence degrades, it does not abort *)
                Inc.record inc Inc.Degradation
                  [ ("what", "checkpoint write failed");
                    ("error", E.to_string e) ])
      in
      let interrupted () =
        save ();
        Inc.record inc Inc.Signal
          [
            ( "signal",
              match Sup.stop_signal session.Sup.stop with
              | Some n -> Sup.signal_name n
              | None -> "request" );
            ("cells_done", string_of_int (count_some progress.p_cells));
            ("total", string_of_int total);
          ];
        Interrupted { completed = count_some progress.p_cells; total }
      in
      Inc.record inc Inc.Run_start
        [
          ("what", "campaign");
          ("total_cells", string_of_int total);
          ("jobs", string_of_int (Promise_core.Pool.jobs pool));
          ("resumed", string_of_int (count_some progress.p_cells));
        ];
      if Sup.stop_requested session.Sup.stop then interrupted ()
      else begin
        (* 1. per-benchmark baselines (supervised items themselves) *)
        let missing_b =
          List.filter
            (fun i -> progress.p_baselines.(i) = None)
            (List.init nb Fun.id)
        in
        if missing_b <> [] then begin
          let results =
            Sup.map_result ~pool cfg
              ~label:(fun k ->
                "baseline:" ^ (barr.(List.nth missing_b k)).B.short)
              (fun i ->
                let b = barr.(i) in
                Ok
                  (b.B.evaluate ~batch ~swings:(B.max_swings b) ())
                    .B.promise_accuracy)
              missing_b
          in
          List.iter2
            (fun i r -> progress.p_baselines.(i) <- Some r)
            missing_b results;
          (* a quarantined baseline condemns that benchmark's cells *)
          Array.iteri
            (fun bi baseline ->
              match baseline with
              | Some (Error e) ->
                  for si = 0 to ns - 1 do
                    let gi = (bi * ns) + si in
                    if progress.p_cells.(gi) = None then
                      progress.p_cells.(gi) <-
                        Some
                          {
                            r_benchmark = barr.(bi).B.short;
                            r_scenario = sarr.(si).sname;
                            r_cell =
                              Error
                                (E.with_context e
                                   [ ("cascade", "baseline quarantined") ]);
                          }
                  done
              | _ -> ())
            progress.p_baselines;
          save ()
        end;
        (* 2. the grid, chunk by chunk *)
        let pending =
          List.filter
            (fun i -> progress.p_cells.(i) = None)
            (List.init total Fun.id)
        in
        let run_one gi =
          let bi = gi / ns and si = gi mod ns in
          let b = barr.(bi) and s = sarr.(si) in
          match progress.p_baselines.(bi) with
          | Some (Ok baseline) -> Ok (run_cell ~batch ~scenario:s b ~baseline)
          | _ ->
              E.fail ~layer:"campaign" ~code:E.Internal
                ~context:[ ("benchmark", b.B.short) ]
                "cell ran without a baseline"
        in
        let rec loop pending =
          if Sup.stop_requested session.Sup.stop then interrupted ()
          else
            match pending with
            | [] ->
                Inc.record inc Inc.Run_end
                  [
                    ("what", "campaign");
                    ("total_cells", string_of_int total);
                  ];
                (match session.Sup.checkpoint with
                | Some path -> Ckpt.remove path
                | None -> ());
                Completed
                  (List.init total (fun i -> Option.get progress.p_cells.(i)))
            | _ ->
                let chunk, rest = take (chunk_size pool) pending in
                let carr = Array.of_list chunk in
                let results =
                  Sup.map_result ~pool cfg
                    ~label:(fun k ->
                      let gi = carr.(k) in
                      Printf.sprintf "cell:%s:%s"
                        (barr.(gi / ns)).B.short
                        sarr.(gi mod ns).sname)
                    run_one chunk
                in
                List.iter2
                  (fun gi r ->
                    progress.p_cells.(gi) <-
                      Some
                        {
                          r_benchmark = (barr.(gi / ns)).B.short;
                          r_scenario = sarr.(gi mod ns).sname;
                          r_cell = r;
                        })
                  chunk results;
                save ();
                loop rest
        in
        loop pending
      end

let print_cell_results ppf results =
  Format.fprintf ppf
    "   %-20s %-14s %-9s %8s %8s %8s %8s  %s@." "scenario" "benchmark"
    "detected" "baseline" "faulted" "recover" "residual" "ok";
  List.iter
    (fun r ->
      match r.r_cell with
      | Ok c ->
          Format.fprintf ppf
            "   %-20s %-14s %-9s %8.3f %8.3f %8.3f %8.3f  %s@." c.scenario
            c.benchmark
            (if c.detected then "yes" else "NO")
            c.baseline c.faulted c.recovered c.residual
            (if c.recovered_ok then "ok" else "FAIL")
      | Error e ->
          Format.fprintf ppf "   %-20s %-14s QUARANTINED  %s@." r.r_scenario
            r.r_benchmark (E.to_string e))
    results

type supervised_summary = {
  cells : int;
  quarantined : int;
  undetected : int;  (** completed cells whose BIST missed a fault *)
  residual_errors : int;
      (** quarantined cells + completed cells over the residual budget *)
}

let summarize_results results =
  let cells = List.length results in
  let quarantined =
    List.length (List.filter (fun r -> Result.is_error r.r_cell) results)
  in
  let ok_cells = List.filter_map (fun r -> Result.to_option r.r_cell) results in
  let undetected =
    List.length (List.filter (fun c -> not c.detected) ok_cells)
  in
  let unrecovered =
    List.length (List.filter (fun c -> not c.recovered_ok) ok_cells)
  in
  {
    cells;
    quarantined;
    undetected;
    residual_errors = quarantined + unrecovered;
  }

let report_supervised ?(quick = false) ?pool ?on_checkpoint session ppf =
  let scenarios = if quick then quick_scenarios () else all_scenarios () in
  let benchmarks = fast_benchmarks () in
  Format.fprintf ppf
    "@.== Fault-injection campaign (%d scenarios x %d benchmarks%s) ==@."
    (List.length scenarios) (List.length benchmarks)
    (if quick then ", quick" else "");
  match
    run_cells_supervised ?pool ?on_checkpoint session ~scenarios ~benchmarks ()
  with
  | (Interrupted _ | Rejected _) as o -> o
  | Completed results as o ->
      print_cell_results ppf results;
      let ok_cells =
        List.filter_map (fun r -> Result.to_option r.r_cell) results
      in
      if ok_cells <> [] then begin
        let detection, recovery, mean_residual = summarize ok_cells in
        Format.fprintf ppf
          "   detection rate %.0f%%   recovery rate %.0f%%   mean residual \
           loss %.3f (budget %.2f)@."
          (100.0 *. detection) (100.0 *. recovery) mean_residual
          residual_budget
      end;
      let s = summarize_results results in
      if s.quarantined > 0 then
        Format.fprintf ppf "   quarantined cells: %d of %d@." s.quarantined
          s.cells;
      o

(* ------------------------------------------------------------------ *)
(* Fleet (multi-process) execution                                     *)
(* ------------------------------------------------------------------ *)

module Fleet = Promise_core.Fleet

type fleet_outcome =
  | Fleet_completed of cell_result list * Fleet.summary
  | Fleet_interrupted of { completed_shards : int; total_shards : int }
  | Fleet_rejected of E.t

let capture_cell_exn ~what exn =
  let bt = String.trim (Printexc.get_backtrace ()) in
  E.make ~layer:"campaign-fleet" ~code:E.Internal
    ~context:
      (("what", what)
      :: ("exn", Printexc.to_string exn)
      :: (if bt = "" then [] else [ ("backtrace", bt) ]))
    "cell raised in fleet worker"

(* The fleet path shards the same (benchmark x scenario) grid as the
   supervised path into contiguous index ranges, one range per forked
   worker shard. A shard recomputes the baselines of the benchmarks it
   touches (memoized within the shard) — deterministic recomputation
   beats shipping floats between processes, and a shard's result then
   depends only on its index, which is what makes kill/resume runs
   bit-identical to clean ones. *)
let run_cells_fleet ?on_shard_done ?(batch = 1) (fcfg : Fleet.config) ~shards
    ~scenarios ~benchmarks () =
  let barr = Array.of_list benchmarks and sarr = Array.of_list scenarios in
  let nb = Array.length barr and ns = Array.length sarr in
  let total = nb * ns in
  if total = 0 then
    Fleet_completed
      ( [],
        {
          Fleet.shards = 0;
          workers = 0;
          restarts = 0;
          resumed = 0;
          quarantined = 0;
          total_ms = 0.0;
          timings = [||];
        } )
  else begin
    let ranges = Fleet.ranges ~shards ~items:total in
    let digest = config_digest ~batch ~scenarios ~benchmarks () in
    let f ~shard =
      let off, len = ranges.(shard) in
      let baselines = Array.make nb None in
      let baseline_for bi =
        match baselines.(bi) with
        | Some r -> r
        | None ->
            let r =
              try
                let b = barr.(bi) in
                Ok
                  (b.B.evaluate ~batch ~swings:(B.max_swings b) ())
                    .B.promise_accuracy
              with exn ->
                Error
                  (capture_cell_exn
                     ~what:("baseline:" ^ barr.(bi).B.short)
                     exn)
            in
            baselines.(bi) <- Some r;
            r
      in
      let cell_of gi =
        let bi = gi / ns and si = gi mod ns in
        let b = barr.(bi) and s = sarr.(si) in
        let r_cell =
          match baseline_for bi with
          | Error e -> Error (E.with_context e [ ("cascade", "baseline failed") ])
          | Ok baseline -> (
              try Ok (run_cell ~batch ~scenario:s b ~baseline)
              with exn ->
                Error
                  (capture_cell_exn
                     ~what:(Printf.sprintf "cell:%s:%s" b.B.short s.sname)
                     exn))
        in
        { r_benchmark = b.B.short; r_scenario = s.sname; r_cell }
      in
      Ok (List.init len (fun k -> cell_of (off + k)))
    in
    match Fleet.run ?on_shard_done fcfg ~digest ~shards:(Array.length ranges) ~f with
    | Fleet.Fleet_rejected e -> Fleet_rejected e
    | Fleet.Fleet_interrupted { completed; total } ->
        Fleet_interrupted { completed_shards = completed; total_shards = total }
    | Fleet.Fleet_done (slots, summary) ->
        (* shard-major expansion: a quarantined shard becomes one
           QUARANTINED row per cell it covered *)
        let cells =
          Array.mapi
            (fun sh slot ->
              match slot with
              | Ok cells -> cells
              | Error e ->
                  let off, len = ranges.(sh) in
                  List.init len (fun k ->
                      let gi = off + k in
                      {
                        r_benchmark = (barr.(gi / ns)).B.short;
                        r_scenario = sarr.(gi mod ns).sname;
                        r_cell =
                          Error
                            (E.with_context e
                               [ ("shard", string_of_int sh) ]);
                      }))
            slots
          |> Array.to_list |> List.concat
        in
        Fleet_completed (cells, summary)
  end

let report_fleet ?(quick = false) ?on_shard_done ?(batch = 1) fcfg ~shards ppf =
  let scenarios = if quick then quick_scenarios () else all_scenarios () in
  let benchmarks = fast_benchmarks () in
  Format.fprintf ppf
    "@.== Fault-injection campaign (%d scenarios x %d benchmarks%s) ==@."
    (List.length scenarios) (List.length benchmarks)
    (if quick then ", quick" else "");
  match
    run_cells_fleet ?on_shard_done ~batch fcfg ~shards ~scenarios ~benchmarks ()
  with
  | (Fleet_interrupted _ | Fleet_rejected _) as o -> o
  | Fleet_completed (results, _) as o ->
      print_cell_results ppf results;
      let ok_cells =
        List.filter_map (fun r -> Result.to_option r.r_cell) results
      in
      if ok_cells <> [] then begin
        let detection, recovery, mean_residual = summarize ok_cells in
        Format.fprintf ppf
          "   detection rate %.0f%%   recovery rate %.0f%%   mean residual \
           loss %.3f (budget %.2f)@."
          (100.0 *. detection) (100.0 *. recovery) mean_residual
          residual_budget
      end;
      let s = summarize_results results in
      if s.quarantined > 0 then
        Format.fprintf ppf "   quarantined cells: %d of %d@." s.quarantined
          s.cells;
      o

let report ?(quick = false) ?pool ppf =
  let scenarios = if quick then quick_scenarios () else all_scenarios () in
  let benchmarks = fast_benchmarks () in
  Format.fprintf ppf
    "@.== Fault-injection campaign (%d scenarios x %d benchmarks%s) ==@."
    (List.length scenarios) (List.length benchmarks)
    (if quick then ", quick" else "");
  let cells = run_cells ?pool ~scenarios ~benchmarks () in
  print_cells ppf cells;
  let detection, recovery, mean_residual = summarize cells in
  Format.fprintf ppf
    "   detection rate %.0f%%   recovery rate %.0f%%   mean residual loss \
     %.3f (budget %.2f)@."
    (100.0 *. detection) (100.0 *. recovery) mean_residual residual_budget;
  detection = 1.0 && recovery = 1.0
