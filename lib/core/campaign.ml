module B = Benchmarks
module Machine = Promise_arch.Machine
module Bank = Promise_arch.Bank
module Faults = Promise_arch.Faults
module Selftest = Promise_arch.Selftest
module Runtime = Promise_compiler.Runtime
module E = Promise_core.Error

let ok_exn = function Ok v -> v | Error e -> invalid_arg (E.to_string e)

(* ------------------------------------------------------------------ *)
(* Scenarios                                                           *)
(* ------------------------------------------------------------------ *)

type scenario = {
  sname : string;
  kind : string;  (** fault-kind tag, one per distinct model *)
  inject : Machine.t -> unit;
      (** set the fault descriptors on a machine's banks (any size ≥ 2) *)
  expected : (int * (Selftest.kind -> bool)) list;
      (** ground truth: (bank, finding predicate) the BIST must report *)
}

let set m bank faults =
  if bank < Machine.n_banks m then Bank.set_faults (Machine.bank m bank) faults

let scenario_stuck_lane =
  let f = ok_exn (Faults.with_stuck_lane Faults.none ~lane:5 ~code:64) in
  {
    sname = "stuck-lane b0/l5=64";
    kind = "stuck-lane";
    inject = (fun m -> set m 0 f);
    expected =
      [
        ( 0,
          function
          | Selftest.Stuck_lane { lane = 5; code } -> abs (code - 64) <= 2
          | _ -> false );
      ];
  }

let scenario_dead_lanes =
  let f =
    ok_exn
      (Result.bind
         (Faults.with_dead_lane Faults.none ~lane:3)
         (Faults.with_dead_lane ~lane:17))
  in
  {
    sname = "dead-lanes b0/l3,l17";
    kind = "dead-lane";
    inject = (fun m -> set m 0 f);
    expected =
      [
        (0, function Selftest.Dead_lane { lane = 3 } -> true | _ -> false);
        (0, function Selftest.Dead_lane { lane = 17 } -> true | _ -> false);
      ];
  }

let scenario_dead_bank =
  {
    sname = "dead-bank b1";
    kind = "dead-bank";
    inject = (fun m -> set m 1 (Faults.with_dead_bank Faults.none));
    expected = [ (1, function Selftest.Dead_bank -> true | _ -> false) ];
  }

let scenario_adc_offset =
  {
    sname = "adc-offset b0/+0.08";
    kind = "adc-offset";
    inject = (fun m -> set m 0 (Faults.with_adc_offset Faults.none 0.08));
    expected =
      [
        ( 0,
          function
          | Selftest.Adc_offset { offset } -> Float.abs (offset -. 0.08) < 0.04
          | _ -> false );
      ];
  }

let scenario_dead_adc =
  let f = ok_exn (Faults.with_dead_adc_units Faults.none 6) in
  {
    sname = "dead-adc b0/6of8";
    kind = "dead-adc";
    inject = (fun m -> set m 0 f);
    expected = [ (0, function Selftest.Dead_adc _ -> true | _ -> false) ];
  }

let scenario_xreg_transient =
  let f = ok_exn (Faults.with_xreg_flips Faults.none ~seed:97 ~rate:0.02) in
  {
    sname = "xreg-flips b0/2%";
    kind = "xreg-transient";
    inject = (fun m -> set m 0 f);
    expected =
      [
        ( 0,
          function
          | Selftest.Xreg_transient { events; _ } -> events >= 2
          | _ -> false );
      ];
  }

let scenario_swing_drift =
  let f = ok_exn (Faults.with_swing_drift Faults.none 4) in
  {
    sname = "swing-drift b0/-4";
    kind = "swing-drift";
    inject = (fun m -> set m 0 f);
    expected =
      [ (0, function Selftest.Swing_degraded _ -> true | _ -> false) ];
  }

let scenario_leakage =
  let f = ok_exn (Faults.with_leakage_mult Faults.none 8.0) in
  {
    sname = "leakage b0/x8";
    kind = "excess-leakage";
    inject = (fun m -> set m 0 f);
    expected =
      [ (0, function Selftest.Excess_leakage _ -> true | _ -> false) ];
  }

let quick_scenarios () =
  [
    scenario_stuck_lane;
    scenario_dead_lanes;
    scenario_dead_bank;
    scenario_adc_offset;
    scenario_dead_adc;
  ]

let all_scenarios () =
  quick_scenarios ()
  @ [ scenario_xreg_transient; scenario_swing_drift; scenario_leakage ]

(* ------------------------------------------------------------------ *)
(* One campaign cell: scenario × benchmark                             *)
(* ------------------------------------------------------------------ *)

type cell = {
  benchmark : string;
  scenario : string;
  detected : bool;  (** BIST reported every injected fault *)
  baseline : float;  (** fault-free accuracy *)
  faulted : float;  (** accuracy with the fault, no recovery *)
  recovered : float;  (** accuracy with BIST-derived recovery *)
  residual : float;  (** baseline − recovered, clamped at 0 *)
  recovered_ok : bool;  (** residual within the campaign budget *)
}

(* The recovery budget: residual accuracy loss a degraded part may
   keep. Matches the loosest application-level validation budget. *)
let residual_budget = 0.06

(* BIST probe machine: 2 banks cover every scenario's injection sites. *)
let probe_report scenario =
  let m =
    Machine.create
      { Machine.banks = 2; profile = Bank.Silicon; noise_seed = Some 1234 }
  in
  scenario.inject m;
  ok_exn (Selftest.run m)

let detected_in report scenario =
  List.for_all
    (fun (bank, pred) ->
      List.exists pred (Selftest.findings_for report ~bank))
    scenario.expected

(* Machine size for the recovered run: lane sparing shrinks per-bank
   capacity, and excluding banks must leave at least one whole clean
   bank group. *)
let recovered_banks (b : B.t) (r : Runtime.recovery) =
  let max_lanes =
    max 1 (Promise_arch.Params.lanes - List.length r.Runtime.spared_lanes)
  in
  let base = Runtime.required_banks ~max_lanes b.B.graph in
  if r.Runtime.excluded_banks = [] then base else 2 * base

let run_cell ?pool ~scenario (b : B.t) ~baseline =
  let swings = B.max_swings b in
  let faulted =
    (b.B.evaluate ~prepare:scenario.inject ?pool ~swings ()).B.promise_accuracy
  in
  let report = probe_report scenario in
  let detected = detected_in report scenario in
  let recovery = Runtime.recovery_of_report report in
  let recovered =
    (b.B.evaluate ~prepare:scenario.inject ~recovery
       ~banks:(recovered_banks b recovery) ?pool ~swings ())
      .B.promise_accuracy
  in
  let residual = Float.max 0.0 (baseline -. recovered) in
  {
    benchmark = b.B.short;
    scenario = scenario.sname;
    detected;
    baseline;
    faulted;
    recovered;
    residual;
    recovered_ok = residual <= residual_budget;
  }

(* ------------------------------------------------------------------ *)
(* The campaign                                                        *)
(* ------------------------------------------------------------------ *)

let fast_benchmarks () = [ B.matched_filter (); B.template_l1 (); B.knn_l1 () ]

(* Cells are independent (each evaluation creates its own machines from
   fixed seeds), so the campaign fans out across the pool: first the
   per-benchmark baselines, then the full scenario × benchmark grid.
   Results come back in input order — the table is identical at any
   job count. *)
let run_cells ?pool ~scenarios ~benchmarks () =
  let pool = Option.value pool ~default:Promise_core.Pool.sequential in
  let baselines =
    Promise_core.Pool.map_list pool
      (fun (b : B.t) ->
        (b.B.evaluate ~swings:(B.max_swings b) ()).B.promise_accuracy)
      benchmarks
  in
  let grid =
    List.concat_map
      (fun (b, baseline) -> List.map (fun s -> (b, baseline, s)) scenarios)
      (List.combine benchmarks baselines)
  in
  Promise_core.Pool.map_list pool
    (fun ((b : B.t), baseline, s) -> run_cell ~scenario:s b ~baseline)
    grid

let print_cells ppf cells =
  Format.fprintf ppf
    "   %-20s %-14s %-9s %8s %8s %8s %8s  %s@." "scenario" "benchmark"
    "detected" "baseline" "faulted" "recover" "residual" "ok";
  List.iter
    (fun c ->
      Format.fprintf ppf
        "   %-20s %-14s %-9s %8.3f %8.3f %8.3f %8.3f  %s@." c.scenario
        c.benchmark
        (if c.detected then "yes" else "NO")
        c.baseline c.faulted c.recovered c.residual
        (if c.recovered_ok then "ok" else "FAIL"))
    cells

let summarize cells =
  let n = List.length cells in
  let count p = List.length (List.filter p cells) in
  let detection = float_of_int (count (fun c -> c.detected)) /. float_of_int n in
  let recovery =
    float_of_int (count (fun c -> c.recovered_ok)) /. float_of_int n
  in
  let mean_residual =
    List.fold_left (fun a c -> a +. c.residual) 0.0 cells /. float_of_int n
  in
  (detection, recovery, mean_residual)

let report ?(quick = false) ?pool ppf =
  let scenarios = if quick then quick_scenarios () else all_scenarios () in
  let benchmarks = fast_benchmarks () in
  Format.fprintf ppf
    "@.== Fault-injection campaign (%d scenarios x %d benchmarks%s) ==@."
    (List.length scenarios) (List.length benchmarks)
    (if quick then ", quick" else "");
  let cells = run_cells ?pool ~scenarios ~benchmarks () in
  print_cells ppf cells;
  let detection, recovery, mean_residual = summarize cells in
  Format.fprintf ppf
    "   detection rate %.0f%%   recovery rate %.0f%%   mean residual loss \
     %.3f (budget %.2f)@."
    (100.0 *. detection) (100.0 *. recovery) mean_residual residual_budget;
  detection = 1.0 && recovery = 1.0
