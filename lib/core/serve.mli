(** promise-serve: the batched, admission-controlled inference engine.

    The serving layer in front of the machine — the runtime/driver tier
    a programmable accelerator grows once it faces request traffic
    rather than batch jobs. The data path is

    {v  submit → bounded queue → per-model coalescer → batch dispatcher → responder  v}

    - {e Admission control}: requests enter a {!Promise_core.Queue_bounded}
      and a full queue rejects the offer {e immediately} with a typed
      [Capacity] error (logged as an [Admission_reject] incident) —
      backpressure is an answer to the client, not an unbounded buffer.
    - {e Coalescing}: queued requests for the same model accumulate in a
      per-model pending set and flush as one multi-decision batch when
      the set reaches [batch_max] {e or} its oldest request has waited
      [flush_us] microseconds, whichever comes first.
    - {e Dispatch}: a flushed batch rides the PR-7 batch engine —
      single-task programs take the zero-allocation
      {!Promise_arch.Machine.execute_batch_into} serving path (probed
      once per model, falling back to
      {!Promise_arch.Machine.run_program_batch} if the launch shape is
      unsupported); execution runs under {!Promise_core.Supervisor} so a
      failure becomes typed per-request errors, never a dead daemon.
      [pool] fans multi-bank groups out across domains bank-major
      (per-bank affinity), exactly as {!Promise_arch.Machine.execute}.
    - {e Responder}: every request gets exactly one {!outcome} through
      the [respond] callback — a reply carrying the decision's emission
      values, or a typed rejection/timeout/failure.

    Bit-identity contract, extended through the service path: the values
    a request receives from a coalesced batch are bitwise identical to
    the values it would receive from sequential single-decision
    execution of the same arrival order on a twin machine (the PR-7
    batched ≡ sequential contract; [test_serve] and [--selftest-load]
    both enforce it).

    The engine is deliberately passive: {!submit}, {!pump} and
    {!flush_due} are called by one driver (the socket daemon's select
    loop, or a load generator), the clock is injectable, and nothing
    spawns threads — which is what makes flush-by-deadline and
    watchdog-timeout behavior unit-testable with a fake clock. *)

(** {2 Models} *)

type model
(** A compiled, resident inference target: a per-decision ISA program
    on a deterministically pre-loaded machine. Requests name a model;
    each served decision replays the program once (drawing fresh analog
    noise when the machine is noisy — Monte-Carlo scoring). *)

val model_of_benchmark :
  ?name:string ->
  ?banks:int ->
  ?noise_seed:int option ->
  ?fill_seed:int ->
  Benchmarks.t ->
  model
(** Build a servable model from a Table-2 benchmark's per-decision
    program. [name] is the key requests address it by (default: the
    benchmark's descriptive name); [banks] defaults to the program's
    requirement; [noise_seed] (default [None] — noiseless,
    deterministic serving) seeds the analog noise streams; [fill_seed]
    (default 7) seeds the deterministic bank-row / X-REG data image, so
    two models built from the same seeds are bit-for-bit twins. *)

val model_name : model -> string

(** {2 The engine} *)

type mode =
  | Batched  (** coalesced multi-decision dispatch (the point) *)
  | Single
      (** flush identically, but execute one decision at a time — the
          batch=1 service path the selftest measures against *)

type reply = {
  values : float array;
      (** the decision's emission stream (output-buffer + accumulator
          emissions, task order) — bitwise equal across {!mode}s *)
  batch : int;  (** decisions in the flushed batch this request rode *)
  wait_ns : int64;  (** admission → dispatch completion, engine clock *)
}

type outcome = {
  o_rid : int;
  o_model : string;
  o_result : (reply, Promise_core.Error.t) result;
}

type t

val create :
  ?clock:(unit -> int64) ->
  ?incidents:Promise_core.Incident.t ->
  ?pool:Promise_core.Pool.t ->
  ?deadline_ms:float ->
  ?mode:mode ->
  ?self_heal:bool ->
  ?breaker_threshold:int ->
  ?breaker_cooldown_ms:float ->
  ?dwell_budget_us:int ->
  queue:int ->
  batch_max:int ->
  flush_us:int ->
  respond:(outcome -> unit) ->
  model list ->
  (t, Promise_core.Error.t) result
(** [create ~queue ~batch_max ~flush_us ~respond models] — an engine
    serving [models]. [queue] bounds admission (1..1048576);
    [batch_max] bounds coalescing (1..4096, the [PROMISE_BATCH] range);
    [flush_us] (1..10^7) is the deadline-triggered flush. [deadline_ms]
    arms the per-request watchdog: a request still undispatched that
    long after admission is answered with a typed [Timeout] (and a
    [Timeout] incident) instead of being served stale. [clock] is the
    monotonic ns source (injectable for tests); [mode] defaults to
    {!Batched}. Typed [Invalid_operand] on out-of-range knobs or
    duplicate model names.

    Self-healing (on by default, [self_heal:false] restores the PR-8
    fail-the-batch behavior): a hardware [Fault] during a flush walks
    the degradation ladder — destructive BIST + quarantine via
    {!Promise_compiler.Runtime.recovery_of_report}, data-image refill,
    retry on the analog primary, then a digital fallback twin
    (reference kernels on a bit-for-bit rebuilt machine) — so requests
    only fail if the digital rung fails too. A per-model circuit
    breaker trips after [breaker_threshold] (default
    {!default_breaker_threshold}) consecutive batch failures: flushes
    then answer typed [Overloaded] (+ retry-after hint) for
    [breaker_cooldown_ms] (default 100) without touching the machine,
    after which one half-open probe batch decides close vs re-open.
    [dwell_budget_us] (default {!default_dwell_budget_us}) arms
    dwell-based overload shedding at {!submit}. Every breaker/BIST/
    degradation transition is recorded in the incident log. *)

val submit : t -> rid:int -> model:string -> (unit, Promise_core.Error.t) result
(** Offer one request. [Error] with [Capacity] when the queue is full
    (an [Admission_reject] incident is logged; the caller answers the
    client), [Overloaded] when a dwell budget is armed and the inbox
    head has already waited longer than it (shedding {e before} the
    queue is physically full — admitting more would only manufacture
    timeouts; the error context carries a [retry-after-ms] hint), or
    [Invalid_operand] for an unknown model — rejected at admission so
    the queue only ever holds dispatchable work. [Ok ()] guarantees
    exactly one later {!outcome} for [rid]. *)

val pump : t -> unit
(** Drain the admission queue into the per-model pending sets, flushing
    every set that reaches [batch_max] (flush-by-size). *)

val flush_due : t -> unit
(** Flush every pending set whose oldest request has waited [flush_us]
    (flush-by-deadline), answering watchdog-overdue requests with
    [Timeout] first. Reads the engine clock. *)

val flush_all : t -> unit
(** Dispatch everything pending regardless of age (shutdown / drain). *)

val next_deadline_ns : t -> int64 option
(** Engine-clock instant of the earliest pending flush deadline — the
    select-loop timeout. [None] when nothing is pending. *)

type stats = {
  submitted : int;  (** admitted requests *)
  rejected : int;  (** admission rejections (queue full / unknown model) *)
  served : int;
  timeouts : int;  (** watchdog-expired requests *)
  failures : int;  (** dispatch failures surfaced as per-request errors *)
  batches : int;  (** dispatched batches *)
  shed : int;  (** typed [Overloaded] outcomes (dwell shed + breaker open) *)
  healed : int;  (** batches recovered on the primary after BIST + refill *)
  fallback_batches : int;  (** batches served by the digital twin *)
  queue : Promise_core.Queue_bounded.stats;
  latency_ns : Promise_core.Histogram.t;  (** admission → response *)
  batch_sizes : Promise_core.Histogram.t;  (** decisions per dispatched batch *)
}

val stats : t -> stats

(** {2 Environment defaults}

    [PROMISE_SERVE_QUEUE], [PROMISE_SERVE_BATCH] and
    [PROMISE_SERVE_FLUSH_US] feed the CLI defaults below; each falls
    back silently here and is validated loudly by [Promise.check_env]
    at CLI startup, like [PROMISE_BATCH]. *)

val default_queue : unit -> int  (** [PROMISE_SERVE_QUEUE], default 256 *)

val default_batch_max : unit -> int
(** [PROMISE_SERVE_BATCH], default 64 (range 1..4096, like
    [PROMISE_BATCH]) *)

val default_flush_us : unit -> int
(** [PROMISE_SERVE_FLUSH_US], default 2000 (2 ms) *)

val default_breaker_threshold : unit -> int
(** [PROMISE_SERVE_BREAKER_THRESHOLD], default 8 (range 1..10000) *)

val default_dwell_budget_us : unit -> int option
(** [PROMISE_SERVE_DWELL_BUDGET_US]; [None] (shedding disabled) when
    unset *)

(** {2 The socket daemon} *)

type wire_request = { w_rid : int; w_model : string }
(** One request frame ({!Promise_core.Ipc} framing over a Unix-domain
    stream socket). [w_rid] is echoed back; clients keep it unique per
    connection. *)

type wire_response = {
  r_rid : int;
  r_values : float array;  (** [[||]] when [r_error] is set *)
  r_batch : int;
  r_error : string option;  (** rendered typed error *)
}

type daemon_summary = {
  d_completed : int;  (** responses written (incl. rejections) *)
  d_stats : stats;
}

val daemon :
  ?max_requests:int ->
  ?clock:(unit -> int64) ->
  ?incidents:Promise_core.Incident.t ->
  ?pool:Promise_core.Pool.t ->
  ?deadline_ms:float ->
  ?mode:mode ->
  ?breaker_threshold:int ->
  ?dwell_budget_us:int ->
  queue:int ->
  batch_max:int ->
  flush_us:int ->
  listen:string ->
  stop:Promise_core.Supervisor.stop ->
  model list ->
  (daemon_summary, Promise_core.Error.t) result
(** Serve forever on Unix socket [listen] (unlinked and re-bound):
    accept connections, read {!wire_request} frames, answer with
    {!wire_response} frames through the engine. One select loop drives
    admission, coalescing and dispatch; the select timeout is
    {!next_deadline_ns}, so flush-by-deadline holds within a poll
    quantum. Returns after [stop] is requested (SIGINT/SIGTERM) or
    after [max_requests] responses when positive — the drain flushes
    every pending batch first. A dead client's responses are dropped
    (and logged), never fatal ([SIGPIPE] is ignored for the loop). *)

type probe_summary = {
  p_sent : int;
  p_ok : int;
  p_rejected : int;
  p_max_batch : int;  (** largest coalesced batch any reply rode *)
}

val probe :
  ?connect_timeout_ms:float ->
  ?requests:int ->
  path:string ->
  model:string ->
  unit ->
  (probe_summary, Promise_core.Error.t) result
(** Client-side smoke: connect to a daemon at [path] (retrying until
    [connect_timeout_ms], default 10 s — the daemon may still be
    binding), pipeline [requests] (default 8) requests for [model] on
    one connection, and collect every response. An error reply counts
    in [p_rejected]; transport errors are typed. A daemon that closes
    the connection mid-pipeline is reported {e immediately} as a typed
    error whose context says how many replies arrived before the close
    ([replies-before-close]/[missing]) — never mistaken for a hang —
    and [SIGPIPE] is ignored for the probe's duration so a write to the
    closed socket surfaces as a typed error too. *)

(** {2 The chaos soak} *)

type chaos_report = {
  c_requests : int;  (** offered by the seeded arrival process *)
  c_admitted : int;  (** accepted into the queue *)
  c_served : int;
  c_timeouts : int;
  c_failed : int;  (** typed non-timeout, non-overload failures *)
  c_shed : int;  (** [Overloaded] outcomes (dwell / breaker-open) *)
  c_rejected : int;  (** refused at submit (capacity or admit fault) *)
  c_lost : int;  (** admitted but never answered — must be 0 *)
  c_multi : int;  (** answered more than once — must be 0 *)
  c_healed : int;
  c_fallback_batches : int;
  c_breaker_opens : int;
  c_survivors_checked : int;
      (** served requests compared bitwise against a fault-free twin *)
  c_survivor_mismatches : int;  (** must be 0 *)
  c_ipc_faults : int;  (** typed truncation errors on the response echo *)
  c_checkpoint_failures : int;  (** injected fsync failures, all typed *)
  c_sink_degraded : int;  (** [Sink_degraded] recovery markers in the log *)
  c_events : string;
      (** canonical incident transcript: every logged incident with the
          wall-clock prefix stripped, plus a summary line — two soaks
          with the same seed must produce byte-identical [c_events] *)
}

val chaos_run :
  ?seed:int ->
  ?requests:int ->
  incident_path:string ->
  checkpoint_path:string ->
  model:(unit -> model) ->
  unit ->
  (chaos_report, Promise_core.Error.t) result
(** Soak the whole service path under a seeded failure storm, on a
    virtual clock so every run with the same [seed] replays the same
    schedule: base failpoints on IPC/checkpoint/incident/admission/
    flush, plus a storm keyed to arrival progress (so every phase
    overlaps live traffic whatever the seed draws) — one transient
    analog fault at 5% of the offered load (BIST clean → retry →
    healed in place), a bank death at
    15% of the offered load (heal ladder → BIST → digital fallback),
    revival at 40% (reprobe → analog-restored), a dispatcher stall
    through [50%, 65%) (dwell shedding and watchdog timeouts), and a
    machine-level blackout through [75%, 90%) that defeats the digital
    rung too, tripping the circuit breaker.
    Invariants checked and reported: exactly one outcome per admitted
    request ([c_lost] = [c_multi] = 0), no crash (any error is typed),
    and every served value bitwise equal to a fault-free twin run
    ([c_survivor_mismatches] = 0). The failpoint registry is reset on
    exit. *)

(** {2 The self-test load generator} *)

type load =
  | Closed_loop of int
      (** keep that many requests outstanding; each response immediately
          triggers the next submit — the drain is eager, so the server
          batches exactly what the concurrency window holds *)
  | Open_loop of float
      (** Poisson-ish arrivals at that rate (requests/sec), inter-arrival
          times drawn from a seeded stream — overload produces typed
          admission rejections, which is the point *)

type load_report = {
  l_mode : mode;
  l_requests : int;
  l_served : int;
  l_rejected : int;
  l_timeouts : int;
  l_failures : int;
  l_seconds : float;
  l_rps : float;  (** served / seconds *)
  l_p50_ms : float;
  l_p95_ms : float;
  l_p99_ms : float;
  l_mean_batch : float;
  l_max_batch : float;
  l_batch_hist : (float * int) list;  (** (batch size, flush count) *)
  l_max_queue_depth : int;
  l_digest : string;  (** MD5 over (rid, value bit patterns), rid order *)
}

val load_run :
  ?seed:int ->
  ?jobs:int ->
  ?incidents:Promise_core.Incident.t ->
  ?deadline_ms:float ->
  mode:mode ->
  queue:int ->
  batch_max:int ->
  flush_us:int ->
  requests:int ->
  load:load ->
  model:(unit -> model) ->
  unit ->
  (load_report, Promise_core.Error.t) result
(** Drive [requests] requests through a fresh engine against a fresh
    model ([model] is a thunk so paired runs get bit-for-bit twin
    machines) and measure wall-clock throughput, latency percentiles,
    batch-size distribution and queue depth on the monotonic clock.
    [l_digest] fingerprints every served value bitwise: two runs in
    different {!mode}s over twin models must produce equal digests —
    the identity contract through the whole service path. *)
