module Opcode = Promise_isa.Opcode
module Task = Promise_isa.Task
module Analog = Promise_analog
module Arch = Promise_arch
module Tables = Promise_energy.Tables
module Runtime = Promise_compiler.Runtime
module Pipeline = Promise_compiler.Pipeline
module Dsl = Promise_ir.Dsl
module Ml = Promise_ml
module E = Promise_core.Error

let err_string = E.to_string

type check = { name : string; passed : bool; detail : string }
type level = { title : string; checks : check list }

let check name passed detail = { name; passed; detail }

let checkf name ~expected ~measured ~tolerance =
  check name
    (Float.abs (measured -. expected) <= tolerance)
    (Printf.sprintf "expected %.4g, measured %.4g (tol %.2g)" expected measured
       tolerance)

(* ------------------------------------------------------------------ *)
(* Component level                                                     *)
(* ------------------------------------------------------------------ *)

let component_level () =
  let table3_rows =
    [
      (Opcode.C1_aread, 5, 61.0);
      (Opcode.C1_asubt, 7, 103.0);
      (Opcode.C1_write, 2, 73.0);
    ]
  in
  let table3_checks =
    List.concat_map
      (fun (op, delay, energy) ->
        [
          check
            (Printf.sprintf "%s delay" (Opcode.class1_name op))
            (Arch.Timing.class1_delay op = delay)
            (Printf.sprintf "%d vs published %d" (Arch.Timing.class1_delay op)
               delay);
          checkf
            (Printf.sprintf "%s energy" (Opcode.class1_name op))
            ~expected:energy
            ~measured:(Tables.class1_energy_pj op)
            ~tolerance:1e-9;
        ])
      table3_rows
  in
  (* empirical aREAD noise sigma vs |w| f(swing) *)
  let noise_check =
    let rng = Analog.Rng.create 1001 in
    let noise = Analog.Noise.create ~rng () in
    let w = 0.6 and swing = 3 and n = 20000 in
    let sum = ref 0.0 and sum2 = ref 0.0 in
    for _ = 1 to n do
      let v = Analog.Noise.aread noise ~swing w in
      sum := !sum +. v;
      sum2 := !sum2 +. (v *. v)
    done;
    let mean = !sum /. float_of_int n in
    let sigma = sqrt ((!sum2 /. float_of_int n) -. (mean *. mean)) in
    checkf "aREAD noise sigma" ~expected:(Analog.Noise.sigma ~swing ~w)
      ~measured:sigma ~tolerance:0.01
  in
  let lut_check =
    check "silicon LUT deviation < 2.5%"
      (Analog.Lut.max_deviation Analog.Lut.Silicon.aread < 0.025)
      (Printf.sprintf "max deviation %.4f"
         (Analog.Lut.max_deviation Analog.Lut.Silicon.aread))
  in
  let adc_check =
    let worst = ref 0.0 in
    let v = ref (-0.99) in
    while !v < 0.99 do
      worst := Float.max !worst (Float.abs (Analog.Adc.convert !v -. !v));
      v := !v +. 0.003
    done;
    check "ADC error within lsb/2"
      (!worst <= (Analog.Adc.lsb /. 2.0) +. 1e-9)
      (Printf.sprintf "worst %.5f vs lsb/2 %.5f" !worst (Analog.Adc.lsb /. 2.0))
  in
  let pwm_check =
    let exact = ref true in
    for code = -128 to 127 do
      if
        Float.abs (Analog.Pwm.subranged_read code -. (float_of_int code /. 128.0))
        > 1e-12
      then exact := false
    done;
    check "PWM sub-ranged read exact" !exact "all 256 codes"
  in
  {
    title = "component level (vs published silicon models)";
    checks = table3_checks @ [ noise_check; lut_check; adc_check; pwm_check ];
  }

(* ------------------------------------------------------------------ *)
(* Architecture level                                                  *)
(* ------------------------------------------------------------------ *)

let architecture_level () =
  let rng = Analog.Rng.create 1002 in
  let machine = Arch.Machine.create (Arch.Machine.ideal_config ~banks:2) in
  (* dot product on the ideal machine vs the float reference *)
  let dot_check =
    let rows = 6 and cols = 48 in
    let w =
      Array.init rows (fun _ ->
          Array.init cols (fun _ -> Analog.Rng.uniform rng ~lo:(-0.8) ~hi:0.8))
    in
    let x = Array.init cols (fun _ -> Analog.Rng.uniform rng ~lo:(-0.8) ~hi:0.8) in
    let k =
      Dsl.kernel ~name:"v_dot"
        ~decls:
          [
            Dsl.matrix "W" ~rows ~cols;
            Dsl.vector "x" ~len:cols;
            Dsl.out_vector "out" ~len:rows;
          ]
        [ Dsl.for_store ~iterations:rows ~out:"out" (Dsl.dot "W" "x") ]
    in
    let b = Runtime.bindings () in
    Runtime.bind_matrix b "W" w;
    Runtime.bind_vector b "x" x;
    match
      Result.bind (Pipeline.compile k) (fun g -> Runtime.run ~machine g b)
    with
    | Error e -> check "ideal dot kernel" false (err_string e)
    | Ok r -> (
        match Runtime.final_output r with
        | Error e -> check "ideal dot kernel" false (err_string e)
        | Ok o ->
            let reference = Ml.Linalg.mat_vec w x in
            let worst = ref 0.0 in
            Array.iteri
              (fun i v ->
                worst := Float.max !worst (Float.abs (v -. reference.(i))))
              o.Runtime.values;
            check "ideal dot kernel vs float reference" (!worst < 0.05)
              (Printf.sprintf "worst error %.4f" !worst))
  in
  let argmin_check =
    let candidates =
      Array.init 9 (fun _ ->
          Array.init 24 (fun _ -> Analog.Rng.uniform rng ~lo:(-0.9) ~hi:0.9))
    in
    let x = Array.copy candidates.(5) in
    let k =
      Dsl.kernel ~name:"v_tm"
        ~decls:
          [
            Dsl.matrix "W" ~rows:9 ~cols:24;
            Dsl.vector "x" ~len:24;
            Dsl.out_vector "out" ~len:9;
          ]
        [
          Dsl.for_store ~iterations:9 ~out:"out" (Dsl.l1_distance "W" "x");
          Dsl.argmin "out";
        ]
    in
    let b = Runtime.bindings () in
    Runtime.bind_matrix b "W" candidates;
    Runtime.bind_vector b "x" x;
    match
      Result.bind (Pipeline.compile k) (fun g -> Runtime.run ~machine g b)
    with
    | Error e -> check "ideal argmin kernel" false (err_string e)
    | Ok r -> (
        match Runtime.final_output r with
        | Ok { Runtime.decision = Some (i, _); _ } ->
            check "ideal argmin kernel" (i = 5)
              (Printf.sprintf "decision %d vs 5" i)
        | _ -> check "ideal argmin kernel" false "no decision")
  in
  let scheduler_check =
    let ok =
      List.for_all Arch.Scheduler.matches_closed_form
        [
          Task.make ~rpt_num:63 ~class1:Opcode.C1_asubt
            ~class2:{ Opcode.asd = Opcode.Asd_absolute; avd = true }
            ~class3:Opcode.C3_adc ~class4:Opcode.C4_min ();
          Task.make ~rpt_num:127 ~class1:Opcode.C1_aread
            ~class2:{ Opcode.asd = Opcode.Asd_sign_mult; avd = true }
            ~class3:Opcode.C3_adc ~class4:Opcode.C4_sigmoid ();
        ]
    in
    check "scheduler matches the closed-form timing" ok "fill + (n-1)*TP"
  in
  let ctrl_check =
    let ok =
      List.for_all
        (fun (c1, c2, c3, c4) ->
          let t = { Task.nop with Task.class1 = c1; class2 = c2; class3 = c3; class4 = c4 } in
          match Task.validate t with
          | Error _ -> true
          | Ok t ->
              Arch.Ctrl.last_cycle (Arch.Ctrl.iteration_schedule t)
              = Arch.Timing.fill_cycles t)
        (Task.legal_compositions ())
    in
    check "CTRL schedules span the stage budget" ok
      "last deassertion = fill cycles"
  in
  {
    title = "architecture level (functional, ideal machine)";
    checks = [ dot_check; argmin_check; scheduler_check; ctrl_check ];
  }

(* ------------------------------------------------------------------ *)
(* Application level                                                   *)
(* ------------------------------------------------------------------ *)

let application_level () =
  let budgeted (b : Benchmarks.t) budget =
    let e = b.Benchmarks.evaluate ~swings:(Benchmarks.max_swings b) () in
    check
      (Printf.sprintf "%s mismatch within %.0f%%" b.Benchmarks.short
         (budget *. 100.0))
      (e.Benchmarks.mismatch <= budget)
      (Printf.sprintf "accuracy %.3f vs reference %.3f"
         e.Benchmarks.promise_accuracy e.Benchmarks.reference_accuracy)
  in
  {
    title = "application level (benchmark accuracy at max swing)";
    checks =
      [
        budgeted (Benchmarks.matched_filter ()) 0.02;
        budgeted (Benchmarks.template_l1 ()) 0.02;
        budgeted (Benchmarks.svm ()) 0.06;
        budgeted (Benchmarks.knn_l1 ()) 0.03;
      ];
  }

(* ------------------------------------------------------------------ *)
(* Resilience level                                                    *)
(* ------------------------------------------------------------------ *)

let resilience_level () =
  let module Faults = Arch.Faults in
  let module Selftest = Arch.Selftest in
  let ok_exn = function Ok v -> v | Error e -> invalid_arg (err_string e) in
  (* A deliberately broken 4-bank silicon machine: one distinct fault
     per bank, then assert the BIST localizes each of them. *)
  let machine =
    Arch.Machine.create
      { Arch.Machine.banks = 4; profile = Arch.Bank.Silicon; noise_seed = Some 7 }
  in
  let inject bank f = Arch.Bank.set_faults (Arch.Machine.bank machine bank) f in
  inject 0 (ok_exn (Faults.with_stuck_lane Faults.none ~lane:3 ~code:64));
  inject 1 (ok_exn (Faults.with_dead_adc_units Faults.none 8));
  inject 2 (Faults.with_dead_bank Faults.none);
  inject 3 (Faults.with_adc_offset Faults.none 0.08);
  let bist_checks =
    match Selftest.run machine with
    | Error e -> [ check "self-test run" false (err_string e) ]
    | Ok report ->
        let detail bank =
          String.concat "; "
            (List.map Selftest.kind_name
               (Selftest.findings_for report ~bank))
        in
        let has name bank pred =
          check name
            (List.exists pred (Selftest.findings_for report ~bank))
            (Printf.sprintf "bank %d findings: [%s]" bank (detail bank))
        in
        [
          check "self-test covers every bank"
            (report.Selftest.banks_tested = 4)
            (Printf.sprintf "%d of 4 banks tested"
               report.Selftest.banks_tested);
          has "BIST localizes the stuck lane (bank 0, lane 3)" 0 (function
            | Selftest.Stuck_lane { lane = 3; code } -> abs (code - 64) <= 2
            | _ -> false);
          has "BIST detects the dead ADC bank (bank 1)" 1 (function
            | Selftest.Dead_adc _ -> true
            | _ -> false);
          has "BIST detects the dead bank (bank 2)" 2 (function
            | Selftest.Dead_bank -> true
            | _ -> false);
          has "BIST estimates the ADC offset (bank 3)" 3 (function
            | Selftest.Adc_offset { offset } ->
                Float.abs (offset -. 0.08) < 0.04
            | _ -> false);
        ]
  in
  (* Lane sparing: a dot kernel on a bank with a badly stuck lane,
     recovered purely by re-planning the layout over healthy lanes (no
     retry, no fallback). The ideal profile isolates the fault from
     read noise: the stuck column is the only corruption. *)
  let sparing_checks =
    let make_machine () =
      let m = Arch.Machine.create (Arch.Machine.ideal_config ~banks:1) in
      Arch.Bank.set_faults (Arch.Machine.bank m 0)
        (ok_exn (Faults.with_stuck_lane Faults.none ~lane:5 ~code:100));
      m
    in
    let rows = 4 and cols = 40 in
    let rng = Analog.Rng.create 1003 in
    let w =
      Array.init rows (fun _ ->
          Array.init cols (fun _ -> Analog.Rng.uniform rng ~lo:(-0.8) ~hi:0.8))
    in
    let x = Array.init cols (fun _ -> Analog.Rng.uniform rng ~lo:(-0.8) ~hi:0.8) in
    let k =
      Dsl.kernel ~name:"v_spare"
        ~decls:
          [
            Dsl.matrix "W" ~rows ~cols;
            Dsl.vector "x" ~len:cols;
            Dsl.out_vector "out" ~len:rows;
          ]
        [ Dsl.for_store ~iterations:rows ~out:"out" (Dsl.dot "W" "x") ]
    in
    let reference = Ml.Linalg.mat_vec w x in
    let worst_error ?recovery () =
      let b = Runtime.bindings () in
      Runtime.bind_matrix b "W" w;
      Runtime.bind_vector b "x" x;
      Result.map
        (fun (o : Runtime.task_output) ->
          let worst = ref 0.0 in
          Array.iteri
            (fun i v ->
              worst := Float.max !worst (Float.abs (v -. reference.(i))))
            o.Runtime.values;
          !worst)
        (Result.bind
           (Result.bind (Pipeline.compile k) (fun g ->
                Runtime.run ~machine:(make_machine ()) ?recovery g b))
           Runtime.final_output)
    in
    let recovery : Runtime.recovery =
      {
        Runtime.default_recovery with
        Runtime.spared_lanes = [ 5 ];
        max_retries = 0;
        digital_fallback = false;
      }
    in
    match (worst_error (), worst_error ~recovery ()) with
    | Error e, _ | _, Error e ->
        [ check "lane-sparing recovery" false (err_string e) ]
    | Ok unspared, Ok spared ->
        [
          check "stuck lane corrupts the unspared kernel" (unspared > 0.3)
            (Printf.sprintf "worst error %.4f" unspared);
          check "lane-sparing recovery (stuck lane, no fallback)"
            (spared < 0.05)
            (Printf.sprintf "worst error %.4f (unspared %.4f)" spared unspared);
        ]
  in
  {
    title = "resilience level (BIST localization + graceful degradation)";
    checks = bist_checks @ sparing_checks;
  }

let all_levels () =
  [
    component_level ();
    architecture_level ();
    application_level ();
    resilience_level ();
  ]

let report ppf =
  let all_passed = ref true in
  List.iter
    (fun level ->
      Format.fprintf ppf "@.== Validation: %s ==@." level.title;
      List.iter
        (fun c ->
          if not c.passed then all_passed := false;
          Format.fprintf ppf "   [%s] %-42s %s@."
            (if c.passed then "ok" else "FAIL")
            c.name c.detail)
        level.checks)
    (all_levels ());
  Format.fprintf ppf "@.validation %s@."
    (if !all_passed then "PASSED" else "FAILED");
  !all_passed
