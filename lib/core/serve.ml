module E = Promise_core.Error
module Incident = Promise_core.Incident
module Supervisor = Promise_core.Supervisor
module Clock = Promise_core.Clock
module Pool = Promise_core.Pool
module Queue_bounded = Promise_core.Queue_bounded
module Histogram = Promise_core.Histogram
module Ipc = Promise_core.Ipc
module Validate = Promise_core.Validate
module Machine = Promise_arch.Machine
module Selftest = Promise_arch.Selftest
module Runtime = Promise_compiler.Runtime
module Failpoint = Promise_core.Failpoint
module Rng = Promise_analog.Rng

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Models                                                               *)
(* ------------------------------------------------------------------ *)

(* How a flushed batch reaches the machine.  Probed on first dispatch:
   single-task programs try the zero-allocation serving path
   ([execute_batch_into]), which rejects unsupported launch shapes
   BEFORE touching any machine or RNG state, so falling back to
   [run_program_batch] is free and the choice sticks for the model's
   lifetime. *)
type plan =
  | Unprobed
  | Into of { launch : Machine.launch; epd : int; out : Rng.ba }
  | Prog

type model = {
  m_name : string;
  m_machine : Machine.t;
  m_program : Promise_isa.Program.t;
  mutable m_plan : plan;
  m_refill : Machine.t -> unit;
      (** restore the deterministic data image (BIST is destructive) *)
  m_rebuild : unit -> Machine.t;
      (** build a bit-for-bit twin — the digital fallback substrate *)
}

(* The deterministic data image of bench/main.ml: every bank row and
   X-REG slot filled from one seeded stream, so two models built from
   the same seeds replay bit-identical decision streams. *)
let fill_machine ~seed machine =
  let lanes = Promise_arch.Params.lanes in
  let rng = Rng.create seed in
  let codes () = Array.init lanes (fun _ -> Rng.int rng 255 - 128) in
  for bi = 0 to Machine.n_banks machine - 1 do
    let bank = Machine.bank machine bi in
    for row = 0 to 63 do
      Promise_arch.Bitcell_array.write
        (Promise_arch.Bank.array bank)
        ~word_row:row (codes ())
    done;
    for i = 0 to Promise_arch.Params.xreg_depth - 1 do
      Promise_arch.Xreg.load (Promise_arch.Bank.xreg bank) ~index:i (codes ())
    done
  done

let model_of_benchmark ?name ?banks ?(noise_seed = None) ?(fill_seed = 7)
    (b : Benchmarks.t) =
  let banks =
    match banks with Some n -> n | None -> max 1 b.Benchmarks.banks
  in
  let build () =
    let machine =
      Machine.create
        { Machine.banks; profile = Promise_arch.Bank.Silicon; noise_seed }
    in
    fill_machine ~seed:fill_seed machine;
    machine
  in
  {
    m_name = Option.value name ~default:b.Benchmarks.name;
    m_machine = build ();
    m_program = b.Benchmarks.per_decision_program;
    m_plan = Unprobed;
    m_refill = fill_machine ~seed:fill_seed;
    m_rebuild = build;
  }

let model_name m = m.m_name

(* ------------------------------------------------------------------ *)
(* Engine                                                               *)
(* ------------------------------------------------------------------ *)

type mode = Batched | Single

type reply = { values : float array; batch : int; wait_ns : int64 }

(* --- Self-healing state ------------------------------------------- *)

(* The per-model circuit breaker: [Closed] dispatches normally; after
   [breaker_threshold] consecutive batch failures it trips [Open] for a
   cooldown (flushes answer [Overloaded] without touching the machine);
   the first flush past the cooldown runs as a [Half_open] probe whose
   result closes or re-opens the breaker. *)
type breaker = Closed | Open of int64  (** until, engine clock *) | Half_open

(* How many fallback flushes between attempts to return to analog. *)
let reprobe_interval = 16

type health = {
  mutable h_consec : int;  (** consecutive batch dispatch failures *)
  mutable h_breaker : breaker;
  mutable h_digital : int option;
      (** [Some k] = serving from the digital fallback twin, [k]
          flushes since the primary was last reprobed *)
  mutable h_fallback : Machine.t option;  (** built lazily on first use *)
}

type outcome = {
  o_rid : int;
  o_model : string;
  o_result : (reply, E.t) result;
}

type pending = {
  p_model : model;
  mutable p_reqs : (int * int64) list;  (** (rid, arrival), newest first *)
  mutable p_count : int;
  mutable p_oldest : int64;
}

type t = {
  clock : unit -> int64;
  incidents : Incident.t;
  pool : Pool.t option;
  deadline_ms : float option;
  mode : mode;
  batch_max : int;
  flush_ns : int64;
  respond : outcome -> unit;
  sup : Supervisor.config;
  models : (string, model) Hashtbl.t;
  inbox : (int * string * int64) Queue_bounded.t;
  pending : (string, pending) Hashtbl.t;
  self_heal : bool;
  breaker_threshold : int;
  breaker_cooldown_ns : int64;
  dwell_budget_ns : int64 option;
  health : (string, health) Hashtbl.t;
  mutable submitted : int;
  mutable rejected_other : int;  (** unknown-model rejections *)
  mutable served : int;
  mutable timeouts : int;
  mutable failures : int;
  mutable batches : int;
  mutable shed : int;  (** [Overloaded] outcomes/rejections *)
  mutable healed : int;  (** batches recovered on the primary after BIST *)
  mutable fallback_batches : int;  (** batches served by the digital twin *)
  latency : Histogram.t;
  batch_sizes : Histogram.t;
}

type stats = {
  submitted : int;
  rejected : int;
  served : int;
  timeouts : int;
  failures : int;
  batches : int;
  shed : int;
  healed : int;
  fallback_batches : int;
  queue : Queue_bounded.stats;
  latency_ns : Histogram.t;
  batch_sizes : Histogram.t;
}

let max_flush_us = 10_000_000

(* Environment defaults for the self-healing knobs (the serving-layer
   knobs proper are parsed further down, next to their section). Like
   [Machine.default_batch]: the lazy parses fall back silently;
   [Promise.check_env] validates the same variables loudly at CLI
   startup. *)
let env_breaker_threshold =
  lazy
    (match
       Validate.env_int ~name:"PROMISE_SERVE_BREAKER_THRESHOLD" ~min:1
         ~max:10_000
     with
    | Ok (Some n) -> n
    | Ok None | Error _ -> 8)

let env_dwell_budget_us =
  lazy
    (match
       Validate.env_int ~name:"PROMISE_SERVE_DWELL_BUDGET_US" ~min:1
         ~max:max_flush_us
     with
    | Ok (Some n) -> Some n
    | Ok None | Error _ -> None)

let default_breaker_threshold () = Lazy.force env_breaker_threshold
let default_dwell_budget_us () = Lazy.force env_dwell_budget_us

let create ?(clock = Clock.monotonic_ns) ?(incidents = Incident.null) ?pool
    ?deadline_ms ?(mode = Batched) ?(self_heal = true) ?breaker_threshold
    ?(breaker_cooldown_ms = 100.0) ?dwell_budget_us ~queue ~batch_max
    ~flush_us ~respond models =
  let breaker_threshold =
    match breaker_threshold with
    | Some n -> n
    | None -> default_breaker_threshold ()
  in
  let dwell_budget_us =
    match dwell_budget_us with
    | Some _ as d -> d
    | None -> default_dwell_budget_us ()
  in
  let* () =
    if breaker_threshold < 1 || breaker_threshold > 10_000 then
      E.fail ~layer:"serve" ~code:E.Invalid_operand
        ~context:[ ("breaker_threshold", string_of_int breaker_threshold) ]
        "breaker_threshold out of range 1..10000"
    else Ok ()
  in
  let* () =
    match dwell_budget_us with
    | Some u when u < 1 || u > max_flush_us ->
        E.fail ~layer:"serve" ~code:E.Invalid_operand
          ~context:[ ("dwell_budget_us", string_of_int u) ]
          (Printf.sprintf "dwell_budget_us out of range 1..%d" max_flush_us)
    | _ -> Ok ()
  in
  let* () =
    if batch_max < 1 || batch_max > 4096 then
      E.fail ~layer:"serve" ~code:E.Invalid_operand
        ~context:[ ("batch_max", string_of_int batch_max) ]
        "batch_max out of range 1..4096"
    else Ok ()
  in
  let* () =
    if flush_us < 1 || flush_us > max_flush_us then
      E.fail ~layer:"serve" ~code:E.Invalid_operand
        ~context:[ ("flush_us", string_of_int flush_us) ]
        (Printf.sprintf "flush_us out of range 1..%d" max_flush_us)
    else Ok ()
  in
  let* () =
    match models with
    | [] ->
        E.fail ~layer:"serve" ~code:E.Invalid_operand
          "an engine needs at least one model"
    | _ -> Ok ()
  in
  let* inbox = Queue_bounded.create ~capacity:queue in
  let tbl = Hashtbl.create 16 in
  let* () =
    List.fold_left
      (fun acc m ->
        let* () = acc in
        if Hashtbl.mem tbl m.m_name then
          E.fail ~layer:"serve" ~code:E.Invalid_operand
            ~context:[ ("model", m.m_name) ]
            "duplicate model name"
        else begin
          Hashtbl.add tbl m.m_name m;
          Ok ()
        end)
      (Ok ()) models
  in
  Ok
    {
      clock;
      incidents;
      pool;
      deadline_ms;
      mode;
      batch_max;
      flush_ns = Int64.of_int (flush_us * 1000);
      respond;
      sup = Supervisor.config ~incidents ~clock ();
      models = tbl;
      inbox;
      pending = Hashtbl.create 16;
      self_heal;
      breaker_threshold;
      breaker_cooldown_ns = Int64.of_float (breaker_cooldown_ms *. 1e6);
      dwell_budget_ns =
        Option.map (fun u -> Int64.of_int (u * 1000)) dwell_budget_us;
      health = Hashtbl.create 16;
      submitted = 0;
      rejected_other = 0;
      served = 0;
      timeouts = 0;
      failures = 0;
      batches = 0;
      shed = 0;
      healed = 0;
      fallback_batches = 0;
      latency = Histogram.create ();
      batch_sizes = Histogram.create ();
    }

let stats t =
  let q = Queue_bounded.stats t.inbox in
  {
    submitted = t.submitted;
    rejected = q.Queue_bounded.rejected + t.rejected_other;
    served = t.served;
    timeouts = t.timeouts;
    failures = t.failures;
    batches = t.batches;
    shed = t.shed;
    healed = t.healed;
    fallback_batches = t.fallback_batches;
    queue = q;
    latency_ns = t.latency;
    batch_sizes = t.batch_sizes;
  }

let health_for t name =
  match Hashtbl.find_opt t.health name with
  | Some h -> h
  | None ->
      let h =
        { h_consec = 0; h_breaker = Closed; h_digital = None; h_fallback = None }
      in
      Hashtbl.add t.health name h;
      h

(* ------------------------------------------------------------------ *)
(* Admission                                                            *)
(* ------------------------------------------------------------------ *)

let overloaded_error ~reason ~retry_after_ms ctx =
  E.make ~layer:"serve" ~code:E.Overloaded
    ~context:
      (ctx
      @ [
          ("reason", reason);
          ("retry-after-ms", Printf.sprintf "%.1f" retry_after_ms);
        ])
    "service overloaded; retry later"

(* Dwell shedding: the age of the inbox head bounds the head-of-line
   blocking every later arrival will suffer — once it exceeds the
   budget, admitting more work only manufactures timeouts, so the offer
   is refused {e now} with a typed [Overloaded] and a retry-after hint
   (the flush window: by then the head must have drained or the breaker
   story takes over). *)
let dwell_shed t ~rid ~model =
  match t.dwell_budget_ns with
  | None -> None
  | Some budget -> (
      match Queue_bounded.peek_opt t.inbox with
      | Some (_, _, arrival) when Int64.sub (t.clock ()) arrival > budget ->
          let dwell_ms =
            Int64.to_float (Int64.sub (t.clock ()) arrival) /. 1e6
          in
          let retry_after_ms =
            Float.max 1.0 (Int64.to_float t.flush_ns /. 1e6)
          in
          t.shed <- t.shed + 1;
          Incident.record t.incidents Incident.Admission_reject
            [
              ("rid", string_of_int rid);
              ("model", model);
              ("reason", "overload");
              ("dwell_ms", Printf.sprintf "%.1f" dwell_ms);
            ];
          Some
            (overloaded_error ~reason:"queue-dwell-over-budget"
               ~retry_after_ms
               [
                 ("rid", string_of_int rid);
                 ("dwell_ms", Printf.sprintf "%.1f" dwell_ms);
               ])
      | _ -> None)

let submit t ~rid ~model =
  if not (Hashtbl.mem t.models model) then begin
    t.rejected_other <- t.rejected_other + 1;
    Incident.record t.incidents Incident.Admission_reject
      [ ("rid", string_of_int rid); ("model", model); ("reason", "unknown") ];
    E.fail ~layer:"serve" ~code:E.Invalid_operand
      ~context:[ ("model", model) ]
      "unknown model"
  end
  else
    match dwell_shed t ~rid ~model with
    | Some e -> Error e
    | None -> (
    match Queue_bounded.try_push t.inbox (rid, model, t.clock ()) with
    | Ok () ->
        t.submitted <- t.submitted + 1;
        Ok ()
    | Error e ->
        Incident.record t.incidents Incident.Admission_reject
          [
            ("rid", string_of_int rid);
            ("model", model);
            ("reason", "queue-full");
            ("depth", string_of_int (Queue_bounded.length t.inbox));
          ];
        Error e)

(* ------------------------------------------------------------------ *)
(* Dispatch                                                             *)
(* ------------------------------------------------------------------ *)

(* The decision's emission stream, the reply payload shared by every
   dispatch path: output-buffer then accumulator emissions per task, in
   task order.  [execute_batch_into] writes exactly this stream, so the
   three paths are bitwise comparable. *)
let values_of_results rs =
  Array.of_list
    (List.concat_map
       (fun r -> r.Machine.emitted @ r.Machine.acc_out)
       rs)

let dispatch_single t m =
  let* rs = Machine.run_program ?pool:t.pool m.m_machine m.m_program in
  Ok (values_of_results rs)

let dispatch_program_batch t m ~batch =
  let* arr =
    Machine.run_program_batch ?pool:t.pool m.m_machine m.m_program ~batch
  in
  Ok (Array.map values_of_results arr)

let slice_into ~out ~epd ~batch =
  Array.init batch (fun d -> Array.init epd (fun g -> out.{(d * epd) + g}))

let dispatch_batched t m ~batch =
  match m.m_plan with
  | Prog -> dispatch_program_batch t m ~batch
  | Into { epd = _; out; launch } -> (
      match
        Machine.execute_batch_into ?pool:t.pool m.m_machine launch ~batch ~out
      with
      | Ok epd' -> Ok (slice_into ~out ~epd:epd' ~batch)
      | Error e -> Error e)
  | Unprobed -> (
      match m.m_program.Promise_isa.Program.tasks with
      | [ task ] -> (
          let launch = Machine.default_launch task in
          let epd =
            Machine.emissions_per_decision task ~th:launch.Machine.th
          in
          let out =
            Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout
              (max 1 (t.batch_max * epd))
          in
          match
            Machine.execute_batch_into ?pool:t.pool m.m_machine launch ~batch
              ~out
          with
          | Ok epd' ->
              m.m_plan <- Into { launch; epd; out };
              Ok (slice_into ~out ~epd:epd' ~batch)
          | Error { E.code = E.Unsupported; _ } ->
              (* rejected before any state was touched: the program path
                 serves this batch and every later one *)
              m.m_plan <- Prog;
              dispatch_program_batch t m ~batch
          | Error e -> Error e)
      | _ ->
          m.m_plan <- Prog;
          dispatch_program_batch t m ~batch)

let timeout_error ~rid ~waited_ms =
  E.make ~layer:"serve" ~code:E.Timeout
    ~context:
      [ ("rid", string_of_int rid); ("waited_ms", Printf.sprintf "%.1f" waited_ms) ]
    "request exceeded its watchdog deadline before dispatch"

(* ------------------------------------------------------------------ *)
(* Self-healing dispatch                                                *)
(* ------------------------------------------------------------------ *)

(* The [serve.dispatch]/[serve.flush] failpoints fire before the
   machine is touched, so an injected fault leaves the substrate in the
   same state a pre-dispatch hardware fault would — retrying is
   stream-safe, exactly like [machine.execute]'s own contract. *)
let injected_serve_fault site =
  match Failpoint.check site with
  | Some Failpoint.Fail ->
      Some
        (E.make ~layer:"serve" ~code:E.Fault
           ~context:[ ("site", site); ("injected", "true") ]
           "injected service fault")
  | Some (Failpoint.Delay ns) ->
      Clock.sleep_ms (Int64.to_float ns /. 1e6);
      None
  | Some Failpoint.Interrupt | None -> None

(* Dispatch the whole batch on an explicit machine — the fallback-twin
   and reprobe paths. [Reference] kernels make the fallback genuinely
   digital; the values are still bitwise those of the fused analog path
   (the PR-7 fused ≡ reference contract), so survivors keep the
   bit-identity guarantee. *)
let dispatch_on t m machine ~kernel_mode ~batch =
  let r =
    match t.mode with
    | Batched ->
        let* arr =
          Machine.run_program_batch ?pool:t.pool ~kernel_mode machine
            m.m_program ~batch
        in
        Ok (Array.map values_of_results arr)
    | Single ->
        let rec go acc k =
          if k = 0 then Ok (Array.of_list (List.rev acc))
          else
            let* rs =
              Machine.run_program ?pool:t.pool ~kernel_mode machine
                m.m_program
            in
            go (values_of_results rs :: acc) (k - 1)
        in
        go [] batch
  in
  Machine.reset_trace machine;
  r

let dispatch_primary t m ~batch =
  match injected_serve_fault "serve.dispatch" with
  | Some e -> Error e
  | None -> (
      match t.mode with
      | Batched -> dispatch_batched t m ~batch
      | Single ->
          let rec go acc k =
            if k = 0 then Ok (Array.of_list (List.rev acc))
            else
              let* v = dispatch_single t m in
              go (v :: acc) (k - 1)
          in
          go [] batch)

let breaker_incident t m ~state fields =
  Incident.record t.incidents Incident.Breaker
    (("model", m.m_name) :: ("state", state) :: fields)

(* The degradation ladder's middle rung: a destructive BIST localizes
   the fault, the findings are logged (and dead banks/lanes quarantined
   through [Runtime.recovery_of_report], the exclusion machinery the
   batch runtime already uses), then the data image is refilled — BIST
   overwrites the first word rows and X-REG 0 — so a retry on the
   primary sees exactly the pre-fault machine. *)
let bist_and_quarantine t m =
  (match Selftest.run m.m_machine with
  | Ok report ->
      let summary =
        match report.Selftest.findings with
        | [] -> "clean"
        | fs ->
            String.concat ","
              (List.map
                 (fun f ->
                   Printf.sprintf "%d:%s" f.Selftest.bank
                     (Selftest.kind_name f.Selftest.kind))
                 fs)
      in
      Incident.record t.incidents Incident.Bist
        [
          ("model", m.m_name);
          ("findings", summary);
          ("banks_tested", string_of_int report.Selftest.banks_tested);
        ];
      let rc = Runtime.recovery_of_report report in
      if rc.Runtime.excluded_banks <> [] || rc.Runtime.spared_lanes <> []
      then
        Incident.record t.incidents Incident.Quarantine
          [
            ("model", m.m_name);
            ( "banks",
              String.concat ","
                (List.map string_of_int rc.Runtime.excluded_banks) );
            ( "lanes",
              String.concat ","
                (List.map string_of_int rc.Runtime.spared_lanes) );
          ]
  | Error e ->
      Incident.record t.incidents Incident.Bist
        [ ("model", m.m_name); ("error", E.to_string e) ]);
  m.m_refill m.m_machine;
  Machine.reset_trace m.m_machine

let fallback_machine m h =
  match h.h_fallback with
  | Some mc -> mc
  | None ->
      let mc = m.m_rebuild () in
      h.h_fallback <- Some mc;
      mc

(* One batch through the degradation ladder:
   analog primary → (on [Fault]) BIST + quarantine + refill, retry the
   primary → digital fallback twin. A model parked on the fallback
   reprobes the primary every [reprobe_interval] flushes. Requests only
   fail if the digital rung fails too. *)
let dispatch_with_heal t m h ~batch ~flush_fault =
  let twin () =
    let* vs =
      dispatch_on t m (fallback_machine m h) ~kernel_mode:Machine.Reference
        ~batch
    in
    t.fallback_batches <- t.fallback_batches + 1;
    Ok vs
  in
  if not t.self_heal then
    match flush_fault with Some e -> Error e | None -> dispatch_primary t m ~batch
  else
    match h.h_digital with
    | Some k when k + 1 < reprobe_interval ->
        h.h_digital <- Some (k + 1);
        twin ()
    | Some _ -> (
        (* reprobe: try to climb back to analog *)
        match dispatch_primary t m ~batch with
        | Ok vs ->
            h.h_digital <- None;
            Incident.record t.incidents Incident.Degradation
              [ ("model", m.m_name); ("state", "analog-restored") ];
            Ok vs
        | Error _ ->
            h.h_digital <- Some 0;
            twin ())
    | None -> (
        let first =
          match flush_fault with
          | Some e -> Error e
          | None -> dispatch_primary t m ~batch
        in
        match first with
        | Ok vs -> Ok vs
        | Error ({ E.code = E.Fault; _ } as e) -> (
            Incident.record t.incidents Incident.Degradation
              [
                ("model", m.m_name);
                ("state", "fault");
                ("error", E.to_string e);
              ];
            bist_and_quarantine t m;
            match dispatch_primary t m ~batch with
            | Ok vs ->
                t.healed <- t.healed + 1;
                Incident.record t.incidents Incident.Degradation
                  [ ("model", m.m_name); ("state", "healed") ];
                Ok vs
            | Error _ ->
                Incident.record t.incidents Incident.Degradation
                  [ ("model", m.m_name); ("state", "digital-fallback") ];
                h.h_digital <- Some 0;
                twin ())
        | Error e -> Error e)

(* Flush one pending set: answer watchdog-overdue requests with typed
   [Timeout]; when the model's breaker is open, answer the rest with
   typed [Overloaded] (+ retry-after) without touching the machine;
   otherwise dispatch the survivors as one batch through the healing
   ladder under the supervisor, and respond per request. *)
let flush t p =
  let reqs = List.rev p.p_reqs in
  p.p_reqs <- [];
  p.p_count <- 0;
  let m = p.p_model in
  let now = t.clock () in
  let live, dropped =
    match t.deadline_ms with
    | None -> (reqs, [])
    | Some d ->
        let budget_ns = Int64.of_float (d *. 1e6) in
        List.partition
          (fun (_, arrival) -> Int64.sub now arrival <= budget_ns)
          reqs
  in
  List.iter
    (fun (rid, arrival) ->
      t.timeouts <- t.timeouts + 1;
      let waited_ms = Int64.to_float (Int64.sub now arrival) /. 1e6 in
      Incident.record t.incidents Incident.Timeout
        [
          ("item", Printf.sprintf "serve:%s:%d" m.m_name rid);
          ("waited_ms", Printf.sprintf "%.1f" waited_ms);
        ];
      t.respond
        { o_rid = rid; o_model = m.m_name; o_result = Error (timeout_error ~rid ~waited_ms) })
    dropped;
  match live with
  | [] -> ()
  | _ -> (
      let n = List.length live in
      let h = health_for t m.m_name in
      match h.h_breaker with
      | Open until when Int64.compare until now > 0 ->
          (* open breaker: shed the whole batch, machine untouched *)
          let retry_after_ms =
            Int64.to_float (Int64.sub until now) /. 1e6
          in
          t.shed <- t.shed + n;
          List.iter
            (fun (rid, _) ->
              t.respond
                {
                  o_rid = rid;
                  o_model = m.m_name;
                  o_result =
                    Error
                      (overloaded_error ~reason:"breaker-open"
                         ~retry_after_ms
                         [ ("rid", string_of_int rid) ]);
                })
            live
      | _ ->
          let probing =
            match h.h_breaker with
            | Open _ ->
                h.h_breaker <- Half_open;
                breaker_incident t m ~state:"half-open" [];
                true
            | Half_open -> true
            | Closed -> false
          in
          let flush_fault = injected_serve_fault "serve.flush" in
          let label = Printf.sprintf "serve:%s:batch%d" m.m_name n in
          let dispatched =
            Supervisor.supervise t.sup ~label (fun ~attempt:_ ->
                dispatch_with_heal t m h ~batch:n ~flush_fault)
          in
          (* the trace is an audit artifact of batch/CLI runs; a daemon
             serving forever must not retain one record per dispatch *)
          Machine.reset_trace m.m_machine;
          (match dispatched with
          | Ok _ ->
              if probing then breaker_incident t m ~state:"closed" [];
              h.h_consec <- 0;
              h.h_breaker <- Closed
          | Error _ ->
              h.h_consec <- h.h_consec + 1;
              if probing || h.h_consec >= t.breaker_threshold then begin
                h.h_breaker <- Open (Int64.add (t.clock ()) t.breaker_cooldown_ns);
                breaker_incident t m ~state:"open"
                  [
                    ("consecutive", string_of_int h.h_consec);
                    ( "cooldown_ms",
                      Printf.sprintf "%.1f"
                        (Int64.to_float t.breaker_cooldown_ns /. 1e6) );
                  ]
              end);
          t.batches <- t.batches + (match t.mode with Batched -> 1 | Single -> n);
          (match t.mode with
          | Batched -> Histogram.add t.batch_sizes (float_of_int n)
          | Single ->
              for _ = 1 to n do
                Histogram.add t.batch_sizes 1.0
              done);
          let done_ns = t.clock () in
          let reply_batch = match t.mode with Batched -> n | Single -> 1 in
          List.iteri
            (fun i (rid, arrival) ->
              let wait_ns = Int64.sub done_ns arrival in
              match dispatched with
              | Ok values ->
                  t.served <- t.served + 1;
                  Histogram.add t.latency (Int64.to_float wait_ns);
                  t.respond
                    {
                      o_rid = rid;
                      o_model = m.m_name;
                      o_result =
                        Ok { values = values.(i); batch = reply_batch; wait_ns };
                    }
              | Error e ->
                  t.failures <- t.failures + 1;
                  t.respond
                    {
                      o_rid = rid;
                      o_model = m.m_name;
                      o_result =
                        Error (E.with_context e [ ("rid", string_of_int rid) ]);
                    })
            live)

(* ------------------------------------------------------------------ *)
(* Coalescing                                                           *)
(* ------------------------------------------------------------------ *)

let pending_for t name =
  match Hashtbl.find_opt t.pending name with
  | Some p -> p
  | None ->
      let p =
        {
          p_model = Hashtbl.find t.models name;
          p_reqs = [];
          p_count = 0;
          p_oldest = 0L;
        }
      in
      Hashtbl.add t.pending name p;
      p

let rec pump t =
  match Queue_bounded.pop_opt t.inbox with
  | None -> ()
  | Some (rid, name, arrival) ->
      let p = pending_for t name in
      if p.p_count = 0 then p.p_oldest <- arrival;
      p.p_reqs <- (rid, arrival) :: p.p_reqs;
      p.p_count <- p.p_count + 1;
      if p.p_count >= t.batch_max then flush t p;
      pump t

(* The effective flush horizon: the coalescing deadline, tightened by
   the per-request watchdog when one is armed (a request must be
   answered [Timeout] promptly, not once the batch window expires). *)
let span_ns t =
  match t.deadline_ms with
  | None -> t.flush_ns
  | Some d ->
      let w = Int64.of_float (d *. 1e6) in
      if w < t.flush_ns then w else t.flush_ns

let due_pendings t ~now =
  let span = span_ns t in
  Hashtbl.fold
    (fun _ p acc ->
      if p.p_count > 0 && Int64.sub now p.p_oldest >= span then p :: acc
      else acc)
    t.pending []

let flush_due t =
  let now = t.clock () in
  List.iter (flush t) (due_pendings t ~now)

let flush_all t =
  let ps =
    Hashtbl.fold (fun _ p acc -> if p.p_count > 0 then p :: acc else acc)
      t.pending []
  in
  List.iter (flush t) ps

let next_deadline_ns t =
  let span = span_ns t in
  Hashtbl.fold
    (fun _ p acc ->
      if p.p_count = 0 then acc
      else
        let d = Int64.add p.p_oldest span in
        match acc with
        | Some best when best <= d -> acc
        | _ -> Some d)
    t.pending None

(* ------------------------------------------------------------------ *)
(* Environment defaults                                                 *)
(* ------------------------------------------------------------------ *)

(* Like [Machine.default_batch]: the lazy parses fall back silently;
   [Promise.check_env] validates the same variables loudly at CLI
   startup. *)
let env_default ~name ~min ~max ~default =
  lazy
    (match Validate.env_int ~name ~min ~max with
    | Ok (Some n) -> n
    | Ok None | Error _ -> default)

let env_queue =
  env_default ~name:"PROMISE_SERVE_QUEUE" ~min:1 ~max:1_048_576 ~default:256

let env_batch_max =
  env_default ~name:"PROMISE_SERVE_BATCH" ~min:1 ~max:4096 ~default:64

let env_flush_us =
  env_default ~name:"PROMISE_SERVE_FLUSH_US" ~min:1 ~max:max_flush_us
    ~default:2000

let default_queue () = Lazy.force env_queue
let default_batch_max () = Lazy.force env_batch_max
let default_flush_us () = Lazy.force env_flush_us

(* ------------------------------------------------------------------ *)
(* Socket daemon                                                        *)
(* ------------------------------------------------------------------ *)

type wire_request = { w_rid : int; w_model : string }

type wire_response = {
  r_rid : int;
  r_values : float array;
  r_batch : int;
  r_error : string option;
}

type daemon_summary = { d_completed : int; d_stats : stats }

let write_frame fd (resp : wire_response) =
  match Ipc.write fd resp with
  | Ok () -> true
  | Error _ | (exception Unix.Unix_error _) -> false

let daemon ?(max_requests = 0) ?clock ?(incidents = Incident.null) ?pool
    ?deadline_ms ?mode ?breaker_threshold ?dwell_budget_us ~queue ~batch_max
    ~flush_us ~listen ~stop models =
  let now = match clock with Some c -> c | None -> Clock.monotonic_ns in
  (* rid (daemon-global) → where the response goes *)
  let rid_tbl : (int, Unix.file_descr * int) Hashtbl.t = Hashtbl.create 64 in
  let next_rid = ref 0 in
  let completed = ref 0 in
  let respond (out : outcome) =
    incr completed;
    match Hashtbl.find_opt rid_tbl out.o_rid with
    | None -> ()  (* client hung up before its answer *)
    | Some (fd, w_rid) ->
        Hashtbl.remove rid_tbl out.o_rid;
        let resp =
          match out.o_result with
          | Ok r ->
              {
                r_rid = w_rid;
                r_values = r.values;
                r_batch = r.batch;
                r_error = None;
              }
          | Error e ->
              {
                r_rid = w_rid;
                r_values = [||];
                r_batch = 0;
                r_error = Some (E.to_string e);
              }
        in
        ignore (write_frame fd resp)
  in
  let* eng =
    create ?clock ~incidents ?pool ?deadline_ms ?mode ?breaker_threshold
      ?dwell_budget_us ~queue ~batch_max ~flush_us ~respond models
  in
  (try Unix.unlink listen with Unix.Unix_error _ -> ());
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let* () =
    try
      Unix.bind srv (Unix.ADDR_UNIX listen);
      Unix.listen srv 64;
      Ok ()
    with Unix.Unix_error (err, _, _) ->
      Unix.close srv;
      E.fail ~layer:"serve" ~code:E.Capacity
        ~context:[ ("path", listen); ("errno", Unix.error_message err) ]
        "cannot bind the listening socket"
  in
  let previous_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ -> None
  in
  let clients = ref [] in
  let close_client fd =
    clients := List.filter (fun c -> c <> fd) !clients;
    Hashtbl.iter
      (fun rid (cfd, _) -> if cfd = fd then Hashtbl.remove rid_tbl rid)
      (Hashtbl.copy rid_tbl);
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let handle_client fd =
    match Ipc.read fd with
    | Ok None | Error _ -> close_client fd
    | Ok (Some (req : wire_request)) -> (
        let rid = !next_rid in
        incr next_rid;
        Hashtbl.replace rid_tbl rid (fd, req.w_rid);
        match submit eng ~rid ~model:req.w_model with
        | Ok () -> ()
        | Error e ->
            Hashtbl.remove rid_tbl rid;
            incr completed;
            ignore
              (write_frame fd
                 {
                   r_rid = req.w_rid;
                   r_values = [||];
                   r_batch = 0;
                   r_error = Some (E.to_string e);
                 }))
  in
  Incident.record incidents Incident.Run_start
    [ ("what", "promise-serve"); ("socket", listen) ];
  while
    (not (Supervisor.stop_requested stop))
    && (max_requests = 0 || !completed < max_requests)
  do
    let timeout =
      match next_deadline_ns eng with
      | Some ns ->
          let dt = Int64.to_float (Int64.sub ns (now ())) /. 1e9 in
          Float.max 0.0 (Float.min dt 0.05)
      | None -> 0.05
    in
    let readable =
      try
        let r, _, _ = Unix.select (srv :: !clients) [] [] timeout in
        r
      with Unix.Unix_error (Unix.EINTR, _, _) -> []
    in
    List.iter
      (fun fd ->
        if fd = srv then begin
          match Unix.accept srv with
          | client, _ -> clients := client :: !clients
          | exception Unix.Unix_error _ -> ()
        end
        else if List.mem fd !clients then handle_client fd)
      readable;
    pump eng;
    flush_due eng
  done;
  pump eng;
  flush_all eng;
  Incident.record incidents Incident.Run_end
    [ ("what", "promise-serve"); ("completed", string_of_int !completed) ];
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !clients;
  (try Unix.close srv with Unix.Unix_error _ -> ());
  (try Unix.unlink listen with Unix.Unix_error _ -> ());
  (match previous_sigpipe with
  | Some b -> Sys.set_signal Sys.sigpipe b
  | None -> ());
  Ok { d_completed = !completed; d_stats = stats eng }

(* ------------------------------------------------------------------ *)
(* Probe client                                                         *)
(* ------------------------------------------------------------------ *)

type probe_summary = {
  p_sent : int;
  p_ok : int;
  p_rejected : int;
  p_max_batch : int;
}

let probe ?(connect_timeout_ms = 10_000.0) ?(requests = 8) ~path ~model () =
  (* A daemon is free to close the connection mid-pipeline (drained,
     max-requests reached, crashed): without this, the next write kills
     the probe with SIGPIPE — which a caller cannot tell apart from a
     hang. Ignore it for the probe's duration; writes then surface as
     typed EPIPE errors. *)
  let previous_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ -> None
  in
  let restore_sigpipe () =
    match previous_sigpipe with
    | Some b -> Sys.set_signal Sys.sigpipe b
    | None -> ()
  in
  let deadline =
    Int64.add (Clock.monotonic_ns ())
      (Int64.of_float (connect_timeout_ms *. 1e6))
  in
  let rec connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if Clock.monotonic_ns () > deadline then
          E.fail ~layer:"serve" ~code:E.Timeout
            ~context:[ ("path", path) ]
            "no daemon answered within the connect timeout"
        else begin
          Clock.sleep_ms 20.0;
          connect ()
        end
    | exception Unix.Unix_error (err, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        E.fail ~layer:"serve" ~code:E.Capacity
          ~context:[ ("path", path); ("errno", Unix.error_message err) ]
          "cannot connect to the daemon"
  in
  match connect () with
  | Error e ->
      restore_sigpipe ();
      Error e
  | Ok fd -> (
      let finish r =
        (try Unix.close fd with Unix.Unix_error _ -> ());
        restore_sigpipe ();
        r
      in
      let rec send i =
        if i = requests then Ok ()
        else
          match Ipc.write fd { w_rid = i; w_model = model } with
          | Ok () -> send (i + 1)
          | Error e -> Error e
      in
      match send 0 with
      | Error e -> finish (Error e)
      | Ok () ->
          let ok = ref 0 and rejected = ref 0 and max_batch = ref 0 in
          let rec recv n =
            if n = 0 then Ok ()
            else
              match Ipc.read fd with
              | Error e -> Error e
              | Ok None ->
                  (* clean EOF mid-pipeline: not a hang, not a transport
                     fault — the daemon finished with us early. Say how
                     far the conversation got. *)
                  E.fail ~layer:"serve" ~code:E.Capacity
                    ~context:
                      [
                        ( "replies-before-close",
                          string_of_int (requests - n) );
                        ("missing", string_of_int n);
                      ]
                    "daemon closed the connection mid-pipeline"
              | Ok (Some (resp : wire_response)) ->
                  (match resp.r_error with
                  | None ->
                      incr ok;
                      if resp.r_batch > !max_batch then
                        max_batch := resp.r_batch
                  | Some _ -> incr rejected);
                  recv (n - 1)
          in
          finish
            (let* () = recv requests in
             Ok
               {
                 p_sent = requests;
                 p_ok = !ok;
                 p_rejected = !rejected;
                 p_max_batch = !max_batch;
               }))

(* ------------------------------------------------------------------ *)
(* Self-test load generator                                             *)
(* ------------------------------------------------------------------ *)

type load = Closed_loop of int | Open_loop of float

type load_report = {
  l_mode : mode;
  l_requests : int;
  l_served : int;
  l_rejected : int;
  l_timeouts : int;
  l_failures : int;
  l_seconds : float;
  l_rps : float;
  l_p50_ms : float;
  l_p95_ms : float;
  l_p99_ms : float;
  l_mean_batch : float;
  l_max_batch : float;
  l_batch_hist : (float * int) list;
  l_max_queue_depth : int;
  l_digest : string;
}

(* ------------------------------------------------------------------ *)
(* Chaos soak                                                           *)
(* ------------------------------------------------------------------ *)

type chaos_report = {
  c_requests : int;
  c_admitted : int;
  c_served : int;
  c_timeouts : int;
  c_failed : int;
  c_shed : int;
  c_rejected : int;
  c_lost : int;
  c_multi : int;
  c_healed : int;
  c_fallback_batches : int;
  c_breaker_opens : int;
  c_survivors_checked : int;
  c_survivor_mismatches : int;
  c_ipc_faults : int;
  c_checkpoint_failures : int;
  c_sink_degraded : int;
  c_events : string;
}

(* Canonicalize one incident JSONL line: drop the [seq]/[t_ms]/[wall]
   prefix (wall-clock and per-sink sequencing are the only
   nondeterministic bytes in the log) and keep everything from ["kind"]
   on. Two soaks with the same seed must agree on the result byte for
   byte. *)
let canonical_incident_line line =
  let needle = "\"kind\"" in
  let nlen = String.length needle and llen = String.length line in
  let rec find i =
    if i + nlen > llen then None
    else if String.sub line i nlen = needle then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i -> Some ("{" ^ String.sub line i (llen - i))
  | None -> None

let read_lines path =
  match open_in path with
  | ic ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file ->
            close_in_noerr ic;
            List.rev acc
      in
      go []
  | exception Sys_error _ -> []

(* The seeded soak: a virtual-clock drive of the full service path with
   a scheduled failure storm — bank death mid-service, a machine-level
   blackout that defeats the healing ladder (so the breaker trips), a
   dispatcher stall (so dwell shedding and watchdog timeouts fire), IPC
   fault injection on a response echo loop, checkpoint fsync failures,
   and ENOSPC on the incident sink itself. Everything that moves is
   derived from [seed] and the virtual clock, so the same seed replays
   the identical incident sequence byte for byte, and survivors must be
   bitwise what a fault-free engine serves. *)
let chaos_run ?(seed = 0) ?(requests = 240) ~incident_path ~checkpoint_path
    ~model () =
  let base_schedule =
    [
      ("ipc.read", Failpoint.Fail_prob 0.05);
      ("ipc.write", Failpoint.Eintr);
      ("checkpoint.save", Failpoint.Fail_prob 0.5);
      ("incident.write", Failpoint.Fail_prob 0.02);
      ("queue.admit", Failpoint.Fail_prob 0.02);
      ("serve.flush", Failpoint.Fail_prob 0.03);
    ]
  in
  let blackout_schedule =
    (* every execute faults: the ladder's digital rung fails too, which
       is what trips the breaker *)
    ("machine.execute", Failpoint.Fail_prob 1.0) :: base_schedule
  in
  (try Sys.remove incident_path with Sys_error _ -> ());
  (try Sys.remove (incident_path ^ ".1") with Sys_error _ -> ());
  let* incidents = Incident.to_file incident_path in
  let m = model () in
  let name = model_name m in
  let counts = Array.make requests 0 in
  let values : float array option array = Array.make requests None in
  let timeouts = ref 0 and failed = ref 0 and shed_out = ref 0 in
  let ipc_faults = ref 0 in
  let ckpt_fails = ref 0 and ckpt_saves = ref 0 in
  let outcomes = ref 0 in
  let ckpt_digest =
    Promise_core.Checkpoint.digest_of_config ~kind:"chaos"
      [ string_of_int seed; string_of_int requests ]
  in
  (* Response echo: every outcome is marshalled through a pipe with the
     armed [ipc.*] sites — frames either arrive intact (short
     writes/EINTR absorbed by the transfer loops) or fail with the
     typed truncation error, never silently corrupt. *)
  let echo (out : outcome) =
    match Unix.pipe () with
    | exception Unix.Unix_error _ -> ()
    | r, w ->
        let payload =
          match out.o_result with
          | Ok rep -> (out.o_rid, rep.values)
          | Error e -> (out.o_rid, [| float_of_int (String.length (E.to_string e)) |])
        in
        (match Ipc.write w payload with
        | Ok () -> (
            match Ipc.read r with
            | Ok (Some (rid, _)) when rid = out.o_rid -> ()
            | Ok _ | Error _ -> incr ipc_faults)
        | Error _ -> incr ipc_faults);
        (try Unix.close r with Unix.Unix_error _ -> ());
        (try Unix.close w with Unix.Unix_error _ -> ())
  in
  let respond (out : outcome) =
    incr outcomes;
    if out.o_rid >= 0 && out.o_rid < requests then begin
      counts.(out.o_rid) <- counts.(out.o_rid) + 1;
      match out.o_result with
      | Ok rep -> values.(out.o_rid) <- Some rep.values
      | Error { E.code = E.Timeout; _ } -> incr timeouts
      | Error { E.code = E.Overloaded; _ } -> incr shed_out
      | Error _ -> incr failed
    end;
    echo out;
    if !outcomes mod 32 = 0 then begin
      incr ckpt_saves;
      match
        Promise_core.Checkpoint.save ~path:checkpoint_path
          ~config_digest:ckpt_digest (!outcomes, !timeouts, !failed)
      with
      | Ok () -> ()
      | Error e ->
          incr ckpt_fails;
          (* log the code, not the message: the message embeds the
             checkpoint path, which would break transcript byte-identity
             across working directories *)
          Incident.record incidents Incident.Checkpoint_write
            [ ("status", "failed"); ("code", E.code_name e.E.code) ]
    end
  in
  let vnow = ref 0L in
  let clock () = !vnow in
  let* eng =
    create ~clock ~incidents ~deadline_ms:10.0 ~mode:Batched
      ~breaker_threshold:3 ~breaker_cooldown_ms:10.0 ~dwell_budget_us:3000
      ~queue:64 ~batch_max:8 ~flush_us:2000 ~respond [ m ]
  in
  let* () = Failpoint.configure ~seed base_schedule in
  Incident.record incidents Incident.Run_start
    [
      ("what", "chaos-soak");
      ("seed", string_of_int seed);
      ("requests", string_of_int requests);
    ];
  (* The storm timeline, keyed to arrival progress rather than wall
     positions so every phase is guaranteed to overlap live traffic
     whatever the seed draws for inter-arrival times: kill a bank at
     15% of the offered load, revive it at 40%, stall the dispatcher
     through [50%, 65%), black out the machine through [75%, 90%). *)
  let frac pct = requests * pct / 100 in
  let transient = frac 5 in
  let bank_kill = frac 15 and bank_revive = frac 40 in
  let stall_from = frac 50 and stall_to = frac 65 in
  let blackout_from = frac 75 and blackout_to = frac 90 in
  let ms v = Int64.of_float (v *. 1e6) in
  let tick_ns = 200_000L (* 0.2 virtual ms per tick *) in
  let arr_rng = Rng.create seed in
  let interval () =
    (* seeded exponential inter-arrivals, mean 0.4 virtual ms *)
    let u = Float.max 1e-12 (Rng.uniform arr_rng ~lo:0.0 ~hi:1.0) in
    Int64.of_float (-.Float.log u *. 0.4e6)
  in
  let next_arrival = ref (interval ()) in
  let issued = ref 0 and admitted = ref 0 and rejected = ref 0 in
  let zapped = ref false in
  let killed = ref false and revived = ref false in
  let blackout = ref false and restored = ref false in
  let fail_conf = ref None in
  let reconfigure schedule =
    match Failpoint.configure ~seed schedule with
    | Ok () -> ()
    | Error e -> if !fail_conf = None then fail_conf := Some e
  in
  let hard_stop = ms 2_000.0 in
  while
    (!issued < requests || !outcomes < !admitted) && !vnow < hard_stop
  do
    vnow := Int64.add !vnow tick_ns;
    (* scheduled hardware storm *)
    if (not !zapped) && !issued >= transient then begin
      zapped := true;
      (* one transient analog fault against healthy hardware: BIST
         finds nothing, the retry succeeds — the "healed" rung *)
      reconfigure (("machine.execute", Failpoint.Fail_once) :: base_schedule);
      Incident.record incidents Incident.Chaos [ ("what", "transient-fault") ]
    end;
    if (not !killed) && !issued >= bank_kill then begin
      killed := true;
      (match
         Promise_arch.Faults.with_dead_adc_units Promise_arch.Faults.none
           Promise_analog.Adc.units_per_bank
       with
      | Ok f -> Promise_arch.Bank.set_faults (Machine.bank m.m_machine 0) f
      | Error _ -> ());
      Incident.record incidents Incident.Chaos
        [ ("what", "bank-kill"); ("bank", "0") ]
    end;
    if (not !revived) && !issued >= bank_revive then begin
      revived := true;
      Promise_arch.Bank.set_faults
        (Machine.bank m.m_machine 0)
        Promise_arch.Faults.none;
      Incident.record incidents Incident.Chaos
        [ ("what", "bank-revive"); ("bank", "0") ]
    end;
    if (not !blackout) && !issued >= blackout_from then begin
      blackout := true;
      reconfigure blackout_schedule;
      Incident.record incidents Incident.Chaos [ ("what", "blackout-start") ]
    end;
    if (not !restored) && !issued >= blackout_to then begin
      restored := true;
      reconfigure base_schedule;
      Incident.record incidents Incident.Chaos [ ("what", "blackout-end") ]
    end;
    (* seeded open-loop arrivals (they continue through the stall) *)
    while !issued < requests && !next_arrival <= !vnow do
      (match submit eng ~rid:!issued ~model:name with
      | Ok () -> incr admitted
      | Error _ -> incr rejected);
      incr issued;
      next_arrival := Int64.add !next_arrival (interval ())
    done;
    (* the dispatcher stalls for a window: arrivals keep landing, the
       inbox head ages past the dwell budget (shedding), and the head
       requests blow the 10 ms watchdog (timeouts at resume) *)
    let stalled = !issued >= stall_from && !issued < stall_to in
    if not stalled then begin
      pump eng;
      flush_due eng
    end
  done;
  pump eng;
  flush_all eng;
  (* drain breaker-open shedding: anything still unanswered was pending
     behind an open breaker; keep flushing through the cooldown *)
  let guard = ref 0 in
  while !outcomes < !admitted && !guard < 10_000 do
    incr guard;
    vnow := Int64.add !vnow tick_ns;
    pump eng;
    flush_all eng
  done;
  let s = stats eng in
  Incident.record incidents Incident.Run_end
    [
      ("what", "chaos-soak");
      ("admitted", string_of_int !admitted);
      ("outcomes", string_of_int !outcomes);
      ("served", string_of_int s.served);
    ];
  Incident.close incidents;
  Failpoint.reset ();
  (match !fail_conf with Some e -> Error e | None -> Ok ())
  |> Result.map @@ fun () ->
  (* fault-free twin pass: same rids on a fresh engine with no
     failpoints, no storm — the bit-identity baseline for survivors *)
  let clean_values : float array option array = Array.make requests None in
  let clean_respond (out : outcome) =
    match out.o_result with
    | Ok rep when out.o_rid >= 0 && out.o_rid < requests ->
        clean_values.(out.o_rid) <- Some rep.values
    | _ -> ()
  in
  let clean =
    let cm = model () in
    let cname = model_name cm in
    match
      create ~clock:(fun () -> 0L) ~mode:Batched ~queue:64 ~batch_max:8
        ~flush_us:2000 ~respond:clean_respond [ cm ]
    with
    | Error _ -> false
    | Ok ceng ->
        let rec go rid =
          if rid >= requests then true
          else begin
            (match submit ceng ~rid ~model:cname with
            | Ok () -> ()
            | Error _ -> ());
            pump ceng;
            if rid mod 32 = 31 then flush_all ceng;
            go (rid + 1)
          end
        in
        let ok = go 0 in
        flush_all ceng;
        ok
  in
  ignore clean;
  let survivors = ref 0 and mismatches = ref 0 in
  Array.iteri
    (fun rid v ->
      match (v, clean_values.(rid)) with
      | Some got, Some want ->
          incr survivors;
          if
            not
              (Array.length got = Array.length want
              && Array.for_all2
                   (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
                   got want)
          then incr mismatches
      | Some _, None -> incr survivors
      | None, _ -> ())
    values;
  let lost = ref 0 and multi = ref 0 in
  Array.iteri
    (fun rid c ->
      if rid < !issued then begin
        ignore rid;
        if c > 1 then incr multi
      end)
    counts;
  (* lost = admitted minus rids that got at least one outcome; shed and
     rejected offers never entered, so they owe nothing *)
  let answered = Array.fold_left (fun a c -> if c > 0 then a + 1 else a) 0 counts in
  lost := !admitted - answered + !multi;
  let lines = read_lines incident_path in
  let canon = List.filter_map canonical_incident_line lines in
  let count_kind k =
    List.length
      (List.filter
         (fun l ->
           let needle = Printf.sprintf "{\"kind\":\"%s\"" k in
           String.length l >= String.length needle
           && String.sub l 0 (String.length needle) = needle)
         canon)
  in
  let breaker_opens =
    List.length
      (List.filter
         (fun l ->
           let needle = "{\"kind\":\"breaker\"" in
           String.length l >= String.length needle
           && String.sub l 0 (String.length needle) = needle
           &&
           let sub = "\"state\":\"open\"" in
           let rec find i =
             i + String.length sub <= String.length l
             && (String.sub l i (String.length sub) = sub || find (i + 1))
           in
           find 0)
         canon)
  in
  let events =
    String.concat "\n" canon
    ^ Printf.sprintf
        "\nsummary admitted=%d served=%d timeouts=%d failed=%d shed=%d \
         rejected=%d healed=%d fallback=%d ipc_faults=%d ckpt=%d/%d"
        !admitted s.served !timeouts !failed !shed_out !rejected s.healed
        s.fallback_batches !ipc_faults
        (!ckpt_saves - !ckpt_fails)
        !ckpt_saves
    ^ "\n"
  in
  {
    c_requests = requests;
    c_admitted = !admitted;
    c_served = s.served;
    c_timeouts = !timeouts;
    c_failed = !failed;
    c_shed = !shed_out;
    c_rejected = !rejected;
    c_lost = max 0 !lost;
    c_multi = !multi;
    c_healed = s.healed;
    c_fallback_batches = s.fallback_batches;
    c_breaker_opens = breaker_opens;
    c_survivors_checked = !survivors;
    c_survivor_mismatches = !mismatches;
    c_ipc_faults = !ipc_faults;
    c_checkpoint_failures = !ckpt_fails;
    c_sink_degraded = count_kind "sink-degraded";
    c_events = events;
  }

let load_run ?(seed = 0) ?(jobs = 1) ?(incidents = Incident.null) ?deadline_ms
    ~mode ~queue ~batch_max ~flush_us ~requests ~load ~model () =
  let m = model () in
  let name = model_name m in
  let outputs : float array option array = Array.make requests None in
  let finished = ref 0 in
  let respond (out : outcome) =
    incr finished;
    match out.o_result with
    | Ok r -> outputs.(out.o_rid) <- Some r.values
    | Error _ -> ()
  in
  Pool.with_pool ~jobs (fun pool ->
      let* eng =
        create ~incidents ~pool ?deadline_ms ~mode ~queue ~batch_max ~flush_us
          ~respond [ m ]
      in
      let t0 = Clock.monotonic_ns () in
      let issued = ref 0 in
      let offer () =
        (match submit eng ~rid:!issued ~model:name with
        | Ok () -> ()
        | Error _ -> incr finished (* rejected: no outcome will arrive *));
        incr issued
      in
      (match load with
      | Closed_loop conc ->
          let conc = max 1 conc in
          while !finished < requests do
            while !issued < requests && !issued - !finished < conc do
              offer ()
            done;
            pump eng;
            (* the window is full (or the stream is over): nothing more
               can arrive before a response, so drain eagerly — a closed
               system never waits out the flush deadline *)
            flush_all eng
          done
      | Open_loop rate ->
          let rate = Float.max 1.0 rate in
          let rng = Rng.create seed in
          let interval () =
            let u = Float.max 1e-12 (Rng.uniform rng ~lo:0.0 ~hi:1.0) in
            Int64.of_float (-.Float.log u /. rate *. 1e9)
          in
          let next = ref (Int64.add t0 (interval ())) in
          while !finished < requests do
            let now = Clock.monotonic_ns () in
            while !issued < requests && !next <= now do
              offer ();
              next := Int64.add !next (interval ())
            done;
            pump eng;
            if !issued >= requests then flush_all eng else flush_due eng;
            if !finished < requests && !issued < requests then begin
              let target =
                match next_deadline_ns eng with
                | Some d when d < !next -> d
                | _ -> !next
              in
              let wait_ms =
                Int64.to_float (Int64.sub target (Clock.monotonic_ns ()))
                /. 1e6
              in
              if wait_ms > 0.05 then Clock.sleep_ms (Float.min wait_ms 1.0)
            end
          done);
      let seconds =
        Int64.to_float (Int64.sub (Clock.monotonic_ns ()) t0) /. 1e9
      in
      let s = stats eng in
      let digest =
        let buf = Buffer.create 4096 in
        Array.iteri
          (fun rid o ->
            match o with
            | None -> ()
            | Some vs ->
                Buffer.add_string buf (string_of_int rid);
                Array.iter
                  (fun v -> Buffer.add_int64_le buf (Int64.bits_of_float v))
                  vs)
          outputs;
        Digest.to_hex (Digest.string (Buffer.contents buf))
      in
      let pct q = Histogram.percentile s.latency_ns q /. 1e6 in
      Ok
        {
          l_mode = mode;
          l_requests = requests;
          l_served = s.served;
          l_rejected = s.rejected;
          l_timeouts = s.timeouts;
          l_failures = s.failures;
          l_seconds = seconds;
          l_rps =
            (if seconds > 0.0 then float_of_int s.served /. seconds else 0.0);
          l_p50_ms = pct 0.5;
          l_p95_ms = pct 0.95;
          l_p99_ms = pct 0.99;
          l_mean_batch = Histogram.mean s.batch_sizes;
          l_max_batch = Histogram.max_value s.batch_sizes;
          l_batch_hist = Histogram.buckets s.batch_sizes;
          l_max_queue_depth = s.queue.Queue_bounded.max_depth;
          l_digest = digest;
        })
