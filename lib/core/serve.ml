module E = Promise_core.Error
module Incident = Promise_core.Incident
module Supervisor = Promise_core.Supervisor
module Clock = Promise_core.Clock
module Pool = Promise_core.Pool
module Queue_bounded = Promise_core.Queue_bounded
module Histogram = Promise_core.Histogram
module Ipc = Promise_core.Ipc
module Validate = Promise_core.Validate
module Machine = Promise_arch.Machine
module Rng = Promise_analog.Rng

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Models                                                               *)
(* ------------------------------------------------------------------ *)

(* How a flushed batch reaches the machine.  Probed on first dispatch:
   single-task programs try the zero-allocation serving path
   ([execute_batch_into]), which rejects unsupported launch shapes
   BEFORE touching any machine or RNG state, so falling back to
   [run_program_batch] is free and the choice sticks for the model's
   lifetime. *)
type plan =
  | Unprobed
  | Into of { launch : Machine.launch; epd : int; out : Rng.ba }
  | Prog

type model = {
  m_name : string;
  m_machine : Machine.t;
  m_program : Promise_isa.Program.t;
  mutable m_plan : plan;
}

(* The deterministic data image of bench/main.ml: every bank row and
   X-REG slot filled from one seeded stream, so two models built from
   the same seeds replay bit-identical decision streams. *)
let fill_machine ~seed machine =
  let lanes = Promise_arch.Params.lanes in
  let rng = Rng.create seed in
  let codes () = Array.init lanes (fun _ -> Rng.int rng 255 - 128) in
  for bi = 0 to Machine.n_banks machine - 1 do
    let bank = Machine.bank machine bi in
    for row = 0 to 63 do
      Promise_arch.Bitcell_array.write
        (Promise_arch.Bank.array bank)
        ~word_row:row (codes ())
    done;
    for i = 0 to Promise_arch.Params.xreg_depth - 1 do
      Promise_arch.Xreg.load (Promise_arch.Bank.xreg bank) ~index:i (codes ())
    done
  done

let model_of_benchmark ?name ?banks ?(noise_seed = None) ?(fill_seed = 7)
    (b : Benchmarks.t) =
  let banks =
    match banks with Some n -> n | None -> max 1 b.Benchmarks.banks
  in
  let machine =
    Machine.create
      { Machine.banks; profile = Promise_arch.Bank.Silicon; noise_seed }
  in
  fill_machine ~seed:fill_seed machine;
  {
    m_name = Option.value name ~default:b.Benchmarks.name;
    m_machine = machine;
    m_program = b.Benchmarks.per_decision_program;
    m_plan = Unprobed;
  }

let model_name m = m.m_name

(* ------------------------------------------------------------------ *)
(* Engine                                                               *)
(* ------------------------------------------------------------------ *)

type mode = Batched | Single

type reply = { values : float array; batch : int; wait_ns : int64 }

type outcome = {
  o_rid : int;
  o_model : string;
  o_result : (reply, E.t) result;
}

type pending = {
  p_model : model;
  mutable p_reqs : (int * int64) list;  (** (rid, arrival), newest first *)
  mutable p_count : int;
  mutable p_oldest : int64;
}

type t = {
  clock : unit -> int64;
  incidents : Incident.t;
  pool : Pool.t option;
  deadline_ms : float option;
  mode : mode;
  batch_max : int;
  flush_ns : int64;
  respond : outcome -> unit;
  sup : Supervisor.config;
  models : (string, model) Hashtbl.t;
  inbox : (int * string * int64) Queue_bounded.t;
  pending : (string, pending) Hashtbl.t;
  mutable submitted : int;
  mutable rejected_other : int;  (** unknown-model rejections *)
  mutable served : int;
  mutable timeouts : int;
  mutable failures : int;
  mutable batches : int;
  latency : Histogram.t;
  batch_sizes : Histogram.t;
}

type stats = {
  submitted : int;
  rejected : int;
  served : int;
  timeouts : int;
  failures : int;
  batches : int;
  queue : Queue_bounded.stats;
  latency_ns : Histogram.t;
  batch_sizes : Histogram.t;
}

let max_flush_us = 10_000_000

let create ?(clock = Clock.monotonic_ns) ?(incidents = Incident.null) ?pool
    ?deadline_ms ?(mode = Batched) ~queue ~batch_max ~flush_us ~respond models
    =
  let* () =
    if batch_max < 1 || batch_max > 4096 then
      E.fail ~layer:"serve" ~code:E.Invalid_operand
        ~context:[ ("batch_max", string_of_int batch_max) ]
        "batch_max out of range 1..4096"
    else Ok ()
  in
  let* () =
    if flush_us < 1 || flush_us > max_flush_us then
      E.fail ~layer:"serve" ~code:E.Invalid_operand
        ~context:[ ("flush_us", string_of_int flush_us) ]
        (Printf.sprintf "flush_us out of range 1..%d" max_flush_us)
    else Ok ()
  in
  let* () =
    match models with
    | [] ->
        E.fail ~layer:"serve" ~code:E.Invalid_operand
          "an engine needs at least one model"
    | _ -> Ok ()
  in
  let* inbox = Queue_bounded.create ~capacity:queue in
  let tbl = Hashtbl.create 16 in
  let* () =
    List.fold_left
      (fun acc m ->
        let* () = acc in
        if Hashtbl.mem tbl m.m_name then
          E.fail ~layer:"serve" ~code:E.Invalid_operand
            ~context:[ ("model", m.m_name) ]
            "duplicate model name"
        else begin
          Hashtbl.add tbl m.m_name m;
          Ok ()
        end)
      (Ok ()) models
  in
  Ok
    {
      clock;
      incidents;
      pool;
      deadline_ms;
      mode;
      batch_max;
      flush_ns = Int64.of_int (flush_us * 1000);
      respond;
      sup = Supervisor.config ~incidents ~clock ();
      models = tbl;
      inbox;
      pending = Hashtbl.create 16;
      submitted = 0;
      rejected_other = 0;
      served = 0;
      timeouts = 0;
      failures = 0;
      batches = 0;
      latency = Histogram.create ();
      batch_sizes = Histogram.create ();
    }

let stats t =
  let q = Queue_bounded.stats t.inbox in
  {
    submitted = t.submitted;
    rejected = q.Queue_bounded.rejected + t.rejected_other;
    served = t.served;
    timeouts = t.timeouts;
    failures = t.failures;
    batches = t.batches;
    queue = q;
    latency_ns = t.latency;
    batch_sizes = t.batch_sizes;
  }

(* ------------------------------------------------------------------ *)
(* Admission                                                            *)
(* ------------------------------------------------------------------ *)

let submit t ~rid ~model =
  if not (Hashtbl.mem t.models model) then begin
    t.rejected_other <- t.rejected_other + 1;
    Incident.record t.incidents Incident.Admission_reject
      [ ("rid", string_of_int rid); ("model", model); ("reason", "unknown") ];
    E.fail ~layer:"serve" ~code:E.Invalid_operand
      ~context:[ ("model", model) ]
      "unknown model"
  end
  else
    match Queue_bounded.try_push t.inbox (rid, model, t.clock ()) with
    | Ok () ->
        t.submitted <- t.submitted + 1;
        Ok ()
    | Error e ->
        Incident.record t.incidents Incident.Admission_reject
          [
            ("rid", string_of_int rid);
            ("model", model);
            ("reason", "queue-full");
            ("depth", string_of_int (Queue_bounded.length t.inbox));
          ];
        Error e

(* ------------------------------------------------------------------ *)
(* Dispatch                                                             *)
(* ------------------------------------------------------------------ *)

(* The decision's emission stream, the reply payload shared by every
   dispatch path: output-buffer then accumulator emissions per task, in
   task order.  [execute_batch_into] writes exactly this stream, so the
   three paths are bitwise comparable. *)
let values_of_results rs =
  Array.of_list
    (List.concat_map
       (fun r -> r.Machine.emitted @ r.Machine.acc_out)
       rs)

let dispatch_single t m =
  let* rs = Machine.run_program ?pool:t.pool m.m_machine m.m_program in
  Ok (values_of_results rs)

let dispatch_program_batch t m ~batch =
  let* arr =
    Machine.run_program_batch ?pool:t.pool m.m_machine m.m_program ~batch
  in
  Ok (Array.map values_of_results arr)

let slice_into ~out ~epd ~batch =
  Array.init batch (fun d -> Array.init epd (fun g -> out.{(d * epd) + g}))

let dispatch_batched t m ~batch =
  match m.m_plan with
  | Prog -> dispatch_program_batch t m ~batch
  | Into { epd = _; out; launch } -> (
      match
        Machine.execute_batch_into ?pool:t.pool m.m_machine launch ~batch ~out
      with
      | Ok epd' -> Ok (slice_into ~out ~epd:epd' ~batch)
      | Error e -> Error e)
  | Unprobed -> (
      match m.m_program.Promise_isa.Program.tasks with
      | [ task ] -> (
          let launch = Machine.default_launch task in
          let epd =
            Machine.emissions_per_decision task ~th:launch.Machine.th
          in
          let out =
            Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout
              (max 1 (t.batch_max * epd))
          in
          match
            Machine.execute_batch_into ?pool:t.pool m.m_machine launch ~batch
              ~out
          with
          | Ok epd' ->
              m.m_plan <- Into { launch; epd; out };
              Ok (slice_into ~out ~epd:epd' ~batch)
          | Error { E.code = E.Unsupported; _ } ->
              (* rejected before any state was touched: the program path
                 serves this batch and every later one *)
              m.m_plan <- Prog;
              dispatch_program_batch t m ~batch
          | Error e -> Error e)
      | _ ->
          m.m_plan <- Prog;
          dispatch_program_batch t m ~batch)

let timeout_error ~rid ~waited_ms =
  E.make ~layer:"serve" ~code:E.Timeout
    ~context:
      [ ("rid", string_of_int rid); ("waited_ms", Printf.sprintf "%.1f" waited_ms) ]
    "request exceeded its watchdog deadline before dispatch"

(* Flush one pending set: answer watchdog-overdue requests with typed
   [Timeout], then dispatch the survivors as one batch (or one by one in
   [Single] mode) under the supervisor, and respond per request. *)
let flush t p =
  let reqs = List.rev p.p_reqs in
  p.p_reqs <- [];
  p.p_count <- 0;
  let m = p.p_model in
  let now = t.clock () in
  let live, dropped =
    match t.deadline_ms with
    | None -> (reqs, [])
    | Some d ->
        let budget_ns = Int64.of_float (d *. 1e6) in
        List.partition
          (fun (_, arrival) -> Int64.sub now arrival <= budget_ns)
          reqs
  in
  List.iter
    (fun (rid, arrival) ->
      t.timeouts <- t.timeouts + 1;
      let waited_ms = Int64.to_float (Int64.sub now arrival) /. 1e6 in
      Incident.record t.incidents Incident.Timeout
        [
          ("item", Printf.sprintf "serve:%s:%d" m.m_name rid);
          ("waited_ms", Printf.sprintf "%.1f" waited_ms);
        ];
      t.respond
        { o_rid = rid; o_model = m.m_name; o_result = Error (timeout_error ~rid ~waited_ms) })
    dropped;
  match live with
  | [] -> ()
  | _ ->
      let n = List.length live in
      let label = Printf.sprintf "serve:%s:batch%d" m.m_name n in
      let dispatched =
        Supervisor.supervise t.sup ~label (fun ~attempt:_ ->
            match t.mode with
            | Batched -> dispatch_batched t m ~batch:n
            | Single ->
                let rec go acc k =
                  if k = 0 then Ok (Array.of_list (List.rev acc))
                  else
                    let* v = dispatch_single t m in
                    go (v :: acc) (k - 1)
                in
                go [] n)
      in
      (* the trace is an audit artifact of batch/CLI runs; a daemon
         serving forever must not retain one record per dispatch *)
      Machine.reset_trace m.m_machine;
      t.batches <- t.batches + (match t.mode with Batched -> 1 | Single -> n);
      (match t.mode with
      | Batched -> Histogram.add t.batch_sizes (float_of_int n)
      | Single ->
          for _ = 1 to n do
            Histogram.add t.batch_sizes 1.0
          done);
      let done_ns = t.clock () in
      let reply_batch = match t.mode with Batched -> n | Single -> 1 in
      List.iteri
        (fun i (rid, arrival) ->
          let wait_ns = Int64.sub done_ns arrival in
          match dispatched with
          | Ok values ->
              t.served <- t.served + 1;
              Histogram.add t.latency (Int64.to_float wait_ns);
              t.respond
                {
                  o_rid = rid;
                  o_model = m.m_name;
                  o_result =
                    Ok { values = values.(i); batch = reply_batch; wait_ns };
                }
          | Error e ->
              t.failures <- t.failures + 1;
              t.respond
                {
                  o_rid = rid;
                  o_model = m.m_name;
                  o_result =
                    Error (E.with_context e [ ("rid", string_of_int rid) ]);
                })
        live

(* ------------------------------------------------------------------ *)
(* Coalescing                                                           *)
(* ------------------------------------------------------------------ *)

let pending_for t name =
  match Hashtbl.find_opt t.pending name with
  | Some p -> p
  | None ->
      let p =
        {
          p_model = Hashtbl.find t.models name;
          p_reqs = [];
          p_count = 0;
          p_oldest = 0L;
        }
      in
      Hashtbl.add t.pending name p;
      p

let rec pump t =
  match Queue_bounded.pop_opt t.inbox with
  | None -> ()
  | Some (rid, name, arrival) ->
      let p = pending_for t name in
      if p.p_count = 0 then p.p_oldest <- arrival;
      p.p_reqs <- (rid, arrival) :: p.p_reqs;
      p.p_count <- p.p_count + 1;
      if p.p_count >= t.batch_max then flush t p;
      pump t

(* The effective flush horizon: the coalescing deadline, tightened by
   the per-request watchdog when one is armed (a request must be
   answered [Timeout] promptly, not once the batch window expires). *)
let span_ns t =
  match t.deadline_ms with
  | None -> t.flush_ns
  | Some d ->
      let w = Int64.of_float (d *. 1e6) in
      if w < t.flush_ns then w else t.flush_ns

let due_pendings t ~now =
  let span = span_ns t in
  Hashtbl.fold
    (fun _ p acc ->
      if p.p_count > 0 && Int64.sub now p.p_oldest >= span then p :: acc
      else acc)
    t.pending []

let flush_due t =
  let now = t.clock () in
  List.iter (flush t) (due_pendings t ~now)

let flush_all t =
  let ps =
    Hashtbl.fold (fun _ p acc -> if p.p_count > 0 then p :: acc else acc)
      t.pending []
  in
  List.iter (flush t) ps

let next_deadline_ns t =
  let span = span_ns t in
  Hashtbl.fold
    (fun _ p acc ->
      if p.p_count = 0 then acc
      else
        let d = Int64.add p.p_oldest span in
        match acc with
        | Some best when best <= d -> acc
        | _ -> Some d)
    t.pending None

(* ------------------------------------------------------------------ *)
(* Environment defaults                                                 *)
(* ------------------------------------------------------------------ *)

(* Like [Machine.default_batch]: the lazy parses fall back silently;
   [Promise.check_env] validates the same variables loudly at CLI
   startup. *)
let env_default ~name ~min ~max ~default =
  lazy
    (match Validate.env_int ~name ~min ~max with
    | Ok (Some n) -> n
    | Ok None | Error _ -> default)

let env_queue =
  env_default ~name:"PROMISE_SERVE_QUEUE" ~min:1 ~max:1_048_576 ~default:256

let env_batch_max =
  env_default ~name:"PROMISE_SERVE_BATCH" ~min:1 ~max:4096 ~default:64

let env_flush_us =
  env_default ~name:"PROMISE_SERVE_FLUSH_US" ~min:1 ~max:max_flush_us
    ~default:2000

let default_queue () = Lazy.force env_queue
let default_batch_max () = Lazy.force env_batch_max
let default_flush_us () = Lazy.force env_flush_us

(* ------------------------------------------------------------------ *)
(* Socket daemon                                                        *)
(* ------------------------------------------------------------------ *)

type wire_request = { w_rid : int; w_model : string }

type wire_response = {
  r_rid : int;
  r_values : float array;
  r_batch : int;
  r_error : string option;
}

type daemon_summary = { d_completed : int; d_stats : stats }

let write_frame fd (resp : wire_response) =
  match Ipc.write fd resp with
  | Ok () -> true
  | Error _ | (exception Unix.Unix_error _) -> false

let daemon ?(max_requests = 0) ?clock ?(incidents = Incident.null) ?pool
    ?deadline_ms ?mode ~queue ~batch_max ~flush_us ~listen ~stop models =
  let now = match clock with Some c -> c | None -> Clock.monotonic_ns in
  (* rid (daemon-global) → where the response goes *)
  let rid_tbl : (int, Unix.file_descr * int) Hashtbl.t = Hashtbl.create 64 in
  let next_rid = ref 0 in
  let completed = ref 0 in
  let respond (out : outcome) =
    incr completed;
    match Hashtbl.find_opt rid_tbl out.o_rid with
    | None -> ()  (* client hung up before its answer *)
    | Some (fd, w_rid) ->
        Hashtbl.remove rid_tbl out.o_rid;
        let resp =
          match out.o_result with
          | Ok r ->
              {
                r_rid = w_rid;
                r_values = r.values;
                r_batch = r.batch;
                r_error = None;
              }
          | Error e ->
              {
                r_rid = w_rid;
                r_values = [||];
                r_batch = 0;
                r_error = Some (E.to_string e);
              }
        in
        ignore (write_frame fd resp)
  in
  let* eng =
    create ?clock ~incidents ?pool ?deadline_ms ?mode ~queue ~batch_max
      ~flush_us ~respond models
  in
  (try Unix.unlink listen with Unix.Unix_error _ -> ());
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let* () =
    try
      Unix.bind srv (Unix.ADDR_UNIX listen);
      Unix.listen srv 64;
      Ok ()
    with Unix.Unix_error (err, _, _) ->
      Unix.close srv;
      E.fail ~layer:"serve" ~code:E.Capacity
        ~context:[ ("path", listen); ("errno", Unix.error_message err) ]
        "cannot bind the listening socket"
  in
  let previous_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ -> None
  in
  let clients = ref [] in
  let close_client fd =
    clients := List.filter (fun c -> c <> fd) !clients;
    Hashtbl.iter
      (fun rid (cfd, _) -> if cfd = fd then Hashtbl.remove rid_tbl rid)
      (Hashtbl.copy rid_tbl);
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let handle_client fd =
    match Ipc.read fd with
    | Ok None | Error _ -> close_client fd
    | Ok (Some (req : wire_request)) -> (
        let rid = !next_rid in
        incr next_rid;
        Hashtbl.replace rid_tbl rid (fd, req.w_rid);
        match submit eng ~rid ~model:req.w_model with
        | Ok () -> ()
        | Error e ->
            Hashtbl.remove rid_tbl rid;
            incr completed;
            ignore
              (write_frame fd
                 {
                   r_rid = req.w_rid;
                   r_values = [||];
                   r_batch = 0;
                   r_error = Some (E.to_string e);
                 }))
  in
  Incident.record incidents Incident.Run_start
    [ ("what", "promise-serve"); ("socket", listen) ];
  while
    (not (Supervisor.stop_requested stop))
    && (max_requests = 0 || !completed < max_requests)
  do
    let timeout =
      match next_deadline_ns eng with
      | Some ns ->
          let dt = Int64.to_float (Int64.sub ns (now ())) /. 1e9 in
          Float.max 0.0 (Float.min dt 0.05)
      | None -> 0.05
    in
    let readable =
      try
        let r, _, _ = Unix.select (srv :: !clients) [] [] timeout in
        r
      with Unix.Unix_error (Unix.EINTR, _, _) -> []
    in
    List.iter
      (fun fd ->
        if fd = srv then begin
          match Unix.accept srv with
          | client, _ -> clients := client :: !clients
          | exception Unix.Unix_error _ -> ()
        end
        else if List.mem fd !clients then handle_client fd)
      readable;
    pump eng;
    flush_due eng
  done;
  pump eng;
  flush_all eng;
  Incident.record incidents Incident.Run_end
    [ ("what", "promise-serve"); ("completed", string_of_int !completed) ];
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !clients;
  (try Unix.close srv with Unix.Unix_error _ -> ());
  (try Unix.unlink listen with Unix.Unix_error _ -> ());
  (match previous_sigpipe with
  | Some b -> Sys.set_signal Sys.sigpipe b
  | None -> ());
  Ok { d_completed = !completed; d_stats = stats eng }

(* ------------------------------------------------------------------ *)
(* Probe client                                                         *)
(* ------------------------------------------------------------------ *)

type probe_summary = {
  p_sent : int;
  p_ok : int;
  p_rejected : int;
  p_max_batch : int;
}

let probe ?(connect_timeout_ms = 10_000.0) ?(requests = 8) ~path ~model () =
  let deadline =
    Int64.add (Clock.monotonic_ns ())
      (Int64.of_float (connect_timeout_ms *. 1e6))
  in
  let rec connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if Clock.monotonic_ns () > deadline then
          E.fail ~layer:"serve" ~code:E.Timeout
            ~context:[ ("path", path) ]
            "no daemon answered within the connect timeout"
        else begin
          Clock.sleep_ms 20.0;
          connect ()
        end
    | exception Unix.Unix_error (err, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        E.fail ~layer:"serve" ~code:E.Capacity
          ~context:[ ("path", path); ("errno", Unix.error_message err) ]
          "cannot connect to the daemon"
  in
  let* fd = connect () in
  let finish r =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    r
  in
  let rec send i =
    if i = requests then Ok ()
    else
      match Ipc.write fd { w_rid = i; w_model = model } with
      | Ok () -> send (i + 1)
      | Error e -> Error e
  in
  match send 0 with
  | Error e -> finish (Error e)
  | Ok () ->
      let ok = ref 0 and rejected = ref 0 and max_batch = ref 0 in
      let rec recv n =
        if n = 0 then Ok ()
        else
          match Ipc.read fd with
          | Error e -> Error e
          | Ok None ->
              E.fail ~layer:"serve" ~code:E.Capacity
                ~context:[ ("missing", string_of_int n) ]
                "daemon closed the connection before answering"
          | Ok (Some (resp : wire_response)) ->
              (match resp.r_error with
              | None ->
                  incr ok;
                  if resp.r_batch > !max_batch then max_batch := resp.r_batch
              | Some _ -> incr rejected);
              recv (n - 1)
      in
      finish
        (let* () = recv requests in
         Ok
           {
             p_sent = requests;
             p_ok = !ok;
             p_rejected = !rejected;
             p_max_batch = !max_batch;
           })

(* ------------------------------------------------------------------ *)
(* Self-test load generator                                             *)
(* ------------------------------------------------------------------ *)

type load = Closed_loop of int | Open_loop of float

type load_report = {
  l_mode : mode;
  l_requests : int;
  l_served : int;
  l_rejected : int;
  l_timeouts : int;
  l_failures : int;
  l_seconds : float;
  l_rps : float;
  l_p50_ms : float;
  l_p95_ms : float;
  l_p99_ms : float;
  l_mean_batch : float;
  l_max_batch : float;
  l_batch_hist : (float * int) list;
  l_max_queue_depth : int;
  l_digest : string;
}

let load_run ?(seed = 0) ?(jobs = 1) ?(incidents = Incident.null) ?deadline_ms
    ~mode ~queue ~batch_max ~flush_us ~requests ~load ~model () =
  let m = model () in
  let name = model_name m in
  let outputs : float array option array = Array.make requests None in
  let finished = ref 0 in
  let respond (out : outcome) =
    incr finished;
    match out.o_result with
    | Ok r -> outputs.(out.o_rid) <- Some r.values
    | Error _ -> ()
  in
  Pool.with_pool ~jobs (fun pool ->
      let* eng =
        create ~incidents ~pool ?deadline_ms ~mode ~queue ~batch_max ~flush_us
          ~respond [ m ]
      in
      let t0 = Clock.monotonic_ns () in
      let issued = ref 0 in
      let offer () =
        (match submit eng ~rid:!issued ~model:name with
        | Ok () -> ()
        | Error _ -> incr finished (* rejected: no outcome will arrive *));
        incr issued
      in
      (match load with
      | Closed_loop conc ->
          let conc = max 1 conc in
          while !finished < requests do
            while !issued < requests && !issued - !finished < conc do
              offer ()
            done;
            pump eng;
            (* the window is full (or the stream is over): nothing more
               can arrive before a response, so drain eagerly — a closed
               system never waits out the flush deadline *)
            flush_all eng
          done
      | Open_loop rate ->
          let rate = Float.max 1.0 rate in
          let rng = Rng.create seed in
          let interval () =
            let u = Float.max 1e-12 (Rng.uniform rng ~lo:0.0 ~hi:1.0) in
            Int64.of_float (-.Float.log u /. rate *. 1e9)
          in
          let next = ref (Int64.add t0 (interval ())) in
          while !finished < requests do
            let now = Clock.monotonic_ns () in
            while !issued < requests && !next <= now do
              offer ();
              next := Int64.add !next (interval ())
            done;
            pump eng;
            if !issued >= requests then flush_all eng else flush_due eng;
            if !finished < requests && !issued < requests then begin
              let target =
                match next_deadline_ns eng with
                | Some d when d < !next -> d
                | _ -> !next
              in
              let wait_ms =
                Int64.to_float (Int64.sub target (Clock.monotonic_ns ()))
                /. 1e6
              in
              if wait_ms > 0.05 then Clock.sleep_ms (Float.min wait_ms 1.0)
            end
          done);
      let seconds =
        Int64.to_float (Int64.sub (Clock.monotonic_ns ()) t0) /. 1e9
      in
      let s = stats eng in
      let digest =
        let buf = Buffer.create 4096 in
        Array.iteri
          (fun rid o ->
            match o with
            | None -> ()
            | Some vs ->
                Buffer.add_string buf (string_of_int rid);
                Array.iter
                  (fun v -> Buffer.add_int64_le buf (Int64.bits_of_float v))
                  vs)
          outputs;
        Digest.to_hex (Digest.string (Buffer.contents buf))
      in
      let pct q = Histogram.percentile s.latency_ns q /. 1e6 in
      Ok
        {
          l_mode = mode;
          l_requests = requests;
          l_served = s.served;
          l_rejected = s.rejected;
          l_timeouts = s.timeouts;
          l_failures = s.failures;
          l_seconds = seconds;
          l_rps =
            (if seconds > 0.0 then float_of_int s.served /. seconds else 0.0);
          l_p50_ms = pct 0.5;
          l_p95_ms = pct 0.95;
          l_p99_ms = pct 0.99;
          l_mean_batch = Histogram.mean s.batch_sizes;
          l_max_batch = Histogram.max_value s.batch_sizes;
          l_batch_hist = Histogram.buckets s.batch_sizes;
          l_max_queue_depth = s.queue.Queue_bounded.max_depth;
          l_digest = digest;
        })
